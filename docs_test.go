// Docs gate: README.md's flag reference must cover every flag the
// commands actually register, so the operator documentation cannot rot
// silently when a PR adds or renames a flag. CI runs this test as an
// explicit "docs gate" step; it also runs in every plain `go test ./...`.
package darkdns

import (
	"fmt"
	"os"
	"regexp"
	"strings"
	"testing"
)

// flagDecls match the standard-library flag registration forms: the
// value-returning constructors (flag.Int("name", ...)), their *Var
// variants (flag.IntVar(&v, "name", ...)), Func/BoolFunc, and custom
// flag.Var values. The receiver is any identifier, so FlagSet-based
// registration (fs.Int("name", ...)) is caught too — the method-name
// alternation keeps false positives out.
var flagDecls = []*regexp.Regexp{
	regexp.MustCompile(`\b\w+\.(?:Bool|Int64|Int|Uint64|Uint|Float64|String|Duration|Func|BoolFunc)\("([a-z0-9-]+)"`),
	regexp.MustCompile(`\b\w+\.(?:Bool|Int64|Int|Uint64|Uint|Float64|String|Duration|Text)Var\([^,]+,\s*"([a-z0-9-]+)"`),
	regexp.MustCompile(`\b\w+\.Var\([^,]+,\s*"([a-z0-9-]+)"`),
}

// registeredFlags extracts the flag names declared in a command's main.go.
func registeredFlags(t *testing.T, path string) []string {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	var names []string
	for _, re := range flagDecls {
		for _, m := range re.FindAllStringSubmatch(string(src), -1) {
			names = append(names, m[1])
		}
	}
	if len(names) == 0 {
		t.Fatalf("no flag registrations found in %s (regex drift?)", path)
	}
	return names
}

// TestReadmeFlagReference fails when a flag registered in cmd/darkdns,
// cmd/reproduce, cmd/feedserver, cmd/zonediff, or cmd/sweep has no row
// in README.md's flag reference (a table row whose first cell is the
// backticked flag), or when any of the five engine -*-workers flags is
// missing entirely.
func TestReadmeFlagReference(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("README.md missing: %v", err)
	}
	doc := string(readme)

	for _, cmd := range []string{
		"cmd/darkdns/main.go", "cmd/reproduce/main.go", "cmd/feedserver/main.go",
		"cmd/zonediff/main.go", "cmd/sweep/main.go",
	} {
		for _, name := range registeredFlags(t, cmd) {
			row := fmt.Sprintf("| `-%s` |", name)
			if !strings.Contains(doc, row) {
				t.Errorf("%s registers -%s but README.md's flag table has no %q row", cmd, name, row)
			}
		}
	}

	// The five engine flags are the load-bearing documentation: each must
	// be present and state its determinism guarantee column content.
	for _, engine := range []string{
		"ingest-workers", "rdap-workers", "clock-workers", "build-workers", "commit-workers",
	} {
		if !strings.Contains(doc, "`-"+engine+"`") {
			t.Errorf("README.md does not document -%s", engine)
		}
	}
	if !strings.Contains(doc, "Determinism guarantee") {
		t.Error("README.md flag table lost its determinism-guarantee column")
	}
}
