module darkdns

go 1.24
