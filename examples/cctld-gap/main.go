// CCTLD-gap: reproduce the paper's §4.4 ground-truth experiment. A ccTLD
// registry (the paper's .nl) shares its private ledger: domains deleted
// within 24 hours of registration. How many of those did the public
// CT-based method actually see? The answer — about 30 % — is the paper's
// strongest evidence that researchers have a blind spot only rapid zone
// updates can close. The sweep engine asks it across several seeds and
// two watch policies at once: each world compiles once, and every cell
// replays it from the shared snapshot.
package main

import (
	"fmt"
	"time"

	"darkdns/internal/analysis"
)

func main() {
	out, err := analysis.Sweep(analysis.SweepConfig{
		Seeds: []int64{5, 6, 7}, Scales: []float64{0.002}, Weeks: 13,
		Policies: []analysis.SweepPolicy{
			{Name: "watch-all", WatchSampleRate: 1.0},
			{Name: "watch-half", WatchSampleRate: 0.5},
		},
		Base:    analysis.RunConfig{WatchSampleRate: 0.5},
		Workers: 3,
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("ccTLD recall across %d worlds × 2 watch policies (%d compiles):\n\n",
		out.DistinctWorlds, out.DistinctWorlds)
	fmt.Printf("  %-5s %-11s %9s %9s %9s %8s\n", "seed", "policy", "fast-del", "never-in", "caught", "recall")
	for _, sr := range out.Cells {
		cc := analysis.CCTLDGroundTruth(sr.Results)
		fmt.Printf("  %-5d %-11s %9d %9d %9d %7.1f%%\n",
			sr.Cell.Seed, sr.Cell.Policy.Label(), cc.FastDeleted, cc.NeverInZone,
			cc.PipelineFound, 100*cc.Recall)
	}

	// Show what detection looked like for ccTLD candidates one cell saw.
	res := out.Cells[0].Results
	cc := analysis.CCTLDGroundTruth(res)
	fmt.Printf("\nsample detections from seed %d (paper: 714 fast-deleted, 334 never in zone, 99 caught, 29.6%% recall):\n", out.Cells[0].Cell.Seed)
	shown := 0
	for _, c := range res.Pipeline.Candidates() {
		if c.TLD != cc.TLD || shown >= 5 {
			continue
		}
		gt := res.World.Domains.Get(c.Domain)
		if gt == nil || !gt.FastDelete {
			continue
		}
		fmt.Printf("  caught %-24s lifetime %-8v detected %v after registration\n",
			c.Domain, gt.Lifetime.Round(time.Minute),
			c.SeenAt.Sub(gt.Created).Round(time.Second))
		shown++
	}
	fmt.Println("\nevery domain in the ledger that the pipeline missed either obtained no")
	fmt.Println("certificate, or died before its certificate was issued — invisible to all")
	fmt.Println("public data sources.")
}
