// CCTLD-gap: reproduce the paper's §4.4 ground-truth experiment. A ccTLD
// registry (the paper's .nl) shares its private ledger: domains deleted
// within 24 hours of registration. How many of those did the public
// CT-based method actually see? The answer — about 30 % — is the paper's
// strongest evidence that researchers have a blind spot only rapid zone
// updates can close.
package main

import (
	"fmt"
	"time"

	"darkdns/internal/analysis"
)

func main() {
	res := analysis.Run(analysis.RunConfig{Seed: 5, Scale: 0.002, Weeks: 13, WatchSampleRate: 0.5})

	cc := analysis.CCTLDGroundTruth(res)
	fmt.Printf("registry ground truth for .%s over the window:\n", cc.TLD)
	fmt.Printf("  domains deleted within 24h of registration: %4d   (paper: 714)\n", cc.FastDeleted)
	fmt.Printf("  of those, never captured in a zone file:    %4d   (paper: 334)\n", cc.NeverInZone)
	fmt.Printf("  of those, detected by the CT pipeline:      %4d   (paper:  99)\n", cc.PipelineFound)
	fmt.Printf("  recall against the registry's view:        %5.1f%%  (paper: 29.6%%)\n\n", 100*cc.Recall)

	// Show what detection looked like for the ccTLD candidates we did see.
	shown := 0
	for _, c := range res.Pipeline.Candidates() {
		if c.TLD != cc.TLD || shown >= 5 {
			continue
		}
		gt := res.World.Domains.Get(c.Domain)
		if gt == nil || !gt.FastDelete {
			continue
		}
		fmt.Printf("  caught %-24s lifetime %-8v detected %v after registration\n",
			c.Domain, gt.Lifetime.Round(time.Minute),
			c.SeenAt.Sub(gt.Created).Round(time.Second))
		shown++
	}
	fmt.Println("\nevery domain in the ledger that the pipeline missed either obtained no")
	fmt.Println("certificate, or died before its certificate was issued — invisible to all")
	fmt.Println("public data sources.")
}
