// Transient-hunt: the paper's motivating scenario. Malicious domains are
// registered, certified, abused and taken down within hours — before the
// daily zone snapshot, and long before blocklists react. This example
// detects them live from the CT feed and shows how late the blocklist
// ecosystem is for each one.
package main

import (
	"fmt"
	"sort"
	"time"

	"darkdns/internal/analysis"
	"darkdns/internal/blocklist"
)

func main() {
	res := analysis.Run(analysis.RunConfig{Seed: 99, Scale: 0.003, Weeks: 4, WatchSampleRate: 1.0})

	report := res.Report
	fmt.Printf("confirmed transient domains: %d\n", len(report.Confirmed))
	fmt.Printf("ground-truth fast-deleted registrations: %d (detection is a lower bound)\n\n",
		analysis.GroundTruthTransientCount(res.World))

	// For each confirmed transient: lifetime vs blocklist reaction.
	pollEnd := res.WindowEnd.Add(90 * 24 * time.Hour)
	type finding struct {
		domain    string
		lifetime  time.Duration
		flaggedBy string
		flagLag   time.Duration // first flag − deletion; negative = while alive
	}
	var flagged []finding
	neverFlagged := 0
	for _, c := range report.Confirmed {
		gt := res.World.Domains.Get(c.Domain)
		if gt == nil {
			continue
		}
		deleted := gt.Created.Add(gt.Lifetime)
		f, ok := res.World.Blocklists.FirstListed(c.Domain, pollEnd)
		if !ok {
			neverFlagged++
			continue
		}
		flagged = append(flagged, finding{
			domain: c.Domain, lifetime: gt.Lifetime,
			flaggedBy: f.List, flagLag: f.At.Sub(deleted),
		})
	}
	sort.Slice(flagged, func(i, j int) bool { return flagged[i].flagLag > flagged[j].flagLag })

	fmt.Printf("blocklists never flagged %d of %d confirmed transients (paper: ~95%%)\n\n",
		neverFlagged, len(report.Confirmed))
	fmt.Println("the ones blocklists did catch, and how late:")
	for i, f := range flagged {
		if i >= 10 {
			break
		}
		when := "AFTER deletion"
		if f.flagLag < 0 {
			when = "while alive"
		}
		fmt.Printf("  %-26s lived %-8v first flag %-18s %v %s\n",
			f.domain, f.lifetime.Round(time.Minute), f.flaggedBy,
			f.flagLag.Round(time.Hour), when)
	}

	// The takeaway statistic of §4.3: flags land post-mortem.
	_, trans := analysis.BlocklistCoverage(res, pollEnd)
	if trans.Flagged > 0 {
		post := trans.Timing[blocklist.AfterDeletion]
		fmt.Printf("\nof %d flagged transients, %d (%s) were flagged only after deletion (paper: 94%%)\n",
			trans.Flagged, post, analysis.Pct(post, trans.Flagged))
	}
	fmt.Println("\nrapid zone updates would surface these domains at registration time —")
	fmt.Println("the visibility gap this library exists to quantify.")
}
