// RZU-whatif: the paper's closing argument, quantified. Section 5
// advocates resurrecting Verisign's Rapid Zone Update service — zone
// change feeds every 5 minutes instead of daily snapshots. This example
// asks the visibility question through the multi-world sweep engine:
// one compiled world, snapshotted once, measured under a grid of probe
// cadences — what does a vetted RZU subscriber see of the fast-deleted
// domain population, versus the best public method (CT logs) and the
// CZDS status quo?
package main

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"darkdns/internal/analysis"
	"darkdns/internal/registry"
	"darkdns/internal/rzu"
	"darkdns/internal/simclock"
)

func main() {
	// Part 1: a policy grid over one world. The sweep engine compiles the
	// (seed 12, scale 0.003) world exactly once, snapshots it, and runs
	// each probe-cadence policy as its own campaign from the snapshot.
	out, err := analysis.Sweep(analysis.SweepConfig{
		Seeds: []int64{12}, Scales: []float64{0.003}, Weeks: 4,
		Policies: []analysis.SweepPolicy{
			{Name: "paper-10m", ProbeCadence: 10 * time.Minute},
			{Name: "rapid-2m", ProbeCadence: 2 * time.Minute, LookaheadWindow: 8},
			{Name: "lazy-1h", ProbeCadence: time.Hour},
		},
		Base:    analysis.RunConfig{WatchSampleRate: 0.5},
		Workers: 3,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("probe-cadence grid over one world (%d compile, %d cells):\n",
		out.DistinctWorlds, len(out.Cells))
	for _, sr := range out.Cells {
		fmt.Printf("  %-10s %4d transients confirmed, median detection %v (campaign %v)\n",
			sr.Cell.Policy.Label(), sr.Transients,
			sr.MedianDelay.Round(time.Second), sr.Elapsed.Round(time.Millisecond))
	}

	// The zone-update what-if reads any cell's campaign; the world — and
	// therefore the fast-deleted population — is identical across cells.
	res := out.Cells[0].Results
	fmt.Println("\nvisibility of fast-deleted domains by zone-update cadence:")
	for _, interval := range []time.Duration{5 * time.Minute, 30 * time.Minute, time.Hour, 6 * time.Hour, 24 * time.Hour} {
		r := analysis.RZUWhatIf(res, interval)
		fmt.Printf("  every %-6s %4d of %4d visible (%s)\n",
			interval, r.RZUVisible, r.FastDeleted, analysis.Pct(r.RZUVisible, r.FastDeleted))
	}
	base := analysis.RZUWhatIf(res, 5*time.Minute)
	fmt.Printf("\nfor comparison, the CT-based public method caught %d (%s)\n",
		base.CTDetected, analysis.Pct(base.CTDetected, base.FastDeleted))

	// Part 2: the service itself, live. A vetted researcher subscribes;
	// an unvetted party is refused; a transient domain's full lifecycle
	// arrives as rapid update batches.
	fmt.Println("\n--- live RZU service demo ---")
	clk := simclock.NewSim(time.Date(2023, 11, 1, 0, 0, 0, 0, time.UTC))
	reg := registry.New(registry.DefaultConfig("com"), clk, rand.New(rand.NewSource(1)))
	defer reg.Stop()
	svc := rzu.New(rzu.Config{Interval: 5 * time.Minute, Policy: rzu.AllowList{"vetted-researcher": true}})
	defer svc.Stop()
	svc.Publish(reg, clk)

	if err := svc.Subscribe("spam-operation", "com", func(rzu.Batch) {}); err != nil {
		fmt.Println("unvetted subscriber:", err)
	}
	svc.Subscribe("vetted-researcher", "com", func(b rzu.Batch) {
		for _, c := range b.Changes {
			fmt.Printf("  %s  %s %s\n", b.Produced.Format("15:04"), c.Kind, c.Domain)
		}
	})

	reg.Register("phish-kit.com", "GoDaddy", []string{"ns1.cloudflare.com"}, netip.Addr{})
	clk.Advance(10 * time.Minute)
	reg.Delete("phish-kit.com") // registrar catches the fraud signal
	clk.Advance(10 * time.Minute)
	fmt.Println("the subscriber saw both the birth and the death — CZDS would have seen neither.")
}
