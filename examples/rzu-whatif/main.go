// RZU-whatif: the paper's closing argument, quantified. Section 5
// advocates resurrecting Verisign's Rapid Zone Update service — zone
// change feeds every 5 minutes instead of daily snapshots. This example
// runs the same simulated world twice over the visibility question: what
// does a vetted RZU subscriber see of the fast-deleted domain population,
// versus the best public method (CT logs) and the CZDS status quo?
package main

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"darkdns/internal/analysis"
	"darkdns/internal/registry"
	"darkdns/internal/rzu"
	"darkdns/internal/simclock"
)

func main() {
	// Part 1: the what-if analysis over a full campaign.
	res := analysis.Run(analysis.RunConfig{Seed: 12, Scale: 0.003, Weeks: 4, WatchSampleRate: 0.5})
	fmt.Println("visibility of fast-deleted domains by zone-update cadence:")
	for _, interval := range []time.Duration{5 * time.Minute, 30 * time.Minute, time.Hour, 6 * time.Hour, 24 * time.Hour} {
		r := analysis.RZUWhatIf(res, interval)
		fmt.Printf("  every %-6s %4d of %4d visible (%s)\n",
			interval, r.RZUVisible, r.FastDeleted, analysis.Pct(r.RZUVisible, r.FastDeleted))
	}
	base := analysis.RZUWhatIf(res, 5*time.Minute)
	fmt.Printf("\nfor comparison, the CT-based public method caught %d (%s)\n",
		base.CTDetected, analysis.Pct(base.CTDetected, base.FastDeleted))

	// Part 2: the service itself, live. A vetted researcher subscribes;
	// an unvetted party is refused; a transient domain's full lifecycle
	// arrives as rapid update batches.
	fmt.Println("\n--- live RZU service demo ---")
	clk := simclock.NewSim(time.Date(2023, 11, 1, 0, 0, 0, 0, time.UTC))
	reg := registry.New(registry.DefaultConfig("com"), clk, rand.New(rand.NewSource(1)))
	defer reg.Stop()
	svc := rzu.New(rzu.Config{Interval: 5 * time.Minute, Policy: rzu.AllowList{"vetted-researcher": true}})
	defer svc.Stop()
	svc.Publish(reg, clk)

	if err := svc.Subscribe("spam-operation", "com", func(rzu.Batch) {}); err != nil {
		fmt.Println("unvetted subscriber:", err)
	}
	svc.Subscribe("vetted-researcher", "com", func(b rzu.Batch) {
		for _, c := range b.Changes {
			fmt.Printf("  %s  %s %s\n", b.Produced.Format("15:04"), c.Kind, c.Domain)
		}
	})

	reg.Register("phish-kit.com", "GoDaddy", []string{"ns1.cloudflare.com"}, netip.Addr{})
	clk.Advance(10 * time.Minute)
	reg.Delete("phish-kit.com") // registrar catches the fraud signal
	clk.Advance(10 * time.Minute)
	fmt.Println("the subscriber saw both the birth and the death — CZDS would have seen neither.")
}
