// Feed-consumer: consume the public NRD feed over the network — the
// zonestream service the paper releases. The example runs a feed server
// in-process (backed by a simulated world), then connects to it over real
// TCP like any external subscriber would, replaying the full history.
package main

import (
	"context"
	"fmt"
	"time"

	"darkdns/internal/core"
	"darkdns/internal/feed"
	"darkdns/internal/psl"
	"darkdns/internal/stream"
	"darkdns/internal/worldsim"
)

func main() {
	// Server side: world + pipeline publishing into the feed topic.
	cfg := worldsim.DefaultConfig(3, 0.0005)
	cfg.Weeks = 1
	world := worldsim.New(cfg)
	start, end := world.Window()
	bus := stream.NewBus()
	pipeline := core.New(core.DefaultConfig(start, end), world.Clock, psl.Default(),
		world.CZDS, core.MuxQuerier{Mux: world.RDAP}, nil, bus, 7)
	pipeline.Start(world.Hub)
	world.Run()
	pipeline.Stop()

	srv := feed.NewServer(bus.Topic("nrd-feed"))
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	fmt.Printf("feed server on %s with %d entries\n\n", addr, bus.Topic("nrd-feed").Len())

	// Client side: a framed session replaying everything from offset 0
	// over TCP, with auto-resume armed the way a production consumer
	// would run it.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	sub, err := feed.NewClient(addr.String()).Subscribe(ctx, feed.SubscribeOptions{
		Tenant:     "example",
		From:       0,
		AutoResume: true,
	})
	if err != nil {
		panic(err)
	}
	defer sub.Close()

	count, gaps := 0, 0
	total := bus.Topic("nrd-feed").Len()
	for ev := range sub.C {
		switch ev.Kind {
		case feed.EventEntry:
			if count < 8 {
				fmt.Printf("  #%-4d %-28s seen %s\n", ev.Entry.Offset, ev.Entry.Domain, ev.Entry.Time.Format("Jan 2 15:04:05"))
			}
			count++
		case feed.EventGap:
			gaps++
			fmt.Printf("  GAP   offsets %d-%d dropped (%s)\n", ev.Gap.From, ev.Gap.To, ev.Gap.Reason)
		case feed.EventResumed:
			fmt.Printf("  resumed at offset %d\n", ev.From)
		}
		if count == total {
			break
		}
	}
	if err := sub.Err(); err != nil && err != feed.ErrStopped {
		panic(err)
	}
	fmt.Printf("\nreplayed %d feed entries over TCP (%d gaps, next offset %d)\n", count, gaps, sub.NextOffset())
}
