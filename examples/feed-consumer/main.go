// Feed-consumer: consume the public NRD feed over the network — the
// zonestream service the paper releases. The example runs a feed server
// in-process (backed by a simulated world), then connects to it over real
// TCP like any external subscriber would, replaying the full history.
package main

import (
	"context"
	"fmt"
	"time"

	"darkdns/internal/core"
	"darkdns/internal/feed"
	"darkdns/internal/psl"
	"darkdns/internal/stream"
	"darkdns/internal/worldsim"
)

func main() {
	// Server side: world + pipeline publishing into the feed topic.
	cfg := worldsim.DefaultConfig(3, 0.0005)
	cfg.Weeks = 1
	world := worldsim.New(cfg)
	start, end := world.Window()
	bus := stream.NewBus()
	pipeline := core.New(core.DefaultConfig(start, end), world.Clock, psl.Default(),
		world.CZDS, core.MuxQuerier{Mux: world.RDAP}, nil, bus, 7)
	pipeline.Start(world.Hub)
	world.Run()
	pipeline.Stop()

	srv := feed.NewServer(bus.Topic("nrd-feed"))
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	fmt.Printf("feed server on %s with %d entries\n\n", addr, bus.Topic("nrd-feed").Len())

	// Client side: replay everything from offset 0 over TCP.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	count := 0
	total := bus.Topic("nrd-feed").Len()
	err = feed.NewClient(addr.String()).Stream(ctx, 0, func(e feed.Entry) {
		if count < 8 {
			fmt.Printf("  #%-4d %-28s seen %s\n", e.Offset, e.Domain, e.Time.Format("Jan 2 15:04:05"))
		}
		count++
		if count == total {
			cancel() // consumed the full replay
		}
	})
	if err != nil && err != feed.ErrStopped {
		panic(err)
	}
	fmt.Printf("\nreplayed %d feed entries over TCP\n", count)
}
