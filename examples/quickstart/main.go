// Quickstart: run the DarkDNS pipeline over a small simulated DNS world
// and print what the public observables reveal — the newly registered
// domains CT detects before the zone files do, and the transient domains
// that never appear in any zone file at all.
package main

import (
	"fmt"
	"time"

	"darkdns/internal/core"
	"darkdns/internal/measure"
	"darkdns/internal/psl"
	"darkdns/internal/stream"
	"darkdns/internal/worldsim"
)

func main() {
	// 1. Build a world: registries, registrars, CAs, CT logs, blocklists.
	//    Scale 0.001 ≈ 1/1000 of the paper's volume; 2 simulated weeks.
	cfg := worldsim.DefaultConfig(42, 0.001)
	cfg.Weeks = 2
	world := worldsim.New(cfg)
	start, end := world.Window()

	// 2. Assemble the measurement pipeline from public observables only:
	//    the certstream hub, the CZDS zone collection, RDAP, and a
	//    reactive probing fleet.
	fleet := measure.NewFleet(measure.DefaultConfig(), world.Clock, world.ProbeBackend())
	bus := stream.NewBus()
	pipeline := core.New(core.DefaultConfig(start, end), world.Clock, psl.Default(),
		world.CZDS, core.MuxQuerier{Mux: world.RDAP}, fleet, bus, 7)
	pipeline.Start(world.Hub)

	// 3. Run the three-month campaign in simulated time.
	world.Run()
	pipeline.Stop()

	// 4. Inspect the results.
	cands := pipeline.Candidates()
	fmt.Printf("detected %d newly registered domains via CT\n", len(cands))
	shown := 0
	for _, c := range cands {
		if c.RDAPOutcome == core.RDAPOK && shown < 5 {
			fmt.Printf("  %-26s seen %s, registered %s via %s (delay %v)\n",
				c.Domain, c.SeenAt.Format("Jan 2 15:04:05"),
				c.Registered.Format("15:04:05"), c.Registrar,
				c.DetectionDelay().Round(time.Second))
			shown++
		}
	}

	report := pipeline.Transients()
	fmt.Printf("\ntransient domains (never in any zone file): %d lower bound, %d RDAP-confirmed\n",
		len(report.LowerBound), len(report.Confirmed))
	for i, c := range report.Confirmed {
		if i >= 5 {
			break
		}
		gt := world.Domains.Get(c.Domain)
		fmt.Printf("  %-26s lived %v before takedown (%s)\n",
			c.Domain, gt.Lifetime.Round(time.Minute), gt.Reason)
	}

	// The feed topic carries everything a downstream consumer would see.
	fmt.Printf("\npublic feed published %d entries\n", bus.Topic("nrd-feed").Len())
}
