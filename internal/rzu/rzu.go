// Package rzu implements the Rapid Zone Update service the paper's
// discussion section advocates resurrecting (§5, Appendix B): a
// subscription feed of TLD zone changes published every few minutes
// instead of daily, with an access-control framework of the kind ICANN's
// RDRS applies to registration data.
//
// Verisign ran such a service for .com/.net in 2004–2008: internal zone
// rebuilds every 3 minutes, subscriber-visible updates every 5. DarkDNS
// argues that a safeguarded revival would close most of the transient
// domain blind spot; this package exists so the claim can be measured
// (analysis.RZUWhatIf) rather than argued.
package rzu

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"darkdns/internal/dnsname"
	"darkdns/internal/registry"
	"darkdns/internal/simclock"
	"darkdns/internal/zoneset"
)

// ChangeKind labels one zone change.
type ChangeKind uint8

// Zone change kinds, matching Verisign's published service description
// (domain names, nameservers: additions, deletions and modifications).
const (
	Added ChangeKind = iota
	Removed
	Modified
)

// String names the kind.
func (k ChangeKind) String() string {
	switch k {
	case Added:
		return "added"
	case Removed:
		return "removed"
	case Modified:
		return "modified"
	}
	return "unknown"
}

// Change is one entry in an update batch.
type Change struct {
	Kind   ChangeKind
	Domain string
	NS     []string // new NS set for Added/Modified
}

// Batch is one published update: all changes since the previous batch.
type Batch struct {
	TLD      string
	Serial   uint32
	Produced time.Time
	Changes  []Change
}

// Errors returned by the service.
var (
	ErrNotAuthorized = errors.New("rzu: subscriber not authorized")
	ErrUnknownZone   = errors.New("rzu: zone not published via RZU")
)

// Subscriber receives update batches.
type Subscriber func(Batch)

// AccessPolicy gates subscriptions — the "framework to safeguard against
// abuses" the paper calls for. Implementations might check vetting
// status, rate-limit, or watermark feeds per subscriber.
type AccessPolicy interface {
	// Authorize reports whether the named party may subscribe to tld.
	Authorize(party, tld string) bool
}

// AllowList is a minimal AccessPolicy: an explicit set of vetted parties
// (security researchers, law enforcement, operators).
type AllowList map[string]bool

// Authorize implements AccessPolicy.
func (a AllowList) Authorize(party, _ string) bool { return a[party] }

// Service publishes rapid zone updates for a set of registries.
type Service struct {
	policy   AccessPolicy
	interval time.Duration

	mu      sync.Mutex
	zones   map[string]*zoneState
	subs    map[string][]subscription
	history map[string][]Batch // retained batches per TLD
	keep    int
}

type zoneState struct {
	reg    *registry.Registry
	prev   *zoneset.Snapshot
	ticker *simclock.Ticker
}

type subscription struct {
	party string
	fn    Subscriber
}

// Config parameterizes the service.
type Config struct {
	// Interval is the publication cadence (Verisign: 5 minutes).
	Interval time.Duration
	// Policy gates subscriber access; nil refuses everyone.
	Policy AccessPolicy
	// KeepBatches bounds retained history per TLD (0 = 4096).
	KeepBatches int
}

// New creates an RZU service. Attach registries with Publish.
func New(cfg Config) *Service {
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Minute
	}
	keep := cfg.KeepBatches
	if keep <= 0 {
		keep = 4096
	}
	return &Service{
		policy:   cfg.Policy,
		interval: cfg.Interval,
		zones:    make(map[string]*zoneState),
		subs:     make(map[string][]subscription),
		history:  make(map[string][]Batch),
		keep:     keep,
	}
}

// Publish starts rapid updates for reg's zone on clk.
func (s *Service) Publish(reg *registry.Registry, clk simclock.Clock) {
	tld := reg.TLD()
	s.mu.Lock()
	if _, dup := s.zones[tld]; dup {
		s.mu.Unlock()
		return
	}
	st := &zoneState{reg: reg, prev: zoneset.NewSnapshot(tld, 0, clk.Now())}
	s.zones[tld] = st
	s.mu.Unlock()
	st.ticker = simclock.NewTicker(clk, s.interval, func(now time.Time) { s.tick(tld, now) })
}

// Stop halts publication for all zones.
func (s *Service) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range s.zones {
		if st.ticker != nil {
			st.ticker.Stop()
		}
	}
}

// Subscribe registers fn for tld's batches on behalf of party.
func (s *Service) Subscribe(party, tld string, fn Subscriber) error {
	tld = dnsname.Canonical(tld)
	if s.policy == nil || !s.policy.Authorize(party, tld) {
		return fmt.Errorf("%w: %s on %s", ErrNotAuthorized, party, tld)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.zones[tld]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownZone, tld)
	}
	s.subs[tld] = append(s.subs[tld], subscription{party: party, fn: fn})
	return nil
}

// History returns retained batches for tld (requires authorization).
func (s *Service) History(party, tld string) ([]Batch, error) {
	tld = dnsname.Canonical(tld)
	if s.policy == nil || !s.policy.Authorize(party, tld) {
		return nil, fmt.Errorf("%w: %s on %s", ErrNotAuthorized, party, tld)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Batch(nil), s.history[tld]...), nil
}

// tick diffs the zone against the previous publication and delivers the
// batch.
func (s *Service) tick(tld string, now time.Time) {
	s.mu.Lock()
	st := s.zones[tld]
	s.mu.Unlock()
	if st == nil {
		return
	}
	cur := currentSnapshot(st.reg, now)
	diff := zoneset.Compare(st.prev, cur)
	st.prev = cur
	if len(diff.Added)+len(diff.Removed)+len(diff.Changed) == 0 {
		return
	}
	batch := Batch{TLD: tld, Serial: cur.Serial, Produced: now}
	for _, d := range diff.Added {
		batch.Changes = append(batch.Changes, Change{Kind: Added, Domain: d, NS: cur.Get(d).NS})
	}
	for _, d := range diff.Removed {
		batch.Changes = append(batch.Changes, Change{Kind: Removed, Domain: d})
	}
	for _, d := range diff.Changed {
		batch.Changes = append(batch.Changes, Change{Kind: Modified, Domain: d, NS: cur.Get(d).NS})
	}
	sort.Slice(batch.Changes, func(i, j int) bool { return batch.Changes[i].Domain < batch.Changes[j].Domain })

	s.mu.Lock()
	h := append(s.history[tld], batch)
	if len(h) > s.keep {
		h = h[len(h)-s.keep:]
	}
	s.history[tld] = h
	subs := append([]subscription(nil), s.subs[tld]...)
	s.mu.Unlock()
	for _, sub := range subs {
		sub.fn(batch)
	}
}

// currentSnapshot captures the live zone. The registry exposes no direct
// snapshot accessor (real registries publish, they don't share internals),
// so RZU reconstructs the delegation set through the same authoritative
// query interface a zone transfer would use — here approximated via the
// registry's publication path: we subscribe once and keep our own copy.
//
// For efficiency the implementation snapshots through Ledger-free public
// methods: it asks the registry for its current serial and uses the
// registry's Subscribe channel at Publish time to seed state, then applies
// Delegation lookups lazily. To stay simple and correct we rebuild from
// the registry's exported zone view.
func currentSnapshot(reg *registry.Registry, now time.Time) *zoneset.Snapshot {
	return reg.ZoneSnapshot(now)
}
