package rzu

import (
	"errors"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"darkdns/internal/registry"
	"darkdns/internal/simclock"
)

var t0 = time.Date(2023, 11, 1, 0, 0, 0, 0, time.UTC)

func newWorld(t *testing.T) (*Service, *registry.Registry, *simclock.Sim) {
	t.Helper()
	clk := simclock.NewSim(t0)
	reg := registry.New(registry.DefaultConfig("com"), clk, rand.New(rand.NewSource(1)))
	t.Cleanup(reg.Stop)
	svc := New(Config{Interval: 5 * time.Minute, Policy: AllowList{"researcher": true}})
	t.Cleanup(svc.Stop)
	svc.Publish(reg, clk)
	return svc, reg, clk
}

func TestSubscribeRequiresAuthorization(t *testing.T) {
	svc, _, _ := newWorld(t)
	if err := svc.Subscribe("attacker", "com", func(Batch) {}); !errors.Is(err, ErrNotAuthorized) {
		t.Errorf("want ErrNotAuthorized, got %v", err)
	}
	if err := svc.Subscribe("researcher", "com", func(Batch) {}); err != nil {
		t.Errorf("vetted party refused: %v", err)
	}
	if err := svc.Subscribe("researcher", "org", func(Batch) {}); !errors.Is(err, ErrUnknownZone) {
		t.Errorf("want ErrUnknownZone, got %v", err)
	}
	if _, err := svc.History("attacker", "com"); !errors.Is(err, ErrNotAuthorized) {
		t.Errorf("history should be gated too: %v", err)
	}
}

func TestBatchesCarryChangesWithinMinutes(t *testing.T) {
	svc, reg, clk := newWorld(t)
	var batches []Batch
	if err := svc.Subscribe("researcher", "com", func(b Batch) { batches = append(batches, b) }); err != nil {
		t.Fatal(err)
	}

	reg.Register("fast.com", "R", []string{"ns1.cloudflare.com"}, netip.Addr{})
	clk.Advance(5 * time.Minute)
	if len(batches) != 1 {
		t.Fatalf("batches = %d, want 1", len(batches))
	}
	if len(batches[0].Changes) != 1 || batches[0].Changes[0].Kind != Added || batches[0].Changes[0].Domain != "fast.com" {
		t.Fatalf("batch: %+v", batches[0])
	}
	// The RZU subscriber learned about the domain within 5 minutes of
	// registration — vs 24h for CZDS.
	if got := batches[0].Produced.Sub(t0); got > 5*time.Minute {
		t.Errorf("first batch at +%v", got)
	}

	// Deletion propagates as Removed.
	reg.Delete("fast.com")
	clk.Advance(5 * time.Minute)
	if len(batches) != 2 {
		t.Fatalf("batches after delete = %d", len(batches))
	}
	if batches[1].Changes[0].Kind != Removed {
		t.Errorf("second batch: %+v", batches[1])
	}
}

func TestModificationDetected(t *testing.T) {
	svc, reg, clk := newWorld(t)
	var batches []Batch
	svc.Subscribe("researcher", "com", func(b Batch) { batches = append(batches, b) })
	reg.Register("mod.com", "R", []string{"ns1.old.net"}, netip.Addr{})
	clk.Advance(5 * time.Minute)
	reg.UpdateNS("mod.com", []string{"ns1.new.net"})
	clk.Advance(5 * time.Minute)
	last := batches[len(batches)-1]
	if last.Changes[0].Kind != Modified || last.Changes[0].NS[0] != "ns1.new.net" {
		t.Fatalf("modification batch: %+v", last)
	}
}

func TestQuietPeriodsPublishNothing(t *testing.T) {
	svc, _, clk := newWorld(t)
	n := 0
	svc.Subscribe("researcher", "com", func(Batch) { n++ })
	clk.Advance(time.Hour)
	if n != 0 {
		t.Errorf("%d batches during quiet period", n)
	}
}

func TestHistoryRetainsBatches(t *testing.T) {
	svc, reg, clk := newWorld(t)
	for i := 0; i < 3; i++ {
		reg.Register(domain(i), "R", []string{"ns1.x.net"}, netip.Addr{})
		clk.Advance(5 * time.Minute)
	}
	h, err := svc.History("researcher", "com")
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 3 {
		t.Fatalf("history = %d batches, want 3", len(h))
	}
}

func TestHistoryBound(t *testing.T) {
	clk := simclock.NewSim(t0)
	reg := registry.New(registry.DefaultConfig("com"), clk, rand.New(rand.NewSource(1)))
	defer reg.Stop()
	svc := New(Config{Interval: 5 * time.Minute, Policy: AllowList{"r": true}, KeepBatches: 2})
	defer svc.Stop()
	svc.Publish(reg, clk)
	for i := 0; i < 5; i++ {
		reg.Register(domain(i), "R", []string{"ns1.x.net"}, netip.Addr{})
		clk.Advance(5 * time.Minute)
	}
	h, _ := svc.History("r", "com")
	if len(h) != 2 {
		t.Fatalf("bounded history = %d, want 2", len(h))
	}
}

func TestTransientVisibleToRZUButNotCZDS(t *testing.T) {
	// The paper's core argument: a domain alive for 3 hours between two
	// daily snapshots is invisible to CZDS but fully visible (creation
	// AND removal) to a 5-minute RZU subscriber.
	svc, reg, clk := newWorld(t)
	var added, removed bool
	svc.Subscribe("researcher", "com", func(b Batch) {
		for _, c := range b.Changes {
			if c.Domain == "transient.com" {
				switch c.Kind {
				case Added:
					added = true
				case Removed:
					removed = true
				}
			}
		}
	})
	clk.Advance(2 * time.Hour)
	reg.Register("transient.com", "GoDaddy", []string{"ns1.cloudflare.com"}, netip.Addr{})
	clk.Advance(3 * time.Hour)
	reg.Delete("transient.com")
	clk.Advance(time.Hour)
	if !added || !removed {
		t.Fatalf("RZU missed the transient: added=%v removed=%v", added, removed)
	}
}

func TestChangeKindStrings(t *testing.T) {
	if Added.String() != "added" || Removed.String() != "removed" ||
		Modified.String() != "modified" || ChangeKind(9).String() != "unknown" {
		t.Error("kind strings")
	}
}

func domain(i int) string {
	return string([]byte{byte('a' + i), 'z', 'r', 'u'}) + ".com"
}
