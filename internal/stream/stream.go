// Package stream is an embedded, in-process message bus modeled on the
// Kafka topology the DarkDNS paper describes: named topics carry ordered,
// replayable message logs; consumer groups track offsets independently.
//
// The bus favors batch hand-off over per-message channels: consumers poll
// slices of messages, which keeps the hot path allocation-free and is the
// design decision benchmarked in DESIGN.md §5.
package stream

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Message is one record in a topic log.
type Message struct {
	Offset int64
	Time   time.Time
	Key    string
	Value  []byte
}

// Errors returned by the bus.
var (
	ErrNoTopic   = errors.New("stream: no such topic")
	ErrTopicOpen = errors.New("stream: topic already exists")
	ErrClosed    = errors.New("stream: bus closed")
)

// Bus is a set of topics. The zero value is not usable; call NewBus.
type Bus struct {
	mu     sync.RWMutex
	topics map[string]*Topic
	closed bool
}

// NewBus creates an empty bus.
func NewBus() *Bus {
	return &Bus{topics: make(map[string]*Topic)}
}

// CreateTopic adds a topic. Recreating an existing topic is an error.
func (b *Bus) CreateTopic(name string) (*Topic, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	if _, ok := b.topics[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrTopicOpen, name)
	}
	t := newTopic(name)
	b.topics[name] = t
	return t, nil
}

// Topic returns an existing topic, creating it on first use. Topic never
// returns nil: when the bus is already closed and the topic does not
// exist, a detached topic is returned — publishes to it succeed but no
// other caller can discover it, mirroring Close's "only blocks topic
// creation" contract without handing callers a nil to dereference.
func (b *Bus) Topic(name string) *Topic {
	b.mu.RLock()
	t := b.topics[name]
	b.mu.RUnlock()
	if t != nil {
		return t
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if t := b.topics[name]; t != nil {
		return t // lost the creation race; the topic now exists
	}
	t = newTopic(name)
	if !b.closed {
		b.topics[name] = t
	}
	return t
}

// Topics returns the topic names in sorted order.
func (b *Bus) Topics() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	names := make([]string, 0, len(b.topics))
	for n := range b.topics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Close marks the bus closed. Publishing to topics of a closed bus still
// works (topics are independent); Close only blocks topic creation.
func (b *Bus) Close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
}

// Topic is an append-only message log with consumer-group offsets.
type Topic struct {
	name string

	mu         sync.Mutex
	log        []Message
	groups     map[string]int64 // committed offset per group (next to read)
	waiters    map[uint64]chan struct{}
	nextWaiter uint64
}

func newTopic(name string) *Topic {
	return &Topic{name: name, groups: make(map[string]int64), waiters: make(map[uint64]chan struct{})}
}

// Name returns the topic name.
func (t *Topic) Name() string { return t.name }

// Publish appends a message and returns its offset.
func (t *Topic) Publish(now time.Time, key string, value []byte) int64 {
	t.mu.Lock()
	off := int64(len(t.log))
	t.log = append(t.log, Message{Offset: off, Time: now, Key: key, Value: value})
	waiters := t.takeWaiters()
	t.mu.Unlock()
	for _, w := range waiters {
		close(w)
	}
	return off
}

// Record is one key/value pair for batch publication. A zero Time means
// "stamp with the batch time"; a non-zero Time is preserved, letting
// batched publishers keep per-message observation times identical to what
// per-message Publish calls would have recorded.
type Record struct {
	Time  time.Time
	Key   string
	Value []byte
}

// PublishBatch appends recs as consecutive messages and returns the
// offset of the first. The whole batch costs one lock acquisition and one
// waiter wake-up round, which is the amortization the pipeline's ingest
// hot path relies on (DESIGN.md §5). Publishing an empty batch is a no-op
// returning the next offset.
func (t *Topic) PublishBatch(now time.Time, recs []Record) int64 {
	t.mu.Lock()
	first := int64(len(t.log))
	if len(recs) == 0 {
		t.mu.Unlock()
		return first
	}
	for i, r := range recs {
		at := r.Time
		if at.IsZero() {
			at = now
		}
		t.log = append(t.log, Message{Offset: first + int64(i), Time: at, Key: r.Key, Value: r.Value})
	}
	waiters := t.takeWaiters()
	t.mu.Unlock()
	for _, w := range waiters {
		close(w)
	}
	return first
}

// takeWaiters drains the waiter set; caller holds mu and must close every
// returned channel after releasing it.
func (t *Topic) takeWaiters() []chan struct{} {
	if len(t.waiters) == 0 {
		return nil
	}
	ws := make([]chan struct{}, 0, len(t.waiters))
	for _, w := range t.waiters {
		ws = append(ws, w)
	}
	clear(t.waiters)
	return ws
}

// Len returns the number of messages ever published.
func (t *Topic) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.log)
}

// Poll returns up to max messages for group starting at its committed
// offset, without committing. An empty slice means the group is caught up.
func (t *Topic) Poll(group string, max int) []Message {
	t.mu.Lock()
	defer t.mu.Unlock()
	start := t.groups[group]
	if start >= int64(len(t.log)) {
		return nil
	}
	end := start + int64(max)
	if end > int64(len(t.log)) {
		end = int64(len(t.log))
	}
	return t.log[start:end]
}

// Commit advances group's offset to next (typically lastRead+1). Offsets
// never move backwards.
func (t *Topic) Commit(group string, next int64) {
	t.mu.Lock()
	if next > t.groups[group] {
		t.groups[group] = next
	}
	t.mu.Unlock()
}

// Drop removes group's committed offset. Per-connection consumer groups
// must be dropped on disconnect or they accumulate in the topic forever
// (the feed-server leak this API was added to fix). Dropping an unknown
// group is a no-op.
func (t *Topic) Drop(group string) {
	t.mu.Lock()
	delete(t.groups, group)
	t.mu.Unlock()
}

// Groups returns the registered consumer-group names in sorted order.
func (t *Topic) Groups() []string {
	t.mu.Lock()
	names := make([]string, 0, len(t.groups))
	for g := range t.groups {
		names = append(names, g)
	}
	t.mu.Unlock()
	sort.Strings(names)
	return names
}

// Read returns up to max messages starting at offset from, independent of
// any consumer group — the replay path for subscribers that track their
// own position (the feed tier's catch-up reads). A from past the head
// returns nil; a negative from reads from the beginning.
func (t *Topic) Read(from int64, max int) []Message {
	if from < 0 {
		from = 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if from >= int64(len(t.log)) || max <= 0 {
		return nil
	}
	end := from + int64(max)
	if end > int64(len(t.log)) {
		end = int64(len(t.log))
	}
	return t.log[from:end]
}

// Committed returns the group's committed offset.
func (t *Topic) Committed(group string) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.groups[group]
}

// Lag returns how many messages group has not yet consumed.
func (t *Topic) Lag(group string) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return int64(len(t.log)) - t.groups[group]
}

// wait returns a channel closed at the next publish plus a cancel that
// deregisters the channel. Callers must re-check state after the channel
// fires, and must call cancel when abandoning the wait (e.g. on timeout)
// so the waiter entry does not accumulate on publish-idle topics.
func (t *Topic) wait() (<-chan struct{}, func()) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ch := make(chan struct{})
	id := t.nextWaiter
	t.nextWaiter++
	t.waiters[id] = ch
	return ch, func() {
		t.mu.Lock()
		delete(t.waiters, id)
		t.mu.Unlock()
	}
}

// pendingWaiters reports the number of registered waiter channels (tests
// assert the timeout path does not leak entries).
func (t *Topic) pendingWaiters() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.waiters)
}

// Consumer is a convenience wrapper binding a topic and a group.
type Consumer struct {
	topic *Topic
	group string
	batch int
}

// NewConsumer creates a consumer for group on topic with the given poll
// batch size (minimum 1).
func NewConsumer(topic *Topic, group string, batch int) *Consumer {
	if batch < 1 {
		batch = 1
	}
	return &Consumer{topic: topic, group: group, batch: batch}
}

// Close drops the consumer's group from the topic. Call it when the
// consumer is ephemeral (one group per connection) so the topic's group
// map does not grow without bound. The consumer must not be used after
// Close; a subsequent Poll would restart from offset zero.
func (c *Consumer) Close() {
	c.topic.Drop(c.group)
}

// Next returns the next batch and commits it. ok is false when caught up.
func (c *Consumer) Next() (msgs []Message, ok bool) {
	msgs = c.topic.Poll(c.group, c.batch)
	if len(msgs) == 0 {
		return nil, false
	}
	c.topic.Commit(c.group, msgs[len(msgs)-1].Offset+1)
	return msgs, true
}

// Drain consumes all pending messages, invoking fn per message, and
// commits after each batch. It returns the number consumed.
func (c *Consumer) Drain(fn func(Message)) int {
	n := 0
	for {
		msgs, ok := c.Next()
		if !ok {
			return n
		}
		for _, m := range msgs {
			fn(m)
			n++
		}
	}
}

// WaitNext blocks until a message is available or timeout elapses, then
// behaves like Next. It is intended for real-time (non-simulated) use.
func (c *Consumer) WaitNext(timeout time.Duration) ([]Message, bool) {
	deadline := time.Now().Add(timeout)
	for {
		if msgs, ok := c.Next(); ok {
			return msgs, true
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, false
		}
		ch, cancel := c.topic.wait()
		timer := time.NewTimer(remain)
		select {
		case <-ch:
			timer.Stop()
			cancel()
		case <-timer.C:
			cancel()
			return nil, false
		}
	}
}
