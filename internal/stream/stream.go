// Package stream is an embedded, in-process message bus modeled on the
// Kafka topology the DarkDNS paper describes: named topics carry ordered,
// replayable message logs; consumer groups track offsets independently.
//
// The bus favors batch hand-off over per-message channels: consumers poll
// slices of messages, which keeps the hot path allocation-free and is the
// design decision benchmarked in DESIGN.md §5.
package stream

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Message is one record in a topic log.
type Message struct {
	Offset int64
	Time   time.Time
	Key    string
	Value  []byte
}

// Errors returned by the bus.
var (
	ErrNoTopic   = errors.New("stream: no such topic")
	ErrTopicOpen = errors.New("stream: topic already exists")
	ErrClosed    = errors.New("stream: bus closed")
)

// Bus is a set of topics. The zero value is not usable; call NewBus.
type Bus struct {
	mu     sync.RWMutex
	topics map[string]*Topic
	closed bool
}

// NewBus creates an empty bus.
func NewBus() *Bus {
	return &Bus{topics: make(map[string]*Topic)}
}

// CreateTopic adds a topic. Recreating an existing topic is an error.
func (b *Bus) CreateTopic(name string) (*Topic, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	if _, ok := b.topics[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrTopicOpen, name)
	}
	t := &Topic{name: name, groups: make(map[string]int64)}
	b.topics[name] = t
	return t, nil
}

// Topic returns an existing topic, creating it on first use.
func (b *Bus) Topic(name string) *Topic {
	b.mu.RLock()
	t := b.topics[name]
	b.mu.RUnlock()
	if t != nil {
		return t
	}
	t, err := b.CreateTopic(name)
	if err != nil {
		// Lost a race; the topic now exists.
		b.mu.RLock()
		t = b.topics[name]
		b.mu.RUnlock()
	}
	return t
}

// Topics returns the topic names in sorted order.
func (b *Bus) Topics() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	names := make([]string, 0, len(b.topics))
	for n := range b.topics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Close marks the bus closed. Publishing to topics of a closed bus still
// works (topics are independent); Close only blocks topic creation.
func (b *Bus) Close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
}

// Topic is an append-only message log with consumer-group offsets.
type Topic struct {
	name string

	mu      sync.Mutex
	log     []Message
	groups  map[string]int64 // committed offset per group (next to read)
	waiters []chan struct{}
}

// Name returns the topic name.
func (t *Topic) Name() string { return t.name }

// Publish appends a message and returns its offset.
func (t *Topic) Publish(now time.Time, key string, value []byte) int64 {
	t.mu.Lock()
	off := int64(len(t.log))
	t.log = append(t.log, Message{Offset: off, Time: now, Key: key, Value: value})
	waiters := t.waiters
	t.waiters = nil
	t.mu.Unlock()
	for _, w := range waiters {
		close(w)
	}
	return off
}

// Len returns the number of messages ever published.
func (t *Topic) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.log)
}

// Poll returns up to max messages for group starting at its committed
// offset, without committing. An empty slice means the group is caught up.
func (t *Topic) Poll(group string, max int) []Message {
	t.mu.Lock()
	defer t.mu.Unlock()
	start := t.groups[group]
	if start >= int64(len(t.log)) {
		return nil
	}
	end := start + int64(max)
	if end > int64(len(t.log)) {
		end = int64(len(t.log))
	}
	return t.log[start:end]
}

// Commit advances group's offset to next (typically lastRead+1). Offsets
// never move backwards.
func (t *Topic) Commit(group string, next int64) {
	t.mu.Lock()
	if next > t.groups[group] {
		t.groups[group] = next
	}
	t.mu.Unlock()
}

// Committed returns the group's committed offset.
func (t *Topic) Committed(group string) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.groups[group]
}

// Lag returns how many messages group has not yet consumed.
func (t *Topic) Lag(group string) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return int64(len(t.log)) - t.groups[group]
}

// wait returns a channel closed at the next publish. Callers must
// re-check state after it fires.
func (t *Topic) wait() <-chan struct{} {
	t.mu.Lock()
	defer t.mu.Unlock()
	ch := make(chan struct{})
	t.waiters = append(t.waiters, ch)
	return ch
}

// Consumer is a convenience wrapper binding a topic and a group.
type Consumer struct {
	topic *Topic
	group string
	batch int
}

// NewConsumer creates a consumer for group on topic with the given poll
// batch size (minimum 1).
func NewConsumer(topic *Topic, group string, batch int) *Consumer {
	if batch < 1 {
		batch = 1
	}
	return &Consumer{topic: topic, group: group, batch: batch}
}

// Next returns the next batch and commits it. ok is false when caught up.
func (c *Consumer) Next() (msgs []Message, ok bool) {
	msgs = c.topic.Poll(c.group, c.batch)
	if len(msgs) == 0 {
		return nil, false
	}
	c.topic.Commit(c.group, msgs[len(msgs)-1].Offset+1)
	return msgs, true
}

// Drain consumes all pending messages, invoking fn per message, and
// commits after each batch. It returns the number consumed.
func (c *Consumer) Drain(fn func(Message)) int {
	n := 0
	for {
		msgs, ok := c.Next()
		if !ok {
			return n
		}
		for _, m := range msgs {
			fn(m)
			n++
		}
	}
}

// WaitNext blocks until a message is available or timeout elapses, then
// behaves like Next. It is intended for real-time (non-simulated) use.
func (c *Consumer) WaitNext(timeout time.Duration) ([]Message, bool) {
	deadline := time.Now().Add(timeout)
	for {
		if msgs, ok := c.Next(); ok {
			return msgs, true
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, false
		}
		select {
		case <-c.topic.wait():
		case <-time.After(remain):
			return nil, false
		}
	}
}
