package stream

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestPersistRestoreRoundTrip(t *testing.T) {
	bus := NewBus()
	src := bus.Topic("nrd")
	base := time.Date(2023, 11, 1, 12, 30, 45, 123456789, time.UTC)
	for i := 0; i < 100; i++ {
		src.Publish(base.Add(time.Duration(i)*time.Second), fmt.Sprintf("d%d.com", i), []byte{byte(i), byte(i >> 1)})
	}
	src.Commit("pipeline", 42)
	src.Commit("feed", 100)

	var buf bytes.Buffer
	if err := src.Persist(&buf); err != nil {
		t.Fatal(err)
	}

	dst := NewBus().Topic("nrd")
	if err := dst.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 100 {
		t.Fatalf("restored %d messages", dst.Len())
	}
	if dst.Committed("pipeline") != 42 || dst.Committed("feed") != 100 {
		t.Errorf("offsets: %d, %d", dst.Committed("pipeline"), dst.Committed("feed"))
	}
	msgs := dst.Poll("fresh", 3)
	if msgs[0].Key != "d0.com" || !msgs[0].Time.Equal(base) || msgs[0].Offset != 0 {
		t.Errorf("first message: %+v", msgs[0])
	}
	// The pipeline group resumes exactly where it left off.
	resumed := dst.Poll("pipeline", 1)
	if resumed[0].Offset != 42 {
		t.Errorf("pipeline resumes at %d", resumed[0].Offset)
	}
}

func TestRestoreRefusesNonEmptyTopic(t *testing.T) {
	src := NewBus().Topic("x")
	src.Publish(now, "k", nil)
	var buf bytes.Buffer
	src.Persist(&buf)

	dst := NewBus().Topic("x")
	dst.Publish(now, "existing", nil)
	if err := dst.Restore(&buf); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("want ErrBadSnapshot, got %v", err)
	}
}

func TestRestoreRejectsTruncation(t *testing.T) {
	src := NewBus().Topic("x")
	for i := 0; i < 50; i++ {
		src.Publish(now, "key-with-some-length", []byte("value payload")) // nontrivial body
	}
	var buf bytes.Buffer
	src.Persist(&buf)
	full := buf.Bytes()
	for _, cut := range []int{0, 3, len(full) / 2, len(full) - 1} {
		dst := NewBus().Topic("x")
		if err := dst.Restore(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("cut at %d accepted", cut)
		}
	}
}

func TestPersistEmptyTopic(t *testing.T) {
	src := NewBus().Topic("empty")
	var buf bytes.Buffer
	if err := src.Persist(&buf); err != nil {
		t.Fatal(err)
	}
	dst := NewBus().Topic("empty")
	if err := dst.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 0 {
		t.Error("empty round trip grew messages")
	}
}
