package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Topic persistence: an append-order binary snapshot of a topic's log and
// committed offsets, so a feed service can restart without losing its
// replay window (the paper's feeds persist to object storage).
//
// Layout:
//
//	magic "DSTR1\n"
//	varint messageCount
//	messages: varint unixNano, varint keyLen, key, varint valLen, val
//	varint groupCount
//	groups: varint nameLen, name, varint offset

const persistMagic = "DSTR1\n"

// ErrBadSnapshot is returned when restoring malformed data.
var ErrBadSnapshot = errors.New("stream: bad snapshot")

// Persist writes the topic's full log and group offsets to w.
func (t *Topic) Persist(w io.Writer) error {
	t.mu.Lock()
	log := append([]Message(nil), t.log...)
	groups := make(map[string]int64, len(t.groups))
	for g, off := range t.groups {
		groups[g] = off
	}
	t.mu.Unlock()

	bw := bufio.NewWriterSize(w, 64<<10)
	if _, err := bw.WriteString(persistMagic); err != nil {
		return err
	}
	putUvarint(bw, uint64(len(log)))
	for _, m := range log {
		putUvarint(bw, uint64(m.Time.UnixNano()))
		putBytes(bw, []byte(m.Key))
		putBytes(bw, m.Value)
	}
	putUvarint(bw, uint64(len(groups)))
	for g, off := range groups {
		putBytes(bw, []byte(g))
		putUvarint(bw, uint64(off))
	}
	return bw.Flush()
}

// Restore loads a snapshot written by Persist into an empty topic. It
// refuses to restore over existing messages.
func (t *Topic) Restore(r io.Reader) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.log) != 0 {
		return fmt.Errorf("%w: topic %q not empty", ErrBadSnapshot, t.name)
	}
	br := bufio.NewReaderSize(r, 64<<10)
	head := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(br, head); err != nil || string(head) != persistMagic {
		return fmt.Errorf("%w: magic", ErrBadSnapshot)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("%w: count", ErrBadSnapshot)
	}
	for i := uint64(0); i < n; i++ {
		nanos, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("%w: time", ErrBadSnapshot)
		}
		key, err := getBytes(br)
		if err != nil {
			return fmt.Errorf("%w: key", ErrBadSnapshot)
		}
		val, err := getBytes(br)
		if err != nil {
			return fmt.Errorf("%w: value", ErrBadSnapshot)
		}
		t.log = append(t.log, Message{
			Offset: int64(i),
			Time:   time.Unix(0, int64(nanos)).UTC(),
			Key:    string(key),
			Value:  val,
		})
	}
	g, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("%w: group count", ErrBadSnapshot)
	}
	for i := uint64(0); i < g; i++ {
		name, err := getBytes(br)
		if err != nil {
			return fmt.Errorf("%w: group name", ErrBadSnapshot)
		}
		off, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("%w: group offset", ErrBadSnapshot)
		}
		t.groups[string(name)] = int64(off)
	}
	return nil
}

func putUvarint(w *bufio.Writer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	w.Write(tmp[:n])
}

func putBytes(w *bufio.Writer, b []byte) {
	putUvarint(w, uint64(len(b)))
	w.Write(b)
}

func getBytes(r *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}
