package stream

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

var now = time.Date(2023, 11, 1, 0, 0, 0, 0, time.UTC)

func TestPublishPollCommit(t *testing.T) {
	b := NewBus()
	topic := b.Topic("nrd")
	for i := 0; i < 5; i++ {
		off := topic.Publish(now, fmt.Sprintf("k%d", i), []byte{byte(i)})
		if off != int64(i) {
			t.Fatalf("offset = %d, want %d", off, i)
		}
	}
	msgs := topic.Poll("g1", 3)
	if len(msgs) != 3 || msgs[0].Key != "k0" || msgs[2].Key != "k2" {
		t.Fatalf("poll: %+v", msgs)
	}
	// Without commit, poll returns the same window.
	again := topic.Poll("g1", 3)
	if again[0].Offset != 0 {
		t.Error("poll committed implicitly")
	}
	topic.Commit("g1", 3)
	rest := topic.Poll("g1", 10)
	if len(rest) != 2 || rest[0].Key != "k3" {
		t.Fatalf("after commit: %+v", rest)
	}
}

func TestGroupsAreIndependent(t *testing.T) {
	b := NewBus()
	topic := b.Topic("x")
	topic.Publish(now, "a", nil)
	topic.Publish(now, "b", nil)
	topic.Commit("g1", 2)
	if topic.Lag("g1") != 0 {
		t.Errorf("g1 lag = %d", topic.Lag("g1"))
	}
	if topic.Lag("g2") != 2 {
		t.Errorf("g2 lag = %d", topic.Lag("g2"))
	}
	if topic.Committed("g2") != 0 {
		t.Error("g2 committed moved")
	}
}

func TestCommitNeverRegresses(t *testing.T) {
	b := NewBus()
	topic := b.Topic("x")
	topic.Publish(now, "a", nil)
	topic.Commit("g", 1)
	topic.Commit("g", 0)
	if topic.Committed("g") != 1 {
		t.Error("commit regressed")
	}
}

func TestCreateTopicDuplicate(t *testing.T) {
	b := NewBus()
	if _, err := b.CreateTopic("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.CreateTopic("t"); !errors.Is(err, ErrTopicOpen) {
		t.Errorf("want ErrTopicOpen, got %v", err)
	}
}

func TestClosedBusRefusesNewTopics(t *testing.T) {
	b := NewBus()
	b.Close()
	if _, err := b.CreateTopic("t"); !errors.Is(err, ErrClosed) {
		t.Errorf("want ErrClosed, got %v", err)
	}
}

func TestTopicOnClosedBusNeverNil(t *testing.T) {
	b := NewBus()
	b.Close()
	// Historically this lost-race recovery path returned a nil *Topic
	// that callers dereferenced; it must now return a detached topic.
	topic := b.Topic("late")
	if topic == nil {
		t.Fatal("Topic returned nil on closed bus")
	}
	if off := topic.Publish(now, "k", nil); off != 0 {
		t.Fatalf("publish on detached topic: offset %d", off)
	}
	if got := b.Topics(); len(got) != 0 {
		t.Errorf("detached topic registered on closed bus: %v", got)
	}
}

func TestTopicPreClosePersistsAcrossClose(t *testing.T) {
	b := NewBus()
	pre := b.Topic("pre")
	b.Close()
	if got := b.Topic("pre"); got != pre {
		t.Error("existing topic not returned after Close")
	}
}

func TestPublishBatch(t *testing.T) {
	b := NewBus()
	topic := b.Topic("x")
	topic.Publish(now, "k0", nil)
	recs := []Record{{Key: "k1", Value: []byte("a")}, {Key: "k2", Value: []byte("b")}}
	if first := topic.PublishBatch(now.Add(time.Minute), recs); first != 1 {
		t.Fatalf("first offset = %d, want 1", first)
	}
	if first := topic.PublishBatch(now, nil); first != 3 {
		t.Fatalf("empty batch offset = %d, want 3", first)
	}
	msgs := topic.Poll("g", 10)
	if len(msgs) != 3 || msgs[1].Key != "k1" || msgs[2].Key != "k2" || msgs[2].Offset != 2 {
		t.Fatalf("log after batch: %+v", msgs)
	}
}

func TestPublishBatchWakesWaiters(t *testing.T) {
	b := NewBus()
	topic := b.Topic("x")
	c := NewConsumer(topic, "g", 10)
	done := make(chan int, 1)
	go func() {
		msgs, ok := c.WaitNext(5 * time.Second)
		if !ok {
			done <- -1
			return
		}
		done <- len(msgs)
	}()
	time.Sleep(10 * time.Millisecond)
	topic.PublishBatch(now, []Record{{Key: "a"}, {Key: "b"}})
	select {
	case got := <-done:
		if got != 2 {
			t.Fatalf("woke with %d messages", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("PublishBatch never woke the waiter")
	}
}

func TestWaitNextTimeoutDoesNotLeakWaiters(t *testing.T) {
	b := NewBus()
	topic := b.Topic("idle")
	c := NewConsumer(topic, "g", 1)
	for i := 0; i < 10; i++ {
		if _, ok := c.WaitNext(time.Millisecond); ok {
			t.Fatal("unexpected message")
		}
	}
	if n := topic.pendingWaiters(); n != 0 {
		t.Fatalf("leaked %d waiter channels after timeouts", n)
	}
}

func TestTopicsSorted(t *testing.T) {
	b := NewBus()
	b.Topic("zeta")
	b.Topic("alpha")
	got := b.Topics()
	if len(got) != 2 || got[0] != "alpha" {
		t.Errorf("Topics = %v", got)
	}
}

func TestConsumerNextAndDrain(t *testing.T) {
	b := NewBus()
	topic := b.Topic("x")
	for i := 0; i < 10; i++ {
		topic.Publish(now, "", []byte{byte(i)})
	}
	c := NewConsumer(topic, "g", 4)
	msgs, ok := c.Next()
	if !ok || len(msgs) != 4 {
		t.Fatalf("Next: %d msgs ok=%v", len(msgs), ok)
	}
	n := c.Drain(func(Message) {})
	if n != 6 {
		t.Errorf("Drain = %d, want 6", n)
	}
	if _, ok := c.Next(); ok {
		t.Error("Next after drain should be empty")
	}
}

func TestConsumerBatchFloor(t *testing.T) {
	b := NewBus()
	topic := b.Topic("x")
	topic.Publish(now, "", nil)
	c := NewConsumer(topic, "g", 0)
	if msgs, ok := c.Next(); !ok || len(msgs) != 1 {
		t.Error("batch floor of 1 not applied")
	}
}

func TestWaitNextWakesOnPublish(t *testing.T) {
	b := NewBus()
	topic := b.Topic("x")
	c := NewConsumer(topic, "g", 1)
	done := make(chan int, 1)
	go func() {
		msgs, ok := c.WaitNext(5 * time.Second)
		if !ok {
			done <- -1
			return
		}
		done <- int(msgs[0].Offset)
	}()
	time.Sleep(10 * time.Millisecond)
	topic.Publish(now, "wake", nil)
	select {
	case got := <-done:
		if got != 0 {
			t.Fatalf("got offset %d", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitNext never woke")
	}
}

func TestWaitNextTimesOut(t *testing.T) {
	b := NewBus()
	c := NewConsumer(b.Topic("x"), "g", 1)
	start := time.Now()
	if _, ok := c.WaitNext(20 * time.Millisecond); ok {
		t.Fatal("WaitNext returned messages on empty topic")
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Error("WaitNext returned too early")
	}
}

func TestConcurrentPublishersAndConsumers(t *testing.T) {
	b := NewBus()
	topic := b.Topic("x")
	const producers, per = 8, 250
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				topic.Publish(now, fmt.Sprintf("p%d-%d", p, i), nil)
			}
		}(p)
	}
	wg.Wait()
	if topic.Len() != producers*per {
		t.Fatalf("len = %d", topic.Len())
	}
	// Offsets must be dense and unique.
	seen := make(map[int64]bool)
	c := NewConsumer(topic, "g", 100)
	c.Drain(func(m Message) { seen[m.Offset] = true })
	if len(seen) != producers*per {
		t.Fatalf("consumed %d unique offsets", len(seen))
	}
}

func BenchmarkPublish(b *testing.B) {
	bus := NewBus()
	topic := bus.Topic("bench")
	payload := []byte("example.com,1700000000")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topic.Publish(now, "k", payload)
	}
}

func BenchmarkConsumeBatch100(b *testing.B) {
	bus := NewBus()
	topic := bus.Topic("bench")
	for i := 0; i < 100_000; i++ {
		topic.Publish(now, "k", nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewConsumer(topic, fmt.Sprintf("g%d", i), 100)
		c.Drain(func(Message) {})
	}
}

func BenchmarkConsumeBatch1(b *testing.B) {
	bus := NewBus()
	topic := bus.Topic("bench")
	for i := 0; i < 100_000; i++ {
		topic.Publish(now, "k", nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewConsumer(topic, fmt.Sprintf("g%d", i), 1)
		c.Drain(func(Message) {})
	}
}

func TestDropRemovesGroup(t *testing.T) {
	topic := newTopic("t")
	topic.Publish(now, "a", nil)
	topic.Commit("g1", 1)
	topic.Commit("g2", 1)
	if got := topic.Groups(); len(got) != 2 {
		t.Fatalf("groups = %v, want 2", got)
	}
	topic.Drop("g1")
	if got := topic.Groups(); len(got) != 1 || got[0] != "g2" {
		t.Errorf("groups after drop = %v, want [g2]", got)
	}
	topic.Drop("never-registered") // no-op
	if got := topic.Groups(); len(got) != 1 {
		t.Errorf("groups after no-op drop = %v", got)
	}
	// A dropped group restarts from zero, like any unknown group.
	if off := topic.Committed("g1"); off != 0 {
		t.Errorf("dropped group committed = %d, want 0", off)
	}
}

func TestConsumerCloseDropsItsGroup(t *testing.T) {
	topic := newTopic("t")
	topic.Publish(now, "a", nil)
	c := NewConsumer(topic, "conn-1", 8)
	if _, ok := c.Next(); !ok {
		t.Fatal("no batch")
	}
	if got := topic.Groups(); len(got) != 1 {
		t.Fatalf("groups = %v", got)
	}
	c.Close()
	if got := topic.Groups(); len(got) != 0 {
		t.Errorf("groups after Close = %v, want none", got)
	}
}

func TestReadIsGroupless(t *testing.T) {
	topic := newTopic("t")
	for i := 0; i < 5; i++ {
		topic.Publish(now, fmt.Sprintf("k%d", i), nil)
	}
	msgs := topic.Read(2, 2)
	if len(msgs) != 2 || msgs[0].Offset != 2 || msgs[1].Offset != 3 {
		t.Fatalf("Read(2,2) = %+v", msgs)
	}
	if msgs := topic.Read(-7, 3); len(msgs) != 3 || msgs[0].Offset != 0 {
		t.Errorf("negative from should clamp to 0: %+v", msgs)
	}
	if msgs := topic.Read(5, 10); msgs != nil {
		t.Errorf("Read past head = %+v, want nil", msgs)
	}
	if msgs := topic.Read(0, 0); msgs != nil {
		t.Errorf("Read with max 0 = %+v, want nil", msgs)
	}
	// Read leaves group state untouched.
	if got := topic.Groups(); len(got) != 0 {
		t.Errorf("Read registered groups: %v", got)
	}
}
