package dzdb

import (
	"testing"
	"time"

	"darkdns/internal/zoneset"
)

var t0 = time.Date(2023, 11, 1, 0, 0, 0, 0, time.UTC)

func TestObserveWindow(t *testing.T) {
	db := New()
	db.Observe("x.com", t0.Add(48*time.Hour))
	db.Observe("x.com", t0)
	db.Observe("x.com", t0.Add(24*time.Hour))

	o, ok := db.Lookup("X.COM")
	if !ok {
		t.Fatal("lookup failed")
	}
	if !o.FirstSeen.Equal(t0) || !o.LastSeen.Equal(t0.Add(48*time.Hour)) {
		t.Errorf("window: %+v", o)
	}
	if db.Len() != 1 {
		t.Errorf("Len = %d", db.Len())
	}
}

func TestLookupMissing(t *testing.T) {
	db := New()
	if _, ok := db.Lookup("nope.com"); ok {
		t.Error("missing domain found")
	}
}

func TestExistedBefore(t *testing.T) {
	db := New()
	db.Observe("old.com", t0.Add(-30*24*time.Hour))
	if !db.ExistedBefore("old.com", t0) {
		t.Error("old.com existed before t0")
	}
	if db.ExistedBefore("old.com", t0.Add(-31*24*time.Hour)) {
		t.Error("not before its first sighting")
	}
	if db.ExistedBefore("new.com", t0) {
		t.Error("unknown domain existed")
	}
}

func TestIngestSnapshot(t *testing.T) {
	db := New()
	s := zoneset.NewSnapshot("com", 1, t0)
	s.Add("a.com", []string{"ns1.x.net"})
	s.Add("b.com", []string{"ns1.x.net"})
	db.IngestSnapshot(s)
	if db.Len() != 2 {
		t.Fatalf("Len = %d", db.Len())
	}
	o, _ := db.Lookup("a.com")
	if !o.FirstSeen.Equal(t0) {
		t.Errorf("FirstSeen = %v", o.FirstSeen)
	}
	// A later snapshot extends LastSeen.
	s2 := zoneset.NewSnapshot("com", 2, t0.Add(24*time.Hour))
	s2.Add("a.com", []string{"ns1.x.net"})
	db.IngestSnapshot(s2)
	o, _ = db.Lookup("a.com")
	if !o.LastSeen.Equal(t0.Add(24 * time.Hour)) {
		t.Errorf("LastSeen = %v", o.LastSeen)
	}
}
