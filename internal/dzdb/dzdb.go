// Package dzdb is a historical zone database in the spirit of CAIDA's
// DZDB: for every domain ever observed in a zone snapshot it records the
// first and last observation. DarkDNS §4.2 uses it to show that ≈97 % of
// transient domains with failed RDAP lookups had existed in the past
// (stale-DV-token certificates).
package dzdb

import (
	"sync"
	"time"

	"darkdns/internal/dnsname"
	"darkdns/internal/zoneset"
)

// Observation is a domain's presence window across the zone archive.
type Observation struct {
	Domain    string
	FirstSeen time.Time
	LastSeen  time.Time
}

// DB accumulates zone snapshot observations.
type DB struct {
	mu   sync.RWMutex
	seen map[string]*Observation
}

// New creates an empty database.
func New() *DB {
	return &DB{seen: make(map[string]*Observation)}
}

// IngestSnapshot records every delegation in snap at the snapshot time.
func (db *DB) IngestSnapshot(snap *zoneset.Snapshot) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, dom := range snap.Domains() {
		db.observe(dom, snap.Taken)
	}
}

// Observe records a single domain sighting at t (used to seed pre-window
// history).
func (db *DB) Observe(domain string, t time.Time) {
	db.mu.Lock()
	db.observe(dnsname.Canonical(domain), t)
	db.mu.Unlock()
}

func (db *DB) observe(domain string, t time.Time) {
	o := db.seen[domain]
	if o == nil {
		db.seen[domain] = &Observation{Domain: domain, FirstSeen: t, LastSeen: t}
		return
	}
	if t.Before(o.FirstSeen) {
		o.FirstSeen = t
	}
	if t.After(o.LastSeen) {
		o.LastSeen = t
	}
}

// Lookup returns the observation window for domain.
func (db *DB) Lookup(domain string) (Observation, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	o, ok := db.seen[dnsname.Canonical(domain)]
	if !ok {
		return Observation{}, false
	}
	return *o, true
}

// ExistedBefore reports whether domain was observed strictly before t —
// the paper's "registered in the past" test.
func (db *DB) ExistedBefore(domain string, t time.Time) bool {
	o, ok := db.Lookup(domain)
	return ok && o.FirstSeen.Before(t)
}

// Len returns the number of distinct domains ever observed.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.seen)
}
