// Package zoneset models TLD zone snapshots as sets of delegations and
// implements both materialized and streaming diffs between snapshots.
//
// A CZDS-style daily snapshot is, for DarkDNS purposes, the set of
// delegated registered domains with their NS RRsets (plus glue). The diff
// between consecutive snapshots is the paper's baseline notion of "newly
// registered domains visible in zone files" (Table 1, column Zone NRD).
package zoneset

import (
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strings"
	"time"

	"darkdns/internal/dnsmsg"
	"darkdns/internal/dnsname"
	"darkdns/internal/zonefile"
)

// Delegation is one registered domain's delegation in its TLD zone.
type Delegation struct {
	Domain string   // canonical registered domain, e.g. "example.com"
	NS     []string // sorted nameserver targets
	Glue   []Glue   // in-bailiwick nameserver addresses
}

// Glue is an address record for an in-zone nameserver.
type Glue struct {
	Name string
	Addr netip.Addr
}

// nsEqual reports whether two sorted NS sets are identical.
func nsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Snapshot is an immutable-after-Build zone snapshot.
type Snapshot struct {
	TLD    string
	Serial uint32
	Taken  time.Time

	dels   map[string]*Delegation
	sorted []string // lazily built canonical-order domain list
}

// NewSnapshot creates an empty snapshot for tld.
func NewSnapshot(tld string, serial uint32, taken time.Time) *Snapshot {
	return &Snapshot{
		TLD:    dnsname.Canonical(tld),
		Serial: serial,
		Taken:  taken,
		dels:   make(map[string]*Delegation),
	}
}

// Add inserts or replaces a delegation. NS targets are canonicalized and
// sorted. Adding invalidates any previously returned Domains slice.
func (s *Snapshot) Add(domain string, ns []string, glue ...Glue) {
	domain = dnsname.Canonical(domain)
	cns := make([]string, len(ns))
	for i, n := range ns {
		cns[i] = dnsname.Canonical(n)
	}
	sort.Strings(cns)
	s.dels[domain] = &Delegation{Domain: domain, NS: cns, Glue: glue}
	s.sorted = nil
}

// Remove deletes a delegation.
func (s *Snapshot) Remove(domain string) {
	delete(s.dels, dnsname.Canonical(domain))
	s.sorted = nil
}

// Contains reports whether domain is delegated in this snapshot.
func (s *Snapshot) Contains(domain string) bool {
	_, ok := s.dels[dnsname.Canonical(domain)]
	return ok
}

// Get returns the delegation for domain, or nil.
func (s *Snapshot) Get(domain string) *Delegation {
	return s.dels[dnsname.Canonical(domain)]
}

// Len returns the number of delegations.
func (s *Snapshot) Len() int { return len(s.dels) }

// Domains returns all delegated domains in lexicographic order. The slice
// is cached; callers must not mutate it.
func (s *Snapshot) Domains() []string {
	if s.sorted == nil {
		s.sorted = make([]string, 0, len(s.dels))
		for d := range s.dels {
			s.sorted = append(s.sorted, d)
		}
		sort.Strings(s.sorted)
	}
	return s.sorted
}

// Clone returns a deep copy, used by registries to publish a frozen view.
func (s *Snapshot) Clone() *Snapshot {
	c := NewSnapshot(s.TLD, s.Serial, s.Taken)
	for d, del := range s.dels {
		ns := append([]string(nil), del.NS...)
		glue := append([]Glue(nil), del.Glue...)
		c.dels[d] = &Delegation{Domain: d, NS: ns, Glue: glue}
	}
	return c
}

// Diff is the difference between two snapshots.
type Diff struct {
	Added   []string // domains in new but not old (the zone-file NRDs)
	Removed []string // domains in old but not new
	Changed []string // domains present in both with a different NS set
}

// Compare computes old→new differences with both snapshots materialized.
func Compare(old, new *Snapshot) Diff {
	var d Diff
	for _, dom := range new.Domains() {
		o := old.dels[dom]
		if o == nil {
			d.Added = append(d.Added, dom)
		} else if !nsEqual(o.NS, new.dels[dom].NS) {
			d.Changed = append(d.Changed, dom)
		}
	}
	for _, dom := range old.Domains() {
		if _, ok := new.dels[dom]; !ok {
			d.Removed = append(d.Removed, dom)
		}
	}
	return d
}

// WriteZone serializes the snapshot as a master file: SOA apex record,
// apex NS, then one NS RRset per delegation with glue, in sorted order.
// (Named WriteZone rather than WriteTo to avoid colliding with the
// io.WriterTo signature convention.)
func (s *Snapshot) WriteZone(w io.Writer) (err error) {
	zw := zonefile.NewWriter(w, s.TLD)
	if err = zw.WriteComment(fmt.Sprintf("zone %s serial %d taken %s", s.TLD, s.Serial, s.Taken.UTC().Format(time.RFC3339))); err != nil {
		return err
	}
	soa := dnsmsg.Record{
		Name: s.TLD, Type: dnsmsg.TypeSOA, Class: dnsmsg.ClassIN, TTL: 900,
		SOA: dnsmsg.SOAData{
			MName: "a.nic." + s.TLD, RName: "hostmaster.nic." + s.TLD,
			Serial: s.Serial, Refresh: 1800, Retry: 900, Expire: 604800, Minimum: 86400,
		},
	}
	if err = zw.WriteRecord(&soa); err != nil {
		return err
	}
	apexNS := dnsmsg.Record{Name: s.TLD, Type: dnsmsg.TypeNS, Class: dnsmsg.ClassIN, TTL: 86400, NS: "a.nic." + s.TLD}
	if err = zw.WriteRecord(&apexNS); err != nil {
		return err
	}
	for _, dom := range s.Domains() {
		del := s.dels[dom]
		for _, ns := range del.NS {
			rec := dnsmsg.Record{Name: dom, Type: dnsmsg.TypeNS, Class: dnsmsg.ClassIN, TTL: 3600, NS: ns}
			if err = zw.WriteRecord(&rec); err != nil {
				return err
			}
		}
		for _, g := range del.Glue {
			rec := dnsmsg.Record{Name: g.Name, Class: dnsmsg.ClassIN, TTL: 3600}
			if g.Addr.Is4() {
				rec.Type, rec.A = dnsmsg.TypeA, g.Addr
			} else {
				rec.Type, rec.AAAA = dnsmsg.TypeAAAA, g.Addr
			}
			if err = zw.WriteRecord(&rec); err != nil {
				return err
			}
		}
	}
	return zw.Flush()
}

// Read materializes a snapshot from a master-file stream. Records that are
// not delegations (SOA, apex NS) set zone metadata; NS records below the
// apex group into delegations; in-bailiwick A/AAAA records attach as glue.
func Read(r io.Reader, tld string) (*Snapshot, error) {
	tld = dnsname.Canonical(tld)
	s := NewSnapshot(tld, 0, time.Time{})
	p := zonefile.New(r, zonefile.WithDefaultTTL(3600))
	pendingNS := make(map[string][]string)
	pendingGlue := make(map[string][]Glue)
	for {
		rec, err := p.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch rec.Type {
		case dnsmsg.TypeSOA:
			if rec.Name == tld {
				s.Serial = rec.SOA.Serial
			}
		case dnsmsg.TypeNS:
			if rec.Name == tld {
				continue // apex NS, not a delegation
			}
			dom := registeredUnder(rec.Name, tld)
			if dom == "" {
				continue
			}
			pendingNS[dom] = append(pendingNS[dom], dnsname.Canonical(rec.NS))
		case dnsmsg.TypeA, dnsmsg.TypeAAAA:
			dom := registeredUnder(rec.Name, tld)
			if dom == "" {
				continue
			}
			addr := rec.A
			if rec.Type == dnsmsg.TypeAAAA {
				addr = rec.AAAA
			}
			pendingGlue[dom] = append(pendingGlue[dom], Glue{Name: rec.Name, Addr: addr})
		}
	}
	for dom, ns := range pendingNS {
		s.Add(dom, ns, pendingGlue[dom]...)
	}
	return s, nil
}

// registeredUnder reduces name to its registered domain directly under tld
// ("ns1.example.com" under "com" → "example.com"); "" when not under tld.
func registeredUnder(name, tld string) string {
	if !dnsname.IsSubdomain(name, tld) || name == tld {
		return ""
	}
	rest := strings.TrimSuffix(name, "."+tld)
	if i := strings.LastIndexByte(rest, '.'); i >= 0 {
		rest = rest[i+1:]
	}
	return rest + "." + tld
}

// StreamDiff computes the diff between two sorted master-file streams in
// O(1) memory. Both inputs must be snapshots produced by WriteZone (or any
// zone file whose delegations appear in sorted owner order). The callback
// receives each difference as it is discovered.
//
// This is the ablation counterpart to Compare: DESIGN.md §5 benchmarks the
// two against each other on multi-hundred-thousand-entry zones.
func StreamDiff(old, new io.Reader, tld string, fn func(kind DiffKind, domain string)) error {
	oldIt, err := newDelegationIter(old, tld)
	if err != nil {
		return err
	}
	newIt, err := newDelegationIter(new, tld)
	if err != nil {
		return err
	}
	oldDel, oldOK, err := oldIt.next()
	if err != nil {
		return err
	}
	newDel, newOK, err := newIt.next()
	if err != nil {
		return err
	}
	for oldOK || newOK {
		switch {
		case !oldOK || (newOK && newDel.Domain < oldDel.Domain):
			fn(DiffAdded, newDel.Domain)
			if newDel, newOK, err = newIt.next(); err != nil {
				return err
			}
		case !newOK || (oldOK && oldDel.Domain < newDel.Domain):
			fn(DiffRemoved, oldDel.Domain)
			if oldDel, oldOK, err = oldIt.next(); err != nil {
				return err
			}
		default: // same domain
			if !nsEqual(oldDel.NS, newDel.NS) {
				fn(DiffChanged, newDel.Domain)
			}
			if oldDel, oldOK, err = oldIt.next(); err != nil {
				return err
			}
			if newDel, newOK, err = newIt.next(); err != nil {
				return err
			}
		}
	}
	return nil
}

// DiffKind labels a StreamDiff callback event.
type DiffKind uint8

// Diff event kinds.
const (
	DiffAdded DiffKind = iota
	DiffRemoved
	DiffChanged
)

// String returns the kind name.
func (k DiffKind) String() string {
	switch k {
	case DiffAdded:
		return "added"
	case DiffRemoved:
		return "removed"
	case DiffChanged:
		return "changed"
	}
	return "unknown"
}

// delegationIter yields delegations grouped by owner from a sorted stream.
type delegationIter struct {
	p    *zonefile.Parser
	tld  string
	held *dnsmsg.Record // first record of the next group
	done bool
}

func newDelegationIter(r io.Reader, tld string) (*delegationIter, error) {
	return &delegationIter{
		p:   zonefile.New(r, zonefile.WithDefaultTTL(3600)),
		tld: dnsname.Canonical(tld),
	}, nil
}

// next returns the next delegation in stream order.
func (it *delegationIter) next() (Delegation, bool, error) {
	var del Delegation
	for {
		rec := it.held
		it.held = nil
		if rec == nil {
			if it.done {
				break
			}
			r, err := it.p.Next()
			if err == io.EOF {
				it.done = true
				break
			}
			if err != nil {
				return del, false, err
			}
			rec = r
		}
		if rec.Type != dnsmsg.TypeNS || rec.Name == it.tld {
			continue // skip SOA, apex, glue
		}
		dom := registeredUnder(rec.Name, it.tld)
		if dom == "" {
			continue
		}
		if del.Domain == "" {
			del.Domain = dom
		}
		if dom != del.Domain {
			it.held = rec // start of the next group
			break
		}
		del.NS = append(del.NS, dnsname.Canonical(rec.NS))
	}
	if del.Domain == "" {
		return del, false, nil
	}
	sort.Strings(del.NS)
	return del, true, nil
}
