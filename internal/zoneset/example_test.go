package zoneset_test

import (
	"bytes"
	"fmt"
	"time"

	"darkdns/internal/zoneset"
)

func ExampleCompare() {
	yesterday := zoneset.NewSnapshot("com", 1, time.Time{})
	yesterday.Add("stays.com", []string{"ns1.example.net"})
	yesterday.Add("leaves.com", []string{"ns1.example.net"})

	today := zoneset.NewSnapshot("com", 2, time.Time{})
	today.Add("stays.com", []string{"ns1.example.net"})
	today.Add("arrives.com", []string{"ns2.example.net"})

	d := zoneset.Compare(yesterday, today)
	fmt.Println("added:", d.Added)
	fmt.Println("removed:", d.Removed)
	// Output:
	// added: [arrives.com]
	// removed: [leaves.com]
}

func ExampleStreamDiff() {
	old := zoneset.NewSnapshot("shop", 1, time.Time{})
	old.Add("alpha.shop", []string{"ns1.example.net"})
	new := zoneset.NewSnapshot("shop", 2, time.Time{})
	new.Add("alpha.shop", []string{"ns1.example.net"})
	new.Add("beta.shop", []string{"ns1.example.net"})

	var bufOld, bufNew bytes.Buffer
	old.WriteZone(&bufOld)
	new.WriteZone(&bufNew)

	zoneset.StreamDiff(&bufOld, &bufNew, "shop", func(kind zoneset.DiffKind, domain string) {
		fmt.Println(kind, domain)
	})
	// Output:
	// added beta.shop
}
