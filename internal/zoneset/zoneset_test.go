package zoneset

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/netip"
	"reflect"
	"sort"
	"testing"
	"time"
)

var t0 = time.Date(2023, 11, 1, 0, 0, 0, 0, time.UTC)

func snap(tld string, serial uint32, domains ...string) *Snapshot {
	s := NewSnapshot(tld, serial, t0)
	for _, d := range domains {
		s.Add(d, []string{"ns1.cloudflare.com", "ns2.cloudflare.com"})
	}
	return s
}

func TestAddContainsRemove(t *testing.T) {
	s := snap("com", 1, "Example.COM")
	if !s.Contains("example.com") || !s.Contains("EXAMPLE.com.") {
		t.Error("canonicalization on Contains failed")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
	s.Remove("EXAMPLE.COM")
	if s.Contains("example.com") || s.Len() != 0 {
		t.Error("Remove failed")
	}
}

func TestDomainsSortedAndCached(t *testing.T) {
	s := snap("com", 1, "b.com", "a.com", "c.com")
	d := s.Domains()
	if !sort.StringsAreSorted(d) {
		t.Errorf("not sorted: %v", d)
	}
	s.Add("0.com", []string{"ns.x.net"})
	d2 := s.Domains()
	if len(d2) != 4 || d2[0] != "0.com" {
		t.Errorf("cache not invalidated: %v", d2)
	}
}

func TestNSSetsSortedOnAdd(t *testing.T) {
	s := NewSnapshot("com", 1, t0)
	s.Add("x.com", []string{"ns2.b.net", "NS1.a.net"})
	got := s.Get("x.com").NS
	if !reflect.DeepEqual(got, []string{"ns1.a.net", "ns2.b.net"}) {
		t.Errorf("NS = %v", got)
	}
}

func TestCompare(t *testing.T) {
	old := snap("com", 1, "keep.com", "gone.com", "changed.com")
	new := snap("com", 2, "keep.com", "fresh.com")
	new.Add("changed.com", []string{"ns1.dns-parking.com"})
	d := Compare(old, new)
	if !reflect.DeepEqual(d.Added, []string{"fresh.com"}) {
		t.Errorf("Added = %v", d.Added)
	}
	if !reflect.DeepEqual(d.Removed, []string{"gone.com"}) {
		t.Errorf("Removed = %v", d.Removed)
	}
	if !reflect.DeepEqual(d.Changed, []string{"changed.com"}) {
		t.Errorf("Changed = %v", d.Changed)
	}
}

func TestCompareIdentical(t *testing.T) {
	a := snap("com", 1, "x.com", "y.com")
	d := Compare(a, a.Clone())
	if len(d.Added)+len(d.Removed)+len(d.Changed) != 0 {
		t.Errorf("self-diff nonempty: %+v", d)
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := snap("com", 1, "x.com")
	b := a.Clone()
	b.Get("x.com").NS[0] = "evil.example"
	if a.Get("x.com").NS[0] == "evil.example" {
		t.Error("Clone shares NS slices")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := NewSnapshot("shop", 42, t0)
	s.Add("alpha.shop", []string{"ns1.cloudflare.com", "ns2.cloudflare.com"})
	s.Add("beta.shop", []string{"ns1.beta.shop"}, Glue{Name: "ns1.beta.shop", Addr: netip.MustParseAddr("192.0.2.53")})
	s.Add("gamma.shop", []string{"dns1.dns-parking.com"})

	var buf bytes.Buffer
	if err := s.WriteZone(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf, "shop")
	if err != nil {
		t.Fatal(err)
	}
	if got.Serial != 42 {
		t.Errorf("serial = %d", got.Serial)
	}
	if got.Len() != 3 {
		t.Fatalf("len = %d, want 3", got.Len())
	}
	if !reflect.DeepEqual(got.Get("alpha.shop").NS, s.Get("alpha.shop").NS) {
		t.Errorf("alpha NS: %v", got.Get("alpha.shop").NS)
	}
	g := got.Get("beta.shop")
	if len(g.Glue) != 1 || g.Glue[0].Addr.String() != "192.0.2.53" {
		t.Errorf("glue: %+v", g.Glue)
	}
}

func TestReadIgnoresOutOfZone(t *testing.T) {
	src := `$ORIGIN com.
@ 900 IN SOA a.nic.com. host.nic.com. 7 1 1 1 1
@ 86400 IN NS a.nic.com.
example 3600 IN NS ns1.other.net.
stray.example.org. 3600 IN NS ns.org.
`
	s, err := Read(bytes.NewBufferString(src), "com")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 || !s.Contains("example.com") {
		t.Errorf("delegations: %v", s.Domains())
	}
	if s.Serial != 7 {
		t.Errorf("serial = %d", s.Serial)
	}
}

func TestStreamDiffMatchesCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	old := NewSnapshot("top", 1, t0)
	new := NewSnapshot("top", 2, t0.Add(24*time.Hour))
	for i := 0; i < 500; i++ {
		d := fmt.Sprintf("d%04d.top", i)
		ns := []string{fmt.Sprintf("ns%d.cloudflare.com", rng.Intn(3))}
		inOld, inNew := rng.Intn(3) != 0, rng.Intn(3) != 0
		if inOld {
			old.Add(d, ns)
		}
		if inNew {
			ns2 := ns
			if rng.Intn(4) == 0 {
				ns2 = []string{"ns9.changed.net"}
			}
			new.Add(d, ns2)
		}
	}
	want := Compare(old, new)

	var bufOld, bufNew bytes.Buffer
	if err := old.WriteZone(&bufOld); err != nil {
		t.Fatal(err)
	}
	if err := new.WriteZone(&bufNew); err != nil {
		t.Fatal(err)
	}
	got := Diff{}
	err := StreamDiff(&bufOld, &bufNew, "top", func(k DiffKind, dom string) {
		switch k {
		case DiffAdded:
			got.Added = append(got.Added, dom)
		case DiffRemoved:
			got.Removed = append(got.Removed, dom)
		case DiffChanged:
			got.Changed = append(got.Changed, dom)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(want.Added)
	sort.Strings(want.Removed)
	sort.Strings(want.Changed)
	if !reflect.DeepEqual(got.Added, want.Added) {
		t.Errorf("Added mismatch:\n got %d %v\nwant %d %v", len(got.Added), head(got.Added), len(want.Added), head(want.Added))
	}
	if !reflect.DeepEqual(got.Removed, want.Removed) {
		t.Errorf("Removed mismatch: got %d want %d", len(got.Removed), len(want.Removed))
	}
	if !reflect.DeepEqual(got.Changed, want.Changed) {
		t.Errorf("Changed mismatch: got %d want %d", len(got.Changed), len(want.Changed))
	}
}

func head(s []string) []string {
	if len(s) > 5 {
		return s[:5]
	}
	return s
}

func TestStreamDiffEmptySides(t *testing.T) {
	s := snap("com", 1, "a.com", "b.com")
	var full, empty bytes.Buffer
	if err := s.WriteZone(&full); err != nil {
		t.Fatal(err)
	}
	NewSnapshot("com", 0, t0).WriteZone(&empty)

	added := 0
	if err := StreamDiff(&empty, &full, "com", func(k DiffKind, _ string) {
		if k == DiffAdded {
			added++
		}
	}); err != nil {
		t.Fatal(err)
	}
	if added != 2 {
		t.Errorf("added = %d, want 2", added)
	}
}

func TestDiffKindString(t *testing.T) {
	if DiffAdded.String() != "added" || DiffRemoved.String() != "removed" || DiffChanged.String() != "changed" || DiffKind(9).String() != "unknown" {
		t.Error("DiffKind strings")
	}
}

func buildBig(n int, mutate bool) (*Snapshot, *Snapshot) {
	rng := rand.New(rand.NewSource(11))
	old := NewSnapshot("com", 1, t0)
	new := NewSnapshot("com", 2, t0)
	for i := 0; i < n; i++ {
		d := fmt.Sprintf("domain%07d.com", i)
		ns := []string{"ns1.cloudflare.com"}
		old.Add(d, ns)
		if !mutate || rng.Intn(100) != 0 {
			new.Add(d, ns)
		}
	}
	return old, new
}

func BenchmarkCompareMaterialized(b *testing.B) {
	old, new := buildBig(100_000, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compare(old, new)
	}
}

func BenchmarkStreamDiff(b *testing.B) {
	old, new := buildBig(100_000, true)
	var bufOld, bufNew bytes.Buffer
	old.WriteZone(&bufOld)
	new.WriteZone(&bufNew)
	ob, nb := bufOld.Bytes(), bufNew.Bytes()
	b.SetBytes(int64(len(ob) + len(nb)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := StreamDiff(bytes.NewReader(ob), bytes.NewReader(nb), "com", func(DiffKind, string) { n++ }); err != nil {
			b.Fatal(err)
		}
	}
}
