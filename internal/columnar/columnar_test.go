package columnar

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func measurementSchema() Schema {
	return Schema{
		{Name: "domain", Type: TypeString},
		{Name: "ts", Type: TypeInt64},
		{Name: "alive", Type: TypeBool},
	}
}

func TestSchemaRoundTrip(t *testing.T) {
	s := measurementSchema()
	got, err := ParseSchema(s.String())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Errorf("schema round trip: %v vs %v", got, s)
	}
	if s.Index("ts") != 1 || s.Index("missing") != -1 {
		t.Error("Index")
	}
}

func TestParseSchemaErrors(t *testing.T) {
	for _, bad := range []string{"", "noType", ":string", "x:floats"} {
		if _, err := ParseSchema(bad); err == nil {
			t.Errorf("ParseSchema(%q) should fail", bad)
		}
	}
}

func TestWriteReadSingleGroup(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, measurementSchema(), 0)
	rows := []struct {
		d  string
		ts int64
		a  bool
	}{
		{"example.com", 1700000000, true},
		{"example.com", 1700000600, true},
		{"dead.shop", 1700000000, false},
	}
	for _, r := range rows {
		if err := w.Append(String(r.d), Int(r.ts), Bool(r.a)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if g.Rows != 3 {
		t.Fatalf("rows = %d", g.Rows)
	}
	if !reflect.DeepEqual(g.Strs["domain"], []string{"example.com", "example.com", "dead.shop"}) {
		t.Errorf("domains: %v", g.Strs["domain"])
	}
	if !reflect.DeepEqual(g.Ints["ts"], []int64{1700000000, 1700000600, 1700000000}) {
		t.Errorf("ts: %v", g.Ints["ts"])
	}
	if !reflect.DeepEqual(g.Bools["alive"], []bool{true, true, false}) {
		t.Errorf("alive: %v", g.Bools["alive"])
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("want io.EOF, got %v", err)
	}
}

func TestMultipleRowGroups(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, measurementSchema(), 10)
	for i := 0; i < 35; i++ {
		if err := w.Append(String(fmt.Sprintf("d%d.com", i%7)), Int(int64(i)), Bool(i%2 == 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var groups, total int
	for {
		g, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		groups++
		total += g.Rows
	}
	if groups != 4 || total != 35 {
		t.Errorf("groups=%d total=%d, want 4/35", groups, total)
	}
}

func TestEmptyFile(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, measurementSchema(), 0)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("want io.EOF, got %v", err)
	}
}

func TestAppendArityMismatch(t *testing.T) {
	w := NewWriter(io.Discard, measurementSchema(), 0)
	if err := w.Append(String("x")); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTCOL\n"))); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should fail")
	}
}

func TestTruncatedFile(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, measurementSchema(), 0)
	for i := 0; i < 100; i++ {
		w.Append(String("x.com"), Int(int64(i)), Bool(true))
	}
	w.Close()
	full := buf.Bytes()
	for _, cut := range []int{len(magic) + 2, len(full) / 2, len(full) - 2} {
		r, err := NewReader(bytes.NewReader(full[:cut]))
		if err != nil {
			continue // header truncation is fine too
		}
		for {
			_, err = r.Next()
			if err != nil {
				break
			}
		}
		if err == io.EOF {
			t.Errorf("cut at %d: clean EOF on truncated file", cut)
		}
	}
}

func TestDictionaryCompression(t *testing.T) {
	// Highly repetitive strings (NS hostnames) should compress far below
	// the raw size.
	var buf bytes.Buffer
	schema := Schema{{Name: "ns", Type: TypeString}}
	w := NewWriter(&buf, schema, 0)
	raw := 0
	for i := 0; i < 10_000; i++ {
		s := fmt.Sprintf("ns%d.cloudflare.com", i%4)
		raw += len(s)
		w.Append(String(s))
	}
	w.Close()
	if buf.Len() > raw/5 {
		t.Errorf("encoded %d bytes for %d raw; dictionary ineffective", buf.Len(), raw)
	}
}

func TestDeltaEncodingOfTimestamps(t *testing.T) {
	// Monotone timestamps (the common case) should use ~1-2 bytes/row.
	var buf bytes.Buffer
	schema := Schema{{Name: "ts", Type: TypeInt64}}
	w := NewWriter(&buf, schema, 0)
	ts := int64(1_700_000_000)
	for i := 0; i < 10_000; i++ {
		ts += 600
		w.Append(Int(ts))
	}
	w.Close()
	if buf.Len() > 3*10_000 {
		t.Errorf("encoded %d bytes for 10k timestamps", buf.Len())
	}
}

func TestPropertyRoundTripRandomRows(t *testing.T) {
	f := func(seed int64, nRows uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRows)
		var buf bytes.Buffer
		w := NewWriter(&buf, measurementSchema(), 7) // small groups to cross boundaries
		type row struct {
			s string
			i int64
			b bool
		}
		rows := make([]row, n)
		for i := range rows {
			rows[i] = row{
				s: fmt.Sprintf("d%d.com", rng.Intn(10)),
				i: rng.Int63n(1<<40) - (1 << 39),
				b: rng.Intn(2) == 0,
			}
			if err := w.Append(String(rows[i].s), Int(rows[i].i), Bool(rows[i].b)); err != nil {
				return false
			}
		}
		if err := w.Close(); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		var got []row
		for {
			g, err := r.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return false
			}
			for i := 0; i < g.Rows; i++ {
				got = append(got, row{g.Strs["domain"][i], g.Ints["ts"][i], g.Bools["alive"][i]})
			}
		}
		return reflect.DeepEqual(got, rows) || (len(got) == 0 && n == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkWrite(b *testing.B) {
	schema := measurementSchema()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := NewWriter(io.Discard, schema, 0)
		for j := 0; j < 1000; j++ {
			w.Append(String("example.com"), Int(int64(j)), Bool(true))
		}
		w.Close()
	}
}

func BenchmarkRead(b *testing.B) {
	var buf bytes.Buffer
	w := NewWriter(&buf, measurementSchema(), 0)
	for j := 0; j < 10_000; j++ {
		w.Append(String(fmt.Sprintf("d%d.com", j%50)), Int(int64(j)), Bool(j%3 == 0))
	}
	w.Close()
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, err := r.Next(); err != nil {
				break
			}
		}
	}
}

func TestFloatBytesRoundTrip(t *testing.T) {
	schema := Schema{
		{Name: "rate", Type: TypeFloat64},
		{Name: "blob", Type: TypeBytes},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf, schema, 5) // small groups to cross boundaries
	floats := []float64{0, 1.5, 1.5, -2.25, 0.001, math.Inf(1), math.Inf(-1),
		math.MaxFloat64, math.SmallestNonzeroFloat64, 0.93, 0.93, 0.94}
	var blobs [][]byte
	for i, f := range floats {
		b := []byte(fmt.Sprintf("blob-%d", i))
		if i%3 == 0 {
			b = nil // empty values must survive
		}
		blobs = append(blobs, b)
		if err := w.Append(Float(f), Bytes(b)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var gotF []float64
	var gotB [][]byte
	for {
		g, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		gotF = append(gotF, g.Floats["rate"]...)
		gotB = append(gotB, g.Bytes["blob"]...)
	}
	if len(gotF) != len(floats) {
		t.Fatalf("got %d floats, want %d", len(gotF), len(floats))
	}
	for i, f := range floats {
		if math.Float64bits(gotF[i]) != math.Float64bits(f) {
			t.Errorf("float[%d] = %v, want %v", i, gotF[i], f)
		}
	}
	for i, b := range blobs {
		if !bytes.Equal(gotB[i], b) {
			t.Errorf("bytes[%d] = %q, want %q", i, gotB[i], b)
		}
	}
}

func TestFloatNaNRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Schema{{Name: "f", Type: TypeFloat64}}, 0)
	w.Append(Float(math.NaN()))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(g.Floats["f"][0]) {
		t.Errorf("NaN decoded to %v", g.Floats["f"][0])
	}
}

func TestFloatDeltaCompression(t *testing.T) {
	// Repeated round constants (sweep-cell parameters) should shrink to a
	// byte or two per value under the mantissa-reversed delta encoding.
	var buf bytes.Buffer
	w := NewWriter(&buf, Schema{{Name: "scale", Type: TypeFloat64}}, 0)
	for i := 0; i < 10_000; i++ {
		w.Append(Float(0.02))
	}
	w.Close()
	if buf.Len() > 3*10_000 {
		t.Errorf("encoded %d bytes for 10k repeated floats", buf.Len())
	}
}

func TestWriterFlushAlignsGroups(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Schema{{Name: "n", Type: TypeInt64}}, 0)
	for i := 0; i < 3; i++ {
		w.Append(Int(int64(i)))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 3; i < 5; i++ {
		w.Append(Int(int64(i)))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var sizes []int
	for {
		g, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, g.Rows)
	}
	if !reflect.DeepEqual(sizes, []int{3, 2}) {
		t.Errorf("group sizes = %v, want [3 2]", sizes)
	}
}

func TestCorruptInputsReturnErrors(t *testing.T) {
	// Build a small valid file, then corrupt it in targeted ways; every
	// variant must surface an error without panicking.
	var buf bytes.Buffer
	w := NewWriter(&buf, measurementSchema(), 0)
	for i := 0; i < 10; i++ {
		w.Append(String("x.com"), Int(int64(i)), Bool(true))
	}
	w.Close()
	full := buf.Bytes()

	cases := map[string][]byte{
		"huge row count": func() []byte {
			// Replace the first row-group count with an absurd varint.
			schemaEnd := len(magic) + 1 + len(measurementSchema().String())
			out := append([]byte(nil), full[:schemaEnd]...)
			out = binary.AppendUvarint(out, 1<<40)
			return append(out, full[schemaEnd+1:]...)
		}(),
		"huge chunk length": func() []byte {
			schemaEnd := len(magic) + 1 + len(measurementSchema().String())
			out := append([]byte(nil), full[:schemaEnd+1]...)
			out = binary.AppendUvarint(out, 1<<50)
			return out
		}(),
		"unknown schema type": []byte(magic + "\x09x:float32"),
		"truncated varint":    append(append([]byte(nil), full[:len(magic)]...), 0xff),
	}
	for name, data := range cases {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			continue // error at header stage is an acceptable outcome
		}
		for {
			_, err = r.Next()
			if err != nil {
				break
			}
		}
		if err == nil || errors.Is(err, io.EOF) {
			t.Errorf("%s: want decode error, got %v", name, err)
		}
	}
}

// TestReaderReuse drives the storage-recycling mode: groups consumed one
// at a time must decode identically to the default mode, strings must
// survive the next group's decode (they never alias scratch), and byte
// values must be correct at the moment their group is current.
func TestReaderReuse(t *testing.T) {
	schema, err := ParseSchema("s:string,i:int64,f:float64,raw:bytes,ok:bool")
	if err != nil {
		t.Fatal(err)
	}
	const rows, groupRows = 25, 4
	var buf bytes.Buffer
	w := NewWriter(&buf, schema, groupRows)
	for i := 0; i < rows; i++ {
		err := w.Append(
			String(fmt.Sprintf("row-%02d", i)), Int(int64(i*3)), Float(float64(i)/7),
			Bytes([]byte{byte(i), byte(i + 1)}), Bool(i%3 == 0))
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	r.Reuse()
	var keptStrs []string // strings retained across groups must stay valid
	i := 0
	for {
		g, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < g.Rows; k++ {
			if want := fmt.Sprintf("row-%02d", i); g.Strs["s"][k] != want {
				t.Fatalf("row %d: s = %q, want %q", i, g.Strs["s"][k], want)
			}
			if g.Ints["i"][k] != int64(i*3) {
				t.Fatalf("row %d: i = %d", i, g.Ints["i"][k])
			}
			if g.Floats["f"][k] != float64(i)/7 {
				t.Fatalf("row %d: f = %v", i, g.Floats["f"][k])
			}
			if !bytes.Equal(g.Bytes["raw"][k], []byte{byte(i), byte(i + 1)}) {
				t.Fatalf("row %d: raw = %v", i, g.Bytes["raw"][k])
			}
			if g.Bools["ok"][k] != (i%3 == 0) {
				t.Fatalf("row %d: ok = %v", i, g.Bools["ok"][k])
			}
			keptStrs = append(keptStrs, g.Strs["s"][k])
			i++
		}
	}
	if i != rows {
		t.Fatalf("rows = %d, want %d", i, rows)
	}
	for j, s := range keptStrs {
		if want := fmt.Sprintf("row-%02d", j); s != want {
			t.Fatalf("retained string %d corrupted by reuse: %q, want %q", j, s, want)
		}
	}
}
