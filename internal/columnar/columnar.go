// Package columnar implements a small Parquet-inspired columnar storage
// format used by the DarkDNS pipeline to persist measurement batches for
// longitudinal analysis (the paper stores Kafka topic contents as Parquet
// in object storage).
//
// A file is a sequence of row groups. Each column chunk is independently
// encoded: strings use dictionary encoding with varint indexes, integers
// use zigzag-varint deltas, booleans use run-length encoding, float64s
// use mantissa-reversed zigzag deltas (round constants and repeated
// values shrink to a byte or two), and raw byte columns are
// length-prefixed. The format is self-describing: the schema is embedded
// in the header.
//
// Layout:
//
//	magic "DCOL1\n"
//	varint schemaLen, schema (name:type pairs)
//	row groups:
//	  varint rowCount (0 = end of file)
//	  per column: varint chunkLen, chunk bytes
package columnar

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/bits"
	"strings"
)

// ColType is a column's value type.
type ColType uint8

// Supported column types.
const (
	TypeString ColType = iota
	TypeInt64
	TypeBool
	TypeFloat64
	TypeBytes
)

// String returns the schema mnemonic.
func (t ColType) String() string {
	switch t {
	case TypeString:
		return "string"
	case TypeInt64:
		return "int64"
	case TypeBool:
		return "bool"
	case TypeFloat64:
		return "float64"
	case TypeBytes:
		return "bytes"
	}
	return fmt.Sprintf("type%d", uint8(t))
}

func parseColType(s string) (ColType, error) {
	switch s {
	case "string":
		return TypeString, nil
	case "int64":
		return TypeInt64, nil
	case "bool":
		return TypeBool, nil
	case "float64":
		return TypeFloat64, nil
	case "bytes":
		return TypeBytes, nil
	}
	return 0, fmt.Errorf("columnar: unknown column type %q", s)
}

// Column describes one schema column.
type Column struct {
	Name string
	Type ColType
}

// Schema is an ordered column list.
type Schema []Column

// String renders "name:type,name:type".
func (s Schema) String() string {
	parts := make([]string, len(s))
	for i, c := range s {
		parts[i] = c.Name + ":" + c.Type.String()
	}
	return strings.Join(parts, ",")
}

// ParseSchema inverts Schema.String.
func ParseSchema(s string) (Schema, error) {
	if s == "" {
		return nil, errors.New("columnar: empty schema")
	}
	parts := strings.Split(s, ",")
	out := make(Schema, 0, len(parts))
	for _, p := range parts {
		name, ts, ok := strings.Cut(p, ":")
		if !ok || name == "" {
			return nil, fmt.Errorf("columnar: bad schema field %q", p)
		}
		ct, err := parseColType(ts)
		if err != nil {
			return nil, err
		}
		out = append(out, Column{Name: name, Type: ct})
	}
	return out, nil
}

// Index returns the position of the named column, or -1.
func (s Schema) Index(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Value is a dynamically typed cell.
type Value struct {
	S   string
	I   int64
	B   bool
	F   float64
	Raw []byte
}

// String builds a string cell.
func String(s string) Value { return Value{S: s} }

// Int builds an int64 cell.
func Int(i int64) Value { return Value{I: i} }

// Bool builds a bool cell.
func Bool(b bool) Value { return Value{B: b} }

// Float builds a float64 cell.
func Float(f float64) Value { return Value{F: f} }

// Bytes builds a raw-bytes cell.
func Bytes(b []byte) Value { return Value{Raw: b} }

const magic = "DCOL1\n"

// maxGroupRows caps both the writer's row-group size and the row count a
// reader will accept for a single group, so a corrupt or hostile header
// cannot make the decoder allocate unboundedly.
const maxGroupRows = 1 << 24

// Writer writes row groups to an underlying writer.
type Writer struct {
	w       *bufio.Writer
	schema  Schema
	started bool

	// pending row-group buffers, one per column
	strs   [][]string
	ints   [][]int64
	bools  [][]bool
	floats [][]float64
	raws   [][][]byte
	rows   int
	// groupRows is the row-group flush threshold.
	groupRows int
}

// NewWriter creates a writer with the given schema. groupRows controls the
// row-group size (<=0 selects the 8192 default; values above maxGroupRows
// are clamped so any file we produce stays readable).
func NewWriter(w io.Writer, schema Schema, groupRows int) *Writer {
	if groupRows <= 0 {
		groupRows = 8192
	}
	if groupRows > maxGroupRows {
		groupRows = maxGroupRows
	}
	cw := &Writer{
		w: bufio.NewWriterSize(w, 64<<10), schema: schema, groupRows: groupRows,
		strs: make([][]string, len(schema)), ints: make([][]int64, len(schema)),
		bools: make([][]bool, len(schema)), floats: make([][]float64, len(schema)),
		raws: make([][][]byte, len(schema)),
	}
	return cw
}

// Append adds one row. The values must match the schema arity and types.
func (w *Writer) Append(row ...Value) error {
	if len(row) != len(w.schema) {
		return fmt.Errorf("columnar: row has %d values, schema has %d", len(row), len(w.schema))
	}
	for i, c := range w.schema {
		switch c.Type {
		case TypeString:
			w.strs[i] = append(w.strs[i], row[i].S)
		case TypeInt64:
			w.ints[i] = append(w.ints[i], row[i].I)
		case TypeBool:
			w.bools[i] = append(w.bools[i], row[i].B)
		case TypeFloat64:
			w.floats[i] = append(w.floats[i], row[i].F)
		case TypeBytes:
			w.raws[i] = append(w.raws[i], row[i].Raw)
		}
	}
	w.rows++
	if w.rows >= w.groupRows {
		return w.flushGroup()
	}
	return nil
}

// Flush ends the current row group early, writing any pending rows. It lets
// callers align row-group boundaries with natural batch boundaries (the
// world snapshot writes one group per layout chunk).
func (w *Writer) Flush() error { return w.flushGroup() }

// Close flushes pending rows, writes the end marker and drains buffers.
func (w *Writer) Close() error {
	if err := w.flushGroup(); err != nil {
		return err
	}
	if !w.started {
		if err := w.writeHeader(); err != nil {
			return err
		}
	}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], 0) // rowCount 0 = EOF
	if _, err := w.w.Write(tmp[:n]); err != nil {
		return err
	}
	return w.w.Flush()
}

func (w *Writer) writeHeader() error {
	w.started = true
	if _, err := w.w.WriteString(magic); err != nil {
		return err
	}
	return writeBytes(w.w, []byte(w.schema.String()))
}

func (w *Writer) flushGroup() error {
	if w.rows == 0 {
		return nil
	}
	if !w.started {
		if err := w.writeHeader(); err != nil {
			return err
		}
	}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(w.rows))
	if _, err := w.w.Write(tmp[:n]); err != nil {
		return err
	}
	for i, c := range w.schema {
		var chunk []byte
		switch c.Type {
		case TypeString:
			chunk = encodeStrings(w.strs[i])
			w.strs[i] = w.strs[i][:0]
		case TypeInt64:
			chunk = encodeInts(w.ints[i])
			w.ints[i] = w.ints[i][:0]
		case TypeBool:
			chunk = encodeBools(w.bools[i])
			w.bools[i] = w.bools[i][:0]
		case TypeFloat64:
			chunk = encodeFloats(w.floats[i])
			w.floats[i] = w.floats[i][:0]
		case TypeBytes:
			chunk = encodeBytesCol(w.raws[i])
			w.raws[i] = w.raws[i][:0]
		}
		if err := writeBytes(w.w, chunk); err != nil {
			return err
		}
	}
	w.rows = 0
	return nil
}

func writeBytes(w *bufio.Writer, b []byte) error {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(b)))
	if _, err := w.Write(tmp[:n]); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

// Encodings ------------------------------------------------------------------

// encodeStrings dictionary-encodes: varint dictSize, dict entries
// (varint len + bytes), then varint indexes.
func encodeStrings(vals []string) []byte {
	dict := make(map[string]uint64)
	var order []string
	for _, v := range vals {
		if _, ok := dict[v]; !ok {
			dict[v] = uint64(len(order))
			order = append(order, v)
		}
	}
	var out []byte
	out = binary.AppendUvarint(out, uint64(len(order)))
	for _, s := range order {
		out = binary.AppendUvarint(out, uint64(len(s)))
		out = append(out, s...)
	}
	for _, v := range vals {
		out = binary.AppendUvarint(out, dict[v])
	}
	return out
}

func decodeStrings(b []byte, n int, dst []string) ([]string, error) {
	dictLen, b, err := uvarint(b)
	if err != nil {
		return nil, err
	}
	// Each dict entry needs at least one length byte, so the dict can never
	// hold more entries than remaining bytes; rejecting here keeps a corrupt
	// header from driving a huge allocation.
	if dictLen > uint64(len(b)) {
		return nil, errors.New("columnar: dictionary larger than chunk")
	}
	// One string conversion backs every dict entry: each entry is a
	// substring of the chunk copied once, not an allocation per value —
	// for high-cardinality columns (domain names) this is the difference
	// between 1 alloc and 10^5 allocs per group.
	all := string(b)
	dict := make([]string, dictLen)
	for i := range dict {
		var l uint64
		if l, b, err = uvarint(b); err != nil {
			return nil, err
		}
		if uint64(len(b)) < l {
			return nil, io.ErrUnexpectedEOF
		}
		off := len(all) - len(b)
		dict[i] = all[off : off+int(l)]
		b = b[l:]
	}
	out := dst
	if cap(out) < n {
		out = make([]string, n)
	}
	out = out[:n]
	for i := 0; i < n; i++ {
		var idx uint64
		if idx, b, err = uvarint(b); err != nil {
			return nil, err
		}
		if idx >= dictLen {
			return nil, errors.New("columnar: dictionary index out of range")
		}
		out[i] = dict[idx]
	}
	return out, nil
}

// encodeInts zigzag-varint encodes deltas between consecutive values.
func encodeInts(vals []int64) []byte {
	var out []byte
	prev := int64(0)
	for _, v := range vals {
		out = binary.AppendVarint(out, v-prev)
		prev = v
	}
	return out
}

func decodeInts(b []byte, n int, dst []int64) ([]int64, error) {
	out := dst
	if cap(out) < n {
		out = make([]int64, n)
	}
	out = out[:n]
	prev := int64(0)
	for i := 0; i < n; i++ {
		// Delta encoding makes single-byte varints the overwhelmingly
		// common case; decode them inline and fall back to the generic
		// reader only for multi-byte deltas.
		var ux uint64
		if len(b) > 0 && b[0] < 0x80 {
			ux = uint64(b[0])
			b = b[1:]
		} else {
			v, w := binary.Uvarint(b)
			if w <= 0 {
				return nil, io.ErrUnexpectedEOF
			}
			ux = v
			b = b[w:]
		}
		d := int64(ux >> 1)
		if ux&1 != 0 {
			d = ^d
		}
		prev += d
		out[i] = prev
	}
	return out, nil
}

// encodeBools run-length encodes: pairs of (varint runLen, value byte).
func encodeBools(vals []bool) []byte {
	var out []byte
	i := 0
	for i < len(vals) {
		j := i
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		out = binary.AppendUvarint(out, uint64(j-i))
		if vals[i] {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
		i = j
	}
	return out
}

func decodeBools(b []byte, n int, dst []bool) ([]bool, error) {
	out := dst[:0]
	if cap(out) < n {
		out = make([]bool, 0, n)
	}
	for len(out) < n {
		run, rest, err := uvarint(b)
		if err != nil {
			return nil, err
		}
		b = rest
		if len(b) == 0 {
			return nil, io.ErrUnexpectedEOF
		}
		v := b[0] == 1
		b = b[1:]
		if run == 0 || uint64(n-len(out)) < run {
			return nil, errors.New("columnar: bad bool run length")
		}
		for k := uint64(0); k < run; k++ {
			out = append(out, v)
		}
	}
	return out, nil
}

// encodeFloats stores zigzag-varint deltas of the byte-reversed IEEE 754
// bits. Reversing puts the sign/exponent bytes last, so round constants and
// repeated values differ only in low bits and their deltas varint-encode to
// a byte or two ("zigzag-mantissa" encoding).
func encodeFloats(vals []float64) []byte {
	var out []byte
	prev := uint64(0)
	for _, v := range vals {
		u := bits.ReverseBytes64(math.Float64bits(v))
		out = binary.AppendVarint(out, int64(u-prev))
		prev = u
	}
	return out
}

func decodeFloats(b []byte, n int, dst []float64) ([]float64, error) {
	out := dst
	if cap(out) < n {
		out = make([]float64, n)
	}
	out = out[:n]
	prev := uint64(0)
	for i := 0; i < n; i++ {
		d, rest, err := varint(b)
		if err != nil {
			return nil, err
		}
		b = rest
		prev += uint64(d)
		out[i] = math.Float64frombits(bits.ReverseBytes64(prev))
	}
	return out, nil
}

// encodeBytesCol length-prefixes each value: varint len + raw bytes.
func encodeBytesCol(vals [][]byte) []byte {
	var out []byte
	for _, v := range vals {
		out = binary.AppendUvarint(out, uint64(len(v)))
		out = append(out, v...)
	}
	return out
}

func decodeBytesCol(b []byte, n int, dst [][]byte) ([][]byte, error) {
	out := dst
	if cap(out) < n {
		out = make([][]byte, n)
	}
	out = out[:n]
	for i := 0; i < n; i++ {
		l, rest, err := uvarint(b)
		if err != nil {
			return nil, err
		}
		b = rest
		if uint64(len(b)) < l {
			return nil, io.ErrUnexpectedEOF
		}
		// Values alias the chunk buffer: readBytes hands each group a
		// fresh allocation, so the sub-slices stay valid for the life of
		// the RowGroup without a per-value copy.
		out[i] = b[:l:l]
		b = b[l:]
	}
	return out, nil
}

func uvarint(b []byte) (uint64, []byte, error) {
	if len(b) > 0 && b[0] < 0x80 {
		return uint64(b[0]), b[1:], nil
	}
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, io.ErrUnexpectedEOF
	}
	return v, b[n:], nil
}

func varint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, io.ErrUnexpectedEOF
	}
	return v, b[n:], nil
}

// Reader --------------------------------------------------------------------

// RowGroup is a decoded batch of rows.
type RowGroup struct {
	Schema Schema
	Rows   int
	Strs   map[string][]string
	Ints   map[string][]int64
	Bools  map[string][]bool
	Floats map[string][]float64
	Bytes  map[string][][]byte
}

// Reader streams row groups from a columnar file.
type Reader struct {
	r      *bufio.Reader
	schema Schema
	reuse  bool
	bufs   []bytes.Buffer // per-column chunk scratch when reuse is on
	last   *RowGroup
}

// Reuse puts the reader in storage-recycling mode: every call to Next
// may overwrite the maps, slices, and byte values of the previously
// returned RowGroup. A streaming consumer that fully processes each
// group before asking for the next decodes with near-zero per-group
// allocation; a caller that retains returned groups must not enable it.
// Decoded strings are always safe to retain — they never alias scratch.
func (r *Reader) Reuse() { r.reuse = true }

// NewReader validates the header and returns a reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("columnar: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, errors.New("columnar: bad magic")
	}
	sb, err := readBytes(br)
	if err != nil {
		return nil, err
	}
	schema, err := ParseSchema(string(sb))
	if err != nil {
		return nil, err
	}
	return &Reader{r: br, schema: schema}, nil
}

// Schema returns the file schema.
func (r *Reader) Schema() Schema { return r.schema }

// Next returns the next row group, or io.EOF after the last one.
func (r *Reader) Next() (*RowGroup, error) {
	n, err := binary.ReadUvarint(r.r)
	if err != nil {
		return nil, fmt.Errorf("columnar: reading row count: %w", err)
	}
	if n == 0 {
		return nil, io.EOF
	}
	if n > maxGroupRows {
		return nil, fmt.Errorf("columnar: row group claims %d rows (max %d)", n, maxGroupRows)
	}
	g := r.last
	if g == nil || !r.reuse {
		g = &RowGroup{
			Schema: r.schema,
			Strs:   make(map[string][]string), Ints: make(map[string][]int64), Bools: make(map[string][]bool),
			Floats: make(map[string][]float64), Bytes: make(map[string][][]byte),
		}
	}
	g.Rows = int(n)
	if r.reuse {
		r.last = g
		if r.bufs == nil {
			r.bufs = make([]bytes.Buffer, len(r.schema))
		}
	}
	for i, c := range r.schema {
		var chunk []byte
		var err error
		if r.reuse {
			chunk, err = readBytesInto(r.r, &r.bufs[i])
		} else {
			chunk, err = readBytes(r.r)
		}
		if err != nil {
			return nil, err
		}
		// Passing the group's previous column slice lets each decoder
		// recycle it when capacity allows; on a fresh group the slice is
		// nil and the decoder allocates.
		switch c.Type {
		case TypeString:
			if g.Strs[c.Name], err = decodeStrings(chunk, g.Rows, g.Strs[c.Name]); err != nil {
				return nil, err
			}
		case TypeInt64:
			if g.Ints[c.Name], err = decodeInts(chunk, g.Rows, g.Ints[c.Name]); err != nil {
				return nil, err
			}
		case TypeBool:
			if g.Bools[c.Name], err = decodeBools(chunk, g.Rows, g.Bools[c.Name]); err != nil {
				return nil, err
			}
		case TypeFloat64:
			if g.Floats[c.Name], err = decodeFloats(chunk, g.Rows, g.Floats[c.Name]); err != nil {
				return nil, err
			}
		case TypeBytes:
			if g.Bytes[c.Name], err = decodeBytesCol(chunk, g.Rows, g.Bytes[c.Name]); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

func readBytes(r *bufio.Reader) ([]byte, error) {
	var buf bytes.Buffer
	return readBytesInto(r, &buf)
}

func readBytesInto(r *bufio.Reader, buf *bytes.Buffer) ([]byte, error) {
	l, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if l > math.MaxInt64 {
		return nil, errors.New("columnar: absurd chunk length")
	}
	// Grow via CopyN instead of a single make([]byte, l): a corrupt varint
	// can claim an enormous length, and the allocation must be bounded by
	// what the stream actually delivers. Pre-growing up to a 1 MiB cap
	// keeps honest chunks to one allocation without trusting the header.
	buf.Reset()
	buf.Grow(int(min(l, 1<<20)))
	if _, err := io.CopyN(buf, r, int64(l)); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf.Bytes(), nil
}
