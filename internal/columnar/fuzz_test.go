package columnar

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

// FuzzColumnarRoundTrip drives the codec two ways from one seed corpus:
// the raw input is fed straight to the reader (which must error or EOF,
// never panic or allocate unboundedly), and the same bytes are chopped
// into rows for a write→read→compare cycle across every column type.
func FuzzColumnarRoundTrip(f *testing.F) {
	// Seed with a small valid file so the fuzzer starts from structure.
	var seed bytes.Buffer
	w := NewWriter(&seed, Schema{
		{Name: "s", Type: TypeString},
		{Name: "i", Type: TypeInt64},
		{Name: "b", Type: TypeBool},
		{Name: "f", Type: TypeFloat64},
		{Name: "r", Type: TypeBytes},
	}, 3)
	w.Append(String("a.com"), Int(42), Bool(true), Float(0.5), Bytes([]byte{1, 2}))
	w.Append(String("b.org"), Int(-7), Bool(false), Float(-1e9), Bytes(nil))
	w.Close()
	f.Add(seed.Bytes())
	f.Add([]byte(magic))
	f.Add([]byte(magic + "\x03a:b"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Adversarial direction: arbitrary bytes must never panic the reader.
		if r, err := NewReader(bytes.NewReader(data)); err == nil {
			for {
				if _, err := r.Next(); err != nil {
					break
				}
			}
		}

		// Constructive direction: interpret the bytes as rows and round-trip.
		schema := Schema{
			{Name: "s", Type: TypeString},
			{Name: "i", Type: TypeInt64},
			{Name: "b", Type: TypeBool},
			{Name: "f", Type: TypeFloat64},
			{Name: "r", Type: TypeBytes},
		}
		type row struct {
			s string
			i int64
			b bool
			f float64
			r []byte
		}
		var rows []row
		for i := 0; i+9 <= len(data) && len(rows) < 512; i += 9 {
			chunk := data[i : i+9]
			rows = append(rows, row{
				s: string(chunk[:2]),
				i: int64(chunk[2]) - int64(chunk[3])<<4,
				b: chunk[4]&1 == 1,
				f: math.Float64frombits(uint64(chunk[5]) | uint64(chunk[6])<<32),
				r: append([]byte(nil), chunk[7:]...),
			})
		}
		var buf bytes.Buffer
		cw := NewWriter(&buf, schema, 7)
		for _, r := range rows {
			if err := cw.Append(String(r.s), Int(r.i), Bool(r.b), Float(r.f), Bytes(r.r)); err != nil {
				t.Fatal(err)
			}
		}
		if err := cw.Close(); err != nil {
			t.Fatal(err)
		}
		cr, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		var got []row
		for {
			g, err := cr.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < g.Rows; i++ {
				got = append(got, row{
					s: g.Strs["s"][i], i: g.Ints["i"][i], b: g.Bools["b"][i],
					f: g.Floats["f"][i], r: g.Bytes["r"][i],
				})
			}
		}
		if len(got) != len(rows) {
			t.Fatalf("round trip: %d rows in, %d out", len(rows), len(got))
		}
		for i := range rows {
			if got[i].s != rows[i].s || got[i].i != rows[i].i || got[i].b != rows[i].b ||
				math.Float64bits(got[i].f) != math.Float64bits(rows[i].f) ||
				!bytes.Equal(got[i].r, rows[i].r) {
				t.Fatalf("row %d: got %+v, want %+v", i, got[i], rows[i])
			}
		}
	})
}
