package worldsim

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"darkdns/internal/certstream"
)

func tinyConfig(seed int64) Config {
	cfg := DefaultConfig(seed, 0.001)
	cfg.Weeks = 2
	return cfg
}

func TestWorldGeneratesGroundTruth(t *testing.T) {
	w := New(tinyConfig(1))
	if w.Domains.Len() == 0 {
		t.Fatal("no domains generated")
	}
	var fast, normal, certed int
	w.Domains.Range(func(d *Domain) {
		if d.FastDelete {
			fast++
			if d.Lifetime <= 0 || d.Lifetime >= 24*time.Hour {
				t.Fatalf("fast-deleted lifetime %v", d.Lifetime)
			}
		} else {
			normal++
		}
		if d.CertAsked {
			certed++
		}
	})
	if fast == 0 || normal == 0 {
		t.Fatalf("population: fast=%d normal=%d", fast, normal)
	}
	if certed == 0 {
		t.Fatal("no certificates requested")
	}
	if len(w.Ghosts) == 0 {
		t.Fatal("no ghost issuances scheduled")
	}
	w.Stop()
}

func TestWorldRunProducesObservables(t *testing.T) {
	w := New(tinyConfig(2))
	var events int
	w.Hub.Subscribe(func(certstream.Event) { events++ })
	w.Run()

	if events == 0 {
		t.Fatal("no certstream events during run")
	}
	if got := w.Log.Size(); got == 0 {
		t.Fatal("CT log empty")
	}
	if len(w.CZDS.TLDs()) == 0 {
		t.Fatal("no CZDS snapshots collected")
	}
	// The ccTLD must not appear in CZDS.
	for _, tld := range w.CZDS.TLDs() {
		if tld == "nl" {
			t.Error("ccTLD leaked into CZDS")
		}
	}
	if w.DZDB.Len() == 0 {
		t.Fatal("DZDB never populated")
	}
}

func TestWorldDeterministicAcrossRuns(t *testing.T) {
	run := func() (int64, int) {
		w := New(tinyConfig(7))
		w.Run()
		return w.Log.Size(), w.Domains.Len()
	}
	s1, d1 := run()
	s2, d2 := run()
	if s1 != s2 || d1 != d2 {
		t.Errorf("non-deterministic: (%d,%d) vs (%d,%d)", s1, d1, s2, d2)
	}
}

func TestGhostsNeverRegistered(t *testing.T) {
	w := New(tinyConfig(3))
	w.Run()
	for _, g := range w.Ghosts {
		if w.Registries[g.TLD].InZone(g.Name) {
			t.Errorf("ghost %s is in the zone", g.Name)
		}
		if _, ok := w.Registries[g.TLD].Lookup(g.Name); ok {
			t.Errorf("ghost %s has a ledger entry", g.Name)
		}
	}
}

func TestCertsRequireZonePresence(t *testing.T) {
	// Every CT entry for a non-ghost domain must have been logged at or
	// after the moment its domain could have entered the zone.
	w := New(tinyConfig(4))
	w.Run()
	ghosts := make(map[string]bool)
	for _, g := range w.Ghosts {
		ghosts[g.Name] = true
	}
	checked := 0
	for _, log := range w.Logs {
		entries, err := log.Range(0, log.Size())
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			d := w.Domains.Get(e.CN)
			if d == nil || ghosts[e.CN] {
				continue
			}
			if e.Logged.Before(d.Created) {
				t.Fatalf("%s logged %v before creation %v", e.CN, e.Logged, d.Created)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no non-ghost entries checked")
	}
}

func TestProbeBackend(t *testing.T) {
	w := New(tinyConfig(5))
	// Find a long-lived domain, run past its creation, then probe.
	var target *Domain
	w.Domains.Range(func(d *Domain) {
		if !d.FastDelete && d.Lifetime == 0 && d.TLD == "com" {
			if target == nil || d.Created.Before(target.Created) {
				target = d
			}
		}
	})
	if target == nil {
		t.Skip("no long-lived com domain at this scale")
	}
	w.Clock.RunUntil(target.Created.Add(2 * time.Minute))
	backend := w.ProbeBackend()
	ns, ok := backend.AuthoritativeNS(target.Name)
	if !ok || len(ns) == 0 {
		t.Fatalf("AuthoritativeNS(%s) = %v, %v", target.Name, ns, ok)
	}
	if addrs := backend.LookupA(target.Name); len(addrs) != 1 {
		t.Fatalf("LookupA(%s) = %v", target.Name, addrs)
	}
	if addrs := backend.LookupAAAA(target.Name); addrs != nil {
		t.Fatal("AAAA should be empty in this world")
	}
	if _, ok := backend.AuthoritativeNS("never-exists.com"); ok {
		t.Fatal("unknown domain resolved")
	}
	w.Stop()
}

// worldFingerprint canonically serializes a freshly built world's ground
// truth: every domain record (sorted by name) plus the ghost list in
// commit order.
func worldFingerprint(w *World) string {
	names := make([]string, 0, w.Domains.Len())
	w.Domains.Range(func(d *Domain) { names = append(names, d.Name) })
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		fmt.Fprintf(&sb, "%+v\n", *w.Domains.Get(name))
	}
	for _, g := range w.Ghosts {
		fmt.Fprintf(&sb, "ghost %+v\n", *g)
	}
	return sb.String()
}

// TestWorldIdenticalAcrossBuildWorkers: the two-phase builder's
// determinism contract — compiling per-TLD layouts serially, on a
// single-width pool, or on a wide pool must produce byte-identical
// worlds, both the static ground truth and the full event stream a run
// delivers.
func TestWorldIdenticalAcrossBuildWorkers(t *testing.T) {
	base := tinyConfig(11)
	fingerprint := func(workers int) (string, string) {
		cfg := base
		cfg.BuildWorkers = workers
		w := New(cfg)
		fp := worldFingerprint(w)
		w.Stop()
		evs := RecordedEvents(cfg)
		var sb strings.Builder
		for _, ev := range evs {
			fmt.Fprintf(&sb, "%+v\n", ev)
		}
		return fp, sb.String()
	}
	serialWorld, serialEvents := fingerprint(0)
	for _, workers := range []int{1, 8} {
		world, events := fingerprint(workers)
		if world != serialWorld {
			t.Errorf("BuildWorkers=%d ground truth diverges from serial", workers)
		}
		if events != serialEvents {
			t.Errorf("BuildWorkers=%d event stream diverges from serial", workers)
		}
	}
}

// TestWorldIdenticalAcrossCommitWorkers: the commit engine's
// determinism contract — installing compiled layouts serially, on a
// single-width pool, or on a wide pool must produce byte-identical
// worlds (ground truth, ghost ledger order via worldFingerprint, and
// the full event stream a run delivers), alone and stacked with the
// compile fan-out.
func TestWorldIdenticalAcrossCommitWorkers(t *testing.T) {
	base := tinyConfig(11)
	fingerprint := func(buildWorkers, commitWorkers int) (string, string) {
		cfg := base
		cfg.BuildWorkers = buildWorkers
		cfg.CommitWorkers = commitWorkers
		w := New(cfg)
		fp := worldFingerprint(w)
		w.Stop()
		evs := RecordedEvents(cfg)
		var sb strings.Builder
		for _, ev := range evs {
			fmt.Fprintf(&sb, "%+v\n", ev)
		}
		return fp, sb.String()
	}
	serialWorld, serialEvents := fingerprint(0, 0)
	for _, workers := range [][2]int{{0, 1}, {0, 8}, {8, 8}} {
		world, events := fingerprint(workers[0], workers[1])
		if world != serialWorld {
			t.Errorf("BuildWorkers=%d CommitWorkers=%d ground truth diverges from serial",
				workers[0], workers[1])
		}
		if events != serialEvents {
			t.Errorf("BuildWorkers=%d CommitWorkers=%d event stream diverges from serial",
				workers[0], workers[1])
		}
	}
}

// TestChunkedCommitIdentical: at a scale where plans split into multiple
// compile chunks (so the commit engine sees many layouts per plan), the
// built ground truth must stay byte-identical across commit widths.
func TestChunkedCommitIdentical(t *testing.T) {
	base := DefaultConfig(19, 0.01)
	base.Weeks = 2
	base.BuildWorkers = 4
	build := func(workers int) string {
		cfg := base
		cfg.CommitWorkers = workers
		w := New(cfg)
		defer w.Stop()
		return worldFingerprint(w)
	}
	serial := build(0)
	for _, workers := range []int{1, 8} {
		if build(workers) != serial {
			t.Errorf("CommitWorkers=%d chunked ground truth diverges from serial", workers)
		}
	}
}

// TestDomainNamesUniqueWorldwide: collision checks are per-TLD-chunk
// now (names embed their TLD; chunks stamp a discriminator), so this
// regression test pins the invariant that generated names —
// registrations and ghosts — stay unique across the whole world, at a
// scale where the dominant plans split into several chunks.
func TestDomainNamesUniqueWorldwide(t *testing.T) {
	cfg := DefaultConfig(13, 0.01)
	cfg.Weeks = 2
	cfg.BuildWorkers = 4
	cfg.CommitWorkers = 4
	if k := planChunks(&cfg, PaperPlans()[0]); k < 2 {
		t.Fatalf("com plan compiles in %d chunk(s); test needs a multi-chunk scale", k)
	}
	w := New(cfg)
	defer w.Stop()
	if n := w.dupNames.Load(); n != 0 {
		t.Fatalf("%d duplicate names across layouts", n)
	}
	seen := make(map[string]bool, w.Domains.Len()+len(w.Ghosts))
	w.Domains.Range(func(d *Domain) { seen[d.Name] = true })
	for _, g := range w.Ghosts {
		if seen[g.Name] {
			t.Errorf("ghost name %s collides with another generated name", g.Name)
		}
		seen[g.Name] = true
	}
}

// TestChunkedBuildIdentical: at a scale where plans split into multiple
// compile chunks, the built ground truth must still be byte-identical
// across compile widths (build-only — the event-stream identity is
// covered at single-chunk scale by TestWorldIdenticalAcrossBuildWorkers
// and at campaign level in analysis).
func TestChunkedBuildIdentical(t *testing.T) {
	base := DefaultConfig(19, 0.01)
	base.Weeks = 2
	build := func(workers int) string {
		cfg := base
		cfg.BuildWorkers = workers
		w := New(cfg)
		defer w.Stop()
		return worldFingerprint(w)
	}
	serial := build(0)
	for _, workers := range []int{1, 8} {
		if build(workers) != serial {
			t.Errorf("BuildWorkers=%d chunked ground truth diverges from serial", workers)
		}
	}
}

func TestPlansMatchPaperTotals(t *testing.T) {
	plans := PaperPlans()
	var ct, zone, trans int
	for _, p := range plans {
		ct += p.CTTotal()
		zone += p.ZoneNRDs
		trans += p.TransientTotal()
	}
	// Paper totals: 6,835,849 CT NRDs; 16,292,141 zone NRDs; 68,042
	// transients.
	if ct < 6_700_000 || ct > 6_950_000 {
		t.Errorf("CT total = %d, want ≈6.84M", ct)
	}
	if zone < 16_000_000 || zone > 16_600_000 {
		t.Errorf("zone total = %d, want ≈16.29M", zone)
	}
	if trans < 66_000 || trans > 70_000 {
		t.Errorf("transient total = %d, want ≈68k", trans)
	}
}
