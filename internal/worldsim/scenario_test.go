package worldsim

import (
	"testing"
	"time"
)

// TestCustomScenarioSingleTLD demonstrates the library-user path: a
// custom world with one TLD plan and tuned behaviour knobs, instead of
// the paper's full Table 1 mix.
func TestCustomScenarioSingleTLD(t *testing.T) {
	cfg := DefaultConfig(3, 1.0)
	cfg.Weeks = 1
	cfg.Plans = []TLDPlan{{
		TLD:          "dev",
		ZoneNRDs:     2000,
		MonthlyCT:    [3]int{700, 700, 600},
		CertCoverage: 0.9,
		Transients:   [3]int{20, 20, 20},
	}}
	cfg.CCTLD = &CCTLDPlan{TLD: "nl", FastDeleted: 10, Normal: 50, TransientCertRate: 0.5}
	cfg.GhostRate = 0
	cfg.NSChangeRate = 0

	w := New(cfg)
	w.Run()

	devCount, otherCount := 0, 0
	w.Domains.Range(func(d *Domain) {
		switch d.TLD {
		case "dev", "nl":
			devCount++
		default:
			otherCount++
		}
	})
	if otherCount != 0 {
		t.Errorf("%d domains outside the scenario's TLDs", otherCount)
	}
	if devCount == 0 {
		t.Fatal("scenario generated nothing")
	}
	if len(w.Ghosts) != 0 {
		t.Errorf("GhostRate=0 produced %d ghosts", len(w.Ghosts))
	}
	if _, err := w.CZDS.Latest("dev"); err != nil {
		t.Errorf("dev snapshots missing: %v", err)
	}
}

// TestWatchSamplingUnbiased verifies the scale-run optimization: an
// NS-stability estimate over a 50 % candidate sample must agree with the
// full-watch estimate, because sampling is uniform over candidates.
func TestWatchSamplingUnbiased(t *testing.T) {
	// Handled at the analysis level; here we check the knob plumbs
	// through to a smaller watch set at the fleet.
	cfg := DefaultConfig(5, 0.001)
	cfg.Weeks = 2
	w := New(cfg)
	defer w.Stop()
	// Count fast registrations created; the sampling itself is a
	// pipeline concern tested in core — this guards the ground truth
	// knobs stay coherent for samplers.
	fast := 0
	w.Domains.Range(func(d *Domain) {
		if d.FastDelete {
			fast++
			if d.Lifetime <= 0 || d.Lifetime >= 24*time.Hour {
				t.Fatalf("fast-deleted lifetime %v", d.Lifetime)
			}
		}
	})
	if fast == 0 {
		t.Fatal("no fast-deleted domains")
	}
}
