// The world's ground-truth domain store, striped the same way as the
// pipeline's candidate store (core.candShard): a power-of-two shard
// count keyed on dnsname.Hash64 so the parallel commit engine's
// per-layout installs of distinct names land on independent locks and
// commute. After New returns the store is effectively frozen — readers
// (experiments, examples, the probe backend) only Get/Range/Len.
package worldsim

import (
	"sync"
	"sync/atomic"

	"darkdns/internal/dnsname"
)

// domainShards is the stripe count of the domain store. Power of two for
// cheap masking; 64 stripes (matching core's candidate store) keep an
// 8–16-wide commit pool from serializing on one lock even when a chunk's
// names cluster.
const domainShards = 64

// domainShard is one stripe: the ground-truth records plus the ghost
// names installed on it (ghosts are deliberately absent from the record
// map — they have no registration — but participate in duplicate
// detection).
type domainShard struct {
	mu     sync.RWMutex
	m      map[string]domainEntry
	ghosts map[string]struct{}
}

// domainEntry pairs a record with the canonical rank (layout index) of
// its installer. Ranks only matter for duplicate names — possible only
// under off-contract duplicate-TLD plan configs — where the highest
// rank wins, reproducing the serial commit's canonical-order
// last-writer at any pool width.
type domainEntry struct {
	d    *Domain
	rank int
}

// DomainStore holds a world's ground-truth registrations keyed by domain
// name. It replaces the former exposed map[string]*Domain so the commit
// engine can install layouts concurrently; readers use Get, Range and
// Len. Like the map it replaces, iteration order is unspecified.
type DomainStore struct {
	shards [domainShards]domainShard
	count  atomic.Int64
}

// newDomainStore pre-sizes a store for about hint records.
func newDomainStore(hint int) *DomainStore {
	s := &DomainStore{}
	per := hint/domainShards + 1
	for i := range s.shards {
		s.shards[i].m = make(map[string]domainEntry, per)
	}
	return s
}

// shard maps a name to its stripe (same hash the pipeline's candidate
// store and the fleet's watch registry stripe on).
func (s *DomainStore) shard(name string) *domainShard {
	return &s.shards[dnsname.Hash64(name)&(domainShards-1)]
}

// Get returns the ground-truth record for name, or nil when the world
// never generated it (ghosts return nil: they have no registration).
// Read lock only: the fleet's probe rounds call this concurrently and
// must not serialize within a shard.
func (s *DomainStore) Get(name string) *Domain {
	sh := s.shard(name)
	sh.mu.RLock()
	d := sh.m[name].d
	sh.mu.RUnlock()
	return d
}

// Len returns the number of distinct registrations in the store.
func (s *DomainStore) Len() int { return int(s.count.Load()) }

// Range calls fn for every record. Iteration order is unspecified, as it
// was for the map this store replaces — callers needing a canonical
// order collect names and sort (see worldFingerprint). fn runs with no
// shard lock held, so it may call Get/Len freely.
func (s *DomainStore) Range(fn func(*Domain)) {
	var buf []*Domain
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		buf = buf[:0]
		for _, e := range sh.m {
			buf = append(buf, e.d)
		}
		sh.mu.RUnlock()
		for _, d := range buf {
			fn(d)
		}
	}
}

// install records d under its installer's canonical rank, reporting
// whether the name was already present as a registration or a ghost.
// Concurrent installs of distinct names commute (independent keys,
// per-shard locks), which is what lets the commit engine run layouts in
// parallel at any width; duplicates (off-contract duplicate-TLD plans)
// stay deterministic too — the highest rank wins regardless of arrival
// order, and the duplicate report is exact because every install after
// a name's first observes it present.
func (s *DomainStore) install(d *Domain, rank int) (dup bool) {
	sh := s.shard(d.Name)
	sh.mu.Lock()
	prev, dupD := sh.m[d.Name]
	_, dupG := sh.ghosts[d.Name]
	if !dupD || rank >= prev.rank {
		sh.m[d.Name] = domainEntry{d, rank}
	}
	sh.mu.Unlock()
	if !dupD {
		s.count.Add(1)
	}
	return dupD || dupG
}

// installGhost records a ghost name for duplicate detection, reporting
// whether it collided with an existing registration or ghost. The ghost
// ledger itself (World.Ghosts) is appended serially in canonical order
// by the commit engine; this set only backs the uniqueness invariant.
func (s *DomainStore) installGhost(name string) (dup bool) {
	sh := s.shard(name)
	sh.mu.Lock()
	_, dupD := sh.m[name]
	_, dupG := sh.ghosts[name]
	if sh.ghosts == nil {
		sh.ghosts = make(map[string]struct{})
	}
	sh.ghosts[name] = struct{}{}
	sh.mu.Unlock()
	return dupD || dupG
}
