package worldsim

import (
	"net/netip"
	"strings"

	"darkdns/internal/dnsname"
	"darkdns/internal/measure"
)

// probeBackend implements measure.Backend over the simulated registries:
// NS queries consult the live TLD zone (exactly what querying the TLD
// authoritative servers observes), and address queries resolve to the
// registration's web host while the domain is delegated.
type probeBackend struct{ w *World }

// ProbeBackend returns the measurement fleet's view of this world.
func (w *World) ProbeBackend() measure.Backend { return probeBackend{w} }

func (b probeBackend) AuthoritativeNS(domain string) ([]string, bool) {
	reg := b.w.Registries[dnsname.TLD(dnsname.Canonical(domain))]
	if reg == nil {
		return nil, false
	}
	return reg.Delegation(domain)
}

func (b probeBackend) LookupA(domain string) []netip.Addr {
	domain = dnsname.Canonical(domain)
	reg := b.w.Registries[dnsname.TLD(domain)]
	if reg == nil || !reg.InZone(domain) {
		return nil
	}
	rec, ok := reg.Lookup(domain)
	if !ok || !rec.WebAddr.IsValid() {
		return nil
	}
	return []netip.Addr{rec.WebAddr}
}

func (b probeBackend) LookupAAAA(domain string) []netip.Addr { return nil }

// ProbeBatch implements measure.BatchBackend: one positional result per
// requested name, computed from the same ground-truth reads the
// per-domain path makes, so batched rounds are byte-identical to serial
// ones at any probe width.
func (b probeBackend) ProbeBatch(domains []string, mail bool) []measure.ProbeResult {
	out := make([]measure.ProbeResult, len(domains))
	for i, domain := range domains {
		pr := &out[i]
		pr.NS, pr.InZone = b.AuthoritativeNS(domain)
		if !pr.InZone {
			continue
		}
		pr.V4 = b.LookupA(domain)
		pr.V6 = b.LookupAAAA(domain)
		if mail {
			pr.MX = b.LookupMX(domain)
			pr.TXT = b.LookupTXT(domain)
		}
	}
	return out
}

// LookupMX implements measure.MailBackend from ground truth, answering
// only while the domain is delegated.
func (b probeBackend) LookupMX(domain string) []string {
	if d := b.liveDomain(domain); d != nil && d.HasMX {
		return []string{"mx1." + d.Name, "mx2." + d.Name}
	}
	return nil
}

// LookupTXT implements measure.MailBackend.
func (b probeBackend) LookupTXT(domain string) []string {
	if d := b.liveDomain(domain); d != nil && d.HasSPF {
		return []string{"v=spf1 include:_spf." + d.WebHostSPFDomain() + " -all"}
	}
	return nil
}

// liveDomain returns ground truth for domain when it is currently in its
// TLD zone.
func (b probeBackend) liveDomain(domain string) *Domain {
	domain = dnsname.Canonical(domain)
	reg := b.w.Registries[dnsname.TLD(domain)]
	if reg == nil || !reg.InZone(domain) {
		return nil
	}
	return b.w.Domains.Get(domain)
}

// WebHostSPFDomain derives the SPF include target from the hosting
// provider name.
func (d *Domain) WebHostSPFDomain() string {
	switch d.WebHost {
	case "":
		return "example.net"
	default:
		return strings.ToLower(strings.ReplaceAll(d.WebHost, " ", "")) + ".com"
	}
}
