// Persistent columnar world snapshots — the eighth engine.
//
// A compiled world (the full []*Layout the compile fan-out produces) is a
// pure function of (seed, Config shape), so it can be serialized once and
// replayed into any number of campaigns: load replaces the entire compile
// phase with a columnar decode that feeds the (already parallel) commit
// engine directly. The container is a small multi-table format — outer
// magic plus a header carrying (format version, seed, Config-shape hash),
// followed by named length-prefixed tables, each body a complete
// self-describing DCOL file (internal/columnar). Domain rows write one
// row group per layout chunk, mirroring the compile fan-out's unit
// structure. A header mismatch (different seed, different world shape,
// unknown version) is never an error at build time: New falls back to
// compiling, so a stale snapshot costs nothing but the decode attempt.
package worldsim

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"darkdns/internal/blocklist"
	"darkdns/internal/columnar"
	"darkdns/internal/noddfeed"
	"darkdns/internal/registrar"
)

// snapMagic and snapVersion identify the snapshot container. Bump the
// version on any schema change: LoadSnapshot rejects unknown versions and
// the builder falls back to compiling.
const (
	snapMagic   = "DSNW1\n"
	snapVersion = 1
)

// Engine counters, exposed for the sweep engine's compiled-exactly-once
// assertion and for operator stats. Atomics: builds may run concurrently.
var (
	compileCount  atomic.Int64
	snapshotLoads atomic.Int64
)

// CompileCount returns the number of compile fan-outs executed by this
// process (one per world built without a usable snapshot).
func CompileCount() int64 { return compileCount.Load() }

// SnapshotLoadCount returns the number of worlds built from a snapshot
// instead of a compile fan-out.
func SnapshotLoadCount() int64 { return snapshotLoads.Load() }

// LayoutSet is a compiled world keyed by its provenance: the seed and the
// Config-shape hash that produced it. It is the unit snapshots serialize.
type LayoutSet struct {
	Seed       int64
	ConfigHash uint64
	Layouts    []*Layout
}

// Domains returns the total registration count across the set's layouts
// (the denominator of the snapshot benches' domains/s metric).
func (ls *LayoutSet) Domains() int {
	n := 0
	for _, l := range ls.Layouts {
		n += len(l.domains)
	}
	return n
}

// Matches reports whether this layout set was compiled from the same
// (seed, world shape) as cfg. Worker widths and the snapshot path itself
// do not participate: they change how a world is built, not what it is.
func (ls *LayoutSet) Matches(cfg Config) bool {
	cfg = cfg.withDefaults()
	return ls.Seed == cfg.Seed && ls.ConfigHash == cfg.shapeHash()
}

// CompileLayoutSet compiles cfg's world layouts without building a World.
// The compile environment (CA count, blocklist models, NOD coverage
// model) is constant across worlds, so the result is exactly what New
// would compile — the sweep engine uses this to produce one snapshot per
// distinct (seed, shape) ahead of the campaign fan-out.
func CompileLayoutSet(cfg Config) *LayoutSet {
	cfg = cfg.withDefaults()
	env := &buildEnv{
		cfg:    &cfg,
		numCAs: len(caNames),
		lists:  blocklist.NewAggregator(nil).Models(),
		nodCfg: noddfeed.DefaultConfig(),
	}
	return &LayoutSet{Seed: cfg.Seed, ConfigHash: cfg.shapeHash(), Layouts: compileLayouts(env)}
}

// shapeHash fingerprints every Config field that shapes the compiled
// layouts: the seed, window, scale, rates and the full plan tables.
// BuildWorkers, CommitWorkers and SnapshotPath are excluded — they pick
// an execution strategy, and any width compiles the identical world.
func (cfg Config) shapeHash() uint64 {
	var sb strings.Builder
	fmt.Fprintf(&sb, "v%d|seed=%d|start=%d|weeks=%d|scale=%g|fdm=%g|tcr=%g|ghost=%g|early=%g|nsch=%g|rereg=%g|nodc=%g|nodn=%g",
		snapVersion, cfg.Seed, cfg.Start.UnixNano(), cfg.Weeks, cfg.Scale,
		cfg.FastDeletedMultiplier, cfg.TransientCertRate, cfg.GhostRate,
		cfg.EarlyRemovedRate, cfg.NSChangeRate, cfg.ReRegistrationRate,
		cfg.NODRateWithCert, cfg.NODRateNoCert)
	for _, p := range cfg.Plans {
		fmt.Fprintf(&sb, "|plan=%s,%d,%v,%g,%v", p.TLD, p.ZoneNRDs, p.MonthlyCT, p.CertCoverage, p.Transients)
	}
	fmt.Fprintf(&sb, "|cc=%s,%d,%d,%g", cfg.CCTLD.TLD, cfg.CCTLD.FastDeleted, cfg.CCTLD.Normal, cfg.CCTLD.TransientCertRate)
	h := uint64(1469598103934665603) // FNV-1a offset basis
	s := sb.String()
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return mix64(h)
}

// Table schemas -------------------------------------------------------------

func layoutsSchema() columnar.Schema {
	return columnar.Schema{
		{Name: "idx", Type: columnar.TypeInt64},
		{Name: "tld", Type: columnar.TypeString},
	}
}

func domainsSchema() columnar.Schema {
	return columnar.Schema{
		{Name: "layout", Type: columnar.TypeInt64},
		{Name: "name", Type: columnar.TypeString},
		{Name: "tld", Type: columnar.TypeString},
		{Name: "registrar", Type: columnar.TypeString},
		{Name: "created", Type: columnar.TypeInt64},
		{Name: "lifetime", Type: columnar.TypeInt64},
		{Name: "fast_delete", Type: columnar.TypeBool},
		{Name: "malicious", Type: columnar.TypeBool},
		{Name: "reason", Type: columnar.TypeInt64},
		{Name: "cert_asked", Type: columnar.TypeBool},
		{Name: "dns_host", Type: columnar.TypeString},
		{Name: "web_host", Type: columnar.TypeString},
		{Name: "has_mx", Type: columnar.TypeBool},
		{Name: "has_spf", Type: columnar.TypeBool},
		{Name: "ns", Type: columnar.TypeBytes},
		{Name: "web", Type: columnar.TypeBytes},
		{Name: "ca_idx", Type: columnar.TypeInt64},
		{Name: "cert_delay", Type: columnar.TypeInt64},
		{Name: "retry_seed", Type: columnar.TypeInt64},
		{Name: "ns_change", Type: columnar.TypeBool},
		{Name: "ns_change_at", Type: columnar.TypeInt64},
		{Name: "alt_ns", Type: columnar.TypeBytes},
	}
}

func ghostsSchema() columnar.Schema {
	return columnar.Schema{
		{Name: "layout", Type: columnar.TypeInt64},
		{Name: "name", Type: columnar.TypeString},
		{Name: "tld", Type: columnar.TypeString},
		{Name: "created", Type: columnar.TypeInt64},
		{Name: "ca_idx", Type: columnar.TypeInt64},
		{Name: "token_at", Type: columnar.TypeInt64},
		{Name: "in_dzdb", Type: columnar.TypeBool},
	}
}

func seedSchema() columnar.Schema {
	return columnar.Schema{
		{Name: "layout", Type: columnar.TypeInt64},
		{Name: "domain", Type: columnar.TypeString},
		{Name: "at", Type: columnar.TypeInt64},
	}
}

func flagsSchema() columnar.Schema {
	return columnar.Schema{
		{Name: "layout", Type: columnar.TypeInt64},
		{Name: "domain", Type: columnar.TypeString},
		{Name: "list", Type: columnar.TypeString},
		{Name: "at", Type: columnar.TypeInt64},
	}
}

// Encoding helpers ----------------------------------------------------------

// encodeStringList packs a []string as uvarint count + per-entry
// uvarint length + bytes, for TypeBytes cells (NS sets).
func encodeStringList(ss []string) []byte {
	out := binary.AppendUvarint(nil, uint64(len(ss)))
	for _, s := range ss {
		out = binary.AppendUvarint(out, uint64(len(s)))
		out = append(out, s...)
	}
	return out
}

func decodeStringList(b []byte) ([]string, error) {
	n, used := binary.Uvarint(b)
	if used <= 0 {
		return nil, io.ErrUnexpectedEOF
	}
	b = b[used:]
	if n == 0 {
		return nil, nil
	}
	if n > uint64(len(b)) {
		return nil, errors.New("worldsim: string list longer than cell")
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		l, used := binary.Uvarint(b)
		if used <= 0 {
			return nil, io.ErrUnexpectedEOF
		}
		b = b[used:]
		if uint64(len(b)) < l {
			return nil, io.ErrUnexpectedEOF
		}
		out = append(out, string(b[:l]))
		b = b[l:]
	}
	return out, nil
}

func nanoTime(ns int64) time.Time { return time.Unix(0, ns).UTC() }

// SaveSnapshot serializes a compiled layout set to w.
func SaveSnapshot(w io.Writer, ls *LayoutSet) error {
	if _, err := io.WriteString(w, snapMagic); err != nil {
		return err
	}
	var hdr []byte
	hdr = binary.AppendUvarint(hdr, snapVersion)
	hdr = binary.AppendVarint(hdr, ls.Seed)
	hdr = binary.AppendUvarint(hdr, ls.ConfigHash)
	if _, err := w.Write(hdr); err != nil {
		return err
	}

	if err := writeTable(w, "layouts", layoutsSchema(), func(cw *columnar.Writer) error {
		for i, l := range ls.Layouts {
			if err := cw.Append(columnar.Int(int64(i)), columnar.String(l.tld)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	if err := writeTable(w, "domains", domainsSchema(), func(cw *columnar.Writer) error {
		for i, l := range ls.Layouts {
			for _, r := range l.domains {
				d := r.d
				web, err := r.web.MarshalBinary()
				if err != nil {
					return err
				}
				if err := cw.Append(
					columnar.Int(int64(i)),
					columnar.String(d.Name), columnar.String(d.TLD), columnar.String(d.Registrar),
					columnar.Int(d.Created.UnixNano()), columnar.Int(int64(d.Lifetime)),
					columnar.Bool(d.FastDelete), columnar.Bool(d.Malicious),
					columnar.Int(int64(d.Reason)), columnar.Bool(d.CertAsked),
					columnar.String(d.DNSHost), columnar.String(d.WebHost),
					columnar.Bool(d.HasMX), columnar.Bool(d.HasSPF),
					columnar.Bytes(encodeStringList(r.ns)), columnar.Bytes(web),
					columnar.Int(int64(r.caIdx)), columnar.Int(int64(r.certDelay)),
					columnar.Int(int64(r.retrySeed)), columnar.Bool(r.nsChange),
					columnar.Int(int64(r.nsChangeAt)), columnar.Bytes(encodeStringList(r.altNS)),
				); err != nil {
					return err
				}
			}
			// One row group per layout chunk, mirroring the compile
			// fan-out's unit structure.
			if err := cw.Flush(); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	if err := writeTable(w, "ghosts", ghostsSchema(), func(cw *columnar.Writer) error {
		for i, l := range ls.Layouts {
			for _, g := range l.ghosts {
				if err := cw.Append(
					columnar.Int(int64(i)),
					columnar.String(g.d.Name), columnar.String(g.d.TLD),
					columnar.Int(g.d.Created.UnixNano()), columnar.Int(int64(g.caIdx)),
					columnar.Int(g.tokenAt.UnixNano()), columnar.Bool(g.inDZDB),
				); err != nil {
					return err
				}
			}
			if err := cw.Flush(); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	feeds := func(pick func(l *Layout) []feedSeed) func(cw *columnar.Writer) error {
		return func(cw *columnar.Writer) error {
			for i, l := range ls.Layouts {
				for _, s := range pick(l) {
					if err := cw.Append(columnar.Int(int64(i)),
						columnar.String(s.domain), columnar.Int(s.at.UnixNano())); err != nil {
						return err
					}
				}
			}
			return nil
		}
	}
	if err := writeTable(w, "nod", seedSchema(), feeds(func(l *Layout) []feedSeed { return l.nod })); err != nil {
		return err
	}
	if err := writeTable(w, "dzdb", seedSchema(), feeds(func(l *Layout) []feedSeed { return l.dzdb })); err != nil {
		return err
	}
	if err := writeTable(w, "flags", flagsSchema(), func(cw *columnar.Writer) error {
		for i, l := range ls.Layouts {
			for _, f := range l.flags {
				if err := cw.Append(columnar.Int(int64(i)),
					columnar.String(f.Domain), columnar.String(f.List),
					columnar.Int(f.At.UnixNano())); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		return err
	}

	// Empty table name terminates the container.
	_, err := w.Write(binary.AppendUvarint(nil, 0))
	return err
}

// writeTable emits one named table: uvarint name length + name, uvarint
// body length + body, where the body is a complete DCOL file.
func writeTable(w io.Writer, name string, schema columnar.Schema, fill func(*columnar.Writer) error) error {
	var body strings.Builder
	cw := columnar.NewWriter(&body, schema, 0)
	if err := fill(cw); err != nil {
		return err
	}
	if err := cw.Close(); err != nil {
		return err
	}
	out := binary.AppendUvarint(nil, uint64(len(name)))
	out = append(out, name...)
	out = binary.AppendUvarint(out, uint64(body.Len()))
	if _, err := w.Write(out); err != nil {
		return err
	}
	_, err := io.WriteString(w, body.String())
	return err
}

// LoadSnapshot decodes a layout set from r. Errors cover corruption and
// unknown versions; callers decide whether a failed load falls back to
// compiling (the builder does) or surfaces (tests do).
func LoadSnapshot(r io.Reader) (*LayoutSet, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	head := make([]byte, len(snapMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("worldsim: reading snapshot magic: %w", err)
	}
	if string(head) != snapMagic {
		return nil, errors.New("worldsim: not a world snapshot")
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if version != snapVersion {
		return nil, fmt.Errorf("worldsim: snapshot version %d (want %d)", version, snapVersion)
	}
	seed, err := binary.ReadVarint(br)
	if err != nil {
		return nil, err
	}
	hash, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	ls := &LayoutSet{Seed: seed, ConfigHash: hash}

	// Tables decode as they stream past: each table's row groups are
	// consumed the moment they're read, so peak memory is one group's
	// columns plus the growing layout set — never the whole file's worth
	// of decoded columns. Writer order (layouts first) is part of the
	// versioned format; a reordered file fails the layout-bounds checks.
	seen := make(map[string]bool)
	for {
		nameLen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("worldsim: reading table name: %w", err)
		}
		if nameLen == 0 {
			break
		}
		if nameLen > 1<<10 {
			return nil, errors.New("worldsim: absurd table name length")
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBuf); err != nil {
			return nil, err
		}
		bodyLen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		cr, err := columnar.NewReader(io.LimitReader(br, int64(bodyLen)))
		if err != nil {
			return nil, fmt.Errorf("worldsim: table %q: %w", nameBuf, err)
		}
		// Every decoder below consumes its group before pulling the next,
		// so the reader can recycle column storage between groups.
		cr.Reuse()
		tr := &tableReader{r: cr}
		name := string(nameBuf)
		switch name {
		case "layouts":
			err = ls.decodeLayouts(tr)
		case "domains":
			err = ls.decodeDomains(tr)
		case "ghosts":
			err = ls.decodeGhosts(tr)
		case "nod":
			err = ls.decodeFeed(tr, func(l *Layout, s feedSeed) { l.nod = append(l.nod, s) })
		case "dzdb":
			err = ls.decodeFeed(tr, func(l *Layout, s feedSeed) { l.dzdb = append(l.dzdb, s) })
		case "flags":
			err = ls.decodeFlags(tr)
		default:
			err = tr.drain()
		}
		if err != nil {
			return nil, fmt.Errorf("worldsim: table %q: %w", name, err)
		}
		seen[name] = true
	}
	for _, want := range []string{"layouts", "domains", "ghosts", "nod", "dzdb", "flags"} {
		if !seen[want] {
			return nil, fmt.Errorf("worldsim: snapshot missing table %q", want)
		}
	}
	return ls, nil
}

// tableReader streams one table's row groups; next returns io.EOF at
// the end of the table.
type tableReader struct {
	r *columnar.Reader
}

func (t *tableReader) next() (*columnar.RowGroup, error) {
	g, err := t.r.Next()
	if err != nil && !errors.Is(err, io.EOF) {
		return nil, err
	}
	if err != nil {
		return nil, io.EOF
	}
	return g, nil
}

// drain consumes an unknown table so the stream stays aligned for the
// tables that follow it.
func (t *tableReader) drain() error {
	for {
		if _, err := t.next(); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
	}
}

// eachRow replays a table's rows in order, resolving the standard
// leading "layout" column against ls.Layouts.
func (ls *LayoutSet) eachRow(t *tableReader, fn func(l *Layout, g *columnar.RowGroup, i int) error) error {
	for {
		g, err := t.next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		idxs := g.Ints["layout"]
		for i := 0; i < g.Rows; i++ {
			idx := idxs[i]
			if idx < 0 || idx >= int64(len(ls.Layouts)) {
				return fmt.Errorf("worldsim: layout index %d out of range", idx)
			}
			if err := fn(ls.Layouts[idx], g, i); err != nil {
				return err
			}
		}
	}
}

func (ls *LayoutSet) decodeLayouts(t *tableReader) error {
	for {
		g, err := t.next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		for i := 0; i < g.Rows; i++ {
			if g.Ints["idx"][i] != int64(len(ls.Layouts)) {
				return errors.New("worldsim: layout table out of order")
			}
			ls.Layouts = append(ls.Layouts, &Layout{tld: g.Strs["tld"][i]})
		}
	}
}

// nsIntern caches decoded nameserver lists by their raw encoding. The
// NS namespace is tiny (hosting providers × shard count), so virtually
// every list after the first few rows is a cache hit — the decode path's
// dominant allocation source collapses to a map probe.
type nsIntern map[string][]string

func (in nsIntern) list(b []byte) ([]string, error) {
	if v, ok := in[string(b)]; ok {
		return v, nil
	}
	v, err := decodeStringList(b)
	if err != nil {
		return nil, err
	}
	in[string(b)] = v
	return v, nil
}

func (ls *LayoutSet) decodeDomains(t *tableReader) error {
	intern := make(nsIntern)
	for {
		g, err := t.next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		var (
			idxs     = g.Ints["layout"]
			names    = g.Strs["name"]
			tlds     = g.Strs["tld"]
			regs     = g.Strs["registrar"]
			created  = g.Ints["created"]
			lifetime = g.Ints["lifetime"]
			fastDel  = g.Bools["fast_delete"]
			mal      = g.Bools["malicious"]
			reasons  = g.Ints["reason"]
			certAsk  = g.Bools["cert_asked"]
			dnsHosts = g.Strs["dns_host"]
			webHosts = g.Strs["web_host"]
			hasMX    = g.Bools["has_mx"]
			hasSPF   = g.Bools["has_spf"]
			nsCol    = g.Bytes["ns"]
			webCol   = g.Bytes["web"]
			caIdxs   = g.Ints["ca_idx"]
			certDel  = g.Ints["cert_delay"]
			retry    = g.Ints["retry_seed"]
			nsChg    = g.Bools["ns_change"]
			nsChgAt  = g.Ints["ns_change_at"]
			altCol   = g.Bytes["alt_ns"]
		)
		// One Domain/regLayout block per group instead of two heap
		// objects per row; the pointers appended below stay valid for
		// the life of the layout set.
		ds := make([]Domain, g.Rows)
		rls := make([]regLayout, g.Rows)
		ptrs := make([]*regLayout, g.Rows)
		for i := 0; i < g.Rows; i++ {
			idx := idxs[i]
			if idx < 0 || idx >= int64(len(ls.Layouts)) {
				return fmt.Errorf("worldsim: layout index %d out of range", idx)
			}
			ds[i] = Domain{
				Name:       names[i],
				TLD:        tlds[i],
				Registrar:  regs[i],
				Created:    nanoTime(created[i]),
				Lifetime:   time.Duration(lifetime[i]),
				FastDelete: fastDel[i],
				Malicious:  mal[i],
				Reason:     registrar.RemovalReason(reasons[i]),
				CertAsked:  certAsk[i],
				DNSHost:    dnsHosts[i],
				WebHost:    webHosts[i],
				HasMX:      hasMX[i],
				HasSPF:     hasSPF[i],
			}
			ns, err := intern.list(nsCol[i])
			if err != nil {
				return err
			}
			altNS, err := intern.list(altCol[i])
			if err != nil {
				return err
			}
			var web netip.Addr
			if err := web.UnmarshalBinary(webCol[i]); err != nil {
				return err
			}
			rls[i] = regLayout{
				d: &ds[i], ns: ns, web: web,
				caIdx:      int(caIdxs[i]),
				certDelay:  time.Duration(certDel[i]),
				retrySeed:  uint64(retry[i]),
				nsChange:   nsChg[i],
				nsChangeAt: time.Duration(nsChgAt[i]),
				altNS:      altNS,
			}
			ptrs[i] = &rls[i]
		}
		// Bulk-append runs of equal layout index: the writer emits one
		// group per layout, so this is normally a single append per
		// group instead of a growslice call per row.
		for start := 0; start < g.Rows; {
			end := start + 1
			for end < g.Rows && idxs[end] == idxs[start] {
				end++
			}
			l := ls.Layouts[idxs[start]]
			l.domains = append(l.domains, ptrs[start:end]...)
			start = end
		}
	}
}

func (ls *LayoutSet) decodeGhosts(t *tableReader) error {
	for {
		g, err := t.next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		var (
			idxs    = g.Ints["layout"]
			names   = g.Strs["name"]
			tlds    = g.Strs["tld"]
			created = g.Ints["created"]
			caIdxs  = g.Ints["ca_idx"]
			tokenAt = g.Ints["token_at"]
			inDZDB  = g.Bools["in_dzdb"]
		)
		ds := make([]Domain, g.Rows)
		gls := make([]ghostLayout, g.Rows)
		ptrs := make([]*ghostLayout, g.Rows)
		for i := 0; i < g.Rows; i++ {
			idx := idxs[i]
			if idx < 0 || idx >= int64(len(ls.Layouts)) {
				return fmt.Errorf("worldsim: layout index %d out of range", idx)
			}
			ds[i] = Domain{
				Name:    names[i],
				TLD:     tlds[i],
				Created: nanoTime(created[i]),
				Ghost:   true,
			}
			gls[i] = ghostLayout{
				d:       &ds[i],
				caIdx:   int(caIdxs[i]),
				tokenAt: nanoTime(tokenAt[i]),
				inDZDB:  inDZDB[i],
			}
			ptrs[i] = &gls[i]
		}
		for start := 0; start < g.Rows; {
			end := start + 1
			for end < g.Rows && idxs[end] == idxs[start] {
				end++
			}
			l := ls.Layouts[idxs[start]]
			l.ghosts = append(l.ghosts, ptrs[start:end]...)
			start = end
		}
	}
}

func (ls *LayoutSet) decodeFeed(t *tableReader, add func(*Layout, feedSeed)) error {
	return ls.eachRow(t, func(l *Layout, g *columnar.RowGroup, i int) error {
		add(l, feedSeed{domain: g.Strs["domain"][i], at: nanoTime(g.Ints["at"][i])})
		return nil
	})
}

func (ls *LayoutSet) decodeFlags(t *tableReader) error {
	return ls.eachRow(t, func(l *Layout, g *columnar.RowGroup, i int) error {
		l.flags = append(l.flags, blocklist.Flag{
			Domain: g.Strs["domain"][i],
			List:   g.Strs["list"][i],
			At:     nanoTime(g.Ints["at"][i]),
		})
		return nil
	})
}

// File-level helpers --------------------------------------------------------

// SaveSnapshotFile writes a snapshot atomically: the bytes land in a
// temp file in the target directory and rename into place, so concurrent
// sweep cells racing on the same path see either nothing or a complete
// snapshot.
func SaveSnapshotFile(path string, ls *LayoutSet) error {
	tmp, err := os.CreateTemp(pathDir(path), ".snap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := SaveSnapshot(tmp, ls); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func pathDir(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return "."
}

// LoadSnapshotFile reads a snapshot from disk.
func LoadSnapshotFile(path string) (*LayoutSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadSnapshot(f)
}

// layoutsFor resolves a build's layouts: when the config names a snapshot
// path, a matching snapshot replaces the compile fan-out entirely (the
// load feeds the commit engine directly); a missing, stale or corrupt
// snapshot falls back to compiling, and the freshly compiled world is
// saved back to the path best-effort for the next build.
func layoutsFor(env *buildEnv) []*Layout {
	cfg := env.cfg
	if cfg.SnapshotPath != "" {
		if ls, err := LoadSnapshotFile(cfg.SnapshotPath); err == nil && ls.Matches(*cfg) {
			snapshotLoads.Add(1)
			return ls.Layouts
		}
		layouts := compileLayouts(env)
		ls := &LayoutSet{Seed: cfg.Seed, ConfigHash: cfg.shapeHash(), Layouts: layouts}
		_ = SaveSnapshotFile(cfg.SnapshotPath, ls) // best-effort cache fill
		return layouts
	}
	return compileLayouts(env)
}
