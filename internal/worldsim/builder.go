// Commit phase of the two-phase world builder (compile lives in
// layout.go): install compiled layouts into the live world, serially and
// in canonical plan order, so the resulting world is byte-identical at
// any compile width.
package worldsim

import (
	"fmt"
	"math/rand"
	"time"

	"darkdns/internal/ca"
	"darkdns/internal/ct"
	"darkdns/internal/simclock"
	"darkdns/internal/workpool"
)

// compileUnit is one entry of the compile work list: a chunk of a gTLD
// plan (plan ≥ 0) or of the ccTLD plan (plan == -1).
type compileUnit struct {
	plan          int
	chunk, chunks int
}

// compileLayouts compiles every gTLD plan plus the ccTLD plan into
// layouts, fanning the pure chunk compilers out on a worker pool of
// width cfg.BuildWorkers (≤1 = serial on the caller's goroutine). The
// unit list and each layout are pure functions of (cfg, plan, chunk) —
// every chunk's RNG stream derives from subseed(Seed, "plan/<tld>/<i>")
// — so the result is identical at any width. The canonical world order
// is the unit-list order: plans in Config.Plans order, chunks ascending,
// ccTLD last.
func compileLayouts(env *buildEnv) []*Layout {
	cfg := env.cfg
	units := make([]compileUnit, 0, len(cfg.Plans)+1)
	for i, p := range cfg.Plans {
		k := planChunks(cfg, p)
		for c := 0; c < k; c++ {
			units = append(units, compileUnit{i, c, k})
		}
	}
	ck := ccChunks(cfg, *cfg.CCTLD)
	for c := 0; c < ck; c++ {
		units = append(units, compileUnit{-1, c, ck})
	}
	layouts := make([]*Layout, len(units))
	workpool.Run(len(units), cfg.BuildWorkers, func(i int) {
		u := units[i]
		if u.plan >= 0 {
			plan := cfg.Plans[u.plan]
			rng := rand.New(rand.NewSource(subseed(cfg.Seed, fmt.Sprintf("plan/%s/%d", plan.TLD, u.chunk))))
			layouts[i] = compilePlanChunk(env, plan, u.chunk, u.chunks, rng)
		} else {
			rng := rand.New(rand.NewSource(subseed(cfg.Seed, fmt.Sprintf("ccplan/%s/%d", cfg.CCTLD.TLD, u.chunk))))
			layouts[i] = compileCCTLDChunk(env, *cfg.CCTLD, u.chunk, u.chunks, rng)
		}
	})
	return layouts
}

// commit installs compiled layouts in canonical plan order: ground-truth
// records into Domains, buffered seedings into the NOD feed, blocklists
// and DZDB, DV tokens into the CAs, and each layout's timeline onto the
// clock through one ScheduleBatch call (one lock acquisition per layout
// instead of one per event). Serial by design: determinism comes from
// the fixed order, speed from the batch APIs.
func (w *World) commit(layouts []*Layout) {
	total, ghosts := 0, 0
	for _, l := range layouts {
		total += len(l.domains)
		ghosts += len(l.ghosts)
	}
	w.Domains = make(map[string]*Domain, total)
	// Name collisions between layouts are impossible while plans own
	// distinct TLDs (chunk discriminators partition within a plan); the
	// dupNames counter is the safety net for configs that violate that
	// rule. Ghost names live in their own set — they are deliberately
	// absent from Domains.
	ghostSeen := make(map[string]struct{}, ghosts)
	var timeline []simclock.Timed
	for _, l := range layouts {
		timeline = timeline[:0]
		for _, r := range l.domains {
			_, dupD := w.Domains[r.d.Name]
			_, dupG := ghostSeen[r.d.Name]
			if dupD || dupG {
				w.dupNames++
			}
			w.Domains[r.d.Name] = r.d
			timeline = append(timeline, simclock.Timed{At: r.d.Created, Fn: w.registrationFn(r)})
		}
		for _, g := range l.ghosts {
			_, dupD := w.Domains[g.d.Name]
			_, dupG := ghostSeen[g.d.Name]
			if dupD || dupG {
				w.dupNames++
			}
			ghostSeen[g.d.Name] = struct{}{}
			w.Ghosts = append(w.Ghosts, g.d)
			issuer := w.CAs[g.caIdx]
			issuer.SeedToken(g.d.Name, g.tokenAt)
			if g.inDZDB {
				w.DZDB.Observe(g.d.Name, g.tokenAt)
			}
			name := g.d.Name
			timeline = append(timeline, simclock.Timed{At: g.d.Created, Fn: func() {
				issuer.Issue(name, name, nil, nil) // token reuse: no live validation
			}})
		}
		for _, s := range l.nod {
			w.NOD.Seed(s.domain, s.at)
		}
		for _, f := range l.flags {
			w.Blocklists.SeedFlag(f.List, f.Domain, f.At)
		}
		for _, s := range l.dzdb {
			w.DZDB.Observe(s.domain, s.at)
		}
		w.Clock.ScheduleBatch(timeline)
	}
}

// registrationFn wires one compiled registration's lifecycle into a
// clock callback: register at creation, then kick off the (pre-drawn)
// certificate chain, NS change and deletion.
func (w *World) registrationFn(r *regLayout) func() {
	d := r.d
	reg := w.Registries[d.TLD]
	return func() {
		if _, err := reg.Register(d.Name, d.Registrar, r.ns, r.web); err != nil {
			return // name collision with an active registration (duplicate-TLD plans only)
		}
		if d.CertAsked {
			w.requestCert(w.CAs[r.caIdx], d.Name, r.certDelay, r.retrySeed, 0)
		}
		if r.nsChange && (d.Lifetime == 0 || r.nsChangeAt < d.Lifetime) {
			w.Clock.After(r.nsChangeAt, func() { _ = reg.UpdateNS(d.Name, r.altNS) })
		}
		if d.Lifetime > 0 {
			w.Clock.After(d.Lifetime, func() { _ = reg.Delete(d.Name) })
		}
	}
}

// requestCert retries issuance while the domain has not yet entered its
// TLD zone — modelling ACME clients retrying validation until the
// registry's next zone rebuild publishes the delegation. This retry chain
// is what couples Figure 1's detection delay to zone-update cadence. The
// backoffs derive from the registration's compiled retry seed, so the
// chain stays a pure function of the world seed.
func (w *World) requestCert(issuer *ca.CA, name string, delay time.Duration, retrySeed uint64, attempt int) {
	w.Clock.After(delay, func() {
		issuer.Issue(name, name, nil, func(_ ct.Entry, err error) {
			if err == nil || attempt >= maxCertAttempts {
				return
			}
			w.requestCert(issuer, name, retryDelay(retrySeed, attempt), retrySeed, attempt+1)
		})
	})
}
