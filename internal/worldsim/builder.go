// Commit phase of the two-phase world builder (compile lives in
// layout.go): install compiled layouts into the live world. The
// commutative bulk of a layout — record installs on the sharded
// DomainStore, NOD/blocklist/DZDB seedings, DV tokens — commits on a
// worker pool at Config.CommitWorkers width; the order-sensitive
// remainder (the ghost ledger, the clock-timeline ScheduleBatch calls)
// stays serial in canonical (plan, chunk) order, so the resulting world
// is byte-identical at any compile or commit width (DESIGN.md §9).
package worldsim

import (
	"fmt"
	"math/rand"
	"time"

	"darkdns/internal/ca"
	"darkdns/internal/ct"
	"darkdns/internal/simclock"
	"darkdns/internal/workpool"
)

// compileUnit is one entry of the compile work list: a chunk of a gTLD
// plan (plan ≥ 0) or of the ccTLD plan (plan == -1).
type compileUnit struct {
	plan          int
	chunk, chunks int
}

// compileLayouts compiles every gTLD plan plus the ccTLD plan into
// layouts, fanning the pure chunk compilers out on a worker pool of
// width cfg.BuildWorkers (≤1 = serial on the caller's goroutine). The
// unit list and each layout are pure functions of (cfg, plan, chunk) —
// every chunk's RNG stream derives from subseed(Seed, "plan/<tld>/<i>")
// — so the result is identical at any width. The canonical world order
// is the unit-list order: plans in Config.Plans order, chunks ascending,
// ccTLD last.
func compileLayouts(env *buildEnv) []*Layout {
	compileCount.Add(1)
	cfg := env.cfg
	units := make([]compileUnit, 0, len(cfg.Plans)+1)
	for i, p := range cfg.Plans {
		k := planChunks(cfg, p)
		for c := 0; c < k; c++ {
			units = append(units, compileUnit{i, c, k})
		}
	}
	ck := ccChunks(cfg, *cfg.CCTLD)
	for c := 0; c < ck; c++ {
		units = append(units, compileUnit{-1, c, ck})
	}
	layouts := make([]*Layout, len(units))
	workpool.Run(len(units), cfg.BuildWorkers, func(i int) {
		u := units[i]
		if u.plan >= 0 {
			plan := cfg.Plans[u.plan]
			rng := rand.New(rand.NewSource(subseed(cfg.Seed, fmt.Sprintf("plan/%s/%d", plan.TLD, u.chunk))))
			layouts[i] = compilePlanChunk(env, plan, u.chunk, u.chunks, rng)
		} else {
			rng := rand.New(rand.NewSource(subseed(cfg.Seed, fmt.Sprintf("ccplan/%s/%d", cfg.CCTLD.TLD, u.chunk))))
			layouts[i] = compileCCTLDChunk(env, *cfg.CCTLD, u.chunk, u.chunks, rng)
		}
	})
	return layouts
}

// commit installs compiled layouts through the parallel commit engine.
// Phase one fans per-layout installs out on a worker pool at
// Config.CommitWorkers width (≤1 = serial on the caller): ground-truth
// records into the sharded Domains store, buffered seedings into the NOD
// feed, blocklists and DZDB, DV tokens into the CAs, and each layout's
// timeline into a private slice. Every one of those effects is
// commutative across layouts — layouts own distinct names (structurally,
// while plans own distinct TLDs; the dupNames counter is the safety
// net), and the substrates take earliest-wins / min-max / keyed updates
// under their own locks — so phase one is order-free. Phase two is the
// serial remainder: the ghost ledger append (slice order) and the
// ScheduleBatch calls (event sequence numbers), both order-sensitive,
// run in canonical (plan, chunk) order. One lock acquisition per layout
// on the clock either way; determinism comes from the fixed phase-two
// order, speed from striping phase one.
func (w *World) commit(layouts []*Layout) {
	total := 0
	for _, l := range layouts {
		total += len(l.domains)
	}
	w.Domains = newDomainStore(total)
	lifecycles := make([][]simclock.TaggedTimed, len(layouts))
	timelines := make([][]simclock.Timed, len(layouts))
	workpool.Run(len(layouts), w.Cfg.CommitWorkers, func(i int) {
		lifecycles[i], timelines[i] = w.commitLayout(layouts[i], i)
	})
	for i, l := range layouts {
		for _, g := range l.ghosts {
			w.Ghosts = append(w.Ghosts, g.d)
		}
		// Tagged registrations first, then untagged ghost issuance —
		// the same per-layout append order commitLayout used when both
		// lived in one batch, so sequence numbers are unchanged.
		w.Clock.ScheduleBatchTagged(lifecycles[i])
		w.Clock.ScheduleBatch(timelines[i])
	}
}

// commitLayout installs one layout's commutative effects and returns
// its compiled timelines — effect-tagged domain lifecycles and untagged
// ghost issuance — for the serial schedule pass. rank is the layout's
// canonical index, which decides duplicate-name winners the way serial
// order used to. Safe for concurrent invocation with distinct layouts:
// the Domains store is sharded, the substrates lock internally, and the
// registries/CAs the timeline closures capture are only read here.
func (w *World) commitLayout(l *Layout, rank int) ([]simclock.TaggedTimed, []simclock.Timed) {
	lifecycle := make([]simclock.TaggedTimed, 0, len(l.domains))
	timeline := make([]simclock.Timed, 0, len(l.ghosts))
	for _, r := range l.domains {
		if w.Domains.install(r.d, rank) {
			w.dupNames.Add(1)
		}
		lifecycle = append(lifecycle, w.registrationEvent(r))
	}
	for _, g := range l.ghosts {
		// Ghost names join the store's uniqueness set only — they have no
		// registration, so Get keeps returning nil for them.
		if w.Domains.installGhost(g.d.Name) {
			w.dupNames.Add(1)
		}
		issuer := w.CAs[g.caIdx]
		issuer.SeedToken(g.d.Name, g.tokenAt)
		if g.inDZDB {
			w.DZDB.Observe(g.d.Name, g.tokenAt)
		}
		name := g.d.Name
		timeline = append(timeline, simclock.Timed{At: g.d.Created, Fn: func() {
			issuer.Issue(name, name, nil, nil) // token reuse: no live validation
		}})
	}
	for _, s := range l.nod {
		w.NOD.Seed(s.domain, s.at)
	}
	for _, f := range l.flags {
		w.Blocklists.SeedFlag(f.List, f.Domain, f.At)
	}
	for _, s := range l.dzdb {
		w.DZDB.Observe(s.domain, s.at)
	}
	return lifecycle, timeline
}

// registrationEvent wires one compiled registration's lifecycle into an
// effect-tagged clock event: register at creation, then kick off the
// (pre-drawn) certificate chain, NS change and deletion. The whole
// chain carries the domain's effect atom — registration, NS change and
// deletion touch only that domain's registry/ledger slice — so the
// lookahead drain may fire lifecycles of unrelated domains from
// different instants together. The callback is time-explicit: every
// timestamp derives from the firing instant, and the certificate
// request (untagged, it touches CA/CT state) is declared through Quiet
// so the scan never speculates past its spawn point.
func (w *World) registrationEvent(r *regLayout) simclock.TaggedTimed {
	d := r.d
	reg := w.Registries[d.TLD]
	tag := simclock.DomainTag(d.Name)
	var quiet time.Time
	if d.CertAsked {
		quiet = d.Created.Add(r.certDelay)
	}
	return simclock.TaggedTimed{
		At:    d.Created,
		Tag:   tag,
		Quiet: quiet,
		Fn: func(now time.Time) {
			if _, err := reg.RegisterAt(d.Name, d.Registrar, r.ns, r.web, now); err != nil {
				return // name collision with an active registration (duplicate-TLD plans only)
			}
			if d.CertAsked {
				w.requestCertAt(w.CAs[r.caIdx], d.Name, now.Add(r.certDelay), r.retrySeed, 0)
			}
			if r.nsChange && (d.Lifetime == 0 || r.nsChangeAt < d.Lifetime) {
				w.Clock.ScheduleTagged(simclock.TaggedTimed{
					At: now.Add(r.nsChangeAt), Tag: tag,
					Fn: func(time.Time) { _ = reg.UpdateNS(d.Name, r.altNS) },
				})
			}
			if d.Lifetime > 0 {
				w.Clock.ScheduleTagged(simclock.TaggedTimed{
					At: now.Add(d.Lifetime), Tag: tag,
					Fn: func(at time.Time) { _ = reg.DeleteAt(d.Name, at) },
				})
			}
		},
	}
}

// requestCertAt retries issuance while the domain has not yet entered
// its TLD zone — modelling ACME clients retrying validation until the
// registry's next zone rebuild publishes the delegation. This retry
// chain is what couples Figure 1's detection delay to zone-update
// cadence. The backoffs derive from the registration's compiled retry
// seed, so the chain stays a pure function of the world seed. The first
// attempt's instant is passed absolutely (the caller may be firing
// speculatively); retries read the clock, which is safe because the
// issue callback runs from untagged (barrier-fired) CA events.
func (w *World) requestCertAt(issuer *ca.CA, name string, at time.Time, retrySeed uint64, attempt int) {
	w.Clock.At(at, func() {
		issuer.Issue(name, name, nil, func(_ ct.Entry, err error) {
			if err == nil || attempt >= maxCertAttempts {
				return
			}
			w.requestCertAt(issuer, name, w.Clock.Now().Add(retryDelay(retrySeed, attempt)), retrySeed, attempt+1)
		})
	})
}
