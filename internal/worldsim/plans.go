package worldsim

// TLDPlan encodes one Table 1/Table 2 row: the TLD's zone-file NRD volume,
// the monthly CT-detected NRD counts (used as monthly weights), the
// certificate coverage (Table 1 Coverage column) and the monthly transient
// detections (Table 2).
type TLDPlan struct {
	TLD          string
	ZoneNRDs     int     // Table 1 "Zone NRD" (3-month total)
	MonthlyCT    [3]int  // Table 1 Nov/Dec/Jan CT-detected NRDs
	CertCoverage float64 // Table 1 Coverage
	Transients   [3]int  // Table 2 Nov/Dec/Jan transients (0 when absent)
}

// CTTotal returns the 3-month CT-detected NRD count.
func (p TLDPlan) CTTotal() int { return p.MonthlyCT[0] + p.MonthlyCT[1] + p.MonthlyCT[2] }

// TransientTotal returns the 3-month transient count.
func (p TLDPlan) TransientTotal() int { return p.Transients[0] + p.Transients[1] + p.Transients[2] }

// PaperPlans reproduces Tables 1 and 2 of the paper. The "Others"
// aggregate row is split across five representative tail TLDs; .fun
// carries the Table 2 transient counts attributed to it, and the
// remaining Others volume is spread by fixed proportions.
func PaperPlans() []TLDPlan {
	return []TLDPlan{
		{TLD: "com", ZoneNRDs: 8_467_641, MonthlyCT: [3]int{1_127_727, 1_109_804, 1_505_044}, CertCoverage: 0.442, Transients: [3]int{9363, 10_597, 21_232}},
		{TLD: "xyz", ZoneNRDs: 649_010, MonthlyCT: [3]int{114_582, 87_051, 107_740}, CertCoverage: 0.477, Transients: [3]int{321, 316, 624}},
		{TLD: "shop", ZoneNRDs: 775_253, MonthlyCT: [3]int{76_626, 99_660, 107_675}, CertCoverage: 0.366, Transients: [3]int{688, 497, 507}},
		{TLD: "online", ZoneNRDs: 648_922, MonthlyCT: [3]int{76_674, 76_693, 109_964}, CertCoverage: 0.406, Transients: [3]int{1800, 2369, 1990}},
		{TLD: "bond", ZoneNRDs: 292_552, MonthlyCT: [3]int{75_779, 81_265, 84_997}, CertCoverage: 0.827, Transients: [3]int{0, 0, 0}},
		{TLD: "top", ZoneNRDs: 532_363, MonthlyCT: [3]int{82_746, 74_134, 83_837}, CertCoverage: 0.452, Transients: [3]int{213, 161, 276}},
		{TLD: "net", ZoneNRDs: 643_030, MonthlyCT: [3]int{79_660, 71_922, 84_320}, CertCoverage: 0.367, Transients: [3]int{702, 866, 1544}},
		{TLD: "org", ZoneNRDs: 481_870, MonthlyCT: [3]int{53_377, 53_767, 76_400}, CertCoverage: 0.381, Transients: [3]int{595, 602, 1176}},
		{TLD: "site", ZoneNRDs: 465_542, MonthlyCT: [3]int{46_695, 47_879, 65_801}, CertCoverage: 0.344, Transients: [3]int{1578, 1381, 890}},
		{TLD: "store", ZoneNRDs: 326_383, MonthlyCT: [3]int{42_931, 38_699, 50_279}, CertCoverage: 0.404, Transients: [3]int{422, 414, 377}},
		// "Others" (3,009,575 zone NRDs; 1,042,121 CT NRDs; 34.6 %
		// coverage; 6,021 transients beyond .fun's 520) split across
		// five tail TLDs.
		{TLD: "fun", ZoneNRDs: 300_000, MonthlyCT: [3]int{32_857, 33_300, 38_055}, CertCoverage: 0.346, Transients: [3]int{185, 175, 160}},
		{TLD: "icu", ZoneNRDs: 750_000, MonthlyCT: [3]int{82_142, 83_250, 95_137}, CertCoverage: 0.346, Transients: [3]int{500, 600, 750}},
		{TLD: "club", ZoneNRDs: 700_000, MonthlyCT: [3]int{73_928, 74_925, 85_623}, CertCoverage: 0.346, Transients: [3]int{400, 500, 620}},
		{TLD: "live", ZoneNRDs: 650_000, MonthlyCT: [3]int{73_928, 74_925, 85_623}, CertCoverage: 0.346, Transients: [3]int{380, 450, 560}},
		{TLD: "website", ZoneNRDs: 609_575, MonthlyCT: [3]int{65_715, 66_600, 76_113}, CertCoverage: 0.346, Transients: [3]int{329, 408, 524}},
	}
}

// Table1TLDs are the TLDs reported individually in Table 1, in paper
// order; the remaining plans aggregate under "Others".
var Table1TLDs = []string{"com", "xyz", "shop", "online", "bond", "top", "net", "org", "site", "store"}

// Table2TLDs are the TLDs reported individually in Table 2, paper order.
var Table2TLDs = []string{"com", "online", "site", "net", "org", "shop", "xyz", "store", "top", "fun"}

// CCTLDPlan parameterizes the ground-truth ccTLD experiment (§4.4, .nl).
type CCTLDPlan struct {
	TLD string
	// FastDeleted is the 3-month count of domains deleted within 24 h of
	// registration per the registry's own ledger (paper: 714).
	FastDeleted int
	// Normal long-lived registrations across the window, for realism.
	Normal int
	// TransientCertRate is the probability a fast-deleted domain
	// requests a certificate before dying; calibrated so the pipeline
	// recovers ≈30 % of never-in-zone domains (paper: 99/334 = 29.6 %).
	TransientCertRate float64
}

// PaperCCTLD returns the .nl plan. Normal is kept modest: the experiment
// only needs enough background registrations for the registry to behave
// like a real zone, and these counts are NOT scaled by Config.Scale.
func PaperCCTLD() CCTLDPlan {
	return CCTLDPlan{TLD: "nl", FastDeleted: 714, Normal: 8_000, TransientCertRate: 0.37}
}
