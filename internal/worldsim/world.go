// Package worldsim generates the ground-truth DNS world the DarkDNS
// pipeline observes: TLD registries with live zones and daily snapshots,
// registrars registering and taking down domains, CAs logging
// precertificates to CT, a passive-DNS NOD feed, public blocklists, and
// historical zone data. All stochastic choices derive from a single seed,
// so a run is reproducible bit-for-bit.
package worldsim

import (
	"fmt"
	"math/rand"
	"time"

	"darkdns/internal/blocklist"
	"darkdns/internal/ca"
	"darkdns/internal/certstream"
	"darkdns/internal/ct"
	"darkdns/internal/czds"
	"darkdns/internal/dnsname"
	"darkdns/internal/dzdb"
	"darkdns/internal/hosting"
	"darkdns/internal/noddfeed"
	"darkdns/internal/rdap"
	"darkdns/internal/registrar"
	"darkdns/internal/registry"
	"darkdns/internal/simclock"
)

// Config parameterizes a world.
type Config struct {
	Seed  int64
	Start time.Time  // window start (paper: 2023-11-01)
	Weeks int        // window length in weeks (paper: ~13)
	Scale float64    // fraction of paper volumes to generate
	Plans []TLDPlan  // nil → PaperPlans()
	CCTLD *CCTLDPlan // nil → PaperCCTLD()
	// FastDeletedMultiplier converts Table 2 detected-transient targets
	// into ground-truth fast-deleted registrations. Detected transients
	// are the subset that obtain a certificate before dying AND miss
	// every daily snapshot; the multiplier compensates for both losses.
	FastDeletedMultiplier float64
	// TransientCertRate is the probability a gTLD fast-deleted domain
	// requests a certificate.
	TransientCertRate float64
	// GhostRate scales stale-DV-token issuances (certificates for
	// domains that no longer exist) relative to the Table 2 transient
	// target — the cause-iii RDAP failures of §4.2.
	GhostRate float64
	// EarlyRemovedRate is the fraction of long-lived NRDs deleted before
	// the window's end (paper: ≈10 %).
	EarlyRemovedRate float64
	// NSChangeRate is the fraction of NRDs that swap nameserver
	// infrastructure within their first 24 h (paper §4.1: 2.5 %).
	NSChangeRate float64
	// ReRegistrationRate is the fraction of abusive domains that are
	// re-registrations of previously flagged names (§4.3: ≈3 % of
	// flagged NRDs were listed before their registration date).
	ReRegistrationRate float64
	// NODRateWithCert / NODRateNoCert are the passive-DNS detection
	// probabilities conditioned on certificate issuance (§4.4 overlap).
	NODRateWithCert float64
	NODRateNoCert   float64
}

// DefaultConfig returns the calibrated paper-shape configuration.
func DefaultConfig(seed int64, scale float64) Config {
	return Config{
		Seed:                  seed,
		Start:                 time.Date(2023, 11, 1, 0, 0, 0, 0, time.UTC),
		Weeks:                 13,
		Scale:                 scale,
		FastDeletedMultiplier: 2.0,
		TransientCertRate:     0.75,
		GhostRate:             0.55,
		EarlyRemovedRate:      0.10,
		NSChangeRate:          0.025,
		ReRegistrationRate:    0.03,
		NODRateWithCert:       0.62,
		NODRateNoCert:         0.32,
	}
}

// Domain is the ground-truth record of one generated registration.
type Domain struct {
	Name       string
	TLD        string
	Registrar  string
	Created    time.Time
	Lifetime   time.Duration // 0 = survives the window
	FastDelete bool          // deleted within 24 h (transient candidate)
	Malicious  bool
	Reason     registrar.RemovalReason
	CertAsked  bool
	DNSHost    string
	WebHost    string
	HasMX      bool // publishes MX records
	HasSPF     bool // publishes an SPF TXT policy
	Ghost      bool // CT entry without a live registration
}

// World owns every substrate plus the ground truth that produced them.
type World struct {
	Cfg   Config
	Clock *simclock.Sim
	rng   *rand.Rand

	Registries map[string]*registry.Registry
	CZDS       *czds.Service
	// CCZones is the researcher-access zone collection for the ccTLD
	// (the paper's team had .nl zone data via OpenINTEL even though .nl
	// is not in CZDS).
	CCZones *czds.Service
	DZDB    *dzdb.DB
	// Logs are the CT logs CAs submit to (multiple logs, as in the real
	// ecosystem; the certstream hub merges them and the pipeline
	// deduplicates by domain). Log is the first, kept for convenience.
	Logs       []*ct.Log
	Log        *ct.Log
	Hub        *certstream.Hub
	CAs        []*ca.CA
	Blocklists *blocklist.Aggregator
	NOD        *noddfeed.Feed
	RDAP       *rdap.Mux

	// Ground truth, keyed by domain name.
	Domains map[string]*Domain
	// Ghosts are CT-only issuances for long-dead domains.
	Ghosts []*Domain

	windowEnd time.Time
}

// Window returns the observation window [start, end).
func (w *World) Window() (time.Time, time.Time) { return w.Cfg.Start, w.windowEnd }

// caNames are the issuing CAs the simulator distributes issuance across
// (the paper names GlobalSign, Sectigo and Cloudflare as the CAs it
// contacted about stale-token issuance; LetsEncrypt dominates volume).
var caNames = []string{"LetsEncrypt", "GlobalSign", "Sectigo", "CloudflareCA"}

// New builds a world and schedules every ground-truth event on its clock.
// Call Run (or step the clock manually) to execute the timeline.
func New(cfg Config) *World {
	if cfg.Scale <= 0 {
		cfg.Scale = 0.001
	}
	if cfg.Plans == nil {
		cfg.Plans = PaperPlans()
	}
	if cfg.CCTLD == nil {
		p := PaperCCTLD()
		cfg.CCTLD = &p
	}
	if cfg.Weeks <= 0 {
		cfg.Weeks = 13
	}
	w := &World{
		Cfg:        cfg,
		Clock:      simclock.NewSim(cfg.Start),
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		Registries: make(map[string]*registry.Registry),
		CZDS:       czds.New(),
		DZDB:       dzdb.New(),
		Hub:        certstream.NewHub(),
		Blocklists: blocklist.NewAggregator(nil),
		RDAP:       rdap.NewMux(),
		Domains:    make(map[string]*Domain),
	}
	w.windowEnd = cfg.Start.Add(time.Duration(cfg.Weeks) * 7 * 24 * time.Hour)
	w.NOD = noddfeed.New(noddfeed.DefaultConfig())

	w.Logs = []*ct.Log{ct.NewLog("argon-sim", nil), ct.NewLog("xenon-sim", nil)}
	w.Log = w.Logs[0]
	for _, l := range w.Logs {
		w.Hub.Attach(l, w.Clock.Now)
	}

	// Registries: one per plan plus the ccTLD.
	tlds := make([]string, 0, len(cfg.Plans)+1)
	for _, p := range cfg.Plans {
		tlds = append(tlds, p.TLD)
	}
	tlds = append(tlds, cfg.CCTLD.TLD)
	w.CCZones = czds.New()
	for _, tld := range tlds {
		rcfg := registry.DefaultConfig(tld)
		rcfg.SnapshotDelay = snapshotDelay
		reg := registry.New(rcfg, w.Clock, rand.New(rand.NewSource(cfg.Seed^int64(len(tld))^hashString(tld))))
		w.Registries[tld] = reg
		w.CZDS.Collect(reg)
		if !reg.InCZDS() {
			reg.Subscribe(w.CCZones.Ingest)
		}
		reg.Subscribe(w.DZDB.IngestSnapshot)
		w.RDAP.Handle(tld, rdapBackend{reg})
	}

	// CAs validate against the union of live zones.
	resolver := ca.ResolverFunc(w.resolves)
	for i, name := range caNames {
		w.CAs = append(w.CAs, ca.New(ca.Config{Name: name}, w.Clock,
			rand.New(rand.NewSource(cfg.Seed+int64(i)*7919)), resolver, w.Logs[i%len(w.Logs)]))
	}

	w.scheduleAll()
	return w
}

// Stop halts registry tickers (for tests that abandon a world early).
func (w *World) Stop() {
	for _, reg := range w.Registries {
		reg.Stop()
	}
}

// Run advances the clock through the full window plus a drain margin for
// late snapshots and measurement windows.
func (w *World) Run() {
	w.Clock.RunUntil(w.drainDeadline())
	w.Stop()
}

// RunBatched advances like Run but drains the clock in batch-firing
// mode: events sharing a timestamp pop as one group and runs of
// parallel-marked events (RDAP due-timers, under a dispatch-enabled
// pipeline) fire through a pool of the given width. Campaign results are
// byte-identical to Run for any width — the world's own ground-truth
// events stay serial, and parallel consumers are commutative by
// contract.
func (w *World) RunBatched(workers int) {
	w.Clock.RunUntilBatched(w.drainDeadline(), workers)
	w.Stop()
}

// drainDeadline is the window end plus slack for late snapshots and the
// last measurement windows.
func (w *World) drainDeadline() time.Time {
	return w.windowEnd.Add(5 * 24 * time.Hour)
}

// resolves implements the CA's DV check against live zones.
func (w *World) resolves(name string) bool {
	tld := dnsname.TLD(dnsname.Canonical(name))
	reg := w.Registries[tld]
	if reg == nil {
		return false
	}
	_, ok := reg.Delegation(name)
	return ok
}

// rdapBackend adapts a registry to the rdap.Backend interface.
type rdapBackend struct{ reg *registry.Registry }

func (b rdapBackend) RDAPDomain(name string) (*rdap.Record, error) {
	r, err := b.reg.RDAPLookup(name)
	if err != nil {
		if err == registry.RDAPErrNotSynced {
			return nil, rdap.ErrNotSynced
		}
		return nil, rdap.ErrNotFound
	}
	return &rdap.Record{
		Domain: r.Domain, Registrar: r.Registrar, Registered: r.Created,
		Status: []string{"active"},
	}, nil
}

// snapshotDelay models CZDS publication lag: usually a couple of hours,
// occasionally days (the reason for the paper's ±3-day slack).
func snapshotDelay(rng *rand.Rand) time.Duration {
	if rng.Float64() < 0.05 {
		return time.Duration(24+rng.Intn(48)) * time.Hour
	}
	return time.Duration(1+rng.Intn(4)) * time.Hour
}

// scheduleAll lays out every registration, deletion, certificate request,
// ghost issuance and feed observation on the clock.
func (w *World) scheduleAll() {
	weeks := w.Cfg.Weeks
	monthOf := func(t time.Time) int {
		d := int(t.Sub(w.Cfg.Start) / (24 * time.Hour))
		m := d / 30
		if m > 2 {
			m = 2
		}
		return m
	}
	_ = monthOf
	for _, plan := range w.Cfg.Plans {
		w.scheduleTLD(plan, weeks)
	}
	w.scheduleCCTLD(*w.Cfg.CCTLD, weeks)
}

// monthlyWeights converts a plan's monthly CT counts into per-month
// weights over the simulated window (the window is weeks long; month i
// covers days [30i, 30(i+1))).
func monthlyWeights(m [3]int) [3]float64 {
	tot := float64(m[0] + m[1] + m[2])
	if tot == 0 {
		return [3]float64{1. / 3, 1. / 3, 1. / 3}
	}
	return [3]float64{float64(m[0]) / tot, float64(m[1]) / tot, float64(m[2]) / tot}
}

// sampleCreation picks a creation instant, weighting months per the plan.
func (w *World) sampleCreation(weights [3]float64) time.Time {
	x := w.rng.Float64()
	month := 0
	switch {
	case x < weights[0]:
		month = 0
	case x < weights[0]+weights[1]:
		month = 1
	default:
		month = 2
	}
	windowDays := w.Cfg.Weeks * 7
	lo := month * 30
	hi := (month + 1) * 30
	if hi > windowDays {
		hi = windowDays
	}
	if lo >= hi {
		lo, hi = 0, windowDays
	}
	day := lo + w.rng.Intn(hi-lo)
	return w.Cfg.Start.Add(time.Duration(day)*24*time.Hour +
		time.Duration(w.rng.Int63n(int64(24*time.Hour))))
}

func (w *World) scheduleTLD(plan TLDPlan, weeks int) {
	scale := w.Cfg.Scale * float64(weeks*7) / 91.0
	weights := monthlyWeights(plan.MonthlyCT)

	// Long-lived + early-removed registrations. Ground truth total is
	// the zone-NRD volume; CT coverage decides who requests certs.
	nNormal := int(float64(plan.ZoneNRDs) * scale)
	for i := 0; i < nNormal; i++ {
		d := &Domain{
			Name:    w.domainName(plan.TLD),
			TLD:     plan.TLD,
			Created: w.sampleCreation(weights),
		}
		d.CertAsked = w.rng.Float64() < plan.CertCoverage
		if w.rng.Float64() < w.Cfg.EarlyRemovedRate {
			d.Lifetime = registrar.SampleEarlyRemovedLifetime(w.rng)
			d.Reason = registrar.SampleRemovalReason(w.rng)
			d.Malicious = d.Reason.Malicious()
		}
		d.Registrar = registrar.Pick(w.rng)
		w.scheduleDomain(d, false)
	}

	// Fast-deleted (transient-candidate) registrations.
	nFast := int(float64(plan.TransientTotal()) * scale * w.Cfg.FastDeletedMultiplier)
	for i := 0; i < nFast; i++ {
		d := &Domain{
			Name:       w.domainName(plan.TLD),
			TLD:        plan.TLD,
			Created:    w.sampleCreation(monthlyWeights(plan.Transients)),
			Lifetime:   registrar.SampleTransientLifetime(w.rng),
			FastDelete: true,
		}
		d.Reason = registrar.SampleRemovalReason(w.rng)
		d.Malicious = d.Reason.Malicious()
		d.CertAsked = w.rng.Float64() < w.Cfg.TransientCertRate
		d.Registrar = registrar.PickTransient(w.rng)
		w.scheduleDomain(d, true)
	}

	// Ghost issuances: stale-DV-token certificates for long-gone domains.
	nGhost := int(float64(plan.TransientTotal()) * scale * w.Cfg.GhostRate)
	for i := 0; i < nGhost; i++ {
		w.scheduleGhost(plan.TLD, weights)
	}
}

// scheduleDomain wires one registration's full lifecycle onto the clock.
func (w *World) scheduleDomain(d *Domain, transient bool) {
	w.Domains[d.Name] = d
	// Mail infrastructure adoption differs between ordinary and
	// fast-deleted registrations (future-work §5 measurements).
	if transient {
		d.HasMX = w.rng.Float64() < 0.22
		d.HasSPF = w.rng.Float64() < 0.30
	} else {
		d.HasMX = w.rng.Float64() < 0.55
		d.HasSPF = w.rng.Float64() < 0.50
	}
	dnsProv := hosting.PickDNS(w.rng, transient)
	webProv := hosting.PickWeb(w.rng, transient)
	d.DNSHost = dnsProv.Name
	d.WebHost = webProv.Name
	ns := dnsProv.NSNames(w.rng.Intn(13))
	web := webProv.WebAddr(w.rng.Uint64())
	caIdx := w.rng.Intn(len(w.CAs))
	certDelay := w.sampleCertDelay(transient)
	nsChange := w.rng.Float64() < w.Cfg.NSChangeRate
	nsChangeAt := time.Duration(w.rng.Int63n(int64(24 * time.Hour)))
	nodRate := w.Cfg.NODRateNoCert
	if d.CertAsked {
		nodRate = w.Cfg.NODRateWithCert
	}
	if d.Malicious {
		flags := w.Blocklists.ConsiderAbusive(w.rng, d.Name, d.Created)
		// A slice of *flagged* abusive domains are re-registrations of
		// previously listed names (§4.3: ≈3 % of flagged NRDs were on a
		// blocklist before their registration date).
		if flags > 0 && w.rng.Float64() < w.Cfg.ReRegistrationRate {
			w.Blocklists.SeedFlag("DBL", d.Name, d.Created.Add(-time.Duration(30+w.rng.Intn(170))*24*time.Hour))
			w.DZDB.Observe(d.Name, d.Created.Add(-time.Duration(200+w.rng.Intn(160))*24*time.Hour))
		}
	}
	w.NOD.ObserveWithRate(w.rng, d.Name, d.Created, d.Lifetime, nodRate)

	reg := w.Registries[d.TLD]
	w.Clock.At(d.Created, func() {
		if _, err := reg.Register(d.Name, d.Registrar, ns, web); err != nil {
			return // rare name collision with an active registration
		}
		if d.CertAsked {
			w.requestCert(w.CAs[caIdx], d.Name, d.Name, certDelay, 0)
		}
		if nsChange && (d.Lifetime == 0 || nsChangeAt < d.Lifetime) {
			alt := hosting.PickDNS(w.rng, transient)
			altNS := alt.NSNames(w.rng.Intn(13))
			w.Clock.After(nsChangeAt, func() { _ = reg.UpdateNS(d.Name, altNS) })
		}
		if d.Lifetime > 0 {
			w.Clock.After(d.Lifetime, func() { _ = reg.Delete(d.Name) })
		}
	})
}

// sampleCertDelay draws the registrant's setup delay between registration
// and the first certificate request. Ordinary registrants take tens of
// minutes to hours (Figure 1: ≈30 % of domains are certified within
// 15 min, ≈50 % within 45 min, with a <2 % multi-day tail from delayed
// setups); abusive fast-deleted registrations move quicker.
func (w *World) sampleCertDelay(transient bool) time.Duration {
	if transient {
		return time.Duration(w.rng.ExpFloat64() * float64(25*time.Minute))
	}
	x := w.rng.Float64()
	switch {
	case x < 0.02:
		// Long tail: setup finished days later.
		return 24*time.Hour + time.Duration(w.rng.Int63n(int64(36*time.Hour)))
	case x < 0.22:
		// Automated hosting onboarding requests certificates at once.
		return time.Duration(w.rng.ExpFloat64() * float64(6*time.Minute))
	default:
		return time.Duration(w.rng.ExpFloat64() * float64(70*time.Minute))
	}
}

// requestCert retries issuance while the domain has not yet entered its
// TLD zone — modelling ACME clients retrying validation until the
// registry's next zone rebuild publishes the delegation. This retry chain
// is what couples Figure 1's detection delay to zone-update cadence.
func (w *World) requestCert(issuer *ca.CA, regDomain, cn string, initialDelay time.Duration, attempt int) {
	w.Clock.After(initialDelay, func() {
		issuer.Issue(regDomain, cn, nil, func(_ ct.Entry, err error) {
			if err == nil || attempt >= 8 {
				return
			}
			retry := time.Duration(1+w.rng.Intn(4)) * time.Minute
			w.requestCert(issuer, regDomain, cn, retry, attempt+1)
		})
	})
}

// scheduleGhost plants a past domain with a still-valid DV token, then
// issues a certificate for it during the window (no registration exists).
func (w *World) scheduleGhost(tld string, weights [3]float64) {
	name := w.domainName(tld)
	d := &Domain{Name: name, TLD: tld, Ghost: true, Created: w.sampleCreation(weights)}
	w.Ghosts = append(w.Ghosts, d)
	issuer := w.CAs[w.rng.Intn(len(w.CAs))]
	validatedAgo := time.Duration(30+w.rng.Intn(350)) * 24 * time.Hour
	issuer.SeedToken(name, d.Created.Add(-validatedAgo))
	// ≈97 % of ghost domains existed in historical zone data (§4.2).
	if w.rng.Float64() < 0.97 {
		w.DZDB.Observe(name, d.Created.Add(-validatedAgo))
	}
	w.Clock.At(d.Created, func() {
		issuer.Issue(name, name, nil, nil) // token reuse: no live validation
	})
}

// scheduleCCTLD generates the ccTLD population. Unlike the gTLD plans,
// counts here follow the paper's absolute numbers (714 fast-deleted .nl
// domains over 3 months) scaled only by window length: the ccTLD
// experiment is about a small ground-truth ledger, and scaling it by the
// global Scale factor would leave no sample at reproduction scales.
func (w *World) scheduleCCTLD(plan CCTLDPlan, weeks int) {
	scale := float64(weeks*7) / 91.0
	weights := [3]float64{1. / 3, 1. / 3, 1. / 3}

	nNormal := int(float64(plan.Normal) * scale)
	for i := 0; i < nNormal; i++ {
		d := &Domain{
			Name:      w.domainName(plan.TLD),
			TLD:       plan.TLD,
			Created:   w.sampleCreation(weights),
			Registrar: registrar.Pick(w.rng),
		}
		d.CertAsked = w.rng.Float64() < 0.45
		w.scheduleDomain(d, false)
	}
	// ccTLD fast-deleted domains: lifetimes uniform in (0, 24 h) — the
	// .nl ledger shows roughly half were still caught by a daily
	// snapshot (334 of 714 were not).
	nFast := int(float64(plan.FastDeleted) * scale)
	for i := 0; i < nFast; i++ {
		d := &Domain{
			Name:       w.domainName(plan.TLD),
			TLD:        plan.TLD,
			Created:    w.sampleCreation(weights),
			Lifetime:   time.Duration(1 + w.rng.Int63n(int64(24*time.Hour-2))),
			FastDelete: true,
		}
		d.Reason = registrar.SampleRemovalReason(w.rng)
		d.Malicious = d.Reason.Malicious()
		d.CertAsked = w.rng.Float64() < plan.TransientCertRate
		d.Registrar = registrar.PickTransient(w.rng)
		w.scheduleDomain(d, true)
	}
}

const nameAlphabet = "abcdefghijklmnopqrstuvwxyz0123456789"

// domainName generates a fresh random registrable name under tld.
func (w *World) domainName(tld string) string {
	for {
		b := make([]byte, 10)
		for i := range b {
			b[i] = nameAlphabet[w.rng.Intn(len(nameAlphabet))]
		}
		// LDH: avoid leading digit purely for aesthetics.
		name := fmt.Sprintf("%s.%s", b, tld)
		if _, exists := w.Domains[name]; !exists {
			return name
		}
	}
}

func hashString(s string) int64 {
	var h int64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= int64(s[i])
		h *= 1099511628211
	}
	return h
}
