// Package worldsim generates the ground-truth DNS world the DarkDNS
// pipeline observes: TLD registries with live zones and daily snapshots,
// registrars registering and taking down domains, CAs logging
// precertificates to CT, a passive-DNS NOD feed, public blocklists, and
// historical zone data. All stochastic choices derive from a single seed,
// so a run is reproducible bit-for-bit.
//
// Worlds are built in two phases. The compile phase lays every plan out
// as a pure Layout value — each TLD's registrations, ghosts and feed
// seedings drawn from its own subseed-derived RNG stream (layout.go) —
// and fans out across plans on a worker pool when Config.BuildWorkers is
// set. The commit phase (builder.go) installs layouts through a second
// engine at Config.CommitWorkers width: per-layout record installs land
// on the 64-way sharded DomainStore and substrate seedings
// (NOD/blocklist/DZDB/DV tokens) are commutative across the distinct
// names different layouts own, so they fan out too; only the ghost
// ledger and the clock-timeline installs (ScheduleBatch assigns event
// sequence numbers) stay serial in canonical (plan, chunk) order.
//
// Determinism contract (DESIGN.md §2, §8–§9): worlds — and the campaign
// reports computed from them — are byte-identical at any BuildWorkers
// and CommitWorkers width, alone or stacked with the ingest, RDAP
// dispatch and batched-clock engines.
package worldsim

import (
	"math/rand"
	"sync/atomic"
	"time"

	"darkdns/internal/blocklist"
	"darkdns/internal/ca"
	"darkdns/internal/certstream"
	"darkdns/internal/ct"
	"darkdns/internal/czds"
	"darkdns/internal/dnsname"
	"darkdns/internal/dzdb"
	"darkdns/internal/noddfeed"
	"darkdns/internal/rdap"
	"darkdns/internal/registrar"
	"darkdns/internal/registry"
	"darkdns/internal/simclock"
)

// Config parameterizes a world.
type Config struct {
	Seed  int64
	Start time.Time  // window start (paper: 2023-11-01)
	Weeks int        // window length in weeks (paper: ~13)
	Scale float64    // fraction of paper volumes to generate
	Plans []TLDPlan  // nil → PaperPlans(); plans must have distinct TLDs
	CCTLD *CCTLDPlan // nil → PaperCCTLD()
	// BuildWorkers selects the builder's compile fan-out: 0 compiles
	// per-TLD layouts serially on the caller, ≥1 compiles them on a
	// worker pool this wide. Every width builds a byte-identical world —
	// each plan draws from its own seed-derived RNG stream.
	BuildWorkers int
	// CommitWorkers selects the commit engine's fan-out: 0 installs
	// compiled layouts serially on the caller, ≥1 installs them on a
	// worker pool this wide — record installs stripe across the sharded
	// DomainStore and substrate seedings commute across the distinct
	// names layouts own, while the ghost ledger and clock timelines stay
	// serial in canonical order. Every width builds a byte-identical
	// world.
	CommitWorkers int
	// FastDeletedMultiplier converts Table 2 detected-transient targets
	// into ground-truth fast-deleted registrations. Detected transients
	// are the subset that obtain a certificate before dying AND miss
	// every daily snapshot; the multiplier compensates for both losses.
	FastDeletedMultiplier float64
	// TransientCertRate is the probability a gTLD fast-deleted domain
	// requests a certificate.
	TransientCertRate float64
	// GhostRate scales stale-DV-token issuances (certificates for
	// domains that no longer exist) relative to the Table 2 transient
	// target — the cause-iii RDAP failures of §4.2.
	GhostRate float64
	// EarlyRemovedRate is the fraction of long-lived NRDs deleted before
	// the window's end (paper: ≈10 %).
	EarlyRemovedRate float64
	// NSChangeRate is the fraction of NRDs that swap nameserver
	// infrastructure within their first 24 h (paper §4.1: 2.5 %).
	NSChangeRate float64
	// ReRegistrationRate is the fraction of abusive domains that are
	// re-registrations of previously flagged names (§4.3: ≈3 % of
	// flagged NRDs were listed before their registration date).
	ReRegistrationRate float64
	// NODRateWithCert / NODRateNoCert are the passive-DNS detection
	// probabilities conditioned on certificate issuance (§4.4 overlap).
	NODRateWithCert float64
	NODRateNoCert   float64
	// SnapshotPath, when set, names a persistent columnar world snapshot
	// (snapshot.go): a matching snapshot replaces the compile fan-out
	// with a decode that feeds the commit engine directly, and a miss
	// compiles then saves back to the path. Like the worker widths, the
	// path changes how a world is built, never what it is.
	SnapshotPath string
}

// withDefaults normalizes the zero-value knobs the same way New always
// has. Factored out so snapshot keying (shapeHash) and the standalone
// compiler (CompileLayoutSet) see the identical effective config.
func (cfg Config) withDefaults() Config {
	if cfg.Scale <= 0 {
		cfg.Scale = 0.001
	}
	if cfg.Plans == nil {
		cfg.Plans = PaperPlans()
	}
	if cfg.CCTLD == nil {
		p := PaperCCTLD()
		cfg.CCTLD = &p
	}
	if cfg.Weeks <= 0 {
		cfg.Weeks = 13
	}
	return cfg
}

// DefaultConfig returns the calibrated paper-shape configuration.
func DefaultConfig(seed int64, scale float64) Config {
	return Config{
		Seed:                  seed,
		Start:                 time.Date(2023, 11, 1, 0, 0, 0, 0, time.UTC),
		Weeks:                 13,
		Scale:                 scale,
		FastDeletedMultiplier: 2.0,
		TransientCertRate:     0.75,
		GhostRate:             0.55,
		EarlyRemovedRate:      0.10,
		NSChangeRate:          0.025,
		ReRegistrationRate:    0.03,
		NODRateWithCert:       0.62,
		NODRateNoCert:         0.32,
	}
}

// Domain is the ground-truth record of one generated registration.
type Domain struct {
	Name       string
	TLD        string
	Registrar  string
	Created    time.Time
	Lifetime   time.Duration // 0 = survives the window
	FastDelete bool          // deleted within 24 h (transient candidate)
	Malicious  bool
	Reason     registrar.RemovalReason
	CertAsked  bool
	DNSHost    string
	WebHost    string
	HasMX      bool // publishes MX records
	HasSPF     bool // publishes an SPF TXT policy
	Ghost      bool // CT entry without a live registration
}

// World owns every substrate plus the ground truth that produced them.
type World struct {
	Cfg   Config
	Clock *simclock.Sim

	Registries map[string]*registry.Registry
	CZDS       *czds.Service
	// CCZones is the researcher-access zone collection for the ccTLD
	// (the paper's team had .nl zone data via OpenINTEL even though .nl
	// is not in CZDS).
	CCZones *czds.Service
	DZDB    *dzdb.DB
	// Logs are the CT logs CAs submit to (multiple logs, as in the real
	// ecosystem; the certstream hub merges them and the pipeline
	// deduplicates by domain). Log is the first, kept for convenience.
	Logs       []*ct.Log
	Log        *ct.Log
	Hub        *certstream.Hub
	CAs        []*ca.CA
	Blocklists *blocklist.Aggregator
	NOD        *noddfeed.Feed
	RDAP       *rdap.Mux

	// Domains is the ground truth, keyed by domain name: a 64-way
	// sharded store (Get/Range/Len) the parallel commit engine installs
	// into concurrently.
	Domains *DomainStore
	// Ghosts are CT-only issuances for long-dead domains.
	Ghosts []*Domain

	windowEnd time.Time
	// dupNames counts commit-phase name collisions between layouts. Zero
	// for any config with distinct plan TLDs (the determinism tests'
	// world-wide uniqueness invariant). Atomic: layouts install
	// concurrently under the commit engine.
	dupNames atomic.Int64
}

// Window returns the observation window [start, end).
func (w *World) Window() (time.Time, time.Time) { return w.Cfg.Start, w.windowEnd }

// caNames are the issuing CAs the simulator distributes issuance across
// (the paper names GlobalSign, Sectigo and Cloudflare as the CAs it
// contacted about stale-token issuance; LetsEncrypt dominates volume).
var caNames = []string{"LetsEncrypt", "GlobalSign", "Sectigo", "CloudflareCA"}

// New builds a world and schedules every ground-truth event on its clock.
// Call Run (or step the clock manually) to execute the timeline.
func New(cfg Config) *World {
	cfg = cfg.withDefaults()
	w := &World{
		Cfg:        cfg,
		Clock:      simclock.NewSim(cfg.Start),
		Registries: make(map[string]*registry.Registry),
		CZDS:       czds.New(),
		DZDB:       dzdb.New(),
		Hub:        certstream.NewHub(),
		Blocklists: blocklist.NewAggregator(nil),
		RDAP:       rdap.NewMux(),
	}
	w.windowEnd = cfg.Start.Add(time.Duration(cfg.Weeks) * 7 * 24 * time.Hour)
	w.NOD = noddfeed.New(noddfeed.DefaultConfig())

	w.Logs = []*ct.Log{ct.NewLog("argon-sim", nil), ct.NewLog("xenon-sim", nil)}
	w.Log = w.Logs[0]
	for _, l := range w.Logs {
		w.Hub.Attach(l, w.Clock.Now)
	}

	// Registries: one per plan plus the ccTLD.
	tlds := make([]string, 0, len(cfg.Plans)+1)
	for _, p := range cfg.Plans {
		tlds = append(tlds, p.TLD)
	}
	tlds = append(tlds, cfg.CCTLD.TLD)
	w.CCZones = czds.New()
	for _, tld := range tlds {
		rcfg := registry.DefaultConfig(tld)
		rcfg.SnapshotDelay = snapshotDelay
		reg := registry.New(rcfg, w.Clock, rand.New(rand.NewSource(subseed(cfg.Seed, "registry/"+tld))))
		w.Registries[tld] = reg
		w.CZDS.Collect(reg)
		if !reg.InCZDS() {
			reg.Subscribe(w.CCZones.Ingest)
		}
		reg.Subscribe(w.DZDB.IngestSnapshot)
		w.RDAP.Handle(tld, rdapBackend{reg})
	}

	// CAs validate against the union of live zones.
	resolver := ca.ResolverFunc(w.resolves)
	for i, name := range caNames {
		w.CAs = append(w.CAs, ca.New(ca.Config{Name: name}, w.Clock,
			rand.New(rand.NewSource(subseed(cfg.Seed, "ca/"+name))), resolver, w.Logs[i%len(w.Logs)]))
	}

	// Two-phase build: compile pure per-plan layouts (in parallel when
	// BuildWorkers is set) — or decode them from a snapshot when
	// Config.SnapshotPath hits — then commit them through the parallel
	// commit engine (CommitWorkers wide; the order-sensitive remainder
	// stays serial in canonical plan order).
	env := &buildEnv{
		cfg:    &w.Cfg,
		numCAs: len(w.CAs),
		lists:  w.Blocklists.Models(),
		nodCfg: w.NOD.Config(),
	}
	w.commit(layoutsFor(env))
	return w
}

// Stop halts registry tickers (for tests that abandon a world early).
func (w *World) Stop() {
	for _, reg := range w.Registries {
		reg.Stop()
	}
}

// Run advances the clock through the full window plus a drain margin for
// late snapshots and measurement windows.
func (w *World) Run() {
	w.Clock.RunUntil(w.drainDeadline())
	w.Stop()
}

// RunBatched advances like Run but drains the clock in batch-firing
// mode: events sharing a timestamp pop as one group and runs of
// parallel-marked events (RDAP due-timers, under a dispatch-enabled
// pipeline) fire through a pool of the given width. Campaign results are
// byte-identical to Run for any width — the world's own ground-truth
// events stay serial, and parallel consumers are commutative by
// contract.
func (w *World) RunBatched(workers int) {
	w.Clock.RunUntilBatched(w.drainDeadline(), workers)
	w.Stop()
}

// RunLookahead advances like Run but drains the clock in lookahead
// mode: effect-disjoint tagged events from up to `window` distinct
// future timestamps — domain lifecycles, RDAP due-timers, fleet probe
// rounds — fire together on a pool of the given width, while untagged
// events (zone rebuilds, CT issuance, snapshot publication) remain
// full ordering barriers. Campaign results are byte-identical to Run
// for any window and width (DESIGN.md §12).
func (w *World) RunLookahead(window, workers int) {
	w.Clock.RunUntilLookahead(w.drainDeadline(), window, workers)
	w.Stop()
}

// drainDeadline is the window end plus slack for late snapshots and the
// last measurement windows.
func (w *World) drainDeadline() time.Time {
	return w.windowEnd.Add(5 * 24 * time.Hour)
}

// resolves implements the CA's DV check against live zones.
func (w *World) resolves(name string) bool {
	tld := dnsname.TLD(dnsname.Canonical(name))
	reg := w.Registries[tld]
	if reg == nil {
		return false
	}
	_, ok := reg.Delegation(name)
	return ok
}

// rdapBackend adapts a registry to the rdap.Backend interface.
type rdapBackend struct{ reg *registry.Registry }

func (b rdapBackend) RDAPDomain(name string) (*rdap.Record, error) {
	return b.record(b.reg.RDAPLookup(name))
}

// RDAPDomainAt implements rdap.BackendAt: the lookup evaluated at the
// querying event's own instant, so tagged due-timers firing ahead of
// committed time see the same sync-delay cutoffs the serial drain would.
func (b rdapBackend) RDAPDomainAt(name string, now time.Time) (*rdap.Record, error) {
	return b.record(b.reg.RDAPLookupAt(name, now))
}

func (b rdapBackend) record(r *registry.Registration, err error) (*rdap.Record, error) {
	if err != nil {
		if err == registry.RDAPErrNotSynced {
			return nil, rdap.ErrNotSynced
		}
		return nil, rdap.ErrNotFound
	}
	return &rdap.Record{
		Domain: r.Domain, Registrar: r.Registrar, Registered: r.Created,
		Status: []string{"active"},
	}, nil
}

// snapshotDelay models CZDS publication lag: usually a couple of hours,
// occasionally days (the reason for the paper's ±3-day slack).
func snapshotDelay(rng *rand.Rand) time.Duration {
	if rng.Float64() < 0.05 {
		return time.Duration(24+rng.Intn(48)) * time.Hour
	}
	return time.Duration(1+rng.Intn(4)) * time.Hour
}
