package worldsim

import (
	"math/rand"
	"testing"
	"time"
)

func TestMonthlyWeightsZeroTotal(t *testing.T) {
	w := monthlyWeights([3]int{0, 0, 0})
	for i, got := range w {
		if got != 1./3 {
			t.Errorf("weights[%d] = %v, want 1/3", i, got)
		}
	}
	w = monthlyWeights([3]int{1, 1, 2})
	if w[0] != 0.25 || w[1] != 0.25 || w[2] != 0.5 {
		t.Errorf("weights = %v, want [0.25 0.25 0.5]", w)
	}
}

// testCompiler builds a planCompiler over a bare config, for exercising
// the pure sampling helpers directly.
func testCompiler(weeks int, seed int64) *planCompiler {
	cfg := DefaultConfig(seed, 0.001)
	cfg.Weeks = weeks
	env := &buildEnv{cfg: &cfg, numCAs: len(caNames)}
	return newPlanCompiler(env, "test", 0, 1, rand.New(rand.NewSource(seed)))
}

// TestSampleCreationClampsToWindow: when the window is shorter than a
// month boundary (weeks*7 < 90), the month's day range clamps to the
// window, and a fully out-of-window month (lo >= hi) falls back to the
// whole window.
func TestSampleCreationClampsToWindow(t *testing.T) {
	// Weeks=1: windowDays=7. Weights force month 2 → lo=60 >= hi=7, so
	// the fallback branch must sample the whole 7-day window.
	pc := testCompiler(1, 1)
	start := pc.env.cfg.Start
	end := start.Add(7 * 24 * time.Hour)
	for i := 0; i < 200; i++ {
		at := pc.sampleCreation([3]float64{0, 0, 1})
		if at.Before(start) || !at.Before(end) {
			t.Fatalf("month-2 creation %v outside 1-week window [%v, %v)", at, start, end)
		}
	}

	// Weeks=5: windowDays=35. Weights force month 1 → [30, 60) clamps to
	// [30, 35).
	pc = testCompiler(5, 2)
	start = pc.env.cfg.Start
	lo := start.Add(30 * 24 * time.Hour)
	hi := start.Add(35 * 24 * time.Hour)
	for i := 0; i < 200; i++ {
		at := pc.sampleCreation([3]float64{0, 1, 0})
		if at.Before(lo) || !at.Before(hi) {
			t.Fatalf("month-1 creation %v outside clamped range [%v, %v)", at, lo, hi)
		}
	}
}

// TestSampleCreationMonthWeights: weights actually steer the sampled
// month in a full-length window.
func TestSampleCreationMonthWeights(t *testing.T) {
	pc := testCompiler(13, 3)
	start := pc.env.cfg.Start
	for i := 0; i < 200; i++ {
		at := pc.sampleCreation([3]float64{1, 0, 0})
		if day := int(at.Sub(start) / (24 * time.Hour)); day >= 30 {
			t.Fatalf("month-0 creation landed on day %d", day)
		}
	}
}

func TestSubseedStreamsIndependent(t *testing.T) {
	seen := make(map[int64]string)
	for _, label := range []string{"plan/com", "plan/net", "plan/co", "plan/comm", "ccplan/nl", "registry/com", "ca/LetsEncrypt"} {
		s := subseed(42, label)
		if prev, dup := seen[s]; dup {
			t.Fatalf("subseed(42, %q) == subseed(42, %q)", label, prev)
		}
		seen[s] = label
		if s != subseed(42, label) {
			t.Fatalf("subseed(42, %q) not deterministic", label)
		}
		if s == subseed(43, label) {
			t.Fatalf("subseed(%q) ignores the world seed", label)
		}
	}
}

func TestRetryDelayRangeAndDeterminism(t *testing.T) {
	for attempt := 0; attempt < maxCertAttempts; attempt++ {
		d := retryDelay(7, attempt)
		if d != retryDelay(7, attempt) {
			t.Fatalf("retryDelay(7, %d) not deterministic", attempt)
		}
		if d < time.Minute || d > 4*time.Minute {
			t.Fatalf("retryDelay(7, %d) = %v outside [1m, 4m]", attempt, d)
		}
	}
}

// TestCompilePlanPure: compiling the same plan chunk twice from the same
// seed must yield identical layouts, and a compile must not touch
// anything outside its own Layout (exercised indirectly: two compiles of
// different plans share the env).
func TestCompilePlanPure(t *testing.T) {
	cfg := DefaultConfig(9, 0.002)
	cfg.Weeks = 2
	env := &buildEnv{cfg: &cfg, numCAs: len(caNames)}
	plan := PaperPlans()[0]
	chunks := planChunks(&cfg, plan)
	compile := func() *Layout {
		return compilePlanChunk(env, plan, 0, chunks,
			rand.New(rand.NewSource(subseed(cfg.Seed, "plan/"+plan.TLD+"/0"))))
	}
	a, b := compile(), compile()
	if len(a.domains) == 0 || len(a.domains) != len(b.domains) || len(a.ghosts) != len(b.ghosts) {
		t.Fatalf("layout sizes diverge: %d/%d vs %d/%d",
			len(a.domains), len(a.ghosts), len(b.domains), len(b.ghosts))
	}
	for i := range a.domains {
		if *a.domains[i].d != *b.domains[i].d {
			t.Fatalf("domain %d diverges: %+v vs %+v", i, *a.domains[i].d, *b.domains[i].d)
		}
		if a.domains[i].retrySeed != b.domains[i].retrySeed ||
			a.domains[i].certDelay != b.domains[i].certDelay {
			t.Fatalf("compiled lifecycle %d diverges", i)
		}
	}
}
