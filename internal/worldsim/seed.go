package worldsim

import "time"

// subseed derives a child RNG seed from the world seed and a label. Every
// independent stochastic stream in a world — one per TLD plan, registry
// and CA — draws from its own subseed-derived rand.Rand, which is what
// lets the compile phase lay plans out in parallel without sharing RNG
// state. (It replaces the former ad-hoc derivations:
// Seed^len(tld)^hashString(tld) for registries, Seed+i*7919 for CAs.)
// The label is folded in FNV-1a style and the result finished with the
// splitmix64 avalanche, so labels differing in a single byte yield
// uncorrelated streams.
func subseed(seed int64, label string) int64 {
	h := uint64(seed) ^ 0x9e3779b97f4a7c15
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return int64(mix64(h))
}

// mix64 is the splitmix64 finalizer.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// retryDelay derives the attempt-th ACME retry backoff from a
// registration's pre-drawn retry seed: uniform over 1–4 minutes, the same
// distribution the serial builder drew with rng.Intn(4), but requiring
// only one word of compiled state per certificate request instead of a
// buffered draw per attempt.
func retryDelay(seed uint64, attempt int) time.Duration {
	h := mix64(seed + uint64(attempt)*0x9e3779b97f4a7c15)
	return time.Duration(1+h%4) * time.Minute
}
