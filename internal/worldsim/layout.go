// Compile phase of the two-phase world builder.
//
// Each TLD plan (and the ccTLD plan) compiles into Layouts through pure
// functions of (Config, plan, child RNG): domain records, a name set for
// collision checks, and buffered timeline entries — registrations, ghost
// issuances, NOD/blocklist/DZDB seedings — instead of direct Clock.At /
// NOD / Blocklists / DZDB calls. Because a compile unit's RNG is derived
// from the world seed and the unit's label (subseed) and no shared state
// is touched, layouts can compile concurrently on a worker pool and are
// byte-identical at any width; the commit phase (builder.go) installs
// them serially in canonical plan order.
//
// Large plans split into up to maxPlanChunks equal chunks so a single
// dominant TLD (com carries half the paper's volume) cannot serialize
// the fan-out. Name uniqueness stays structural: names embed their TLD
// (plans own distinct TLDs), and within a multi-chunk plan each chunk
// stamps its own discriminator character into the first name position,
// partitioning the plan's name space with no collision checks across
// chunks.
package worldsim

import (
	"math/rand"
	"net/netip"
	"time"

	"darkdns/internal/blocklist"
	"darkdns/internal/hosting"
	"darkdns/internal/noddfeed"
	"darkdns/internal/registrar"
)

// maxCertAttempts bounds a registration's ACME retry chain: the initial
// certificate request plus up to this many zone-propagation retries.
const maxCertAttempts = 8

// compileChunkTarget is the aimed-for registrations-per-chunk of the
// compile fan-out: small enough that a paper-shape bench world spreads a
// dominant plan over every worker, large enough that per-chunk overhead
// (RNG setup, layout bookkeeping) stays negligible.
const compileChunkTarget = 4096

// maxPlanChunks caps a plan's chunk count at the name-discriminator
// capacity: chunk i of a multi-chunk plan owns every name starting with
// nameAlphabet[i].
const maxPlanChunks = len(nameAlphabet)

// chunksFor sizes a plan's compile fan-out from its total registration
// count — a pure function of the plan, so the unit list is identical at
// any worker-pool width.
func chunksFor(total int) int {
	k := (total + compileChunkTarget - 1) / compileChunkTarget
	if k < 1 {
		k = 1
	}
	if k > maxPlanChunks {
		k = maxPlanChunks
	}
	return k
}

// share splits n as evenly as possible across k chunks, handing the
// remainder to the first n%k of them.
func share(n, k, i int) int {
	s := n / k
	if i < n%k {
		s++
	}
	return s
}

// regLayout is one registration's compiled lifecycle: every stochastic
// choice pre-drawn, ready for the commit phase to install as clock events
// that never touch an RNG.
type regLayout struct {
	d          *Domain
	ns         []string
	web        netip.Addr
	caIdx      int
	certDelay  time.Duration
	retrySeed  uint64 // derives per-attempt ACME backoffs (retryDelay)
	nsChange   bool
	nsChangeAt time.Duration
	altNS      []string // drawn only when nsChange
}

// ghostLayout is one compiled stale-DV-token issuance (§4.2 cause iii).
type ghostLayout struct {
	d       *Domain
	caIdx   int
	tokenAt time.Time // when the dead domain's DV evidence was obtained
	inDZDB  bool      // ≈97 % existed in historical zone data
}

// feedSeed is one buffered substrate observation (NOD or DZDB).
type feedSeed struct {
	domain string
	at     time.Time
}

// Layout is one plan's compiled output. It holds no references to world
// substrates; commit translates it into Domains-map inserts, substrate
// seedings and one ScheduleBatch call.
type Layout struct {
	tld     string
	domains []*regLayout
	ghosts  []*ghostLayout
	nod     []feedSeed
	flags   []blocklist.Flag
	dzdb    []feedSeed
	names   map[string]struct{}
}

// buildEnv is the immutable context every plan compiles against: the
// world config plus the substrate models needed for pure sampling.
type buildEnv struct {
	cfg    *Config
	numCAs int
	lists  []blocklist.List
	nodCfg noddfeed.Config
}

// planCompiler compiles one chunk of one plan with its own seed-derived
// RNG stream.
type planCompiler struct {
	env *buildEnv
	rng *rand.Rand
	out *Layout
	// namePrefix, when non-zero, is this chunk's discriminator: every
	// generated name starts with it, partitioning the plan's name space
	// across chunks.
	namePrefix byte
}

func newPlanCompiler(env *buildEnv, tld string, chunk, chunks int, rng *rand.Rand) *planCompiler {
	pc := &planCompiler{
		env: env,
		rng: rng,
		out: &Layout{tld: tld, names: make(map[string]struct{})},
	}
	if chunks > 1 {
		pc.namePrefix = nameAlphabet[chunk]
	}
	return pc
}

// planCounts derives a gTLD plan's ground-truth population sizes.
func planCounts(cfg *Config, plan TLDPlan) (nNormal, nFast, nGhost int) {
	scale := cfg.Scale * float64(cfg.Weeks*7) / 91.0
	nNormal = int(float64(plan.ZoneNRDs) * scale)
	nFast = int(float64(plan.TransientTotal()) * scale * cfg.FastDeletedMultiplier)
	nGhost = int(float64(plan.TransientTotal()) * scale * cfg.GhostRate)
	return
}

// planChunks sizes one gTLD plan's compile fan-out.
func planChunks(cfg *Config, plan TLDPlan) int {
	nNormal, nFast, nGhost := planCounts(cfg, plan)
	return chunksFor(nNormal + nFast + nGhost)
}

// compilePlanChunk lays out chunk chunk-of-chunks of one gTLD plan (the
// former scheduleTLD, split across equal chunks).
func compilePlanChunk(env *buildEnv, plan TLDPlan, chunk, chunks int, rng *rand.Rand) *Layout {
	pc := newPlanCompiler(env, plan.TLD, chunk, chunks, rng)
	weights := monthlyWeights(plan.MonthlyCT)
	nNormal, nFast, nGhost := planCounts(env.cfg, plan)

	// Long-lived + early-removed registrations. Ground truth total is
	// the zone-NRD volume; CT coverage decides who requests certs.
	for i, n := 0, share(nNormal, chunks, chunk); i < n; i++ {
		d := &Domain{
			Name:    pc.domainName(plan.TLD),
			TLD:     plan.TLD,
			Created: pc.sampleCreation(weights),
		}
		d.CertAsked = pc.rng.Float64() < plan.CertCoverage
		if pc.rng.Float64() < env.cfg.EarlyRemovedRate {
			d.Lifetime = registrar.SampleEarlyRemovedLifetime(pc.rng)
			d.Reason = registrar.SampleRemovalReason(pc.rng)
			d.Malicious = d.Reason.Malicious()
		}
		d.Registrar = registrar.Pick(pc.rng)
		pc.compileDomain(d, false)
	}

	// Fast-deleted (transient-candidate) registrations.
	for i, n := 0, share(nFast, chunks, chunk); i < n; i++ {
		d := &Domain{
			Name:       pc.domainName(plan.TLD),
			TLD:        plan.TLD,
			Created:    pc.sampleCreation(monthlyWeights(plan.Transients)),
			Lifetime:   registrar.SampleTransientLifetime(pc.rng),
			FastDelete: true,
		}
		d.Reason = registrar.SampleRemovalReason(pc.rng)
		d.Malicious = d.Reason.Malicious()
		d.CertAsked = pc.rng.Float64() < env.cfg.TransientCertRate
		d.Registrar = registrar.PickTransient(pc.rng)
		pc.compileDomain(d, true)
	}

	// Ghost issuances: stale-DV-token certificates for long-gone domains.
	for i, n := 0, share(nGhost, chunks, chunk); i < n; i++ {
		pc.compileGhost(plan.TLD, weights)
	}
	return pc.out
}

// ccCounts derives the ccTLD plan's population sizes.
func ccCounts(cfg *Config, plan CCTLDPlan) (nNormal, nFast int) {
	scale := float64(cfg.Weeks*7) / 91.0
	return int(float64(plan.Normal) * scale), int(float64(plan.FastDeleted) * scale)
}

// ccChunks sizes the ccTLD plan's compile fan-out.
func ccChunks(cfg *Config, plan CCTLDPlan) int {
	nNormal, nFast := ccCounts(cfg, plan)
	return chunksFor(nNormal + nFast)
}

// compileCCTLDChunk lays out one chunk of the ccTLD population (the
// former scheduleCCTLD). Unlike the gTLD plans, counts here follow the
// paper's absolute numbers (714 fast-deleted .nl domains over 3 months)
// scaled only by window length: the ccTLD experiment is about a small
// ground-truth ledger, and scaling it by the global Scale factor would
// leave no sample at reproduction scales.
func compileCCTLDChunk(env *buildEnv, plan CCTLDPlan, chunk, chunks int, rng *rand.Rand) *Layout {
	pc := newPlanCompiler(env, plan.TLD, chunk, chunks, rng)
	weights := [3]float64{1. / 3, 1. / 3, 1. / 3}
	nNormal, nFast := ccCounts(env.cfg, plan)

	for i, n := 0, share(nNormal, chunks, chunk); i < n; i++ {
		d := &Domain{
			Name:      pc.domainName(plan.TLD),
			TLD:       plan.TLD,
			Created:   pc.sampleCreation(weights),
			Registrar: registrar.Pick(pc.rng),
		}
		d.CertAsked = pc.rng.Float64() < 0.45
		pc.compileDomain(d, false)
	}
	// ccTLD fast-deleted domains: lifetimes uniform in (0, 24 h) — the
	// .nl ledger shows roughly half were still caught by a daily
	// snapshot (334 of 714 were not).
	for i, n := 0, share(nFast, chunks, chunk); i < n; i++ {
		d := &Domain{
			Name:       pc.domainName(plan.TLD),
			TLD:        plan.TLD,
			Created:    pc.sampleCreation(weights),
			Lifetime:   time.Duration(1 + pc.rng.Int63n(int64(24*time.Hour-2))),
			FastDelete: true,
		}
		d.Reason = registrar.SampleRemovalReason(pc.rng)
		d.Malicious = d.Reason.Malicious()
		d.CertAsked = pc.rng.Float64() < plan.TransientCertRate
		d.Registrar = registrar.PickTransient(pc.rng)
		pc.compileDomain(d, true)
	}
	return pc.out
}

// compileDomain draws one registration's full lifecycle into the layout
// (the former scheduleDomain, minus every side effect). Draws that the
// serial builder deferred to clock callbacks — the post-change NS set,
// the ACME retry backoffs — are pre-drawn here so commit-phase events
// carry no RNG.
func (pc *planCompiler) compileDomain(d *Domain, transient bool) {
	cfg := pc.env.cfg
	rng := pc.rng
	// Mail infrastructure adoption differs between ordinary and
	// fast-deleted registrations (future-work §5 measurements).
	if transient {
		d.HasMX = rng.Float64() < 0.22
		d.HasSPF = rng.Float64() < 0.30
	} else {
		d.HasMX = rng.Float64() < 0.55
		d.HasSPF = rng.Float64() < 0.50
	}
	dnsProv := hosting.PickDNS(rng, transient)
	webProv := hosting.PickWeb(rng, transient)
	d.DNSHost = dnsProv.Name
	d.WebHost = webProv.Name
	r := &regLayout{
		d:         d,
		ns:        dnsProv.NSNames(rng.Intn(13)),
		web:       webProv.WebAddr(rng.Uint64()),
		caIdx:     rng.Intn(pc.env.numCAs),
		certDelay: pc.sampleCertDelay(transient),
		retrySeed: rng.Uint64(),
	}
	r.nsChange = rng.Float64() < cfg.NSChangeRate
	r.nsChangeAt = time.Duration(rng.Int63n(int64(24 * time.Hour)))
	if r.nsChange {
		alt := hosting.PickDNS(rng, transient)
		r.altNS = alt.NSNames(rng.Intn(13))
	}
	nodRate := cfg.NODRateNoCert
	if d.CertAsked {
		nodRate = cfg.NODRateWithCert
	}
	if d.Malicious {
		flags := blocklist.SampleAbusive(pc.env.lists, rng, d.Name, d.Created)
		pc.out.flags = append(pc.out.flags, flags...)
		// A slice of *flagged* abusive domains are re-registrations of
		// previously listed names (§4.3: ≈3 % of flagged NRDs were on a
		// blocklist before their registration date).
		if len(flags) > 0 && rng.Float64() < cfg.ReRegistrationRate {
			pc.out.flags = append(pc.out.flags, blocklist.Flag{
				Domain: d.Name, List: "DBL",
				At: d.Created.Add(-time.Duration(30+rng.Intn(170)) * 24 * time.Hour),
			})
			pc.out.dzdb = append(pc.out.dzdb, feedSeed{
				d.Name, d.Created.Add(-time.Duration(200+rng.Intn(160)) * 24 * time.Hour),
			})
		}
	}
	if at, ok := pc.env.nodCfg.Sample(rng, d.Created, d.Lifetime, nodRate); ok {
		pc.out.nod = append(pc.out.nod, feedSeed{d.Name, at})
	}
	pc.out.domains = append(pc.out.domains, r)
}

// compileGhost plants a past domain with a still-valid DV token, to be
// issued a certificate during the window with no registration existing.
func (pc *planCompiler) compileGhost(tld string, weights [3]float64) {
	name := pc.domainName(tld)
	d := &Domain{Name: name, TLD: tld, Ghost: true, Created: pc.sampleCreation(weights)}
	validatedAgo := time.Duration(30+pc.rng.Intn(350)) * 24 * time.Hour
	pc.out.ghosts = append(pc.out.ghosts, &ghostLayout{
		d:       d,
		caIdx:   pc.rng.Intn(pc.env.numCAs),
		tokenAt: d.Created.Add(-validatedAgo),
		// ≈97 % of ghost domains existed in historical zone data (§4.2).
		inDZDB: pc.rng.Float64() < 0.97,
	})
}

// monthlyWeights converts a plan's monthly CT counts into per-month
// weights over the simulated window (the window is weeks long; month i
// covers days [30i, 30(i+1))).
func monthlyWeights(m [3]int) [3]float64 {
	tot := float64(m[0] + m[1] + m[2])
	if tot == 0 {
		return [3]float64{1. / 3, 1. / 3, 1. / 3}
	}
	return [3]float64{float64(m[0]) / tot, float64(m[1]) / tot, float64(m[2]) / tot}
}

// sampleCreation picks a creation instant, weighting months per the plan.
func (pc *planCompiler) sampleCreation(weights [3]float64) time.Time {
	x := pc.rng.Float64()
	month := 0
	switch {
	case x < weights[0]:
		month = 0
	case x < weights[0]+weights[1]:
		month = 1
	default:
		month = 2
	}
	windowDays := pc.env.cfg.Weeks * 7
	lo := month * 30
	hi := (month + 1) * 30
	if hi > windowDays {
		hi = windowDays
	}
	if lo >= hi {
		lo, hi = 0, windowDays
	}
	day := lo + pc.rng.Intn(hi-lo)
	return pc.env.cfg.Start.Add(time.Duration(day)*24*time.Hour +
		time.Duration(pc.rng.Int63n(int64(24*time.Hour))))
}

// sampleCertDelay draws the registrant's setup delay between registration
// and the first certificate request. Ordinary registrants take tens of
// minutes to hours (Figure 1: ≈30 % of domains are certified within
// 15 min, ≈50 % within 45 min, with a <2 % multi-day tail from delayed
// setups); abusive fast-deleted registrations move quicker.
func (pc *planCompiler) sampleCertDelay(transient bool) time.Duration {
	if transient {
		return time.Duration(pc.rng.ExpFloat64() * float64(25*time.Minute))
	}
	x := pc.rng.Float64()
	switch {
	case x < 0.02:
		// Long tail: setup finished days later.
		return 24*time.Hour + time.Duration(pc.rng.Int63n(int64(36*time.Hour)))
	case x < 0.22:
		// Automated hosting onboarding requests certificates at once.
		return time.Duration(pc.rng.ExpFloat64() * float64(6*time.Minute))
	default:
		return time.Duration(pc.rng.ExpFloat64() * float64(70*time.Minute))
	}
}

const nameAlphabet = "abcdefghijklmnopqrstuvwxyz0123456789"

// domainName generates a fresh random 10-character registrable name
// under tld, checking collisions against this chunk's own name set.
// Names embed their TLD, plans own distinct TLDs, and within a
// multi-chunk plan the chunk's discriminator occupies the first
// character, so per-chunk uniqueness is world-wide uniqueness — probing
// a shared map (as the serial builder did) was both wasteful and the one
// cross-TLD data dependency. The set also covers ghost names, which the
// old global probe missed.
func (pc *planCompiler) domainName(tld string) string {
	for {
		b := make([]byte, 0, 11+len(tld))
		if pc.namePrefix != 0 {
			b = append(b, pc.namePrefix)
		}
		for len(b) < 10 {
			b = append(b, nameAlphabet[pc.rng.Intn(len(nameAlphabet))])
		}
		b = append(b, '.')
		b = append(b, tld...)
		name := string(b)
		if _, exists := pc.out.names[name]; !exists {
			pc.out.names[name] = struct{}{}
			return name
		}
	}
}
