package worldsim

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestDomainStoreBasics pins the store's accessor semantics: Get misses
// return nil, Len counts distinct registrations, Range visits every
// record exactly once, and ghost names are invisible to Get while still
// tripping duplicate detection.
func TestDomainStoreBasics(t *testing.T) {
	s := newDomainStore(8)
	if s.Get("absent.com") != nil {
		t.Fatal("Get on empty store returned a record")
	}
	d1 := &Domain{Name: "alpha.com"}
	if s.install(d1, 0) {
		t.Error("first install reported a duplicate")
	}
	if s.install(&Domain{Name: "alpha.com"}, 1) != true {
		t.Error("re-install of alpha.com not reported as duplicate")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d after duplicate install, want 1", s.Len())
	}
	if s.installGhost("ghost.com") {
		t.Error("fresh ghost reported as duplicate")
	}
	if s.Get("ghost.com") != nil {
		t.Error("ghost name visible through Get")
	}
	if !s.installGhost("alpha.com") {
		t.Error("ghost colliding with a registration not reported")
	}
	if !s.install(&Domain{Name: "ghost.com"}, 0) {
		t.Error("registration colliding with a ghost not reported")
	}
	seen := 0
	s.Range(func(d *Domain) { seen++ })
	if seen != s.Len() {
		t.Errorf("Range visited %d records, Len = %d", seen, s.Len())
	}
}

// TestDomainStoreDuplicateWinnerByRank: when two layouts install the
// same name (off-contract duplicate-TLD plans), the canonical-rank
// winner must be deterministic regardless of arrival order — the
// highest rank wins, matching the serial commit's last-writer.
func TestDomainStoreDuplicateWinnerByRank(t *testing.T) {
	hi := &Domain{Name: "clash.com", Registrar: "later-layout"}
	lo := &Domain{Name: "clash.com", Registrar: "earlier-layout"}

	s := newDomainStore(2)
	s.install(lo, 0)
	s.install(hi, 3)
	if got := s.Get("clash.com"); got != hi {
		t.Errorf("ascending arrival: winner %q, want later-layout", got.Registrar)
	}

	s = newDomainStore(2)
	s.install(hi, 3)
	s.install(lo, 0)
	if got := s.Get("clash.com"); got != hi {
		t.Errorf("descending arrival: winner %q, want later-layout", got.Registrar)
	}
}

// TestDomainStoreRaceHammer drives the sharded store the way the commit
// engine does — many goroutines installing disjoint name sets — while
// readers Get/Range/Len concurrently. Run under -race in CI; the
// assertions double as a linearizability smoke check (no lost installs,
// no phantom duplicates).
func TestDomainStoreRaceHammer(t *testing.T) {
	const writers, perWriter = 8, 400
	s := newDomainStore(writers * perWriter)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				name := fmt.Sprintf("w%d-%d.com", g, i)
				if s.install(&Domain{Name: name, Created: time.Unix(int64(i), 0)}, g) {
					t.Errorf("phantom duplicate for %s", name)
				}
				s.installGhost(fmt.Sprintf("g%d-%d.com", g, i))
			}
		}(g)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.Get(fmt.Sprintf("w%d-%d.com", r, r))
				s.Len()
				n := 0
				s.Range(func(*Domain) { n++ })
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	if got := s.Len(); got != writers*perWriter {
		t.Fatalf("Len = %d, want %d", got, writers*perWriter)
	}
	for g := 0; g < writers; g++ {
		for i := 0; i < perWriter; i++ {
			if s.Get(fmt.Sprintf("w%d-%d.com", g, i)) == nil {
				t.Fatalf("lost install w%d-%d.com", g, i)
			}
		}
	}
}

// TestDomainStoreDuplicatesExactUnderConcurrency: the commit engine's
// safety net (World.dupNames) must count exactly occurrences−1 per name
// at any interleaving — every install after a name's first observes it
// present. Hammer one name set from many goroutines and check the total.
func TestDomainStoreDuplicatesExactUnderConcurrency(t *testing.T) {
	const writers, names = 8, 100
	s := newDomainStore(names)
	dups := make([]int, writers)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < names; i++ {
				if s.install(&Domain{Name: fmt.Sprintf("dup-%d.com", i)}, g) {
					dups[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, n := range dups {
		total += n
	}
	if want := (writers - 1) * names; total != want {
		t.Fatalf("duplicate count %d, want exactly %d", total, want)
	}
	if s.Len() != names {
		t.Fatalf("Len = %d, want %d", s.Len(), names)
	}
}
