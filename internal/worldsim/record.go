package worldsim

import (
	"darkdns/internal/certstream"
)

// RecordedEvents builds a world from cfg, runs its full timeline, and
// returns every certstream event the hub delivered, in delivery order.
// The slice is a realistic replay corpus for the pipeline's batch and
// parallel ingest paths: the batch-equivalence tests (core and
// certstream) replay it into independently configured pipelines, and
// replay tools can feed it back through Hub.PublishBatch. The recording
// subscriber is attached before any scheduled certificate fires, so the
// corpus is complete and — like everything derived from a world — a
// pure function of cfg.
func RecordedEvents(cfg Config) []certstream.Event {
	w := New(cfg)
	var evs []certstream.Event
	cancel := w.Hub.Subscribe(func(ev certstream.Event) { evs = append(evs, ev) })
	w.Run()
	cancel()
	return evs
}
