package worldsim

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestSnapshotRoundTrip: a saved-then-loaded layout set must commit to a
// byte-identical world — same fingerprint (every Domain field plus the
// ghost ledger) and the same full event stream a run delivers.
func TestSnapshotRoundTrip(t *testing.T) {
	cfg := tinyConfig(41)
	ls := CompileLayoutSet(cfg)

	var buf bytes.Buffer
	if err := SaveSnapshot(&buf, ls); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Seed != ls.Seed || loaded.ConfigHash != ls.ConfigHash {
		t.Fatalf("header: got (%d,%x), want (%d,%x)", loaded.Seed, loaded.ConfigHash, ls.Seed, ls.ConfigHash)
	}
	if !loaded.Matches(cfg) {
		t.Fatal("loaded set does not match its own config")
	}
	if len(loaded.Layouts) != len(ls.Layouts) {
		t.Fatalf("layouts: got %d, want %d", len(loaded.Layouts), len(ls.Layouts))
	}
	for i, l := range ls.Layouts {
		got := loaded.Layouts[i]
		if got.tld != l.tld || len(got.domains) != len(l.domains) || len(got.ghosts) != len(l.ghosts) {
			t.Fatalf("layout %d: shape mismatch", i)
		}
		for j, r := range l.domains {
			gr := got.domains[j]
			if *gr.d != *r.d {
				t.Fatalf("layout %d domain %d: %+v vs %+v", i, j, *gr.d, *r.d)
			}
			if !reflect.DeepEqual(gr.ns, r.ns) || gr.web != r.web || gr.caIdx != r.caIdx ||
				gr.certDelay != r.certDelay || gr.retrySeed != r.retrySeed ||
				gr.nsChange != r.nsChange || gr.nsChangeAt != r.nsChangeAt ||
				!reflect.DeepEqual(gr.altNS, r.altNS) {
				t.Fatalf("layout %d domain %d: regLayout mismatch", i, j)
			}
		}
		if !reflect.DeepEqual(got.nod, l.nod) || !reflect.DeepEqual(got.flags, l.flags) ||
			!reflect.DeepEqual(got.dzdb, l.dzdb) {
			t.Fatalf("layout %d: feed seedings mismatch", i)
		}
	}
}

// TestSnapshotWorldByteIdentical: building via Config.SnapshotPath (cold
// save, then warm load) must produce the same world and event stream as
// building with no snapshot at all.
func TestSnapshotWorldByteIdentical(t *testing.T) {
	base := tinyConfig(42)
	wantFP := worldFingerprint(New(base))

	path := filepath.Join(t.TempDir(), "world.dsnap")
	cold := base
	cold.SnapshotPath = path
	loadsBefore := SnapshotLoadCount()
	coldFP := worldFingerprint(New(cold)) // miss: compiles, saves
	if SnapshotLoadCount() != loadsBefore {
		t.Fatal("cold build should not count as a snapshot load")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("cold build did not save snapshot: %v", err)
	}
	compilesBefore := CompileCount()
	warmFP := worldFingerprint(New(cold)) // hit: decode only
	if CompileCount() != compilesBefore {
		t.Fatal("warm build recompiled despite a matching snapshot")
	}
	if SnapshotLoadCount() != loadsBefore+1 {
		t.Fatal("warm build did not count as a snapshot load")
	}
	if coldFP != wantFP || warmFP != wantFP {
		t.Fatal("snapshot-path worlds differ from the plain build")
	}

	// Event-stream identity, not just static ground truth.
	want := RecordedEvents(base)
	got := RecordedEvents(cold)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("event streams differ: %d vs %d events", len(got), len(want))
	}
}

// TestSnapshotMismatchFallsBack: a snapshot saved for one (seed, shape)
// must not be used for another — the build silently recompiles.
func TestSnapshotMismatchFallsBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "world.dsnap")
	a := tinyConfig(1)
	if err := SaveSnapshotFile(path, CompileLayoutSet(a)); err != nil {
		t.Fatal(err)
	}

	b := tinyConfig(2) // different seed
	b.SnapshotPath = path
	loadsBefore := SnapshotLoadCount()
	got := worldFingerprint(New(b))
	if SnapshotLoadCount() != loadsBefore {
		t.Fatal("mismatched snapshot was loaded")
	}
	if want := worldFingerprint(New(tinyConfig(2))); got != want {
		t.Fatal("fallback world differs from plain build")
	}
	// The fallback saved seed-2's world over the stale file, so a rebuild
	// now hits.
	ls, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !ls.Matches(b) {
		t.Fatal("fallback build did not refresh the snapshot")
	}

	// Shape changes (not just seed) must also miss.
	c := tinyConfig(2)
	c.Weeks = 3
	if ls.Matches(c) {
		t.Fatal("snapshot matched a different world shape")
	}
}

// TestSnapshotCorruptInputs: truncated or corrupt snapshots error
// cleanly, and a corrupt file behind Config.SnapshotPath still builds.
func TestSnapshotCorruptInputs(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(7)
	if err := SaveSnapshot(&buf, CompileLayoutSet(cfg)); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	for _, cut := range []int{0, 3, len(snapMagic) + 2, len(full) / 2, len(full) - 2} {
		if _, err := LoadSnapshot(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("cut at %d: truncated snapshot loaded cleanly", cut)
		}
	}
	garbage := append([]byte(nil), full...)
	copy(garbage[len(snapMagic)+4:], []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	if _, err := LoadSnapshot(bytes.NewReader(garbage)); err == nil {
		t.Error("corrupt snapshot loaded cleanly")
	}

	path := filepath.Join(t.TempDir(), "bad.dsnap")
	if err := os.WriteFile(path, full[:len(full)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	cfg.SnapshotPath = path
	if got, want := worldFingerprint(New(cfg)), worldFingerprint(New(tinyConfig(7))); got != want {
		t.Fatal("build behind a corrupt snapshot differs from plain build")
	}
}

// TestSnapshotVersionGate: a bumped format version is a load error (and
// therefore a compile fallback), never a misparse.
func TestSnapshotVersionGate(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveSnapshot(&buf, CompileLayoutSet(tinyConfig(3))); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[len(snapMagic)] = snapVersion + 1 // version varint is one byte
	if _, err := LoadSnapshot(bytes.NewReader(b)); err == nil {
		t.Error("future-version snapshot loaded cleanly")
	}
}
