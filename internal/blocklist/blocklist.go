// Package blocklist simulates the ten public blocklists the paper polls
// daily (§4.3): DBL, PhishTank, Phishing Army, Cybercrime-tracker, the
// three Toulouse lists, DigitalSide, OpenPhish, VXVault, Ponmocup and
// Quidsup. Each list flags a share of abusive domains after a reporting
// latency; because transient domains die within hours while blocklist
// latencies run days, most transient flags land post-deletion — the
// paper's 94 % headline.
package blocklist

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

// List models one blocklist's detection behaviour.
type List struct {
	Name string
	// HitRate is the probability the list ever flags a given abusive
	// domain.
	HitRate float64
	// LatencyMean is the mean of the exponential delay between abuse
	// onset (registration) and the domain appearing on the list, on top
	// of LatencyFloor.
	LatencyMean time.Duration
	// LatencyFloor is the minimum reporting-and-verification delay.
	// Public lists effectively never flag within the first hours, which
	// is why transient domains are flagged almost exclusively after
	// deletion (§4.3).
	LatencyFloor time.Duration
}

// DefaultLists returns the paper's ten lists with coverage/latency models
// calibrated so that ≈6.6 % of abusive early-removed NRDs and ≈5 % of
// transient domains are flagged by at least one list.
func DefaultLists() []List {
	day := 24 * time.Hour
	floor := 14 * time.Hour
	return []List{
		{Name: "DBL", HitRate: 0.024, LatencyMean: 2 * day, LatencyFloor: floor},
		{Name: "PhishTank", HitRate: 0.0096, LatencyMean: 3 * day, LatencyFloor: floor},
		{Name: "PhishingArmy", HitRate: 0.0096, LatencyMean: 4 * day, LatencyFloor: floor},
		{Name: "CybercrimeTracker", HitRate: 0.0032, LatencyMean: 6 * day, LatencyFloor: floor},
		{Name: "ToulouseDDoS", HitRate: 0.0016, LatencyMean: 7 * day, LatencyFloor: floor},
		{Name: "ToulouseCrypto", HitRate: 0.0016, LatencyMean: 7 * day, LatencyFloor: floor},
		{Name: "ToulouseMalware", HitRate: 0.0032, LatencyMean: 6 * day, LatencyFloor: floor},
		{Name: "DigitalSide", HitRate: 0.004, LatencyMean: 5 * day, LatencyFloor: floor},
		{Name: "OpenPhish", HitRate: 0.008, LatencyMean: 3 * day, LatencyFloor: floor},
		{Name: "Vxvault", HitRate: 0.0024, LatencyMean: 8 * day, LatencyFloor: floor},
	}
}

// Flag is one listing event.
type Flag struct {
	Domain string
	List   string
	At     time.Time
}

// Aggregator accumulates listing events across all lists, supporting the
// paper's daily-poll analysis over an extended window (the study polls
// through 29 Apr 2024 to catch late insertions).
type Aggregator struct {
	lists []List

	mu    sync.Mutex
	flags map[string][]Flag // domain → events sorted by time
}

// NewAggregator creates an aggregator over lists (DefaultLists if nil).
func NewAggregator(lists []List) *Aggregator {
	if lists == nil {
		lists = DefaultLists()
	}
	return &Aggregator{lists: lists, flags: make(map[string][]Flag)}
}

// Lists returns the configured list names.
func (a *Aggregator) Lists() []string {
	out := make([]string, len(a.lists))
	for i, l := range a.lists {
		out[i] = l.Name
	}
	return out
}

// Models returns a copy of the configured list models.
func (a *Aggregator) Models() []List { return append([]List(nil), a.lists...) }

// SampleAbusive rolls each list's detection model for an abusive domain
// whose abuse began at abuseStart, returning the flag events that would
// be recorded. Pure given rng — the world builder's compile phase draws
// flags through it without touching an aggregator; SeedFlag is the
// commit half.
func SampleAbusive(lists []List, rng *rand.Rand, domain string, abuseStart time.Time) []Flag {
	var flags []Flag
	for _, l := range lists {
		if rng.Float64() >= l.HitRate {
			continue
		}
		delay := l.LatencyFloor + time.Duration(rng.ExpFloat64()*float64(l.LatencyMean))
		flags = append(flags, Flag{Domain: domain, List: l.Name, At: abuseStart.Add(delay)})
	}
	return flags
}

// ConsiderAbusive rolls each list's detection model for an abusive domain
// whose abuse began at abuseStart, recording flag events. It returns the
// number of lists that flagged the domain.
func (a *Aggregator) ConsiderAbusive(rng *rand.Rand, domain string, abuseStart time.Time) int {
	flags := SampleAbusive(a.lists, rng, domain, abuseStart)
	for _, f := range flags {
		a.SeedFlag(f.List, f.Domain, f.At)
	}
	return len(flags)
}

// SeedFlag records a listing event directly (used for pre-window history:
// the "flagged before registration" re-registration cases).
func (a *Aggregator) SeedFlag(list, domain string, at time.Time) {
	a.mu.Lock()
	defer a.mu.Unlock()
	evs := append(a.flags[domain], Flag{Domain: domain, List: list, At: at})
	sort.Slice(evs, func(i, j int) bool { return evs[i].At.Before(evs[j].At) })
	a.flags[domain] = evs
}

// FirstListed returns the earliest listing event for domain within the
// polling window ending at pollEnd (events after pollEnd are not yet
// visible to a daily poller).
func (a *Aggregator) FirstListed(domain string, pollEnd time.Time) (Flag, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, f := range a.flags[domain] {
		if !f.At.After(pollEnd) {
			return f, true
		}
	}
	return Flag{}, false
}

// Flags returns all events for domain (copies).
func (a *Aggregator) Flags(domain string) []Flag {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Flag(nil), a.flags[domain]...)
}

// FlaggedDomains returns every domain with at least one event before
// pollEnd.
func (a *Aggregator) FlaggedDomains(pollEnd time.Time) []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []string
	for d, evs := range a.flags {
		for _, f := range evs {
			if !f.At.After(pollEnd) {
				out = append(out, d)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// Timing classifies a domain's first flag relative to its lifecycle, the
// §4.3 taxonomy.
type Timing uint8

// Flag-timing classes.
const (
	NotFlagged Timing = iota
	BeforeRegistration
	WhileActive
	OnRegistrationDay
	AfterDeletion
)

// String names the timing class.
func (tm Timing) String() string {
	switch tm {
	case NotFlagged:
		return "not-flagged"
	case BeforeRegistration:
		return "before-registration"
	case WhileActive:
		return "while-active"
	case OnRegistrationDay:
		return "on-registration-day"
	case AfterDeletion:
		return "after-deletion"
	}
	return "unknown"
}

// Classify determines when the first flag fell relative to [created,
// deleted). A zero deleted means still active. sameDay groups the
// "flagged on their registration date" class the paper reports for
// transients.
func (a *Aggregator) Classify(domain string, created, deleted, pollEnd time.Time) Timing {
	f, ok := a.FirstListed(domain, pollEnd)
	if !ok {
		return NotFlagged
	}
	switch {
	case f.At.Before(created):
		return BeforeRegistration
	case !deleted.IsZero() && !f.At.Before(deleted):
		return AfterDeletion
	case f.At.Year() == created.Year() && f.At.YearDay() == created.YearDay():
		return OnRegistrationDay
	default:
		return WhileActive
	}
}
