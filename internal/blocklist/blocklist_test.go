package blocklist

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

var t0 = time.Date(2023, 11, 1, 0, 0, 0, 0, time.UTC)

func TestDefaultListsShape(t *testing.T) {
	lists := DefaultLists()
	if len(lists) != 10 {
		t.Fatalf("lists = %d, want 10 (paper §4.3)", len(lists))
	}
	sum := 0.0
	for _, l := range lists {
		if l.HitRate <= 0 || l.HitRate > 0.1 {
			t.Errorf("%s hit rate %.3f implausible", l.Name, l.HitRate)
		}
		if l.LatencyMean < 24*time.Hour {
			t.Errorf("%s latency %v implausibly fast for a public list", l.Name, l.LatencyMean)
		}
		sum += l.HitRate
	}
	// Union coverage must land near the paper's 6.6 % for abusive NRDs.
	if sum < 0.05 || sum > 0.09 {
		t.Errorf("aggregate hit rate %.3f outside plausible band", sum)
	}
}

func TestConsiderAbusiveCoverageConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewAggregator(nil)
	const n = 30_000
	flagged := 0
	for i := 0; i < n; i++ {
		d := domainN(i)
		if a.ConsiderAbusive(rng, d, t0) > 0 {
			flagged++
		}
	}
	rate := float64(flagged) / n
	// Union of list hit rates ≈ 1-∏(1-p) ≈ 0.065 (paper: 6.6 %).
	if rate < 0.05 || rate > 0.09 {
		t.Errorf("flag rate %.4f outside [0.05, 0.09]", rate)
	}
}

func TestFirstListedRespectsPollWindow(t *testing.T) {
	a := NewAggregator(nil)
	a.SeedFlag("DBL", "x.com", t0.Add(48*time.Hour))
	if _, ok := a.FirstListed("x.com", t0.Add(24*time.Hour)); ok {
		t.Error("flag visible before it happened")
	}
	f, ok := a.FirstListed("x.com", t0.Add(72*time.Hour))
	if !ok || f.List != "DBL" {
		t.Errorf("flag: %+v, %v", f, ok)
	}
}

func TestFirstListedOrdering(t *testing.T) {
	a := NewAggregator(nil)
	a.SeedFlag("OpenPhish", "x.com", t0.Add(5*time.Hour))
	a.SeedFlag("DBL", "x.com", t0.Add(2*time.Hour))
	f, ok := a.FirstListed("x.com", t0.Add(100*time.Hour))
	if !ok || f.List != "DBL" {
		t.Errorf("earliest flag should win: %+v", f)
	}
	if len(a.Flags("x.com")) != 2 {
		t.Error("Flags should return all events")
	}
}

func TestFlaggedDomains(t *testing.T) {
	a := NewAggregator(nil)
	a.SeedFlag("DBL", "b.com", t0)
	a.SeedFlag("DBL", "a.com", t0)
	a.SeedFlag("DBL", "late.com", t0.Add(999*time.Hour))
	got := a.FlaggedDomains(t0.Add(time.Hour))
	if len(got) != 2 || got[0] != "a.com" {
		t.Errorf("FlaggedDomains = %v", got)
	}
}

func TestClassifyTaxonomy(t *testing.T) {
	created := t0.Add(10 * time.Hour)
	deleted := created.Add(5 * time.Hour)
	pollEnd := t0.Add(180 * 24 * time.Hour)
	cases := []struct {
		name string
		at   time.Time
		want Timing
	}{
		{"pre.com", created.Add(-30 * 24 * time.Hour), BeforeRegistration},
		{"post.com", deleted.Add(72 * time.Hour), AfterDeletion},
		{"sameday.com", created.Add(2 * time.Hour), OnRegistrationDay},
		{"active.com", created.Add(30 * time.Hour), WhileActive},
	}
	for _, c := range cases {
		a := NewAggregator(nil)
		a.SeedFlag("DBL", c.name, c.at)
		del := deleted
		if c.want == WhileActive {
			del = created.Add(60 * 24 * time.Hour)
		}
		if got := a.Classify(c.name, created, del, pollEnd); got != c.want {
			t.Errorf("Classify(%s) = %v, want %v", c.name, got, c.want)
		}
	}
	a := NewAggregator(nil)
	if got := a.Classify("unflagged.com", created, deleted, pollEnd); got != NotFlagged {
		t.Errorf("unflagged: %v", got)
	}
}

func TestTimingStrings(t *testing.T) {
	for tm, want := range map[Timing]string{
		NotFlagged: "not-flagged", BeforeRegistration: "before-registration",
		WhileActive: "while-active", OnRegistrationDay: "on-registration-day",
		AfterDeletion: "after-deletion", Timing(99): "unknown",
	} {
		if tm.String() != want {
			t.Errorf("%d.String() = %q", tm, tm.String())
		}
	}
}

func TestTransientFlagsMostlyPostDeletion(t *testing.T) {
	// Core §4.3 shape: transient domains (lifetime < 24 h) flagged by
	// day-scale-latency lists land overwhelmingly after deletion.
	rng := rand.New(rand.NewSource(7))
	a := NewAggregator(nil)
	pollEnd := t0.Add(180 * 24 * time.Hour)
	post, total := 0, 0
	for i := 0; i < 60_000; i++ {
		d := domainN(i)
		created := t0.Add(time.Duration(i%720) * time.Hour)
		deleted := created.Add(time.Duration(1+i%23) * time.Hour)
		if a.ConsiderAbusive(rng, d, created) == 0 {
			continue
		}
		total++
		if a.Classify(d, created, deleted, pollEnd) == AfterDeletion {
			post++
		}
	}
	if total < 100 {
		t.Fatalf("too few flagged domains to assess: %d", total)
	}
	share := float64(post) / float64(total)
	if share < 0.85 {
		t.Errorf("post-deletion share %.3f, want ≥0.85 (paper: 94%%)", share)
	}
}

func domainN(i int) string {
	b := []byte("dddddd.com")
	for p := 0; p < 6; p++ {
		b[p] = byte('a' + i%26)
		i /= 26
	}
	return string(b)
}

// TestSampleAbusiveMatchesConsider: SampleAbusive + SeedFlag (the world
// builder's compile/commit split) must be equivalent to ConsiderAbusive
// for the same RNG stream.
func TestSampleAbusiveMatchesConsider(t *testing.T) {
	start := time.Date(2023, 11, 5, 0, 0, 0, 0, time.UTC)

	direct := NewAggregator(nil)
	rng := rand.New(rand.NewSource(9))
	wantN := 0
	for i := 0; i < 5000; i++ {
		wantN += direct.ConsiderAbusive(rng, domainN(i), start)
	}

	split := NewAggregator(nil)
	rng = rand.New(rand.NewSource(9))
	gotN := 0
	for i := 0; i < 5000; i++ {
		flags := SampleAbusive(split.Models(), rng, domainN(i), start)
		for _, f := range flags {
			split.SeedFlag(f.List, f.Domain, f.At)
		}
		gotN += len(flags)
	}
	if gotN != wantN || gotN == 0 {
		t.Fatalf("flag counts diverge: %d vs %d", gotN, wantN)
	}
	for i := 0; i < 5000; i++ {
		if !reflect.DeepEqual(split.Flags(domainN(i)), direct.Flags(domainN(i))) {
			t.Fatalf("flags for %s diverge", domainN(i))
		}
	}
}

// TestModelsIsACopy: mutating the returned slice must not affect the
// aggregator's behaviour.
func TestModelsIsACopy(t *testing.T) {
	a := NewAggregator(nil)
	m := a.Models()
	if len(m) != len(DefaultLists()) {
		t.Fatalf("Models returned %d lists", len(m))
	}
	m[0].HitRate = 1.0
	m[0].Name = "clobbered"
	if a.Models()[0].Name == "clobbered" {
		t.Fatal("Models exposed internal state")
	}
}
