package analysis

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
	"time"
)

func TestWriteReportContainsEverything(t *testing.T) {
	r := testResults(t)
	var buf bytes.Buffer
	if err := WriteReport(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table 1", "Figure 1", "NS stability", "Table 2", "RDAP failures",
		"Figure 2", "Table 3", "Table 4", "Table 5", "blocklists",
		"NOD comparison", "ccTLD .nl",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestWriteFigureCSV(t *testing.T) {
	r := testResults(t)
	buckets, series := Figure1(r)
	var buf bytes.Buffer
	if err := WriteFigureCSV(&buf, buckets, series); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(buckets)+1 {
		t.Fatalf("rows = %d, want %d", len(records), len(buckets)+1)
	}
	if records[0][0] != "bucket_seconds" || records[0][len(records[0])-1] != "All" {
		t.Errorf("header: %v", records[0])
	}
	// The 15m bucket row must carry the headline value.
	var found bool
	for _, row := range records[1:] {
		if row[1] == "15m" {
			found = true
			if row[0] != "900" {
				t.Errorf("15m bucket seconds = %s", row[0])
			}
		}
	}
	if !found {
		t.Error("15m bucket missing")
	}
}

func TestWriteFigureCSVEmptySeries(t *testing.T) {
	var buf bytes.Buffer
	err := WriteFigureCSV(&buf, []time.Duration{time.Minute}, []Series{{Name: "x"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0.0000") {
		t.Errorf("missing padded value:\n%s", buf.String())
	}
}
