package analysis

import (
	"time"

	"darkdns/internal/core"
	"darkdns/internal/measure"
	"darkdns/internal/psl"
	"darkdns/internal/stream"
	"darkdns/internal/worldsim"
)

// Results bundles one complete simulated measurement campaign: the
// ground-truth world, the pipeline's observations, and the measurement
// fleet's probe aggregates. Every experiment function takes a *Results.
type Results struct {
	World    *worldsim.World
	Pipeline *core.Pipeline
	Fleet    *measure.Fleet
	Bus      *stream.Bus
	Report   core.TransientReport

	WindowStart time.Time
	WindowEnd   time.Time
}

// RunConfig parameterizes a reproduction run.
type RunConfig struct {
	Seed  int64
	Scale float64
	Weeks int
	// WatchSampleRate passes through to the pipeline (1.0 =
	// paper-accurate full watching; lower values sample to bound
	// simulated probe volume at large scales).
	WatchSampleRate float64
	// ProbeMail enables the future-work MX/SPF probes (§5).
	ProbeMail bool
	// IngestWorkers selects the pipeline's ingest mode: 0 subscribes
	// per-event (the serial path), ≥1 subscribes in micro-batching mode
	// with that screening worker-pool width. Campaign results are
	// byte-identical across modes for a fixed seed (the pipeline's
	// per-domain decision derivation guarantees it; the determinism
	// tests assert it).
	IngestWorkers int
	// RDAPWorkers selects step 2's dispatch mode: 0 schedules blocking
	// lookups on the clock (the serial path), ≥1 routes candidates
	// through the asynchronous per-TLD dispatch engine with that
	// worker-pool width. Like IngestWorkers, campaign results are
	// byte-identical across modes for a fixed seed.
	RDAPWorkers int
	// ClockWorkers selects the event engine's drain mode: 0 fires events
	// one at a time (the serial path), ≥1 drains the campaign through
	// Sim.RunBatched — same-timestamp events pop as one group and runs
	// of parallel-marked events fire through a pool this wide behind a
	// completion barrier. Campaign reports are byte-identical across 0,
	// 1 and N workers (the engine's determinism contract).
	ClockWorkers int
	// LookaheadWindow, when ≥ 1, drains the campaign through the
	// optimistic lookahead engine (Sim.RunLookahead) instead of the
	// barrier drains: up to this many distinct future timestamps of
	// effect-tagged events are popped per round and their disjoint
	// conflict groups fired concurrently on a pool ClockWorkers wide
	// (minimum 1). Untagged events and tag conflicts degrade to the
	// usual barriers, so campaign reports stay byte-identical across
	// window widths — including window 0, the serial path.
	LookaheadWindow int
	// BuildWorkers selects the world builder's compile fan-out: 0 lays
	// per-TLD layouts out serially on the caller, ≥1 compiles them on a
	// worker pool this wide before the serial commit installs them in
	// canonical plan order. Worlds — and therefore campaign reports —
	// are byte-identical across widths (each plan draws from its own
	// seed-derived RNG stream).
	BuildWorkers int
	// CommitWorkers selects the world builder's commit fan-out: 0
	// installs compiled layouts serially, ≥1 commits them on a worker
	// pool this wide — record installs stripe across the sharded domain
	// store and substrate seedings are commutative across the distinct
	// names layouts own, while ghost-ledger and clock-timeline installs
	// stay serial in canonical order. Worlds — and therefore campaign
	// reports — are byte-identical across widths.
	CommitWorkers int
	// ProbeWorkers selects the measurement fleet's probe mode: 0 issues
	// per-domain backend calls on the fleet's pool (the serial path), ≥1
	// partitions each round into that many contiguous slices and submits
	// each as one batch through the probe engine's shared exchange layer.
	// Observation streams — and therefore campaign reports — are
	// byte-identical across widths (results are positional and
	// observation delivery stays in admission order).
	ProbeWorkers int
	// ApplyWorkers selects stage 2 of every fleet round: 0 applies
	// domain state and delivers observations inline in admission order
	// (the serial path), ≥1 fans state applies across this many workers
	// as probe results land, with a sequencing reorder buffer in front
	// of the observers releasing delivery strictly in admission order.
	// Observation streams — and therefore campaign reports — are
	// byte-identical across widths (the buffer reproduces the serial
	// delivery order exactly).
	ApplyWorkers int
	// ProbeCadence decouples the fleet's revalidation interval from the
	// default 10-minute round, per Afek & Litmanovich's TTL-decoupled
	// revalidation. Zero keeps the default cadence.
	ProbeCadence time.Duration
	// SnapshotPath passes through to worldsim.Config.SnapshotPath: when
	// set, a matching persistent world snapshot replaces the compile
	// fan-out (and a miss compiles then saves back). The sweep engine
	// uses this to share one compiled world across a policy grid.
	SnapshotPath string
}

// DefaultRunConfig is sized for test and example runs: ≈1/500 of paper
// volume over a 4-week window, with mail probing on.
func DefaultRunConfig() RunConfig {
	return RunConfig{Seed: 1, Scale: 0.002, Weeks: 4, WatchSampleRate: 1.0, ProbeMail: true}
}

// Run executes a full campaign: builds the world, attaches the pipeline,
// advances the clock through the window plus drain, and computes the
// transient report.
func Run(cfg RunConfig) *Results {
	wcfg := worldsim.DefaultConfig(cfg.Seed, cfg.Scale)
	if cfg.Weeks > 0 {
		wcfg.Weeks = cfg.Weeks
	}
	wcfg.BuildWorkers = cfg.BuildWorkers
	wcfg.CommitWorkers = cfg.CommitWorkers
	wcfg.SnapshotPath = cfg.SnapshotPath
	w := worldsim.New(wcfg)
	start, end := w.Window()

	pcfg := core.DefaultConfig(start, end)
	if cfg.WatchSampleRate > 0 {
		pcfg.WatchSampleRate = cfg.WatchSampleRate
	}
	fleetCfg := measure.DefaultConfig()
	fleetCfg.StopWhenDead = true
	fleetCfg.ProbeMail = cfg.ProbeMail
	fleetCfg.ProbeWorkers = cfg.ProbeWorkers
	fleetCfg.ApplyWorkers = cfg.ApplyWorkers
	if cfg.ProbeCadence > 0 {
		fleetCfg.Revalidate.Cadence = cfg.ProbeCadence
	}
	fleet := measure.NewFleet(fleetCfg, w.Clock, w.ProbeBackend())
	bus := stream.NewBus()
	if cfg.IngestWorkers > 0 {
		pcfg.IngestWorkers = cfg.IngestWorkers
	}
	if cfg.RDAPWorkers > 0 {
		pcfg.RDAPWorkers = cfg.RDAPWorkers
	}
	p := core.New(pcfg, w.Clock, psl.Default(), w.CZDS, core.MuxQuerier{Mux: w.RDAP}, fleet, bus, cfg.Seed+100)
	if d := p.Dispatcher(); d != nil {
		fleet.AttachDispatcher(d)
	}
	if cfg.IngestWorkers > 0 {
		p.StartBatched(w.Hub)
	} else {
		p.Start(w.Hub)
	}
	if cfg.LookaheadWindow > 0 {
		workers := cfg.ClockWorkers
		if workers < 1 {
			workers = 1
		}
		w.RunLookahead(cfg.LookaheadWindow, workers)
	} else if cfg.ClockWorkers > 0 {
		w.RunBatched(cfg.ClockWorkers)
	} else {
		w.Run()
	}
	p.Stop()

	return &Results{
		World: w, Pipeline: p, Fleet: fleet, Bus: bus,
		Report:      p.Transients(),
		WindowStart: start, WindowEnd: end,
	}
}

// monthIndex maps a timestamp to its 30-day month slot within the window.
func (r *Results) monthIndex(t time.Time) int {
	d := int(t.Sub(r.WindowStart) / (24 * time.Hour))
	m := d / 30
	if m < 0 {
		m = 0
	}
	if m > 2 {
		m = 2
	}
	return m
}

// MonthNames label the three 30-day slots after the paper's columns.
var MonthNames = [3]string{"Nov", "Dec", "Jan"}
