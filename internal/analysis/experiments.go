package analysis

import (
	"fmt"
	"sort"
	"time"

	"darkdns/internal/asdb"
	"darkdns/internal/blocklist"
	"darkdns/internal/core"
	"darkdns/internal/dnsname"
	"darkdns/internal/psl"
	"darkdns/internal/worldsim"
)

// ---------------------------------------------------------------------------
// E1 — Table 1: newly registered domains per TLD.

// Table1Row is one TLD's NRD accounting.
type Table1Row struct {
	TLD      string
	Monthly  [3]int
	Total    int
	ZoneNRD  int
	Detected int     // candidates that later appeared in zone diffs
	Coverage float64 // Detected / ZoneNRD
}

// Table1 reproduces Table 1: CT-detected NRDs per TLD and month, the
// zone-diff NRD baseline, and the coverage ratio. Only TLDs present in
// the CZDS collection appear — the paper's Table 1 is gTLD-only because
// there is no zone baseline for ccTLDs.
func Table1(r *Results) []Table1Row {
	collected := make(map[string]bool)
	for _, tld := range r.World.CZDS.TLDs() {
		collected[tld] = true
	}
	perTLD := make(map[string]*Table1Row)
	for _, c := range r.Pipeline.Candidates() {
		if !collected[c.TLD] {
			continue
		}
		row := perTLD[c.TLD]
		if row == nil {
			row = &Table1Row{TLD: c.TLD}
			perTLD[c.TLD] = row
		}
		row.Monthly[r.monthIndex(c.SeenAt)]++
		row.Total++
	}
	var rows []Table1Row
	for tld, row := range perTLD {
		det, zone := r.Pipeline.ZoneNRDCoverage(tld)
		row.ZoneNRD = int(zone)
		row.Detected = int(det)
		if zone > 0 {
			row.Coverage = float64(det) / float64(zone)
		}
		rows = append(rows, *row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Total != rows[j].Total {
			return rows[i].Total > rows[j].Total
		}
		return rows[i].TLD < rows[j].TLD
	})
	return rows
}

// RenderTable1 renders Table 1 in the paper's layout, aggregating
// non-top-10 TLDs under "Others".
func RenderTable1(rows []Table1Row) string {
	t := &Table{
		Title:   "Table 1: Top TLDs by newly registered domains (NRDs)",
		Headers: []string{"TLD", "Nov", "Dec", "Jan", "Total", "Zone NRD", "Coverage"},
	}
	top := rows
	if len(top) > 10 {
		top = rows[:10]
	}
	var others Table1Row
	others.TLD = "Others"
	for _, row := range rows[len(top):] {
		for m := 0; m < 3; m++ {
			others.Monthly[m] += row.Monthly[m]
		}
		others.Total += row.Total
		others.ZoneNRD += row.ZoneNRD
		others.Detected += row.Detected
	}
	var total Table1Row
	total.TLD = "Total"
	emit := func(row Table1Row) {
		cov := "n/a"
		if row.ZoneNRD > 0 {
			cov = fmt.Sprintf("%.1f%%", 100*float64(row.Detected)/float64(row.ZoneNRD))
		}
		t.AddRow(row.TLD, Count(row.Monthly[0]), Count(row.Monthly[1]), Count(row.Monthly[2]),
			Count(row.Total), Count(row.ZoneNRD), cov)
	}
	add := func(dst *Table1Row, row Table1Row) {
		for m := 0; m < 3; m++ {
			dst.Monthly[m] += row.Monthly[m]
		}
		dst.Total += row.Total
		dst.ZoneNRD += row.ZoneNRD
		dst.Detected += row.Detected
	}
	for _, row := range top {
		emit(row)
		add(&total, row)
	}
	if others.Total > 0 {
		emit(others)
		add(&total, others)
	}
	emit(total)
	return t.Render()
}

// ---------------------------------------------------------------------------
// E2 — Figure 1: detection delay CDF per TLD.

// Figure1 computes per-TLD CDFs of SeenAt−Registered for validated
// candidates, evaluated at the paper's bucket boundaries, plus an "All"
// series.
func Figure1(r *Results) (buckets []time.Duration, series []Series) {
	perTLD := make(map[string][]time.Duration)
	var all []time.Duration
	for _, c := range r.Pipeline.Candidates() {
		if c.RDAPOutcome != core.RDAPOK || !c.Validated {
			continue
		}
		d := c.DetectionDelay()
		if d < 0 {
			d = 0
		}
		perTLD[c.TLD] = append(perTLD[c.TLD], d)
		all = append(all, d)
	}
	names := make([]string, 0, len(perTLD))
	for tld := range perTLD {
		names = append(names, tld)
	}
	sort.Slice(names, func(i, j int) bool {
		if len(perTLD[names[i]]) != len(perTLD[names[j]]) {
			return len(perTLD[names[i]]) > len(perTLD[names[j]])
		}
		return names[i] < names[j]
	})
	if len(names) > 8 {
		names = names[:8]
	}
	for _, tld := range names {
		cdf := NewCDF(perTLD[tld])
		s := Series{Name: tld}
		for _, b := range Figure1Buckets {
			s.Values = append(s.Values, cdf.At(b))
		}
		series = append(series, s)
	}
	allCDF := NewCDF(all)
	sAll := Series{Name: "All"}
	for _, b := range Figure1Buckets {
		sAll.Values = append(sAll.Values, allCDF.At(b))
	}
	series = append(series, sAll)
	return Figure1Buckets, series
}

// Figure1Headline returns the §4.1 headline quantiles over all validated
// candidates: the fraction detected within 15 and 45 minutes.
func Figure1Headline(r *Results) (within15m, within45m float64, median time.Duration) {
	var all []time.Duration
	for _, c := range r.Pipeline.Candidates() {
		if c.RDAPOutcome == core.RDAPOK && c.Validated {
			d := c.DetectionDelay()
			if d < 0 {
				d = 0
			}
			all = append(all, d)
		}
	}
	cdf := NewCDF(all)
	return cdf.At(15 * time.Minute), cdf.At(45 * time.Minute), cdf.Quantile(0.5)
}

// ---------------------------------------------------------------------------
// E3 — §4.1: NS infrastructure stability in the first 24 hours.

// NSStability returns the fraction of watched candidates that kept their
// initial nameserver set through their first 24 hours (paper: 97.5 %).
func NSStability(r *Results) (kept, total int) {
	for _, st := range r.Fleet.States() {
		if !st.EverInZone {
			continue
		}
		total++
		if !st.NSChanged || st.NSChangedAt.Sub(st.Started) > 24*time.Hour {
			kept++
		}
	}
	return kept, total
}

// ---------------------------------------------------------------------------
// E4 — Table 2: transient domains per TLD and month.

// Table2Row is one TLD's transient accounting.
type Table2Row struct {
	TLD     string
	Monthly [3]int
	Total   int
}

// Table2 reproduces Table 2 over the pipeline's transient lower bound.
func Table2(r *Results) []Table2Row {
	perTLD := make(map[string]*Table2Row)
	for _, c := range r.Report.LowerBound {
		row := perTLD[c.TLD]
		if row == nil {
			row = &Table2Row{TLD: c.TLD}
			perTLD[c.TLD] = row
		}
		row.Monthly[r.monthIndex(c.SeenAt)]++
		row.Total++
	}
	var rows []Table2Row
	for _, row := range perTLD {
		rows = append(rows, *row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Total != rows[j].Total {
			return rows[i].Total > rows[j].Total
		}
		return rows[i].TLD < rows[j].TLD
	})
	return rows
}

// RenderTable2 renders Table 2 in the paper's layout.
func RenderTable2(rows []Table2Row) string {
	t := &Table{
		Title:   "Table 2: Transient domain names observed",
		Headers: []string{"TLD", "Nov", "Dec", "Jan", "Total"},
	}
	var total Table2Row
	top := rows
	if len(top) > 10 {
		top = rows[:10]
	}
	var others Table2Row
	others.TLD = "Others"
	for _, row := range rows[len(top):] {
		for m := 0; m < 3; m++ {
			others.Monthly[m] += row.Monthly[m]
		}
		others.Total += row.Total
	}
	emit := func(row Table2Row) {
		t.AddRow(row.TLD, Count(row.Monthly[0]), Count(row.Monthly[1]), Count(row.Monthly[2]), Count(row.Total))
	}
	for _, row := range top {
		emit(row)
		for m := 0; m < 3; m++ {
			total.Monthly[m] += row.Monthly[m]
		}
		total.Total += row.Total
	}
	if others.Total > 0 {
		emit(others)
		for m := 0; m < 3; m++ {
			total.Monthly[m] += others.Monthly[m]
		}
		total.Total += others.Total
	}
	total.TLD = "Total"
	emit(total)
	return t.Render()
}

// ---------------------------------------------------------------------------
// E5 — §4.2: RDAP failure asymmetry and the DZDB historical check.

// RDAPStats is the §4.2 failure accounting.
type RDAPStats struct {
	NRDTotal       int
	NRDFailed      int
	TransTotal     int
	TransFailed    int
	FailedHistoric int // RDAP-failed transients present in DZDB history
}

// RDAPFailureStats computes failure rates for all candidates vs transient
// candidates, and how many failed transients existed in historical zone
// data (paper: ≈3 %, ≈34 %, ≈97 %).
func RDAPFailureStats(r *Results) RDAPStats {
	var s RDAPStats
	for _, c := range r.Pipeline.Candidates() {
		s.NRDTotal++
		if c.RDAPOutcome != core.RDAPOK {
			s.NRDFailed++
		}
	}
	s.TransTotal = len(r.Report.LowerBound)
	for _, c := range r.Report.RDAPFailed {
		s.TransFailed++
		if r.World.DZDB.ExistedBefore(c.Domain, c.SeenAt) {
			s.FailedHistoric++
		}
	}
	return s
}

// ---------------------------------------------------------------------------
// E6 — Figure 2: transient domain lifetimes.

// Figure2 computes the lifetime CDF of confirmed transients: last valid
// NS response minus RDAP registration time (§4.2.1).
func Figure2(r *Results) (buckets []time.Duration, s Series, cdf *CDF) {
	var lifetimes []time.Duration
	for _, c := range r.Report.Confirmed {
		st, ok := r.Fleet.State(c.Domain)
		if !ok || !st.EverInZone || st.LastAliveAt.IsZero() {
			continue
		}
		lt := st.LastAliveAt.Sub(c.Registered)
		if lt < 0 {
			lt = 0
		}
		lifetimes = append(lifetimes, lt)
	}
	cdf = NewCDF(lifetimes)
	s = Series{Name: "transients"}
	for _, b := range Figure2Buckets {
		s.Values = append(s.Values, cdf.At(b))
	}
	return Figure2Buckets, s, cdf
}

// ---------------------------------------------------------------------------
// E7 — Table 3: registrars of transient domains.

// ShareRow is a name/count/share row used by Tables 3–5.
type ShareRow struct {
	Name  string
	Count int
	Share float64
}

// Table3 computes the registrar distribution over confirmed transients
// (the paper's Table 3 uses RDAP registrar identity).
func Table3(r *Results) []ShareRow {
	counts := make(map[string]int)
	total := 0
	for _, c := range r.Report.Confirmed {
		if c.Registrar == "" {
			continue
		}
		counts[c.Registrar]++
		total++
	}
	return shareRows(counts, total, 10)
}

// ---------------------------------------------------------------------------
// E8 — Table 4: DNS hosting (NS record SLDs) of transient domains.

// Table4 computes the NS-record SLD distribution over confirmed
// transients from the measurement fleet's first-probe delegations.
func Table4(r *Results) []ShareRow {
	list := psl.Default()
	counts := make(map[string]int)
	total := 0
	for _, c := range r.Report.Confirmed {
		st, ok := r.Fleet.State(c.Domain)
		if !ok || len(st.FirstNS) == 0 {
			continue
		}
		sld, ok := list.RegisteredDomain(st.FirstNS[0])
		if !ok {
			sld = st.FirstNS[0]
		}
		counts[sld]++
		total++
	}
	return shareRows(counts, total, 5)
}

// ---------------------------------------------------------------------------
// E9 — Table 5: web hosting (A-record ASNs) of transient domains.

// Table5 computes the A-record origin-AS distribution over confirmed
// transients.
func Table5(r *Results) []ShareRow {
	db := asdb.Default()
	counts := make(map[string]int)
	total := 0
	for _, c := range r.Report.Confirmed {
		st, ok := r.Fleet.State(c.Domain)
		if !ok || len(st.FirstV4) == 0 {
			continue
		}
		as, err := db.Lookup(st.FirstV4[0])
		label := "unrouted"
		if err == nil {
			label = fmt.Sprintf("AS%d %s", as.Number, as.Name)
		}
		counts[label]++
		total++
	}
	return shareRows(counts, total, 5)
}

func shareRows(counts map[string]int, total, top int) []ShareRow {
	// "Others" (whether a pre-aggregated catalog bucket or our own
	// overflow) always renders last, as in the paper's tables.
	var others ShareRow
	others.Name = "Others"
	if n, ok := counts["Others"]; ok {
		others.Count = n
	}
	rows := make([]ShareRow, 0, len(counts))
	for name, n := range counts {
		if name == "Others" {
			continue
		}
		rows = append(rows, ShareRow{Name: name, Count: n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return rows[i].Name < rows[j].Name
	})
	if len(rows) > top {
		for _, row := range rows[top:] {
			others.Count += row.Count
		}
		rows = rows[:top]
	}
	rows = append(rows, others)
	if total > 0 {
		for i := range rows {
			rows[i].Share = float64(rows[i].Count) / float64(total)
		}
	}
	return rows
}

// RenderShares renders a Table 3/4/5-style distribution.
func RenderShares(title string, rows []ShareRow) string {
	t := &Table{Title: title, Headers: []string{"Name", "Domains", "%"}}
	total := 0
	for _, row := range rows {
		t.AddRow(row.Name, Count(row.Count), fmt.Sprintf("%.1f%%", 100*row.Share))
		total += row.Count
	}
	t.AddRow("Total", Count(total), "-")
	return t.Render()
}

// ---------------------------------------------------------------------------
// E10 — §4.3: blocklist coverage and flag timing.

// BlocklistStats is the §4.3 accounting for one population.
type BlocklistStats struct {
	Population int
	Flagged    int
	Timing     map[blocklist.Timing]int
}

// BlocklistCoverage classifies blocklist flags for (a) early-removed NRDs
// and (b) confirmed transients, polling through pollEnd (the paper
// extends polling ~3 months past the window).
func BlocklistCoverage(r *Results, pollEnd time.Time) (earlyRemoved, transients BlocklistStats) {
	earlyRemoved.Timing = make(map[blocklist.Timing]int)
	transients.Timing = make(map[blocklist.Timing]int)
	agg := r.World.Blocklists

	// Early-removed: ground-truth domains deleted before window end but
	// visible in snapshots (not fast-deleted).
	r.World.Domains.Range(func(d *worldsim.Domain) {
		if d.FastDelete || d.Lifetime == 0 {
			return
		}
		deleted := d.Created.Add(d.Lifetime)
		if deleted.After(r.WindowEnd) {
			return
		}
		earlyRemoved.Population++
		tm := agg.Classify(d.Name, d.Created, deleted, pollEnd)
		if tm != blocklist.NotFlagged {
			earlyRemoved.Flagged++
			earlyRemoved.Timing[tm]++
		}
	})

	for _, c := range r.Report.Confirmed {
		transients.Population++
		gt := r.World.Domains.Get(c.Domain)
		if gt == nil {
			continue
		}
		deleted := gt.Created.Add(gt.Lifetime)
		tm := agg.Classify(c.Domain, gt.Created, deleted, pollEnd)
		if tm != blocklist.NotFlagged {
			transients.Flagged++
			transients.Timing[tm]++
		}
	}
	return earlyRemoved, transients
}

// ---------------------------------------------------------------------------
// E11 — §4.4: SIE-NOD feed comparison over one day.

// NODComparison is the one-day feed overlap accounting.
type NODComparison struct {
	Day        time.Time
	CTOnly     int
	NODOnly    int
	Both       int
	TransCT    int
	TransNOD   int
	TransBoth  int
	TransUnion int
}

// CompareNOD reproduces the §4.4 one-day comparison: NRDs registered on
// the chosen day detected by the CT pipeline vs the passive-DNS feed, and
// the same comparison restricted to transient (fast-deleted) domains.
func CompareNOD(r *Results, day time.Time) NODComparison {
	cmp := NODComparison{Day: day}
	dayEnd := day.Add(24 * time.Hour)

	ctSet := make(map[string]bool)
	for _, c := range r.Pipeline.Candidates() {
		if c.RDAPOutcome == core.RDAPOK && !c.Registered.Before(day) && c.Registered.Before(dayEnd) {
			ctSet[c.Domain] = true
		}
	}
	r.World.Domains.Range(func(d *worldsim.Domain) {
		if d.Ghost || d.Created.Before(day) || !d.Created.Before(dayEnd) {
			return
		}
		_, nod := r.World.NOD.DetectedAt(d.Name)
		ct := ctSet[d.Name]
		switch {
		case ct && nod:
			cmp.Both++
		case ct:
			cmp.CTOnly++
		case nod:
			cmp.NODOnly++
		}
		if d.FastDelete {
			if ct {
				cmp.TransCT++
			}
			if nod {
				cmp.TransNOD++
			}
			if ct && nod {
				cmp.TransBoth++
			}
			if ct || nod {
				cmp.TransUnion++
			}
		}
	})
	return cmp
}

// ---------------------------------------------------------------------------
// E12 — §4.4: ccTLD registry ground truth.

// CCTLDResult is the .nl ground-truth comparison.
type CCTLDResult struct {
	TLD           string
	FastDeleted   int // registry ledger: deleted within 24 h
	NeverInZone   int // of those, never in any registry zone file
	PipelineFound int // never-in-zone domains the CT pipeline detected
	Recall        float64
}

// CCTLDGroundTruth reproduces the .nl experiment: the registry's private
// ledger and zone files define ground truth; the pipeline's CT-based
// candidates are measured against it (paper: 714 / 334 / 99 ≈ 29.6 %).
func CCTLDGroundTruth(r *Results) CCTLDResult {
	tld := r.World.Cfg.CCTLD.TLD
	res := CCTLDResult{TLD: tld}
	cands := make(map[string]bool)
	for _, c := range r.Pipeline.Candidates() {
		if c.TLD == tld {
			cands[c.Domain] = true
		}
	}
	reg := r.World.Registries[tld]
	for _, entry := range reg.Ledger() {
		if entry.Deleted.IsZero() || entry.Deleted.Sub(entry.Created) >= 24*time.Hour {
			continue
		}
		res.FastDeleted++
		if r.World.CCZones.EverSeen(entry.Domain, entry.Created.Add(-24*time.Hour), r.WindowEnd.Add(3*24*time.Hour)) {
			continue // captured by a registry zone file
		}
		res.NeverInZone++
		if cands[entry.Domain] {
			res.PipelineFound++
		}
	}
	if res.NeverInZone > 0 {
		res.Recall = float64(res.PipelineFound) / float64(res.NeverInZone)
	}
	return res
}

// ---------------------------------------------------------------------------

// TLDOf is a convenience re-export for callers rendering custom tables.
func TLDOf(domain string) string { return dnsname.TLD(domain) }

// GroundTruthTransientCount counts world domains that are fast-deleted —
// the denominator for coverage discussions (not observable by the
// pipeline; used in EXPERIMENTS.md commentary).
func GroundTruthTransientCount(w *worldsim.World) int {
	n := 0
	w.Domains.Range(func(d *worldsim.Domain) {
		if d.FastDelete {
			n++
		}
	})
	return n
}
