package analysis

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"darkdns/internal/blocklist"
)

// WriteFigureCSV emits a figure's series over buckets as CSV, one row per
// bucket, for external plotting (the paper's figures are CDF plots).
func WriteFigureCSV(w io.Writer, buckets []time.Duration, series []Series) error {
	cw := csv.NewWriter(w)
	header := []string{"bucket_seconds", "bucket_label"}
	for _, s := range series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, b := range buckets {
		row := []string{strconv.FormatInt(int64(b.Seconds()), 10), FormatDuration(b)}
		for _, s := range series {
			v := 0.0
			if i < len(s.Values) {
				v = s.Values[i]
			}
			row = append(row, strconv.FormatFloat(v, 'f', 4, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteReport renders the complete evaluation — every table, figure and
// headline statistic — to w. It is the library-level equivalent of
// cmd/reproduce.
func WriteReport(w io.Writer, r *Results) error {
	out := func(format string, args ...any) {
		fmt.Fprintf(w, format, args...)
	}
	out("%s\n", RenderTable1(Table1(r)))

	buckets, series := Figure1(r)
	out("%s\n", CDFTable("Figure 1: Difference in registration time per RDAP vs. CT logs (CDF)", buckets, series))
	w15, w45, med := Figure1Headline(r)
	out("figure 1 headline: %.0f%% within 15m, %.0f%% within 45m, median %v\n\n",
		100*w15, 100*w45, med.Round(time.Second))

	kept, total := NSStability(r)
	out("§4.1 NS stability: %s kept initial NS for 24h (n=%d)\n\n", Pct(kept, total), total)

	out("%s\n", RenderTable2(Table2(r)))

	s := RDAPFailureStats(r)
	out("§4.2 RDAP failures: NRDs %s, transients %s; failed-with-history %s\n",
		Pct(s.NRDFailed, s.NRDTotal), Pct(s.TransFailed, s.TransTotal), Pct(s.FailedHistoric, s.TransFailed))
	out("confirmed transients: %d of %d\n\n", len(r.Report.Confirmed), len(r.Report.LowerBound))

	f2buckets, f2series, cdf := Figure2(r)
	out("%s\n", CDFTable("Figure 2: Lifetime of transient domain names (CDF)", f2buckets, []Series{f2series}))
	out("figure 2 headline: %.0f%% die within 6h, median %v (n=%d)\n\n",
		100*cdf.At(6*time.Hour), cdf.Quantile(0.5).Round(time.Minute), cdf.Len())

	out("%s\n", RenderShares("Table 3: Top 10 Transient Domain Registrars", Table3(r)))
	out("%s\n", RenderShares("Table 4: Top 5 DNS Hosting (NS record SLDs) of Transient Domains", Table4(r)))
	out("%s\n", RenderShares("Table 5: Top 5 Web Hosting (A record ASNs) of Transient Domains", Table5(r)))

	pollEnd := r.WindowEnd.Add(90 * 24 * time.Hour)
	early, trans := BlocklistCoverage(r, pollEnd)
	out("§4.3 blocklists: early-removed %s flagged (%d post-deletion); transients %s flagged (%d post-deletion)\n\n",
		Pct(early.Flagged, early.Population), early.Timing[blocklist.AfterDeletion],
		Pct(trans.Flagged, trans.Population), trans.Timing[blocklist.AfterDeletion])

	day := r.WindowStart.Add(14 * 24 * time.Hour)
	cmp := CompareNOD(r, day)
	ct := cmp.Both + cmp.CTOnly
	nod := cmp.Both + cmp.NODOnly
	out("§4.4 NOD comparison (%s): CT %d, NOD %d, overlap %s of CT\n\n",
		day.Format("2006-01-02"), ct, nod, Pct(cmp.Both, ct))

	cc := CCTLDGroundTruth(r)
	out("§4.4 ccTLD .%s: %d fast-deleted, %d never-in-zone, %d detected (recall %.1f%%)\n",
		cc.TLD, cc.FastDeleted, cc.NeverInZone, cc.PipelineFound, 100*cc.Recall)
	return nil
}
