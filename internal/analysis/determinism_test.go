package analysis

import (
	"bytes"
	"testing"
)

// TestCampaignDeterminism: identical run configurations must produce
// byte-identical evaluation reports — the property that makes every
// number in EXPERIMENTS.md reproducible.
func TestCampaignDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two full campaigns")
	}
	cfg := RunConfig{Seed: 31, Scale: 0.0008, Weeks: 2, WatchSampleRate: 1.0, ProbeMail: true}
	render := func() []byte {
		r := Run(cfg)
		var buf bytes.Buffer
		if err := WriteReport(&buf, r); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := render()
	b := render()
	if !bytes.Equal(a, b) {
		t.Fatal("identical seeds produced different reports")
	}
	// A different seed must actually change the world.
	cfg.Seed = 32
	c := render()
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical reports")
	}
}
