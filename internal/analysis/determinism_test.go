package analysis

import (
	"bytes"
	"path/filepath"
	"testing"
)

// TestSerialLookaheadCampaignsIdentical: the acceptance bar for the
// optimistic lookahead engine — a fixed-seed campaign must render
// byte-identical evaluation reports under the serial drain and under
// RunLookahead at window 1, 4 and 16, alone and stacked with all six
// prior engines. A window ≥ 4 run must also actually speculate: the
// engine's speculative-fire counter (events fired at a timestamp beyond
// their window's first instant) has to be positive, proving events from
// at least two distinct timestamps fired in one round.
func TestSerialLookaheadCampaignsIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("five full campaigns")
	}
	base := RunConfig{Seed: 61, Scale: 0.0008, Weeks: 2, WatchSampleRate: 1.0, ProbeMail: true}
	render := func(cfg RunConfig) ([]byte, *Results) {
		r := Run(cfg)
		var buf bytes.Buffer
		if err := WriteReport(&buf, r); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), r
	}
	serial, _ := render(base)
	for _, cfg := range []RunConfig{
		{LookaheadWindow: 1},
		{LookaheadWindow: 4},
		{LookaheadWindow: 16},
		{LookaheadWindow: 16, ClockWorkers: 8, ProbeWorkers: 8, CommitWorkers: 8,
			BuildWorkers: 8, RDAPWorkers: 8, IngestWorkers: 8},
	} {
		run := base
		run.LookaheadWindow = cfg.LookaheadWindow
		run.ClockWorkers = cfg.ClockWorkers
		run.ProbeWorkers = cfg.ProbeWorkers
		run.CommitWorkers = cfg.CommitWorkers
		run.BuildWorkers = cfg.BuildWorkers
		run.RDAPWorkers = cfg.RDAPWorkers
		run.IngestWorkers = cfg.IngestWorkers
		got, res := render(run)
		if !bytes.Equal(serial, got) {
			t.Errorf("lookahead-window=%d (stacked=%v) report diverges from serial",
				cfg.LookaheadWindow, cfg.IngestWorkers > 0)
		}
		st := res.World.Clock.Stats()
		if cfg.LookaheadWindow >= 4 && st.SpecFired == 0 {
			t.Errorf("lookahead-window=%d: SpecFired = 0, want > 0 (no cross-timestamp firing happened)",
				cfg.LookaheadWindow)
		}
		if cfg.LookaheadWindow >= 4 && st.Windows == 0 {
			t.Errorf("lookahead-window=%d: Windows = 0, want > 0", cfg.LookaheadWindow)
		}
	}
}

// TestCampaignDeterminism: identical run configurations must produce
// byte-identical evaluation reports — the property that makes every
// number in EXPERIMENTS.md reproducible.
func TestCampaignDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two full campaigns")
	}
	cfg := RunConfig{Seed: 31, Scale: 0.0008, Weeks: 2, WatchSampleRate: 1.0, ProbeMail: true}
	render := func() []byte {
		r := Run(cfg)
		var buf bytes.Buffer
		if err := WriteReport(&buf, r); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := render()
	b := render()
	if !bytes.Equal(a, b) {
		t.Fatal("identical seeds produced different reports")
	}
	// A different seed must actually change the world.
	cfg.Seed = 32
	c := render()
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical reports")
	}
}

// TestSerialParallelCampaignsIdentical: a fixed-seed campaign must render
// byte-identical evaluation reports (Tables 1–5, Figures 1–2, every
// headline) whether the pipeline ingests per-event, in single-worker
// micro-batches, or with a wide screening worker pool. This is the
// determinism contract of the sharded batch engine: per-domain decision
// derivation plus in-order admission make ingest mode unobservable.
func TestSerialParallelCampaignsIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("three full campaigns")
	}
	base := RunConfig{Seed: 17, Scale: 0.0008, Weeks: 2, WatchSampleRate: 1.0, ProbeMail: true}
	render := func(cfg RunConfig) []byte {
		r := Run(cfg)
		var buf bytes.Buffer
		if err := WriteReport(&buf, r); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(base)
	for _, workers := range []int{1, 8} {
		cfg := base
		cfg.IngestWorkers = workers
		if got := render(cfg); !bytes.Equal(serial, got) {
			t.Errorf("ingest-workers=%d report diverges from serial", workers)
		}
	}
}

// TestSerialParallelRDAPDispatchIdentical: the same byte-identity must
// hold for step 2's dispatch mode — blocking lookups scheduled on the
// clock (RDAPWorkers=0), the dispatch engine draining serially
// (RDAPWorkers=1), and a wide worker pool (RDAPWorkers=8) — alone and
// combined with batched ingest. The dispatcher's drain barrier executes
// every due query at one simulated instant, so pool width parallelizes
// execution without reordering any observable.
func TestSerialParallelRDAPDispatchIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("four full campaigns")
	}
	base := RunConfig{Seed: 23, Scale: 0.0008, Weeks: 2, WatchSampleRate: 1.0, ProbeMail: true}
	render := func(cfg RunConfig) []byte {
		r := Run(cfg)
		var buf bytes.Buffer
		if err := WriteReport(&buf, r); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(base)
	for _, cfg := range []RunConfig{
		{RDAPWorkers: 1},
		{RDAPWorkers: 8},
		{RDAPWorkers: 8, IngestWorkers: 8},
	} {
		run := base
		run.RDAPWorkers = cfg.RDAPWorkers
		run.IngestWorkers = cfg.IngestWorkers
		if got := render(run); !bytes.Equal(serial, got) {
			t.Errorf("rdap-workers=%d ingest-workers=%d report diverges from serial",
				cfg.RDAPWorkers, cfg.IngestWorkers)
		}
	}
}

// TestSerialParallelBuildCampaignsIdentical: the same byte-identity must
// hold for the world builder's compile fan-out — per-TLD layouts
// compiled serially (BuildWorkers=0), on a single-width pool
// (BuildWorkers=1), and on a wide pool (BuildWorkers=8), alone and
// stacked with the ingest, dispatch and clock engines. Each plan draws
// from its own seed-derived RNG stream and the commit phase installs
// layouts in canonical plan order, so compile width is unobservable.
func TestSerialParallelBuildCampaignsIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("four full campaigns")
	}
	base := RunConfig{Seed: 47, Scale: 0.0008, Weeks: 2, WatchSampleRate: 1.0, ProbeMail: true}
	render := func(cfg RunConfig) []byte {
		r := Run(cfg)
		var buf bytes.Buffer
		if err := WriteReport(&buf, r); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(base)
	for _, cfg := range []RunConfig{
		{BuildWorkers: 1},
		{BuildWorkers: 8},
		{BuildWorkers: 8, ClockWorkers: 8, RDAPWorkers: 8, IngestWorkers: 8},
	} {
		run := base
		run.BuildWorkers = cfg.BuildWorkers
		run.ClockWorkers = cfg.ClockWorkers
		run.RDAPWorkers = cfg.RDAPWorkers
		run.IngestWorkers = cfg.IngestWorkers
		if got := render(run); !bytes.Equal(serial, got) {
			t.Errorf("build-workers=%d clock-workers=%d rdap-workers=%d ingest-workers=%d report diverges from serial",
				cfg.BuildWorkers, cfg.ClockWorkers, cfg.RDAPWorkers, cfg.IngestWorkers)
		}
	}
}

// TestSerialParallelCommitCampaignsIdentical: the same byte-identity
// must hold for the world builder's commit engine — compiled layouts
// installed serially (CommitWorkers=0), on a single-width pool
// (CommitWorkers=1), and on a wide pool (CommitWorkers=8), alone and
// stacked with all four other engines. Record installs stripe across
// the sharded domain store and substrate seedings commute across the
// distinct names layouts own; the ghost ledger and clock timelines
// install serially in canonical order, so commit width is unobservable.
func TestSerialParallelCommitCampaignsIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("four full campaigns")
	}
	base := RunConfig{Seed: 53, Scale: 0.0008, Weeks: 2, WatchSampleRate: 1.0, ProbeMail: true}
	render := func(cfg RunConfig) []byte {
		r := Run(cfg)
		var buf bytes.Buffer
		if err := WriteReport(&buf, r); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(base)
	for _, cfg := range []RunConfig{
		{CommitWorkers: 1},
		{CommitWorkers: 8},
		{CommitWorkers: 8, BuildWorkers: 8, ClockWorkers: 8, RDAPWorkers: 8, IngestWorkers: 8},
	} {
		run := base
		run.CommitWorkers = cfg.CommitWorkers
		run.BuildWorkers = cfg.BuildWorkers
		run.ClockWorkers = cfg.ClockWorkers
		run.RDAPWorkers = cfg.RDAPWorkers
		run.IngestWorkers = cfg.IngestWorkers
		if got := render(run); !bytes.Equal(serial, got) {
			t.Errorf("commit-workers=%d build-workers=%d clock-workers=%d rdap-workers=%d ingest-workers=%d report diverges from serial",
				cfg.CommitWorkers, cfg.BuildWorkers, cfg.ClockWorkers, cfg.RDAPWorkers, cfg.IngestWorkers)
		}
	}
}

// TestSerialParallelProbeCampaignsIdentical: the same byte-identity
// must hold for the probe engine — per-domain backend calls
// (ProbeWorkers=0), one batch per round (ProbeWorkers=1), and eight
// contiguous batch slices (ProbeWorkers=8), alone and stacked with all
// five existing engines. Batch results are positional and the apply
// stage delivers observations serially in admission order, so probe
// width is unobservable to a campaign.
func TestSerialParallelProbeCampaignsIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("four full campaigns")
	}
	base := RunConfig{Seed: 59, Scale: 0.0008, Weeks: 2, WatchSampleRate: 1.0, ProbeMail: true}
	render := func(cfg RunConfig) []byte {
		r := Run(cfg)
		var buf bytes.Buffer
		if err := WriteReport(&buf, r); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(base)
	for _, cfg := range []RunConfig{
		{ProbeWorkers: 1},
		{ProbeWorkers: 8},
		{ProbeWorkers: 8, CommitWorkers: 8, BuildWorkers: 8, ClockWorkers: 8, RDAPWorkers: 8, IngestWorkers: 8},
	} {
		run := base
		run.ProbeWorkers = cfg.ProbeWorkers
		run.CommitWorkers = cfg.CommitWorkers
		run.BuildWorkers = cfg.BuildWorkers
		run.ClockWorkers = cfg.ClockWorkers
		run.RDAPWorkers = cfg.RDAPWorkers
		run.IngestWorkers = cfg.IngestWorkers
		if got := render(run); !bytes.Equal(serial, got) {
			t.Errorf("probe-workers=%d (stacked=%v) report diverges from serial",
				cfg.ProbeWorkers, cfg.IngestWorkers > 0)
		}
	}
}

// TestSerialBatchedClockCampaignsIdentical: the same byte-identity must
// hold for the event engine's drain mode — the serial heap-order drain
// (ClockWorkers=0), batch-firing with a single-width pool
// (ClockWorkers=1, which degenerates to exact serial order), and a wide
// pool (ClockWorkers=8), alone and stacked with the batched ingest and
// dispatch engines so parallel-marked due-timer cohorts actually fire
// concurrently. This is the acceptance bar for the timer-wheel engine:
// Run and RunBatched(N) are unobservable to a campaign.
func TestSerialBatchedClockCampaignsIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("four full campaigns")
	}
	base := RunConfig{Seed: 41, Scale: 0.0008, Weeks: 2, WatchSampleRate: 1.0, ProbeMail: true}
	render := func(cfg RunConfig) []byte {
		r := Run(cfg)
		var buf bytes.Buffer
		if err := WriteReport(&buf, r); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(base)
	for _, cfg := range []RunConfig{
		{ClockWorkers: 1},
		{ClockWorkers: 8},
		{ClockWorkers: 8, RDAPWorkers: 8, IngestWorkers: 8},
	} {
		run := base
		run.ClockWorkers = cfg.ClockWorkers
		run.RDAPWorkers = cfg.RDAPWorkers
		run.IngestWorkers = cfg.IngestWorkers
		if got := render(run); !bytes.Equal(serial, got) {
			t.Errorf("clock-workers=%d rdap-workers=%d ingest-workers=%d report diverges from serial",
				cfg.ClockWorkers, cfg.RDAPWorkers, cfg.IngestWorkers)
		}
	}
}

// TestSerialParallelApplyCampaignsIdentical: the acceptance bar for the
// apply engine — a fixed-seed campaign must render byte-identical
// evaluation reports whether stage 2 of every fleet round applies state
// and delivers observations inline (ApplyWorkers=0), through a
// single-worker fan-out (1), or across eight workers resequenced by the
// reorder buffer (8), alone and stacked with all eight prior engines
// (batched ingest, async RDAP dispatch, batched clock drain, optimistic
// lookahead, parallel build and commit, batched probes, and a world
// snapshot shared between the stacked runs). Engine runs must also
// actually fan out: every probe counts one apply and one in-order
// release.
func TestSerialParallelApplyCampaignsIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("five full campaigns")
	}
	base := RunConfig{Seed: 67, Scale: 0.0008, Weeks: 2, WatchSampleRate: 1.0, ProbeMail: true}
	render := func(cfg RunConfig) ([]byte, *Results) {
		r := Run(cfg)
		var buf bytes.Buffer
		if err := WriteReport(&buf, r); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), r
	}
	serial, _ := render(base)
	snap := filepath.Join(t.TempDir(), "world.dsnap")
	for _, cfg := range []RunConfig{
		{ApplyWorkers: 1},
		{ApplyWorkers: 8},
		{ApplyWorkers: 8, ProbeWorkers: 8, LookaheadWindow: 8, ClockWorkers: 8,
			CommitWorkers: 8, BuildWorkers: 8, RDAPWorkers: 8, IngestWorkers: 8,
			SnapshotPath: snap},
	} {
		run := base
		run.ApplyWorkers = cfg.ApplyWorkers
		run.ProbeWorkers = cfg.ProbeWorkers
		run.LookaheadWindow = cfg.LookaheadWindow
		run.ClockWorkers = cfg.ClockWorkers
		run.CommitWorkers = cfg.CommitWorkers
		run.BuildWorkers = cfg.BuildWorkers
		run.RDAPWorkers = cfg.RDAPWorkers
		run.IngestWorkers = cfg.IngestWorkers
		run.SnapshotPath = cfg.SnapshotPath
		got, res := render(run)
		if !bytes.Equal(serial, got) {
			t.Errorf("apply-workers=%d (stacked=%v) report diverges from serial",
				cfg.ApplyWorkers, cfg.IngestWorkers > 0)
		}
		fr := res.Fleet.Report()
		if fr.ParallelApplies != fr.Probes || fr.ReorderReleases != fr.Probes {
			t.Errorf("apply-workers=%d: applies=%d releases=%d, want both == probes=%d",
				cfg.ApplyWorkers, fr.ParallelApplies, fr.ReorderReleases, fr.Probes)
		}
	}
}
