package analysis

import (
	"bytes"
	"testing"
)

// TestCampaignDeterminism: identical run configurations must produce
// byte-identical evaluation reports — the property that makes every
// number in EXPERIMENTS.md reproducible.
func TestCampaignDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two full campaigns")
	}
	cfg := RunConfig{Seed: 31, Scale: 0.0008, Weeks: 2, WatchSampleRate: 1.0, ProbeMail: true}
	render := func() []byte {
		r := Run(cfg)
		var buf bytes.Buffer
		if err := WriteReport(&buf, r); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := render()
	b := render()
	if !bytes.Equal(a, b) {
		t.Fatal("identical seeds produced different reports")
	}
	// A different seed must actually change the world.
	cfg.Seed = 32
	c := render()
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical reports")
	}
}

// TestSerialParallelCampaignsIdentical: a fixed-seed campaign must render
// byte-identical evaluation reports (Tables 1–5, Figures 1–2, every
// headline) whether the pipeline ingests per-event, in single-worker
// micro-batches, or with a wide screening worker pool. This is the
// determinism contract of the sharded batch engine: per-domain decision
// derivation plus in-order admission make ingest mode unobservable.
func TestSerialParallelCampaignsIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("three full campaigns")
	}
	base := RunConfig{Seed: 17, Scale: 0.0008, Weeks: 2, WatchSampleRate: 1.0, ProbeMail: true}
	render := func(cfg RunConfig) []byte {
		r := Run(cfg)
		var buf bytes.Buffer
		if err := WriteReport(&buf, r); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(base)
	for _, workers := range []int{1, 8} {
		cfg := base
		cfg.IngestWorkers = workers
		if got := render(cfg); !bytes.Equal(serial, got) {
			t.Errorf("ingest-workers=%d report diverges from serial", workers)
		}
	}
}
