// Package analysis turns a completed simulation run into the paper's
// evaluation artifacts: Tables 1–5, Figures 1–2, and the §4.1–§4.4
// headline statistics, each rendered in the same shape the paper reports.
package analysis

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// CDF is an empirical cumulative distribution over durations.
type CDF struct {
	sorted []time.Duration
}

// NewCDF builds a CDF from samples (copied and sorted).
func NewCDF(samples []time.Duration) *CDF {
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return &CDF{sorted: s}
}

// Len returns the sample count.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X ≤ x).
func (c *CDF) At(x time.Duration) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1).
func (c *CDF) Quantile(q float64) time.Duration {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	i := int(q * float64(len(c.sorted)))
	if i >= len(c.sorted) {
		i = len(c.sorted) - 1
	}
	return c.sorted[i]
}

// Figure1Buckets are the x-axis ticks of the paper's Figure 1.
var Figure1Buckets = []time.Duration{
	30 * time.Second, time.Minute, 2 * time.Minute, 5 * time.Minute,
	15 * time.Minute, 30 * time.Minute, time.Hour, 2 * time.Hour,
	3 * time.Hour, 6 * time.Hour, 12 * time.Hour, 24 * time.Hour,
	48 * time.Hour,
}

// Figure2Buckets are the x-axis ticks of Figure 2 (1h..24h).
var Figure2Buckets = func() []time.Duration {
	var b []time.Duration
	for h := 1; h <= 24; h++ {
		b = append(b, time.Duration(h)*time.Hour)
	}
	return b
}()

// FormatDuration renders a bucket boundary like the paper's axis labels.
func FormatDuration(d time.Duration) string {
	switch {
	case d < time.Minute:
		return fmt.Sprintf("%ds", int(d.Seconds()))
	case d < time.Hour:
		return fmt.Sprintf("%dm", int(d.Minutes()))
	case d < 24*time.Hour:
		return fmt.Sprintf("%dh", int(d.Hours()))
	default:
		return fmt.Sprintf("%dd", int(d.Hours()/24))
	}
}

// Series is a named CDF evaluated over fixed buckets.
type Series struct {
	Name   string
	Values []float64 // CDF value at each bucket
}

// CDFTable renders one or more series over buckets as an aligned text
// table — the textual stand-in for the paper's figures.
func CDFTable(title string, buckets []time.Duration, series []Series) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-12s", "bucket")
	for _, s := range series {
		fmt.Fprintf(&sb, "%10s", truncate(s.Name, 10))
	}
	sb.WriteByte('\n')
	for i, b := range buckets {
		fmt.Fprintf(&sb, "%-12s", "≤"+FormatDuration(b))
		for _, s := range series {
			v := 0.0
			if i < len(s.Values) {
				v = s.Values[i]
			}
			fmt.Fprintf(&sb, "%10.3f", v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render produces an aligned textual table.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// Pct formats a ratio as a percentage string.
func Pct(num, den int) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}

// Count formats an integer with thousands separators, as the paper's
// tables do.
func Count(n int) string {
	s := fmt.Sprintf("%d", n)
	if len(s) <= 3 {
		return s
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	return strings.Join(parts, " ")
}
