package analysis

import (
	"sort"
	"time"

	"darkdns/internal/registry"
	"darkdns/internal/simclock"
)

// ZoneCadence is the result of SOA-serial probing for one TLD — the
// paper's §4.1 validation ("we validated this assumption by probing the
// zones of Figure 1 for SOA serial changes, and found consistent
// timestamps").
type ZoneCadence struct {
	TLD             string
	Changes         int
	MedianInterval  time.Duration
	MinimumInterval time.Duration
}

// MeasureZoneCadence probes a registry's SOA serial every probeEvery for
// the given window on clk, recording the intervals between observed serial
// changes. The registry must be receiving registrations during the window
// for serials to move; callers typically run this against a live world.
func MeasureZoneCadence(reg *registry.Registry, clk *simclock.Sim, probeEvery, window time.Duration) ZoneCadence {
	res := ZoneCadence{TLD: reg.TLD()}
	var intervals []time.Duration
	last := reg.Serial()
	lastChange := clk.Now()
	end := clk.Now().Add(window)
	t := simclock.NewTicker(clk, probeEvery, func(now time.Time) {
		s := reg.Serial()
		if s != last {
			intervals = append(intervals, now.Sub(lastChange))
			last = s
			lastChange = now
			res.Changes++
		}
	})
	clk.RunUntil(end)
	t.Stop()
	if len(intervals) > 0 {
		sort.Slice(intervals, func(i, j int) bool { return intervals[i] < intervals[j] })
		res.MedianInterval = intervals[len(intervals)/2]
		res.MinimumInterval = intervals[0]
	}
	return res
}
