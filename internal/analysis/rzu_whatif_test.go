package analysis

import (
	"testing"
	"time"
)

func TestRZUWhatIfClosesTheGap(t *testing.T) {
	r := testResults(t)
	res := RZUWhatIf(r, 5*time.Minute)
	if res.FastDeleted == 0 {
		t.Fatal("no fast-deleted population")
	}
	rzuShare := float64(res.RZUVisible) / float64(res.FastDeleted)
	ctShare := float64(res.CTDetected) / float64(res.FastDeleted)
	// The paper's thesis: RZU visibility dwarfs CT-based detection.
	if rzuShare <= ctShare {
		t.Errorf("RZU share %.3f should exceed CT share %.3f", rzuShare, ctShare)
	}
	// A 5-minute feed sees nearly every fast-deleted domain (they live
	// minutes to hours).
	if rzuShare < 0.90 {
		t.Errorf("RZU share %.3f, want ≥0.90", rzuShare)
	}
	if res.RZUOnlyExtra == 0 {
		t.Error("RZU should surface domains CT missed")
	}
	if res.BothVisible > res.CTDetected {
		t.Error("both-visible cannot exceed CT-detected")
	}
}

func TestRZUWhatIfCoarserIntervalsSeeLess(t *testing.T) {
	r := testResults(t)
	fine := RZUWhatIf(r, 5*time.Minute)
	day := RZUWhatIf(r, 24*time.Hour)
	if day.RZUVisible >= fine.RZUVisible {
		t.Errorf("daily updates (%d visible) should miss more than 5-minute updates (%d)",
			day.RZUVisible, fine.RZUVisible)
	}
	// The daily case is the CZDS status quo: roughly the snapshot-miss
	// population should be invisible (cf. the .nl 47 % never-in-zone).
	dayShare := float64(day.RZUVisible) / float64(day.FastDeleted)
	if dayShare > 0.75 {
		t.Errorf("daily visibility %.3f implausibly high", dayShare)
	}
}
