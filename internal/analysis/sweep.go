// Multi-world sweep engine: a seed × scale × policy campaign grid on top
// of persistent world snapshots. Each distinct (seed, world shape)
// compiles exactly once — phase one snapshots it to disk — and phase two
// fans the full cell grid out on a worker pool, every cell rebuilding
// its world from the shared snapshot (decode + parallel commit, no
// compile) under its own policy overrides. The outcome is one columnar
// result table (cell parameters + the Table 1 / Figure 1 headline
// numbers) for longitudinal comparison across policies — the
// cadence-vs-freshness question Afek & Litmanovich pose, asked of many
// worlds at once.
package analysis

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"darkdns/internal/columnar"
	"darkdns/internal/workpool"
	"darkdns/internal/worldsim"
)

// SweepPolicy is one campaign-policy point of a sweep grid: the knobs
// that change how a world is measured, never the world itself.
type SweepPolicy struct {
	// Name labels the policy in results ("" → derived from the knobs).
	Name string
	// ProbeCadence overrides the fleet's revalidation interval (0 keeps
	// the base config's).
	ProbeCadence time.Duration
	// LookaheadWindow overrides the clock drain's lookahead window (0
	// keeps the base config's).
	LookaheadWindow int
	// WatchSampleRate overrides the pipeline's watch sampling — the shed
	// policy (0 keeps the base config's).
	WatchSampleRate float64
}

// Label returns the policy's display name.
func (p SweepPolicy) Label() string {
	if p.Name != "" {
		return p.Name
	}
	return fmt.Sprintf("cad=%s/la=%d/ws=%g", p.ProbeCadence, p.LookaheadWindow, p.WatchSampleRate)
}

// SweepConfig describes a sweep grid. The cell set is the cross product
// Seeds × Scales × Policies; empty axes collapse to one entry taken from
// Base.
type SweepConfig struct {
	Seeds    []int64
	Scales   []float64
	Policies []SweepPolicy
	// Weeks applies to every cell (0 keeps Base.Weeks).
	Weeks int
	// Base supplies every RunConfig field the grid axes don't override
	// (engine widths, mail probing, ...).
	Base RunConfig
	// SnapshotDir is where phase one persists one snapshot per distinct
	// (seed, shape). Empty → a fresh temp directory.
	SnapshotDir string
	// Workers is the phase-two campaign fan-out width (≤1 = serial).
	Workers int
}

// SweepCell identifies one grid point.
type SweepCell struct {
	Seed   int64
	Scale  float64
	Policy SweepPolicy
}

// SweepResult is one completed cell: its parameters, the full campaign
// results, and the headline columns the result table carries.
type SweepResult struct {
	Cell    SweepCell
	Results *Results

	Domains     int     // ground-truth world size
	NRDs        int     // CT-detected NRDs (Table 1 total)
	Transients  int     // confirmed transients (Table 4 headline)
	Within15m   float64 // Figure 1: fraction certified within 15 min
	Within45m   float64 // Figure 1: fraction certified within 45 min
	MedianDelay time.Duration
	Elapsed     time.Duration // wall-clock campaign time
}

// SweepOutcome is a finished grid plus its sharing stats.
type SweepOutcome struct {
	Cells []*SweepResult
	// DistinctWorlds is how many (seed, shape) pairs phase one compiled
	// and snapshotted — the number of compile fan-outs the whole grid
	// cost, regardless of cell count.
	DistinctWorlds int
	SnapshotDir    string
}

// runConfig materializes one cell's RunConfig from the grid's base.
func (g *SweepConfig) runConfig(c SweepCell, snapshotPath string) RunConfig {
	rc := g.Base
	rc.Seed = c.Seed
	rc.Scale = c.Scale
	if g.Weeks > 0 {
		rc.Weeks = g.Weeks
	}
	if c.Policy.ProbeCadence > 0 {
		rc.ProbeCadence = c.Policy.ProbeCadence
	}
	if c.Policy.LookaheadWindow > 0 {
		rc.LookaheadWindow = c.Policy.LookaheadWindow
	}
	if c.Policy.WatchSampleRate > 0 {
		rc.WatchSampleRate = c.Policy.WatchSampleRate
	}
	rc.SnapshotPath = snapshotPath
	return rc
}

// worldConfig is the worldsim config a cell's campaign will build, used
// by phase one to compile and key the shared snapshot exactly as Run
// will look it up.
func (g *SweepConfig) worldConfig(seed int64, scale float64) worldsim.Config {
	rc := g.runConfig(SweepCell{Seed: seed, Scale: scale}, "")
	wcfg := worldsim.DefaultConfig(rc.Seed, rc.Scale)
	if rc.Weeks > 0 {
		wcfg.Weeks = rc.Weeks
	}
	wcfg.BuildWorkers = rc.BuildWorkers
	return wcfg
}

// Sweep executes the grid. Phase one compiles each distinct (seed,
// scale) world once — reusing any matching snapshot already in
// SnapshotDir — and phase two runs every cell's campaign from the shared
// snapshots on a Workers-wide pool. Cells sharing a world decode the
// same file; no cell recompiles.
func Sweep(grid SweepConfig) (*SweepOutcome, error) {
	if len(grid.Seeds) == 0 {
		seed := grid.Base.Seed
		if seed == 0 {
			seed = 1
		}
		grid.Seeds = []int64{seed}
	}
	if len(grid.Scales) == 0 {
		grid.Scales = []float64{grid.Base.Scale}
	}
	if len(grid.Policies) == 0 {
		grid.Policies = []SweepPolicy{{}}
	}
	dir := grid.SnapshotDir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "darkdns-sweep-*"); err != nil {
			return nil, err
		}
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}

	// Phase one: one snapshot per distinct (seed, scale). Serial over
	// worlds — each compile already fans out at Base.BuildWorkers.
	paths := make(map[[2]int64]string)
	distinct := 0
	for _, seed := range grid.Seeds {
		for _, scale := range grid.Scales {
			wcfg := grid.worldConfig(seed, scale)
			path := filepath.Join(dir, fmt.Sprintf("world-%d-%x.dsnap", seed, int64(scale*1e9)))
			if prev, err := worldsim.LoadSnapshotFile(path); err == nil && prev.Matches(wcfg) {
				paths[worldKey(seed, scale)] = path
				continue
			}
			ls := worldsim.CompileLayoutSet(wcfg)
			if err := worldsim.SaveSnapshotFile(path, ls); err != nil {
				return nil, fmt.Errorf("sweep: snapshot %s: %w", path, err)
			}
			paths[worldKey(seed, scale)] = path
			distinct++
		}
	}

	// Phase two: the full cell grid on the worker pool.
	var cells []SweepCell
	for _, seed := range grid.Seeds {
		for _, scale := range grid.Scales {
			for _, pol := range grid.Policies {
				cells = append(cells, SweepCell{Seed: seed, Scale: scale, Policy: pol})
			}
		}
	}
	out := &SweepOutcome{
		Cells:          make([]*SweepResult, len(cells)),
		DistinctWorlds: distinct,
		SnapshotDir:    dir,
	}
	workpool.Run(len(cells), grid.Workers, func(i int) {
		c := cells[i]
		start := time.Now()
		res := Run(grid.runConfig(c, paths[worldKey(c.Seed, c.Scale)]))
		sr := &SweepResult{Cell: c, Results: res, Elapsed: time.Since(start)}
		sr.Domains = res.World.Domains.Len()
		for _, row := range Table1(res) {
			sr.NRDs += row.Total
		}
		sr.Transients = len(res.Report.Confirmed)
		sr.Within15m, sr.Within45m, sr.MedianDelay = Figure1Headline(res)
		out.Cells[i] = sr
	})
	return out, nil
}

func worldKey(seed int64, scale float64) [2]int64 {
	return [2]int64{seed, int64(scale * 1e9)}
}

// sweepSchema is the columnar result-table layout WriteSweep emits.
func sweepSchema() columnar.Schema {
	return columnar.Schema{
		{Name: "seed", Type: columnar.TypeInt64},
		{Name: "scale", Type: columnar.TypeFloat64},
		{Name: "policy", Type: columnar.TypeString},
		{Name: "cadence_ns", Type: columnar.TypeInt64},
		{Name: "lookahead", Type: columnar.TypeInt64},
		{Name: "watch_sample", Type: columnar.TypeFloat64},
		{Name: "domains", Type: columnar.TypeInt64},
		{Name: "nrds", Type: columnar.TypeInt64},
		{Name: "transients", Type: columnar.TypeInt64},
		{Name: "within_15m", Type: columnar.TypeFloat64},
		{Name: "within_45m", Type: columnar.TypeFloat64},
		{Name: "median_delay_ns", Type: columnar.TypeInt64},
		{Name: "elapsed_ns", Type: columnar.TypeInt64},
	}
}

// WriteSweep emits the grid's result table as one self-describing
// columnar file (readable back with columnar.NewReader).
func WriteSweep(w io.Writer, out *SweepOutcome) error {
	cw := columnar.NewWriter(w, sweepSchema(), 0)
	for _, sr := range out.Cells {
		if sr == nil {
			continue
		}
		if err := cw.Append(
			columnar.Int(sr.Cell.Seed),
			columnar.Float(sr.Cell.Scale),
			columnar.String(sr.Cell.Policy.Label()),
			columnar.Int(int64(sr.Cell.Policy.ProbeCadence)),
			columnar.Int(int64(sr.Cell.Policy.LookaheadWindow)),
			columnar.Float(sr.Cell.Policy.WatchSampleRate),
			columnar.Int(int64(sr.Domains)),
			columnar.Int(int64(sr.NRDs)),
			columnar.Int(int64(sr.Transients)),
			columnar.Float(sr.Within15m),
			columnar.Float(sr.Within45m),
			columnar.Int(int64(sr.MedianDelay)),
			columnar.Int(int64(sr.Elapsed)),
		); err != nil {
			return err
		}
	}
	return cw.Close()
}
