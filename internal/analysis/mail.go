package analysis

// MailAdoption is the future-work mail-infrastructure measurement (§5):
// adoption of MX records and SPF policies among transient vs long-lived
// newly registered domains, from the fleet's extended probes.
type MailAdoption struct {
	TransientTotal int
	TransientMX    int
	TransientSPF   int
	NormalTotal    int
	NormalMX       int
	NormalSPF      int
}

// MailStats computes MX/SPF adoption over the fleet's watched domains,
// split by whether the domain was a confirmed transient. Requires a run
// whose fleet probed with ProbeMail enabled; otherwise all counters stay
// zero (the caller can detect this via the totals).
func MailStats(r *Results) MailAdoption {
	transient := make(map[string]bool, len(r.Report.Confirmed))
	for _, c := range r.Report.Confirmed {
		transient[c.Domain] = true
	}
	var m MailAdoption
	for _, st := range r.Fleet.States() {
		if !st.EverInZone {
			continue
		}
		if transient[st.Domain] {
			m.TransientTotal++
			if st.HasMX {
				m.TransientMX++
			}
			if st.HasSPF {
				m.TransientSPF++
			}
		} else {
			m.NormalTotal++
			if st.HasMX {
				m.NormalMX++
			}
			if st.HasSPF {
				m.NormalSPF++
			}
		}
	}
	return m
}
