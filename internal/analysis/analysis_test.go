package analysis

import (
	"strings"
	"sync"
	"testing"
	"time"

	"darkdns/internal/blocklist"
)

// sharedResults runs one campaign for the whole test package — the run is
// deterministic, so every experiment can assert against the same Results.
var (
	resOnce sync.Once
	res     *Results
)

func testResults(t *testing.T) *Results {
	t.Helper()
	resOnce.Do(func() {
		cfg := DefaultRunConfig()
		cfg.Seed = 17
		cfg.Scale = 0.004
		cfg.Weeks = 5
		cfg.ProbeMail = true
		res = Run(cfg)
	})
	return res
}

func TestMailAdoptionShape(t *testing.T) {
	r := testResults(t)
	m := MailStats(r)
	if m.NormalTotal == 0 || m.TransientTotal == 0 {
		t.Fatalf("empty mail stats: %+v", m)
	}
	normalMX := float64(m.NormalMX) / float64(m.NormalTotal)
	transMX := float64(m.TransientMX) / float64(m.TransientTotal)
	if normalMX <= transMX {
		t.Errorf("normal MX adoption %.3f should exceed transient %.3f", normalMX, transMX)
	}
	if normalMX < 0.40 || normalMX > 0.70 {
		t.Errorf("normal MX adoption %.3f outside [0.40, 0.70]", normalMX)
	}
	transSPF := float64(m.TransientSPF) / float64(m.TransientTotal)
	if transSPF == 0 {
		t.Error("transient SPF adoption should be non-zero")
	}
}

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]time.Duration{1 * time.Hour, 2 * time.Hour, 3 * time.Hour, 4 * time.Hour})
	if got := c.At(2 * time.Hour); got != 0.5 {
		t.Errorf("At(2h) = %v", got)
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %v", got)
	}
	if got := c.At(5 * time.Hour); got != 1 {
		t.Errorf("At(5h) = %v", got)
	}
	if q := c.Quantile(0.5); q != 3*time.Hour {
		t.Errorf("Quantile(0.5) = %v", q)
	}
	if q := c.Quantile(0); q != time.Hour {
		t.Errorf("Quantile(0) = %v", q)
	}
	if q := c.Quantile(1); q != 4*time.Hour {
		t.Errorf("Quantile(1) = %v", q)
	}
	empty := NewCDF(nil)
	if empty.At(time.Hour) != 0 || empty.Quantile(0.5) != 0 || empty.Len() != 0 {
		t.Error("empty CDF misbehaves")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "T", Headers: []string{"a", "bb"}}
	tbl.AddRow("xxx", "1")
	out := tbl.Render()
	if !strings.Contains(out, "xxx") || !strings.Contains(out, "bb") {
		t.Errorf("render:\n%s", out)
	}
}

func TestCountFormatting(t *testing.T) {
	cases := map[int]string{1: "1", 999: "999", 1000: "1 000", 1234567: "1 234 567"}
	for in, want := range cases {
		if got := Count(in); got != want {
			t.Errorf("Count(%d) = %q, want %q", in, got, want)
		}
	}
	if Pct(1, 0) != "n/a" || Pct(1, 4) != "25.0%" {
		t.Error("Pct")
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[time.Duration]string{
		30 * time.Second: "30s", 2 * time.Minute: "2m",
		3 * time.Hour: "3h", 48 * time.Hour: "2d",
	}
	for in, want := range cases {
		if got := FormatDuration(in); got != want {
			t.Errorf("FormatDuration(%v) = %q, want %q", in, got, want)
		}
	}
}

// --- Shape assertions against the paper -----------------------------------

func TestTable1Shape(t *testing.T) {
	r := testResults(t)
	rows := Table1(r)
	if len(rows) < 10 {
		t.Fatalf("only %d TLD rows", len(rows))
	}
	if rows[0].TLD != "com" {
		t.Errorf("top TLD = %s, want com", rows[0].TLD)
	}
	var total, zoneTotal int
	for _, row := range rows {
		total += row.Total
		zoneTotal += row.ZoneNRD
		if row.TLD == "nl" {
			t.Error("ccTLD must not appear in Table 1 (no CZDS zone)")
		}
	}
	// Aggregate coverage ≈ 42 % (paper Table 1 Total row).
	det := 0
	for _, row := range rows {
		det += int(float64(row.ZoneNRD) * row.Coverage)
	}
	cov := float64(det) / float64(zoneTotal)
	if cov < 0.30 || cov > 0.55 {
		t.Errorf("aggregate coverage %.3f outside [0.30, 0.55] (paper: 0.42)", cov)
	}
	// com's share of CT NRDs ≈ 55 %.
	comShare := float64(rows[0].Total) / float64(total)
	if comShare < 0.40 || comShare > 0.70 {
		t.Errorf("com share %.3f outside [0.40, 0.70] (paper: 0.55)", comShare)
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "com") || !strings.Contains(out, "Total") {
		t.Errorf("render:\n%s", out)
	}
}

func TestFigure1Shape(t *testing.T) {
	r := testResults(t)
	buckets, series := Figure1(r)
	if len(series) < 3 {
		t.Fatalf("only %d series", len(series))
	}
	all := series[len(series)-1]
	if all.Name != "All" {
		t.Fatalf("last series %q, want All", all.Name)
	}
	within15, within45, median := Figure1Headline(r)
	// Paper: ≈30 % within 15 min, 50 % within 45 min.
	if within15 < 0.15 || within15 > 0.60 {
		t.Errorf("within-15m %.3f outside [0.15, 0.60] (paper ≈0.30)", within15)
	}
	if within45 < 0.35 || within45 > 0.80 {
		t.Errorf("within-45m %.3f outside [0.35, 0.80] (paper ≈0.50)", within45)
	}
	if median > 3*time.Hour {
		t.Errorf("median detection delay %v implausibly slow", median)
	}
	// com (60 s zone cadence) must be detected faster than a slow-cadence
	// gTLD at the 15-minute mark.
	idx := func(name string) int {
		for i, s := range series {
			if s.Name == name {
				return i
			}
		}
		return -1
	}
	bucket15 := -1
	for i, b := range buckets {
		if b == 15*time.Minute {
			bucket15 = i
		}
	}
	if ci, si := idx("com"), idx("shop"); ci >= 0 && si >= 0 && bucket15 >= 0 {
		if series[ci].Values[bucket15] <= series[si].Values[bucket15] {
			t.Errorf("com CDF@15m (%.3f) should exceed shop's (%.3f): zone cadence",
				series[ci].Values[bucket15], series[si].Values[bucket15])
		}
	}
	// CDFs must be monotone.
	for _, s := range series {
		for i := 1; i < len(s.Values); i++ {
			if s.Values[i] < s.Values[i-1] {
				t.Fatalf("series %s not monotone", s.Name)
			}
		}
	}
}

func TestNSStabilityShape(t *testing.T) {
	r := testResults(t)
	kept, total := NSStability(r)
	if total == 0 {
		t.Fatal("no watched domains")
	}
	share := float64(kept) / float64(total)
	// Paper §4.1: 97.5 % kept their NS infrastructure for 24 h.
	if share < 0.95 || share > 0.995 {
		t.Errorf("NS-kept share %.4f outside [0.95, 0.995] (paper 0.975)", share)
	}
}

func TestTable2Shape(t *testing.T) {
	r := testResults(t)
	rows := Table2(r)
	if len(rows) == 0 {
		t.Fatal("no transient rows")
	}
	if rows[0].TLD != "com" {
		t.Errorf("top transient TLD = %s, want com", rows[0].TLD)
	}
	// Transients ≈1 % of CT NRDs (paper: 68,042 of 6.8 M).
	trans := 0
	for _, row := range rows {
		trans += row.Total
	}
	nrds := r.Pipeline.Len()
	share := float64(trans) / float64(nrds)
	if share < 0.003 || share > 0.03 {
		t.Errorf("transient share %.4f outside [0.003, 0.03] (paper ≈0.01)", share)
	}
	out := RenderTable2(rows)
	if !strings.Contains(out, "Total") {
		t.Errorf("render:\n%s", out)
	}
}

func TestRDAPFailureShape(t *testing.T) {
	r := testResults(t)
	s := RDAPFailureStats(r)
	if s.NRDTotal == 0 || s.TransTotal == 0 {
		t.Fatal("empty stats")
	}
	nrdRate := float64(s.NRDFailed) / float64(s.NRDTotal)
	transRate := float64(s.TransFailed) / float64(s.TransTotal)
	// Paper: ≈3 % overall, ≈34 % for transients.
	if nrdRate > 0.10 {
		t.Errorf("overall RDAP failure %.3f > 0.10 (paper 0.03)", nrdRate)
	}
	if transRate < 0.15 || transRate > 0.55 {
		t.Errorf("transient RDAP failure %.3f outside [0.15, 0.55] (paper 0.34)", transRate)
	}
	if transRate <= nrdRate*2 {
		t.Errorf("transient failure (%.3f) should dwarf overall (%.3f)", transRate, nrdRate)
	}
	// ≈97 % of failed transients existed in historical zone data.
	if s.TransFailed > 20 {
		hist := float64(s.FailedHistoric) / float64(s.TransFailed)
		if hist < 0.80 {
			t.Errorf("historic share %.3f < 0.80 (paper 0.97)", hist)
		}
	}
}

func TestFigure2Shape(t *testing.T) {
	r := testResults(t)
	_, s, cdf := Figure2(r)
	if cdf.Len() < 20 {
		t.Fatalf("only %d lifetime samples", cdf.Len())
	}
	// Paper §4.2.1: >50 % die within 6 h.
	at6h := cdf.At(6 * time.Hour)
	if at6h < 0.45 {
		t.Errorf("CDF@6h = %.3f, want ≥0.45 (paper >0.50)", at6h)
	}
	if got := cdf.At(26 * time.Hour); got < 0.99 {
		t.Errorf("CDF@26h = %.3f, transients must die within a day", got)
	}
	for i := 1; i < len(s.Values); i++ {
		if s.Values[i] < s.Values[i-1] {
			t.Fatal("figure 2 CDF not monotone")
		}
	}
}

func TestTable3Shape(t *testing.T) {
	r := testResults(t)
	rows := Table3(r)
	if len(rows) < 5 {
		t.Fatalf("only %d registrar rows", len(rows))
	}
	// At test scale the confirmed-transient sample is small, so assert
	// GoDaddy leads or trails the leader narrowly rather than demanding
	// strict rank order.
	var gd ShareRow
	for _, row := range rows {
		if row.Name == "GoDaddy" {
			gd = row
		}
	}
	if gd.Name == "" {
		t.Fatal("GoDaddy missing from Table 3")
	}
	if rows[0].Name != "GoDaddy" && rows[1].Name != "GoDaddy" {
		t.Errorf("GoDaddy not in top 2: %v, %v", rows[0].Name, rows[1].Name)
	}
	if gd.Share < 0.10 || gd.Share > 0.30 {
		t.Errorf("GoDaddy share %.3f outside [0.10, 0.30] (paper 0.194)", gd.Share)
	}
	out := RenderShares("Table 3", rows)
	if !strings.Contains(out, "GoDaddy") {
		t.Errorf("render:\n%s", out)
	}
}

func TestTable4Shape(t *testing.T) {
	r := testResults(t)
	rows := Table4(r)
	if len(rows) == 0 {
		t.Fatal("no DNS hosting rows")
	}
	if rows[0].Name != "cloudflare.com" {
		t.Errorf("top DNS SLD = %s, want cloudflare.com (Table 4)", rows[0].Name)
	}
	if rows[0].Share < 0.35 || rows[0].Share > 0.65 {
		t.Errorf("Cloudflare share %.3f outside [0.35, 0.65] (paper 0.495)", rows[0].Share)
	}
}

func TestTable5Shape(t *testing.T) {
	r := testResults(t)
	rows := Table5(r)
	if len(rows) == 0 {
		t.Fatal("no web hosting rows")
	}
	if !strings.Contains(rows[0].Name, "13335") {
		t.Errorf("top web AS = %s, want AS13335 Cloudflare (Table 5)", rows[0].Name)
	}
	if rows[0].Share < 0.25 || rows[0].Share > 0.50 {
		t.Errorf("AS13335 share %.3f outside [0.25, 0.50] (paper 0.362)", rows[0].Share)
	}
}

func TestBlocklistShape(t *testing.T) {
	r := testResults(t)
	pollEnd := r.WindowEnd.Add(90 * 24 * time.Hour)
	early, trans := BlocklistCoverage(r, pollEnd)
	if early.Population == 0 {
		t.Fatal("no early-removed population")
	}
	earlyRate := float64(early.Flagged) / float64(early.Population)
	// Paper: 6.6 % of early-removed NRDs flagged.
	if earlyRate < 0.03 || earlyRate > 0.12 {
		t.Errorf("early-removed flag rate %.4f outside [0.03, 0.12] (paper 0.066)", earlyRate)
	}
	// Of flagged early-removed, most were active when flagged (paper
	// 92 %; at the short test window deleted-before-window-end selects
	// shorter lifetimes, so the band is looser here than in the full
	// 13-week reproduction).
	if early.Flagged > 20 {
		active := float64(early.Timing[blocklist.WhileActive]+early.Timing[blocklist.OnRegistrationDay]) / float64(early.Flagged)
		if active < 0.55 {
			t.Errorf("while-active share %.3f < 0.55 (paper 0.92)", active)
		}
	}
	if trans.Population == 0 {
		t.Fatal("no transient population")
	}
	transRate := float64(trans.Flagged) / float64(trans.Population)
	// Paper: 5 % of transients flagged…
	if transRate > 0.15 {
		t.Errorf("transient flag rate %.4f > 0.15 (paper 0.05)", transRate)
	}
	// …and of those, ≈94 % after deletion.
	if trans.Flagged > 10 {
		post := float64(trans.Timing[blocklist.AfterDeletion]) / float64(trans.Flagged)
		if post < 0.75 {
			t.Errorf("post-deletion share %.3f < 0.75 (paper 0.94)", post)
		}
	}
}

func TestNODComparisonShape(t *testing.T) {
	r := testResults(t)
	day := r.WindowStart.Add(14 * 24 * time.Hour)
	cmp := CompareNOD(r, day)
	ct := cmp.Both + cmp.CTOnly
	nod := cmp.Both + cmp.NODOnly
	if ct == 0 || nod == 0 {
		t.Fatalf("degenerate comparison: %+v", cmp)
	}
	// Paper: SIE NOD sees ≈5 % more NRDs; overlap ≈60 %.
	ratio := float64(nod) / float64(ct)
	if ratio < 0.85 || ratio > 1.35 {
		t.Errorf("NOD/CT ratio %.3f outside [0.85, 1.35] (paper ≈1.05)", ratio)
	}
	overlap := float64(cmp.Both) / float64(ct)
	if overlap < 0.45 || overlap > 0.80 {
		t.Errorf("overlap %.3f outside [0.45, 0.80] (paper ≈0.60)", overlap)
	}
	// Each source must see a distinct subset.
	if cmp.CTOnly == 0 || cmp.NODOnly == 0 {
		t.Errorf("sources fully nested: %+v", cmp)
	}
}

func TestCCTLDGroundTruthShape(t *testing.T) {
	r := testResults(t)
	res := CCTLDGroundTruth(r)
	if res.FastDeleted == 0 {
		t.Skip("no ccTLD fast-deleted domains at this scale")
	}
	if res.NeverInZone == 0 {
		t.Skip("no never-in-zone ccTLD domains at this scale")
	}
	// Roughly half the fast-deleted population evades the daily snapshot
	// (paper: 334/714 ≈ 0.47).
	miss := float64(res.NeverInZone) / float64(res.FastDeleted)
	if miss < 0.25 || miss > 0.75 {
		t.Errorf("never-in-zone share %.3f outside [0.25, 0.75] (paper 0.47)", miss)
	}
	// Pipeline recall ≈30 % — the paper's headline blind spot.
	if res.NeverInZone >= 10 {
		if res.Recall < 0.10 || res.Recall > 0.60 {
			t.Errorf("ccTLD recall %.3f outside [0.10, 0.60] (paper 0.296)", res.Recall)
		}
	}
}

func TestCDFTableRender(t *testing.T) {
	r := testResults(t)
	buckets, series := Figure1(r)
	out := CDFTable("Figure 1", buckets, series)
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "≤15m") {
		t.Errorf("render:\n%s", out)
	}
}
