package analysis

import (
	"time"

	"darkdns/internal/worldsim"
)

// RZUWhatIf quantifies the paper's §5 proposal: if registries published
// rapid zone updates every interval (Verisign's historical service: 5
// minutes), what fraction of ground-truth fast-deleted domains would a
// subscriber observe, versus what the CT-based method actually caught?
//
// A fast-deleted domain is RZU-visible when it stays in the live zone
// across at least one publication boundary — i.e. its in-zone residency
// exceeds the gap to the next tick. Because the registry zone itself
// rebuilds on its own cadence, residency is lifetime minus the initial
// zone-entry wait; the computation below uses the ground-truth ledger's
// actual InZoneAt/OutOfZoneAt interval.
type RZUWhatIfResult struct {
	Interval     time.Duration
	FastDeleted  int // ground-truth fast-deleted registrations (gTLD)
	RZUVisible   int // would appear in ≥1 rapid update batch
	CTDetected   int // actually detected by the CT pipeline
	BothVisible  int
	RZUOnlyExtra int // visible to RZU but missed by CT
}

// RZUWhatIf computes visibility under a hypothetical RZU service with the
// given publication interval.
func RZUWhatIf(r *Results, interval time.Duration) RZUWhatIfResult {
	res := RZUWhatIfResult{Interval: interval}
	ct := make(map[string]bool)
	for _, c := range r.Pipeline.Candidates() {
		ct[c.Domain] = true
	}
	r.World.Domains.Range(func(d *worldsim.Domain) {
		if !d.FastDelete || d.TLD == r.World.Cfg.CCTLD.TLD {
			return
		}
		reg := r.World.Registries[d.TLD]
		gt, ok := reg.Lookup(d.Name)
		if !ok {
			return
		}
		res.FastDeleted++
		detected := ct[d.Name]
		if detected {
			res.CTDetected++
		}
		if gt.InZoneAt.IsZero() {
			return // never entered the zone: invisible to everyone
		}
		out := gt.OutOfZoneAt
		if out.IsZero() {
			out = r.WindowEnd
		}
		// Visible if the in-zone interval crosses a publication tick.
		// Ticks fire at WindowStart + k·interval.
		sinceStart := gt.InZoneAt.Sub(r.WindowStart)
		nextTick := r.WindowStart.Add(sinceStart - (sinceStart % interval) + interval)
		if nextTick.Before(out) || nextTick.Equal(out) {
			res.RZUVisible++
			if detected {
				res.BothVisible++
			} else {
				res.RZUOnlyExtra++
			}
		}
	})
	return res
}
