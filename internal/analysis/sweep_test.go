package analysis

import (
	"bytes"
	"errors"
	"io"
	"path/filepath"
	"testing"
	"time"

	"darkdns/internal/columnar"
	"darkdns/internal/worldsim"
)

// TestSnapshotCampaignsIdentical: the acceptance bar for the snapshot
// engine — a fixed-seed campaign must render a byte-identical evaluation
// report whether the world was compiled fresh or decoded from a
// persistent snapshot, alone and stacked with all seven prior engines.
func TestSnapshotCampaignsIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("three full campaigns")
	}
	base := RunConfig{Seed: 71, Scale: 0.0008, Weeks: 2, WatchSampleRate: 1.0, ProbeMail: true}
	render := func(cfg RunConfig) []byte {
		r := Run(cfg)
		var buf bytes.Buffer
		if err := WriteReport(&buf, r); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(base)

	path := filepath.Join(t.TempDir(), "world.dsnap")
	if err := worldsim.SaveSnapshotFile(path, worldsim.CompileLayoutSet(
		func() worldsim.Config {
			wcfg := worldsim.DefaultConfig(base.Seed, base.Scale)
			wcfg.Weeks = base.Weeks
			return wcfg
		}())); err != nil {
		t.Fatal(err)
	}

	snap := base
	snap.SnapshotPath = path
	loadsBefore := worldsim.SnapshotLoadCount()
	if got := render(snap); !bytes.Equal(serial, got) {
		t.Error("snapshot-built campaign report diverges from compiled")
	}

	stacked := snap
	stacked.LookaheadWindow = 8
	stacked.ClockWorkers = 8
	stacked.ProbeWorkers = 8
	stacked.CommitWorkers = 8
	stacked.BuildWorkers = 8
	stacked.RDAPWorkers = 8
	stacked.IngestWorkers = 8
	if got := render(stacked); !bytes.Equal(serial, got) {
		t.Error("snapshot + all-engines campaign report diverges from serial compiled")
	}
	if worldsim.SnapshotLoadCount() != loadsBefore+2 {
		t.Error("snapshot campaigns did not both load from the snapshot")
	}
}

// TestSweepCompilesEachWorldOnce: a 2-seed × 1-scale × 3-policy grid (6
// cells) must compile exactly 2 worlds, every cell must complete, and
// the emitted columnar table must round-trip through columnar.Reader
// with the cell parameters intact.
func TestSweepCompilesEachWorldOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("six small campaigns")
	}
	grid := SweepConfig{
		Seeds:  []int64{1, 2},
		Scales: []float64{0.0006},
		Weeks:  2,
		Policies: []SweepPolicy{
			{Name: "paper", ProbeCadence: 10 * time.Minute},
			{Name: "fast", ProbeCadence: 2 * time.Minute, LookaheadWindow: 4},
			{Name: "shed", WatchSampleRate: 0.5},
		},
		Base:        RunConfig{WatchSampleRate: 1.0, ProbeMail: true},
		SnapshotDir: t.TempDir(),
		Workers:     3,
	}
	compilesBefore := worldsim.CompileCount()
	loadsBefore := worldsim.SnapshotLoadCount()
	out, err := Sweep(grid)
	if err != nil {
		t.Fatal(err)
	}
	nCells := len(grid.Seeds) * len(grid.Scales) * len(grid.Policies)
	if len(out.Cells) != nCells {
		t.Fatalf("cells: got %d, want %d", len(out.Cells), nCells)
	}
	wantWorlds := int64(len(grid.Seeds) * len(grid.Scales))
	if got := worldsim.CompileCount() - compilesBefore; got != wantWorlds {
		t.Errorf("compile fan-outs: got %d, want %d (each distinct world exactly once)", got, wantWorlds)
	}
	if out.DistinctWorlds != int(wantWorlds) {
		t.Errorf("DistinctWorlds = %d, want %d", out.DistinctWorlds, wantWorlds)
	}
	if got := worldsim.SnapshotLoadCount() - loadsBefore; got != int64(nCells) {
		t.Errorf("snapshot loads: got %d, want %d (every cell from snapshot)", got, nCells)
	}
	for i, sr := range out.Cells {
		if sr == nil || sr.Results == nil {
			t.Fatalf("cell %d incomplete", i)
		}
		if sr.Domains == 0 {
			t.Errorf("cell %d: empty world", i)
		}
	}

	// Cells sharing a (seed, policy-invariant) world must agree on ground
	// truth: same domain count for same seed across policies.
	bySeed := map[int64]int{}
	for _, sr := range out.Cells {
		if prev, ok := bySeed[sr.Cell.Seed]; ok && prev != sr.Domains {
			t.Errorf("seed %d: domain counts differ across policies (%d vs %d)", sr.Cell.Seed, prev, sr.Domains)
		}
		bySeed[sr.Cell.Seed] = sr.Domains
	}

	// Columnar output round-trips.
	var buf bytes.Buffer
	if err := WriteSweep(&buf, out); err != nil {
		t.Fatal(err)
	}
	r, err := columnar.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	policies := map[string]bool{}
	for {
		g, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < g.Rows; i++ {
			policies[g.Strs["policy"][i]] = true
			if g.Floats["scale"][i] != 0.0006 {
				t.Errorf("row %d: scale = %v", rows+i, g.Floats["scale"][i])
			}
		}
		rows += g.Rows
	}
	if rows != nCells {
		t.Errorf("result table: %d rows, want %d", rows, nCells)
	}
	for _, want := range []string{"paper", "fast", "shed"} {
		if !policies[want] {
			t.Errorf("result table missing policy %q", want)
		}
	}
}

// TestSweepReusesExistingSnapshots: a second sweep over the same
// directory must compile nothing.
func TestSweepReusesExistingSnapshots(t *testing.T) {
	if testing.Short() {
		t.Skip("two small campaigns")
	}
	grid := SweepConfig{
		Seeds:       []int64{5},
		Scales:      []float64{0.0005},
		Weeks:       2,
		Base:        RunConfig{WatchSampleRate: 1.0},
		SnapshotDir: t.TempDir(),
	}
	if _, err := Sweep(grid); err != nil {
		t.Fatal(err)
	}
	compilesBefore := worldsim.CompileCount()
	out, err := Sweep(grid)
	if err != nil {
		t.Fatal(err)
	}
	if got := worldsim.CompileCount() - compilesBefore; got != 0 {
		t.Errorf("re-sweep compiled %d worlds, want 0", got)
	}
	if out.DistinctWorlds != 0 {
		t.Errorf("re-sweep DistinctWorlds = %d, want 0", out.DistinctWorlds)
	}
}
