package analysis

import (
	"testing"
	"time"

	"darkdns/internal/worldsim"
)

// TestSOACadenceValidation reproduces the §4.1 validation: probing TLD
// zones for SOA serial changes recovers their operational update cadence
// — com near 60 s, slow gTLDs near their 15–30 minute rebuild intervals.
func TestSOACadenceValidation(t *testing.T) {
	cfg := worldsim.DefaultConfig(23, 0.01)
	cfg.Weeks = 1
	w := worldsim.New(cfg)
	defer w.Stop()

	// com: rebuilds every 60 s; with 0.01-scale registration pressure
	// serials move nearly every rebuild. Probe every 10 s for 6 hours.
	com := MeasureZoneCadence(w.Registries["com"], w.Clock, 10*time.Second, 6*time.Hour)
	if com.Changes < 10 {
		t.Fatalf("com: only %d serial changes observed", com.Changes)
	}
	if com.MinimumInterval < 50*time.Second || com.MinimumInterval > 90*time.Second {
		t.Errorf("com minimum serial interval %v, want ≈60s", com.MinimumInterval)
	}

	// A slow-cadence gTLD: minimum interval must reflect the 20-minute
	// rebuild cycle.
	shop := MeasureZoneCadence(w.Registries["shop"], w.Clock, time.Minute, 12*time.Hour)
	if shop.Changes < 3 {
		t.Fatalf("shop: only %d serial changes observed", shop.Changes)
	}
	if shop.MinimumInterval < 15*time.Minute || shop.MinimumInterval > 45*time.Minute {
		t.Errorf("shop minimum serial interval %v, want ≈20m", shop.MinimumInterval)
	}
	if com.MinimumInterval >= shop.MinimumInterval {
		t.Errorf("com (%v) must rebuild faster than shop (%v)", com.MinimumInterval, shop.MinimumInterval)
	}
}
