package measure

import (
	"fmt"
	"net/netip"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"darkdns/internal/simclock"
	"darkdns/internal/workpool"
)

// fakeBatchBackend layers BatchBackend over the scripted fakeBackend and
// counts batch shapes so tests can prove the batch path actually ran.
type fakeBatchBackend struct {
	*fakeBackend
	batches  atomic.Int64
	maxBatch atomic.Int64
}

func (b *fakeBatchBackend) ProbeBatch(domains []string, mail bool) []ProbeResult {
	b.batches.Add(1)
	workpool.AtomicMax(&b.maxBatch, int64(len(domains)))
	out := make([]ProbeResult, len(domains))
	for i, d := range domains {
		pr := &out[i]
		pr.NS, pr.InZone = b.AuthoritativeNS(d)
		if pr.InZone {
			pr.V4 = b.LookupA(d)
			pr.V6 = b.LookupAAAA(d)
		}
	}
	return out
}

// TestBatchedRoundsDeterministicAcrossProbeWidths: the probe engine's
// half of the campaign determinism contract — a fixed schedule delivers
// byte-identical observation streams whether rounds probe per-domain
// (ProbeWorkers=0), as one batch (1), or as eight batch slices (8), and
// whichever clock drain mode runs them.
func TestBatchedRoundsDeterministicAcrossProbeWidths(t *testing.T) {
	type runMode struct {
		name    string
		workers int
		drain   func(*simclock.Sim)
	}
	advance := func(s *simclock.Sim) { s.Advance(49 * time.Hour) }
	modes := []runMode{
		{"per-domain", 0, advance},
		{"batch-w1", 1, advance},
		{"batch-w8", 8, advance},
		{"batch-w8-clock", 8, func(s *simclock.Sim) { s.RunUntilBatched(t0.Add(49*time.Hour), 8) }},
	}
	logs := make(map[string][]string)
	for _, m := range modes {
		b := &fakeBatchBackend{fakeBackend: newFakeBackend()}
		clk := simclock.NewSim(t0)
		cfg := DefaultConfig()
		cfg.ProbeWorkers = m.workers
		f := NewFleet(cfg, clk, b)
		var log []string
		f.OnObservation(func(o Observation) {
			log = append(log, fmt.Sprintf("%s|%s|%d|%v|%v|%v", o.At.Format(time.RFC3339), o.Domain, o.Worker, o.InZone, o.NS, o.V4))
		})
		for i := 0; i < 40; i++ {
			d := domainN(i)
			b.set(d, []string{"ns1.a.net"}, netip.MustParseAddr("192.0.2.1"))
			f.Watch(d)
		}
		clk.Advance(2 * time.Hour)
		for i := 0; i < 40; i += 3 {
			b.set(domainN(i), nil) // takedown wave
		}
		m.drain(clk)
		logs[m.name] = log
		if m.workers > 0 && b.batches.Load() == 0 {
			t.Errorf("%s: batch path never ran", m.name)
		}
		if m.workers == 0 && b.batches.Load() != 0 {
			t.Errorf("%s: serial mode must not call ProbeBatch", m.name)
		}
	}
	want := logs[modes[0].name]
	if len(want) == 0 {
		t.Fatal("no observations")
	}
	for _, m := range modes[1:] {
		if !reflect.DeepEqual(want, logs[m.name]) {
			t.Errorf("%s observation stream diverges from %s (%d vs %d)",
				m.name, modes[0].name, len(logs[m.name]), len(want))
		}
	}
}

// TestBatchSlicesPartitionRound: a 40-domain round at width 8 must
// arrive as 8 batches of 5 — contiguous admission-order slices, not one
// call per domain.
func TestBatchSlicesPartitionRound(t *testing.T) {
	b := &fakeBatchBackend{fakeBackend: newFakeBackend()}
	clk := simclock.NewSim(t0)
	cfg := DefaultConfig()
	cfg.ProbeWorkers = 8
	f := NewFleet(cfg, clk, b)
	for i := 0; i < 40; i++ {
		d := domainN(i)
		b.set(d, []string{"ns1.a.net"})
		f.Watch(d)
	}
	base := b.batches.Load() // 40 single-target admission probes
	clk.Advance(cfg.Interval + time.Second)
	if f.Report().Rounds == 0 {
		t.Fatal("no rounds ran")
	}
	if got := b.batches.Load() - base; got != 8 {
		t.Errorf("full round made %d ProbeBatch calls, want 8 slices", got)
	}
	if mx := b.maxBatch.Load(); mx != 5 {
		t.Errorf("max batch = %d, want 5 (40 domains over 8 slices)", mx)
	}
}

// TestRevalidateCadenceOverridesInterval: the Afek & Litmanovich knob —
// a RevalidatePolicy cadence replaces the default 10-minute interval, so
// an hour books 1 immediate + 12 five-minute probes instead of 7.
func TestRevalidateCadenceOverridesInterval(t *testing.T) {
	b := newFakeBackend()
	b.set("x.com", []string{"ns1.a.net"})
	clk := simclock.NewSim(t0)
	cfg := DefaultConfig()
	cfg.Revalidate = RevalidatePolicy{Cadence: 5 * time.Minute}
	f := NewFleet(cfg, clk, b)
	f.Watch("x.com")
	clk.Advance(time.Hour)
	st, ok := f.State("x.com")
	if !ok || st.Probes != 13 {
		t.Errorf("probes = %d under 5 m cadence, want 13", st.Probes)
	}
}
