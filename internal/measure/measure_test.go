package measure

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"darkdns/internal/simclock"
)

var t0 = time.Date(2023, 11, 1, 0, 0, 0, 0, time.UTC)

// fakeBackend is a mutable scripted DNS view.
type fakeBackend struct {
	mu sync.Mutex
	ns map[string][]string
	a  map[string][]netip.Addr
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{ns: make(map[string][]string), a: make(map[string][]netip.Addr)}
}

func (b *fakeBackend) set(domain string, ns []string, addrs ...netip.Addr) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ns == nil {
		delete(b.ns, domain)
		delete(b.a, domain)
		return
	}
	b.ns[domain] = ns
	b.a[domain] = addrs
}

func (b *fakeBackend) AuthoritativeNS(domain string) ([]string, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ns, ok := b.ns[domain]
	return ns, ok
}

func (b *fakeBackend) LookupA(domain string) []netip.Addr {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.a[domain]
}

func (b *fakeBackend) LookupAAAA(domain string) []netip.Addr { return nil }

func newFleet(backend Backend) (*Fleet, *simclock.Sim) {
	clk := simclock.NewSim(t0)
	return NewFleet(DefaultConfig(), clk, backend), clk
}

func TestWatchProbesEveryInterval(t *testing.T) {
	b := newFakeBackend()
	b.set("x.com", []string{"ns1.a.net"}, netip.MustParseAddr("192.0.2.1"))
	f, clk := newFleet(b)
	f.Watch("x.com")
	clk.Advance(time.Hour)
	st, ok := f.State("x.com")
	if !ok {
		t.Fatal("no state")
	}
	// Immediate probe + 6 interval probes in the first hour.
	if st.Probes != 7 {
		t.Errorf("probes = %d, want 7", st.Probes)
	}
	if !st.EverInZone || st.NSChanged {
		t.Errorf("state: %+v", st)
	}
}

func TestWatchStopsAfterWindow(t *testing.T) {
	b := newFakeBackend()
	b.set("x.com", []string{"ns1.a.net"})
	f, clk := newFleet(b)
	f.Watch("x.com")
	clk.Advance(49 * time.Hour)
	st, _ := f.State("x.com")
	probes := st.Probes
	if !st.Finished {
		t.Error("watch not finished after window")
	}
	clk.Advance(24 * time.Hour)
	st, _ = f.State("x.com")
	if st.Probes != probes {
		t.Error("probes continued after window")
	}
	// 48h at 10-minute cadence: immediate + 288 shots ≈ 289.
	if probes < 285 || probes > 292 {
		t.Errorf("probes = %d, want ≈289", probes)
	}
}

func TestRewatchIsNoop(t *testing.T) {
	b := newFakeBackend()
	b.set("x.com", []string{"ns1.a.net"})
	f, clk := newFleet(b)
	f.Watch("x.com")
	f.Watch("x.com")
	clk.Advance(10 * time.Minute)
	st, _ := f.State("x.com")
	if st.Probes != 3 { // immediate + one tick... double-watch would double this
		// immediate probe (1) + tick at 10m (1) = 2; a second Watch would add 2 more.
		if st.Probes != 2 {
			t.Errorf("probes = %d, re-watch duplicated scheduling", st.Probes)
		}
	}
	if f.Watched() != 1 {
		t.Errorf("Watched = %d", f.Watched())
	}
}

func TestNSChangeDetected(t *testing.T) {
	b := newFakeBackend()
	b.set("moving.com", []string{"ns1.old.net"})
	f, clk := newFleet(b)
	f.Watch("moving.com")
	clk.Advance(30 * time.Minute)
	b.set("moving.com", []string{"ns1.new.net"})
	clk.Advance(30 * time.Minute)
	st, _ := f.State("moving.com")
	if !st.NSChanged {
		t.Error("NS change not detected")
	}
	if len(st.FirstNS) != 1 || st.FirstNS[0] != "ns1.old.net" {
		t.Errorf("FirstNS: %v", st.FirstNS)
	}
	if len(st.LastNS) != 1 || st.LastNS[0] != "ns1.new.net" {
		t.Errorf("LastNS: %v", st.LastNS)
	}
}

func TestDeathDetection(t *testing.T) {
	b := newFakeBackend()
	b.set("shortlived.com", []string{"ns1.a.net"})
	f, clk := newFleet(b)
	f.Watch("shortlived.com")
	clk.Advance(2 * time.Hour)
	b.set("shortlived.com", nil) // removed from zone
	clk.Advance(time.Hour)
	st, _ := f.State("shortlived.com")
	if st.DeadAt.IsZero() {
		t.Fatal("death not detected")
	}
	// Last alive at the 2 h probe; dead at the next 10-minute tick.
	if !st.LastAliveAt.Equal(t0.Add(2 * time.Hour)) {
		t.Errorf("LastAliveAt = %v", st.LastAliveAt)
	}
	if !st.DeadAt.Equal(t0.Add(2*time.Hour + 10*time.Minute)) {
		t.Errorf("DeadAt = %v", st.DeadAt)
	}
}

func TestNeverInZone(t *testing.T) {
	b := newFakeBackend()
	f, clk := newFleet(b)
	f.Watch("ghost.com")
	clk.Advance(time.Hour)
	st, _ := f.State("ghost.com")
	if st.EverInZone || !st.DeadAt.IsZero() {
		t.Errorf("ghost state: %+v", st)
	}
}

func TestObserversReceiveProbes(t *testing.T) {
	b := newFakeBackend()
	b.set("x.com", []string{"ns2.b.net", "ns1.b.net"}, netip.MustParseAddr("192.0.2.7"))
	f, clk := newFleet(b)
	var got []Observation
	f.OnObservation(func(o Observation) { got = append(got, o) })
	f.Watch("x.com")
	clk.Advance(10 * time.Minute)
	if len(got) != 2 {
		t.Fatalf("observations = %d, want 2", len(got))
	}
	if got[0].NS[0] != "ns1.b.net" {
		t.Errorf("NS not sorted: %v", got[0].NS)
	}
	if len(got[0].V4) != 1 || got[0].V4[0].String() != "192.0.2.7" {
		t.Errorf("V4: %v", got[0].V4)
	}
}

func TestWorkersRoundRobin(t *testing.T) {
	b := newFakeBackend()
	f, clk := newFleet(b)
	var mu sync.Mutex
	workers := make(map[int]bool)
	f.OnObservation(func(o Observation) {
		mu.Lock()
		workers[o.Worker] = true
		mu.Unlock()
	})
	for i := 0; i < 32; i++ {
		f.Watch(domainN(i))
	}
	clk.Advance(time.Minute)
	if len(workers) != 16 {
		t.Errorf("distinct workers = %d, want 16", len(workers))
	}
}

func domainN(i int) string {
	return string([]byte{'d', byte('a' + i%26), byte('a' + (i/26)%26)}) + ".com"
}

func TestStatesSorted(t *testing.T) {
	b := newFakeBackend()
	f, _ := newFleet(b)
	f.Watch("zz.com")
	f.Watch("aa.com")
	states := f.States()
	if len(states) != 2 || states[0].Domain != "aa.com" {
		t.Errorf("States: %+v", states)
	}
}

func BenchmarkProbeRound(b *testing.B) {
	fb := newFakeBackend()
	clk := simclock.NewSim(t0)
	f := NewFleet(DefaultConfig(), clk, fb)
	for i := 0; i < 1000; i++ {
		d := domainN(i)
		fb.set(d, []string{"ns1.a.net"})
		f.Watch(d)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk.Advance(10 * time.Minute)
	}
}

// Ablation (DESIGN.md §5): cost of completing every domain's full 48-hour
// window vs stopping at observed death, for a short-lived population.
func benchFleetWindow(b *testing.B, stopWhenDead bool) {
	for i := 0; i < b.N; i++ {
		fb := newFakeBackend()
		clk := simclock.NewSim(t0)
		cfg := DefaultConfig()
		cfg.StopWhenDead = stopWhenDead
		f := NewFleet(cfg, clk, fb)
		for j := 0; j < 200; j++ {
			d := domainN(j)
			fb.set(d, []string{"ns1.a.net"})
			f.Watch(d)
		}
		clk.Advance(2 * time.Hour)
		for j := 0; j < 200; j++ {
			fb.set(domainN(j), nil) // mass takedown
		}
		clk.Advance(48 * time.Hour)
	}
}

func BenchmarkFleetFullWindow(b *testing.B)   { benchFleetWindow(b, false) }
func BenchmarkFleetStopWhenDead(b *testing.B) { benchFleetWindow(b, true) }

func TestStopWhenDeadEndsSchedule(t *testing.T) {
	fb := newFakeBackend()
	clk := simclock.NewSim(t0)
	cfg := DefaultConfig()
	cfg.StopWhenDead = true
	f := NewFleet(cfg, clk, fb)
	fb.set("dies.com", []string{"ns1.a.net"})
	f.Watch("dies.com")
	clk.Advance(time.Hour)
	fb.set("dies.com", nil)
	clk.Advance(time.Hour)
	st, _ := f.State("dies.com")
	if !st.Finished || st.DeadAt.IsZero() {
		t.Fatalf("state: %+v", st)
	}
	probes := st.Probes
	clk.Advance(10 * time.Hour)
	st, _ = f.State("dies.com")
	if st.Probes != probes {
		t.Error("probing continued after StopWhenDead")
	}
}
