package measure

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"darkdns/internal/simclock"
)

// TestRoundCoalescingEventCount: the acceptance bar for the round
// scheduler — probing a population through full 48-hour windows must
// book at least 10× fewer clock events than the per-probe design's one
// event per probe.
func TestRoundCoalescingEventCount(t *testing.T) {
	b := newFakeBackend()
	clk := simclock.NewSim(t0)
	f := NewFleet(DefaultConfig(), clk, b)
	const domains = 64
	for i := 0; i < domains; i++ {
		d := domainN(i)
		b.set(d, []string{"ns1.a.net"})
		f.Watch(d)
	}
	clk.Advance(49 * time.Hour)

	rep := f.Report()
	if rep.Probes < domains*280 {
		t.Fatalf("only %d probes for %d domains", rep.Probes, domains)
	}
	st := clk.Stats()
	if st.Scheduled*10 > rep.Probes {
		t.Errorf("scheduled %d clock events for %d probes; want ≥10× coalescing",
			st.Scheduled, rep.Probes)
	}
	if rep.Rounds == 0 || rep.MaxRound != domains {
		t.Errorf("round counters: rounds=%d maxRound=%d", rep.Rounds, rep.MaxRound)
	}
	if rep.Engine.Scheduled != st.Scheduled {
		t.Errorf("engine stats not coupled into report: %+v", rep.Engine)
	}
}

// TestRoundSchedulerDisarmsWhenIdle: once every watch retires, the round
// chain must stop re-arming so a drain-everything Run terminates and an
// idle fleet costs zero events.
func TestRoundSchedulerDisarmsWhenIdle(t *testing.T) {
	b := newFakeBackend()
	clk := simclock.NewSim(t0)
	f := NewFleet(DefaultConfig(), clk, b)
	b.set("x.com", []string{"ns1.a.net"})
	f.Watch("x.com")
	clk.Run() // must terminate: the window closes and the chain disarms
	if clk.Pending() != 0 {
		t.Fatalf("%d events pending after drain", clk.Pending())
	}
	st, _ := f.State("x.com")
	if !st.Finished {
		t.Fatalf("watch not finished: %+v", st)
	}
	// A fresh watch after quiescence re-arms.
	b.set("y.com", []string{"ns1.a.net"})
	f.Watch("y.com")
	if clk.Pending() == 0 {
		t.Fatal("round chain did not re-arm for a new watch")
	}
}

// TestRoundObservationsDeterministicAcrossPoolWidths: a fixed probe
// schedule must deliver byte-identical observation streams whatever the
// fleet pool width and whichever clock drain mode runs it — the
// fleet-level half of the campaign determinism contract.
func TestRoundObservationsDeterministicAcrossPoolWidths(t *testing.T) {
	type runMode struct {
		name    string
		workers int
		drain   func(*simclock.Sim)
	}
	modes := []runMode{
		{"serial-w1", 1, func(s *simclock.Sim) { s.Advance(49 * time.Hour) }},
		{"serial-w16", 16, func(s *simclock.Sim) { s.Advance(49 * time.Hour) }},
		{"batched-w16", 16, func(s *simclock.Sim) { s.RunUntilBatched(t0.Add(49*time.Hour), 8) }},
	}
	logs := make(map[string][]string)
	for _, m := range modes {
		b := newFakeBackend()
		clk := simclock.NewSim(t0)
		cfg := DefaultConfig()
		cfg.Workers = m.workers
		f := NewFleet(cfg, clk, b)
		var log []string
		f.OnObservation(func(o Observation) {
			log = append(log, fmt.Sprintf("%s|%s|%v|%v", o.At.Format(time.RFC3339), o.Domain, o.InZone, o.NS))
		})
		for i := 0; i < 40; i++ {
			d := domainN(i)
			b.set(d, []string{"ns1.a.net"})
			f.Watch(d)
		}
		clk.Advance(2 * time.Hour)
		for i := 0; i < 40; i += 3 {
			b.set(domainN(i), nil) // takedown wave
		}
		m.drain(clk)
		logs[m.name] = log
	}
	want := logs[modes[0].name]
	if len(want) == 0 {
		t.Fatal("no observations")
	}
	for _, m := range modes[1:] {
		if !reflect.DeepEqual(want, logs[m.name]) {
			t.Errorf("%s observation stream diverges from %s (%d vs %d)",
				m.name, modes[0].name, len(logs[m.name]), len(want))
		}
	}
}
