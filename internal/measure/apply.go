// The apply engine: stage 2 of a coalesced probe round, parallelized.
//
// The serial round drain applies state and delivers observations in one
// loop over the results slice, in watch-admission order. That order is
// part of the determinism contract (DESIGN.md §10): observers must see
// the exact sequence the per-domain scheduler would have produced. The
// apply engine keeps the contract while fanning Fleet.apply across
// ApplyWorkers goroutines: state mutation is already safe at any width
// (applies stripe onto the watch registry's shard locks), so only
// *delivery* needs ordering — a sequencing reorder buffer in front of
// the observers holds completed slots and releases them strictly in
// slot (= admission) order.
//
// The drain is pipelined, not phased: stage 1 pushes each result slot
// into the ready channel the moment its slice lands, apply workers
// consume slots in arrival order, and the round goroutine pumps the
// reorder buffer — so applies overlap the tail of the probe stage and
// delivery overlaps the tail of the applies. DESIGN.md §14.
package measure

import (
	"sync"
	"time"
)

// reorderBuffer resequences out-of-order slot completions into slot
// order: a slot-indexed ring with a release cursor, no sorting. Workers
// call complete(slot) in whatever order their applies finish; the
// single release pump calls release() and receives maximal contiguous
// ranges of completed slots, always starting at the cursor.
type reorderBuffer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	done   []bool
	cursor int
	// held counts completions that arrived ahead of the cursor — the
	// resequencing work the buffer actually performed. Scheduling-
	// dependent, so it feeds an operational counter only, never a
	// determinism assertion.
	held int64
}

func newReorderBuffer(n int) *reorderBuffer {
	b := &reorderBuffer{done: make([]bool, n)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// complete marks slot's apply finished. A completion at the cursor
// wakes the release pump; one ahead of the cursor is held until the
// cursor reaches it.
func (b *reorderBuffer) complete(slot int) {
	b.mu.Lock()
	b.done[slot] = true
	if slot == b.cursor {
		b.cond.Signal()
	} else {
		b.held++
	}
	b.mu.Unlock()
}

// release blocks until the slot at the cursor completes, then returns
// the maximal contiguous completed range [lo, hi) and advances the
// cursor past it. ok=false once every slot has been released. Intended
// for a single pump goroutine.
func (b *reorderBuffer) release() (lo, hi int, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cursor >= len(b.done) {
		return 0, 0, false
	}
	for !b.done[b.cursor] {
		b.cond.Wait()
	}
	lo = b.cursor
	for b.cursor < len(b.done) && b.done[b.cursor] {
		b.cursor++
	}
	return lo, b.cursor, true
}

// roundPipelined is the apply engine's round drain (ApplyWorkers ≥ 1).
// Stage 1 runs exactly as the serial path does, but lands completed
// result ranges into ready; ApplyWorkers goroutines drain ready,
// applying each slot's state under its shard lock; the round goroutine
// itself is the delivery pump, releasing observations through the
// reorder buffer in admission order.
func (f *Fleet) roundPipelined(targets []*DomainState, now time.Time) {
	n := len(targets)
	results := make([]roundResult, n)

	if n == 1 {
		// Admission probes and single-watch rounds: the general path
		// degenerates to probe-apply-deliver with no goroutines. The
		// counters advance exactly as a one-slot fan-out would — one
		// apply, one in-order release, nothing held — so Report stays
		// independent of round width.
		f.probeStage(targets, results, now, nil)
		f.apply(targets[0], &results[0], now)
		f.applies.Add(1)
		f.releases.Add(1)
		f.deliver(results)
		return
	}

	buf := newReorderBuffer(n)
	ready := make(chan int, n)
	go func() {
		defer close(ready)
		f.probeStage(targets, results, now, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				ready <- i
			}
		})
	}()

	aw := f.cfg.ApplyWorkers
	if aw > n {
		aw = n
	}
	var wg sync.WaitGroup
	wg.Add(aw)
	for w := 0; w < aw; w++ {
		go func() {
			defer wg.Done()
			for i := range ready {
				f.apply(targets[i], &results[i], now)
				f.applies.Add(1)
				buf.complete(i)
			}
		}()
	}

	for {
		lo, hi, ok := buf.release()
		if !ok {
			break
		}
		f.releases.Add(int64(hi - lo))
		f.deliver(results[lo:hi])
	}
	wg.Wait()
	// The pump only exits after every slot released, so the buffer is
	// quiescent; wg.Wait orders the workers' held writes before this read.
	f.heldBack.Add(buf.held)
}

// deliver fires the observer list for each result, in slice order.
func (f *Fleet) deliver(results []roundResult) {
	obsFns := f.observers.Load()
	if obsFns == nil {
		return
	}
	for i := range results {
		for _, fn := range *obsFns {
			fn(results[i].obs)
		}
	}
}
