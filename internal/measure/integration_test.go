package measure_test

import (
	"context"
	"errors"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"darkdns/internal/dnsmsg"
	"darkdns/internal/dnsserver"
	"darkdns/internal/measure"
	"darkdns/internal/registry"
	"darkdns/internal/resolver"
	"darkdns/internal/simclock"
)

var t0 = time.Date(2023, 11, 1, 0, 0, 0, 0, time.UTC)

// wireBackend implements measure.Backend over real UDP: NS queries go
// directly to the TLD authoritative server (as the paper's workers do),
// A queries go through a caching resolver pointed at the hosting fleet.
type wireBackend struct {
	tldEx *resolver.UDPExchanger
	res   *resolver.Resolver
}

func (b *wireBackend) AuthoritativeNS(domain string) ([]string, bool) {
	q := dnsmsg.NewQuery(uint16(rand.Intn(1<<16)), domain, dnsmsg.TypeNS)
	resp, err := b.tldEx.Exchange(context.Background(), q)
	if err != nil || resp.Header.RCode != dnsmsg.RCodeNoError {
		return nil, false
	}
	var ns []string
	for _, r := range resp.Answers {
		if r.Type == dnsmsg.TypeNS {
			ns = append(ns, r.NS)
		}
	}
	return ns, len(ns) > 0
}

func (b *wireBackend) LookupA(domain string) []netip.Addr {
	recs, err := b.res.Lookup(context.Background(), domain, dnsmsg.TypeA)
	if err != nil {
		return nil
	}
	var out []netip.Addr
	for _, r := range recs {
		if r.Type == dnsmsg.TypeA {
			out = append(out, r.A)
		}
	}
	return out
}

func (b *wireBackend) LookupAAAA(domain string) []netip.Addr {
	recs, err := b.res.Lookup(context.Background(), domain, dnsmsg.TypeAAAA)
	if err != nil && !errors.Is(err, resolver.ErrNXDomain) {
		return nil
	}
	var out []netip.Addr
	for _, r := range recs {
		if r.Type == dnsmsg.TypeAAAA {
			out = append(out, r.AAAA)
		}
	}
	return out
}

// TestFleetOverRealUDP runs the full measurement path across actual
// sockets: simulated registry → authoritative UDP server → measurement
// backend → fleet aggregation, including a mid-watch takedown.
func TestFleetOverRealUDP(t *testing.T) {
	clk := simclock.NewSim(t0)
	reg := registry.New(registry.DefaultConfig("com"), clk, rand.New(rand.NewSource(1)))
	defer reg.Stop()

	tldSrv := dnsserver.New(&dnsserver.TLDHandler{Registry: reg})
	tldAddr, err := tldSrv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tldSrv.Close()

	hosting := dnsserver.NewHostingHandler(60)
	hostSrv := dnsserver.New(hosting)
	hostAddr, err := hostSrv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hostSrv.Close()

	backend := &wireBackend{
		tldEx: &resolver.UDPExchanger{Addr: tldAddr.String(), Timeout: 2 * time.Second, Retries: 2},
		res: resolver.New(resolver.Config{MaxTTL: 60 * time.Second}, clk,
			&resolver.UDPExchanger{Addr: hostAddr.String(), Timeout: 2 * time.Second, Retries: 2}, nil),
	}

	reg.Register("wire.com", "R", []string{"ns1.cloudflare.com"}, netip.MustParseAddr("104.16.0.9"))
	hosting.Set("wire.com", netip.MustParseAddr("104.16.0.9"))
	clk.Advance(time.Minute) // zone rebuild

	fleet := measure.NewFleet(measure.DefaultConfig(), clk, backend)
	fleet.Watch("wire.com")
	clk.Advance(30 * time.Minute)

	st, ok := fleet.State("wire.com")
	if !ok || !st.EverInZone {
		t.Fatalf("state after probing: %+v", st)
	}
	if len(st.FirstNS) != 1 || st.FirstNS[0] != "ns1.cloudflare.com" {
		t.Errorf("FirstNS over the wire: %v", st.FirstNS)
	}
	if len(st.FirstV4) != 1 || st.FirstV4[0].String() != "104.16.0.9" {
		t.Errorf("FirstV4 over the wire: %v", st.FirstV4)
	}

	// Takedown: registry deletes, hosting disappears; the next probes
	// must observe the death via NXDOMAIN from the TLD server.
	if err := reg.Delete("wire.com"); err != nil {
		t.Fatal(err)
	}
	hosting.Remove("wire.com")
	clk.Advance(30 * time.Minute)

	st, _ = fleet.State("wire.com")
	if st.DeadAt.IsZero() {
		t.Fatal("death not observed over the wire")
	}
	if st.LastAliveAt.IsZero() || !st.DeadAt.After(st.LastAliveAt) {
		t.Errorf("timeline: lastAlive=%v dead=%v", st.LastAliveAt, st.DeadAt)
	}
}
