package measure

import (
	"fmt"
	"net/netip"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"darkdns/internal/dnsname"
	"darkdns/internal/simclock"
)

// --- reorder buffer unit tests ---------------------------------------

// TestReorderBufferMaximalRange: completions 1,2,3 then 0 must come out
// as one release [0,4) — the pump coalesces every contiguous completed
// slot past the cursor, it never releases one at a time.
func TestReorderBufferMaximalRange(t *testing.T) {
	b := newReorderBuffer(5)
	for _, slot := range []int{1, 2, 3, 0} {
		b.complete(slot)
	}
	lo, hi, ok := b.release()
	if !ok || lo != 0 || hi != 4 {
		t.Fatalf("release = [%d,%d) ok=%v, want [0,4) true", lo, hi, ok)
	}
	b.complete(4)
	lo, hi, ok = b.release()
	if !ok || lo != 4 || hi != 5 {
		t.Fatalf("release = [%d,%d) ok=%v, want [4,5) true", lo, hi, ok)
	}
	if _, _, ok = b.release(); ok {
		t.Fatal("release after all slots must report done")
	}
}

// TestReorderBufferAdversarialOrders drives the buffer with completion
// permutations matching the adversarial backend's repertoire and checks
// the released sequence is always 0..n-1 in order. For orders that hold
// slot 0 to the end the held counter is deterministic: every other
// completion arrives ahead of a cursor pinned at 0, so held == n-1.
func TestReorderBufferAdversarialOrders(t *testing.T) {
	const n = 16
	orders := map[string]struct {
		slots    []int
		wantHeld int64 // -1 = scheduling-dependent, don't assert
	}{
		"in-order":    {slots: seq(0, n, 1), wantHeld: -1},
		"reverse":     {slots: seq(n-1, -1, -1), wantHeld: n - 1},
		"straggler":   {slots: append(seq(1, n, 1), 0), wantHeld: n - 1},
		"interleaved": {slots: append(seq(1, n, 2), seq(0, n, 2)...), wantHeld: n - 1},
	}
	for name, order := range orders {
		t.Run(name, func(t *testing.T) {
			if len(order.slots) != n {
				t.Fatalf("bad order: %v", order.slots)
			}
			b := newReorderBuffer(n)
			var released []int
			done := make(chan struct{})
			go func() {
				defer close(done)
				for {
					lo, hi, ok := b.release()
					if !ok {
						return
					}
					for i := lo; i < hi; i++ {
						released = append(released, i)
					}
				}
			}()
			for _, slot := range order.slots {
				b.complete(slot)
			}
			<-done
			if !reflect.DeepEqual(released, seq(0, n, 1)) {
				t.Errorf("released %v, want 0..%d in order", released, n-1)
			}
			if order.wantHeld >= 0 && b.held != order.wantHeld {
				t.Errorf("held = %d, want %d", b.held, order.wantHeld)
			}
		})
	}
}

// seq returns [from, to) stepping by step (negative steps count down).
func seq(from, to, step int) []int {
	var out []int
	for i := from; (step > 0 && i < to) || (step < 0 && i > to); i += step {
		out = append(out, i)
	}
	return out
}

// --- permutation-injecting backend ------------------------------------

// permBatchBackend completes a round's probe slices in an adversarial
// order: every full-width slice blocks at a rendezvous gate until all
// slices of the round have arrived, then the gate releases them one at a
// time in the order the test's permutation dictates. Slice identity is
// the admission index of the slice's first domain. Single-domain batches
// (admission probes) and partial-width rounds bypass the gate, so the
// adversary only engages on the full coalesced rounds it was shaped for.
// Requires ProbeWorkers == slices so every slice has a live goroutine at
// the gate (probeBatched runs w slices on w workers).
type permBatchBackend struct {
	*fakeBackend
	sliceLen int
	slices   int
	rank     map[int]int    // slice id → release rank per the permutation
	idx      map[string]int // domain → admission index

	mu       sync.Mutex
	cond     *sync.Cond
	arrived  int
	released int
	gated    atomic.Int64 // slices that went through the gate
}

func newPermBackend(sliceLen int, perm []int) *permBatchBackend {
	b := &permBatchBackend{
		fakeBackend: newFakeBackend(),
		sliceLen:    sliceLen,
		slices:      len(perm),
		rank:        make(map[int]int, len(perm)),
		idx:         make(map[string]int),
	}
	for r, s := range perm {
		b.rank[s] = r
	}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *permBatchBackend) ProbeBatch(domains []string, mail bool) []ProbeResult {
	out := make([]ProbeResult, len(domains))
	for i, d := range domains {
		pr := &out[i]
		pr.NS, pr.InZone = b.AuthoritativeNS(d)
		if pr.InZone {
			pr.V4 = b.LookupA(d)
			pr.V6 = b.LookupAAAA(d)
		}
	}
	if len(domains) == b.sliceLen {
		b.gate(b.idx[domains[0]] / b.sliceLen)
	}
	return out
}

// gate is the rendezvous: block until every slice of the round arrived,
// then return in permutation-rank order. The last slice out resets the
// gate for the next round.
func (b *permBatchBackend) gate(slice int) {
	b.gated.Add(1)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.arrived++
	b.cond.Broadcast()
	for b.arrived < b.slices || b.released != b.rank[slice] {
		b.cond.Wait()
	}
	b.released++
	if b.released == b.slices {
		b.arrived, b.released = 0, 0
	}
	b.cond.Broadcast()
}

// obsLog registers a canonical observation log on f.
func obsLog(f *Fleet) *[]string {
	var log []string
	f.OnObservation(func(o Observation) {
		log = append(log, fmt.Sprintf("%s|%s|%d|%v|%v|%v",
			o.At.Format(time.RFC3339), o.Domain, o.Worker, o.InZone, o.NS, o.V4))
	})
	return &log
}

// applyScript drives the canonical apply-engine campaign shape against
// backend: watch the 40 given domains (scripted alive), take a third
// down at 2 h, advance to 4 h. Returns the observation log and report.
func applyScript(f *Fleet, b *fakeBackend, clk *simclock.Sim, domains []string) ([]string, FleetReport) {
	log := obsLog(f)
	for _, d := range domains {
		b.set(d, []string{"ns1.a.net"}, netip.MustParseAddr("192.0.2.1"))
		f.Watch(d)
	}
	clk.Advance(2 * time.Hour)
	for i := 0; i < len(domains); i += 3 {
		b.set(domains[i], nil) // takedown wave
	}
	clk.Advance(2 * time.Hour)
	return *log, f.Report()
}

// TestApplyPermutationAdversarialOrders is the apply engine's property
// test: for every adversarial probe-completion order — reverse,
// interleaved, one-straggler, and a shard-colliding watch set — the
// delivered observation sequence must be identical to the serial path's,
// and every probe must count exactly one apply and one in-order release.
func TestApplyPermutationAdversarialOrders(t *testing.T) {
	const sliceLen, slices = 5, 8 // 40 domains at ProbeWorkers=8
	perms := map[string][]int{
		"identity":    {0, 1, 2, 3, 4, 5, 6, 7},
		"reverse":     {7, 6, 5, 4, 3, 2, 1, 0},
		"interleaved": {1, 3, 5, 7, 0, 2, 4, 6},
		"straggler":   {1, 2, 3, 4, 5, 6, 7, 0},
	}
	domainSets := map[string][]string{
		"spread":          nDomains(40),
		"shard-colliding": collidingDomains(40),
	}

	for setName, domains := range domainSets {
		// Serial baseline: per-domain probes, inline apply + delivery.
		sf, sclk := newFleet(newFakeBackend())
		want, _ := applyScript(sf, sf.backend.(*fakeBackend), sclk, domains)
		if len(want) == 0 {
			t.Fatal("serial baseline produced no observations")
		}

		for permName, perm := range perms {
			for _, aw := range []int{1, 8} {
				name := fmt.Sprintf("%s/%s/apply-%d", setName, permName, aw)
				t.Run(name, func(t *testing.T) {
					b := newPermBackend(sliceLen, perm)
					for i, d := range domains {
						b.idx[d] = i
					}
					clk := simclock.NewSim(t0)
					cfg := DefaultConfig()
					cfg.ProbeWorkers = slices
					cfg.ApplyWorkers = aw
					f := NewFleet(cfg, clk, b)
					got, rep := applyScript(f, b.fakeBackend, clk, domains)
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("observation stream diverges from serial (%d vs %d entries)", len(got), len(want))
					}
					if b.gated.Load() == 0 {
						t.Fatal("adversarial gate never engaged")
					}
					if rep.ParallelApplies != rep.Probes || rep.ReorderReleases != rep.Probes {
						t.Errorf("applies=%d releases=%d, want both == probes=%d",
							rep.ParallelApplies, rep.ReorderReleases, rep.Probes)
					}
					// Any order that withholds slice 0 forces later slots
					// through the buffer while the cursor waits at the
					// round's first slot, so resequencing must be visible.
					if permName != "identity" && aw == 8 && rep.ReorderHeld == 0 {
						t.Errorf("%s: no applies held — adversarial order never resequenced", permName)
					}
				})
			}
		}
	}
}

// nDomains returns n distinct scripted domains in admission order.
func nDomains(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = domainN(i)
	}
	return out
}

// collidingDomains returns n domains that all hash to watch shard 0, so
// every concurrent apply contends on a single shard lock.
func collidingDomains(n int) []string {
	out := make([]string, 0, n)
	for i := 0; len(out) < n; i++ {
		d := fmt.Sprintf("c%d.com", i)
		if dnsname.Hash64(d)&(watchShards-1) == 0 {
			out = append(out, d)
		}
	}
	return out
}

// TestApplyWidthCombosDeterministic covers the width cross-products the
// engine must be indifferent to: more probe slices than apply workers,
// more apply workers than probe slices, the apply engine over per-domain
// (non-batch) stage 1, and a single apply worker.
func TestApplyWidthCombosDeterministic(t *testing.T) {
	domains := nDomains(40)
	sf, sclk := newFleet(newFakeBackend())
	want, _ := applyScript(sf, sf.backend.(*fakeBackend), sclk, domains)

	combos := []struct {
		name   string
		pw, aw int
	}{
		{"probe8-apply2", 8, 2},
		{"probe2-apply8", 2, 8},
		{"per-domain-apply8", 0, 8},
		{"probe8-apply1", 8, 1},
	}
	for _, c := range combos {
		t.Run(c.name, func(t *testing.T) {
			b := &fakeBatchBackend{fakeBackend: newFakeBackend()}
			clk := simclock.NewSim(t0)
			cfg := DefaultConfig()
			cfg.ProbeWorkers = c.pw
			cfg.ApplyWorkers = c.aw
			f := NewFleet(cfg, clk, b)
			got, rep := applyScript(f, b.fakeBackend, clk, domains)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("observation stream diverges from serial (%d vs %d entries)", len(got), len(want))
			}
			// The Stats contract: every probe is exactly one apply and one
			// in-order release, at any width combination.
			if rep.ParallelApplies != rep.Probes || rep.ReorderReleases != rep.ParallelApplies {
				t.Errorf("probes=%d applies=%d releases=%d, want all equal",
					rep.Probes, rep.ParallelApplies, rep.ReorderReleases)
			}
		})
	}
}

// TestApplySingleWatchRound: a one-domain campaign rides the engine's
// degenerate single-slot path — no goroutines, but the same counters and
// the same observable stream as the serial path.
func TestApplySingleWatchRound(t *testing.T) {
	sb := newFakeBackend()
	sf, sclk := newFleet(sb)
	slog := obsLog(sf)
	sb.set("solo.com", []string{"ns1.a.net"})
	sf.Watch("solo.com")
	sclk.Advance(2 * time.Hour)

	b := newFakeBackend()
	clk := simclock.NewSim(t0)
	cfg := DefaultConfig()
	cfg.ApplyWorkers = 8
	f := NewFleet(cfg, clk, b)
	plog := obsLog(f)
	b.set("solo.com", []string{"ns1.a.net"})
	f.Watch("solo.com")
	clk.Advance(2 * time.Hour)

	if !reflect.DeepEqual(*slog, *plog) {
		t.Fatalf("single-watch stream diverges: %d vs %d entries", len(*plog), len(*slog))
	}
	rep := f.Report()
	if rep.Probes != 13 || rep.ParallelApplies != 13 || rep.ReorderReleases != 13 {
		t.Errorf("probes=%d applies=%d releases=%d, want 13 each (1 admission + 12 rounds)",
			rep.Probes, rep.ParallelApplies, rep.ReorderReleases)
	}
	if rep.ReorderHeld != 0 {
		t.Errorf("held=%d on single-slot rounds, want 0", rep.ReorderHeld)
	}
}

// TestStopWhenDeadRacingStragglerApply: retirement happens inside apply
// (Finished + active decrement) while the straggler permutation holds
// the round's first slice hostage — the death round's later slots apply and
// wait in the buffer while earlier slots are still probing. Final states
// and the observation stream must match the serial path exactly.
func TestStopWhenDeadRacingStragglerApply(t *testing.T) {
	domains := nDomains(40)
	script := func(f *Fleet, b *fakeBackend, clk *simclock.Sim) ([]string, []DomainState) {
		log := obsLog(f)
		for _, d := range domains {
			b.set(d, []string{"ns1.a.net"})
			f.Watch(d)
		}
		clk.Advance(2 * time.Hour)
		for i := 0; i < len(domains); i += 3 {
			b.set(domains[i], nil)
		}
		clk.Advance(2 * time.Hour)
		return *log, f.States()
	}

	scfg := DefaultConfig()
	scfg.StopWhenDead = true
	sb := newFakeBackend()
	sf := NewFleet(scfg, simclock.NewSim(t0), sb)
	wantLog, wantStates := script(sf, sb, sf.clk.(*simclock.Sim))

	b := newPermBackend(5, []int{1, 2, 3, 4, 5, 6, 7, 0})
	for i, d := range domains {
		b.idx[d] = i
	}
	cfg := DefaultConfig()
	cfg.StopWhenDead = true
	cfg.ProbeWorkers = 8
	cfg.ApplyWorkers = 8
	f := NewFleet(cfg, simclock.NewSim(t0), b)
	gotLog, gotStates := script(f, b.fakeBackend, f.clk.(*simclock.Sim))

	if !reflect.DeepEqual(wantLog, gotLog) {
		t.Errorf("observation stream diverges (%d vs %d entries)", len(gotLog), len(wantLog))
	}
	if !reflect.DeepEqual(wantStates, gotStates) {
		t.Error("final domain states diverge from serial path")
	}
	if b.gated.Load() == 0 {
		t.Fatal("adversarial gate never engaged")
	}
}

// --- satellite 1: empty-round guard -----------------------------------

// TestProbeBatchedEmptyRoundGuard: the bounds arithmetic divides by the
// clamped worker count, so an empty target slice must return before it
// (regression: i * 0 / 0 panicked).
func TestProbeBatchedEmptyRoundGuard(t *testing.T) {
	b := &fakeBatchBackend{fakeBackend: newFakeBackend()}
	clk := simclock.NewSim(t0)
	cfg := DefaultConfig()
	cfg.ProbeWorkers = 8
	f := NewFleet(cfg, clk, b)
	f.probeBatched(b, nil, nil, t0, false, nil) // must not panic
	if b.batches.Load() != 0 {
		t.Error("empty round must not call ProbeBatch")
	}
}

// TestActiveSetEmptiesMidCampaign drives the end-to-end shape of the
// regression: a StopWhenDead campaign whose whole watch set dies at once
// leaves the next round with zero due targets, and the fleet must drain
// cleanly through it at every engine width.
func TestActiveSetEmptiesMidCampaign(t *testing.T) {
	for _, aw := range []int{0, 8} {
		t.Run(fmt.Sprintf("apply-%d", aw), func(t *testing.T) {
			b := &fakeBatchBackend{fakeBackend: newFakeBackend()}
			clk := simclock.NewSim(t0)
			cfg := DefaultConfig()
			cfg.ProbeWorkers = 8
			cfg.ApplyWorkers = aw
			cfg.StopWhenDead = true
			f := NewFleet(cfg, clk, b)
			for _, d := range nDomains(8) {
				b.set(d, []string{"ns1.a.net"})
				f.Watch(d)
			}
			clk.Advance(time.Hour)
			for _, d := range nDomains(8) {
				b.set(d, nil) // everything dies between rounds
			}
			clk.Advance(47 * time.Hour) // must not panic on the emptied rounds
			rep := f.Report()
			if rep.Finished != 8 || rep.Died != 8 {
				t.Errorf("finished=%d died=%d, want 8 each", rep.Finished, rep.Died)
			}
			if clk.Pending() != 0 {
				t.Errorf("clock not drained: %d events pending", clk.Pending())
			}
		})
	}
}

// --- race hammer -------------------------------------------------------

// TestApplyEngineShardContentionRaceHammer is the -race workout: a watch
// set that all hashes to one shard (maximum apply-lock contention),
// admitted from concurrent goroutines, probed through the full engine
// stack while readers hammer State/States/Report. Correctness here is
// "the race detector stays quiet and the counters balance".
func TestApplyEngineShardContentionRaceHammer(t *testing.T) {
	domains := collidingDomains(64)
	b := &fakeBatchBackend{fakeBackend: newFakeBackend()}
	clk := simclock.NewSim(t0)
	cfg := DefaultConfig()
	cfg.ProbeWorkers = 8
	cfg.ApplyWorkers = 8
	f := NewFleet(cfg, clk, b)
	for _, d := range domains {
		b.set(d, []string{"ns1.a.net"}, netip.MustParseAddr("192.0.2.1"))
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g * 16; i < (g+1)*16; i++ {
				f.Watch(domains[i])
			}
		}(g)
	}
	wg.Wait()

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					f.States()
					f.Report()
					f.State(domains[0])
				}
			}
		}()
	}
	clk.Advance(3 * time.Hour)
	close(stop)
	readers.Wait()

	rep := f.Report()
	if rep.Watched != 64 || rep.Probes == 0 {
		t.Fatalf("watched=%d probes=%d", rep.Watched, rep.Probes)
	}
	if rep.ParallelApplies != rep.Probes || rep.ReorderReleases != rep.Probes {
		t.Errorf("applies=%d releases=%d, want both == probes=%d",
			rep.ParallelApplies, rep.ReorderReleases, rep.Probes)
	}
}
