// Package measure implements the paper's reactive measurement
// infrastructure (step 3): on first observation of a domain, a fleet of
// workers issues A, AAAA and NS queries every 10 minutes for the domain's
// first 48 hours. NS queries go directly to the TLD authoritative
// nameservers so that zone removal is detected precisely (and lame
// delegations are not misread as deletions). A and AAAA go through
// caching resolvers clamped to a 60-second TTL.
package measure

import (
	"net/netip"
	"sort"
	"strings"
	"sync"
	"time"

	"darkdns/internal/dnsname"
	"darkdns/internal/simclock"
)

// Backend is the fleet's view of the DNS. The simulation wires it to
// registries and hosting tables in-process; integration tests wire it to
// real resolvers talking UDP to dnsserver instances.
type Backend interface {
	// AuthoritativeNS asks the TLD authoritative servers for domain's
	// delegation. ok=false means NXDOMAIN (removed from zone).
	AuthoritativeNS(domain string) (ns []string, ok bool)
	// LookupA resolves IPv4 addresses through the caching resolver path.
	LookupA(domain string) []netip.Addr
	// LookupAAAA resolves IPv6 addresses.
	LookupAAAA(domain string) []netip.Addr
}

// MailBackend is the optional extension backend for the paper's
// future-work measurements ("we plan to expand our measurements beyond
// DNS infrastructure records, including mail extensions (e.g., SPF, MX)").
// Fleets probe mail records when their Backend also implements it and
// Config.ProbeMail is set.
type MailBackend interface {
	// LookupMX resolves mail exchangers.
	LookupMX(domain string) []string
	// LookupTXT resolves TXT strings (SPF policies live here).
	LookupTXT(domain string) []string
}

// Observation is one probe result.
type Observation struct {
	Domain string
	Worker int
	At     time.Time
	NS     []string // sorted; nil when the domain is out of the zone
	InZone bool
	V4     []netip.Addr
	V6     []netip.Addr
}

// DomainState aggregates a domain's probe history.
type DomainState struct {
	Domain      string
	Started     time.Time
	Probes      int
	FirstNS     []string     // delegation at first successful probe
	LastNS      []string     // most recent delegation seen
	FirstV4     []netip.Addr // first non-empty A answer
	NSChanged   bool         // delegation differed between probes
	NSChangedAt time.Time    // first probe at which the delegation differed
	HasMX       bool         // any probe returned MX records
	HasSPF      bool         // any probe returned an SPF TXT policy
	EverInZone  bool
	LastAliveAt time.Time // last probe with a valid NS answer
	DeadAt      time.Time // first probe with NXDOMAIN after being alive
	Finished    bool      // 48-hour window elapsed
}

// Config parameterizes the fleet.
type Config struct {
	Workers  int           // paper: 16
	Interval time.Duration // paper: 10 minutes
	Window   time.Duration // paper: 48 hours
	// StopWhenDead ends a domain's schedule at its first post-life
	// NXDOMAIN instead of completing the 48-hour window. Post-death
	// probes carry no analytical signal, so large-scale simulation runs
	// enable this purely as a scheduling optimization; the paper-accurate
	// default keeps probing.
	StopWhenDead bool
	// ProbeMail additionally queries MX and TXT on each round when the
	// backend supports it (the paper's future-work extension).
	ProbeMail bool
}

// DefaultConfig returns the paper's measurement parameters.
func DefaultConfig() Config {
	return Config{Workers: 16, Interval: 10 * time.Minute, Window: 48 * time.Hour}
}

// Fleet schedules and aggregates reactive probes.
type Fleet struct {
	cfg     Config
	clk     simclock.Clock
	backend Backend

	mu        sync.Mutex
	states    map[string]*DomainState
	nextWork  int
	observers []func(Observation)
}

// NewFleet creates a fleet over backend using clk for scheduling.
func NewFleet(cfg Config, clk simclock.Clock, backend Backend) *Fleet {
	if cfg.Workers <= 0 {
		cfg.Workers = 16
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Minute
	}
	if cfg.Window <= 0 {
		cfg.Window = 48 * time.Hour
	}
	return &Fleet{cfg: cfg, clk: clk, backend: backend, states: make(map[string]*DomainState)}
}

// OnObservation registers fn to receive every probe result (the pipeline
// feeds these into its Kafka topic).
func (f *Fleet) OnObservation(fn func(Observation)) {
	f.mu.Lock()
	f.observers = append(f.observers, fn)
	f.mu.Unlock()
}

// Watch begins the 48-hour probe schedule for domain. Re-watching an
// already-watched domain is a no-op. The first probe fires immediately.
func (f *Fleet) Watch(domain string) {
	domain = dnsname.Canonical(domain)
	f.mu.Lock()
	if _, ok := f.states[domain]; ok {
		f.mu.Unlock()
		return
	}
	now := f.clk.Now()
	st := &DomainState{Domain: domain, Started: now}
	f.states[domain] = st
	worker := f.nextWork
	f.nextWork = (f.nextWork + 1) % f.cfg.Workers
	f.mu.Unlock()

	var probe func()
	probe = func() {
		done := f.probeOnce(domain, worker)
		if done {
			return
		}
		f.clk.After(f.cfg.Interval, probe)
	}
	probe()
}

// probeOnce performs one A/AAAA/NS measurement round. It returns true when
// the watch window has closed.
func (f *Fleet) probeOnce(domain string, worker int) bool {
	now := f.clk.Now()
	f.mu.Lock()
	st := f.states[domain]
	if st == nil {
		f.mu.Unlock()
		return true
	}
	if now.Sub(st.Started) > f.cfg.Window {
		st.Finished = true
		f.mu.Unlock()
		return true
	}
	f.mu.Unlock()

	ns, inZone := f.backend.AuthoritativeNS(domain)
	obs := Observation{Domain: domain, Worker: worker, At: now, InZone: inZone}
	var mx, txt []string
	if inZone {
		obs.NS = append([]string(nil), ns...)
		sort.Strings(obs.NS)
		obs.V4 = f.backend.LookupA(domain)
		obs.V6 = f.backend.LookupAAAA(domain)
		if f.cfg.ProbeMail {
			if mb, ok := f.backend.(MailBackend); ok {
				mx = mb.LookupMX(domain)
				txt = mb.LookupTXT(domain)
			}
		}
	}

	dead := false
	f.mu.Lock()
	st.Probes++
	if inZone {
		st.EverInZone = true
		st.LastAliveAt = now
		if st.FirstNS == nil {
			st.FirstNS = obs.NS
		}
		if !equalStrings(st.FirstNS, obs.NS) && !st.NSChanged {
			st.NSChanged = true
			st.NSChangedAt = now
		}
		st.LastNS = obs.NS
		if st.FirstV4 == nil && len(obs.V4) > 0 {
			st.FirstV4 = obs.V4
		}
		if len(mx) > 0 {
			st.HasMX = true
		}
		for _, s := range txt {
			if strings.HasPrefix(s, "v=spf1") {
				st.HasSPF = true
			}
		}
	} else if st.EverInZone && st.DeadAt.IsZero() {
		st.DeadAt = now
	}
	if f.cfg.StopWhenDead && !st.DeadAt.IsZero() {
		st.Finished = true
		dead = true
	}
	obsFns := make([]func(Observation), len(f.observers))
	copy(obsFns, f.observers)
	f.mu.Unlock()

	for _, fn := range obsFns {
		fn(obs)
	}
	return dead
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// State returns a copy of domain's aggregated state.
func (f *Fleet) State(domain string) (DomainState, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st, ok := f.states[dnsname.Canonical(domain)]
	if !ok {
		return DomainState{}, false
	}
	return *st, true
}

// States returns copies of all domain states, sorted by domain.
func (f *Fleet) States() []DomainState {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]DomainState, 0, len(f.states))
	for _, st := range f.states {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	return out
}

// Watched returns the number of domains ever watched.
func (f *Fleet) Watched() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.states)
}
