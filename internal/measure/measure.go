// Package measure implements the paper's reactive measurement
// infrastructure (step 3): on first observation of a domain, a fleet of
// workers issues A, AAAA and NS queries every 10 minutes for the domain's
// first 48 hours. NS queries go directly to the TLD authoritative
// nameservers so that zone removal is detected precisely (and lame
// delegations are not misread as deletions). A and AAAA go through
// caching resolvers clamped to a 60-second TTL.
package measure

import (
	"net/netip"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"darkdns/internal/dnsname"
	"darkdns/internal/rdap"
	"darkdns/internal/simclock"
)

// Backend is the fleet's view of the DNS. The simulation wires it to
// registries and hosting tables in-process; integration tests wire it to
// real resolvers talking UDP to dnsserver instances.
type Backend interface {
	// AuthoritativeNS asks the TLD authoritative servers for domain's
	// delegation. ok=false means NXDOMAIN (removed from zone).
	AuthoritativeNS(domain string) (ns []string, ok bool)
	// LookupA resolves IPv4 addresses through the caching resolver path.
	LookupA(domain string) []netip.Addr
	// LookupAAAA resolves IPv6 addresses.
	LookupAAAA(domain string) []netip.Addr
}

// MailBackend is the optional extension backend for the paper's
// future-work measurements ("we plan to expand our measurements beyond
// DNS infrastructure records, including mail extensions (e.g., SPF, MX)").
// Fleets probe mail records when their Backend also implements it and
// Config.ProbeMail is set.
type MailBackend interface {
	// LookupMX resolves mail exchangers.
	LookupMX(domain string) []string
	// LookupTXT resolves TXT strings (SPF policies live here).
	LookupTXT(domain string) []string
}

// Observation is one probe result.
type Observation struct {
	Domain string
	Worker int
	At     time.Time
	NS     []string // sorted; nil when the domain is out of the zone
	InZone bool
	V4     []netip.Addr
	V6     []netip.Addr
}

// DomainState aggregates a domain's probe history.
type DomainState struct {
	Domain      string
	Started     time.Time
	Probes      int
	FirstNS     []string     // delegation at first successful probe
	LastNS      []string     // most recent delegation seen
	FirstV4     []netip.Addr // first non-empty A answer
	NSChanged   bool         // delegation differed between probes
	NSChangedAt time.Time    // first probe at which the delegation differed
	HasMX       bool         // any probe returned MX records
	HasSPF      bool         // any probe returned an SPF TXT policy
	EverInZone  bool
	LastAliveAt time.Time // last probe with a valid NS answer
	DeadAt      time.Time // first probe with NXDOMAIN after being alive
	Finished    bool      // 48-hour window elapsed
}

// Config parameterizes the fleet.
type Config struct {
	Workers  int           // paper: 16
	Interval time.Duration // paper: 10 minutes
	Window   time.Duration // paper: 48 hours
	// StopWhenDead ends a domain's schedule at its first post-life
	// NXDOMAIN instead of completing the 48-hour window. Post-death
	// probes carry no analytical signal, so large-scale simulation runs
	// enable this purely as a scheduling optimization; the paper-accurate
	// default keeps probing.
	StopWhenDead bool
	// ProbeMail additionally queries MX and TXT on each round when the
	// backend supports it (the paper's future-work extension).
	ProbeMail bool
}

// DefaultConfig returns the paper's measurement parameters.
func DefaultConfig() Config {
	return Config{Workers: 16, Interval: 10 * time.Minute, Window: 48 * time.Hour}
}

// watchShards is the number of independent locks the watch registry is
// striped over. Watch admissions and probe-tick state updates hash to a
// shard, so a burst of Watch calls from parallel ingest does not contend
// with the fleet's own probe ticks. Power of two for cheap masking.
const watchShards = 32

// watchShard is one stripe of the registry.
type watchShard struct {
	mu     sync.Mutex
	states map[string]*DomainState
}

// Fleet schedules and aggregates reactive probes.
type Fleet struct {
	cfg     Config
	clk     simclock.Clock
	backend Backend

	shards   [watchShards]watchShard
	nextWork atomic.Int64

	// observers is a copy-on-write list: registrations are rare and
	// serialized by obsMu, probe ticks read it lock-free.
	obsMu     sync.Mutex
	observers atomic.Pointer[[]func(Observation)]

	// dispatcher, when attached, couples the RDAP dispatch engine's
	// counters into the fleet report — in the paper's deployment steps 2
	// and 3 share the same Azure worker fleet, so the operational view
	// of both belongs in one place.
	dispatcher atomic.Pointer[rdap.Dispatcher]
}

// NewFleet creates a fleet over backend using clk for scheduling.
func NewFleet(cfg Config, clk simclock.Clock, backend Backend) *Fleet {
	if cfg.Workers <= 0 {
		cfg.Workers = 16
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Minute
	}
	if cfg.Window <= 0 {
		cfg.Window = 48 * time.Hour
	}
	f := &Fleet{cfg: cfg, clk: clk, backend: backend}
	for i := range f.shards {
		f.shards[i].states = make(map[string]*DomainState)
	}
	return f
}

// shard maps a canonical domain to its registry stripe.
func (f *Fleet) shard(domain string) *watchShard {
	return &f.shards[dnsname.Hash64(domain)&(watchShards-1)]
}

// OnObservation registers fn to receive every probe result (the pipeline
// feeds these into its Kafka topic).
func (f *Fleet) OnObservation(fn func(Observation)) {
	f.obsMu.Lock()
	defer f.obsMu.Unlock()
	var cur []func(Observation)
	if p := f.observers.Load(); p != nil {
		cur = *p
	}
	next := make([]func(Observation), len(cur)+1)
	copy(next, cur)
	next[len(cur)] = fn
	f.observers.Store(&next)
}

// Watch begins the 48-hour probe schedule for domain. Re-watching an
// already-watched domain is a no-op. The first probe fires immediately.
func (f *Fleet) Watch(domain string) {
	domain = dnsname.Canonical(domain)
	sh := f.shard(domain)
	sh.mu.Lock()
	if _, ok := sh.states[domain]; ok {
		sh.mu.Unlock()
		return
	}
	now := f.clk.Now()
	st := &DomainState{Domain: domain, Started: now}
	sh.states[domain] = st
	sh.mu.Unlock()
	worker := int(f.nextWork.Add(1)-1) % f.cfg.Workers

	var probe func()
	probe = func() {
		done := f.probeOnce(domain, worker)
		if done {
			return
		}
		f.clk.After(f.cfg.Interval, probe)
	}
	probe()
}

// probeOnce performs one A/AAAA/NS measurement round. It returns true when
// the watch window has closed.
func (f *Fleet) probeOnce(domain string, worker int) bool {
	now := f.clk.Now()
	sh := f.shard(domain)
	sh.mu.Lock()
	st := sh.states[domain]
	if st == nil {
		sh.mu.Unlock()
		return true
	}
	if now.Sub(st.Started) > f.cfg.Window {
		st.Finished = true
		sh.mu.Unlock()
		return true
	}
	sh.mu.Unlock()

	ns, inZone := f.backend.AuthoritativeNS(domain)
	obs := Observation{Domain: domain, Worker: worker, At: now, InZone: inZone}
	var mx, txt []string
	if inZone {
		obs.NS = append([]string(nil), ns...)
		sort.Strings(obs.NS)
		obs.V4 = f.backend.LookupA(domain)
		obs.V6 = f.backend.LookupAAAA(domain)
		if f.cfg.ProbeMail {
			if mb, ok := f.backend.(MailBackend); ok {
				mx = mb.LookupMX(domain)
				txt = mb.LookupTXT(domain)
			}
		}
	}

	dead := false
	sh.mu.Lock()
	st.Probes++
	if inZone {
		st.EverInZone = true
		st.LastAliveAt = now
		if st.FirstNS == nil {
			st.FirstNS = obs.NS
		}
		if !equalStrings(st.FirstNS, obs.NS) && !st.NSChanged {
			st.NSChanged = true
			st.NSChangedAt = now
		}
		st.LastNS = obs.NS
		if st.FirstV4 == nil && len(obs.V4) > 0 {
			st.FirstV4 = obs.V4
		}
		if len(mx) > 0 {
			st.HasMX = true
		}
		for _, s := range txt {
			if strings.HasPrefix(s, "v=spf1") {
				st.HasSPF = true
			}
		}
	} else if st.EverInZone && st.DeadAt.IsZero() {
		st.DeadAt = now
	}
	if f.cfg.StopWhenDead && !st.DeadAt.IsZero() {
		st.Finished = true
		dead = true
	}
	sh.mu.Unlock()

	if p := f.observers.Load(); p != nil {
		for _, fn := range *p {
			fn(obs)
		}
	}
	return dead
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// State returns a copy of domain's aggregated state.
func (f *Fleet) State(domain string) (DomainState, bool) {
	domain = dnsname.Canonical(domain)
	sh := f.shard(domain)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.states[domain]
	if !ok {
		return DomainState{}, false
	}
	return *st, true
}

// States returns copies of all domain states, sorted by domain.
func (f *Fleet) States() []DomainState {
	out := make([]DomainState, 0, f.Watched())
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.Lock()
		for _, st := range sh.states {
			out = append(out, *st)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	return out
}

// Watched returns the number of domains ever watched.
func (f *Fleet) Watched() int {
	n := 0
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.Lock()
		n += len(sh.states)
		sh.mu.Unlock()
	}
	return n
}

// AttachDispatcher couples the RDAP dispatch engine's counters into
// Report. Safe to call concurrently with probing.
func (f *Fleet) AttachDispatcher(d *rdap.Dispatcher) {
	f.dispatcher.Store(d)
}

// FleetReport summarizes the fleet's probe activity plus — when a
// dispatcher is attached — the RDAP dispatch engine's counters.
type FleetReport struct {
	Watched    int   // domains ever scheduled
	Finished   int   // watch windows closed
	Probes     int64 // measurement rounds executed
	EverInZone int   // domains observed delegated at least once
	Died       int   // domains that left the zone while watched
	NSChanged  int   // domains whose delegation changed mid-watch
	// Dispatch holds the attached dispatcher's counters; zero-valued
	// when step 2 runs on the serial path.
	Dispatch rdap.DispatchStats
}

// Report aggregates the fleet's operational state.
func (f *Fleet) Report() FleetReport {
	var rep FleetReport
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.Lock()
		for _, st := range sh.states {
			rep.Watched++
			rep.Probes += int64(st.Probes)
			if st.Finished {
				rep.Finished++
			}
			if st.EverInZone {
				rep.EverInZone++
			}
			if !st.DeadAt.IsZero() {
				rep.Died++
			}
			if st.NSChanged {
				rep.NSChanged++
			}
		}
		sh.mu.Unlock()
	}
	if d := f.dispatcher.Load(); d != nil {
		rep.Dispatch = d.Stats()
	}
	return rep
}
