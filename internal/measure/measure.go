// Package measure implements the paper's reactive measurement
// infrastructure (step 3): on first observation of a domain, a fleet of
// workers issues A, AAAA and NS queries every 10 minutes for the domain's
// first 48 hours. NS queries go directly to the TLD authoritative
// nameservers so that zone removal is detected precisely (and lame
// delegations are not misread as deletions). A and AAAA go through
// caching resolvers clamped to a 60-second TTL.
//
// Scheduling is round-coalesced: instead of one clock event per probe
// per domain (≈290 heap events per watched domain over 48 h), the fleet
// arms a single clock event per 10-minute round and probes every active
// watch in that round through its worker pool — the probe batch resolves
// concurrently (backend reads are side-effect-free), then states update
// and observers fire in watch-admission order, which is exactly the
// delivery order the per-domain scheduler produced. Event count per
// campaign therefore scales with rounds, not probes.
//
// Stage 2 of a round — per-domain state apply + observer delivery — runs
// serially by default, or (Config.ApplyWorkers ≥ 1) through the apply
// engine: applies fan out across workers as probe results land, striped
// onto the watch registry's shard locks, while a sequencing reorder
// buffer in front of the observers releases delivery strictly in
// admission order (DESIGN.md §14).
//
// Concurrency model (DESIGN.md §7): the watch registry is sharded 32
// ways with copy-on-write observer lists; round probe batches fan out on
// workpool. Determinism contract: because probes are side-effect-free
// reads and delivery stays in admission order, fleet reports are
// byte-identical at any pool width and under either clock drain mode.
package measure

import (
	"net/netip"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"darkdns/internal/dnsname"
	"darkdns/internal/rdap"
	"darkdns/internal/simclock"
	"darkdns/internal/workpool"
)

// Backend is the fleet's view of the DNS. The simulation wires it to
// registries and hosting tables in-process; integration tests wire it to
// real resolvers talking UDP to dnsserver instances.
type Backend interface {
	// AuthoritativeNS asks the TLD authoritative servers for domain's
	// delegation. ok=false means NXDOMAIN (removed from zone).
	AuthoritativeNS(domain string) (ns []string, ok bool)
	// LookupA resolves IPv4 addresses through the caching resolver path.
	LookupA(domain string) []netip.Addr
	// LookupAAAA resolves IPv6 addresses.
	LookupAAAA(domain string) []netip.Addr
}

// ProbeResult is one domain's answers within a probe batch.
type ProbeResult struct {
	InZone bool
	NS     []string
	V4, V6 []netip.Addr
	// MX and TXT are filled only when the batch asked for mail records.
	MX, TXT []string
}

// BatchBackend is the optional Backend extension the batched probe
// engine prefers: one call resolves a whole slice of domains, so the
// backend can pipeline the underlying queries (resolver.LookupBatch
// over pooled sockets on the wire, plain reads in the simulation)
// instead of paying per-domain call overhead. mail asks for MX/TXT
// answers alongside the DNS-infrastructure records. Results are
// positional. Probes are reads: implementations must be side-effect-
// free so batch boundaries stay unobservable.
type BatchBackend interface {
	ProbeBatch(domains []string, mail bool) []ProbeResult
}

// MailBackend is the optional extension backend for the paper's
// future-work measurements ("we plan to expand our measurements beyond
// DNS infrastructure records, including mail extensions (e.g., SPF, MX)").
// Fleets probe mail records when their Backend also implements it and
// Config.ProbeMail is set.
type MailBackend interface {
	// LookupMX resolves mail exchangers.
	LookupMX(domain string) []string
	// LookupTXT resolves TXT strings (SPF policies live here).
	LookupTXT(domain string) []string
}

// Observation is one probe result.
type Observation struct {
	Domain string
	Worker int
	At     time.Time
	NS     []string // sorted; nil when the domain is out of the zone
	InZone bool
	V4     []netip.Addr
	V6     []netip.Addr
}

// DomainState aggregates a domain's probe history.
type DomainState struct {
	Domain      string
	Started     time.Time
	Probes      int
	FirstNS     []string     // delegation at first successful probe
	LastNS      []string     // most recent delegation seen
	FirstV4     []netip.Addr // first non-empty A answer
	NSChanged   bool         // delegation differed between probes
	NSChangedAt time.Time    // first probe at which the delegation differed
	HasMX       bool         // any probe returned MX records
	HasSPF      bool         // any probe returned an SPF TXT policy
	EverInZone  bool
	LastAliveAt time.Time // last probe with a valid NS answer
	DeadAt      time.Time // first probe with NXDOMAIN after being alive
	Finished    bool      // 48-hour window elapsed (or StopWhenDead hit)

	worker int // fleet worker assigned to this domain's probes
}

// RevalidatePolicy decouples probe cadence from record TTL, after Afek
// & Litmanovich's TTL-decoupled revalidation: instead of hardcoding the
// paper's 10-minute round, the cadence is an operator knob — a shorter
// cadence trades probe volume for detection latency, a longer one the
// reverse — while the 60-second resolver TTL clamp stays fixed, so
// cache freshness and probe schedule are independent policies.
type RevalidatePolicy struct {
	// Cadence is the coalesced round interval. 0 keeps Config.Interval
	// (the paper's 10 minutes by default).
	Cadence time.Duration
}

// Config parameterizes the fleet.
type Config struct {
	Workers  int           // paper: 16
	Interval time.Duration // paper: 10 minutes
	Window   time.Duration // paper: 48 hours
	// ProbeWorkers selects the probe engine's batch mode: 0 probes each
	// due domain with per-domain backend calls on the legacy pool (the
	// serial baseline), ≥1 partitions each round's watch set into this
	// many contiguous slices and submits every slice as one ProbeBatch
	// call when the backend supports it. Slices are admission-ordered
	// and results positional, so fleet output is byte-identical at any
	// width (the probe-engine determinism contract).
	ProbeWorkers int
	// ApplyWorkers selects the apply engine for stage 2 of every round:
	// 0 applies state and delivers observations inline in admission
	// order (the serial baseline), ≥1 fans Fleet.apply across this many
	// workers as probe results land — safe because applies stripe onto
	// the watch registry's shard locks — while a sequencing reorder
	// buffer in front of the observers releases delivery strictly in
	// admission order, so apply width never reorders an observable
	// (the apply-engine determinism contract, DESIGN.md §14).
	ApplyWorkers int
	// Revalidate is the probe-cadence policy; its Cadence, when set,
	// overrides Interval.
	Revalidate RevalidatePolicy
	// StopWhenDead ends a domain's schedule at its first post-life
	// NXDOMAIN instead of completing the 48-hour window. Post-death
	// probes carry no analytical signal, so large-scale simulation runs
	// enable this purely as a scheduling optimization; the paper-accurate
	// default keeps probing.
	StopWhenDead bool
	// ProbeMail additionally queries MX and TXT on each round when the
	// backend supports it (the paper's future-work extension).
	ProbeMail bool
}

// DefaultConfig returns the paper's measurement parameters.
func DefaultConfig() Config {
	return Config{Workers: 16, Interval: 10 * time.Minute, Window: 48 * time.Hour}
}

// watchShards is the number of independent locks the watch registry is
// striped over. Watch admissions and probe-tick state updates hash to a
// shard, so a burst of Watch calls from parallel ingest does not contend
// with the fleet's own probe ticks. Power of two for cheap masking.
const watchShards = 32

// watchShard is one stripe of the registry.
type watchShard struct {
	mu     sync.Mutex
	states map[string]*DomainState
}

// Fleet schedules and aggregates reactive probes.
type Fleet struct {
	cfg     Config
	clk     simclock.Clock
	tagClk  simclock.TagScheduler // clk's effect-tagged extension; nil without lookahead support
	backend Backend

	// watchMask is the union of every watched domain's effect atom
	// (simclock.DomainTag), OR-accumulated at admission and never
	// cleared. Round events are tagged with this mask via a TagAt
	// closure, so the lookahead drain sees exactly which state a round
	// may touch at the instant the round is considered for speculation.
	// Monotone growth is the conservative direction: a retired watch's
	// atom lingering in the mask can only cause a spurious conflict,
	// never a missed one. Probe reads against registries are keyed by
	// domain, so two events with disjoint masks commute.
	watchMask atomic.Uint64

	shards  [watchShards]watchShard
	nextSeq atomic.Int64 // watch admissions: ordering + worker assignment
	active  atomic.Int64 // unfinished watches; rounds stay armed while > 0

	// watchList is the admission-ordered registry the round scheduler
	// iterates — Watch appends, dueTargets skips retired entries and
	// compacts once they dominate, so a round never re-sorts or walks
	// the shard maps. Guarded by watchMu; never locked while holding a
	// shard lock.
	watchMu   sync.Mutex
	watchList []*DomainState

	// Round scheduler: one clock event serves every due domain. armed
	// guards against double-arming when Watch races the round callback.
	roundMu sync.Mutex
	armed   bool

	rounds   atomic.Int64 // coalesced rounds executed
	maxRound atomic.Int64 // widest round (domains probed in one event)

	// Apply-engine counters (zero on the serial stage-2 path).
	applies  atomic.Int64 // state applies executed by the apply fan-out
	releases atomic.Int64 // observations released through the reorder buffer
	heldBack atomic.Int64 // applies that completed ahead of the release cursor

	// observers is a copy-on-write list: registrations are rare and
	// serialized by obsMu, probe ticks read it lock-free.
	obsMu     sync.Mutex
	observers atomic.Pointer[[]func(Observation)]

	// dispatcher, when attached, couples the RDAP dispatch engine's
	// counters into the fleet report — in the paper's deployment steps 2
	// and 3 share the same Azure worker fleet, so the operational view
	// of both belongs in one place.
	dispatcher atomic.Pointer[rdap.Dispatcher]
}

// NewFleet creates a fleet over backend using clk for scheduling.
func NewFleet(cfg Config, clk simclock.Clock, backend Backend) *Fleet {
	if cfg.Workers <= 0 {
		cfg.Workers = 16
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Minute
	}
	if cfg.Revalidate.Cadence > 0 {
		cfg.Interval = cfg.Revalidate.Cadence
	}
	if cfg.Window <= 0 {
		cfg.Window = 48 * time.Hour
	}
	f := &Fleet{cfg: cfg, clk: clk, backend: backend}
	f.tagClk, _ = clk.(simclock.TagScheduler)
	for i := range f.shards {
		f.shards[i].states = make(map[string]*DomainState)
	}
	return f
}

// shard maps a canonical domain to its registry stripe.
func (f *Fleet) shard(domain string) *watchShard {
	return &f.shards[dnsname.Hash64(domain)&(watchShards-1)]
}

// OnObservation registers fn to receive every probe result (the pipeline
// feeds these into its Kafka topic).
func (f *Fleet) OnObservation(fn func(Observation)) {
	f.obsMu.Lock()
	defer f.obsMu.Unlock()
	var cur []func(Observation)
	if p := f.observers.Load(); p != nil {
		cur = *p
	}
	next := make([]func(Observation), len(cur)+1)
	copy(next, cur)
	next[len(cur)] = fn
	f.observers.Store(&next)
}

// Watch begins the 48-hour probe schedule for domain. Re-watching an
// already-watched domain is a no-op. The first probe fires immediately
// (detection triggers the watch, as in the paper); subsequent probes
// ride the fleet's coalesced rounds.
func (f *Fleet) Watch(domain string) {
	domain = dnsname.Canonical(domain)
	now := f.clk.Now()
	sh := f.shard(domain)
	sh.mu.Lock()
	if _, ok := sh.states[domain]; ok {
		sh.mu.Unlock()
		return
	}
	st := &DomainState{
		Domain:  domain,
		Started: now,
		worker:  int(f.nextSeq.Add(1)-1) % f.cfg.Workers,
	}
	sh.states[domain] = st
	sh.mu.Unlock()
	f.active.Add(1)
	atom := uint64(simclock.DomainTag(domain))
	for {
		old := f.watchMask.Load()
		if old&atom == atom || f.watchMask.CompareAndSwap(old, old|atom) {
			break
		}
	}

	// The admission probe fires before the state joins watchList: under
	// the real-time clock a round on the timer goroutine could otherwise
	// snapshot the list mid-admission and probe the same state
	// concurrently. Under a Sim clock Watch runs inside a clock event,
	// so the ordering is unobservable there.
	f.probeRound([]*DomainState{st}, now)
	f.watchMu.Lock()
	f.watchList = append(f.watchList, st)
	f.watchMu.Unlock()
	f.armRound(now)
}

// armRound schedules the next coalesced probe round while any watch is
// active: one clock event per interval serves every due domain, which is
// what collapses the fleet's event count from probes to rounds. When the
// last watch retires the chain disarms, so a fully-drained clock stays
// drained. now is the caller's own instant (its firing time under a Sim
// clock), never re-read from the clock — round events fire speculatively
// under the lookahead drain, where Clock.Now lags at the last barrier.
//
// On a tag-scheduling clock the round event carries the live watch mask
// via a TagAt closure: the mask is read at scan time, not arm time, so
// watches admitted between arming and firing are still covered.
func (f *Fleet) armRound(now time.Time) {
	f.roundMu.Lock()
	if f.armed || f.active.Load() == 0 {
		f.roundMu.Unlock()
		return
	}
	f.armed = true
	f.roundMu.Unlock()
	if f.tagClk != nil {
		f.tagClk.ScheduleTagged(simclock.TaggedTimed{
			At:    now.Add(f.cfg.Interval),
			TagAt: func() simclock.EffectTag { return simclock.EffectTag(f.watchMask.Load()) },
			Fn:    f.round,
		})
		return
	}
	f.clk.After(f.cfg.Interval, func() { f.round(f.clk.Now()) })
}

// round is the per-interval clock event: snapshot the active watch set,
// probe it as one batch, re-arm while work remains. now is the event's
// firing instant, passed by the scheduler (time-explicit contract).
func (f *Fleet) round(now time.Time) {
	f.roundMu.Lock()
	f.armed = false
	f.roundMu.Unlock()

	targets := f.dueTargets(now)
	if len(targets) > 0 {
		f.rounds.Add(1)
		workpool.AtomicMax(&f.maxRound, int64(len(targets)))
		f.probeRound(targets, now)
	}
	f.retireElapsed(now.Add(f.cfg.Interval))
	f.armRound(now)
}

// retireElapsed applies the next round's retirement predicate one
// interval early: any watch whose window will have elapsed by next is
// retired now, instead of arming one more round event whose only work
// would be that retirement. The predicate is exactly what dueTargets
// would evaluate at the next round's instant before probing, so no probe
// is ever skipped — the trailing, probe-free round event simply never
// exists, and a campaign's final event leaves the clock drained.
func (f *Fleet) retireElapsed(next time.Time) {
	f.watchMu.Lock()
	defer f.watchMu.Unlock()
	for _, st := range f.watchList {
		sh := f.shard(st.Domain)
		sh.mu.Lock()
		if !st.Finished && next.Sub(st.Started) > f.cfg.Window {
			st.Finished = true
			f.active.Add(-1)
		}
		sh.mu.Unlock()
	}
}

// dueTargets snapshots the active watch set, retiring watches whose
// 48-hour window has elapsed. watchList is already in admission order,
// so no per-round sort or shard-map walk is needed; retired entries
// compact away once they outnumber the living.
func (f *Fleet) dueTargets(now time.Time) []*DomainState {
	f.watchMu.Lock()
	defer f.watchMu.Unlock()
	due := make([]*DomainState, 0, len(f.watchList))
	for _, st := range f.watchList {
		sh := f.shard(st.Domain)
		sh.mu.Lock()
		fin := st.Finished
		if !fin && now.Sub(st.Started) > f.cfg.Window {
			st.Finished = true
			fin = true
			f.active.Add(-1)
		}
		sh.mu.Unlock()
		if !fin {
			due = append(due, st)
		}
	}
	if len(due)*2 < len(f.watchList) {
		f.watchList = append(make([]*DomainState, 0, len(due)), due...)
	}
	return due
}

// roundResult is one domain's resolved probe within a batch.
type roundResult struct {
	obs Observation
	mx  []string
	txt []string
}

// probeRound executes one coalesced measurement round. Stage 1 resolves
// the whole batch concurrently — per-domain backend calls on the fleet's
// worker pool in the serial baseline, or (ProbeWorkers ≥ 1 against a
// BatchBackend) one ProbeBatch call per worker slice so the transport
// pipelines a whole sub-batch of queries at once. Backend reads are
// side-effect-free, so execution order is unobservable. Stage 2 applies
// state updates and delivers observations in watch-admission order, the
// order the per-domain scheduler produced — inline on this goroutine by
// default, or through the apply engine's fan-out + reorder buffer when
// ApplyWorkers ≥ 1 (apply.go); probe and apply width therefore never
// reorder an observable, and campaigns stay byte-identical across
// serial and batched probe modes, apply widths, and clock drains.
func (f *Fleet) probeRound(targets []*DomainState, now time.Time) {
	if len(targets) == 0 {
		return
	}
	if f.cfg.ApplyWorkers > 0 {
		f.roundPipelined(targets, now)
		return
	}
	results := make([]roundResult, len(targets))
	f.probeStage(targets, results, now, nil)
	obsFns := f.observers.Load()
	for i, st := range targets {
		f.apply(st, &results[i], now)
		if obsFns != nil {
			for _, fn := range *obsFns {
				fn(results[i].obs)
			}
		}
	}
}

// probeStage is stage 1 of a round: resolve every target and fill the
// positional results slice. landed, when non-nil, is invoked once per
// completed contiguous range [lo, hi) as soon as those results are
// final — the apply engine feeds its fan-out from this callback, so
// applies start while slower slices are still resolving. landed may be
// called concurrently from multiple pool workers.
func (f *Fleet) probeStage(targets []*DomainState, results []roundResult, now time.Time, landed func(lo, hi int)) {
	mb, hasMail := f.backend.(MailBackend)
	probeMail := f.cfg.ProbeMail && hasMail
	if bb, ok := f.backend.(BatchBackend); ok && f.cfg.ProbeWorkers > 0 {
		f.probeBatched(bb, targets, results, now, probeMail, landed)
		return
	}
	workpool.Run(len(targets), f.cfg.Workers, func(i int) {
		st := targets[i]
		obs := Observation{Domain: st.Domain, Worker: st.worker, At: now}
		ns, inZone := f.backend.AuthoritativeNS(st.Domain)
		obs.InZone = inZone
		if inZone {
			obs.NS = append([]string(nil), ns...)
			sort.Strings(obs.NS)
			obs.V4 = f.backend.LookupA(st.Domain)
			obs.V6 = f.backend.LookupAAAA(st.Domain)
			if probeMail {
				results[i].mx = mb.LookupMX(st.Domain)
				results[i].txt = mb.LookupTXT(st.Domain)
			}
		}
		results[i].obs = obs
		if landed != nil {
			landed(i, i+1)
		}
	})
}

// probeBatched is stage 1 of a round in batch mode: the target list is
// partitioned into ProbeWorkers contiguous slices (admission order
// preserved inside each slice) and each worker submits its whole slice
// as one ProbeBatch call, letting the backend pipeline every query in
// the sub-batch over shared transport. Results are positional, so slot
// i of the batch lands in results[lo+i] — the exact cell the serial
// path would have filled — and mail fields are copied only when the
// probe is in-zone, mirroring the serial path so a backend that answers
// MX/TXT for out-of-zone names cannot diverge the campaign.
func (f *Fleet) probeBatched(bb BatchBackend, targets []*DomainState, results []roundResult, now time.Time, probeMail bool, landed func(lo, hi int)) {
	// An empty round must return before the slice-bound arithmetic:
	// clamping w to len(targets) below would zero the bounds divisor. A
	// StopWhenDead campaign whose active set empties mid-flight is the
	// path that lands here.
	if len(targets) == 0 {
		return
	}
	w := f.cfg.ProbeWorkers
	if w > len(targets) {
		w = len(targets)
	}
	bounds := make([]int, w+1)
	for i := 0; i <= w; i++ {
		bounds[i] = i * len(targets) / w
	}
	workpool.Run(w, w, func(s int) {
		lo, hi := bounds[s], bounds[s+1]
		names := make([]string, hi-lo)
		for j := range names {
			names[j] = targets[lo+j].Domain
		}
		for j, pr := range bb.ProbeBatch(names, probeMail) {
			i := lo + j
			st := targets[i]
			obs := Observation{Domain: st.Domain, Worker: st.worker, At: now, InZone: pr.InZone}
			if pr.InZone {
				obs.NS = append([]string(nil), pr.NS...)
				sort.Strings(obs.NS)
				obs.V4 = pr.V4
				obs.V6 = pr.V6
				if probeMail {
					results[i].mx = pr.MX
					results[i].txt = pr.TXT
				}
			}
			results[i].obs = obs
		}
		if landed != nil {
			landed(lo, hi)
		}
	})
}

// apply records one resolved probe into the domain's aggregate state.
func (f *Fleet) apply(st *DomainState, r *roundResult, now time.Time) {
	sh := f.shard(st.Domain)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st.Probes++
	if r.obs.InZone {
		st.EverInZone = true
		st.LastAliveAt = now
		if st.FirstNS == nil {
			st.FirstNS = r.obs.NS
		}
		if !equalStrings(st.FirstNS, r.obs.NS) && !st.NSChanged {
			st.NSChanged = true
			st.NSChangedAt = now
		}
		st.LastNS = r.obs.NS
		if st.FirstV4 == nil && len(r.obs.V4) > 0 {
			st.FirstV4 = r.obs.V4
		}
		if len(r.mx) > 0 {
			st.HasMX = true
		}
		for _, s := range r.txt {
			if strings.HasPrefix(s, "v=spf1") {
				st.HasSPF = true
			}
		}
	} else if st.EverInZone && st.DeadAt.IsZero() {
		st.DeadAt = now
	}
	if f.cfg.StopWhenDead && !st.DeadAt.IsZero() && !st.Finished {
		st.Finished = true
		f.active.Add(-1)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// State returns a copy of domain's aggregated state.
func (f *Fleet) State(domain string) (DomainState, bool) {
	domain = dnsname.Canonical(domain)
	sh := f.shard(domain)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.states[domain]
	if !ok {
		return DomainState{}, false
	}
	return *st, true
}

// States returns copies of all domain states, sorted by domain.
func (f *Fleet) States() []DomainState {
	out := make([]DomainState, 0, f.Watched())
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.Lock()
		for _, st := range sh.states {
			out = append(out, *st)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	return out
}

// Watched returns the number of domains ever watched.
func (f *Fleet) Watched() int {
	n := 0
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.Lock()
		n += len(sh.states)
		sh.mu.Unlock()
	}
	return n
}

// AttachDispatcher couples the RDAP dispatch engine's counters into
// Report. Safe to call concurrently with probing.
func (f *Fleet) AttachDispatcher(d *rdap.Dispatcher) {
	f.dispatcher.Store(d)
}

// FleetReport summarizes the fleet's probe activity plus — when a
// dispatcher is attached — the RDAP dispatch engine's counters, and —
// when the fleet runs on a Sim clock — the event engine's counters.
type FleetReport struct {
	Watched    int   // domains ever scheduled
	Finished   int   // watch windows closed
	Probes     int64 // probes executed
	EverInZone int   // domains observed delegated at least once
	Died       int   // domains that left the zone while watched
	NSChanged  int   // domains whose delegation changed mid-watch
	Rounds     int64 // coalesced probe rounds executed (clock events)
	MaxRound   int   // most domains probed in one round
	// Apply-engine counters, all zero when ApplyWorkers == 0.
	// ParallelApplies and ReorderReleases are deterministic for a given
	// config (every probe is exactly one apply and one in-order release,
	// so both equal Probes); ReorderHeld counts applies that completed
	// ahead of the release cursor and waited in the buffer — a
	// scheduling-dependent measure of how much resequencing the buffer
	// actually performed.
	ParallelApplies int64
	ReorderReleases int64
	ReorderHeld     int64
	// Dispatch holds the attached dispatcher's counters; zero-valued
	// when step 2 runs on the serial path.
	Dispatch rdap.DispatchStats
	// Engine holds the simulated clock's event counters; zero-valued
	// under the real-time clock.
	Engine simclock.Stats
}

// Report aggregates the fleet's operational state.
func (f *Fleet) Report() FleetReport {
	var rep FleetReport
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.Lock()
		for _, st := range sh.states {
			rep.Watched++
			rep.Probes += int64(st.Probes)
			if st.Finished {
				rep.Finished++
			}
			if st.EverInZone {
				rep.EverInZone++
			}
			if !st.DeadAt.IsZero() {
				rep.Died++
			}
			if st.NSChanged {
				rep.NSChanged++
			}
		}
		sh.mu.Unlock()
	}
	rep.Rounds = f.rounds.Load()
	rep.MaxRound = int(f.maxRound.Load())
	rep.ParallelApplies = f.applies.Load()
	rep.ReorderReleases = f.releases.Load()
	rep.ReorderHeld = f.heldBack.Load()
	if d := f.dispatcher.Load(); d != nil {
		rep.Dispatch = d.Stats()
	}
	if eng, ok := f.clk.(interface{ Stats() simclock.Stats }); ok {
		rep.Engine = eng.Stats()
	}
	return rep
}
