package zonefile

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"darkdns/internal/dnsmsg"
)

const sampleZone = `$ORIGIN com.
$TTL 900
@	IN SOA a.gtld-servers.net. nstld.verisign-grs.com. (
		1700000001 ; serial
		1800       ; refresh
		900        ; retry
		604800     ; expire
		86400 )    ; minimum
@	IN NS	a.gtld-servers.net.
example	IN NS	ns1.cloudflare.com.
example	IN NS	ns2.cloudflare.com.
	IN NS	ns3.cloudflare.com.     ; blank owner inherits "example.com"
www.example 300 IN A 192.0.2.10
v6.example IN AAAA 2001:db8::10
mail.example IN MX 10 mx1.example
txt.example IN TXT "v=spf1 -all" "second \"quoted\" string"
alias.example IN CNAME example
`

func parseAll(t *testing.T, src string, opts ...Option) []dnsmsg.Record {
	t.Helper()
	recs, err := New(strings.NewReader(src), opts...).All()
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return recs
}

func TestParseSampleZone(t *testing.T) {
	recs := parseAll(t, sampleZone)
	if len(recs) != 10 {
		t.Fatalf("got %d records, want 10", len(recs))
	}
	soa := recs[0]
	if soa.Type != dnsmsg.TypeSOA || soa.Name != "com" {
		t.Fatalf("first record: %+v", soa)
	}
	if soa.SOA.Serial != 1700000001 || soa.SOA.Minimum != 86400 {
		t.Errorf("SOA fields: %+v", soa.SOA)
	}
	if soa.TTL != 900 {
		t.Errorf("SOA TTL = %d, want 900 from $TTL", soa.TTL)
	}
	// Relative owner qualification.
	if recs[2].Name != "example.com" || recs[2].NS != "ns1.cloudflare.com" {
		t.Errorf("record 2: %+v", recs[2])
	}
	// Blank-owner inheritance.
	if recs[4].Name != "example.com" || recs[4].NS != "ns3.cloudflare.com" {
		t.Errorf("blank owner: %+v", recs[4])
	}
	// Explicit TTL overrides $TTL.
	if recs[5].TTL != 300 || recs[5].A.String() != "192.0.2.10" {
		t.Errorf("A record: %+v", recs[5])
	}
	if recs[6].AAAA.String() != "2001:db8::10" {
		t.Errorf("AAAA: %+v", recs[6])
	}
	if recs[7].MX.Preference != 10 || recs[7].MX.Exchange != "mx1.example.com" {
		t.Errorf("MX: %+v", recs[7])
	}
	if len(recs[8].TXT) != 2 || recs[8].TXT[0] != "v=spf1 -all" || recs[8].TXT[1] != `second "quoted" string` {
		t.Errorf("TXT: %+v", recs[8].TXT)
	}
	if recs[9].CNAME != "example.com" {
		t.Errorf("CNAME: %+v", recs[9])
	}
}

func TestOriginDirectiveSwitch(t *testing.T) {
	src := `$TTL 60
$ORIGIN com.
a IN A 192.0.2.1
$ORIGIN net.
a IN A 192.0.2.2
b. IN A 192.0.2.3
`
	recs := parseAll(t, src)
	if recs[0].Name != "a.com" || recs[1].Name != "a.net" || recs[2].Name != "b" {
		t.Errorf("origins: %q %q %q", recs[0].Name, recs[1].Name, recs[2].Name)
	}
}

func TestAtOwner(t *testing.T) {
	recs := parseAll(t, "@ 60 IN NS ns1.x.\n", WithOrigin("shop"))
	if recs[0].Name != "shop" {
		t.Errorf("@ owner = %q", recs[0].Name)
	}
}

func TestTTLUnits(t *testing.T) {
	cases := map[string]uint32{
		"3600": 3600, "1h": 3600, "1H": 3600, "90m": 5400, "1h30m": 5400,
		"2d": 172800, "1w": 604800, "1w1d1h1m1s": 694861, "0": 0,
	}
	for in, want := range cases {
		got, err := parseTTL(in)
		if err != nil || got != want {
			t.Errorf("parseTTL(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "h", "5x", "-3"} {
		if _, err := parseTTL(bad); err == nil {
			t.Errorf("parseTTL(%q) should fail", bad)
		}
	}
}

func TestClassAndTTLEitherOrder(t *testing.T) {
	recs := parseAll(t, "x.com. IN 120 A 192.0.2.1\ny.com. 120 IN A 192.0.2.2\n")
	if recs[0].TTL != 120 || recs[1].TTL != 120 {
		t.Errorf("TTLs: %d %d", recs[0].TTL, recs[1].TTL)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"x.com. IN A\n",                       // missing rdata
		"x.com. IN A 192.0.2.1 extra\n",       // extra rdata
		"x.com. IN A not-an-ip\n",             // bad address
		"x.com. IN AAAA 192.0.2.1\n",          // v4 in AAAA
		"x.com. IN MX ten mx.x.com.\n",        // bad preference
		"x.com. IN SOA a. b. 1 2 3\n",         // short SOA
		"x.com. A 192.0.2.1\n",                // no TTL anywhere
		"x.com. IN CH TXT \"chaos\"\n",        // unsupported class
		"$ORIGIN\n",                           // directive arity
		"$BOGUS x\n",                          // unknown directive
		"x.com. 60 IN WKS 1 2 3\n",            // unsupported type
		"x.com. 60 IN TXT \"unterminated\n",   // quote error
		"x.com. 60 IN SOA a. b. (1 2 3 4 5\n", // unclosed paren
	}
	for _, src := range cases {
		if _, err := New(strings.NewReader(src)).All(); err == nil {
			t.Errorf("parse(%q) succeeded, want error", src)
		}
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	src := "good.com. 60 IN A 192.0.2.1\nbad.com. 60 IN A nope\n"
	_, err := New(strings.NewReader(src)).All()
	var se *errSyntax
	if !errors.As(err, &se) {
		t.Fatalf("want *errSyntax, got %T %v", err, err)
	}
	if se.line != 2 {
		t.Errorf("error line = %d, want 2", se.line)
	}
}

func TestCommentsEverywhere(t *testing.T) {
	src := "; leading comment\nx.com. 60 IN A 192.0.2.1 ; trailing\n; inter\ny.com. 60 IN A 192.0.2.2\n"
	recs := parseAll(t, src)
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
}

func TestNoOwnerFirstLineFails(t *testing.T) {
	if _, err := New(strings.NewReader("  60 IN A 192.0.2.1\n")).All(); err == nil {
		t.Error("whitespace-led first record should fail")
	}
}

func TestStrictOwnerValidation(t *testing.T) {
	src := "bad_owner!.com. 60 IN A 192.0.2.1\n"
	if _, err := New(strings.NewReader(src), Strict()).All(); err == nil {
		t.Error("strict mode should reject invalid owner")
	}
	if _, err := New(strings.NewReader(src)).All(); err != nil {
		t.Errorf("lenient mode should pass: %v", err)
	}
}

func TestWriterRoundTrip(t *testing.T) {
	recs := parseAll(t, sampleZone)
	var buf bytes.Buffer
	w := NewWriter(&buf, "com")
	if err := w.WriteComment("round trip"); err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.WriteRecord(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	again, err := New(bytes.NewReader(buf.Bytes())).All()
	if err != nil {
		t.Fatalf("re-parse: %v\nzone:\n%s", err, buf.String())
	}
	if len(again) != len(recs) {
		t.Fatalf("round trip %d → %d records", len(recs), len(again))
	}
	for i := range recs {
		if recs[i].String() != again[i].String() {
			t.Errorf("record %d:\n  before %s\n  after  %s", i, recs[i].String(), again[i].String())
		}
	}
}

func TestWriterRelativeNames(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, "com")
	rec := dnsmsg.Record{Name: "example.com", Type: dnsmsg.TypeNS, TTL: 60, NS: "ns.other.net"}
	if err := w.WriteRecord(&rec); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	out := buf.String()
	if !strings.Contains(out, "example\t") {
		t.Errorf("owner not relativized:\n%s", out)
	}
	if !strings.Contains(out, "ns.other.net.") {
		t.Errorf("external target not absolute:\n%s", out)
	}
}

func TestStreamingConstantMemoryShape(t *testing.T) {
	// Generate a large zone lazily and ensure the parser consumes it
	// record by record without materializing (smoke test: count only).
	const n = 50_000
	pr, pw := io.Pipe()
	go func() {
		bw := NewWriter(pw, "shop")
		for i := 0; i < n; i++ {
			rec := dnsmsg.Record{Name: fmt.Sprintf("d%07d.shop", i), Type: dnsmsg.TypeNS, TTL: 60, NS: "ns1.dns-parking.com"}
			if err := bw.WriteRecord(&rec); err != nil {
				pw.CloseWithError(err)
				return
			}
		}
		bw.Flush()
		pw.Close()
	}()
	p := New(pr)
	count := 0
	for {
		_, err := p.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		count++
	}
	if count != n {
		t.Fatalf("streamed %d records, want %d", count, n)
	}
}

func TestMultiLineParensWithComments(t *testing.T) {
	src := `x.com. 60 IN SOA ns. host. ( ; open
1 ; serial comment
2 3 ; two on a line
4
5 ) ; close
`
	recs := parseAll(t, src)
	if recs[0].SOA.Serial != 1 || recs[0].SOA.Minimum != 5 {
		t.Errorf("SOA: %+v", recs[0].SOA)
	}
}

func TestPropertyParserNeverPanics(t *testing.T) {
	// The parser must reject arbitrary input with errors, never panics.
	f := func(src []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		p := New(bytes.NewReader(src))
		for i := 0; i < 1000; i++ {
			if _, err := p.Next(); err != nil {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestPropertyWriterOutputAlwaysReparses(t *testing.T) {
	// Any record the writer accepts must re-parse to the same string.
	f := func(owner8, ns8 uint32, ttl uint32) bool {
		owner := fmt.Sprintf("d%d.com", owner8%1_000_000)
		ns := fmt.Sprintf("ns%d.example.net", ns8%1000)
		rec := dnsmsg.Record{Name: owner, Type: dnsmsg.TypeNS, Class: dnsmsg.ClassIN, TTL: ttl, NS: ns}
		var buf bytes.Buffer
		w := NewWriter(&buf, "com")
		if err := w.WriteRecord(&rec); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		got, err := New(bytes.NewReader(buf.Bytes())).All()
		if err != nil || len(got) != 1 {
			return false
		}
		return got[0].String() == rec.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkParseZone(b *testing.B) {
	var sb strings.Builder
	w := NewWriter(&sb, "com")
	for i := 0; i < 10_000; i++ {
		rec := dnsmsg.Record{Name: fmt.Sprintf("d%05d.com", i), Type: dnsmsg.TypeNS, TTL: 60, NS: fmt.Sprintf("ns%d.cloudflare.com", i%4)}
		w.WriteRecord(&rec)
	}
	w.Flush()
	src := sb.String()
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := New(strings.NewReader(src))
		for {
			_, err := p.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}
