package zonefile

import (
	"io"
	"strings"
	"testing"
)

// FuzzParser feeds arbitrary text through the master-file parser: every
// input must terminate with records or an error, never panic or loop.
func FuzzParser(f *testing.F) {
	f.Add(sampleZone)
	f.Add("$ORIGIN com.\nx 60 IN A 192.0.2.1\n")
	f.Add("x.com. IN SOA a. b. (1 2 3 4 5)\n")
	f.Add(`x.com. 60 IN TXT "unterminated`)
	f.Add("(((((")
	f.Add(";;;; only comments\n\n")
	f.Fuzz(func(t *testing.T, src string) {
		p := New(strings.NewReader(src))
		for i := 0; i < 10_000; i++ {
			_, err := p.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
		}
		t.Fatalf("parser yielded 10k records from %d bytes of input", len(src))
	})
}
