// Package zonefile implements a streaming RFC 1035 master-file parser and
// writer. The parser is pull-based over a bufio.Reader and holds only the
// current entry in memory, so multi-gigabyte TLD zone files (the CZDS
// snapshots DarkDNS consumes) stream in constant space.
//
// Supported master-file syntax: ';' comments, '(' ')' multi-line grouping,
// quoted character strings, $ORIGIN and $TTL directives, '@' owner,
// blank-owner inheritance, and relative names qualified by the origin.
package zonefile

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// tokenKind discriminates lexer output.
type tokenKind uint8

const (
	tokText    tokenKind = iota // bare or quoted string
	tokNewline                  // end of a logical line (outside parens)
	tokEOF
)

type token struct {
	kind   tokenKind
	text   string
	quoted bool
	line   int
	// ownerPos is true when the token is the first on its physical line
	// and no whitespace preceded it, i.e. it sits in owner position.
	ownerPos bool
}

// lexer streams tokens from a master file, flattening parenthesized groups
// into a single logical line.
type lexer struct {
	r      *bufio.Reader
	line   int
	parens int
	// atLineStart tracks whether the next text token begins a physical line.
	atLineStart  bool
	startedBlank bool
	err          error
}

func newLexer(r io.Reader) *lexer {
	return &lexer{r: bufio.NewReaderSize(r, 64<<10), line: 1, atLineStart: true}
}

// errSyntax wraps lexical/syntactic errors with a line number.
type errSyntax struct {
	line int
	msg  string
}

func (e *errSyntax) Error() string { return fmt.Sprintf("zonefile: line %d: %s", e.line, e.msg) }

// next returns the next token. After tokEOF it keeps returning tokEOF.
func (l *lexer) next() (token, error) {
	if l.err != nil {
		return token{kind: tokEOF}, l.err
	}
	for {
		c, err := l.r.ReadByte()
		if err == io.EOF {
			if l.parens > 0 {
				l.err = &errSyntax{l.line, "unclosed parenthesis"}
				return token{kind: tokEOF}, l.err
			}
			return token{kind: tokEOF, line: l.line}, nil
		}
		if err != nil {
			l.err = err
			return token{kind: tokEOF}, err
		}
		switch c {
		case ' ', '\t', '\r':
			if l.atLineStart {
				l.startedBlank = true
			}
			continue
		case '\n':
			l.line++
			wasStart := l.atLineStart
			l.atLineStart = true
			l.startedBlank = false
			if l.parens > 0 || wasStart {
				continue // blank line or inside parens: no token
			}
			return token{kind: tokNewline, line: l.line - 1}, nil
		case ';':
			if err := l.skipComment(); err != nil {
				return token{kind: tokEOF}, err
			}
			continue
		case '(':
			l.parens++
			l.atLineStart = false
			continue
		case ')':
			if l.parens == 0 {
				l.err = &errSyntax{l.line, "unbalanced ')'"}
				return token{kind: tokEOF}, l.err
			}
			l.parens--
			continue
		case '"':
			ownerPos := l.atLineStart && !l.startedBlank && l.parens == 0
			l.atLineStart = false
			l.startedBlank = false
			t, err := l.quoted()
			t.ownerPos = ownerPos
			return t, err
		default:
			return l.bare(c)
		}
	}
}

// skipComment consumes to (not including) the newline.
func (l *lexer) skipComment() error {
	for {
		c, err := l.r.ReadByte()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			l.err = err
			return err
		}
		if c == '\n' {
			return l.r.UnreadByte()
		}
	}
}

// quoted reads a "..." character string with \-escapes.
func (l *lexer) quoted() (token, error) {
	var sb strings.Builder
	for {
		c, err := l.r.ReadByte()
		if err != nil {
			l.err = &errSyntax{l.line, "unterminated quoted string"}
			return token{kind: tokEOF}, l.err
		}
		switch c {
		case '"':
			return token{kind: tokText, text: sb.String(), quoted: true, line: l.line}, nil
		case '\\':
			e, err := l.r.ReadByte()
			if err != nil {
				l.err = &errSyntax{l.line, "dangling escape"}
				return token{kind: tokEOF}, l.err
			}
			sb.WriteByte(e)
		case '\n':
			l.err = &errSyntax{l.line, "newline in quoted string"}
			return token{kind: tokEOF}, l.err
		default:
			sb.WriteByte(c)
		}
	}
}

// bare reads an unquoted token beginning with first.
func (l *lexer) bare(first byte) (token, error) {
	ownerPos := l.atLineStart && !l.startedBlank && l.parens == 0
	l.atLineStart = false
	l.startedBlank = false
	var sb strings.Builder
	sb.WriteByte(first)
	for {
		c, err := l.r.ReadByte()
		if err == io.EOF {
			break
		}
		if err != nil {
			l.err = err
			return token{kind: tokEOF}, err
		}
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == ';' || c == '(' || c == ')' || c == '"' {
			if uerr := l.r.UnreadByte(); uerr != nil {
				l.err = uerr
				return token{kind: tokEOF}, uerr
			}
			break
		}
		if c == '\\' {
			e, err := l.r.ReadByte()
			if err != nil {
				l.err = &errSyntax{l.line, "dangling escape"}
				return token{kind: tokEOF}, l.err
			}
			sb.WriteByte(e)
			continue
		}
		sb.WriteByte(c)
	}
	return token{kind: tokText, text: sb.String(), line: l.line, ownerPos: ownerPos}, nil
}

// logicalLine collects the tokens of one logical line (parens flattened).
// ownerPresent is false when the physical line began with whitespace.
func (l *lexer) logicalLine() (fields []token, ownerPresent bool, err error) {
	for {
		t, err := l.next()
		if err != nil {
			return nil, false, err
		}
		switch t.kind {
		case tokEOF:
			if len(fields) == 0 {
				return nil, false, io.EOF
			}
			return fields, ownerPresent, nil
		case tokNewline:
			if len(fields) == 0 {
				continue // empty logical line
			}
			return fields, ownerPresent, nil
		default:
			if len(fields) == 0 {
				ownerPresent = t.ownerPos
			}
			fields = append(fields, t)
		}
	}
}
