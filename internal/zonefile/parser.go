package zonefile

import (
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"

	"darkdns/internal/dnsmsg"
	"darkdns/internal/dnsname"
)

// Parser streams resource records from a master file. Create with New,
// then call Next until it returns io.EOF.
type Parser struct {
	lx         *lexer
	origin     string // canonical, "" = root
	defaultTTL uint32
	haveTTL    bool
	lastOwner  string
	strict     bool
}

// Option configures a Parser.
type Option func(*Parser)

// WithOrigin sets the initial $ORIGIN (canonical form expected).
func WithOrigin(origin string) Option {
	return func(p *Parser) { p.origin = dnsname.Canonical(origin) }
}

// WithDefaultTTL sets the TTL used when records omit one and no $TTL
// directive has been seen.
func WithDefaultTTL(ttl uint32) Option {
	return func(p *Parser) { p.defaultTTL = ttl; p.haveTTL = true }
}

// Strict makes the parser reject records whose owner fails hostname
// validation rather than passing them through.
func Strict() Option {
	return func(p *Parser) { p.strict = true }
}

// New builds a streaming parser over r.
func New(r io.Reader, opts ...Option) *Parser {
	p := &Parser{lx: newLexer(r)}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Origin returns the currently effective origin.
func (p *Parser) Origin() string { return p.origin }

// Next returns the next record. It returns io.EOF after the last record.
func (p *Parser) Next() (*dnsmsg.Record, error) {
	for {
		fields, ownerPresent, err := p.lx.logicalLine()
		if err != nil {
			return nil, err
		}
		if len(fields) == 0 {
			continue
		}
		// Directives.
		if ownerPresent && strings.HasPrefix(fields[0].text, "$") {
			if err := p.directive(fields); err != nil {
				return nil, err
			}
			continue
		}
		rec, err := p.record(fields, ownerPresent)
		if err != nil {
			return nil, err
		}
		if rec != nil {
			return rec, nil
		}
	}
}

// All drains the parser into a slice (testing/small-zone convenience).
func (p *Parser) All() ([]dnsmsg.Record, error) {
	var out []dnsmsg.Record
	for {
		r, err := p.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, *r)
	}
}

func (p *Parser) directive(fields []token) error {
	switch strings.ToUpper(fields[0].text) {
	case "$ORIGIN":
		if len(fields) != 2 {
			return &errSyntax{fields[0].line, "$ORIGIN wants exactly one argument"}
		}
		p.origin = dnsname.Canonical(fields[1].text)
		return nil
	case "$TTL":
		if len(fields) != 2 {
			return &errSyntax{fields[0].line, "$TTL wants exactly one argument"}
		}
		ttl, err := parseTTL(fields[1].text)
		if err != nil {
			return &errSyntax{fields[0].line, err.Error()}
		}
		p.defaultTTL = ttl
		p.haveTTL = true
		return nil
	case "$INCLUDE":
		return &errSyntax{fields[0].line, "$INCLUDE is not supported in streaming mode"}
	default:
		return &errSyntax{fields[0].line, "unknown directive " + fields[0].text}
	}
}

func (p *Parser) record(fields []token, ownerPresent bool) (*dnsmsg.Record, error) {
	line := fields[0].line
	i := 0
	owner := p.lastOwner
	if ownerPresent {
		owner = p.qualify(fields[0].text)
		i = 1
	}
	if owner == "" && ownerPresent && fields[0].text != "@" && fields[0].text != "." {
		// qualify("") only happens for @ with empty origin; fine.
		_ = owner
	}
	if !ownerPresent && p.lastOwner == "" {
		return nil, &errSyntax{line, "record with no owner and no previous owner"}
	}
	p.lastOwner = owner

	// [TTL] [class] type — TTL and class may come in either order.
	ttl := p.defaultTTL
	ttlSet := p.haveTTL
	classSeen := false
	var typ dnsmsg.Type
	for {
		if i >= len(fields) {
			return nil, &errSyntax{line, "record is missing a type"}
		}
		f := strings.ToUpper(fields[i].text)
		if !classSeen && f == "IN" {
			classSeen = true
			i++
			continue
		}
		if !classSeen && (f == "CH" || f == "HS" || f == "CS") {
			return nil, &errSyntax{line, "unsupported class " + f}
		}
		if v, err := parseTTL(fields[i].text); err == nil && fields[i].text[0] >= '0' && fields[i].text[0] <= '9' {
			ttl = v
			ttlSet = true
			i++
			continue
		}
		t, err := dnsmsg.ParseType(f)
		if err != nil {
			return nil, &errSyntax{line, fmt.Sprintf("expected type, got %q", fields[i].text)}
		}
		typ = t
		i++
		break
	}
	if !ttlSet {
		return nil, &errSyntax{line, "record has no TTL and no $TTL default"}
	}
	if p.strict {
		if err := dnsname.Check(owner); err != nil {
			return nil, &errSyntax{line, "invalid owner: " + err.Error()}
		}
	}

	rec := &dnsmsg.Record{Name: owner, Type: typ, Class: dnsmsg.ClassIN, TTL: ttl}
	rd := fields[i:]
	var err error
	switch typ {
	case dnsmsg.TypeA:
		err = p.rdA(rec, rd, line)
	case dnsmsg.TypeAAAA:
		err = p.rdAAAA(rec, rd, line)
	case dnsmsg.TypeNS:
		rec.NS, err = p.rdName(rd, line)
	case dnsmsg.TypeCNAME:
		rec.CNAME, err = p.rdName(rd, line)
	case dnsmsg.TypeSOA:
		err = p.rdSOA(rec, rd, line)
	case dnsmsg.TypeMX:
		err = p.rdMX(rec, rd, line)
	case dnsmsg.TypeTXT:
		err = p.rdTXT(rec, rd, line)
	default:
		err = &errSyntax{line, "unsupported record type " + typ.String()}
	}
	if err != nil {
		return nil, err
	}
	return rec, nil
}

// qualify resolves a presentation name against the origin.
func (p *Parser) qualify(s string) string {
	if s == "@" {
		return p.origin
	}
	if strings.HasSuffix(s, ".") {
		return dnsname.Canonical(s)
	}
	if p.origin == "" {
		return dnsname.Canonical(s)
	}
	return dnsname.Canonical(s) + "." + p.origin
}

func (p *Parser) rdA(rec *dnsmsg.Record, rd []token, line int) error {
	if len(rd) != 1 {
		return &errSyntax{line, "A wants one address"}
	}
	a, err := netip.ParseAddr(rd[0].text)
	if err != nil || !a.Is4() {
		return &errSyntax{line, "bad IPv4 address " + rd[0].text}
	}
	rec.A = a
	return nil
}

func (p *Parser) rdAAAA(rec *dnsmsg.Record, rd []token, line int) error {
	if len(rd) != 1 {
		return &errSyntax{line, "AAAA wants one address"}
	}
	a, err := netip.ParseAddr(rd[0].text)
	if err != nil || !a.Is6() || a.Is4() {
		return &errSyntax{line, "bad IPv6 address " + rd[0].text}
	}
	rec.AAAA = a
	return nil
}

func (p *Parser) rdName(rd []token, line int) (string, error) {
	if len(rd) != 1 {
		return "", &errSyntax{line, "record wants one domain name"}
	}
	return p.qualify(rd[0].text), nil
}

func (p *Parser) rdSOA(rec *dnsmsg.Record, rd []token, line int) error {
	if len(rd) != 7 {
		return &errSyntax{line, fmt.Sprintf("SOA wants 7 fields, got %d", len(rd))}
	}
	rec.SOA.MName = p.qualify(rd[0].text)
	rec.SOA.RName = p.qualify(rd[1].text)
	vals := make([]uint32, 5)
	for i := 0; i < 5; i++ {
		v, err := parseTTL(rd[2+i].text)
		if err != nil {
			return &errSyntax{line, "bad SOA numeric field: " + rd[2+i].text}
		}
		vals[i] = v
	}
	rec.SOA.Serial, rec.SOA.Refresh, rec.SOA.Retry, rec.SOA.Expire, rec.SOA.Minimum =
		vals[0], vals[1], vals[2], vals[3], vals[4]
	return nil
}

func (p *Parser) rdMX(rec *dnsmsg.Record, rd []token, line int) error {
	if len(rd) != 2 {
		return &errSyntax{line, "MX wants preference and exchange"}
	}
	pref, err := strconv.ParseUint(rd[0].text, 10, 16)
	if err != nil {
		return &errSyntax{line, "bad MX preference " + rd[0].text}
	}
	rec.MX.Preference = uint16(pref)
	rec.MX.Exchange = p.qualify(rd[1].text)
	return nil
}

func (p *Parser) rdTXT(rec *dnsmsg.Record, rd []token, line int) error {
	if len(rd) == 0 {
		return &errSyntax{line, "TXT wants at least one string"}
	}
	for _, f := range rd {
		rec.TXT = append(rec.TXT, f.text)
	}
	return nil
}

// parseTTL parses a TTL: plain seconds or BIND time units (1h30m, 2d, 1w).
func parseTTL(s string) (uint32, error) {
	if s == "" {
		return 0, fmt.Errorf("empty TTL")
	}
	if v, err := strconv.ParseUint(s, 10, 32); err == nil {
		return uint32(v), nil
	}
	var total uint64
	var cur uint64
	haveDigit := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case '0' <= c && c <= '9':
			cur = cur*10 + uint64(c-'0')
			haveDigit = true
		default:
			if !haveDigit {
				return 0, fmt.Errorf("bad TTL %q", s)
			}
			var mult uint64
			switch c {
			case 's', 'S':
				mult = 1
			case 'm', 'M':
				mult = 60
			case 'h', 'H':
				mult = 3600
			case 'd', 'D':
				mult = 86400
			case 'w', 'W':
				mult = 604800
			default:
				return 0, fmt.Errorf("bad TTL unit %q", string(c))
			}
			total += cur * mult
			cur = 0
			haveDigit = false
		}
	}
	if haveDigit {
		total += cur
	}
	if total > 1<<32-1 {
		return 0, fmt.Errorf("TTL overflow")
	}
	return uint32(total), nil
}
