package zonefile

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"darkdns/internal/dnsmsg"
	"darkdns/internal/dnsname"
)

// Writer emits records in master-file presentation form. It writes owners
// relative to the configured origin to keep large TLD zone files compact,
// mirroring how registries publish CZDS snapshots.
type Writer struct {
	w      *bufio.Writer
	origin string
	wrote  bool
}

// NewWriter creates a Writer. If origin is non-empty, a $ORIGIN directive
// is emitted before the first record and owners under the origin are
// written relative to it.
func NewWriter(w io.Writer, origin string) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 64<<10), origin: dnsname.Canonical(origin)}
}

// WriteComment emits a ';' comment line.
func (zw *Writer) WriteComment(text string) error {
	_, err := fmt.Fprintf(zw.w, "; %s\n", text)
	return err
}

// WriteRecord emits one record.
func (zw *Writer) WriteRecord(r *dnsmsg.Record) error {
	if !zw.wrote {
		zw.wrote = true
		if zw.origin != "" {
			if _, err := fmt.Fprintf(zw.w, "$ORIGIN %s.\n", zw.origin); err != nil {
				return err
			}
		}
	}
	owner := zw.rel(r.Name)
	var rd string
	switch r.Type {
	case dnsmsg.TypeA:
		rd = r.A.String()
	case dnsmsg.TypeAAAA:
		rd = r.AAAA.String()
	case dnsmsg.TypeNS:
		rd = zw.rel(r.NS)
	case dnsmsg.TypeCNAME:
		rd = zw.rel(r.CNAME)
	case dnsmsg.TypeSOA:
		rd = fmt.Sprintf("%s %s %d %d %d %d %d", zw.rel(r.SOA.MName), zw.rel(r.SOA.RName),
			r.SOA.Serial, r.SOA.Refresh, r.SOA.Retry, r.SOA.Expire, r.SOA.Minimum)
	case dnsmsg.TypeMX:
		rd = fmt.Sprintf("%d %s", r.MX.Preference, zw.rel(r.MX.Exchange))
	case dnsmsg.TypeTXT:
		parts := make([]string, len(r.TXT))
		for i, s := range r.TXT {
			parts[i] = quoteTXT(s)
		}
		rd = strings.Join(parts, " ")
	default:
		return fmt.Errorf("zonefile: cannot write record type %s", r.Type)
	}
	_, err := fmt.Fprintf(zw.w, "%s\t%d\tIN\t%s\t%s\n", owner, r.TTL, r.Type, rd)
	return err
}

// Flush drains buffered output to the underlying writer.
func (zw *Writer) Flush() error { return zw.w.Flush() }

// rel renders name relative to the origin when possible, otherwise as an
// absolute name with a trailing dot.
func (zw *Writer) rel(name string) string {
	name = dnsname.Canonical(name)
	if name == "" {
		return "."
	}
	if zw.origin != "" {
		if name == zw.origin {
			return "@"
		}
		if rest, found := strings.CutSuffix(name, "."+zw.origin); found {
			return rest
		}
	}
	return name + "."
}

func quoteTXT(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' || s[i] == '\\' {
			sb.WriteByte('\\')
		}
		sb.WriteByte(s[i])
	}
	sb.WriteByte('"')
	return sb.String()
}
