// Exchange layer of the probe engine (DESIGN.md §10): pooled UDP
// sockets with pipelined outstanding queries, per-nameserver rate
// lanes, and an in-process adapter over dnsserver handlers — the three
// transports behind the resolver's batch API. The shape follows ZDNS:
// a small pool of long-lived sockets shared by every worker, responses
// demultiplexed to waiters by transaction ID, so probe throughput is
// bounded by the wire, not by per-query socket setup.
package resolver

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"darkdns/internal/dnsmsg"
	"darkdns/internal/dnsname"
	"darkdns/internal/simclock"
	"darkdns/internal/workpool"
)

// UDPExchanger sends queries over a pool of reused UDP sockets. Each
// socket runs one reader goroutine that demultiplexes response
// datagrams to waiting exchanges by transaction ID, so many queries
// pipeline over few sockets (the ZDNS socket-pool shape) instead of
// paying a dial/close per query. Retries re-derive the transaction ID
// per attempt (AttemptID), and per-attempt timeouts are armed on Clock
// — simclock.Real for wire deployments, a Sim for deterministic tests.
type UDPExchanger struct {
	Addr    string         // server address, e.g. "127.0.0.1:5353"
	Timeout time.Duration  // per-attempt timeout (default 2 s)
	Retries int            // additional attempts after the first
	Conns   int            // socket pool size (default 4)
	Clock   simclock.Clock // timeout scheduling; nil = simclock.Real{}

	mu     sync.Mutex
	pool   []*udpConn
	next   int // round-robin cursor over the pool
	closed bool
}

// udpConn is one pooled socket plus its demultiplexer state.
type udpConn struct {
	conn net.Conn

	mu      sync.Mutex
	pending map[uint16]chan *dnsmsg.Message // transaction ID → waiter
	dead    bool
	readErr error

	malformed atomic.Int64 // unparseable datagrams seen by the reader
}

func (u *UDPExchanger) timeout() time.Duration {
	if u.Timeout <= 0 {
		return 2 * time.Second
	}
	return u.Timeout
}

func (u *UDPExchanger) clock() simclock.Clock {
	if u.Clock == nil {
		return simclock.Real{}
	}
	return u.Clock
}

// Close shuts the socket pool down; pending exchanges fail with
// ErrDial. The exchanger is unusable afterwards.
func (u *UDPExchanger) Close() error {
	u.mu.Lock()
	pool := u.pool
	u.pool, u.closed = nil, true
	u.mu.Unlock()
	var err error
	for _, c := range pool {
		if cerr := c.conn.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// lease picks a pooled socket on which id is free, dialing lazily and
// replacing dead sockets. When every pooled socket already has id
// outstanding (a 1-in-65536 collision per conn), it dials a one-shot
// socket; release then closes it instead of pooling.
func (u *UDPExchanger) lease(id uint16) (c *udpConn, release func(), err error) {
	size := u.Conns
	if size <= 0 {
		size = 4
	}
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: exchanger closed", ErrDial)
	}
	for tries := 0; tries < size; tries++ {
		i := u.next % size
		u.next++
		if i < len(u.pool) && u.pool[i] != nil && !u.pool[i].isDead() {
			if u.pool[i].idFree(id) {
				c = u.pool[i]
				break
			}
			continue // collision: probe the next pool slot
		}
		// Empty or dead slot: dial a replacement while holding the pool
		// lock (rare; only on first use and after socket errors).
		nc, derr := u.dial()
		if derr != nil {
			u.mu.Unlock()
			return nil, nil, derr
		}
		for i >= len(u.pool) {
			u.pool = append(u.pool, nil)
		}
		u.pool[i] = nc
		c = nc
		break
	}
	u.mu.Unlock()
	if c != nil {
		return c, func() {}, nil
	}
	// All pooled sockets collide on id: one-shot socket.
	nc, derr := u.dial()
	if derr != nil {
		return nil, nil, derr
	}
	return nc, func() { nc.conn.Close() }, nil
}

// dial opens one socket and starts its reader.
func (u *UDPExchanger) dial() (*udpConn, error) {
	conn, err := net.Dial("udp", u.Addr)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDial, err)
	}
	c := &udpConn{conn: conn, pending: make(map[uint16]chan *dnsmsg.Message)}
	go c.readLoop()
	return c, nil
}

// readLoop demultiplexes response datagrams to waiters by transaction
// ID. Unparseable datagrams are counted (the ErrBadResponse signal) and
// dropped; responses nobody is waiting for (late answers to retried
// attempts, spoofs with the wrong ID) are dropped. A read error kills
// the socket and fails every waiter.
func (c *udpConn) readLoop() {
	buf := make([]byte, 64<<10)
	for {
		n, err := c.conn.Read(buf)
		if err != nil {
			c.mu.Lock()
			c.dead, c.readErr = true, err
			pending := c.pending
			c.pending = make(map[uint16]chan *dnsmsg.Message)
			c.mu.Unlock()
			for _, ch := range pending {
				close(ch)
			}
			return
		}
		resp, err := dnsmsg.Unpack(buf[:n])
		if err != nil {
			c.malformed.Add(1)
			continue
		}
		if !resp.Header.Response {
			continue
		}
		c.mu.Lock()
		ch, ok := c.pending[resp.Header.ID]
		if ok {
			delete(c.pending, resp.Header.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- resp // buffered; the reader never blocks
		}
	}
}

func (c *udpConn) isDead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

func (c *udpConn) idFree(id uint16) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, taken := c.pending[id]
	return !taken
}

// register installs a waiter for id. Fails if the socket died or id is
// already outstanding (the caller leases around collisions).
func (c *udpConn) register(id uint16) (chan *dnsmsg.Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return nil, fmt.Errorf("%w: %v", ErrDial, c.readErr)
	}
	if _, taken := c.pending[id]; taken {
		return nil, fmt.Errorf("%w: transaction id %d busy", ErrDial, id)
	}
	ch := make(chan *dnsmsg.Message, 1)
	c.pending[id] = ch
	return ch, nil
}

// unregister abandons a waiter (timeout or cancellation).
func (c *udpConn) unregister(id uint16, ch chan *dnsmsg.Message) {
	c.mu.Lock()
	if cur, ok := c.pending[id]; ok && cur == ch {
		delete(c.pending, id)
	}
	c.mu.Unlock()
}

// Exchange implements Exchanger: up to Retries+1 attempts, each with a
// fresh AttemptID-rotated transaction ID and its own timeout armed on
// Clock. Failures classify distinctly — ErrDial (unreachable), wrapped
// context errors (canceled mid-exchange), ErrBadResponse (the server
// answered garbage all attempt), ErrTimeout (silence) — so callers'
// retry and shedding policy can tell them apart.
func (u *UDPExchanger) Exchange(ctx context.Context, msg *dnsmsg.Message) (*dnsmsg.Message, error) {
	base := msg.Header.ID
	attempts := u.Retries + 1
	var lastErr error
	for a := 0; a < attempts; a++ {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("resolver: exchange canceled: %w", ctx.Err())
		}
		id := AttemptID(base, a)
		msg.Header.ID = id
		wire, err := msg.Pack()
		msg.Header.ID = base
		if err != nil {
			return nil, err
		}
		resp, err := u.exchangeAttempt(ctx, wire, id)
		if err == nil {
			return resp, nil
		}
		lastErr = err
	}
	if ctx.Err() != nil {
		return nil, fmt.Errorf("resolver: exchange canceled: %w", ctx.Err())
	}
	return nil, lastErr
}

// exchangeAttempt performs one write-and-wait on a leased socket.
func (u *UDPExchanger) exchangeAttempt(ctx context.Context, wire []byte, id uint16) (*dnsmsg.Message, error) {
	c, release, err := u.lease(id)
	if err != nil {
		return nil, err
	}
	defer release()
	ch, err := c.register(id)
	if err != nil {
		return nil, err
	}
	defer c.unregister(id, ch)
	badBefore := c.malformed.Load()
	if _, err := c.conn.Write(wire); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDial, err)
	}
	timeoutCh := make(chan struct{}, 1)
	// The timeout timer's only effect is this attempt's channel, so it is
	// tagged with the nameserver's lane atom: under the lookahead drain,
	// attempt timeouts against distinct servers may fire from different
	// instants concurrently, while same-server timers stay ordered.
	simclock.AfterTagged(u.clock(), u.timeout(), simclock.LaneTag("resolver/"+u.Addr),
		func(time.Time) { timeoutCh <- struct{}{} })
	select {
	case resp, ok := <-ch:
		if !ok {
			c.mu.Lock()
			rerr := c.readErr
			c.mu.Unlock()
			return nil, fmt.Errorf("%w: %v", ErrDial, rerr)
		}
		return resp, nil
	case <-timeoutCh:
		if bad := c.malformed.Load() - badBefore; bad > 0 {
			return nil, fmt.Errorf("%w: %d unparseable datagrams within the attempt window", ErrBadResponse, bad)
		}
		return nil, fmt.Errorf("%w: no response within %v", ErrTimeout, u.timeout())
	case <-ctx.Done():
		return nil, fmt.Errorf("resolver: exchange canceled: %w", ctx.Err())
	}
}

// ExchangeBatch implements BatchExchanger: msgs pipeline concurrently
// over the socket pool, each with its own retry schedule. The fan-out
// width is the batch size — outstanding queries, not goroutine count,
// are what the pool bounds.
func (u *UDPExchanger) ExchangeBatch(ctx context.Context, msgs []*dnsmsg.Message) ([]*dnsmsg.Message, []error) {
	resps := make([]*dnsmsg.Message, len(msgs))
	errs := make([]error, len(msgs))
	workpool.Run(len(msgs), len(msgs), func(i int) {
		resps[i], errs[i] = u.Exchange(ctx, msgs[i])
	})
	return resps, errs
}

// Handler is the in-process DNS endpoint the LocalExchanger adapts —
// dnsserver.Handler satisfies it structurally, so simulations wire the
// probe engine straight onto their authoritative handlers without a
// package dependency or a socket.
type Handler interface {
	Handle(q dnsmsg.Question) *dnsmsg.Message
}

// LocalExchanger adapts an in-process handler to the exchange
// interface, response fix-ups matching dnsserver's wire path (ID
// mirroring, response bit, question echo) so the resolver exercises the
// identical code path against simulated and real servers.
type LocalExchanger struct {
	H Handler
	// Workers bounds ExchangeBatch's fan-out: ≤1 serves the batch
	// serially on the caller, ≥2 spreads it over a pool this wide
	// (handlers must be concurrency-safe, which dnsserver requires
	// already).
	Workers int
}

// Exchange implements Exchanger.
func (l *LocalExchanger) Exchange(_ context.Context, msg *dnsmsg.Message) (*dnsmsg.Message, error) {
	resp := l.H.Handle(msg.Questions[0])
	if resp == nil {
		resp = msg.Reply()
		resp.Header.RCode = dnsmsg.RCodeServFail
		return resp, nil
	}
	resp.Header.ID = msg.Header.ID
	resp.Header.Response = true
	if len(resp.Questions) == 0 {
		resp.Questions = msg.Questions
	}
	return resp, nil
}

// ExchangeBatch implements BatchExchanger on the worker pool.
func (l *LocalExchanger) ExchangeBatch(ctx context.Context, msgs []*dnsmsg.Message) ([]*dnsmsg.Message, []error) {
	resps := make([]*dnsmsg.Message, len(msgs))
	errs := make([]error, len(msgs))
	workpool.Run(len(msgs), l.Workers, func(i int) {
		resps[i], errs[i] = l.Exchange(ctx, msgs[i])
	})
	return resps, errs
}

// LaneConfig bounds one nameserver's rate lane.
type LaneConfig struct {
	// MaxInflight caps concurrent exchanges per nameserver (default 64).
	MaxInflight int
	// MaxQueued caps exchanges waiting for an in-flight slot before the
	// lane sheds with ErrRateLimited (default 128). Zero keeps the
	// default; negative disables queueing entirely.
	MaxQueued int
}

// lane is one nameserver's admission state.
type lane struct {
	slots  chan struct{} // in-flight tokens
	queued atomic.Int64  // waiters holding neither a token nor a shed
	shed   atomic.Int64
	done   atomic.Int64
}

// Lanes wraps an Exchanger with per-nameserver admission control in the
// RDAP dispatcher's idiom: each nameserver key gets a bounded lane —
// MaxInflight concurrent exchanges plus at most MaxQueued waiters — and
// excess load is shed synchronously with ErrRateLimited instead of
// queueing without bound behind a slow or dead authority. The default
// key function maps a query to its name's TLD, matching the fleet's
// direct-to-TLD-nameserver deployment; NewLanes accepts a custom keyer
// for resolver pools fronting many upstreams.
type Lanes struct {
	cfg  LaneConfig
	next Exchanger
	key  func(*dnsmsg.Message) string

	mu    sync.Mutex
	lanes map[string]*lane
}

// NewLanes builds the lane layer over next. key may be nil (per-TLD
// lanes).
func NewLanes(cfg LaneConfig, next Exchanger, key func(*dnsmsg.Message) string) *Lanes {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 64
	}
	if cfg.MaxQueued == 0 {
		cfg.MaxQueued = 128
	}
	if key == nil {
		key = func(m *dnsmsg.Message) string { return dnsname.TLD(m.Questions[0].Name) }
	}
	return &Lanes{cfg: cfg, next: next, key: key, lanes: make(map[string]*lane)}
}

func (ls *Lanes) lane(k string) *lane {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	l, ok := ls.lanes[k]
	if !ok {
		l = &lane{slots: make(chan struct{}, ls.cfg.MaxInflight)}
		ls.lanes[k] = l
	}
	return l
}

// admit acquires an in-flight token or sheds. The returned func
// releases the token; nil means the query was shed (err set).
func (ls *Lanes) admit(ctx context.Context, l *lane) (func(), error) {
	select {
	case l.slots <- struct{}{}: // fast path: free slot, no queueing
		return func() { <-l.slots }, nil
	default:
	}
	maxQ := int64(ls.cfg.MaxQueued)
	if maxQ < 0 {
		maxQ = 0
	}
	if l.queued.Add(1) > maxQ {
		l.queued.Add(-1)
		l.shed.Add(1)
		return nil, fmt.Errorf("%w: lane saturated (%d in flight, %d queued)", ErrRateLimited, ls.cfg.MaxInflight, maxQ)
	}
	defer l.queued.Add(-1)
	select {
	case l.slots <- struct{}{}:
		return func() { <-l.slots }, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("resolver: exchange canceled: %w", ctx.Err())
	}
}

// Exchange implements Exchanger with lane admission.
func (ls *Lanes) Exchange(ctx context.Context, msg *dnsmsg.Message) (*dnsmsg.Message, error) {
	l := ls.lane(ls.key(msg))
	release, err := ls.admit(ctx, l)
	if err != nil {
		return nil, err
	}
	defer release()
	defer l.done.Add(1)
	return ls.next.Exchange(ctx, msg)
}

// ExchangeBatch implements BatchExchanger: every message passes its
// lane's admission individually, and the admitted remainder forwards as
// one batch when the inner transport supports it. Batch admission never
// queues — a batch that oversubscribes a lane holds that lane's slots
// until the whole batch completes, so waiting intra-batch would
// deadlock; the excess is shed synchronously with ErrRateLimited in its
// error slot instead (exactly the dispatcher's bounded-queue posture).
func (ls *Lanes) ExchangeBatch(ctx context.Context, msgs []*dnsmsg.Message) ([]*dnsmsg.Message, []error) {
	resps := make([]*dnsmsg.Message, len(msgs))
	errs := make([]error, len(msgs))
	admitted := make([]int, 0, len(msgs))
	for i, m := range msgs {
		l := ls.lane(ls.key(m))
		select {
		case l.slots <- struct{}{}:
			admitted = append(admitted, i)
		default:
			l.shed.Add(1)
			errs[i] = fmt.Errorf("%w: lane saturated (%d in flight)", ErrRateLimited, ls.cfg.MaxInflight)
		}
	}
	defer func() {
		for _, i := range admitted {
			l := ls.lane(ls.key(msgs[i]))
			<-l.slots
			l.done.Add(1)
		}
	}()
	if len(admitted) == 0 {
		return resps, errs
	}
	if be, ok := ls.next.(BatchExchanger); ok {
		fwd := make([]*dnsmsg.Message, len(admitted))
		for j, i := range admitted {
			fwd[j] = msgs[i]
		}
		fresps, ferrs := be.ExchangeBatch(ctx, fwd)
		for j, i := range admitted {
			resps[i], errs[i] = fresps[j], ferrs[j]
		}
		return resps, errs
	}
	for _, i := range admitted {
		resps[i], errs[i] = ls.next.Exchange(ctx, msgs[i])
	}
	return resps, errs
}

// LaneStat is one nameserver lane's counters.
type LaneStat struct {
	Server   string
	Inflight int   // exchanges currently holding a slot
	Queued   int64 // exchanges currently waiting for a slot
	Done     int64 // exchanges completed through this lane
	Shed     int64 // exchanges rejected with ErrRateLimited
}

// LaneStats snapshots every lane, sorted by server key.
func (ls *Lanes) LaneStats() []LaneStat {
	ls.mu.Lock()
	keys := make([]string, 0, len(ls.lanes))
	for k := range ls.lanes {
		keys = append(keys, k)
	}
	lanes := make([]*lane, len(keys))
	for i, k := range keys {
		lanes[i] = ls.lanes[k]
	}
	ls.mu.Unlock()
	out := make([]LaneStat, len(keys))
	for i, k := range keys {
		out[i] = LaneStat{
			Server:   k,
			Inflight: len(lanes[i].slots),
			Queued:   lanes[i].queued.Load(),
			Done:     lanes[i].done.Load(),
			Shed:     lanes[i].shed.Load(),
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Server < out[j].Server })
	return out
}
