package resolver

import (
	"context"
	"errors"
	"net"
	"net/netip"
	"sync/atomic"
	"testing"
	"time"

	"darkdns/internal/dnsmsg"
)

// udpResponder runs a scripted UDP DNS endpoint. The script function
// receives each query and returns zero or more datagrams to send back.
func udpResponder(t *testing.T, script func(q *dnsmsg.Message) [][]byte) string {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pc.Close() })
	go func() {
		buf := make([]byte, 64<<10)
		for {
			n, raddr, err := pc.ReadFrom(buf)
			if err != nil {
				return
			}
			q, err := dnsmsg.Unpack(buf[:n])
			if err != nil {
				continue
			}
			for _, resp := range script(q) {
				pc.WriteTo(resp, raddr)
			}
		}
	}()
	return pc.LocalAddr().String()
}

func answer(q *dnsmsg.Message, addr string) []byte {
	r := q.Reply()
	r.Answers = []dnsmsg.Record{{
		Name: q.Questions[0].Name, Type: dnsmsg.TypeA, Class: dnsmsg.ClassIN,
		TTL: 60, A: netip.MustParseAddr(addr),
	}}
	wire, _ := r.Pack()
	return wire
}

func TestUDPExchangerHappyPath(t *testing.T) {
	addr := udpResponder(t, func(q *dnsmsg.Message) [][]byte {
		return [][]byte{answer(q, "192.0.2.1")}
	})
	ex := &UDPExchanger{Addr: addr, Timeout: 2 * time.Second}
	resp, err := ex.Exchange(context.Background(), dnsmsg.NewQuery(99, "x.com", dnsmsg.TypeA))
	if err != nil || len(resp.Answers) != 1 {
		t.Fatalf("exchange: %+v, %v", resp, err)
	}
	if resp.Header.ID != 99 {
		t.Errorf("ID = %d", resp.Header.ID)
	}
}

func TestUDPExchangerSkipsGarbageAndWrongID(t *testing.T) {
	addr := udpResponder(t, func(q *dnsmsg.Message) [][]byte {
		// Garbage first, then a response with the wrong transaction ID,
		// then the real answer: the client must skip the first two.
		wrong := q.Reply()
		wrong.Header.ID = q.Header.ID + 1
		wrongWire, _ := wrong.Pack()
		return [][]byte{{0xde, 0xad, 0xbe}, wrongWire, answer(q, "192.0.2.7")}
	})
	ex := &UDPExchanger{Addr: addr, Timeout: 2 * time.Second}
	resp, err := ex.Exchange(context.Background(), dnsmsg.NewQuery(7, "x.com", dnsmsg.TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 || resp.Answers[0].A.String() != "192.0.2.7" {
		t.Fatalf("answers: %+v", resp.Answers)
	}
}

func TestUDPExchangerTimesOut(t *testing.T) {
	addr := udpResponder(t, func(*dnsmsg.Message) [][]byte { return nil }) // mute
	ex := &UDPExchanger{Addr: addr, Timeout: 50 * time.Millisecond, Retries: 1}
	start := time.Now()
	_, err := ex.Exchange(context.Background(), dnsmsg.NewQuery(1, "x.com", dnsmsg.TypeA))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if elapsed := time.Since(start); elapsed < 90*time.Millisecond || elapsed > 3*time.Second {
		t.Errorf("2 attempts à 50ms took %v", elapsed)
	}
}

func TestUDPExchangerRetriesAfterDrop(t *testing.T) {
	var calls atomic.Int32 // written on the responder goroutine, read here
	addr := udpResponder(t, func(q *dnsmsg.Message) [][]byte {
		if calls.Add(1) == 1 {
			return nil // drop the first query
		}
		return [][]byte{answer(q, "192.0.2.3")}
	})
	ex := &UDPExchanger{Addr: addr, Timeout: 100 * time.Millisecond, Retries: 2}
	resp, err := ex.Exchange(context.Background(), dnsmsg.NewQuery(2, "x.com", dnsmsg.TypeA))
	if err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if len(resp.Answers) != 1 {
		t.Fatal("no answer after retry")
	}
	if n := calls.Load(); n < 2 {
		t.Errorf("server saw %d queries, want ≥2", n)
	}
}

func TestUDPExchangerContextCancel(t *testing.T) {
	addr := udpResponder(t, func(*dnsmsg.Message) [][]byte { return nil })
	ex := &UDPExchanger{Addr: addr, Timeout: 5 * time.Second, Retries: 5}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := ex.Exchange(ctx, dnsmsg.NewQuery(3, "x.com", dnsmsg.TypeA)); err == nil {
		t.Fatal("cancelled exchange succeeded")
	}
	if time.Since(start) > 3*time.Second {
		t.Error("context deadline not honoured")
	}
}

func TestUDPExchangerUnreachable(t *testing.T) {
	ex := &UDPExchanger{Addr: "127.0.0.1:1", Timeout: 100 * time.Millisecond}
	if _, err := ex.Exchange(context.Background(), dnsmsg.NewQuery(4, "x.com", dnsmsg.TypeA)); err == nil {
		t.Skip("kernel did not report ICMP refusal; environment-dependent")
	}
}

func TestExchangerFunc(t *testing.T) {
	called := false
	f := ExchangerFunc(func(_ context.Context, m *dnsmsg.Message) (*dnsmsg.Message, error) {
		called = true
		return m.Reply(), nil
	})
	if _, err := f.Exchange(context.Background(), dnsmsg.NewQuery(1, "x.com", dnsmsg.TypeA)); err != nil || !called {
		t.Fatal("adapter broken")
	}
}
