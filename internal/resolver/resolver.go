// Package resolver implements the caching stub resolver the measurement
// fleet uses: an Unbound-like cache with a configurable maximum TTL clamp
// (the paper runs 60 s to keep A/AAAA answers fresh), negative caching,
// and a direct-exchange mode for talking straight to TLD authoritative
// servers.
//
// The cache is the probe engine's hot shared structure (DESIGN.md §10):
// it is striped 64 ways on dnsname.Hash64 — mirroring the pipeline's
// candidate store and the world's DomainStore — with per-shard hit/miss
// counters and a per-shard singleflight table, so concurrent lookups of
// distinct names never contend and concurrent lookups of the same
// expired name collapse to one upstream exchange. Batched lookups
// (LookupBatch) deduplicate in-flight keys and fan cache misses out
// through the exchange layer (exchange.go): a pooled, pipelined
// UDPExchanger for real sockets, LocalExchanger for in-process
// dnsserver handlers, and Lanes for per-nameserver admission control.
//
// Determinism: query transaction IDs are derived from (seed, name,
// type, attempt) — no shared RNG, no lock, and the wire trace of a
// simulated campaign is identical at any lookup concurrency.
package resolver

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"darkdns/internal/dnsmsg"
	"darkdns/internal/dnsname"
	"darkdns/internal/simclock"
	"darkdns/internal/workpool"
)

// Exchanger performs one DNS round trip. Implementations: UDPExchanger
// (real sockets) and LocalExchanger (in-process dnsserver handlers).
type Exchanger interface {
	Exchange(ctx context.Context, msg *dnsmsg.Message) (*dnsmsg.Message, error)
}

// ExchangerFunc adapts a function to Exchanger.
type ExchangerFunc func(ctx context.Context, msg *dnsmsg.Message) (*dnsmsg.Message, error)

// Exchange implements Exchanger.
func (f ExchangerFunc) Exchange(ctx context.Context, msg *dnsmsg.Message) (*dnsmsg.Message, error) {
	return f(ctx, msg)
}

// BatchExchanger is the optional Exchanger extension the batched probe
// engine prefers: one call carries a whole batch of queries so the
// transport can pipeline them over pooled sockets (UDPExchanger) or fan
// them out on a worker pool (LocalExchanger). resps[i]/errs[i] answer
// msgs[i]; exactly one of the pair is non-nil per slot.
type BatchExchanger interface {
	Exchanger
	ExchangeBatch(ctx context.Context, msgs []*dnsmsg.Message) (resps []*dnsmsg.Message, errs []error)
}

// Errors returned by Lookup and the exchange layer.
var (
	ErrNXDomain = errors.New("resolver: name does not exist")
	ErrServFail = errors.New("resolver: server failure")
	// ErrTimeout: every attempt's window elapsed without a matching
	// response datagram.
	ErrTimeout = errors.New("resolver: query timed out")
	// ErrDial: the transport could not reach the server (dial or write
	// failure, or the kernel surfaced an ICMP refusal on the socket).
	ErrDial = errors.New("resolver: server unreachable")
	// ErrBadResponse: the attempt window elapsed while the server was
	// sending datagrams that failed to parse — a misbehaving or
	// middlebox-mangled endpoint, not a silent one, so retry policy can
	// treat it differently from ErrTimeout.
	ErrBadResponse = errors.New("resolver: malformed response")
	// ErrRateLimited: a nameserver lane's bounded queue was full and the
	// query was shed instead of enqueued (the PR 2 dispatcher idiom:
	// never block the probe path behind a slow authority).
	ErrRateLimited = errors.New("resolver: nameserver rate limited")
)

// cacheShards stripes the cache and singleflight tables. Matches the
// pipeline candidate store and worldsim DomainStore so the sharding
// story is uniform repo-wide. Power of two for cheap masking.
const cacheShards = 64

// cacheKey identifies a cached RRset.
type cacheKey struct {
	name string
	typ  dnsmsg.Type
}

type cacheEntry struct {
	records  []dnsmsg.Record
	rcode    dnsmsg.RCode
	expires  time.Time
	inserted time.Time
}

// flight is one in-progress upstream exchange; concurrent lookups of
// the same key wait on done instead of issuing duplicate queries.
type flight struct {
	done chan struct{}
	recs []dnsmsg.Record
	err  error
}

// cacheShard is one stripe: a mutex-guarded entry map, the in-flight
// exchange table, and this stripe's counters.
type cacheShard struct {
	mu        sync.Mutex
	entries   map[cacheKey]cacheEntry
	inflight  map[cacheKey]*flight
	hits      int64
	misses    int64
	coalesced int64 // lookups that joined another caller's flight
}

// Config parameterizes a Resolver.
type Config struct {
	// MaxTTL clamps positive answers' cache lifetime. The paper's
	// measurement resolvers use 60 s.
	MaxTTL time.Duration
	// NegTTL is the cache lifetime of NXDOMAIN answers.
	NegTTL time.Duration
	// BatchWorkers bounds LookupBatch's miss fan-out when the exchanger
	// has no batch interface: ≤1 exchanges misses serially on the
	// caller (the zero-overhead baseline), ≥2 spreads them over a
	// worker pool this wide. Batch-capable exchangers pipeline the
	// whole miss set in one call and ignore this knob.
	BatchWorkers int
}

// Resolver is a caching stub resolver over an Exchanger.
type Resolver struct {
	cfg  Config
	clk  simclock.Clock
	ex   Exchanger
	seed int64

	shards [cacheShards]cacheShard
}

// New creates a resolver. clk drives cache expiry so simulations expire
// entries on virtual time. rng, when non-nil, seeds the deterministic
// query-ID derivation (one draw at construction — per-call IDs are
// derived, never drawn, so lookups share no RNG state).
func New(cfg Config, clk simclock.Clock, ex Exchanger, rng *rand.Rand) *Resolver {
	if cfg.MaxTTL <= 0 {
		cfg.MaxTTL = 60 * time.Second
	}
	if cfg.NegTTL <= 0 {
		cfg.NegTTL = 60 * time.Second
	}
	seed := int64(1)
	if rng != nil {
		seed = rng.Int63()
	}
	r := &Resolver{cfg: cfg, clk: clk, ex: ex, seed: seed}
	for i := range r.shards {
		r.shards[i].entries = make(map[cacheKey]cacheEntry)
		r.shards[i].inflight = make(map[cacheKey]*flight)
	}
	return r
}

// shard maps a canonical name to its cache stripe.
func (r *Resolver) shard(name string) *cacheShard {
	return &r.shards[dnsname.Hash64(name)&(cacheShards-1)]
}

// QueryID derives the transaction ID for attempt n of a (name, type)
// query under seed. Pure function of its inputs — replacing the old
// shared *rand.Rand (which raced under concurrent lookups) and making
// the wire trace independent of lookup interleaving. Transports retry
// with AttemptID so each attempt is distinguishable on the wire.
func QueryID(seed int64, name string, typ dnsmsg.Type, attempt int) uint16 {
	h := dnsname.Hash64(dnsname.Canonical(name))
	h ^= uint64(seed) * 0x9e3779b97f4a7c15
	h ^= uint64(typ) << 32
	return AttemptID(uint16(dnsname.Mix64(h)), attempt)
}

// AttemptID rotates a base transaction ID for retry attempt n (attempt
// 0 is the base itself). Transports apply it per attempt so a late
// answer to a timed-out attempt is never mistaken for the current one,
// and the (seed, name, type, attempt) → ID derivation stays total.
func AttemptID(base uint16, attempt int) uint16 {
	if attempt == 0 {
		return base
	}
	return uint16(dnsname.Mix64(uint64(base) ^ uint64(attempt)<<16))
}

// Stats returns cumulative cache hit/miss counters summed over shards.
// Lookups that coalesced onto another caller's in-flight exchange count
// as hits (the cache answered them without an upstream query).
func (r *Resolver) Stats() (hits, misses int64) {
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		hits += sh.hits + sh.coalesced
		misses += sh.misses
		sh.mu.Unlock()
	}
	return hits, misses
}

// CacheStats is the probe engine's operational view of the cache.
type CacheStats struct {
	Hits      int64 // answered from a live cache entry
	Misses    int64 // upstream exchanges issued
	Coalesced int64 // joined another lookup's in-flight exchange
	Entries   int   // live + expired entries currently held
}

// CacheStats sums the per-shard counters.
func (r *Resolver) CacheStats() CacheStats {
	var cs CacheStats
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		cs.Hits += sh.hits
		cs.Misses += sh.misses
		cs.Coalesced += sh.coalesced
		cs.Entries += len(sh.entries)
		sh.mu.Unlock()
	}
	return cs
}

// Flush clears the cache. In-flight exchanges are unaffected: they
// complete and re-populate their keys.
func (r *Resolver) Flush() {
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		sh.entries = make(map[cacheKey]cacheEntry)
		sh.mu.Unlock()
	}
}

// Lookup resolves (name, type), consulting the cache first. It returns
// the answer records; NXDOMAIN surfaces as ErrNXDomain (cached
// negatively), other failures as ErrServFail / the exchange layer's
// transport errors (not cached). Concurrent lookups of the same key
// coalesce onto one upstream exchange (singleflight), so a thundering
// herd of misses on an expired entry costs one query.
func (r *Resolver) Lookup(ctx context.Context, name string, typ dnsmsg.Type) ([]dnsmsg.Record, error) {
	name = dnsname.Canonical(name)
	key := cacheKey{name, typ}
	sh := r.shard(name)

	sh.mu.Lock()
	if recs, hit, err := sh.cachedLocked(key, r.clk.Now()); hit {
		sh.mu.Unlock()
		return recs, err
	}
	if fl, ok := sh.inflight[key]; ok {
		sh.coalesced++
		sh.mu.Unlock()
		return r.await(ctx, fl)
	}
	fl := &flight{done: make(chan struct{})}
	sh.inflight[key] = fl
	sh.misses++
	sh.mu.Unlock()

	q := dnsmsg.NewQuery(QueryID(r.seed, name, typ, 0), name, typ)
	resp, err := r.ex.Exchange(ctx, q)
	recs, err := r.complete(sh, key, fl, resp, err)
	return recs, err
}

// cachedLocked serves key from the shard's entry table. Caller holds
// sh.mu. hit reports whether a live entry answered.
func (sh *cacheShard) cachedLocked(key cacheKey, now time.Time) (recs []dnsmsg.Record, hit bool, err error) {
	e, ok := sh.entries[key]
	if !ok || !e.expires.After(now) {
		return nil, false, nil
	}
	sh.hits++
	if e.rcode == dnsmsg.RCodeNXDomain {
		return nil, true, ErrNXDomain
	}
	return e.records, true, nil
}

// await blocks until fl completes (or ctx cancels) and returns its
// outcome — the joining half of the singleflight.
func (r *Resolver) await(ctx context.Context, fl *flight) ([]dnsmsg.Record, error) {
	select {
	case <-fl.done:
		return fl.recs, fl.err
	case <-ctx.Done():
		return nil, fmt.Errorf("resolver: lookup canceled: %w", ctx.Err())
	}
}

// complete classifies an exchange outcome, stores cacheable answers,
// publishes the result to every lookup joined on fl, and retires the
// flight.
func (r *Resolver) complete(sh *cacheShard, key cacheKey, fl *flight, resp *dnsmsg.Message, err error) ([]dnsmsg.Record, error) {
	var recs []dnsmsg.Record
	if err == nil {
		now := r.clk.Now()
		switch resp.Header.RCode {
		case dnsmsg.RCodeNoError:
			ttl := r.cfg.MaxTTL
			for _, rec := range resp.Answers {
				if d := time.Duration(rec.TTL) * time.Second; d < ttl {
					ttl = d
				}
			}
			recs = resp.Answers
			r.store(sh, key, cacheEntry{records: recs, rcode: resp.Header.RCode, expires: now.Add(ttl), inserted: now})
		case dnsmsg.RCodeNXDomain:
			err = ErrNXDomain
			r.store(sh, key, cacheEntry{rcode: resp.Header.RCode, expires: now.Add(r.cfg.NegTTL), inserted: now})
		default:
			err = fmt.Errorf("%w: %s", ErrServFail, resp.Header.RCode)
		}
	}
	fl.recs, fl.err = recs, err
	sh.mu.Lock()
	delete(sh.inflight, key)
	sh.mu.Unlock()
	close(fl.done)
	return recs, err
}

func (r *Resolver) store(sh *cacheShard, key cacheKey, e cacheEntry) {
	sh.mu.Lock()
	sh.entries[key] = e
	sh.mu.Unlock()
}

// Query names one lookup in a batch.
type Query struct {
	Name string
	Type dnsmsg.Type
}

// Result is one batch lookup's outcome, positionally matching the
// query slice handed to LookupBatch.
type Result struct {
	Records []dnsmsg.Record
	Err     error
}

// ownedMiss is a batch miss this LookupBatch call must resolve (it won
// the singleflight registration for the key).
type ownedMiss struct {
	key cacheKey
	fl  *flight
	idx []int // result slots answered by this key
}

// joinedMiss is a batch miss another lookup is already resolving.
type joinedMiss struct {
	fl  *flight
	idx []int
}

// LookupBatch resolves qs as one operation: cache hits answer
// immediately, duplicate keys within the batch collapse to one lookup,
// keys already in flight (here or in any concurrent Lookup) are joined
// rather than re-queried, and the remaining misses fan out through the
// exchange layer — as a single pipelined ExchangeBatch call when the
// transport supports it, otherwise over a Config.BatchWorkers-wide
// pool. Results are positional; each slot carries records or an error
// exactly as Lookup would have returned them.
func (r *Resolver) LookupBatch(ctx context.Context, qs []Query) []Result {
	out := make([]Result, len(qs))
	var owned []ownedMiss
	var joined []joinedMiss
	slot := make(map[cacheKey]int, len(qs)) // key → owned/joined position (owned ≥0, joined <0)

	for i, q := range qs {
		key := cacheKey{dnsname.Canonical(q.Name), q.Type}
		if s, ok := slot[key]; ok { // duplicate within the batch
			if s >= 0 {
				owned[s].idx = append(owned[s].idx, i)
			} else {
				joined[-s-1].idx = append(joined[-s-1].idx, i)
			}
			continue
		}
		sh := r.shard(key.name)
		sh.mu.Lock()
		if recs, hit, err := sh.cachedLocked(key, r.clk.Now()); hit {
			sh.mu.Unlock()
			out[i] = Result{Records: recs, Err: err}
			continue
		}
		if fl, ok := sh.inflight[key]; ok {
			sh.coalesced++
			sh.mu.Unlock()
			joined = append(joined, joinedMiss{fl: fl, idx: []int{i}})
			slot[key] = -len(joined)
			continue
		}
		fl := &flight{done: make(chan struct{})}
		sh.inflight[key] = fl
		sh.misses++
		sh.mu.Unlock()
		owned = append(owned, ownedMiss{key: key, fl: fl, idx: []int{i}})
		slot[key] = len(owned) - 1
	}

	if len(owned) > 0 {
		msgs := make([]*dnsmsg.Message, len(owned))
		for i, m := range owned {
			msgs[i] = dnsmsg.NewQuery(QueryID(r.seed, m.key.name, m.key.typ, 0), m.key.name, m.key.typ)
		}
		resps := make([]*dnsmsg.Message, len(owned))
		errs := make([]error, len(owned))
		if be, ok := r.ex.(BatchExchanger); ok {
			resps, errs = be.ExchangeBatch(ctx, msgs)
		} else {
			workpool.Run(len(owned), r.cfg.BatchWorkers, func(i int) {
				resps[i], errs[i] = r.ex.Exchange(ctx, msgs[i])
			})
		}
		for i, m := range owned {
			recs, err := r.complete(r.shard(m.key.name), m.key, m.fl, resps[i], errs[i])
			for _, j := range m.idx {
				out[j] = Result{Records: recs, Err: err}
			}
		}
	}
	for _, m := range joined {
		recs, err := r.await(ctx, m.fl)
		for _, j := range m.idx {
			out[j] = Result{Records: recs, Err: err}
		}
	}
	return out
}

// LookupAddrs resolves name to all IPv4 and IPv6 addresses — A and AAAA
// issued as one batch, so a batch-capable exchanger carries both
// questions in a single pipelined round.
func (r *Resolver) LookupAddrs(ctx context.Context, name string) (v4, v6 []dnsmsg.Record, err error) {
	res := r.LookupBatch(ctx, []Query{{Name: name, Type: dnsmsg.TypeA}, {Name: name, Type: dnsmsg.TypeAAAA}})
	if res[0].Err != nil && res[1].Err != nil {
		return nil, nil, res[0].Err
	}
	return res[0].Records, res[1].Records, nil
}
