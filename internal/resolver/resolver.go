// Package resolver implements the caching stub resolver the measurement
// fleet uses: an Unbound-like cache with a configurable maximum TTL clamp
// (the paper runs 60 s to keep A/AAAA answers fresh), negative caching,
// and a direct-exchange mode for talking straight to TLD authoritative
// servers.
package resolver

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"darkdns/internal/dnsmsg"
	"darkdns/internal/dnsname"
	"darkdns/internal/simclock"
)

// Exchanger performs one DNS round trip. Implementations: UDPExchanger
// (real sockets) and in-process adapters over dnsserver.Handler.
type Exchanger interface {
	Exchange(ctx context.Context, msg *dnsmsg.Message) (*dnsmsg.Message, error)
}

// ExchangerFunc adapts a function to Exchanger.
type ExchangerFunc func(ctx context.Context, msg *dnsmsg.Message) (*dnsmsg.Message, error)

// Exchange implements Exchanger.
func (f ExchangerFunc) Exchange(ctx context.Context, msg *dnsmsg.Message) (*dnsmsg.Message, error) {
	return f(ctx, msg)
}

// Errors returned by Lookup.
var (
	ErrNXDomain = errors.New("resolver: name does not exist")
	ErrServFail = errors.New("resolver: server failure")
	ErrTimeout  = errors.New("resolver: query timed out")
)

// UDPExchanger sends queries over UDP with retry and ID verification.
type UDPExchanger struct {
	Addr    string        // server address, e.g. "127.0.0.1:5353"
	Timeout time.Duration // per-attempt timeout
	Retries int           // additional attempts after the first
}

// Exchange implements Exchanger.
func (u *UDPExchanger) Exchange(ctx context.Context, msg *dnsmsg.Message) (*dnsmsg.Message, error) {
	wire, err := msg.Pack()
	if err != nil {
		return nil, err
	}
	timeout := u.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	attempts := u.Retries + 1
	var lastErr error
	for i := 0; i < attempts; i++ {
		resp, err := u.exchangeOnce(ctx, wire, msg.Header.ID, timeout)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	return nil, fmt.Errorf("%w: %v", ErrTimeout, lastErr)
}

func (u *UDPExchanger) exchangeOnce(ctx context.Context, wire []byte, id uint16, timeout time.Duration) (*dnsmsg.Message, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "udp", u.Addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	deadline := time.Now().Add(timeout)
	if ctxDeadline, ok := ctx.Deadline(); ok && ctxDeadline.Before(deadline) {
		deadline = ctxDeadline
	}
	conn.SetDeadline(deadline)
	if _, err := conn.Write(wire); err != nil {
		return nil, err
	}
	buf := make([]byte, 64<<10)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return nil, err
		}
		resp, err := dnsmsg.Unpack(buf[:n])
		if err != nil {
			continue // garbage datagram; keep waiting
		}
		if resp.Header.ID != id || !resp.Header.Response {
			continue // mismatched transaction
		}
		return resp, nil
	}
}

// cacheKey identifies a cached RRset.
type cacheKey struct {
	name string
	typ  dnsmsg.Type
}

type cacheEntry struct {
	records  []dnsmsg.Record
	rcode    dnsmsg.RCode
	expires  time.Time
	inserted time.Time
}

// Config parameterizes a Resolver.
type Config struct {
	// MaxTTL clamps positive answers' cache lifetime. The paper's
	// measurement resolvers use 60 s.
	MaxTTL time.Duration
	// NegTTL is the cache lifetime of NXDOMAIN answers.
	NegTTL time.Duration
}

// Resolver is a caching stub resolver over an Exchanger.
type Resolver struct {
	cfg Config
	clk simclock.Clock
	ex  Exchanger
	rng *rand.Rand

	mu     sync.Mutex
	cache  map[cacheKey]cacheEntry
	hits   int64
	misses int64
}

// New creates a resolver. clk drives cache expiry so simulations expire
// entries on virtual time.
func New(cfg Config, clk simclock.Clock, ex Exchanger, rng *rand.Rand) *Resolver {
	if cfg.MaxTTL <= 0 {
		cfg.MaxTTL = 60 * time.Second
	}
	if cfg.NegTTL <= 0 {
		cfg.NegTTL = 60 * time.Second
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &Resolver{cfg: cfg, clk: clk, ex: ex, rng: rng, cache: make(map[cacheKey]cacheEntry)}
}

// Stats returns cumulative cache hit/miss counters.
func (r *Resolver) Stats() (hits, misses int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hits, r.misses
}

// Flush clears the cache.
func (r *Resolver) Flush() {
	r.mu.Lock()
	r.cache = make(map[cacheKey]cacheEntry)
	r.mu.Unlock()
}

// Lookup resolves (name, type), consulting the cache first. It returns
// the answer records; NXDOMAIN surfaces as ErrNXDomain (cached
// negatively), other failures as ErrServFail/ErrTimeout (not cached).
func (r *Resolver) Lookup(ctx context.Context, name string, typ dnsmsg.Type) ([]dnsmsg.Record, error) {
	name = dnsname.Canonical(name)
	key := cacheKey{name, typ}
	now := r.clk.Now()

	r.mu.Lock()
	if e, ok := r.cache[key]; ok && e.expires.After(now) {
		r.hits++
		r.mu.Unlock()
		if e.rcode == dnsmsg.RCodeNXDomain {
			return nil, ErrNXDomain
		}
		return e.records, nil
	}
	r.misses++
	r.mu.Unlock()

	q := dnsmsg.NewQuery(uint16(r.rng.Intn(1<<16)), name, typ)
	resp, err := r.ex.Exchange(ctx, q)
	if err != nil {
		return nil, err
	}
	switch resp.Header.RCode {
	case dnsmsg.RCodeNoError:
		ttl := r.cfg.MaxTTL
		for _, rec := range resp.Answers {
			if d := time.Duration(rec.TTL) * time.Second; d < ttl {
				ttl = d
			}
		}
		r.store(key, cacheEntry{records: resp.Answers, rcode: resp.Header.RCode, expires: now.Add(ttl), inserted: now})
		return resp.Answers, nil
	case dnsmsg.RCodeNXDomain:
		r.store(key, cacheEntry{rcode: resp.Header.RCode, expires: now.Add(r.cfg.NegTTL), inserted: now})
		return nil, ErrNXDomain
	default:
		return nil, fmt.Errorf("%w: %s", ErrServFail, resp.Header.RCode)
	}
}

func (r *Resolver) store(key cacheKey, e cacheEntry) {
	r.mu.Lock()
	r.cache[key] = e
	r.mu.Unlock()
}

// LookupAddrs resolves name to all IPv4 and IPv6 addresses (A + AAAA).
func (r *Resolver) LookupAddrs(ctx context.Context, name string) (v4, v6 []dnsmsg.Record, err error) {
	v4, err4 := r.Lookup(ctx, name, dnsmsg.TypeA)
	v6, err6 := r.Lookup(ctx, name, dnsmsg.TypeAAAA)
	if err4 != nil && err6 != nil {
		return nil, nil, err4
	}
	return v4, v6, nil
}
