package resolver

import (
	"context"
	"errors"
	"net/netip"
	"testing"
	"time"

	"darkdns/internal/dnsmsg"
	"darkdns/internal/simclock"
)

var t0 = time.Date(2023, 11, 1, 0, 0, 0, 0, time.UTC)

// scriptedExchanger answers from a table and counts round trips.
type scriptedExchanger struct {
	answers map[string][]dnsmsg.Record
	rcode   map[string]dnsmsg.RCode
	fail    error
	calls   int
}

func (s *scriptedExchanger) Exchange(_ context.Context, msg *dnsmsg.Message) (*dnsmsg.Message, error) {
	s.calls++
	if s.fail != nil {
		return nil, s.fail
	}
	q := msg.Questions[0]
	resp := msg.Reply()
	if rc, ok := s.rcode[q.Name]; ok {
		resp.Header.RCode = rc
		return resp, nil
	}
	for _, r := range s.answers[q.Name] {
		if r.Type == q.Type {
			resp.Answers = append(resp.Answers, r)
		}
	}
	if len(resp.Answers) == 0 && s.answers[q.Name] == nil {
		resp.Header.RCode = dnsmsg.RCodeNXDomain
	}
	return resp, nil
}

func newTestResolver(ex Exchanger) (*Resolver, *simclock.Sim) {
	clk := simclock.NewSim(t0)
	return New(Config{MaxTTL: 60 * time.Second, NegTTL: 30 * time.Second}, clk, ex, nil), clk
}

func TestLookupCachesPositive(t *testing.T) {
	ex := &scriptedExchanger{answers: map[string][]dnsmsg.Record{
		"a.com": {{Name: "a.com", Type: dnsmsg.TypeA, TTL: 300, A: netip.MustParseAddr("192.0.2.1")}},
	}}
	r, clk := newTestResolver(ex)
	for i := 0; i < 3; i++ {
		recs, err := r.Lookup(context.Background(), "A.com", dnsmsg.TypeA)
		if err != nil || len(recs) != 1 {
			t.Fatalf("lookup %d: %v %v", i, recs, err)
		}
	}
	if ex.calls != 1 {
		t.Errorf("exchanger calls = %d, want 1", ex.calls)
	}
	clk.Advance(61 * time.Second) // clamp expires before record TTL
	r.Lookup(context.Background(), "a.com", dnsmsg.TypeA)
	if ex.calls != 2 {
		t.Errorf("calls after expiry = %d, want 2", ex.calls)
	}
}

func TestShortRecordTTLWinsOverClamp(t *testing.T) {
	ex := &scriptedExchanger{answers: map[string][]dnsmsg.Record{
		"short.com": {{Name: "short.com", Type: dnsmsg.TypeA, TTL: 5, A: netip.MustParseAddr("192.0.2.1")}},
	}}
	r, clk := newTestResolver(ex)
	r.Lookup(context.Background(), "short.com", dnsmsg.TypeA)
	clk.Advance(6 * time.Second)
	r.Lookup(context.Background(), "short.com", dnsmsg.TypeA)
	if ex.calls != 2 {
		t.Errorf("calls = %d; 5 s record TTL should expire first", ex.calls)
	}
}

func TestNegativeCaching(t *testing.T) {
	ex := &scriptedExchanger{}
	r, clk := newTestResolver(ex)
	for i := 0; i < 3; i++ {
		if _, err := r.Lookup(context.Background(), "nx.com", dnsmsg.TypeA); !errors.Is(err, ErrNXDomain) {
			t.Fatalf("want ErrNXDomain, got %v", err)
		}
	}
	if ex.calls != 1 {
		t.Errorf("NXDOMAIN not negatively cached: %d calls", ex.calls)
	}
	clk.Advance(31 * time.Second)
	r.Lookup(context.Background(), "nx.com", dnsmsg.TypeA)
	if ex.calls != 2 {
		t.Errorf("negative entry did not expire: %d calls", ex.calls)
	}
}

func TestServFailNotCached(t *testing.T) {
	ex := &scriptedExchanger{rcode: map[string]dnsmsg.RCode{"broken.com": dnsmsg.RCodeServFail}}
	r, _ := newTestResolver(ex)
	for i := 0; i < 2; i++ {
		if _, err := r.Lookup(context.Background(), "broken.com", dnsmsg.TypeA); !errors.Is(err, ErrServFail) {
			t.Fatalf("want ErrServFail, got %v", err)
		}
	}
	if ex.calls != 2 {
		t.Errorf("SERVFAIL must not be cached: %d calls", ex.calls)
	}
}

func TestExchangeErrorPropagates(t *testing.T) {
	ex := &scriptedExchanger{fail: errors.New("socket melted")}
	r, _ := newTestResolver(ex)
	if _, err := r.Lookup(context.Background(), "x.com", dnsmsg.TypeA); err == nil {
		t.Error("transport error swallowed")
	}
}

func TestFlush(t *testing.T) {
	ex := &scriptedExchanger{answers: map[string][]dnsmsg.Record{
		"a.com": {{Name: "a.com", Type: dnsmsg.TypeA, TTL: 300, A: netip.MustParseAddr("192.0.2.1")}},
	}}
	r, _ := newTestResolver(ex)
	r.Lookup(context.Background(), "a.com", dnsmsg.TypeA)
	r.Flush()
	r.Lookup(context.Background(), "a.com", dnsmsg.TypeA)
	if ex.calls != 2 {
		t.Errorf("calls = %d after Flush, want 2", ex.calls)
	}
}

func TestLookupAddrsCombines(t *testing.T) {
	ex := &scriptedExchanger{answers: map[string][]dnsmsg.Record{
		"dual.com": {
			{Name: "dual.com", Type: dnsmsg.TypeA, TTL: 60, A: netip.MustParseAddr("192.0.2.1")},
			{Name: "dual.com", Type: dnsmsg.TypeAAAA, TTL: 60, AAAA: netip.MustParseAddr("2001:db8::1")},
		},
	}}
	r, _ := newTestResolver(ex)
	v4, v6, err := r.LookupAddrs(context.Background(), "dual.com")
	if err != nil || len(v4) != 1 || len(v6) != 1 {
		t.Fatalf("LookupAddrs: %v %v %v", v4, v6, err)
	}
}

func TestLookupAddrsBothFail(t *testing.T) {
	ex := &scriptedExchanger{}
	r, _ := newTestResolver(ex)
	if _, _, err := r.LookupAddrs(context.Background(), "nx.com"); !errors.Is(err, ErrNXDomain) {
		t.Errorf("want ErrNXDomain, got %v", err)
	}
}

func BenchmarkCachedLookup(b *testing.B) {
	ex := &scriptedExchanger{answers: map[string][]dnsmsg.Record{
		"a.com": {{Name: "a.com", Type: dnsmsg.TypeA, TTL: 3600, A: netip.MustParseAddr("192.0.2.1")}},
	}}
	clk := simclock.NewSim(t0)
	r := New(Config{MaxTTL: time.Hour}, clk, ex, nil)
	r.Lookup(context.Background(), "a.com", dnsmsg.TypeA)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Lookup(context.Background(), "a.com", dnsmsg.TypeA)
	}
}
