package resolver

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"darkdns/internal/dnsmsg"
	"darkdns/internal/simclock"
)

// TestQueryIDDeterministic: the ID derivation is a pure function of
// (seed, name, type, attempt) — no hidden state — and attempt 0 is the
// base ID itself, which is what the UDP transport's retry rotation and
// the happy-path wire tests both rely on.
func TestQueryIDDeterministic(t *testing.T) {
	a := QueryID(7, "Example.COM", dnsmsg.TypeA, 0)
	if b := QueryID(7, "example.com", dnsmsg.TypeA, 0); b != a {
		t.Errorf("canonicalization changed the ID: %d vs %d", a, b)
	}
	if b := QueryID(8, "example.com", dnsmsg.TypeA, 0); b == a {
		t.Error("seed change did not change the ID")
	}
	if b := QueryID(7, "example.com", dnsmsg.TypeAAAA, 0); b == a {
		t.Error("type change did not change the ID")
	}
	if AttemptID(a, 0) != a {
		t.Error("attempt 0 must be the base ID")
	}
	if AttemptID(a, 1) == a || AttemptID(a, 1) == AttemptID(a, 2) {
		t.Error("retry attempts must rotate the ID")
	}
	if QueryID(7, "example.com", dnsmsg.TypeA, 2) != AttemptID(a, 2) {
		t.Error("QueryID(attempt=n) must equal AttemptID(base, n)")
	}
}

// gateExchanger blocks every exchange on release, signalling entered
// first, and counts calls — the instrument for singleflight assertions.
type gateExchanger struct {
	calls   atomic.Int64
	entered chan struct{}
	release chan struct{}
}

func (g *gateExchanger) Exchange(_ context.Context, msg *dnsmsg.Message) (*dnsmsg.Message, error) {
	g.calls.Add(1)
	g.entered <- struct{}{}
	<-g.release
	resp := msg.Reply()
	resp.Answers = []dnsmsg.Record{{
		Name: msg.Questions[0].Name, Type: msg.Questions[0].Type, TTL: 300,
		A: netip.MustParseAddr("192.0.2.1"),
	}}
	return resp, nil
}

// TestSingleflightOneExchangePerExpiredKey: a thundering herd of
// lookups on the same missing (then expired) key must collapse to
// exactly one upstream exchange per expiry — the satellite fix for the
// old double-query, double-counted-miss behaviour.
func TestSingleflightOneExchangePerExpiredKey(t *testing.T) {
	const herd = 16
	ex := &gateExchanger{entered: make(chan struct{}, herd), release: make(chan struct{})}
	r, clk := newTestResolver(ex)

	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if recs, err := r.Lookup(context.Background(), "herd.com", dnsmsg.TypeA); err != nil || len(recs) != 1 {
				t.Errorf("herd lookup: %v %v", recs, err)
			}
		}()
	}
	<-ex.entered // the owning lookup reached the exchanger
	// Every other herd member must join its flight before we let the
	// exchange finish; coalesced counts exactly those joins.
	for r.CacheStats().Coalesced < herd-1 {
		runtime.Gosched()
	}
	close(ex.release)
	wg.Wait()

	if n := ex.calls.Load(); n != 1 {
		t.Fatalf("herd of %d issued %d upstream exchanges, want 1", herd, n)
	}
	cs := r.CacheStats()
	if cs.Misses != 1 || cs.Coalesced != herd-1 {
		t.Errorf("stats: %+v, want 1 miss and %d coalesced", cs, herd-1)
	}

	// Expire the entry (60 s clamp beats the 300 s record TTL): the next
	// lookup is the one exchange the expired key costs.
	clk.Advance(61 * time.Second)
	if _, err := r.Lookup(context.Background(), "herd.com", dnsmsg.TypeA); err != nil {
		t.Fatal(err)
	}
	if n := ex.calls.Load(); n != 2 {
		t.Fatalf("expired key cost %d exchanges, want exactly 1 more (total 2)", n-1)
	}
}

// batchExchanger records ExchangeBatch call shapes over a scripted
// answer function.
type batchExchanger struct {
	answer  func(*dnsmsg.Message) (*dnsmsg.Message, error)
	batches [][]string // question names per ExchangeBatch call
	singles atomic.Int64
}

func (b *batchExchanger) Exchange(_ context.Context, msg *dnsmsg.Message) (*dnsmsg.Message, error) {
	b.singles.Add(1)
	return b.answer(msg)
}

func (b *batchExchanger) ExchangeBatch(ctx context.Context, msgs []*dnsmsg.Message) ([]*dnsmsg.Message, []error) {
	names := make([]string, len(msgs))
	resps := make([]*dnsmsg.Message, len(msgs))
	errs := make([]error, len(msgs))
	for i, m := range msgs {
		names[i] = m.Questions[0].Name
		resps[i], errs[i] = b.answer(m)
	}
	b.batches = append(b.batches, names)
	return resps, errs
}

func addrAnswer(msg *dnsmsg.Message) (*dnsmsg.Message, error) {
	resp := msg.Reply()
	q := msg.Questions[0]
	if q.Type == dnsmsg.TypeA {
		resp.Answers = []dnsmsg.Record{{Name: q.Name, Type: q.Type, TTL: 60, A: netip.MustParseAddr("192.0.2.9")}}
	}
	return resp, nil
}

// TestLookupBatchDedupAndPipelining: duplicate keys inside one batch
// collapse to a single query, cache hits never reach the wire, and the
// surviving misses travel as one ExchangeBatch call.
func TestLookupBatchDedupAndPipelining(t *testing.T) {
	ex := &batchExchanger{answer: addrAnswer}
	r, _ := newTestResolver(ex)

	// Prime one key so the batch sees a live cache hit.
	if _, err := r.Lookup(context.Background(), "cached.com", dnsmsg.TypeA); err != nil {
		t.Fatal(err)
	}

	res := r.LookupBatch(context.Background(), []Query{
		{Name: "a.com", Type: dnsmsg.TypeA},
		{Name: "A.com", Type: dnsmsg.TypeA}, // duplicate (canonicalized)
		{Name: "cached.com", Type: dnsmsg.TypeA},
		{Name: "a.com", Type: dnsmsg.TypeAAAA}, // same name, distinct type
		{Name: "b.com", Type: dnsmsg.TypeA},
	})
	for i, want := range []int{1, 1, 1, 0, 1} {
		if res[i].Err != nil || len(res[i].Records) != want {
			t.Errorf("slot %d: %d records, err %v (want %d records)", i, len(res[i].Records), res[i].Err, want)
		}
	}
	if len(ex.batches) != 1 || len(ex.batches[0]) != 3 {
		t.Fatalf("misses should pipeline as one 3-query batch, got %v", ex.batches)
	}
	cs := r.CacheStats()
	// cached.com primed (1 miss) + 3 batch misses; the duplicate slot is
	// answered by its twin's flight, the cached slot is a hit.
	if cs.Misses != 4 || cs.Hits != 1 {
		t.Errorf("stats: %+v, want 4 misses / 1 hit", cs)
	}
}

// TestBatchNegativeCacheAndClampAcrossSimTime: the satellite coverage
// for cache lifetime edges under simulated time — a 300 s record clamps
// to MaxTTL=60 s (hit at 59 s, refetch at 61 s) and an NXDOMAIN entry
// lives exactly NegTTL=30 s — exercised through the batch API so both
// paths share the expiry logic.
func TestBatchNegativeCacheAndClampAcrossSimTime(t *testing.T) {
	ex := &batchExchanger{answer: func(msg *dnsmsg.Message) (*dnsmsg.Message, error) {
		resp := msg.Reply()
		q := msg.Questions[0]
		switch q.Name {
		case "long.com":
			resp.Answers = []dnsmsg.Record{{Name: q.Name, Type: q.Type, TTL: 300, A: netip.MustParseAddr("192.0.2.7")}}
		default:
			resp.Header.RCode = dnsmsg.RCodeNXDomain
		}
		return resp, nil
	}}
	r, clk := newTestResolver(ex) // MaxTTL 60 s, NegTTL 30 s
	lookup := func() (posErr, negErr error) {
		res := r.LookupBatch(context.Background(), []Query{
			{Name: "long.com", Type: dnsmsg.TypeA},
			{Name: "gone.com", Type: dnsmsg.TypeA},
		})
		return res[0].Err, res[1].Err
	}

	if posErr, negErr := lookup(); posErr != nil || !errors.Is(negErr, ErrNXDomain) {
		t.Fatalf("initial: %v / %v", posErr, negErr)
	}
	misses := func() int64 { return r.CacheStats().Misses }
	if m := misses(); m != 2 {
		t.Fatalf("initial misses = %d", m)
	}

	clk.Advance(29 * time.Second) // both entries still live
	lookup()
	if m := misses(); m != 2 {
		t.Errorf("at 29 s both entries must hit (misses %d)", m)
	}

	clk.Advance(30 * time.Second) // 59 s: negative entry (30 s) expired, clamp (60 s) not yet
	if _, negErr := lookup(); !errors.Is(negErr, ErrNXDomain) {
		t.Errorf("negative refetch: %v", negErr)
	}
	if m := misses(); m != 3 {
		t.Errorf("at 59 s only the negative entry refetches (misses %d, want 3)", m)
	}

	clk.Advance(2 * time.Second) // 61 s: the 300 s record's 60 s clamp has
	// expired; the negative entry was refreshed at 59 s and still lives.
	lookup()
	if m := misses(); m != 4 {
		t.Errorf("at 61 s only the clamped record refetches (misses %d, want 4)", m)
	}
}

// TestShardedCacheRaceHammer drives concurrent Lookup, LookupBatch,
// Flush and stats readers over the sharded cache — the satellite race
// hammer; its assertions are weak on purpose, the checker is the race
// detector and the absence of deadlock.
func TestShardedCacheRaceHammer(t *testing.T) {
	ex := ExchangerFunc(func(_ context.Context, msg *dnsmsg.Message) (*dnsmsg.Message, error) {
		resp := msg.Reply()
		q := msg.Questions[0]
		resp.Answers = []dnsmsg.Record{{Name: q.Name, Type: q.Type, TTL: 1, A: netip.MustParseAddr("192.0.2.3")}}
		return resp, nil
	})
	clk := simclock.NewSim(t0)
	r := New(Config{MaxTTL: time.Second}, clk, ex, nil)

	names := make([]string, 32)
	for i := range names {
		names[i] = fmt.Sprintf("d%03d.example", i)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < 300; i++ {
				// Dwell on each name for a few iterations so lookups
				// between two flushes revisit warm keys.
				name := names[(g*4+i/4)%len(names)]
				switch {
				case i%23 == 0:
					r.Flush()
				case i%5 == 0:
					qs := []Query{
						{Name: name, Type: dnsmsg.TypeA},
						{Name: names[(g+i)%len(names)], Type: dnsmsg.TypeAAAA},
					}
					for j, res := range r.LookupBatch(ctx, qs) {
						if res.Err != nil {
							t.Errorf("batch slot %d: %v", j, res.Err)
						}
					}
				default:
					if _, err := r.Lookup(ctx, name, dnsmsg.TypeA); err != nil {
						t.Errorf("lookup %s: %v", name, err)
					}
				}
				r.CacheStats()
			}
		}(g)
	}
	wg.Wait()
	if cs := r.CacheStats(); cs.Hits == 0 || cs.Misses == 0 {
		t.Errorf("hammer produced degenerate stats: %+v", cs)
	}
}

// TestLanesShedWhenSaturated: with queueing disabled, a lane holding
// its one in-flight slot sheds the next exchange synchronously with
// ErrRateLimited — the dispatcher posture: never block the probe path
// behind a slow authority.
func TestLanesShedWhenSaturated(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	inner := ExchangerFunc(func(_ context.Context, msg *dnsmsg.Message) (*dnsmsg.Message, error) {
		started <- struct{}{}
		<-release
		return msg.Reply(), nil
	})
	ls := NewLanes(LaneConfig{MaxInflight: 1, MaxQueued: -1}, inner, nil)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := ls.Exchange(context.Background(), dnsmsg.NewQuery(1, "slow.shop", dnsmsg.TypeNS)); err != nil {
			t.Errorf("admitted exchange failed: %v", err)
		}
	}()
	<-started

	if _, err := ls.Exchange(context.Background(), dnsmsg.NewQuery(2, "other.shop", dnsmsg.TypeNS)); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("saturated lane returned %v, want ErrRateLimited", err)
	}
	close(release)
	wg.Wait()

	stats := ls.LaneStats()
	if len(stats) != 1 || stats[0].Server != "shop" || stats[0].Done != 1 || stats[0].Shed != 1 {
		t.Errorf("lane stats: %+v", stats)
	}
}

// TestLanesBatchShedsOversubscription: a batch larger than a lane's
// in-flight bound must shed the excess synchronously (waiting would
// deadlock on slots the batch itself holds) and still answer the
// admitted subset.
func TestLanesBatchShedsOversubscription(t *testing.T) {
	inner := ExchangerFunc(func(_ context.Context, msg *dnsmsg.Message) (*dnsmsg.Message, error) {
		return msg.Reply(), nil
	})
	ls := NewLanes(LaneConfig{MaxInflight: 2}, inner, nil)

	msgs := make([]*dnsmsg.Message, 5)
	for i := range msgs {
		msgs[i] = dnsmsg.NewQuery(uint16(i+1), fmt.Sprintf("d%d.shop", i), dnsmsg.TypeNS)
	}
	resps, errs := ls.ExchangeBatch(context.Background(), msgs)
	var ok, shed int
	for i := range msgs {
		switch {
		case errs[i] == nil && resps[i] != nil:
			ok++
		case errors.Is(errs[i], ErrRateLimited):
			shed++
		default:
			t.Errorf("slot %d: resp=%v err=%v", i, resps[i], errs[i])
		}
	}
	if ok != 2 || shed != 3 {
		t.Fatalf("admitted %d / shed %d, want 2 / 3", ok, shed)
	}
	// Slots released after the batch: a follow-up exchange is admitted.
	if _, err := ls.Exchange(context.Background(), dnsmsg.NewQuery(9, "later.shop", dnsmsg.TypeNS)); err != nil {
		t.Fatalf("post-batch exchange: %v", err)
	}
}

// TestLocalExchangerFixups: the in-process adapter mirrors dnsserver's
// wire path — transaction ID echo, response bit, question echo — and
// maps a nil handler answer to SERVFAIL.
func TestLocalExchangerFixups(t *testing.T) {
	le := &LocalExchanger{H: handlerFunc(func(q dnsmsg.Question) *dnsmsg.Message {
		if q.Name == "nil.example" {
			return nil
		}
		return &dnsmsg.Message{} // bare answer: adapter must fix it up
	})}
	q := dnsmsg.NewQuery(0xBEEF, "ok.example", dnsmsg.TypeA)
	resp, err := le.Exchange(context.Background(), q)
	if err != nil || resp.Header.ID != 0xBEEF || !resp.Header.Response || len(resp.Questions) != 1 {
		t.Fatalf("fix-ups missing: %+v err=%v", resp, err)
	}
	resp, err = le.Exchange(context.Background(), dnsmsg.NewQuery(7, "nil.example", dnsmsg.TypeA))
	if err != nil || resp.Header.RCode != dnsmsg.RCodeServFail || resp.Header.ID != 7 {
		t.Fatalf("nil handler answer: %+v err=%v", resp, err)
	}

	// Batch over the pool answers positionally.
	le.Workers = 4
	msgs := []*dnsmsg.Message{
		dnsmsg.NewQuery(1, "a.example", dnsmsg.TypeA),
		dnsmsg.NewQuery(2, "nil.example", dnsmsg.TypeA),
		dnsmsg.NewQuery(3, "c.example", dnsmsg.TypeA),
	}
	resps, errs := le.ExchangeBatch(context.Background(), msgs)
	for i := range msgs {
		if errs[i] != nil || resps[i].Header.ID != msgs[i].Header.ID {
			t.Errorf("batch slot %d: id %d err %v", i, resps[i].Header.ID, errs[i])
		}
	}
	if resps[1].Header.RCode != dnsmsg.RCodeServFail {
		t.Error("nil answer in batch must map to SERVFAIL")
	}
}

// handlerFunc adapts a function to Handler.
type handlerFunc func(q dnsmsg.Question) *dnsmsg.Message

func (f handlerFunc) Handle(q dnsmsg.Question) *dnsmsg.Message { return f(q) }
