package feed

import "net"

func dial(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
