package feed

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// encodeCommand renders a parsed command back onto the wire grammar —
// the fuzz oracle's inverse for parseCommand. Tenants are whitespace-free
// by construction (parseCommand splits on fields), so plain joins are
// exact.
func encodeCommand(c command) string {
	switch c.verb {
	case "HELLO":
		return "HELLO " + c.tenant
	case "SUBSCRIBE":
		if c.from < 0 {
			return "SUBSCRIBE"
		}
		return fmt.Sprintf("SUBSCRIBE FROM %d", c.from)
	case "FROM":
		return fmt.Sprintf("FROM %d", c.from)
	default: // UNSUBSCRIBE, LIVE
		return c.verb
	}
}

// FuzzFeedProtocol drives both halves of the wire grammar from one seed
// corpus, in the FuzzColumnarRoundTrip style. Command direction: any
// line must parse without panicking, rejections must carry a structured
// code, and every accepted command must re-encode to a line that parses
// back to the identical command. Frame direction: any bytes must decode
// without panicking, and every accepted frame must survive an
// encode→decode→encode cycle byte-for-byte.
func FuzzFeedProtocol(f *testing.F) {
	// Command lines from the session conformance repertoire, valid and not.
	for _, line := range []string{
		"HELLO acme", "hello Tenant-1", "HELLO", "HELLO a b",
		"SUBSCRIBE", "subscribe from 42", "SUBSCRIBE FROM 0",
		"SUBSCRIBE FROM -1", "SUBSCRIBE FROM x", "SUBSCRIBE NOW",
		"UNSUBSCRIBE", "UNSUBSCRIBE hard",
		"FROM 7", "FROM -3", "FROM", "FROM 9999999999999999999",
		"LIVE", "", "   ", "BOGUS x y",
	} {
		f.Add([]byte(line))
	}
	// Frame lines: one of each kind, then structural near-misses.
	ts := time.Date(2024, 5, 1, 12, 0, 0, 0, time.UTC)
	for _, fr := range []*Frame{
		{Kind: FrameWelcome, Session: "s1", Tenant: "public", Head: 10},
		{Kind: FrameSubscribed, From: 3, Head: 10},
		{Kind: FrameData, Entries: []Entry{{Offset: 3, Time: ts, Domain: "a.com", Raw: "a.com. NS ns1"}}, Next: 4},
		{Kind: FrameHeartbeat, Seq: 2, Head: 11},
		{Kind: FrameGap, Gap: &Gap{From: 4, To: 9, Dropped: 6, Reason: "slow_consumer"}},
		{Kind: FrameBye, Code: CodeShutdown, Reason: "server closing"},
		{Kind: FrameError, Code: CodeBadCommand, Reason: "unknown command X"},
	} {
		b, err := encodeFrame(fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte(`{"frame":""}`))
	f.Add([]byte(`{"offset":1,"domain":"legacy.com"}`))
	f.Add([]byte(`{"frame":"data","entries":[{"offset":1,"time":"bad"}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Command direction.
		cmd, perr := parseCommand(string(data))
		if perr == nil {
			line := encodeCommand(cmd)
			re, rerr := parseCommand(line)
			if rerr != nil {
				t.Fatalf("re-encoded command %q rejected: %v", line, rerr)
			}
			if re != cmd {
				t.Fatalf("round trip drifted: %+v → %q → %+v", cmd, line, re)
			}
		} else if perr.code == "" || perr.msg == "" {
			t.Fatalf("rejection without structured code/message: %+v", perr)
		}

		// Frame direction. Compare re-encoded bytes, not structs: a Frame
		// holds time.Time values whose wall/monotonic representation is
		// not DeepEqual-stable, but their JSON rendering is.
		fr, err := decodeFrame(data)
		if err != nil {
			return
		}
		if fr.Kind == "" {
			t.Fatalf("decodeFrame accepted a frame without kind: %q", data)
		}
		b1, err := encodeFrame(fr)
		if err != nil {
			// A decoded frame can hold a value Go's encoder refuses (e.g.
			// a string that arrived via a surrogate escape); that is a
			// reject, not a drift.
			return
		}
		fr2, err := decodeFrame(b1)
		if err != nil {
			t.Fatalf("encoded frame does not decode: %v\n%s", err, b1)
		}
		b2, err := encodeFrame(fr2)
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("frame round trip drifted:\n%s\n%s", b1, b2)
		}
	})
}
