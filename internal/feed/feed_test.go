package feed

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"darkdns/internal/stream"
)

var t0 = time.Date(2023, 11, 1, 0, 0, 0, 0, time.UTC)

func startFeed(t *testing.T) (*stream.Topic, string, func()) {
	t.Helper()
	bus := stream.NewBus()
	topic := bus.Topic("nrd-feed")
	srv := NewServer(topic)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return topic, addr.String(), func() { srv.Close() }
}

func TestReplayFromOffset(t *testing.T) {
	topic, addr, stop := startFeed(t)
	defer stop()
	for i := 0; i < 5; i++ {
		topic.Publish(t0, fmt.Sprintf("d%d.com", i), []byte("{}"))
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var mu sync.Mutex
	var got []Entry
	done := make(chan struct{})
	go NewClient(addr).Stream(ctx, 2, func(e Entry) {
		mu.Lock()
		got = append(got, e)
		if len(got) == 3 {
			close(done)
		}
		mu.Unlock()
	})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("replay never delivered")
	}
	mu.Lock()
	defer mu.Unlock()
	if got[0].Offset != 2 || got[0].Domain != "d2.com" {
		t.Errorf("first replayed: %+v", got[0])
	}
}

func TestLiveTailSkipsHistory(t *testing.T) {
	topic, addr, stop := startFeed(t)
	defer stop()
	topic.Publish(t0, "old.com", nil)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	gotCh := make(chan Entry, 10)
	go NewClient(addr).Stream(ctx, -1, func(e Entry) { gotCh <- e })

	time.Sleep(100 * time.Millisecond) // allow LIVE subscription to settle
	topic.Publish(t0, "new.com", nil)

	select {
	case e := <-gotCh:
		if e.Domain != "new.com" {
			t.Errorf("live entry: %+v (history should be skipped)", e)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("live tail never delivered")
	}
}

func TestBadRequestRejected(t *testing.T) {
	_, addr, stop := startFeed(t)
	defer stop()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	err := NewClient(addr).Stream(ctx, 0, func(Entry) {})
	_ = err // offset 0 on empty topic just tails; no error expected here
	// Now a malformed command straight over TCP.
	conn, err := dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GIMME everything\n")
	buf := make([]byte, 256)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := conn.Read(buf)
	if err != nil || n == 0 {
		t.Fatalf("no error response: %v", err)
	}
	if string(buf[:n]) == "" {
		t.Error("empty response to bad command")
	}
}

func TestStreamStopsOnCancel(t *testing.T) {
	_, addr, stop := startFeed(t)
	defer stop()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- NewClient(addr).Stream(ctx, -1, func(Entry) {}) }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != ErrStopped {
			t.Errorf("Stream returned %v, want ErrStopped", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Stream did not stop")
	}
}
