package feed

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Wire grammar. Commands travel client→server as single text lines so a
// session remains drivable from nc; frames travel server→client as JSON
// lines discriminated by a "frame" key. Batch DATA frames amortize the
// encode/write cost over many entries — the req/res→pub/sub shift the
// MoQT-for-DNS work motivates (PAPERS.md).
//
// Commands:
//
//	HELLO <tenant>            bind the session to a tenant (optional;
//	                          default tenant is "public")
//	SUBSCRIBE [FROM <n>]      start delivery; FROM replays from offset n,
//	                          bare SUBSCRIBE tails live from the head
//	UNSUBSCRIBE               stop delivery; the session stays open for a
//	                          later SUBSCRIBE
//
// Frames: welcome, subscribed, data, hb, gap, bye, error (see the frame
// structs below). The legacy shim (server.go) speaks the original raw
// JSON-entry lines instead and is selected by a FROM/LIVE first line.

// Frame discriminator values.
const (
	FrameWelcome    = "welcome"
	FrameSubscribed = "subscribed"
	FrameData       = "data"
	FrameHeartbeat  = "hb"
	FrameGap        = "gap"
	FrameBye        = "bye"
	FrameError      = "error"
)

// Structured protocol error codes carried by error frames.
const (
	CodeBadCommand        = "bad_command"
	CodeBadOffset         = "bad_offset"
	CodeAlreadySubscribed = "already_subscribed"
	CodeNotSubscribed     = "not_subscribed"
	CodeHelloAfterSub     = "hello_after_subscribe"
	CodeTenantLimit       = "tenant_limit"
	CodeSlowConsumer      = "slow_consumer"
	CodeShutdown          = "shutdown"
)

// Frame is the decoded union of every server→client frame. Kind selects
// which fields are meaningful; Entries aliases the data payload without a
// second allocation.
type Frame struct {
	Kind string `json:"frame"`

	// welcome
	Session string `json:"session,omitempty"`
	Tenant  string `json:"tenant,omitempty"`

	// welcome, subscribed, hb: head is the topic length at send time.
	Head int64 `json:"head,omitempty"`

	// subscribed
	From int64 `json:"from,omitempty"`

	// data
	Entries []Entry `json:"entries,omitempty"`
	// Next is the offset delivery continues at after this frame — the
	// resume point a client persists.
	Next int64 `json:"next,omitempty"`

	// hb: sequence number, monotonically increasing per session.
	Seq int64 `json:"seq,omitempty"`

	// gap
	Gap *Gap `json:"gap,omitempty"`

	// bye, error
	Code   string `json:"code,omitempty"`
	Reason string `json:"reason,omitempty"`
}

// encodeFrame renders a frame as one newline-terminated JSON line.
func encodeFrame(f *Frame) ([]byte, error) {
	b, err := json.Marshal(f)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// decodeFrame parses one server→client line. Legacy raw entry lines do
// not carry a "frame" key and are rejected here; the client's legacy
// paths never call decodeFrame.
func decodeFrame(line []byte) (*Frame, error) {
	var f Frame
	if err := json.Unmarshal(line, &f); err != nil {
		return nil, fmt.Errorf("feed: bad frame: %w", err)
	}
	if f.Kind == "" {
		return nil, fmt.Errorf("feed: frame without kind: %q", line)
	}
	return &f, nil
}

// command is one parsed client→server line.
type command struct {
	verb   string // HELLO, SUBSCRIBE, UNSUBSCRIBE, FROM, LIVE
	tenant string // HELLO
	from   int64  // SUBSCRIBE FROM / FROM; -1 means live tail
}

// protoError is a protocol violation answered with a structured error
// frame; code is one of the Code* constants.
type protoError struct {
	code string
	msg  string
}

func (e *protoError) Error() string { return fmt.Sprintf("feed: %s: %s", e.code, e.msg) }

// parseCommand parses one client line into a command. The legacy verbs
// FROM and LIVE parse here too, so the session reader has one grammar;
// the server routes them to the shim only when they open the connection.
func parseCommand(line string) (command, *protoError) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return command{}, &protoError{CodeBadCommand, "empty command"}
	}
	verb := strings.ToUpper(fields[0])
	switch verb {
	case "HELLO":
		if len(fields) != 2 {
			return command{}, &protoError{CodeBadCommand, "HELLO takes exactly one tenant name"}
		}
		return command{verb: verb, tenant: fields[1]}, nil
	case "SUBSCRIBE":
		c := command{verb: verb, from: -1}
		switch {
		case len(fields) == 1:
			return c, nil
		case len(fields) == 3 && strings.ToUpper(fields[1]) == "FROM":
			v, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil || v < 0 {
				return command{}, &protoError{CodeBadOffset, "SUBSCRIBE FROM needs a non-negative integer offset"}
			}
			c.from = v
			return c, nil
		default:
			return command{}, &protoError{CodeBadCommand, "usage: SUBSCRIBE [FROM <offset>]"}
		}
	case "UNSUBSCRIBE":
		if len(fields) != 1 {
			return command{}, &protoError{CodeBadCommand, "UNSUBSCRIBE takes no arguments"}
		}
		return command{verb: verb, from: -1}, nil
	case "FROM":
		if len(fields) != 2 {
			return command{}, &protoError{CodeBadOffset, "FROM needs an offset"}
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return command{}, &protoError{CodeBadOffset, "bad offset"}
		}
		return command{verb: verb, from: v}, nil
	case "LIVE":
		return command{verb: verb, from: -1}, nil
	default:
		return command{}, &protoError{CodeBadCommand, "unknown command " + verb}
	}
}
