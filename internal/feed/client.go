package feed

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"
)

// Client consumes a feed server over the framed session protocol.
type Client struct {
	addr string
}

// NewClient creates a client for the feed at addr.
func NewClient(addr string) *Client { return &Client{addr: addr} }

// ErrStopped is returned when the context ends the stream.
var ErrStopped = errors.New("feed: stopped")

// ErrResumeExhausted terminates a subscription after MaxResumeAttempts
// consecutive failed reconnects.
var ErrResumeExhausted = errors.New("feed: resume attempts exhausted")

// SubscribeOptions parameterizes one subscription.
type SubscribeOptions struct {
	// Tenant names the session's tenant (HELLO); empty skips HELLO and
	// lands in the server's default tenant.
	Tenant string
	// From is the replay start offset; negative tails live from the
	// head.
	From int64
	// AutoResume reconnects after a connection failure and resumes from
	// the offset after the last delivered entry (or gap), with bounded
	// exponential backoff. Protocol errors from the server never resume.
	AutoResume bool
	// ResumeBackoff is the initial reconnect delay (default 100ms),
	// doubling up to ResumeBackoffMax (default 5s) and resetting after a
	// successful frame.
	ResumeBackoff    time.Duration
	ResumeBackoffMax time.Duration
	// MaxResumeAttempts bounds consecutive failed reconnects before the
	// subscription ends with ErrResumeExhausted (default 8; values < 0
	// retry forever).
	MaxResumeAttempts int
	// Buffer is the event channel's capacity (default 256).
	Buffer int
}

// EventKind discriminates subscription events.
type EventKind int

const (
	// EventEntry carries one feed entry.
	EventEntry EventKind = iota
	// EventGap reports a server-side hole (shed or encode loss).
	EventGap
	// EventResumed reports a successful auto-resume reconnect; From is
	// the offset the stream continued at.
	EventResumed
)

// Event is one item delivered on Subscription.C.
type Event struct {
	Kind  EventKind
	Entry Entry
	Gap   Gap
	From  int64 // EventResumed
}

// Subscription is a live feed consumption. Read events from C until it
// closes, then inspect Err.
type Subscription struct {
	// C delivers entries, gaps, and resume notices in order.
	C <-chan Event

	cancel context.CancelFunc
	err    atomic.Pointer[error]
	last   atomic.Int64 // next offset to resume from
}

// Err reports why C closed: nil after a clean server bye, ErrStopped
// after context cancellation, or the terminal failure.
func (s *Subscription) Err() error {
	if p := s.err.Load(); p != nil {
		return *p
	}
	return nil
}

// NextOffset is the offset delivery would continue at — the resume point
// after the last delivered entry or gap.
func (s *Subscription) NextOffset() int64 { return s.last.Load() }

// Close tears the subscription down; C closes shortly after.
func (s *Subscription) Close() { s.cancel() }

func (s *Subscription) setErr(err error) {
	if err != nil {
		s.err.CompareAndSwap(nil, &err)
	}
}

// Subscribe opens a session, subscribes, and streams events on the
// returned Subscription's channel. The initial dial and handshake are
// synchronous so configuration errors surface immediately; delivery then
// continues on a background goroutine until ctx ends, the server says
// bye, or an unrecoverable error occurs.
func (c *Client) Subscribe(ctx context.Context, opts SubscribeOptions) (*Subscription, error) {
	if opts.ResumeBackoff <= 0 {
		opts.ResumeBackoff = 100 * time.Millisecond
	}
	if opts.ResumeBackoffMax <= 0 {
		opts.ResumeBackoffMax = 5 * time.Second
	}
	if opts.MaxResumeAttempts == 0 {
		opts.MaxResumeAttempts = 8
	}
	if opts.Buffer <= 0 {
		opts.Buffer = 256
	}
	ctx, cancel := context.WithCancel(ctx)
	ch := make(chan Event, opts.Buffer)
	sub := &Subscription{C: ch, cancel: cancel}
	sub.last.Store(opts.From)

	conn, err := c.handshake(ctx, opts, opts.From)
	if err != nil {
		cancel()
		return nil, err
	}
	go c.run(ctx, conn, opts, sub, ch)
	return sub, nil
}

// handshake dials and completes HELLO/SUBSCRIBE, returning the connected
// session ready for delivery frames.
func (c *Client) handshake(ctx context.Context, opts SubscribeOptions, from int64) (*subConn, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return nil, err
	}
	sc := &subConn{conn: conn, r: bufio.NewScanner(conn)}
	sc.r.Buffer(make([]byte, 0, 64<<10), 8<<20)
	if opts.Tenant != "" {
		if _, err := fmt.Fprintf(conn, "HELLO %s\n", opts.Tenant); err != nil {
			conn.Close()
			return nil, err
		}
		f, err := sc.readFrame()
		if err != nil {
			conn.Close()
			return nil, err
		}
		if f.Kind == FrameError {
			conn.Close()
			return nil, fmt.Errorf("feed: %s: %s", f.Code, f.Reason)
		}
		if f.Kind != FrameWelcome {
			conn.Close()
			return nil, fmt.Errorf("feed: expected welcome, got %s", f.Kind)
		}
	}
	if from < 0 {
		_, err = fmt.Fprintf(conn, "SUBSCRIBE\n")
	} else {
		_, err = fmt.Fprintf(conn, "SUBSCRIBE FROM %d\n", from)
	}
	if err != nil {
		conn.Close()
		return nil, err
	}
	f, err := sc.readFrame()
	if err != nil {
		conn.Close()
		return nil, err
	}
	if f.Kind == FrameError {
		conn.Close()
		return nil, fmt.Errorf("feed: %s: %s", f.Code, f.Reason)
	}
	if f.Kind != FrameSubscribed {
		conn.Close()
		return nil, fmt.Errorf("feed: expected subscribed, got %s", f.Kind)
	}
	return sc, nil
}

// subConn is one connected session on the client side.
type subConn struct {
	conn net.Conn
	r    *bufio.Scanner
}

// readFrame reads the next non-empty line as a frame.
func (sc *subConn) readFrame() (*Frame, error) {
	for sc.r.Scan() {
		line := sc.r.Bytes()
		if len(line) == 0 {
			continue
		}
		return decodeFrame(line)
	}
	if err := sc.r.Err(); err != nil {
		return nil, err
	}
	return nil, errors.New("feed: connection closed")
}

// run is the delivery loop with auto-resume.
func (c *Client) run(ctx context.Context, sc *subConn, opts SubscribeOptions, sub *Subscription, ch chan<- Event) {
	defer close(ch)
	defer sub.cancel()

	// Unblock reads when ctx ends: close whichever connection is current
	// (resume swaps it via the pointer).
	var cur atomic.Pointer[subConn]
	cur.Store(sc)
	stop := context.AfterFunc(ctx, func() {
		if c := cur.Load(); c != nil {
			c.conn.Close()
		}
	})
	defer stop()

	backoff := opts.ResumeBackoff
	attempts := 0
	emit := func(ev Event) bool {
		select {
		case ch <- ev:
			return true
		case <-ctx.Done():
			return false
		}
	}
	for {
		f, err := sc.readFrame()
		if err != nil {
			sc.conn.Close()
			if ctx.Err() != nil {
				sub.setErr(ErrStopped)
				return
			}
			if !opts.AutoResume {
				sub.setErr(err)
				return
			}
			// Bounded-backoff resume from the last delivered offset.
			for {
				attempts++
				if opts.MaxResumeAttempts > 0 && attempts > opts.MaxResumeAttempts {
					sub.setErr(ErrResumeExhausted)
					return
				}
				select {
				case <-ctx.Done():
					sub.setErr(ErrStopped)
					return
				case <-time.After(backoff):
				}
				if backoff *= 2; backoff > opts.ResumeBackoffMax {
					backoff = opts.ResumeBackoffMax
				}
				next, derr := c.handshake(ctx, opts, sub.last.Load())
				if derr == nil {
					sc = next
					cur.Store(sc)
					if ctx.Err() != nil {
						sc.conn.Close()
						sub.setErr(ErrStopped)
						return
					}
					if !emit(Event{Kind: EventResumed, From: sub.last.Load()}) {
						sub.setErr(ErrStopped)
						sc.conn.Close()
						return
					}
					break
				}
				if ctx.Err() != nil {
					sub.setErr(ErrStopped)
					return
				}
			}
			continue
		}
		attempts = 0
		backoff = opts.ResumeBackoff
		switch f.Kind {
		case FrameData:
			for _, e := range f.Entries {
				if !emit(Event{Kind: EventEntry, Entry: e}) {
					sub.setErr(ErrStopped)
					sc.conn.Close()
					return
				}
				sub.last.Store(e.Offset + 1)
			}
		case FrameGap:
			if f.Gap != nil {
				if !emit(Event{Kind: EventGap, Gap: *f.Gap}) {
					sub.setErr(ErrStopped)
					sc.conn.Close()
					return
				}
				if f.Gap.To+1 > sub.last.Load() {
					sub.last.Store(f.Gap.To + 1)
				}
			}
		case FrameHeartbeat:
			// Liveness only.
		case FrameBye:
			sc.conn.Close()
			if f.Reason == "shutdown" && opts.AutoResume {
				// Treat a server shutdown like a dropped connection so
				// rolling restarts resume transparently.
				continue
			}
			return
		case FrameError:
			sc.conn.Close()
			sub.setErr(fmt.Errorf("feed: %s: %s", f.Code, f.Reason))
			return
		}
	}
}

// Stream is the legacy consumption API, kept as a thin shim over
// Subscribe: it connects with the framed protocol and delivers entries
// to fn until ctx is done. from < 0 requests live tailing; otherwise
// replay starts at the given offset. Deprecated: use Subscribe.
func (c *Client) Stream(ctx context.Context, from int64, fn func(Entry)) error {
	sub, err := c.Subscribe(ctx, SubscribeOptions{From: from})
	if err != nil {
		if ctx.Err() != nil {
			return ErrStopped
		}
		return err
	}
	defer sub.Close()
	for ev := range sub.C {
		if ev.Kind == EventEntry {
			fn(ev.Entry)
		}
	}
	err = sub.Err()
	if ctx.Err() != nil {
		return ErrStopped
	}
	if errors.Is(err, ErrStopped) {
		return ErrStopped
	}
	return err
}
