package feed

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"darkdns/internal/stream"
)

// DefaultTenant is the tenant a session belongs to until it sends HELLO.
const DefaultTenant = "public"

// ErrServerClosed terminates subscriber queues when the server shuts
// down.
var ErrServerClosed = errors.New("feed: server closed")

// pumpNonce makes fan-out consumer-group names unique across servers
// sharing one topic.
var pumpNonce atomic.Uint64

// ServerConfig parameterizes the fan-out tier.
type ServerConfig struct {
	// QueueBound caps each subscriber's live-delivery queue (entries).
	QueueBound int
	// ShedPolicy selects what happens on queue overflow.
	ShedPolicy ShedPolicy
	// Heartbeat is the idle interval between hb frames (legacy shim:
	// blank lines).
	Heartbeat time.Duration
	// BatchMax bounds entries per DATA frame and per catch-up log read.
	BatchMax int
	// WriteTimeout is the per-frame write deadline; a peer that cannot
	// drain one frame within it is disconnected.
	WriteTimeout time.Duration
	// TenantMaxSubscribers caps concurrent subscriptions per tenant
	// (0 = unlimited).
	TenantMaxSubscribers int
	// TenantRate throttles delivered entries/s per tenant (0 =
	// unlimited). A throttled writer falls behind and the shed policy
	// takes over, so rate-limited tenants degrade like slow consumers.
	TenantRate float64
}

// DefaultServerConfig returns the production defaults.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		QueueBound:   1024,
		ShedPolicy:   ShedDropOldest,
		Heartbeat:    time.Second,
		BatchMax:     256,
		WriteTimeout: 5 * time.Second,
	}
}

// FanoutStats is the tier's counter surface, the fan-out analogue of
// rdap.DispatchStats: delivery, queueing and shedding totals plus the
// live registry shape.
type FanoutStats struct {
	Subscribers int // live subscriptions right now
	Tenants     int // tenants ever seen
	QueueDepth  int // entries queued across all subscribers, right now
	MaxDepth    int // deepest per-subscriber backlog observed

	Sessions        int64 // connections ever accepted
	LegacySessions  int64 // of which spoke the FROM/LIVE shim
	Delivered       int64 // entries sent (DATA frames + legacy lines)
	Batches         int64 // DATA frames sent
	BytesOut        int64 // payload bytes written
	Heartbeats      int64 // hb frames (and legacy blank lines) sent
	Shed            int64 // entries evicted by drop-oldest shedding
	Gaps            int64 // GAP frames emitted
	EncodeDrops     int64 // entries lost to encoding failures (gap-marked)
	EncodeCacheHits int64 // DATA entry marshals served from the shared encode cache
	Disconnects     int64 // subscribers cut by the disconnect shed policy
}

// Server is the multi-tenant pub/sub fan-out tier over one topic.
type Server struct {
	topic *stream.Topic
	cfg   ServerConfig
	reg   *registry
	enc   *encodeCache

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	done   chan struct{}
	wg     sync.WaitGroup

	sessions        atomic.Int64
	legacySessions  atomic.Int64
	delivered       atomic.Int64
	batches         atomic.Int64
	bytesOut        atomic.Int64
	heartbeats      atomic.Int64
	shed            atomic.Int64
	gaps            atomic.Int64
	encodeDrops     atomic.Int64
	encodeCacheHits atomic.Int64
	disconnects     atomic.Int64
}

// NewServer serves the given topic with default configuration.
func NewServer(topic *stream.Topic) *Server {
	return NewServerConfig(topic, DefaultServerConfig())
}

// NewServerConfig serves the given topic with explicit configuration;
// zero fields take their defaults.
func NewServerConfig(topic *stream.Topic, cfg ServerConfig) *Server {
	def := DefaultServerConfig()
	if cfg.QueueBound <= 0 {
		cfg.QueueBound = def.QueueBound
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = def.Heartbeat
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = def.BatchMax
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = def.WriteTimeout
	}
	return &Server{
		topic: topic,
		cfg:   cfg,
		reg:   newRegistry(cfg.TenantMaxSubscribers, cfg.TenantRate),
		enc:   newEncodeCache(4 * cfg.BatchMax),
		conns: make(map[net.Conn]struct{}),
		done:  make(chan struct{}),
	}
}

// Serve listens on addr, starts the fan-out pump, and returns the bound
// address.
func (s *Server) Serve(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	group := fmt.Sprintf("feed-fanout-%d", pumpNonce.Add(1))
	s.topic.Commit(group, int64(s.topic.Len()))
	s.wg.Add(2)
	go s.pump(group)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

// Close stops the listener, terminates every live session, and waits for
// the pump and all session goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	close(s.done)
	s.mu.Unlock()

	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.reg.closeAll(ErrServerClosed)
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

// Stats returns the tier's counters.
func (s *Server) Stats() FanoutStats {
	subs, queued, maxDepth := s.reg.count()
	return FanoutStats{
		Subscribers: subs,
		Tenants:     s.reg.tenantCount(),
		QueueDepth:  queued,
		MaxDepth:    maxDepth,

		Sessions:        s.sessions.Load(),
		LegacySessions:  s.legacySessions.Load(),
		Delivered:       s.delivered.Load(),
		Batches:         s.batches.Load(),
		BytesOut:        s.bytesOut.Load(),
		Heartbeats:      s.heartbeats.Load(),
		Shed:            s.shed.Load(),
		Gaps:            s.gaps.Load(),
		EncodeDrops:     s.encodeDrops.Load(),
		EncodeCacheHits: s.encodeCacheHits.Load(),
		Disconnects:     s.disconnects.Load(),
	}
}

// pump is the single topic consumer feeding every subscriber queue: one
// consumer group for the whole tier, dropped on shutdown, in place of the
// old one-leaked-group-per-connection design.
func (s *Server) pump(group string) {
	defer s.wg.Done()
	consumer := stream.NewConsumer(s.topic, group, 4*s.cfg.BatchMax)
	defer consumer.Close()
	for {
		select {
		case <-s.done:
			return
		default:
		}
		msgs, ok := consumer.WaitNext(200 * time.Millisecond)
		if !ok {
			continue
		}
		// Warm the shared encode cache once per message before fan-out:
		// N same-offset subscriber deliveries then reuse the frozen bytes
		// instead of marshalling N times. Failures are left uncached so
		// the per-entry isolation path still surfaces them per delivery.
		for _, m := range msgs {
			s.encodeEntry(Entry{Offset: m.Offset, Time: m.Time, Domain: m.Key, Raw: string(m.Value)})
		}
		s.shed.Add(s.reg.broadcast(msgs))
	}
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// frameWriter serializes all writes to one connection (command replies
// and delivery frames interleave) behind a write deadline.
type frameWriter struct {
	mu      sync.Mutex
	conn    net.Conn
	bw      *bufio.Writer
	timeout time.Duration
	bytes   *atomic.Int64
}

func (w *frameWriter) writeLine(line []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.conn.SetWriteDeadline(time.Now().Add(w.timeout))
	if _, err := w.bw.Write(line); err != nil {
		return err
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	w.bytes.Add(int64(len(line)))
	return nil
}

func (w *frameWriter) writeFrame(f *Frame) error {
	line, err := encodeFrame(f)
	if err != nil {
		return err
	}
	return w.writeLine(line)
}

// session is one framed connection's state.
type session struct {
	srv    *Server
	conn   net.Conn
	w      *frameWriter
	id     int64
	tenant *tenant

	// sub is the active subscription; nil between UNSUBSCRIBE and the
	// next SUBSCRIBE. deliverWG tracks its delivery goroutine.
	sub       *subscriber
	deliverWG sync.WaitGroup
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	id := s.sessions.Add(1)

	w := &frameWriter{conn: conn, bw: bufio.NewWriter(conn), timeout: s.cfg.WriteTimeout, bytes: &s.bytesOut}
	r := bufio.NewReader(conn)
	conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	first, err := r.ReadString('\n')
	if err != nil {
		return
	}
	conn.SetReadDeadline(time.Time{})

	sess := &session{srv: s, conn: conn, w: w, id: id}
	defer sess.stopSubscription()

	cmd, perr := parseCommand(first)
	switch {
	case perr != nil:
		// Pre-session parse errors answer on both grammars: the framed
		// error line doubles as the legacy {"error":...} response since
		// legacy clients only check for a non-entry line. The session
		// stays open for a corrected framed command.
		if !sess.sendError(perr) {
			return
		}
	case cmd.verb == "FROM" || cmd.verb == "LIVE":
		s.legacySessions.Add(1)
		sess.serveLegacy(cmd.from)
		return
	default:
		if !sess.handle(cmd) {
			return
		}
	}
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		cmd, perr := parseCommand(line)
		if perr != nil {
			if !sess.sendError(perr) {
				return
			}
			continue
		}
		if !sess.handle(cmd) {
			return
		}
	}
}

// sendError reports a protocol violation; false means the connection is
// unusable.
func (s *session) sendError(perr *protoError) bool {
	return s.w.writeFrame(&Frame{Kind: FrameError, Code: perr.code, Reason: perr.msg}) == nil
}

// handle executes one command; false ends the session.
func (s *session) handle(cmd command) bool {
	switch cmd.verb {
	case "HELLO":
		if s.sub != nil {
			return s.sendError(&protoError{CodeHelloAfterSub, "HELLO must precede SUBSCRIBE"})
		}
		s.tenant = s.srv.reg.tenant(cmd.tenant)
		return s.w.writeFrame(&Frame{
			Kind: FrameWelcome, Session: fmt.Sprintf("s%d", s.id),
			Tenant: s.tenant.name, Head: int64(s.srv.topic.Len()),
		}) == nil
	case "SUBSCRIBE":
		if s.sub != nil {
			return s.sendError(&protoError{CodeAlreadySubscribed, "session already has a subscription"})
		}
		if s.tenant == nil {
			s.tenant = s.srv.reg.tenant(DefaultTenant)
		}
		q := newSubQueue(s.srv.cfg.QueueBound, s.srv.cfg.ShedPolicy)
		sub, perr := s.srv.reg.add(s.tenant, q)
		if perr != nil {
			return s.sendError(perr)
		}
		from := cmd.from
		if from < 0 {
			from = int64(s.srv.topic.Len())
		}
		if s.w.writeFrame(&Frame{Kind: FrameSubscribed, From: from, Head: int64(s.srv.topic.Len())}) != nil {
			s.srv.reg.remove(sub)
			return false
		}
		s.sub = sub
		s.deliverWG.Add(1)
		go func() {
			defer s.deliverWG.Done()
			s.deliver(sub, from, framedEncoder{srv: s.srv})
		}()
		return true
	case "UNSUBSCRIBE":
		if s.sub == nil {
			return s.sendError(&protoError{CodeNotSubscribed, "no active subscription"})
		}
		s.stopSubscription()
		return true
	default:
		// FROM/LIVE mid-session: the shim only opens connections.
		return s.sendError(&protoError{CodeBadCommand, "legacy " + cmd.verb + " must be the first line"})
	}
}

// stopSubscription tears the active subscription down and waits for its
// delivery goroutine.
func (s *session) stopSubscription() {
	if s.sub == nil {
		return
	}
	s.sub.queue.close(nil)
	s.deliverWG.Wait()
	s.srv.reg.remove(s.sub)
	s.sub = nil
}

// serveLegacy is the compatibility shim: the original one-request
// protocol (FROM n / LIVE, then raw JSON entry lines with blank-line
// heartbeats) served by the same registry, queue and shed machinery.
func (s *session) serveLegacy(from int64) {
	s.tenant = s.srv.reg.tenant(DefaultTenant)
	q := newSubQueue(s.srv.cfg.QueueBound, s.srv.cfg.ShedPolicy)
	sub, perr := s.srv.reg.add(s.tenant, q)
	if perr != nil {
		s.sendError(perr)
		return
	}
	defer s.srv.reg.remove(sub)
	if from < 0 {
		from = int64(s.srv.topic.Len())
	}
	s.deliver(sub, from, legacyEncoder{srv: s.srv})
}

// deliver is the per-subscriber delivery loop: catch-up replay straight
// from the log, then live consumption from the bounded queue, with
// heartbeats on idle and GAP frames for shed or undecodable ranges.
// enc selects the framed or legacy wire encoding.
func (s *session) deliver(sub *subscriber, from int64, enc wireEncoder) {
	srv := s.srv
	next := from
	// Catch-up: read the log directly while the queue rejects offers, so
	// a deep replay does not thrash the bounded queue.
	if !s.replayLog(sub, &next, enc) {
		return
	}
	sub.queue.goLive()
	// Drain the publish window between the last empty read and goLive:
	// those messages are in the log but were never offered.
	if !s.replayLog(sub, &next, enc) {
		return
	}
	var hbSeq int64
	for {
		msgs, gap, ok, reason := sub.queue.take(srv.cfg.Heartbeat)
		if !ok {
			switch {
			case reason == nil:
				enc.bye(s.w, "unsubscribe")
			case errors.Is(reason, ErrSlowConsumer):
				srv.disconnects.Add(1)
				enc.errFrame(s.w, CodeSlowConsumer, "queue overflowed; reconnect with SUBSCRIBE FROM to resume")
				s.conn.Close()
			case errors.Is(reason, ErrServerClosed):
				enc.bye(s.w, "shutdown")
				s.conn.Close()
			}
			return
		}
		if gap != nil {
			srv.gaps.Add(1)
			if gap.From < next {
				// The front of the evicted range was already delivered
				// during catch-up; narrow the advertised hole.
				gap.From = next
				gap.Dropped = gap.To - gap.From + 1
			}
			if gap.Dropped > 0 {
				if enc.gap(s.w, gap) != nil {
					return
				}
			}
			if gap.To+1 > next {
				next = gap.To + 1
			}
		}
		if len(msgs) == 0 {
			hbSeq++
			srv.heartbeats.Add(1)
			if enc.heartbeat(s.w, hbSeq, int64(srv.topic.Len())) != nil {
				return
			}
			continue
		}
		// Trim duplicates of the catch-up/race window.
		for len(msgs) > 0 && msgs[0].Offset < next {
			msgs = msgs[1:]
		}
		if len(msgs) == 0 {
			continue
		}
		for start := 0; start < len(msgs); start += srv.cfg.BatchMax {
			end := start + srv.cfg.BatchMax
			if end > len(msgs) {
				end = len(msgs)
			}
			if !s.sendData(sub, msgs[start:end], &next, enc) {
				return
			}
		}
	}
}

// replayLog streams the topic log from *next until caught up or the
// queue is closed mid-replay (unsubscribe / shutdown cut a deep replay
// short; the live loop's take then reports the closure); false means the
// connection failed.
func (s *session) replayLog(sub *subscriber, next *int64, enc wireEncoder) bool {
	for !sub.queue.isClosed() {
		batch := s.srv.topic.Read(*next, s.srv.cfg.BatchMax)
		if len(batch) == 0 {
			return true
		}
		if !s.sendData(sub, batch, next, enc) {
			return false
		}
	}
	return true
}

// sendData encodes one DATA batch, applying the tenant rate limit and
// the encode-failure policy: an entry that cannot be marshalled is
// dropped loudly — counted in Stats and covered by an in-order GAP
// marker — never silently skipped.
func (s *session) sendData(sub *subscriber, msgs []stream.Message, next *int64, enc wireEncoder) bool {
	if d := sub.tenant.reserve(len(msgs), time.Now()); d > 0 {
		time.Sleep(d)
	}
	entries := make([]Entry, 0, len(msgs))
	for _, m := range msgs {
		entries = append(entries, Entry{Offset: m.Offset, Time: m.Time, Domain: m.Key, Raw: string(m.Value)})
	}
	if !s.writeEntries(entries, enc) {
		return false
	}
	*next = msgs[len(msgs)-1].Offset + 1
	return true
}

// writeEntries sends entries as one DATA frame, falling back to
// per-entry isolation when the batch fails to encode: good runs flush as
// DATA frames and each undecodable entry becomes a GAP marker, all in
// offset order so a client's resume cursor never moves backwards.
func (s *session) writeEntries(entries []Entry, enc wireEncoder) bool {
	srv := s.srv
	send := func(run []Entry) bool {
		if len(run) == 0 {
			return true
		}
		if err := enc.data(s.w, run, run[len(run)-1].Offset+1); err != nil {
			return false
		}
		srv.delivered.Add(int64(len(run)))
		srv.batches.Add(1)
		return true
	}
	err := enc.data(s.w, entries, entries[len(entries)-1].Offset+1)
	if err == nil {
		srv.delivered.Add(int64(len(entries)))
		srv.batches.Add(1)
		return true
	}
	var ee *encodeError
	if !errors.As(err, &ee) {
		return false // connection failure
	}
	run := entries[:0]
	for _, e := range entries {
		if _, merr := srv.encodeEntry(e); merr != nil {
			if !send(run) {
				return false
			}
			run = run[:0]
			srv.encodeDrops.Add(1)
			srv.gaps.Add(1)
			if enc.gap(s.w, &Gap{From: e.Offset, To: e.Offset, Dropped: 1, Reason: "encode"}) != nil {
				return false
			}
			continue
		}
		run = append(run, e)
	}
	return send(run)
}

// wireEncoder abstracts the two wire dialects: the framed session
// protocol and the legacy raw-JSON-lines shim.
type wireEncoder interface {
	data(w *frameWriter, entries []Entry, next int64) error
	heartbeat(w *frameWriter, seq, head int64) error
	gap(w *frameWriter, g *Gap) error
	bye(w *frameWriter, reason string) error
	errFrame(w *frameWriter, code, msg string) error
}

// encodeError distinguishes an entry that failed to marshal (recoverable
// by per-entry isolation) from a connection failure.
type encodeError struct{ err error }

func (e *encodeError) Error() string { return "feed: encode entry: " + e.err.Error() }
func (e *encodeError) Unwrap() error { return e.err }

// marshalEntry is a seam for tests to inject encode failures; production
// entries always marshal.
var marshalEntry = func(e Entry) ([]byte, error) { return json.Marshal(e) }

// encodeCache memoizes marshalled DATA entries by topic offset: the pump
// marshals each live entry once and every same-offset subscriber
// delivery reuses the frozen bytes. Only successful marshals are cached,
// so the encode-failure isolation path always re-probes (and keeps
// failing on) poisoned entries. Bounded FIFO sized to the live fan-out
// window: deep catch-up replay misses and marshals on its own.
type encodeCache struct {
	mu    sync.Mutex
	byOff map[int64][]byte
	fifo  []int64
	bound int
}

func newEncodeCache(bound int) *encodeCache {
	return &encodeCache{byOff: make(map[int64][]byte, bound), bound: bound}
}

func (c *encodeCache) get(off int64) ([]byte, bool) {
	c.mu.Lock()
	raw, ok := c.byOff[off]
	c.mu.Unlock()
	return raw, ok
}

func (c *encodeCache) put(off int64, raw []byte) {
	c.mu.Lock()
	if _, dup := c.byOff[off]; !dup {
		for len(c.fifo) >= c.bound {
			delete(c.byOff, c.fifo[0])
			c.fifo = c.fifo[1:]
		}
		c.byOff[off] = raw
		c.fifo = append(c.fifo, off)
	}
	c.mu.Unlock()
}

// encodeEntry marshals e through the shared per-offset cache: a hit
// returns the frozen bytes marshalled by the pump (or an earlier
// subscriber); a miss marshals and, on success, freezes the result for
// the next same-offset delivery.
func (s *Server) encodeEntry(e Entry) ([]byte, error) {
	if raw, ok := s.enc.get(e.Offset); ok {
		s.encodeCacheHits.Add(1)
		return raw, nil
	}
	raw, err := marshalEntry(e)
	if err != nil {
		return nil, err
	}
	s.enc.put(e.Offset, raw)
	return raw, nil
}

// encodeVia routes an encoder's per-entry marshal through its server's
// shared cache, falling back to a direct marshal for a zero-value
// encoder (tests that exercise the wire dialects standalone).
func encodeVia(srv *Server, e Entry) ([]byte, error) {
	if srv == nil {
		return marshalEntry(e)
	}
	return srv.encodeEntry(e)
}

type framedEncoder struct{ srv *Server }

// data assembles the DATA frame from per-entry marshals (the same seam
// the legacy path uses), so one undecodable entry surfaces as an
// encodeError instead of poisoning the whole frame silently.
func (enc framedEncoder) data(w *frameWriter, entries []Entry, next int64) error {
	var buf []byte
	buf = append(buf, `{"frame":"data","entries":[`...)
	for i, e := range entries {
		raw, err := encodeVia(enc.srv, e)
		if err != nil {
			return &encodeError{err}
		}
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, raw...)
	}
	buf = append(buf, `],"next":`...)
	buf = fmt.Appendf(buf, "%d}\n", next)
	return w.writeLine(buf)
}

func (framedEncoder) heartbeat(w *frameWriter, seq, head int64) error {
	return w.writeFrame(&Frame{Kind: FrameHeartbeat, Seq: seq, Head: head})
}

func (framedEncoder) gap(w *frameWriter, g *Gap) error {
	return w.writeFrame(&Frame{Kind: FrameGap, Gap: g})
}

func (framedEncoder) bye(w *frameWriter, reason string) error {
	return w.writeFrame(&Frame{Kind: FrameBye, Reason: reason})
}

func (framedEncoder) errFrame(w *frameWriter, code, msg string) error {
	return w.writeFrame(&Frame{Kind: FrameError, Code: code, Reason: msg})
}

// legacyEncoder speaks the original protocol: one raw JSON entry per
// line, a blank line as heartbeat. Gaps and byes have no legacy
// representation — a shed legacy consumer simply misses the evicted
// range, as the old server effectively did when it lost entries — but
// both still count in Stats.
type legacyEncoder struct{ srv *Server }

func (enc legacyEncoder) data(w *frameWriter, entries []Entry, _ int64) error {
	var buf []byte
	for _, e := range entries {
		line, err := encodeVia(enc.srv, e)
		if err != nil {
			return &encodeError{err}
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	return w.writeLine(buf)
}

func (legacyEncoder) heartbeat(w *frameWriter, _, _ int64) error {
	return w.writeLine([]byte{'\n'})
}

func (legacyEncoder) gap(*frameWriter, *Gap) error { return nil }

func (legacyEncoder) bye(*frameWriter, string) error { return nil }

func (legacyEncoder) errFrame(w *frameWriter, _, msg string) error {
	return w.writeLine([]byte(fmt.Sprintf(`{"error":%q}`+"\n", msg)))
}
