package feed

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"darkdns/internal/stream"
)

// Subscriber registry: the fan-out tier's directory of live delivery
// queues. Sharded so the pump's broadcast and concurrent subscribe /
// unsubscribe traffic never contend on one lock: each shard is a
// copy-on-write map (cow.go), so the broadcast path reads a snapshot
// without locking while sessions churn.

// registryShards is the fixed shard count. Subscriber ids are a counter,
// so id%shards spreads sessions uniformly.
const registryShards = 16

// ErrSlowConsumer closes a subscriber whose queue overflowed under the
// ShedDisconnect policy.
var ErrSlowConsumer = errors.New("feed: slow consumer")

// ShedPolicy selects what happens when a subscriber's bounded queue
// overflows.
type ShedPolicy int

const (
	// ShedDropOldest evicts the oldest queued entries and marks the hole
	// with a GAP frame — the subscriber stays connected at the live edge.
	ShedDropOldest ShedPolicy = iota
	// ShedDisconnect terminates the subscriber with a slow_consumer
	// error frame.
	ShedDisconnect
)

// String names the policy for flags and logs.
func (p ShedPolicy) String() string {
	if p == ShedDisconnect {
		return "disconnect"
	}
	return "drop-oldest"
}

// ParseShedPolicy parses a -shed-policy flag value.
func ParseShedPolicy(s string) (ShedPolicy, error) {
	switch s {
	case "drop-oldest", "":
		return ShedDropOldest, nil
	case "disconnect":
		return ShedDisconnect, nil
	}
	return 0, errors.New("feed: shed policy must be drop-oldest or disconnect")
}

// subQueue is one subscriber's bounded live-delivery queue. The pump
// offers message batches; the session writer takes them. Overflow applies
// the shed policy and, for drop-oldest, accumulates the evicted offset
// range so the writer can emit one coalesced GAP frame.
type subQueue struct {
	mu     sync.Mutex
	buf    []stream.Message
	bound  int
	policy ShedPolicy

	// live gates the pump: during a subscriber's catch-up replay the
	// queue rejects offers (the writer reads the log directly), so long
	// replays do not churn the queue.
	live bool

	// shedFrom/shedTo is the pending evicted range (inclusive); -1 when
	// none. Consecutive evictions merge because the queue holds a
	// contiguous offset run.
	shedFrom, shedTo int64

	closed bool
	reason error
	signal chan struct{} // 1-buffered wakeup for the writer

	maxDepth int // deepest backlog observed, for Stats
}

func newSubQueue(bound int, policy ShedPolicy) *subQueue {
	return &subQueue{bound: bound, policy: policy, shedFrom: -1, shedTo: -1, signal: make(chan struct{}, 1)}
}

// offer enqueues msgs for a live subscriber, applying the shed policy on
// overflow. It never blocks — the fan-out pump must not stall on one slow
// subscriber (the athena-dhcpd event-bus rule). Returns the number of
// entries evicted (drop-oldest) for the server's shed counter.
func (q *subQueue) offer(msgs []stream.Message) int64 {
	if len(msgs) == 0 {
		return 0
	}
	q.mu.Lock()
	if q.closed || !q.live {
		q.mu.Unlock()
		return 0
	}
	q.buf = append(q.buf, msgs...)
	var evicted int64
	if over := len(q.buf) - q.bound; over > 0 {
		if q.policy == ShedDisconnect {
			q.closed = true
			q.reason = ErrSlowConsumer
			q.buf = nil
		} else {
			drop := q.buf[:over]
			if q.shedFrom < 0 {
				q.shedFrom = drop[0].Offset
			}
			q.shedTo = drop[over-1].Offset
			evicted = int64(over)
			q.buf = append(q.buf[:0], q.buf[over:]...)
		}
	}
	if len(q.buf) > q.maxDepth {
		q.maxDepth = len(q.buf)
	}
	q.mu.Unlock()
	select {
	case q.signal <- struct{}{}:
	default:
	}
	return evicted
}

// goLive flips the queue into live mode; offers before this are dropped
// because the writer is replaying from the log.
func (q *subQueue) goLive() {
	q.mu.Lock()
	q.live = true
	q.mu.Unlock()
}

// take removes everything queued, returning the batch, any pending shed
// gap, and ok=false once the queue is closed and drained. When nothing is
// queued it waits up to timeout (the heartbeat interval) for an offer.
func (q *subQueue) take(timeout time.Duration) (msgs []stream.Message, gap *Gap, ok bool, err error) {
	deadline := time.Now().Add(timeout)
	for {
		q.mu.Lock()
		if len(q.buf) > 0 || q.shedFrom >= 0 {
			msgs = q.buf
			q.buf = nil
			if q.shedFrom >= 0 {
				gap = &Gap{From: q.shedFrom, To: q.shedTo, Dropped: q.shedTo - q.shedFrom + 1, Reason: "shed"}
				q.shedFrom, q.shedTo = -1, -1
			}
			q.mu.Unlock()
			return msgs, gap, true, nil
		}
		if q.closed {
			reason := q.reason
			q.mu.Unlock()
			return nil, nil, false, reason
		}
		q.mu.Unlock()
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, nil, true, nil
		}
		timer := time.NewTimer(remain)
		select {
		case <-q.signal:
			timer.Stop()
		case <-timer.C:
			return nil, nil, true, nil
		}
	}
}

// close shuts the queue down with reason (nil for an orderly
// unsubscribe); the writer drains what is already buffered and exits.
func (q *subQueue) close(reason error) {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		q.reason = reason
	}
	q.mu.Unlock()
	select {
	case q.signal <- struct{}{}:
	default:
	}
}

// isClosed reports whether close has been called (replay loops poll it).
func (q *subQueue) isClosed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

// depth reports the current backlog (Stats).
func (q *subQueue) depth() (cur, max int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buf), q.maxDepth
}

// subscriber is one live subscription's registry entry.
type subscriber struct {
	id     uint64
	tenant *tenant
	queue  *subQueue
}

// tenant is one tenant's admission state: a subscriber count checked
// against the cap, and a token bucket throttling delivered entries/s
// shared by all of the tenant's subscriptions.
type tenant struct {
	name string
	subs atomic.Int64

	mu     sync.Mutex
	rate   float64 // entries/s; 0 = unlimited
	tokens float64
	last   time.Time
}

// reserve books n entries against the tenant's rate, returning how long
// the caller must wait before sending them. The bucket holds at most one
// second of burst; a blocked writer falls behind and the queue's shed
// policy takes over — rate-limited tenants degrade exactly like slow
// consumers.
func (t *tenant) reserve(n int, now time.Time) time.Duration {
	if t.rate <= 0 {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.last.IsZero() {
		t.last = now
		t.tokens = t.rate // one second of initial burst
	}
	t.tokens += now.Sub(t.last).Seconds() * t.rate
	t.last = now
	if t.tokens > t.rate {
		t.tokens = t.rate
	}
	t.tokens -= float64(n)
	if t.tokens >= 0 {
		return 0
	}
	return time.Duration(-t.tokens / t.rate * float64(time.Second))
}

// registry is the sharded subscriber directory plus the tenant table.
type registry struct {
	shards  [registryShards]cowMap[uint64, *subscriber]
	tenants cowMap[string, *tenant]
	nextID  atomic.Uint64

	maxSubsPerTenant int
	tenantRate       float64
}

func newRegistry(maxSubsPerTenant int, tenantRate float64) *registry {
	return &registry{maxSubsPerTenant: maxSubsPerTenant, tenantRate: tenantRate}
}

// tenant resolves (or creates) the named tenant.
func (r *registry) tenant(name string) *tenant {
	return r.tenants.getOrCreate(name, func() *tenant {
		return &tenant{name: name, rate: r.tenantRate}
	})
}

// add admits a subscriber for tenant tn, enforcing the per-tenant cap.
func (r *registry) add(tn *tenant, q *subQueue) (*subscriber, *protoError) {
	if r.maxSubsPerTenant > 0 {
		if tn.subs.Add(1) > int64(r.maxSubsPerTenant) {
			tn.subs.Add(-1)
			return nil, &protoError{CodeTenantLimit, "tenant subscriber cap reached"}
		}
	} else {
		tn.subs.Add(1)
	}
	sub := &subscriber{id: r.nextID.Add(1), tenant: tn, queue: q}
	r.shards[sub.id%registryShards].set(sub.id, sub)
	return sub, nil
}

// remove deregisters a subscriber; idempotent via the COW delete.
func (r *registry) remove(sub *subscriber) {
	shard := &r.shards[sub.id%registryShards]
	if _, ok := shard.get(sub.id); !ok {
		return
	}
	shard.delete(sub.id)
	sub.tenant.subs.Add(-1)
}

// broadcast offers msgs to every live subscriber, returning the total
// entries evicted by drop-oldest shedding. Reads are lock-free snapshots.
func (r *registry) broadcast(msgs []stream.Message) int64 {
	var shed int64
	for i := range r.shards {
		for _, sub := range r.shards[i].snapshot() {
			shed += sub.queue.offer(msgs)
		}
	}
	return shed
}

// closeAll shuts every subscriber queue down with reason (server close).
func (r *registry) closeAll(reason error) {
	for i := range r.shards {
		for _, sub := range r.shards[i].snapshot() {
			sub.queue.close(reason)
		}
	}
}

// count returns the live subscriber total and the per-shard max depth
// scan used by Stats.
func (r *registry) count() (subs int, queued, maxDepth int) {
	for i := range r.shards {
		for _, sub := range r.shards[i].snapshot() {
			subs++
			cur, max := sub.queue.depth()
			queued += cur
			if max > maxDepth {
				maxDepth = max
			}
		}
	}
	return subs, queued, maxDepth
}

// tenantCount returns how many tenants have registered.
func (r *registry) tenantCount() int { return len(r.tenants.snapshot()) }
