// Package feed implements the public newly-registered-domain feed the
// paper releases (zonestream.openintel.nl): a TCP server that streams the
// pipeline's NRD topic to subscribers as JSON lines, with replay from a
// chosen offset, plus a consuming client.
package feed

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"darkdns/internal/stream"
)

// Entry is one feed line.
type Entry struct {
	Offset int64     `json:"offset"`
	Time   time.Time `json:"time"`
	Domain string    `json:"domain"`
	Raw    string    `json:"raw,omitempty"`
}

// Server streams a topic to TCP subscribers. Each client sends one
// request line ("FROM <offset>\n" or "LIVE\n") and then receives JSON
// lines.
type Server struct {
	topic *stream.Topic

	mu     sync.Mutex
	ln     net.Listener
	closed bool
}

// NewServer serves the given topic.
func NewServer(topic *stream.Topic) *Server {
	return &Server{topic: topic}
}

// Serve listens on addr and returns the bound address.
func (s *Server) Serve(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

// Close stops the listener.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.ln != nil {
		return s.ln.Close()
	}
	return nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	req, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return
	}
	from := int64(-1) // LIVE: start at the current head
	var cmd string
	var arg string
	if n, _ := fmt.Sscanf(req, "%s %s", &cmd, &arg); n >= 1 {
		switch cmd {
		case "FROM":
			v, err := strconv.ParseInt(arg, 10, 64)
			if err != nil {
				fmt.Fprintf(conn, `{"error":"bad offset"}`+"\n")
				return
			}
			from = v
		case "LIVE":
		default:
			fmt.Fprintf(conn, `{"error":"bad command"}`+"\n")
			return
		}
	}
	group := fmt.Sprintf("conn-%s-%d", conn.RemoteAddr(), time.Now().UnixNano())
	if from < 0 {
		s.topic.Commit(group, int64(s.topic.Len()))
	} else {
		s.topic.Commit(group, from)
	}
	consumer := stream.NewConsumer(s.topic, group, 256)
	w := bufio.NewWriter(conn)
	for {
		msgs, ok := consumer.WaitNext(time.Second)
		if !ok {
			// Heartbeat the connection; a dead peer errors out here.
			conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
			if _, err := w.WriteString("\n"); err != nil {
				return
			}
			if err := w.Flush(); err != nil {
				return
			}
			continue
		}
		conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
		for _, m := range msgs {
			e := Entry{Offset: m.Offset, Time: m.Time, Domain: m.Key, Raw: string(m.Value)}
			line, err := json.Marshal(e)
			if err != nil {
				continue
			}
			if _, err := w.Write(append(line, '\n')); err != nil {
				return
			}
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// Client consumes a feed server.
type Client struct {
	addr string
}

// NewClient creates a client for the feed at addr.
func NewClient(addr string) *Client { return &Client{addr: addr} }

// ErrStopped is returned when the context ends the stream.
var ErrStopped = errors.New("feed: stopped")

// Stream connects and delivers entries to fn until ctx is done. from < 0
// requests live tailing; otherwise replay starts at the given offset.
func (c *Client) Stream(ctx context.Context, from int64, fn func(Entry)) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	go func() {
		<-ctx.Done()
		conn.Close()
	}()
	if from < 0 {
		fmt.Fprintf(conn, "LIVE\n")
	} else {
		fmt.Fprintf(conn, "FROM %d\n", from)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue // heartbeat
		}
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			return fmt.Errorf("feed: bad line: %w", err)
		}
		fn(e)
	}
	if ctx.Err() != nil {
		return ErrStopped
	}
	return sc.Err()
}
