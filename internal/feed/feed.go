// Package feed implements the public newly-registered-domain feed the
// paper releases (zonestream.openintel.nl) as a multi-tenant pub/sub
// fan-out tier: a framed session protocol over TCP (HELLO / SUBSCRIBE /
// UNSUBSCRIBE commands answered with batch DATA frames, sequenced
// heartbeats, and explicit GAP markers when a slow subscriber is shed),
// a sharded copy-on-write subscriber registry, per-subscriber bounded
// queues with a configurable shedding policy, per-tenant subscriber caps
// and delivery rate limits, and a consuming client with auto-resume.
//
// The package splits along the tier's layers:
//
//   - protocol.go — the wire grammar: command parsing and frame encoding
//   - registry.go — sharded subscriber registry, tenants, bounded queues
//   - server.go   — listener, session loop, fan-out pump, legacy shim
//   - client.go   — Subscribe/Subscription consumer with auto-resume
//
// The legacy one-line request protocol ("FROM <offset>\n" / "LIVE\n"
// followed by raw JSON entry lines) is still served through a
// compatibility shim, so pre-existing consumers keep working.
//
// DESIGN.md §11 describes the architecture and its delivery contract:
// every subscriber of the same topic at the same offset observes a
// byte-identical entry sequence, modulo explicit GAP markers.
package feed

import (
	"time"
)

// Entry is one feed record as delivered to subscribers.
type Entry struct {
	Offset int64     `json:"offset"`
	Time   time.Time `json:"time"`
	Domain string    `json:"domain"`
	Raw    string    `json:"raw,omitempty"`
}

// Gap marks a hole the server deliberately left in a subscriber's stream:
// the inclusive offset range [From, To] was shed (slow consumer) or
// could not be encoded. Subscribers that need the lost range reconnect
// with SUBSCRIBE FROM to replay it from the log.
type Gap struct {
	From    int64  `json:"from"`
	To      int64  `json:"to"`
	Dropped int64  `json:"dropped"`
	Reason  string `json:"reason,omitempty"`
}
