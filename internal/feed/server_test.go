package feed

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"darkdns/internal/stream"
)

// startFeedConfig is startFeed with explicit server configuration.
func startFeedConfig(t *testing.T, cfg ServerConfig) (*stream.Topic, string, func()) {
	t.Helper()
	bus := stream.NewBus()
	topic := bus.Topic("nrd-feed")
	srv := NewServerConfig(topic, cfg)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stopped := false
	stop := func() {
		if !stopped {
			stopped = true
			srv.Close()
		}
	}
	t.Cleanup(stop)
	return topic, addr.String(), stop
}

// --- Satellite: consumer-group lifecycle ---------------------------------

// TestNoConsumerGroupLeak cycles many connections through both protocols
// and asserts the topic's group map returns to its prior size: the old
// server leaked one conn-<addr>-<nanos> group per connection forever.
func TestNoConsumerGroupLeak(t *testing.T) {
	bus := stream.NewBus()
	topic := bus.Topic("nrd-feed")
	before := len(topic.Groups())

	srv := NewServer(topic)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	topic.Publish(t0, "a.com", nil)
	for i := 0; i < 100; i++ {
		conn, r := rawSession(t, addr.String())
		if i%2 == 0 {
			fmt.Fprintf(conn, "FROM 0\n")
		} else {
			fmt.Fprintf(conn, "SUBSCRIBE FROM 0\n")
		}
		if _, err := r.ReadString('\n'); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		conn.Close()
	}
	// While serving, the only group is the tier's single fan-out pump.
	if got := len(topic.Groups()); got != before+1 {
		t.Errorf("groups while serving = %d (%v), want %d", got, topic.Groups(), before+1)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(topic.Groups()); got != before {
		t.Errorf("groups after close = %d (%v), want %d", got, topic.Groups(), before)
	}
}

// --- Satellite: Close actually stops the server --------------------------

// TestCloseDrainsGoroutines serves live sessions, closes the server, and
// asserts the goroutine count returns to its pre-Serve level.
func TestCloseDrainsGoroutines(t *testing.T) {
	bus := stream.NewBus()
	topic := bus.Topic("nrd-feed")
	for i := 0; i < 10; i++ {
		topic.Publish(t0, fmt.Sprintf("d%d.com", i), nil)
	}
	before := runtime.NumGoroutine()

	srv := NewServer(topic)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// A mix of live sessions in every state: framed mid-delivery, framed
	// idle, legacy tailing.
	for i := 0; i < 8; i++ {
		conn, r := rawSession(t, addr.String())
		switch i % 3 {
		case 0:
			fmt.Fprintf(conn, "SUBSCRIBE FROM 0\n")
		case 1:
			fmt.Fprintf(conn, "HELLO t%d\n", i)
		case 2:
			fmt.Fprintf(conn, "LIVE\n")
		}
		if i%3 != 2 {
			if _, err := r.ReadString('\n'); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Close waits for the pump, acceptor, and all session goroutines;
	// client-side dial goroutines may need a beat to unwind.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines: before=%d after=%d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Close is idempotent.
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestServeAfterCloseRefused covers the Serve/Close race guard.
func TestServeAfterCloseRefused(t *testing.T) {
	srv := NewServer(stream.NewBus().Topic("t"))
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Serve("127.0.0.1:0"); !errors.Is(err, ErrServerClosed) {
		t.Errorf("Serve after Close = %v, want ErrServerClosed", err)
	}
}

// --- Acceptance: fan-out determinism -------------------------------------

// TestMultiSubscriberDeterminism subscribes many clients at the same
// offset while the topic is still being published and asserts every one
// observes the byte-identical entry sequence with no gaps.
func TestMultiSubscriberDeterminism(t *testing.T) {
	topic, addr, stop := startFeed(t)
	defer stop()
	const entries, subs = 300, 8
	for i := 0; i < entries/2; i++ {
		topic.Publish(t0.Add(time.Duration(i)*time.Second), fmt.Sprintf("d%d.com", i), []byte("{}"))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	type result struct {
		id  int
		seq string
		err error
	}
	results := make(chan result, subs)
	for s := 0; s < subs; s++ {
		go func(id int) {
			sub, err := NewClient(addr).Subscribe(ctx, SubscribeOptions{From: 0})
			if err != nil {
				results <- result{id: id, err: err}
				return
			}
			defer sub.Close()
			var b strings.Builder
			n := 0
			for ev := range sub.C {
				switch ev.Kind {
				case EventEntry:
					fmt.Fprintf(&b, "%d:%s:%s;", ev.Entry.Offset, ev.Entry.Domain, ev.Entry.Time.Format(time.RFC3339))
					n++
				case EventGap:
					fmt.Fprintf(&b, "GAP[%d-%d];", ev.Gap.From, ev.Gap.To)
				}
				if n == entries {
					results <- result{id: id, seq: b.String()}
					return
				}
			}
			results <- result{id: id, err: fmt.Errorf("stream ended early: %v", sub.Err())}
		}(s)
	}
	// Publish the second half while the subscribers are live.
	for i := entries / 2; i < entries; i++ {
		topic.Publish(t0.Add(time.Duration(i)*time.Second), fmt.Sprintf("d%d.com", i), []byte("{}"))
	}
	var first string
	for i := 0; i < subs; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("subscriber %d: %v", r.id, r.err)
		}
		if first == "" {
			first = r.seq
		} else if r.seq != first {
			t.Fatalf("subscriber %d sequence diverged:\n%s\nvs\n%s", r.id, r.seq, first)
		}
	}
	if strings.Contains(first, "GAP") {
		t.Fatalf("unshedded subscribers saw gaps: %s", first)
	}
}

// --- Shedding ------------------------------------------------------------

// TestQueueShedDeterministic is the slow-subscriber determinism check at
// the queue level: a fixed bound and a fixed offer/take schedule produce
// exactly the same delivered+GAP sequence every run.
func TestQueueShedDeterministic(t *testing.T) {
	run := func() string {
		q := newSubQueue(4, ShedDropOldest)
		q.goLive()
		mk := func(lo, hi int64) []stream.Message {
			var ms []stream.Message
			for o := lo; o <= hi; o++ {
				ms = append(ms, stream.Message{Offset: o})
			}
			return ms
		}
		var b strings.Builder
		record := func() {
			msgs, gap, ok, err := q.take(time.Millisecond)
			if !ok || err != nil {
				t.Fatalf("take: ok=%v err=%v", ok, err)
			}
			if gap != nil {
				fmt.Fprintf(&b, "GAP[%d-%d:%d];", gap.From, gap.To, gap.Dropped)
			}
			for _, m := range msgs {
				fmt.Fprintf(&b, "%d;", m.Offset)
			}
		}
		q.offer(mk(0, 9)) // overflows: 0..5 shed, 6..9 kept
		record()
		q.offer(mk(10, 12)) // fits
		record()
		q.offer(mk(13, 29)) // overflows: 13..25 shed, 26..29 kept
		q.offer(mk(30, 31)) // overflows again: 26..27 shed, merge into range
		record()
		return b.String()
	}
	want := "GAP[0-5:6];6;7;8;9;10;11;12;GAP[13-27:15];28;29;30;31;"
	for i := 0; i < 3; i++ {
		if got := run(); got != want {
			t.Fatalf("run %d: got %q, want %q", i, got, want)
		}
	}
}

func TestQueueDisconnectPolicy(t *testing.T) {
	q := newSubQueue(2, ShedDisconnect)
	q.goLive()
	q.offer([]stream.Message{{Offset: 0}, {Offset: 1}, {Offset: 2}})
	if _, _, ok, err := q.take(time.Millisecond); ok || !errors.Is(err, ErrSlowConsumer) {
		t.Fatalf("take after overflow: ok=%v err=%v, want closed with ErrSlowConsumer", ok, err)
	}
}

// TestSlowSubscriberShedsWithGap drives a real session into shedding via
// a tenant rate limit and asserts the delivery invariant: the union of
// delivered offsets and advertised GAP ranges tiles the published range
// with no silent holes.
func TestSlowSubscriberShedsWithGap(t *testing.T) {
	bus := stream.NewBus()
	topic := bus.Topic("nrd-feed")
	srv := NewServerConfig(topic, ServerConfig{
		QueueBound: 8,
		ShedPolicy: ShedDropOldest,
		BatchMax:   8,
		TenantRate: 200, // entries/s: throttles the writer so the queue overflows
	})
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, r := rawSession(t, addr.String())
	fmt.Fprintf(conn, "SUBSCRIBE\n")
	if f := readFrameLine(t, r); f.Kind != FrameSubscribed {
		t.Fatalf("subscribed = %+v", f)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		topic.Publish(t0, fmt.Sprintf("d%d.com", i), nil)
	}

	covered := make([]bool, n)
	shedGaps := 0
	var last int64 = -1
	deadline := time.Now().Add(20 * time.Second)
	for covered[n-1] == false && time.Now().Before(deadline) {
		f := readFrameLine(t, r)
		switch f.Kind {
		case FrameData:
			for _, e := range f.Entries {
				if e.Offset <= last {
					t.Fatalf("offset %d delivered after %d", e.Offset, last)
				}
				if e.Offset != last+1 {
					t.Fatalf("silent hole: offset %d follows %d without a GAP", e.Offset, last)
				}
				covered[e.Offset] = true
				last = e.Offset
			}
		case FrameGap:
			if f.Gap == nil || f.Gap.Reason != "shed" {
				t.Fatalf("gap frame = %+v", f)
			}
			if f.Gap.From != last+1 {
				t.Fatalf("gap [%d-%d] does not continue from %d", f.Gap.From, f.Gap.To, last)
			}
			for o := f.Gap.From; o <= f.Gap.To; o++ {
				covered[o] = true
			}
			last = f.Gap.To
			shedGaps++
		case FrameHeartbeat:
		default:
			t.Fatalf("unexpected frame %+v", f)
		}
	}
	for o, c := range covered {
		if !c {
			t.Fatalf("offset %d neither delivered nor gap-marked", o)
		}
	}
	if shedGaps == 0 {
		t.Fatal("queue bound 8 with 2000 rapid entries never shed")
	}
	if st := srv.Stats(); st.Shed == 0 || st.Gaps == 0 {
		t.Errorf("stats did not count shedding: %+v", st)
	}
}

// TestDisconnectPolicyCutsSlowConsumer asserts the alternative shed
// policy: overflow terminates the session with a structured
// slow_consumer error frame.
func TestDisconnectPolicyCutsSlowConsumer(t *testing.T) {
	bus := stream.NewBus()
	topic := bus.Topic("nrd-feed")
	srv := NewServerConfig(topic, ServerConfig{
		QueueBound: 4,
		ShedPolicy: ShedDisconnect,
		TenantRate: 50,
	})
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, r := rawSession(t, addr.String())
	fmt.Fprintf(conn, "SUBSCRIBE\n")
	if f := readFrameLine(t, r); f.Kind != FrameSubscribed {
		t.Fatalf("subscribed = %+v", f)
	}
	for i := 0; i < 500; i++ {
		topic.Publish(t0, fmt.Sprintf("d%d.com", i), nil)
	}
	sawError := false
	for !sawError {
		f := readFrameLine(t, r)
		if f.Kind == FrameError {
			if f.Code != CodeSlowConsumer {
				t.Fatalf("error code = %s, want %s", f.Code, CodeSlowConsumer)
			}
			sawError = true
		}
	}
	if st := srv.Stats(); st.Disconnects != 1 {
		t.Errorf("Disconnects = %d, want 1", st.Disconnects)
	}
}

// --- Satellite: encode failures are gap-marked, not silent ---------------

// TestEncodeFailureCountedAndGapMarked injects a marshal failure for one
// entry: the subscriber must receive the surrounding entries plus an
// explicit encode GAP, in offset order, and Stats must count the drop.
// The old send loop's `continue` created an invisible hole instead.
func TestEncodeFailureCountedAndGapMarked(t *testing.T) {
	orig := marshalEntry
	marshalEntry = func(e Entry) ([]byte, error) {
		if e.Domain == "poison.com" {
			return nil, errors.New("injected encode failure")
		}
		return orig(e)
	}
	defer func() { marshalEntry = orig }()

	bus := stream.NewBus()
	topic := bus.Topic("nrd-feed")
	srv := NewServer(topic)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	topic.Publish(t0, "d0.com", nil)
	topic.Publish(t0, "poison.com", nil)
	topic.Publish(t0, "d2.com", nil)

	conn, r := rawSession(t, addr.String())
	fmt.Fprintf(conn, "SUBSCRIBE FROM 0\n")
	if f := readFrameLine(t, r); f.Kind != FrameSubscribed {
		t.Fatalf("subscribed = %+v", f)
	}
	var trace []string
	for len(trace) < 3 {
		f := readFrameLine(t, r)
		switch f.Kind {
		case FrameData:
			for _, e := range f.Entries {
				trace = append(trace, fmt.Sprintf("E%d", e.Offset))
			}
		case FrameGap:
			trace = append(trace, fmt.Sprintf("G[%d-%d:%s]", f.Gap.From, f.Gap.To, f.Gap.Reason))
		case FrameHeartbeat:
		default:
			t.Fatalf("unexpected frame %+v", f)
		}
	}
	if got := strings.Join(trace, " "); got != "E0 G[1-1:encode] E2" {
		t.Fatalf("delivery trace = %q, want \"E0 G[1-1:encode] E2\"", got)
	}
	if st := srv.Stats(); st.EncodeDrops != 1 {
		t.Errorf("EncodeDrops = %d, want 1", st.EncodeDrops)
	}
}

// --- Tenancy -------------------------------------------------------------

func TestTenantSubscriberCap(t *testing.T) {
	topic, addr, stop := startFeedConfig(t, ServerConfig{TenantMaxSubscribers: 1})
	defer stop()
	topic.Publish(t0, "a.com", nil)

	conn1, r1 := rawSession(t, addr)
	fmt.Fprintf(conn1, "HELLO acme\nSUBSCRIBE\n")
	if f := readFrameLine(t, r1); f.Kind != FrameWelcome {
		t.Fatalf("welcome = %+v", f)
	}
	if f := readFrameLine(t, r1); f.Kind != FrameSubscribed {
		t.Fatalf("subscribed = %+v", f)
	}

	conn2, r2 := rawSession(t, addr)
	fmt.Fprintf(conn2, "HELLO acme\nSUBSCRIBE\n")
	if f := readFrameLine(t, r2); f.Kind != FrameWelcome {
		t.Fatalf("welcome = %+v", f)
	}
	if f := readFrameLine(t, r2); f.Kind != FrameError || f.Code != CodeTenantLimit {
		t.Fatalf("second acme subscription answered %+v, want %s", f, CodeTenantLimit)
	}
	// Another tenant is unaffected; the capped session can re-HELLO.
	fmt.Fprintf(conn2, "HELLO beta\nSUBSCRIBE\n")
	if f := readFrameLine(t, r2); f.Kind != FrameWelcome || f.Tenant != "beta" {
		t.Fatalf("re-HELLO = %+v", f)
	}
	if f := readFrameLine(t, r2); f.Kind != FrameSubscribed {
		t.Fatalf("beta subscribe = %+v", f)
	}
	// Unsubscribing releases the cap.
	fmt.Fprintf(conn1, "UNSUBSCRIBE\n")
	for {
		if f := readFrameLine(t, r1); f.Kind == FrameBye {
			break
		}
	}
	conn3, r3 := rawSession(t, addr)
	fmt.Fprintf(conn3, "HELLO acme\nSUBSCRIBE\n")
	if f := readFrameLine(t, r3); f.Kind != FrameWelcome {
		t.Fatalf("welcome = %+v", f)
	}
	if f := readFrameLine(t, r3); f.Kind != FrameSubscribed {
		t.Fatalf("acme after release = %+v", f)
	}
}

// --- Client: Subscribe / auto-resume -------------------------------------

// TestSubscribeDeliversEntriesAndOffsets covers the new client surface.
func TestSubscribeDeliversEntriesAndOffsets(t *testing.T) {
	topic, addr, stop := startFeed(t)
	defer stop()
	for i := 0; i < 5; i++ {
		topic.Publish(t0, fmt.Sprintf("d%d.com", i), nil)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	sub, err := NewClient(addr).Subscribe(ctx, SubscribeOptions{Tenant: "acme", From: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	var got []int64
	for ev := range sub.C {
		if ev.Kind == EventEntry {
			got = append(got, ev.Entry.Offset)
		}
		if len(got) == 3 {
			break
		}
	}
	if len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Fatalf("offsets = %v", got)
	}
	if sub.NextOffset() != 5 {
		t.Errorf("NextOffset = %d, want 5", sub.NextOffset())
	}
}

// TestSubscribeRejectsProtocolError asserts server-side rejections
// surface from Subscribe synchronously.
func TestSubscribeRejectsProtocolError(t *testing.T) {
	topic, addr, stop := startFeedConfig(t, ServerConfig{TenantMaxSubscribers: 1})
	defer stop()
	_ = topic
	ctx := context.Background()
	first, err := NewClient(addr).Subscribe(ctx, SubscribeOptions{Tenant: "acme", From: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	_, err = NewClient(addr).Subscribe(ctx, SubscribeOptions{Tenant: "acme", From: -1})
	if err == nil || !strings.Contains(err.Error(), CodeTenantLimit) {
		t.Fatalf("second subscribe err = %v, want %s", err, CodeTenantLimit)
	}
}

// TestClientAutoResume kills the server mid-stream, restarts it on the
// same address, and asserts the subscription resumes from the last
// delivered offset with no loss or duplication.
func TestClientAutoResume(t *testing.T) {
	bus := stream.NewBus()
	topic := bus.Topic("nrd-feed")
	srv1 := NewServer(topic)
	addr, err := srv1.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		topic.Publish(t0, fmt.Sprintf("d%d.com", i), nil)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	sub, err := NewClient(addr.String()).Subscribe(ctx, SubscribeOptions{
		From:              0,
		AutoResume:        true,
		ResumeBackoff:     20 * time.Millisecond,
		MaxResumeAttempts: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	var offsets []int64
	resumes := 0
	collect := func(n int) {
		t.Helper()
		for len(offsets) < n {
			ev, ok := <-sub.C
			if !ok {
				t.Fatalf("stream ended early (%v); got %v", sub.Err(), offsets)
			}
			switch ev.Kind {
			case EventEntry:
				offsets = append(offsets, ev.Entry.Offset)
			case EventResumed:
				resumes++
			case EventGap:
				t.Fatalf("unexpected gap %+v", ev.Gap)
			}
		}
	}
	collect(5)

	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(topic)
	if _, err := srv2.Serve(addr.String()); err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	for i := 5; i < 10; i++ {
		topic.Publish(t0, fmt.Sprintf("d%d.com", i), nil)
	}
	collect(10)

	for i, off := range offsets {
		if off != int64(i) {
			t.Fatalf("offsets = %v: position %d is %d (loss or duplication across resume)", offsets, i, off)
		}
	}
	if resumes == 0 {
		t.Error("no EventResumed observed across the restart")
	}
}

// TestStreamShimStopsOnCancelAndReplays keeps the deprecated Stream
// surface pinned to its historical contract on top of Subscribe.
func TestStreamShimStopsOnCancelAndReplays(t *testing.T) {
	topic, addr, stop := startFeed(t)
	defer stop()
	topic.Publish(t0, "a.com", nil)
	topic.Publish(t0, "b.com", nil)

	ctx, cancel := context.WithCancel(context.Background())
	var got []string
	done := make(chan error, 1)
	go func() {
		done <- NewClient(addr).Stream(ctx, 0, func(e Entry) {
			got = append(got, e.Domain)
			if len(got) == 2 {
				cancel()
			}
		})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrStopped) {
			t.Errorf("Stream returned %v, want ErrStopped", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Stream did not stop")
	}
	if len(got) != 2 || got[0] != "a.com" {
		t.Errorf("replayed %v", got)
	}
}

// TestStatsSurface sanity-checks the counter surface end to end.
func TestStatsSurface(t *testing.T) {
	bus := stream.NewBus()
	topic := bus.Topic("nrd-feed")
	srv := NewServer(topic)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for i := 0; i < 10; i++ {
		topic.Publish(t0, fmt.Sprintf("d%d.com", i), nil)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	sub, err := NewClient(addr.String()).Subscribe(ctx, SubscribeOptions{Tenant: "acme", From: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	n := 0
	for ev := range sub.C {
		if ev.Kind == EventEntry {
			if n++; n == 10 {
				break
			}
		}
	}
	st := srv.Stats()
	if st.Subscribers != 1 || st.Sessions != 1 || st.Tenants != 1 {
		t.Errorf("registry shape: %+v", st)
	}
	if st.Delivered != 10 || st.Batches == 0 || st.BytesOut == 0 {
		t.Errorf("delivery counters: %+v", st)
	}
	sub.Close()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Subscribers != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("subscriber not deregistered: %+v", srv.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestParseShedPolicy(t *testing.T) {
	if p, err := ParseShedPolicy("drop-oldest"); err != nil || p != ShedDropOldest {
		t.Errorf("drop-oldest: %v %v", p, err)
	}
	if p, err := ParseShedPolicy(""); err != nil || p != ShedDropOldest {
		t.Errorf("default: %v %v", p, err)
	}
	if p, err := ParseShedPolicy("disconnect"); err != nil || p != ShedDisconnect {
		t.Errorf("disconnect: %v %v", p, err)
	}
	if _, err := ParseShedPolicy("yolo"); err == nil {
		t.Error("bad policy accepted")
	}
	if ShedDropOldest.String() != "drop-oldest" || ShedDisconnect.String() != "disconnect" {
		t.Error("String() names drifted")
	}
}

// --- Satellite: shared encode cache --------------------------------------

// TestEncodeCacheHitsAcrossSubscribers publishes with the pump running,
// then replays the log through two same-offset subscribers: the pump's
// warm pass marshals each entry once and every subsequent same-offset
// delivery must come from the frozen bytes, counted in
// Stats().EncodeCacheHits.
func TestEncodeCacheHitsAcrossSubscribers(t *testing.T) {
	bus := stream.NewBus()
	topic := bus.Topic("nrd-feed")
	srv := NewServerConfig(topic, ServerConfig{})
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const entries = 50
	for i := 0; i < entries; i++ {
		topic.Publish(t0.Add(time.Duration(i)*time.Second), fmt.Sprintf("d%d.com", i), []byte("{}"))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	drain := func() {
		sub, err := NewClient(addr.String()).Subscribe(ctx, SubscribeOptions{From: 0})
		if err != nil {
			t.Fatal(err)
		}
		defer sub.Close()
		n := 0
		for ev := range sub.C {
			if ev.Kind == EventEntry {
				if n++; n == entries {
					return
				}
			}
		}
		t.Fatalf("stream ended after %d entries: %v", n, sub.Err())
	}
	drain()
	afterFirst := srv.Stats().EncodeCacheHits
	drain()
	afterSecond := srv.Stats().EncodeCacheHits

	// The pump warmed every offset before either replay, so each replay
	// is all hits; at minimum the second same-offset pass must be.
	if afterFirst < entries {
		t.Errorf("hits after first replay = %d, want ≥ %d (pump-warmed)", afterFirst, entries)
	}
	if afterSecond-afterFirst < entries {
		t.Errorf("hits after second replay = %d (Δ%d), want Δ ≥ %d", afterSecond, afterSecond-afterFirst, entries)
	}
}
