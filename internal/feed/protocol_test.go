package feed

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// TestParseCommandGrammar is the command-grammar conformance table: every
// accepted spelling and every rejection with its structured error code.
func TestParseCommandGrammar(t *testing.T) {
	cases := []struct {
		line string
		verb string // "" means rejected
		from int64
		code string
	}{
		{line: "HELLO acme", verb: "HELLO"},
		{line: "hello acme", verb: "HELLO"}, // verbs are case-insensitive
		{line: "SUBSCRIBE", verb: "SUBSCRIBE", from: -1},
		{line: "SUBSCRIBE FROM 42", verb: "SUBSCRIBE", from: 42},
		{line: "subscribe from 0", verb: "SUBSCRIBE", from: 0},
		{line: "UNSUBSCRIBE", verb: "UNSUBSCRIBE", from: -1},
		{line: "FROM 7", verb: "FROM", from: 7},
		{line: "LIVE", verb: "LIVE", from: -1},

		{line: "", code: CodeBadCommand},
		{line: "   ", code: CodeBadCommand},
		{line: "GIMME everything", code: CodeBadCommand},
		{line: "HELLO", code: CodeBadCommand},
		{line: "HELLO a b", code: CodeBadCommand},
		{line: "SUBSCRIBE FROM", code: CodeBadCommand},
		{line: "SUBSCRIBE FROM x", code: CodeBadOffset},
		{line: "SUBSCRIBE FROM -3", code: CodeBadOffset},
		{line: "SUBSCRIBE AT 3", code: CodeBadCommand},
		{line: "UNSUBSCRIBE now", code: CodeBadCommand},
		{line: "FROM", code: CodeBadOffset},
		{line: "FROM notanumber", code: CodeBadOffset},
	}
	for _, tc := range cases {
		cmd, perr := parseCommand(tc.line)
		if tc.verb == "" {
			if perr == nil {
				t.Errorf("parse(%q) accepted as %+v, want rejection %s", tc.line, cmd, tc.code)
			} else if perr.code != tc.code {
				t.Errorf("parse(%q) code = %s, want %s", tc.line, perr.code, tc.code)
			}
			continue
		}
		if perr != nil {
			t.Errorf("parse(%q) rejected with %s, want %s", tc.line, perr.code, tc.verb)
			continue
		}
		if cmd.verb != tc.verb || cmd.from != tc.from {
			t.Errorf("parse(%q) = %+v, want verb %s from %d", tc.line, cmd, tc.verb, tc.from)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	in := &Frame{
		Kind:    FrameData,
		Entries: []Entry{{Offset: 3, Time: t0, Domain: "a.com", Raw: "{}"}},
		Next:    4,
	}
	line, err := encodeFrame(in)
	if err != nil {
		t.Fatal(err)
	}
	if line[len(line)-1] != '\n' {
		t.Fatal("frame line not newline-terminated")
	}
	out, err := decodeFrame(line[:len(line)-1])
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != FrameData || len(out.Entries) != 1 || out.Entries[0].Domain != "a.com" || out.Next != 4 {
		t.Errorf("round trip = %+v", out)
	}
}

func TestDecodeFrameRejectsGarbage(t *testing.T) {
	if _, err := decodeFrame([]byte("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := decodeFrame([]byte(`{"offset":3}`)); err == nil {
		t.Error("kindless frame accepted")
	}
}

// readFrameLine reads one non-empty line from a raw test connection and
// decodes it as a frame.
func readFrameLine(t *testing.T, r *bufio.Reader) *Frame {
	t.Helper()
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			t.Fatalf("read frame: %v", err)
		}
		line = line[:len(line)-1]
		if len(line) == 0 {
			continue
		}
		f, err := decodeFrame(line)
		if err != nil {
			t.Fatalf("decode %q: %v", line, err)
		}
		return f
	}
}

// rawSession dials the server and returns the conn plus a buffered
// reader, with a test-scoped deadline so a protocol bug cannot hang the
// suite.
func rawSession(t *testing.T, addr string) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	return conn, bufio.NewReader(conn)
}

// TestBadFramesRejectedWithStructuredErrors drives the wire directly:
// malformed session commands must answer with error frames carrying the
// documented codes, and the session must survive recoverable ones.
func TestBadFramesRejectedWithStructuredErrors(t *testing.T) {
	_, addr, stop := startFeed(t)
	defer stop()
	conn, r := rawSession(t, addr)

	fmt.Fprintf(conn, "HELLO too many words\n")
	if f := readFrameLine(t, r); f.Kind != FrameError || f.Code != CodeBadCommand {
		t.Fatalf("bad HELLO answered %+v", f)
	}
	fmt.Fprintf(conn, "SUBSCRIBE FROM minus-one\n")
	if f := readFrameLine(t, r); f.Kind != FrameError || f.Code != CodeBadOffset {
		t.Fatalf("bad offset answered %+v", f)
	}
	fmt.Fprintf(conn, "UNSUBSCRIBE\n")
	if f := readFrameLine(t, r); f.Kind != FrameError || f.Code != CodeNotSubscribed {
		t.Fatalf("unsubscribe without subscription answered %+v", f)
	}
	// The session is still usable after recoverable errors.
	fmt.Fprintf(conn, "HELLO acme\n")
	f := readFrameLine(t, r)
	if f.Kind != FrameWelcome || f.Tenant != "acme" || !strings.HasPrefix(f.Session, "s") {
		t.Fatalf("welcome = %+v", f)
	}
	fmt.Fprintf(conn, "SUBSCRIBE\n")
	if f := readFrameLine(t, r); f.Kind != FrameSubscribed {
		t.Fatalf("subscribed = %+v", f)
	}
	fmt.Fprintf(conn, "SUBSCRIBE\n")
	if f := readFrameLine(t, r); f.Kind != FrameError || f.Code != CodeAlreadySubscribed {
		t.Fatalf("double subscribe answered %+v", f)
	}
	fmt.Fprintf(conn, "HELLO other\n")
	if f := readFrameLine(t, r); f.Kind != FrameError || f.Code != CodeHelloAfterSub {
		t.Fatalf("late HELLO answered %+v", f)
	}
	fmt.Fprintf(conn, "LIVE\n")
	if f := readFrameLine(t, r); f.Kind != FrameError || f.Code != CodeBadCommand {
		t.Fatalf("mid-session LIVE answered %+v", f)
	}
}

// TestSessionLifecycleFrames walks the happy path: HELLO → SUBSCRIBE →
// DATA → UNSUBSCRIBE (bye) → SUBSCRIBE again.
func TestSessionLifecycleFrames(t *testing.T) {
	topic, addr, stop := startFeed(t)
	defer stop()
	for i := 0; i < 3; i++ {
		topic.Publish(t0, fmt.Sprintf("d%d.com", i), []byte("{}"))
	}
	conn, r := rawSession(t, addr)

	fmt.Fprintf(conn, "HELLO acme\nSUBSCRIBE FROM 0\n")
	if f := readFrameLine(t, r); f.Kind != FrameWelcome || f.Head != 3 {
		t.Fatalf("welcome = %+v", f)
	}
	if f := readFrameLine(t, r); f.Kind != FrameSubscribed || f.Head != 3 {
		t.Fatalf("subscribed = %+v", f)
	}
	var got []Entry
	for len(got) < 3 {
		f := readFrameLine(t, r)
		switch f.Kind {
		case FrameData:
			got = append(got, f.Entries...)
		case FrameHeartbeat:
		default:
			t.Fatalf("unexpected frame %+v", f)
		}
	}
	if got[0].Domain != "d0.com" || got[2].Offset != 2 {
		t.Fatalf("replayed %+v", got)
	}
	fmt.Fprintf(conn, "UNSUBSCRIBE\n")
	for {
		f := readFrameLine(t, r)
		if f.Kind == FrameHeartbeat {
			continue
		}
		if f.Kind != FrameBye || f.Reason != "unsubscribe" {
			t.Fatalf("after UNSUBSCRIBE got %+v", f)
		}
		break
	}
	fmt.Fprintf(conn, "SUBSCRIBE FROM 1\n")
	if f := readFrameLine(t, r); f.Kind != FrameSubscribed || f.From != 1 {
		t.Fatalf("resubscribe = %+v", f)
	}
	if f := readFrameLine(t, r); f.Kind != FrameData || f.Entries[0].Offset != 1 {
		t.Fatalf("resubscribed data = %+v", f)
	}
}

// TestHeartbeatsAreSequenced asserts idle sessions receive hb frames with
// increasing sequence numbers and the current head.
func TestHeartbeatsAreSequenced(t *testing.T) {
	topic, addr, stop := startFeedConfig(t, ServerConfig{Heartbeat: 30 * time.Millisecond})
	defer stop()
	topic.Publish(t0, "a.com", nil)
	conn, r := rawSession(t, addr)
	fmt.Fprintf(conn, "SUBSCRIBE\n")
	if f := readFrameLine(t, r); f.Kind != FrameSubscribed {
		t.Fatalf("subscribed = %+v", f)
	}
	var seqs []int64
	for len(seqs) < 3 {
		f := readFrameLine(t, r)
		if f.Kind != FrameHeartbeat {
			t.Fatalf("unexpected frame %+v", f)
		}
		if f.Head != 1 {
			t.Errorf("hb head = %d, want 1", f.Head)
		}
		seqs = append(seqs, f.Seq)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Fatalf("heartbeat seqs not consecutive: %v", seqs)
		}
	}
}

// TestLegacyShimEquivalence consumes the same topic through the legacy
// FROM-line protocol and the framed protocol: the delivered entry
// sequences must be identical, and the legacy lines must be plain Entry
// JSON (no frame key) so pre-rebuild consumers parse them unchanged.
func TestLegacyShimEquivalence(t *testing.T) {
	topic, addr, stop := startFeed(t)
	defer stop()
	const n = 20
	for i := 0; i < n; i++ {
		topic.Publish(t0.Add(time.Duration(i)*time.Minute), fmt.Sprintf("d%d.com", i), []byte(`{"x":1}`))
	}

	legacyConn, lr := rawSession(t, addr)
	fmt.Fprintf(legacyConn, "FROM 0\n")
	var legacy []Entry
	for len(legacy) < n {
		line, err := lr.ReadBytes('\n')
		if err != nil {
			t.Fatalf("legacy read: %v", err)
		}
		line = line[:len(line)-1]
		if len(line) == 0 {
			continue // heartbeat
		}
		var probe map[string]any
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("legacy line not JSON: %q", line)
		}
		if _, framed := probe["frame"]; framed {
			t.Fatalf("legacy session received a framed line: %q", line)
		}
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatal(err)
		}
		legacy = append(legacy, e)
	}

	framedConn, fr := rawSession(t, addr)
	fmt.Fprintf(framedConn, "SUBSCRIBE FROM 0\n")
	if f := readFrameLine(t, fr); f.Kind != FrameSubscribed {
		t.Fatalf("subscribed = %+v", f)
	}
	var framed []Entry
	for len(framed) < n {
		f := readFrameLine(t, fr)
		if f.Kind == FrameData {
			framed = append(framed, f.Entries...)
		}
	}

	for i := range legacy {
		if legacy[i] != framed[i] {
			t.Fatalf("entry %d differs: legacy %+v, framed %+v", i, legacy[i], framed[i])
		}
	}
}
