package feed

import (
	"maps"
	"sync"
	"sync/atomic"
)

// cowMap is a copy-on-write map: lock-free reads through an
// atomic.Pointer snapshot, mutex-serialized clone-and-swap writes — the
// stream.Bus/rdap.Mux idiom (DESIGN.md §6) applied to the fan-out tier's
// registry shards and tenant directory. The zero value is an empty map,
// ready to use.
type cowMap[K comparable, V any] struct {
	mu sync.Mutex // serializes writers' clone-and-swap
	m  atomic.Pointer[map[K]V]
}

// snapshot returns the current immutable generation (nil when empty).
func (c *cowMap[K, V]) snapshot() map[K]V {
	if p := c.m.Load(); p != nil {
		return *p
	}
	return nil
}

// get looks k up in the current generation. Lock-free.
func (c *cowMap[K, V]) get(k K) (V, bool) {
	v, ok := c.snapshot()[k]
	return v, ok
}

// set installs k→v in a new generation. In-flight readers keep the
// previous one until their operation completes.
func (c *cowMap[K, V]) set(k K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	next := maps.Clone(c.snapshot())
	if next == nil {
		next = map[K]V{}
	}
	next[k] = v
	c.m.Store(&next)
}

// delete removes k in a new generation.
func (c *cowMap[K, V]) delete(k K) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := c.snapshot()
	if _, ok := cur[k]; !ok {
		return
	}
	next := maps.Clone(cur)
	delete(next, k)
	c.m.Store(&next)
}

// getOrCreate returns k's value, building and installing mk() under the
// writer lock when k is absent — the double-checked path for concurrent
// first access.
func (c *cowMap[K, V]) getOrCreate(k K, mk func() V) V {
	if v, ok := c.get(k); ok {
		return v
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := c.snapshot()
	if v, ok := cur[k]; ok {
		return v
	}
	next := maps.Clone(cur)
	if next == nil {
		next = map[K]V{}
	}
	v := mk()
	next[k] = v
	c.m.Store(&next)
	return v
}
