// Package simclock provides virtual time for deterministic simulation.
//
// All DarkDNS substrates take a Clock rather than calling time.Now directly,
// which lets the three-month measurement campaign of the paper run in
// seconds of wall time while the exact same code paths serve real traffic
// when backed by the real-time clock.
//
// The package provides two implementations:
//
//   - Real: a thin adapter over the time package.
//   - Sim: a discrete-event simulator. Goroutine-safe; timers fire in
//     timestamp order when the owner calls Advance or Run.
package simclock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock abstracts time for simulation. Implementations must be safe for
// concurrent use.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// After schedules fn to run once d has elapsed on this clock.
	// fn runs on the clock's dispatch goroutine (Sim) or a new
	// goroutine (Real); it must not block for long.
	After(d time.Duration, fn func())
	// At schedules fn at an absolute instant. Instants not after Now
	// fire on the next dispatch.
	At(t time.Time, fn func())
}

// Real is a Clock backed by the machine's real time.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration, fn func()) { time.AfterFunc(d, fn) }

// At implements Clock.
func (r Real) At(t time.Time, fn func()) {
	d := time.Until(t)
	if d < 0 {
		d = 0
	}
	time.AfterFunc(d, fn)
}

// event is a scheduled callback in the simulated timeline.
type event struct {
	at  time.Time
	seq uint64 // tie-break so equal timestamps fire in schedule order
	fn  func()
}

// eventHeap orders events by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at.Equal(h[j].at) {
		return h[i].seq < h[j].seq
	}
	return h[i].at.Before(h[j].at)
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return
}

// Sim is a deterministic discrete-event clock. Events scheduled via After/At
// fire, in timestamp order, when the simulation owner calls Advance, Run or
// RunUntil. Callbacks run synchronously on the advancing goroutine and may
// schedule further events.
type Sim struct {
	mu     sync.Mutex
	now    time.Time
	seq    uint64
	events eventHeap
}

// NewSim returns a simulated clock starting at the given instant.
func NewSim(start time.Time) *Sim {
	s := &Sim{now: start}
	heap.Init(&s.events)
	return s
}

// Now implements Clock.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// After implements Clock.
func (s *Sim) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	s.push(s.now.Add(d), fn)
	s.mu.Unlock()
}

// At implements Clock.
func (s *Sim) At(t time.Time, fn func()) {
	s.mu.Lock()
	if t.Before(s.now) {
		t = s.now
	}
	s.push(t, fn)
	s.mu.Unlock()
}

// push appends an event; caller holds mu.
func (s *Sim) push(at time.Time, fn func()) {
	s.seq++
	heap.Push(&s.events, &event{at: at, seq: s.seq, fn: fn})
}

// Pending reports the number of scheduled events not yet fired.
func (s *Sim) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// NextAt returns the timestamp of the earliest pending event.
// ok is false when no events are pending.
func (s *Sim) NextAt() (t time.Time, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.events) == 0 {
		return time.Time{}, false
	}
	return s.events[0].at, true
}

// Advance moves simulated time forward by d, firing every event whose
// timestamp falls within the window in order. It returns the number of
// events fired.
func (s *Sim) Advance(d time.Duration) int {
	if d < 0 {
		d = 0
	}
	return s.advanceTo(s.Now().Add(d))
}

// RunUntil fires events in order until the clock reaches t.
func (s *Sim) RunUntil(t time.Time) int { return s.advanceTo(t) }

// Run fires events until none remain, returning the count fired. Callbacks
// may schedule more events; Run continues until the queue drains.
func (s *Sim) Run() int {
	fired := 0
	for {
		s.mu.Lock()
		if len(s.events) == 0 {
			s.mu.Unlock()
			return fired
		}
		ev := heap.Pop(&s.events).(*event)
		s.now = ev.at
		s.mu.Unlock()
		ev.fn()
		fired++
	}
}

// advanceTo fires events with at <= deadline and leaves now == deadline.
func (s *Sim) advanceTo(deadline time.Time) int {
	fired := 0
	for {
		s.mu.Lock()
		if len(s.events) == 0 || s.events[0].at.After(deadline) {
			if deadline.After(s.now) {
				s.now = deadline
			}
			s.mu.Unlock()
			return fired
		}
		ev := heap.Pop(&s.events).(*event)
		if ev.at.After(s.now) {
			s.now = ev.at
		}
		s.mu.Unlock()
		ev.fn()
		fired++
	}
}

// Ticker invokes fn every period on clk until stop is called. It is the
// simulation-friendly replacement for time.Ticker: under a Sim clock the
// callback fires exactly once per simulated period.
type Ticker struct {
	mu      sync.Mutex
	stopped bool
}

// NewTicker starts a ticker on clk. The first firing is one period from now.
func NewTicker(clk Clock, period time.Duration, fn func(now time.Time)) *Ticker {
	t := &Ticker{}
	var arm func()
	arm = func() {
		clk.After(period, func() {
			t.mu.Lock()
			stopped := t.stopped
			t.mu.Unlock()
			if stopped {
				return
			}
			fn(clk.Now())
			arm()
		})
	}
	arm()
	return t
}

// Stop prevents future firings. A firing already dispatched may still run.
func (t *Ticker) Stop() {
	t.mu.Lock()
	t.stopped = true
	t.mu.Unlock()
}
