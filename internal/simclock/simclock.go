// Package simclock provides virtual time for deterministic simulation.
//
// All DarkDNS substrates take a Clock rather than calling time.Now directly,
// which lets the three-month measurement campaign of the paper run in
// seconds of wall time while the exact same code paths serve real traffic
// when backed by the real-time clock.
//
// The package provides two implementations:
//
//   - Real: a thin adapter over the time package.
//   - Sim: a discrete-event engine. Goroutine-safe; timers fire in
//     timestamp order when the owner calls Advance, Run or their batched
//     counterparts.
//
// Sim stores events in a timer wheel (coarse buckets plus an overflow
// heap, wheel.go), so pushing the dominant near-future events is O(1),
// and offers two draining modes: the serial mode fires one callback per
// event in (timestamp, schedule-order) order, and the batched mode
// (RunBatched/RunUntilBatched) pops every event sharing a timestamp as
// one group and fires runs of parallel-marked events (AfterPar) through
// a worker pool behind a completion barrier. Parallel-marked callbacks
// must be commutative with other same-instant parallel callbacks; under
// that contract serial and batched drains produce byte-identical
// campaigns at any pool width — the determinism bar
// analysis.TestSerialBatchedClockCampaignsIdentical enforces.
//
// This is the repo's third engine (DESIGN.md §7), wired through
// worldsim.World.RunBatched, analysis.RunConfig.ClockWorkers and the
// -clock-workers flags. Bulk producers (the world builder's commit
// engine, DESIGN.md §9) install whole timelines through
// ScheduleBatch/AtBatch, one lock acquisition per batch.
package simclock

import (
	"container/heap"
	"sync"
	"sync/atomic"
	"time"

	"darkdns/internal/workpool"
)

// Clock abstracts time for simulation. Implementations must be safe for
// concurrent use.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// After schedules fn to run once d has elapsed on this clock.
	// fn runs on the clock's dispatch goroutine (Sim) or a new
	// goroutine (Real); it must not block for long.
	After(d time.Duration, fn func())
	// At schedules fn at an absolute instant. Instants not after Now
	// fire on the next dispatch.
	At(t time.Time, fn func())
}

// ParScheduler is the optional Clock extension for callbacks that are
// safe to fire concurrently with other same-instant parallel callbacks.
// Sim's batched drain may run them on a worker pool; serial drains (and
// clocks without the extension) fire them like any other event.
type ParScheduler interface {
	// AfterPar schedules fn like Clock.After while declaring it
	// commutative with every other parallel event at the same instant.
	AfterPar(d time.Duration, fn func())
}

// AfterPar schedules fn on clk, marking it parallel-safe when the clock
// supports batched firing, and falling back to clk.After otherwise.
func AfterPar(clk Clock, d time.Duration, fn func()) {
	if ps, ok := clk.(ParScheduler); ok {
		ps.AfterPar(d, fn)
		return
	}
	clk.After(d, fn)
}

// Real is a Clock backed by the machine's real time.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration, fn func()) { time.AfterFunc(d, fn) }

// AfterPar implements ParScheduler: real-time timers already fire on
// their own goroutines, so parallel marking is a no-op.
func (Real) AfterPar(d time.Duration, fn func()) { time.AfterFunc(d, fn) }

// At implements Clock.
func (r Real) At(t time.Time, fn func()) {
	d := time.Until(t)
	if d < 0 {
		d = 0
	}
	time.AfterFunc(d, fn)
}

// Sim is a deterministic discrete-event clock. Events scheduled via After/At
// fire, in timestamp order, when the simulation owner calls Advance, Run,
// RunUntil or a batched variant. Callbacks run on the draining goroutine
// (or its worker pool in batched mode) and may schedule further events.
type Sim struct {
	mu  sync.Mutex
	now time.Time
	seq uint64

	// Calendar queue (wheel.go): near-future events bucket into wheel
	// slots tracked by the occ bitmap; events past the horizon overflow
	// into the heap.
	wheel    [wheelSlots]slot
	occ      [wheelSlots / 64]uint64
	wheelLen int
	overflow eventHeap

	// Engine counters (Stats). Atomics: firing happens outside mu and
	// Stats may be read while another goroutine drains.
	scheduled atomic.Int64
	fired     atomic.Int64
	coalesced atomic.Int64
	rounds    atomic.Int64
	maxBatch  atomic.Int64

	// Lookahead drain counters (lookahead.go).
	windows   atomic.Int64
	specFired atomic.Int64
	conflicts atomic.Int64
	barriers  atomic.Int64

	// laGroups is the currently-firing lookahead window's conflict
	// groups (guarded by mu; nil outside fireWindow). pushEvent routes
	// in-window tagged spawns to a matching group so they fire at their
	// serial position instead of being jumped over.
	laGroups []*laGroup
}

// NewSim returns a simulated clock starting at the given instant.
func NewSim(start time.Time) *Sim {
	return &Sim{now: start}
}

// Now implements Clock.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// After implements Clock.
func (s *Sim) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	s.push(s.now.Add(d), fn, false)
	s.mu.Unlock()
}

// AfterPar implements ParScheduler: fn fires like After, but the batched
// drain may run it concurrently with other same-instant parallel events.
// fn must be commutative with them — its effects may not depend on
// ordering within the instant.
func (s *Sim) AfterPar(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	s.push(s.now.Add(d), fn, true)
	s.mu.Unlock()
}

// At implements Clock.
func (s *Sim) At(t time.Time, fn func()) {
	s.mu.Lock()
	s.push(t, fn, false)
	s.mu.Unlock()
}

// Timed is one entry of a bulk schedule: an absolute instant, a callback,
// and the parallel-commutativity mark carrying AfterPar's contract.
type Timed struct {
	At  time.Time
	Fn  func()
	Par bool
}

// ScheduleBatch schedules every entry under a single lock acquisition,
// assigning sequence numbers in slice order — equivalent to calling At
// (or AfterPar, for Par entries) element by element, minus the per-event
// locking. Bulk producers like the world builder's commit phase install
// whole compiled timelines through it. When a batch carries a large
// far-future slab (a compiled campaign lands almost entirely beyond the
// wheel horizon), the slab is appended to the overflow queue raw and
// heapified once — an O(heap) rebuild instead of O(batch·log heap)
// sifts. Firing order is identical either way: it depends only on each
// event's (at, seq), never on heap internals.
func (s *Sim) ScheduleBatch(entries []Timed) {
	if len(entries) == 0 {
		return
	}
	s.mu.Lock()
	far := 0
	for i := range entries {
		at := entries[i].At
		if at.Before(s.now) {
			at = s.now
		}
		if at.Sub(s.now) >= wheelSpan {
			far++
		}
	}
	bulk := far >= 64 && far*4 >= len(s.overflow)
	for i := range entries {
		e := &entries[i]
		at := e.At
		if at.Before(s.now) {
			at = s.now
		}
		if bulk && at.Sub(s.now) >= wheelSpan {
			s.seq++
			s.overflow = append(s.overflow, &event{at: at, seq: s.seq, fn: e.Fn, par: e.Par})
			s.scheduled.Add(1)
			continue
		}
		s.push(at, e.Fn, e.Par)
	}
	if bulk {
		heap.Init(&s.overflow)
	}
	s.mu.Unlock()
}

// AtBatch schedules every callback at one shared instant under a single
// lock acquisition, in slice order.
func (s *Sim) AtBatch(at time.Time, fns []func()) {
	if len(fns) == 0 {
		return
	}
	s.mu.Lock()
	for _, fn := range fns {
		s.push(at, fn, false)
	}
	s.mu.Unlock()
}

// Pending reports the number of scheduled events not yet fired.
func (s *Sim) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wheelLen + len(s.overflow)
}

// NextAt returns the timestamp of the earliest pending event.
// ok is false when no events are pending.
func (s *Sim) NextAt() (t time.Time, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ev, _ := s.peek()
	if ev == nil {
		return time.Time{}, false
	}
	return ev.at, true
}

// unbounded is the deadline rule for drain-everything modes.
func unbounded(time.Time) (time.Time, bool) { return time.Time{}, false }

// Advance moves simulated time forward by d, firing every event whose
// timestamp falls within the window in order. It returns the number of
// events fired. The deadline derives from now inside the drain's own
// critical section, so a concurrent clock user between entry and drain
// cannot shift it.
func (s *Sim) Advance(d time.Duration) int {
	if d < 0 {
		d = 0
	}
	return s.drain(func(now time.Time) (time.Time, bool) { return now.Add(d), true }, false, 1)
}

// RunUntil fires events in order until the clock reaches t.
func (s *Sim) RunUntil(t time.Time) int {
	return s.drain(func(time.Time) (time.Time, bool) { return t, true }, false, 1)
}

// Run fires events until none remain, returning the count fired. Callbacks
// may schedule more events; Run continues until the queue drains.
func (s *Sim) Run() int { return s.drain(unbounded, false, 1) }

// RunBatched drains like Run, but pops every event sharing a timestamp
// as one group: runs of parallel-marked events (AfterPar) fire through a
// worker pool of the given width behind a completion barrier, and
// everything else fires serially in schedule order at its position in
// the group. With commutative parallel callbacks, RunBatched produces
// campaigns byte-identical to Run at any worker count; workers ≤ 1
// degenerates to exact serial order.
func (s *Sim) RunBatched(workers int) int { return s.drain(unbounded, true, workers) }

// RunUntilBatched is RunBatched bounded by an absolute deadline.
func (s *Sim) RunUntilBatched(t time.Time, workers int) int {
	return s.drain(func(time.Time) (time.Time, bool) { return t, true }, true, workers)
}

// drain is the engine core: pop due events (one at a time, or one
// same-timestamp group in batched mode), advance now, fire, repeat.
// deadlineOf computes the drain deadline from now under the initial
// lock hold — the Advance TOCTOU fix — and reports whether the drain is
// bounded at all.
func (s *Sim) drain(deadlineOf func(time.Time) (time.Time, bool), batched bool, workers int) int {
	if workers < 1 {
		workers = 1
	}
	fired := 0
	var group []*event
	s.mu.Lock()
	deadline, bounded := deadlineOf(s.now)
	for {
		if batched {
			group = s.popGroup(group[:0], deadline, bounded)
			if len(group) == 0 {
				break
			}
			s.now = group[0].at
			s.mu.Unlock()
			s.fireGroup(group, workers)
			fired += len(group)
		} else {
			ev := s.popDue(deadline, bounded)
			if ev == nil {
				break
			}
			s.now = ev.at
			s.mu.Unlock()
			ev.fire()
			s.fired.Add(1)
			fired++
		}
		s.mu.Lock()
	}
	if bounded && deadline.After(s.now) {
		s.now = deadline
	}
	s.mu.Unlock()
	return fired
}

// fireGroup fires one same-timestamp batch. Maximal runs of consecutive
// parallel-marked events execute on the worker pool behind a completion
// barrier; serial events act as ordering barriers at their schedule
// position, so an order-sensitive callback never overlaps anything.
func (s *Sim) fireGroup(group []*event, workers int) {
	s.rounds.Add(1)
	if n := int64(len(group)); n > 1 {
		s.coalesced.Add(n)
		workpool.AtomicMax(&s.maxBatch, n)
	}
	for i := 0; i < len(group); {
		if workers <= 1 || !group[i].par {
			group[i].fire()
			i++
			continue
		}
		j := i + 1
		for j < len(group) && group[j].par {
			j++
		}
		run := group[i:j]
		workpool.Run(len(run), workers, func(k int) { run[k].fire() })
		i = j
	}
	s.fired.Add(int64(len(group)))
}

// Stats are the engine's lifetime counters. Scheduled and Fired cover
// every drain mode; Coalesced, Rounds and MaxBatch are maintained by the
// batched drain (a round is one popped group, coalesced counts events
// that shared their firing instant with at least one other).
type Stats struct {
	Scheduled int64 // events pushed via After/AfterPar/At
	Fired     int64 // callbacks executed
	Coalesced int64 // events fired in a same-instant group of width > 1
	Rounds    int64 // batched groups fired
	MaxBatch  int   // widest same-instant group fired
	Pending   int   // scheduled but not yet fired, right now

	// Lookahead drain counters (RunLookahead). A window is one
	// cross-timestamp round; SpecFired counts events fired at an instant
	// later than their window's first timestamp; Conflicts counts tagged
	// events whose mask intersected an existing conflict group (they
	// joined it as an in-group ordering barrier); Barriers counts untagged
	// events the drain had to fire as classic full-stop rounds.
	Windows   int64
	SpecFired int64
	Conflicts int64
	Barriers  int64
}

// Stats returns the engine counters. Safe to call concurrently with
// scheduling and draining.
func (s *Sim) Stats() Stats {
	s.mu.Lock()
	pending := s.wheelLen + len(s.overflow)
	s.mu.Unlock()
	return Stats{
		Scheduled: s.scheduled.Load(),
		Fired:     s.fired.Load(),
		Coalesced: s.coalesced.Load(),
		Rounds:    s.rounds.Load(),
		MaxBatch:  int(s.maxBatch.Load()),
		Pending:   pending,
		Windows:   s.windows.Load(),
		SpecFired: s.specFired.Load(),
		Conflicts: s.conflicts.Load(),
		Barriers:  s.barriers.Load(),
	}
}

// Ticker invokes fn every period on clk until stop is called. It is the
// simulation-friendly replacement for time.Ticker: under a Sim clock the
// callback fires exactly once per simulated period.
type Ticker struct {
	mu      sync.Mutex
	stopped bool
}

// NewTicker starts a ticker on clk. The first firing is one period from now.
func NewTicker(clk Clock, period time.Duration, fn func(now time.Time)) *Ticker {
	t := &Ticker{}
	var arm func()
	arm = func() {
		clk.After(period, func() {
			t.mu.Lock()
			stopped := t.stopped
			t.mu.Unlock()
			if stopped {
				return
			}
			fn(clk.Now())
			arm()
		})
	}
	arm()
	return t
}

// Stop prevents future firings. A firing already dispatched may still run.
func (t *Ticker) Stop() {
	t.mu.Lock()
	t.stopped = true
	t.mu.Unlock()
}
