package simclock

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// buildTimeline schedules a deterministic mixed workload on s: serial
// events, parallel events, wheel-range and overflow-range timestamps,
// heavy timestamp collisions, and callbacks that schedule further
// events. record must be safe for the caller's drain mode.
func buildTimeline(s *Sim, record func(tag string)) {
	for i := 0; i < 200; i++ {
		i := i
		// 20 distinct instants → 10-way collisions, inside the wheel.
		s.After(time.Duration(i%20)*time.Minute, func() { record(fmt.Sprintf("ser-%d", i)) })
	}
	for i := 0; i < 200; i++ {
		i := i
		// Parallel events sharing those instants: commutative recording.
		s.AfterPar(time.Duration(i%20)*time.Minute, func() { record(fmt.Sprintf("par-%d", i)) })
	}
	for i := 0; i < 50; i++ {
		i := i
		// Overflow heap: beyond the wheel horizon.
		s.After(wheelSpan+time.Duration(i)*time.Hour, func() { record(fmt.Sprintf("far-%d", i)) })
	}
	// Cascades: firing schedules more work, some landing on occupied
	// instants, some zero-delay.
	for i := 0; i < 20; i++ {
		i := i
		s.After(time.Duration(i)*time.Minute, func() {
			record(fmt.Sprintf("cascade-%d", i))
			s.After(0, func() { record(fmt.Sprintf("resched-%d", i)) })
			s.AfterPar(5*time.Minute, func() { record(fmt.Sprintf("respar-%d", i)) })
		})
	}
}

// drainRecorded runs one timeline through the given drain and returns
// the multiset-per-instant observation log: a slice of "instant|tag"
// strings sorted within each instant for parallel tags only is too
// clever — instead tags are recorded in delivery order and the caller
// decides how to compare.
func drainRecorded(t *testing.T, drain func(s *Sim) int) []string {
	t.Helper()
	s := NewSim(epoch)
	var mu sync.Mutex
	var log []string
	buildTimeline(s, func(tag string) {
		now := s.Now()
		mu.Lock()
		log = append(log, now.Format(time.RFC3339)+"|"+tag)
		mu.Unlock()
	})
	if n := drain(s); n != len(log) {
		t.Fatalf("drain fired %d, log has %d", n, len(log))
	}
	return log
}

// TestBatchedMatchesSerialExactly: RunBatched(1) must reproduce Run's
// delivery order byte for byte — a single-width pool degenerates to the
// serial engine.
func TestBatchedMatchesSerialExactly(t *testing.T) {
	serial := drainRecorded(t, func(s *Sim) int { return s.Run() })
	batched1 := drainRecorded(t, func(s *Sim) int { return s.RunBatched(1) })
	if !reflect.DeepEqual(serial, batched1) {
		t.Fatal("RunBatched(1) delivery order diverges from Run")
	}
}

// TestBatchedWideIsPermutationWithinInstants: RunBatched(8) may reorder
// parallel events within one instant but nothing else — every instant's
// multiset of tags, and the order of instants, must match the serial
// drain. Serial (non-par) events must additionally keep their exact
// relative order.
func TestBatchedWideIsPermutationWithinInstants(t *testing.T) {
	serial := drainRecorded(t, func(s *Sim) int { return s.Run() })
	wide := drainRecorded(t, func(s *Sim) int { return s.RunBatched(8) })
	if len(serial) != len(wide) {
		t.Fatalf("fired %d vs %d", len(serial), len(wide))
	}
	count := func(log []string) map[string]int {
		m := make(map[string]int, len(log))
		for _, e := range log {
			m[e]++
		}
		return m
	}
	if !reflect.DeepEqual(count(serial), count(wide)) {
		t.Fatal("RunBatched(8) fired a different instant|tag multiset than Run")
	}
	// Serial (non-par) events are ordering barriers: their relative
	// order must survive the wide pool exactly.
	serialOnly := func(log []string) []string {
		var out []string
		for _, e := range log {
			if !strings.Contains(e, "|par-") && !strings.Contains(e, "|respar-") {
				out = append(out, e)
			}
		}
		return out
	}
	if !reflect.DeepEqual(serialOnly(serial), serialOnly(wide)) {
		t.Fatal("RunBatched(8) reordered serial events within a group")
	}
}

// TestAdvanceDeadlineSingleCriticalSection: the Advance deadline derives
// from now inside the drain itself, so an event that advances a second
// clock reference or a concurrent scheduler cannot shift it. Guarded by
// firing an event exactly at the deadline boundary scheduled from
// another goroutine racing Advance's entry.
func TestAdvanceDeadlineSingleCriticalSection(t *testing.T) {
	for trial := 0; trial < 100; trial++ {
		s := NewSim(epoch)
		var fired atomic.Int32
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.After(time.Second, func() { fired.Add(1) })
		}()
		n := s.Advance(time.Second)
		wg.Wait()
		// Whatever the interleaving, the deadline is epoch+1s: if the
		// racing After landed before the drain began it fired, else it
		// is still pending — but it can never be lost or double-fired.
		total := int(fired.Load()) + s.Pending()
		if total != 1 || n != int(fired.Load()) {
			t.Fatalf("trial %d: fired=%d pending=%d n=%d", trial, fired.Load(), s.Pending(), n)
		}
		s.Run()
		if fired.Load() != 1 {
			t.Fatalf("trial %d: event lost", trial)
		}
	}
}

// TestWheelOverflowBoundary: events straddling the wheel horizon land in
// both structures and still fire in global timestamp order.
func TestWheelOverflowBoundary(t *testing.T) {
	s := NewSim(epoch)
	var got []time.Duration
	offsets := []time.Duration{
		0, time.Nanosecond, wheelTick - 1, wheelTick,
		wheelSpan - time.Nanosecond, wheelSpan, wheelSpan + time.Nanosecond,
		wheelSpan + 24*time.Hour, 2 * wheelSpan, 90 * 24 * time.Hour,
	}
	// Schedule in reverse to defeat schedule-order accidents.
	for i := len(offsets) - 1; i >= 0; i-- {
		d := offsets[i]
		s.After(d, func() { got = append(got, d) })
	}
	if n := s.Run(); n != len(offsets) {
		t.Fatalf("fired %d, want %d", n, len(offsets))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
	if !s.Now().Equal(epoch.Add(offsets[len(offsets)-1])) {
		t.Fatalf("Now() = %v", s.Now())
	}
}

// TestWheelWrap: the ring must stay correct when simulated time crosses
// the wheel span many times with events continually rescheduling.
func TestWheelWrap(t *testing.T) {
	s := NewSim(epoch)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 2000 {
			s.After(17*time.Minute, tick) // co-prime with the tick width
		}
	}
	s.After(0, tick)
	if n := s.Run(); n != 2000 {
		t.Fatalf("fired %d, want 2000", n)
	}
	if want := epoch.Add(1999 * 17 * time.Minute); !s.Now().Equal(want) {
		t.Fatalf("Now() = %v, want %v", s.Now(), want)
	}
}

// TestStatsCounters: the engine books scheduled/fired symmetrically and
// the batched drain tracks rounds and coalescing width.
func TestStatsCounters(t *testing.T) {
	s := NewSim(epoch)
	for i := 0; i < 12; i++ {
		s.AfterPar(time.Minute, func() {})
	}
	s.After(2*time.Minute, func() {})
	s.RunBatched(4)
	st := s.Stats()
	if st.Scheduled != 13 || st.Fired != 13 || st.Pending != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Rounds != 2 || st.MaxBatch != 12 || st.Coalesced != 12 {
		t.Fatalf("batch stats: %+v", st)
	}
}

// TestBatchedRaceHammer drives concurrent After/AfterPar/At/Now/Pending
// callers against a batched drain — the -race guard for the engine's
// locking. Every scheduled event must fire exactly once.
func TestBatchedRaceHammer(t *testing.T) {
	s := NewSim(epoch)
	var fired atomic.Int64
	var scheduled atomic.Int64
	bump := func() { fired.Add(1) }

	// Seed work so the drain has something to chew while hammers run.
	for i := 0; i < 500; i++ {
		scheduled.Add(1)
		s.AfterPar(time.Duration(i%50)*time.Second, bump)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				switch i % 4 {
				case 0:
					scheduled.Add(1)
					s.After(time.Duration(i%90)*time.Second, bump)
				case 1:
					scheduled.Add(1)
					s.AfterPar(time.Duration(i%90)*time.Second, bump)
				case 2:
					scheduled.Add(1)
					s.At(s.Now().Add(time.Duration(g)*time.Minute), bump)
				default:
					_ = s.Now()
					_ = s.Pending()
					_, _ = s.NextAt()
					_ = s.Stats()
				}
			}
		}(g)
	}

	// Drain in rounds until the hammers finish and the queue is empty.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		s.RunBatched(4)
		select {
		case <-done:
			s.RunBatched(4) // final sweep for late schedulers
			if s.Pending() != 0 {
				s.RunBatched(4)
			}
			if got, want := fired.Load(), scheduled.Load(); got != want {
				t.Fatalf("fired %d of %d scheduled", got, want)
			}
			return
		default:
		}
	}
}

// TestScheduleBatchMatchesElementWise: a bulk insert must be
// indistinguishable from element-by-element At/AfterPar calls — same
// sequence numbering, same delivery order, under both drain modes.
func TestScheduleBatchMatchesElementWise(t *testing.T) {
	build := func(s *Sim, record func(tag string)) {
		var entries []Timed
		for i := 0; i < 120; i++ {
			i := i
			entries = append(entries, Timed{
				At:  epoch.Add(time.Duration(i%12) * time.Minute),
				Fn:  func() { record(fmt.Sprintf("bulk-%d", i)) },
				Par: i%3 == 0,
			})
		}
		// Interleave with a far-future bulk slab that lands on the
		// overflow heap — large enough to take the heapify-once path.
		for i := 0; i < 100; i++ {
			i := i
			entries = append(entries, Timed{
				At: epoch.Add(wheelSpan + time.Duration(i)*time.Hour),
				Fn: func() { record(fmt.Sprintf("far-%d", i)) },
			})
		}
		s.ScheduleBatch(entries)
	}
	run := func(bulk bool) []string {
		s := NewSim(epoch)
		var log []string
		record := func(tag string) { log = append(log, s.Now().Format(time.RFC3339)+"|"+tag) }
		if bulk {
			build(s, record)
		} else {
			// Element-wise reference: identical entries via At/AfterPar.
			for i := 0; i < 120; i++ {
				i := i
				at := epoch.Add(time.Duration(i%12) * time.Minute)
				fn := func() { log = append(log, s.Now().Format(time.RFC3339)+"|"+fmt.Sprintf("bulk-%d", i)) }
				if i%3 == 0 {
					s.mu.Lock()
					s.push(at, fn, true)
					s.mu.Unlock()
				} else {
					s.At(at, fn)
				}
			}
			for i := 0; i < 100; i++ {
				i := i
				s.At(epoch.Add(wheelSpan+time.Duration(i)*time.Hour),
					func() { log = append(log, s.Now().Format(time.RFC3339)+"|"+fmt.Sprintf("far-%d", i)) })
			}
		}
		s.Run()
		return log
	}
	if got, want := run(true), run(false); !reflect.DeepEqual(got, want) {
		t.Fatal("ScheduleBatch delivery order diverges from element-wise scheduling")
	}
}

// TestScheduleBatchPastClampsAndCounts: entries at or before now clamp
// to now (firing on the next dispatch), and the scheduled counter sees
// every entry.
func TestScheduleBatchPastClampsAndCounts(t *testing.T) {
	s := NewSim(epoch)
	fired := 0
	s.ScheduleBatch([]Timed{
		{At: epoch.Add(-time.Hour), Fn: func() { fired++ }},
		{At: epoch, Fn: func() { fired++ }},
		{At: epoch.Add(time.Minute), Fn: func() { fired++ }, Par: true},
	})
	if got := s.Stats().Scheduled; got != 3 {
		t.Fatalf("Scheduled = %d, want 3", got)
	}
	if s.Run() != 3 || fired != 3 {
		t.Fatalf("fired %d of 3", fired)
	}
	// Empty batches are no-ops.
	s.ScheduleBatch(nil)
	s.AtBatch(epoch, nil)
	if s.Pending() != 0 {
		t.Fatal("empty batch scheduled something")
	}
}

// TestAtBatchSharedInstant: AtBatch schedules every callback at one
// instant in slice order.
func TestAtBatchSharedInstant(t *testing.T) {
	s := NewSim(epoch)
	var order []int
	fns := make([]func(), 10)
	for i := range fns {
		i := i
		fns[i] = func() { order = append(order, i) }
	}
	at := epoch.Add(30 * time.Second)
	s.AtBatch(at, fns)
	if s.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", s.Pending())
	}
	s.Run()
	if !s.Now().Equal(at) {
		t.Fatalf("clock at %v, want %v", s.Now(), at)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("order[%d] = %d; AtBatch must preserve slice order", i, got)
		}
	}
}
