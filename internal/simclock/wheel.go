// Timer-wheel event storage for Sim.
//
// The simulated timeline is a calendar queue: near-future events — the
// dominant class once the fleet coalesces probe rounds and the pipeline
// arms zero-delay flush timers — land in a ring of coarse tick-width
// buckets where push is O(1), and everything beyond the wheel's horizon
// (worldsim lays out whole 13-week campaigns up front) falls back to a
// binary heap. The firing order contract is unchanged from the plain
// heap: events fire in (timestamp, schedule-order) order, merged across
// both structures.
package simclock

import (
	"container/heap"
	"sort"
	"time"
)

// event is a scheduled callback in the simulated timeline.
type event struct {
	at  time.Time
	seq uint64 // tie-break so equal timestamps fire in schedule order
	fn  func()
	// par marks the callback commutative with other same-instant parallel
	// events: batch-firing mode may run it concurrently with them.
	par bool

	// Effect-tagged events (tags.go). fnT is the time-explicit callback
	// form — it receives the event's own timestamp, which equals Now()
	// under the serial and batched drains and is the event's virtual
	// instant under the lookahead drain, where Now() may still lag at the
	// last barrier. tag (static) or tagFn (resolved at scan time) carries
	// the effect mask; a zero mask means untagged, i.e. an ordering
	// barrier. quiet, when set, bounds how far past this event the
	// lookahead scan may speculate (the event spawns an untagged follow-up
	// no earlier than quiet).
	fnT   func(now time.Time)
	tag   EffectTag
	tagFn func() EffectTag
	quiet time.Time
}

// fire invokes the event's callback; tagged events receive their own
// timestamp as the explicit firing instant.
func (e *event) fire() {
	if e.fnT != nil {
		e.fnT(e.at)
		return
	}
	e.fn()
}

// less orders events by (at, seq) — the global firing order.
func (e *event) less(o *event) bool {
	if e.at.Equal(o.at) {
		return e.seq < o.seq
	}
	return e.at.Before(o.at)
}

// eventHeap is the overflow queue ordering events by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].less(h[j]) }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return
}

// Wheel geometry. Slots bucket events by absolute tick index, so an
// event's slot is a mask away; wheelSpan is the scheduling horizon —
// pushes at or beyond it overflow to the heap. The one-tick margin keeps
// every slot's occupancy unambiguous: two wheel events sharing a slot
// always share the same absolute tick.
const (
	wheelSlots = 256
	slotMask   = wheelSlots - 1
	wheelTick  = time.Minute
	wheelSpan  = wheelTick * (wheelSlots - 1)
)

// slotIndex maps an instant to its wheel bucket.
func slotIndex(t time.Time) int {
	return int(uint64(t.UnixNano())/uint64(wheelTick)) & slotMask
}

// slot is one wheel bucket: events within one tick-width window, sorted
// lazily — a push appends, the first pop of a dirty slot sorts the
// pending tail once, and subsequent pops advance head for free.
type slot struct {
	evs    []*event
	head   int // evs[:head] already fired (entries nil'd for GC)
	sorted bool
}

func (sl *slot) add(ev *event) {
	if sl.head == len(sl.evs) {
		sl.evs = sl.evs[:0]
		sl.head = 0
	}
	sl.evs = append(sl.evs, ev)
	sl.sorted = len(sl.evs)-sl.head == 1
}

// min returns the earliest pending event, sorting the tail if dirty.
// The slot must be non-empty.
func (sl *slot) min() *event {
	if !sl.sorted {
		pend := sl.evs[sl.head:]
		sort.Slice(pend, func(i, j int) bool { return pend[i].less(pend[j]) })
		sl.sorted = true
	}
	return sl.evs[sl.head]
}

func (sl *slot) empty() bool { return sl.head == len(sl.evs) }

// push stores an event; the caller holds s.mu. Instants in the past
// clamp to now so they fire on the next dispatch.
func (s *Sim) push(at time.Time, fn func(), par bool) {
	s.pushEvent(at, &event{fn: fn, par: par})
}

// pushEvent assigns (at, seq) to ev and stores it; the caller holds s.mu
// and fills every other field. Instants in the past clamp to now so they
// fire on the next dispatch. While a lookahead window is firing, tagged
// events that order before an active conflict group's final member are
// diverted to that group (lookahead.go) instead of the queue, so the
// group can fire them at their correct serial position.
func (s *Sim) pushEvent(at time.Time, ev *event) {
	if at.Before(s.now) {
		at = s.now
	}
	s.seq++
	ev.at, ev.seq = at, s.seq
	s.scheduled.Add(1)
	if ev.fnT != nil && len(s.laGroups) > 0 && s.routeToWindow(ev) {
		return
	}
	s.place(ev)
}

// place stores ev — whose at and seq are already assigned — in the wheel
// or the overflow heap; the caller holds s.mu.
func (s *Sim) place(ev *event) {
	if ev.at.Sub(s.now) < wheelSpan {
		idx := slotIndex(ev.at)
		s.wheel[idx].add(ev)
		s.occ[idx>>6] |= 1 << (idx & 63)
		s.wheelLen++
	} else {
		heap.Push(&s.overflow, ev)
	}
}

// wheelMin returns the earliest wheel event and its slot without
// removing it, or (nil, -1) when the wheel is empty. Every pending event
// is at or after s.now, so the occupancy scan starts at now's slot and
// walks the ring once, skipping empty 64-slot words.
func (s *Sim) wheelMin() (*event, int) {
	if s.wheelLen == 0 {
		return nil, -1
	}
	start := slotIndex(s.now)
	for off := 0; off < wheelSlots; {
		idx := (start + off) & slotMask
		if idx&63 == 0 && off+64 <= wheelSlots && s.occ[idx>>6] == 0 {
			off += 64
			continue
		}
		if s.occ[idx>>6]&(1<<(idx&63)) != 0 {
			return s.wheel[idx].min(), idx
		}
		off++
	}
	return nil, -1 // unreachable while wheelLen > 0
}

// peek returns the earliest pending event across wheel and overflow,
// with the wheel slot it lives in (-1 = overflow heap).
func (s *Sim) peek() (*event, int) {
	wev, idx := s.wheelMin()
	var hev *event
	if len(s.overflow) > 0 {
		hev = s.overflow[0]
	}
	switch {
	case wev == nil:
		return hev, -1
	case hev == nil || wev.less(hev):
		return wev, idx
	default:
		return hev, -1
	}
}

// popAt removes the event peek reported at idx.
func (s *Sim) popAt(idx int) *event {
	if idx < 0 {
		return heap.Pop(&s.overflow).(*event)
	}
	sl := &s.wheel[idx]
	ev := sl.min()
	sl.evs[sl.head] = nil
	sl.head++
	if sl.empty() {
		sl.evs = sl.evs[:0]
		sl.head = 0
		s.occ[idx>>6] &^= 1 << (idx & 63)
	}
	s.wheelLen--
	return ev
}

// popDue removes and returns the earliest event, or nil when none is
// pending (or none is due when bounded by deadline).
func (s *Sim) popDue(deadline time.Time, bounded bool) *event {
	ev, idx := s.peek()
	if ev == nil || (bounded && ev.at.After(deadline)) {
		return nil
	}
	return s.popAt(idx)
}

// popGroup removes every due event sharing the earliest timestamp,
// appending them to buf in schedule order.
func (s *Sim) popGroup(buf []*event, deadline time.Time, bounded bool) []*event {
	first := s.popDue(deadline, bounded)
	if first == nil {
		return buf
	}
	buf = append(buf, first)
	for {
		ev, idx := s.peek()
		if ev == nil || !ev.at.Equal(first.at) {
			return buf
		}
		buf = append(buf, s.popAt(idx))
	}
}
