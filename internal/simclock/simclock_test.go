package simclock

import (
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2023, 11, 1, 0, 0, 0, 0, time.UTC)

func TestSimNowStartsAtEpoch(t *testing.T) {
	s := NewSim(epoch)
	if !s.Now().Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", s.Now(), epoch)
	}
}

func TestAdvanceFiresInOrder(t *testing.T) {
	s := NewSim(epoch)
	var got []int
	s.After(3*time.Second, func() { got = append(got, 3) })
	s.After(1*time.Second, func() { got = append(got, 1) })
	s.After(2*time.Second, func() { got = append(got, 2) })
	n := s.Advance(5 * time.Second)
	if n != 3 {
		t.Fatalf("Advance fired %d, want 3", n)
	}
	for i, v := range []int{1, 2, 3} {
		if got[i] != v {
			t.Fatalf("order %v, want [1 2 3]", got)
		}
	}
	if want := epoch.Add(5 * time.Second); !s.Now().Equal(want) {
		t.Fatalf("Now() = %v, want %v", s.Now(), want)
	}
}

func TestAdvanceStopsAtDeadline(t *testing.T) {
	s := NewSim(epoch)
	fired := false
	s.After(10*time.Second, func() { fired = true })
	s.Advance(5 * time.Second)
	if fired {
		t.Fatal("event beyond deadline fired")
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
	s.Advance(5 * time.Second)
	if !fired {
		t.Fatal("event at deadline did not fire")
	}
}

func TestEqualTimestampsFireInScheduleOrder(t *testing.T) {
	s := NewSim(epoch)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(time.Second, func() { got = append(got, i) })
	}
	s.Advance(time.Second)
	for i := range got {
		if got[i] != i {
			t.Fatalf("schedule order broken: %v", got)
		}
	}
}

func TestCallbackMaySchedule(t *testing.T) {
	s := NewSim(epoch)
	var times []time.Time
	var rec func()
	rec = func() {
		times = append(times, s.Now())
		if len(times) < 4 {
			s.After(time.Minute, rec)
		}
	}
	s.After(time.Minute, rec)
	s.Run()
	if len(times) != 4 {
		t.Fatalf("got %d firings, want 4", len(times))
	}
	for i, ts := range times {
		want := epoch.Add(time.Duration(i+1) * time.Minute)
		if !ts.Equal(want) {
			t.Fatalf("firing %d at %v, want %v", i, ts, want)
		}
	}
}

func TestAtClampsToPast(t *testing.T) {
	s := NewSim(epoch)
	fired := false
	s.At(epoch.Add(-time.Hour), func() { fired = true })
	s.Advance(0)
	if !fired {
		t.Fatal("past-scheduled event should fire immediately")
	}
}

func TestNextAt(t *testing.T) {
	s := NewSim(epoch)
	if _, ok := s.NextAt(); ok {
		t.Fatal("NextAt on empty queue should report !ok")
	}
	s.After(42*time.Second, func() {})
	at, ok := s.NextAt()
	if !ok || !at.Equal(epoch.Add(42*time.Second)) {
		t.Fatalf("NextAt = %v, %v", at, ok)
	}
}

func TestRunUntil(t *testing.T) {
	s := NewSim(epoch)
	count := 0
	for i := 1; i <= 10; i++ {
		s.After(time.Duration(i)*time.Hour, func() { count++ })
	}
	s.RunUntil(epoch.Add(4 * time.Hour))
	if count != 4 {
		t.Fatalf("fired %d, want 4", count)
	}
}

func TestTickerFiresPeriodically(t *testing.T) {
	s := NewSim(epoch)
	var ticks []time.Time
	tk := NewTicker(s, 10*time.Minute, func(now time.Time) { ticks = append(ticks, now) })
	s.Advance(35 * time.Minute)
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks, want 3", len(ticks))
	}
	tk.Stop()
	s.Advance(time.Hour)
	if len(ticks) != 3 {
		t.Fatalf("ticker fired after Stop: %d", len(ticks))
	}
}

func TestConcurrentScheduling(t *testing.T) {
	s := NewSim(epoch)
	var wg sync.WaitGroup
	var mu sync.Mutex
	count := 0
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.After(time.Duration(i)*time.Millisecond, func() {
				mu.Lock()
				count++
				mu.Unlock()
			})
		}(i)
	}
	wg.Wait()
	s.Run()
	if count != 50 {
		t.Fatalf("fired %d, want 50", count)
	}
}

func TestRealClockAfter(t *testing.T) {
	done := make(chan struct{})
	Real{}.After(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Real.After never fired")
	}
}

func TestRealClockAt(t *testing.T) {
	done := make(chan struct{})
	Real{}.At(time.Now().Add(-time.Second), func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Real.At in the past never fired")
	}
}

func BenchmarkSimScheduleAndRun(b *testing.B) {
	s := NewSim(epoch)
	for i := 0; i < b.N; i++ {
		s.After(time.Duration(i%1000)*time.Millisecond, func() {})
	}
	b.ResetTimer()
	s.Run()
}
