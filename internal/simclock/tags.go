// Effect tags: the scheduling side of the lookahead engine (DESIGN.md
// §12). An event scheduled with a tag declares, at schedule time, the
// set of state it may touch when it fires — derived from its closure's
// provenance (the domain it mutates, the per-TLD RDAP lane it drains,
// the nameserver lane it times out on). The lookahead drain
// (lookahead.go) uses mask intersection to decide which events from
// *different* timestamps commute and may fire together; untagged events
// remain full ordering barriers, so every pre-existing schedule site is
// lookahead-safe by default.
package simclock

import (
	"container/heap"
	"time"

	"darkdns/internal/dnsname"
)

// EffectTag is a 64-atom effect-set mask. Each bit is one abstract
// state atom; two events commute across timestamps when their masks are
// disjoint. Atoms are derived by hashing a provenance label into one of
// 64 bits, so distinct labels may collide — a collision only creates a
// spurious conflict (events serialize that did not need to), never a
// missed one. The zero mask means "untagged": the event is an ordering
// barrier and the lookahead drain will not speculate past it.
type EffectTag uint64

// DomainTag returns the effect atom for one domain's slice of state:
// its DomainStore shard, its registry ledger entry, its candidate-shard
// entry. Callers pass the canonical name so every engine that touches
// the same domain lands on the same atom.
func DomainTag(domain string) EffectTag {
	return 1 << (dnsname.Hash64(domain) & 63)
}

// LaneTag returns the effect atom for a named engine lane — a per-TLD
// RDAP dispatch queue ("rdap/com"), a per-nameserver rate lane
// ("resolver/127.0.0.1:5353"). Lanes share the same 64-atom space as
// domains; a domain/lane collision is, as above, merely conservative.
func LaneTag(label string) EffectTag {
	return 1 << (dnsname.Hash64(label) & 63)
}

// TaggedTimed is one effect-tagged schedule entry.
//
// The callback is time-explicit: it receives the event's firing instant
// and must derive every timestamp it records or schedules from that
// argument — never from Clock.Now(), which under the lookahead drain
// may still sit at an earlier barrier while the event fires
// speculatively. Follow-up events the callback schedules must carry a
// mask that is a subset of this event's mask (or be untagged, which is
// always safe).
type TaggedTimed struct {
	At  time.Time
	Tag EffectTag // static effect mask; 0 defers to TagAt
	// TagAt, when non-nil, resolves the mask at scan time instead of
	// schedule time — for events whose effect set grows after scheduling
	// (a fleet round's watch set). It is called with the Sim lock held
	// and must not block or touch the clock: reading an atomic is the
	// intended shape. A nil TagAt with a zero Tag marks the event
	// untagged (an ordering barrier).
	TagAt func() EffectTag
	// Quiet, when non-zero, is the earliest instant at which this event's
	// callback may spawn an *untagged* follow-up (a registration's future
	// certificate request). The lookahead scan will not select events
	// later than Quiet into the same window, so the spawned barrier is
	// never jumped over.
	Quiet time.Time
	// Par carries AfterPar's same-instant commutativity contract, honoured
	// when a tagged event lands in a classic batched group.
	Par bool
	Fn  func(now time.Time)
}

// TagScheduler is the optional Clock extension for effect-tagged
// scheduling. Sim implements it; engines probe for it and fall back to
// untagged Clock.After (always safe) on other clocks.
type TagScheduler interface {
	// ScheduleTagged schedules one tagged event at an absolute instant.
	ScheduleTagged(e TaggedTimed)
	// AfterTagged schedules fn with a static mask once d has elapsed.
	AfterTagged(d time.Duration, tag EffectTag, fn func(now time.Time))
}

// AfterTagged schedules fn on clk with the given effect mask when the
// clock supports tagged scheduling, and falls back to a plain untagged
// After otherwise (the callback then receives clk.Now(), which is the
// firing instant on every non-lookahead drain).
func AfterTagged(clk Clock, d time.Duration, tag EffectTag, fn func(now time.Time)) {
	if ts, ok := clk.(TagScheduler); ok {
		ts.AfterTagged(d, tag, fn)
		return
	}
	clk.After(d, func() { fn(clk.Now()) })
}

// ScheduleTagged implements TagScheduler.
func (s *Sim) ScheduleTagged(e TaggedTimed) {
	s.mu.Lock()
	s.pushEvent(e.At, &event{fnT: e.Fn, par: e.Par, tag: e.Tag, tagFn: e.TagAt, quiet: e.Quiet})
	s.mu.Unlock()
}

// AfterTagged implements TagScheduler.
func (s *Sim) AfterTagged(d time.Duration, tag EffectTag, fn func(now time.Time)) {
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	s.pushEvent(s.now.Add(d), &event{fnT: fn, tag: tag})
	s.mu.Unlock()
}

// ScheduleBatchTagged schedules every tagged entry under a single lock
// acquisition, assigning sequence numbers in slice order — the tagged
// counterpart of ScheduleBatch, sharing its far-future bulk-heapify
// path (worldsim's commit engine installs whole tagged lifecycle
// timelines through it).
func (s *Sim) ScheduleBatchTagged(entries []TaggedTimed) {
	if len(entries) == 0 {
		return
	}
	s.mu.Lock()
	far := 0
	for i := range entries {
		at := entries[i].At
		if at.Before(s.now) {
			at = s.now
		}
		if at.Sub(s.now) >= wheelSpan {
			far++
		}
	}
	bulk := far >= 64 && far*4 >= len(s.overflow)
	for i := range entries {
		e := &entries[i]
		at := e.At
		if at.Before(s.now) {
			at = s.now
		}
		ev := &event{fnT: e.Fn, par: e.Par, tag: e.Tag, tagFn: e.TagAt, quiet: e.Quiet}
		if bulk && at.Sub(s.now) >= wheelSpan {
			s.seq++
			ev.at, ev.seq = at, s.seq
			s.overflow = append(s.overflow, ev)
			s.scheduled.Add(1)
			continue
		}
		s.pushEvent(at, ev)
	}
	if bulk {
		heap.Init(&s.overflow)
	}
	s.mu.Unlock()
}
