package simclock_test

import (
	"fmt"
	"time"

	"darkdns/internal/simclock"
)

func ExampleSim() {
	start := time.Date(2023, 11, 1, 0, 0, 0, 0, time.UTC)
	clk := simclock.NewSim(start)
	clk.After(24*time.Hour, func() {
		fmt.Println("daily snapshot at", clk.Now().Format("Jan 2 15:04"))
	})
	clk.After(5*time.Minute, func() {
		fmt.Println("rapid update at", clk.Now().Format("Jan 2 15:04"))
	})
	clk.Advance(48 * time.Hour) // two simulated days, instantly
	// Output:
	// rapid update at Nov 1 00:05
	// daily snapshot at Nov 2 00:00
}
