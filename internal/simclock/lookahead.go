// Lookahead drain: the seventh engine (DESIGN.md §12). RunBatched
// (simclock.go) broke the one-event-at-a-time ceiling but still fires
// one *timestamp* at a time; the lookahead drain breaks the
// one-timestamp ceiling. It pops a window of future timestamps whose
// events are all effect-tagged (tags.go), partitions them into conflict
// groups by transitive mask intersection, and fires disjoint groups
// concurrently — events from different instants executing in the same
// wall-clock round. Any tag conflict becomes an ordering barrier inside
// its group (the group fires in (timestamp, seq) order), and any
// untagged event stops the scan and fires as a classic full-stop
// batched round. Under the tagged-callback contract (time-explicit
// callbacks, masks covering every touched atom, follow-up masks ⊆
// parent mask) the result is byte-identical to the serial drain at any
// window and worker count.
package simclock

import (
	"sort"
	"sync/atomic"
	"time"

	"darkdns/internal/workpool"
)

// RunLookahead drains every pending event, firing effect-disjoint
// events from up to `window` distinct timestamps concurrently on a
// worker pool of the given width. window ≤ 1 still exercises the tagged
// machinery but never crosses timestamps; workers ≤ 1 fires every group
// serially (exact serial order). Returns the number of events fired.
func (s *Sim) RunLookahead(window, workers int) int {
	return s.drainLookahead(unbounded, window, workers)
}

// RunUntilLookahead is RunLookahead bounded by an absolute deadline.
func (s *Sim) RunUntilLookahead(t time.Time, window, workers int) int {
	return s.drainLookahead(func(time.Time) (time.Time, bool) { return t, true }, window, workers)
}

// drainLookahead alternates between two modes: scan a contiguous prefix
// of tagged events spanning up to `window` distinct timestamps and fire
// it as conflict groups, or — when the earliest pending event is
// untagged — fall back to one classic same-instant batched round, which
// advances committed time. Committed time (s.now) never advances past a
// barrier: speculative fires leave it untouched, so Watch admissions,
// ticker rearms and every other untagged callback observe exactly the
// serial clock.
func (s *Sim) drainLookahead(deadlineOf func(time.Time) (time.Time, bool), window, workers int) int {
	if window < 1 {
		window = 1
	}
	if workers < 1 {
		workers = 1
	}
	fired := 0
	var group []*event
	s.mu.Lock()
	deadline, bounded := deadlineOf(s.now)
	for {
		sel, masks := s.scanWindow(window, deadline, bounded)
		if len(sel) == 0 {
			// Earliest event is untagged (or nothing is due): one classic
			// batched round, committing time at its instant.
			group = s.popGroup(group[:0], deadline, bounded)
			if len(group) == 0 {
				break
			}
			s.now = group[0].at
			s.barriers.Add(int64(len(group)))
			s.mu.Unlock()
			s.fireGroup(group, workers)
			fired += len(group)
			s.mu.Lock()
			continue
		}
		s.windows.Add(1)
		s.mu.Unlock()
		fired += s.fireWindow(sel, masks, workers)
		s.mu.Lock()
	}
	if bounded && deadline.After(s.now) {
		s.now = deadline
	}
	s.mu.Unlock()
	return fired
}

// scanWindow pops, under s.mu, a contiguous prefix of the pending queue
// in (timestamp, seq) order consisting only of tagged due events, and
// returns it with each event's resolved mask. The scan stops — leaving
// the stopping event in the queue — at the first untagged event, at the
// first event past the quiet horizon (the minimum Quiet over events
// already selected: beyond it a selected event may spawn an untagged
// barrier), at the first event past the deadline, and when admitting
// the next event would exceed `window` distinct timestamps.
func (s *Sim) scanWindow(window int, deadline time.Time, bounded bool) ([]*event, []EffectTag) {
	var sel []*event
	var masks []EffectTag
	var lastAt, minQuiet time.Time
	distinct := 0
	for {
		ev, idx := s.peek()
		if ev == nil || (bounded && ev.at.After(deadline)) {
			break
		}
		if ev.fnT == nil {
			break // untagged: full barrier
		}
		mask := ev.tag
		if ev.tagFn != nil {
			mask = ev.tagFn()
		}
		if mask == 0 {
			break // dynamic mask resolved empty: treat as untagged
		}
		if !minQuiet.IsZero() && ev.at.After(minQuiet) {
			break // a selected event may spawn a barrier at minQuiet
		}
		if distinct == 0 || !ev.at.Equal(lastAt) {
			if distinct == window {
				break
			}
			distinct++
			lastAt = ev.at
		}
		s.popAt(idx)
		sel = append(sel, ev)
		masks = append(masks, mask)
		if !ev.quiet.IsZero() && (minQuiet.IsZero() || ev.quiet.Before(minQuiet)) {
			minQuiet = ev.quiet
		}
	}
	return sel, masks
}

// fireWindow partitions one scanned window into conflict groups by
// transitive mask intersection and fires them in two phases, outside
// s.mu. Phase A: every group containing an event with a Quiet horizon
// fires serially on the draining goroutine, all such groups interleaved
// in global (timestamp, seq) order — their callbacks may spawn untagged
// follow-ups (certificate requests), and serial firing gives those
// spawns the same sequence numbers the serial drain would have
// assigned. Phase B: the remaining groups fire concurrently on the
// worker pool, one task per group, each group internally in
// (timestamp, seq) order; their masks are pairwise disjoint and their
// callbacks time-explicit, so cross-group interleaving is unobservable.
func (s *Sim) fireWindow(sel []*event, masks []EffectTag, workers int) int {
	n := len(sel)
	firstAt := sel[0].at

	// Union-find over selection indices; mask/hasQuiet live at the root.
	parent := make([]int, n)
	umask := make([]EffectTag, n)
	hasQuiet := make([]bool, n)
	for i := 0; i < n; i++ {
		parent[i], umask[i], hasQuiet[i] = i, masks[i], !sel[i].quiet.IsZero()
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	var conflicts int64
	for i := 1; i < n; i++ {
		joined := false
		// A merge can grow i's union mask into intersecting a group we
		// already passed, so sweep j until no merge happens.
		for changed := true; changed; {
			changed = false
			for j := 0; j < i; j++ {
				ri, rj := find(i), find(j)
				if ri == rj || umask[ri]&umask[rj] == 0 {
					continue
				}
				parent[rj] = ri
				umask[ri] |= umask[rj]
				hasQuiet[ri] = hasQuiet[ri] || hasQuiet[rj]
				joined, changed = true, true
			}
		}
		if joined {
			conflicts++
		}
	}

	// Gather groups in first-appearance order; member lists are ascending
	// (scan order == (timestamp, seq) order) by construction.
	members := make(map[int][]int, n)
	var roots []int
	for i := 0; i < n; i++ {
		r := find(i)
		if _, ok := members[r]; !ok {
			roots = append(roots, r)
		}
		members[r] = append(members[r], i)
	}

	// Partition: phase A merges every quiet-bearing group into one
	// serial sequence (global order); phase B groups fire on the pool.
	var quietIdx []int
	var quietMask EffectTag
	var tasks [][]int
	var taskMasks []EffectTag
	for _, r := range roots {
		if hasQuiet[r] {
			quietIdx = append(quietIdx, members[r]...)
			quietMask |= umask[r]
		} else {
			tasks = append(tasks, members[r])
			taskMasks = append(taskMasks, umask[r])
		}
	}
	sort.Ints(quietIdx)

	// Register every group as a live routing target before anything
	// fires: a callback scheduling a tagged follow-up that orders before
	// its group's final member would otherwise be jumped over (the later
	// member was popped at scan time), so pushEvent diverts such spawns
	// to the group's pending list and the firing loop below interleaves
	// them at their exact (timestamp, seq) position — what the serial
	// drain would have done.
	groups := make([]*laGroup, 0, len(tasks)+1)
	var quietG *laGroup
	if len(quietIdx) > 0 {
		quietG = &laGroup{mask: quietMask, lastAt: sel[quietIdx[len(quietIdx)-1]].at}
		groups = append(groups, quietG)
	}
	taskGs := make([]*laGroup, len(tasks))
	for k := range tasks {
		t := tasks[k]
		taskGs[k] = &laGroup{mask: taskMasks[k], lastAt: sel[t[len(t)-1]].at}
		groups = append(groups, taskGs[k])
	}
	s.mu.Lock()
	s.laGroups = groups
	s.mu.Unlock()

	var stolen, specStolen atomic.Int64
	fireRun := func(g *laGroup, idxs []int) {
		for _, i := range idxs {
			st, sp := s.drainPendingBefore(g, sel[i].at, firstAt)
			stolen.Add(st)
			specStolen.Add(sp)
			sel[i].fire()
		}
		s.closeGroup(g)
	}

	// Phase A: quiet-bearing groups, serial, in global order.
	if quietG != nil {
		fireRun(quietG, quietIdx)
	}
	// Phase B: disjoint groups on the pool.
	if len(tasks) > 0 {
		workpool.Run(len(tasks), workers, func(k int) { fireRun(taskGs[k], tasks[k]) })
	}
	s.mu.Lock()
	s.laGroups = nil
	s.mu.Unlock()

	var spec int64
	for _, ev := range sel {
		if !ev.at.Equal(firstAt) {
			spec++
		}
	}
	total := n + int(stolen.Load())
	s.specFired.Add(spec + specStolen.Load())
	s.conflicts.Add(conflicts)
	s.fired.Add(int64(total))
	return total
}

// laGroup is one conflict group of the currently-firing lookahead
// window, kept registered in Sim.laGroups while its members fire so
// pushEvent can divert in-window tagged spawns to it.
type laGroup struct {
	mask    EffectTag // union effect mask of the group's members
	lastAt  time.Time // instant of the group's final member
	pending []*event  // in-window spawns awaiting their firing position
}

// routeToWindow diverts ev — a tagged event being scheduled while a
// lookahead window fires — to the conflict group it belongs to, when its
// instant orders before that group's final member. The caller holds
// s.mu. Under the tagged contract a follow-up's mask is a subset of its
// parent's, so at most one group matches; spawns carry sequence numbers
// above every selected event's, so an equal-instant spawn correctly
// stays in the main queue (it fires after the group's member).
func (s *Sim) routeToWindow(ev *event) bool {
	mask := ev.tag
	if ev.tagFn != nil {
		mask = ev.tagFn()
	}
	if mask == 0 {
		return false
	}
	for _, g := range s.laGroups {
		if mask&g.mask != 0 && ev.at.Before(g.lastAt) {
			g.pending = append(g.pending, ev)
			return true
		}
	}
	return false
}

// drainPendingBefore fires, in (timestamp, seq) order, every pending
// spawn of g that precedes the group member at memberAt (strictly
// earlier instant — see routeToWindow for the equal-instant case).
// Firing a spawn may route further spawns to g, so the scan repeats
// until none precede the member. Returns the number fired and how many
// fired away from the window's first instant (speculative fires).
func (s *Sim) drainPendingBefore(g *laGroup, memberAt, firstAt time.Time) (fired, spec int64) {
	for {
		s.mu.Lock()
		best := -1
		for j, ev := range g.pending {
			if !ev.at.Before(memberAt) {
				continue
			}
			if best == -1 || ev.less(g.pending[best]) {
				best = j
			}
		}
		if best == -1 {
			s.mu.Unlock()
			return fired, spec
		}
		ev := g.pending[best]
		g.pending[best] = g.pending[len(g.pending)-1]
		g.pending = g.pending[:len(g.pending)-1]
		s.mu.Unlock()
		ev.fire()
		fired++
		if !ev.at.Equal(firstAt) {
			spec++
		}
	}
}

// closeGroup retires g as a routing target and returns any events its
// final member spawned to the main queue, where later windows (or
// barrier rounds) fire them in normal order.
func (s *Sim) closeGroup(g *laGroup) {
	s.mu.Lock()
	for i, og := range s.laGroups {
		if og == g {
			s.laGroups = append(s.laGroups[:i], s.laGroups[i+1:]...)
			break
		}
	}
	for _, ev := range g.pending {
		s.place(ev)
	}
	g.pending = nil
	s.mu.Unlock()
}
