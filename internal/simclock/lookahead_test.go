package simclock

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLookaheadFiresAcrossTimestamps: the engine's reason to exist —
// effect-disjoint events at distinct instants fire in one window, each
// receiving its own scheduled instant (not the lagging committed time),
// and the speculative-fire counter proves timestamps were crossed.
func TestLookaheadFiresAcrossTimestamps(t *testing.T) {
	s := NewSim(epoch)
	var mu sync.Mutex
	got := map[string]time.Time{}
	for i, d := range []string{"a.com", "b.net", "c.org", "d.io"} {
		d := d
		s.ScheduleTagged(TaggedTimed{
			At:  epoch.Add(time.Duration(i) * time.Minute),
			Tag: DomainTag(d),
			Fn: func(now time.Time) {
				mu.Lock()
				got[d] = now
				mu.Unlock()
			},
		})
	}
	if n := s.RunLookahead(8, 4); n != 4 {
		t.Fatalf("fired %d, want 4", n)
	}
	for i, d := range []string{"a.com", "b.net", "c.org", "d.io"} {
		want := epoch.Add(time.Duration(i) * time.Minute)
		if !got[d].Equal(want) {
			t.Fatalf("%s fired with now=%v, want %v", d, got[d], want)
		}
	}
	st := s.Stats()
	if st.Windows == 0 {
		t.Fatalf("Windows = 0, want ≥ 1")
	}
	if st.SpecFired != 3 {
		t.Fatalf("SpecFired = %d, want 3 (events beyond the window's first instant)", st.SpecFired)
	}
}

// TestLookaheadWindowOneNeverSpeculates: window 1 exercises the tagged
// machinery but must stay within a single instant per round.
func TestLookaheadWindowOneNeverSpeculates(t *testing.T) {
	s := NewSim(epoch)
	for i := 0; i < 6; i++ {
		s.ScheduleTagged(TaggedTimed{
			At:  epoch.Add(time.Duration(i) * time.Second),
			Tag: DomainTag(fmt.Sprintf("d%d.com", i)),
			Fn:  func(time.Time) {},
		})
	}
	if n := s.RunLookahead(1, 4); n != 6 {
		t.Fatalf("fired %d, want 6", n)
	}
	if st := s.Stats(); st.SpecFired != 0 {
		t.Fatalf("SpecFired = %d, want 0 at window 1", st.SpecFired)
	}
}

// TestLookaheadSameAtomStaysOrdered: two events sharing an effect atom
// land in one conflict group and fire in (timestamp, seq) order even at
// full window and pool width.
func TestLookaheadSameAtomStaysOrdered(t *testing.T) {
	s := NewSim(epoch)
	var order []int
	var mu sync.Mutex
	rec := func(i int) func(time.Time) {
		return func(time.Time) {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}
	}
	tag := DomainTag("shared.com")
	s.ScheduleTagged(TaggedTimed{At: epoch.Add(2 * time.Minute), Tag: tag, Fn: rec(2)})
	s.ScheduleTagged(TaggedTimed{At: epoch.Add(1 * time.Minute), Tag: tag, Fn: rec(1)})
	s.ScheduleTagged(TaggedTimed{At: epoch.Add(3 * time.Minute), Tag: tag, Fn: rec(3)})
	s.RunLookahead(16, 8)
	for i, v := range []int{1, 2, 3} {
		if order[i] != v {
			t.Fatalf("order %v, want [1 2 3]", order)
		}
	}
	if st := s.Stats(); st.Conflicts == 0 {
		t.Fatalf("Conflicts = 0, want > 0 for same-atom events")
	}
}

// TestLookaheadUntaggedIsBarrier: an untagged event between tagged ones
// stops the scan — everything before it fires first, the barrier fires
// at its own committed instant, and only then does the tail fire. The
// barrier callback observes Clock.Now() == its own instant.
func TestLookaheadUntaggedIsBarrier(t *testing.T) {
	s := NewSim(epoch)
	var order []string
	var mu sync.Mutex
	rec := func(l string) {
		mu.Lock()
		order = append(order, l)
		mu.Unlock()
	}
	s.ScheduleTagged(TaggedTimed{At: epoch.Add(1 * time.Minute), Tag: DomainTag("a.com"),
		Fn: func(time.Time) { rec("a") }})
	barrierAt := epoch.Add(2 * time.Minute)
	s.After(2*time.Minute, func() {
		if !s.Now().Equal(barrierAt) {
			t.Errorf("barrier saw Now()=%v, want %v", s.Now(), barrierAt)
		}
		rec("barrier")
	})
	s.ScheduleTagged(TaggedTimed{At: epoch.Add(3 * time.Minute), Tag: DomainTag("b.net"),
		Fn: func(time.Time) { rec("c") }})
	s.RunLookahead(16, 4)
	want := []string{"a", "barrier", "c"}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
	if st := s.Stats(); st.Barriers != 1 {
		t.Fatalf("Barriers = %d, want 1", st.Barriers)
	}
}

// TestLookaheadQuietHorizon: an event declaring a Quiet instant caps the
// scan — later events are not selected into its window, so an untagged
// follow-up spawned at Quiet is never jumped over.
func TestLookaheadQuietHorizon(t *testing.T) {
	s := NewSim(epoch)
	var order []string
	var mu sync.Mutex
	rec := func(l string) {
		mu.Lock()
		order = append(order, l)
		mu.Unlock()
	}
	s.ScheduleTagged(TaggedTimed{
		At:    epoch.Add(1 * time.Minute),
		Tag:   DomainTag("a.com"),
		Quiet: epoch.Add(5 * time.Minute),
		Fn: func(now time.Time) {
			rec("reg")
			// The untagged follow-up this event warned about via Quiet.
			s.At(now.Add(4*time.Minute), func() { rec("cert") })
		},
	})
	// Past the quiet horizon: must not enter the first window.
	s.ScheduleTagged(TaggedTimed{At: epoch.Add(10 * time.Minute), Tag: DomainTag("b.net"),
		Fn: func(time.Time) { rec("late") }})
	s.RunLookahead(16, 4)
	want := []string{"reg", "cert", "late"}
	for i, v := range want {
		if len(order) <= i || order[i] != v {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

// TestLookaheadDynamicTagAt: a TagAt closure is resolved at scan time,
// and a resolved-zero mask degrades the event to an untagged barrier.
func TestLookaheadDynamicTagAt(t *testing.T) {
	s := NewSim(epoch)
	var mask atomic.Uint64
	mask.Store(uint64(DomainTag("x.com")))
	fired := 0
	s.ScheduleTagged(TaggedTimed{
		At:    epoch.Add(time.Minute),
		TagAt: func() EffectTag { return EffectTag(mask.Load()) },
		Fn:    func(time.Time) { fired++ },
	})
	s.ScheduleTagged(TaggedTimed{At: epoch.Add(2 * time.Minute), Tag: DomainTag("y.net"),
		Fn: func(time.Time) { fired++ }})
	s.RunLookahead(8, 2)
	if fired != 2 {
		t.Fatalf("fired %d, want 2", fired)
	}
	if st := s.Stats(); st.SpecFired == 0 {
		t.Fatalf("SpecFired = 0, want > 0 (dynamic tag should allow speculation)")
	}

	// Zero-resolving TagAt: both events become barrier rounds.
	s2 := NewSim(epoch)
	s2.ScheduleTagged(TaggedTimed{
		At:    epoch.Add(time.Minute),
		TagAt: func() EffectTag { return 0 },
		Fn:    func(time.Time) {},
	})
	s2.ScheduleTagged(TaggedTimed{At: epoch.Add(2 * time.Minute), Tag: DomainTag("y.net"),
		Fn: func(time.Time) {}})
	s2.RunLookahead(8, 2)
	if st := s2.Stats(); st.SpecFired != 0 {
		t.Fatalf("SpecFired = %d, want 0 when the first event resolves untagged", st.SpecFired)
	}
}

// TestLookaheadMatchesSerialExactly: the determinism contract at engine
// level — a mixed tagged/untagged/conflicting timeline produces the same
// observable trace under the serial drain and under RunLookahead at
// several windows and worker counts. Tagged callbacks log their explicit
// instant; same-atom callbacks must interleave identically.
func TestLookaheadMatchesSerialExactly(t *testing.T) {
	build := func(s *Sim, log *[]string, mu *sync.Mutex) {
		rec := func(l string, at time.Time) {
			mu.Lock()
			*log = append(*log, fmt.Sprintf("%s@%s", l, at.Format(time.RFC3339)))
			mu.Unlock()
		}
		for i := 0; i < 40; i++ {
			i := i
			d := fmt.Sprintf("d%d.example", i%7) // 7 names → forced same-atom conflicts
			at := epoch.Add(time.Duration(i*13) * time.Second)
			s.ScheduleTagged(TaggedTimed{At: at, Tag: DomainTag(d), Fn: func(now time.Time) {
				rec(fmt.Sprintf("tag%d/%s", i, d), now)
				if i%5 == 0 {
					// Tagged follow-up under the same mask.
					s.ScheduleTagged(TaggedTimed{At: now.Add(90 * time.Second), Tag: DomainTag(d),
						Fn: func(n2 time.Time) { rec(fmt.Sprintf("fup%d/%s", i, d), n2) }})
				}
			}})
		}
		for i := 0; i < 8; i++ {
			i := i
			at := time.Duration(60+i*97) * time.Second
			s.After(at, func() { rec(fmt.Sprintf("bar%d", i), s.Now()) })
		}
	}
	var ref []string
	{
		s := NewSim(epoch)
		var mu sync.Mutex
		build(s, &ref, &mu)
		s.Run()
	}
	for _, cfg := range []struct{ window, workers int }{{1, 1}, {4, 2}, {16, 8}} {
		var got []string
		s := NewSim(epoch)
		var mu sync.Mutex
		build(s, &got, &mu)
		s.RunLookahead(cfg.window, cfg.workers)
		if len(got) != len(ref) {
			t.Fatalf("window=%d workers=%d: %d entries, want %d", cfg.window, cfg.workers, len(got), len(ref))
		}
		// Cross-group interleaving is unobservable only through state the
		// masks cover; the shared log is global, so compare as multisets
		// plus per-label-prefix order (same-atom events share a group and
		// must keep serial relative order).
		if !sameMultiset(got, ref) {
			t.Fatalf("window=%d workers=%d: trace multiset diverged", cfg.window, cfg.workers)
		}
		for atom := 0; atom < 7; atom++ {
			suffix := fmt.Sprintf("/d%d.example", atom)
			if a, b := filterContains(ref, suffix), filterContains(got, suffix); !equalSlices(a, b) {
				t.Fatalf("window=%d workers=%d: atom %d order diverged\nserial: %v\nlookahead: %v",
					cfg.window, cfg.workers, atom, a, b)
			}
		}
	}
}

func sameMultiset(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[string]int{}
	for _, s := range a {
		m[s]++
	}
	for _, s := range b {
		m[s]--
	}
	for _, n := range m {
		if n != 0 {
			return false
		}
	}
	return true
}

func filterContains(in []string, sub string) []string {
	var out []string
	for _, s := range in {
		if strings.Contains(s, sub) {
			out = append(out, s)
		}
	}
	return out
}

func equalSlices(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestLookaheadTagTableRaceHammer: tagged callbacks scheduling tagged
// follow-ups and external goroutines scheduling concurrently while the
// lookahead drain runs — the shape `go test -race` needs to see. Every
// event must fire exactly once.
func TestLookaheadTagTableRaceHammer(t *testing.T) {
	s := NewSim(epoch)
	var fired atomic.Int64
	const roots = 64
	var wg sync.WaitGroup
	for i := 0; i < roots; i++ {
		i := i
		d := fmt.Sprintf("h%d.example", i)
		s.ScheduleTagged(TaggedTimed{
			At:  epoch.Add(time.Duration(i%11) * time.Minute),
			Tag: DomainTag(d),
			Par: i%2 == 0,
			Fn: func(now time.Time) {
				fired.Add(1)
				if i%3 == 0 {
					s.ScheduleTagged(TaggedTimed{At: now.Add(30 * time.Second), Tag: DomainTag(d),
						Fn: func(time.Time) { fired.Add(1) }})
				}
			},
		})
	}
	// External concurrent schedulers racing the drain.
	wg.Add(4)
	for g := 0; g < 4; g++ {
		g := g
		go func() {
			defer wg.Done()
			for k := 0; k < 32; k++ {
				d := fmt.Sprintf("x%d-%d.example", g, k)
				s.ScheduleTagged(TaggedTimed{
					At:  epoch.Add(time.Duration(k%13) * time.Minute),
					Tag: DomainTag(d),
					Fn:  func(time.Time) { fired.Add(1) },
				})
			}
		}()
	}
	wg.Wait()
	total := s.RunLookahead(8, 4)
	want := int64(roots + roots/3 + 1 + 4*32)
	if fired.Load() != want || int64(total) != want {
		t.Fatalf("fired %d (drain reported %d), want %d", fired.Load(), total, want)
	}
}
