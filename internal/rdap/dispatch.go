// Asynchronous per-TLD RDAP dispatch engine.
//
// The paper's collection pipeline (§4.2) fires RDAP lookups from a fleet
// of Azure workers the moment a candidate clears screening; per-source
// rate limiting is what produces its ≈3 % failure rate. The Dispatcher
// reproduces that shape in-process: every admitted candidate enqueues
// into its TLD's bounded queue, queues drain through a worker pool once
// the queueing delay elapses, and saturated queues shed load with
// ErrRateLimited instead of blocking the ingest path.
//
// Determinism contract: queue state changes only at clock events
// (enqueues and drains), and a drain executes every due query at one
// simulated instant behind a completion barrier. Worker-pool width
// therefore parallelizes execution without reordering any observable —
// campaign reports are byte-identical across serial dispatch and any
// worker count. Failure injection draws from a generator derived from
// the dispatcher seed and the domain name alone, mirroring
// core.domainRand.
package rdap

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"darkdns/internal/dnsname"
	"darkdns/internal/simclock"
	"darkdns/internal/workpool"
)

// Query is one RDAP lookup handed to the Dispatcher.
type Query struct {
	Domain string
	// Delay is the queueing delay between detection and dispatch (the
	// paper's Azure worker hand-off): the query becomes due Delay after
	// Enqueue on the dispatcher's clock.
	Delay time.Duration
	// InjectFailure forces the query to fail with ErrRateLimited at
	// dispatch time without touching the backend. Callers that already
	// model collection failures deterministically (the core pipeline
	// draws them from its per-domain generator) decide injection
	// themselves; otherwise DispatcherConfig.FailureRate applies.
	InjectFailure bool
	// Done receives the outcome. It is called exactly once — from a
	// dispatch worker, or synchronously from Enqueue when the TLD queue
	// sheds the query — and must not block.
	Done func(*Record, error)
	// DoneAt, when set, is preferred over Done and additionally receives
	// the completion instant. Under a lookahead-draining clock the
	// dispatcher's due-timers are effect-tagged and may fire ahead of
	// committed time; DoneAt callers get the event's own instant where a
	// Done callback would have to read the (lagging) clock.
	DoneAt func(*Record, error, time.Time)
}

// finish reports the outcome through DoneAt or Done.
func (q *Query) finish(rec *Record, err error, now time.Time) {
	if q.DoneAt != nil {
		q.DoneAt(rec, err, now)
		return
	}
	if q.Done != nil {
		q.Done(rec, err)
	}
}

// DomainBatch is a set of queries enqueued together, the batch-oriented
// counterpart of Enqueue for callers that admit candidates in batches
// (core.HandleBatch builds one per event batch).
type DomainBatch []Query

// DispatcherConfig parameterizes the dispatch engine.
type DispatcherConfig struct {
	// Workers is the pool width draining each ready round. 1 (or 0)
	// executes serially on the drain goroutine.
	Workers int
	// QueueDepth bounds each TLD's backlog of admitted-but-incomplete
	// queries; Enqueue sheds the excess with ErrRateLimited. 0 means
	// unbounded (the campaign default: shedding would perturb the
	// serial/parallel determinism contract).
	QueueDepth int
	// Inflight caps how many of one TLD's queries execute concurrently.
	// 0 means unbounded.
	Inflight int
	// FailureRate injects collection failures for queries that do not
	// set InjectFailure themselves, drawn deterministically from
	// (Seed, domain). 0 disables dispatcher-side injection.
	FailureRate float64
	// Seed derives the failure-injection generator.
	Seed int64
}

// pendingQuery is a Query plus its enqueue bookkeeping.
type pendingQuery struct {
	Query
	at   time.Time // enqueue instant, for latency accounting
	fail bool      // resolved injection decision
}

// tldQueue is one TLD's dispatch state. All fields are guarded by mu;
// counters are read by Stats.
type tldQueue struct {
	tld string

	mu         sync.Mutex
	ready      []pendingQuery // due, awaiting a worker
	pending    int            // admitted and not yet completed
	inflight   int            // executing right now
	maxDepth   int            // deepest backlog observed
	completed  int64
	shed       int64
	latencySum time.Duration // enqueue→completion, summed over completions
}

// Dispatcher maintains per-TLD bounded query queues drained by worker
// pools. Safe for concurrent use.
type Dispatcher struct {
	cfg     DispatcherConfig
	clk     simclock.Clock
	backend Querier
	// backendAt is backend's time-explicit extension, resolved once at
	// construction. Non-nil enables effect-tagged due-timers: the
	// lookahead drain may then fire this dispatcher's queries ahead of
	// committed time, with the query evaluated at the event's own instant.
	// Wire backends (Client) leave it nil and every due-timer stays an
	// untagged barrier — always safe.
	backendAt QuerierAt

	// tlds is the queue directory: copy-on-write so the enqueue hot path
	// resolves its queue without locking (mirroring Mux routing).
	tlds cowMap[*tldQueue]

	enqueued  atomic.Int64
	completed atomic.Int64
	shed      atomic.Int64
	failed    atomic.Int64
}

// NewDispatcher creates a dispatch engine executing lookups against
// backend, scheduled on clk (nil means the real-time clock).
func NewDispatcher(cfg DispatcherConfig, clk simclock.Clock, backend Querier) *Dispatcher {
	if clk == nil {
		clk = simclock.Real{}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	d := &Dispatcher{cfg: cfg, clk: clk, backend: backend}
	d.backendAt, _ = backend.(QuerierAt)
	return d
}

// queue resolves (or creates) the dispatch queue for tld.
func (d *Dispatcher) queue(tld string) *tldQueue {
	return d.tlds.getOrCreate(tld, func() *tldQueue { return &tldQueue{tld: tld} })
}

// injectFail decides dispatcher-side failure injection for domain: the
// shared splitmix64 finalizer over (seed, domain hash), so the decision
// is a pure function of configuration and name — the same derivation
// contract as the core pipeline's per-domain generators.
func (d *Dispatcher) injectFail(domain string) bool {
	if d.cfg.FailureRate <= 0 {
		return false
	}
	x := dnsname.Mix64((dnsname.Hash64(domain) ^ uint64(d.cfg.Seed)) + 0x9e3779b97f4a7c15)
	return float64(x>>11)/(1<<53) < d.cfg.FailureRate
}

// Enqueue admits one query to its TLD's queue, reporting acceptance.
// When the queue is at QueueDepth the query is shed: Done is invoked
// synchronously with ErrRateLimited and Enqueue returns false. Enqueue
// never blocks on query execution.
func (d *Dispatcher) Enqueue(q Query) bool {
	domain := dnsname.Canonical(q.Domain)
	tq := d.queue(dnsname.TLD(domain))
	tq.mu.Lock()
	if d.cfg.QueueDepth > 0 && tq.pending >= d.cfg.QueueDepth {
		tq.shed++
		tq.mu.Unlock()
		d.shed.Add(1)
		q.finish(nil, ErrRateLimited, d.clk.Now())
		return false
	}
	tq.pending++
	if tq.pending > tq.maxDepth {
		tq.maxDepth = tq.pending
	}
	tq.mu.Unlock()
	d.enqueued.Add(1)

	pq := pendingQuery{Query: q, at: d.clk.Now(), fail: q.InjectFailure || d.injectFail(domain)}
	pq.Domain = domain
	fire := func(now time.Time) {
		tq.mu.Lock()
		tq.ready = append(tq.ready, pq)
		tq.mu.Unlock()
		d.drain(tq, now)
	}
	// The due-timer is parallel-marked: queries sharing an instant are
	// commutative (per-query outcomes derive from (seed, domain) and the
	// frozen simulated time; counters are sums), so a batched clock drain
	// may fire a whole cohort of due-timers concurrently. With a
	// time-explicit backend the timer is additionally effect-tagged —
	// the domain's atom (the query reads that domain's registry slice,
	// which its lifecycle events mutate) plus the TLD's dispatch lane
	// (every same-TLD due-timer mutates this tldQueue, so they serialize
	// against each other) — letting the lookahead drain fire due-timers
	// of unrelated domains from different instants together.
	if ts, ok := d.clk.(simclock.TagScheduler); ok && d.backendAt != nil {
		ts.ScheduleTagged(simclock.TaggedTimed{
			At:  pq.at.Add(q.Delay),
			Tag: simclock.DomainTag(domain) | simclock.LaneTag("rdap/"+dnsname.TLD(domain)),
			Par: true,
			Fn:  fire,
		})
	} else {
		simclock.AfterPar(d.clk, q.Delay, func() { fire(d.clk.Now()) })
	}
	return true
}

// EnqueueBatch admits a batch, returning how many queries were accepted
// (the rest were shed with ErrRateLimited through their Done callbacks).
func (d *Dispatcher) EnqueueBatch(batch DomainBatch) int {
	accepted := 0
	for _, q := range batch {
		if d.Enqueue(q) {
			accepted++
		}
	}
	return accepted
}

// drain executes due queries for one TLD until its ready queue is empty
// or the in-flight cap is saturated (in which case the drain holding the
// capacity picks the remainder up when it loops). now is the draining
// event's instant, passed explicitly because tagged due-timers may fire
// ahead of the clock's committed time.
func (d *Dispatcher) drain(tq *tldQueue, now time.Time) {
	for {
		tq.mu.Lock()
		n := len(tq.ready)
		if cap := d.cfg.Inflight; cap > 0 && n > cap-tq.inflight {
			n = cap - tq.inflight
		}
		if n <= 0 {
			tq.mu.Unlock()
			return
		}
		batch := make([]pendingQuery, n)
		copy(batch, tq.ready)
		rest := copy(tq.ready, tq.ready[n:])
		clear(tq.ready[rest:]) // release drained Done closures
		tq.ready = tq.ready[:rest]
		tq.inflight += n
		tq.mu.Unlock()

		d.execute(batch, now)

		tq.mu.Lock()
		tq.inflight -= n
		tq.pending -= n
		tq.completed += int64(n)
		for i := range batch {
			tq.latencySum += now.Sub(batch[i].at)
		}
		tq.mu.Unlock()
		d.completed.Add(int64(n))
	}
}

// execute runs one ready round on the worker pool and waits for it to
// complete. The barrier is what keeps parallel dispatch deterministic
// under the simulated clock: every query in the round observes the same
// instant, and no clock event fires mid-round.
func (d *Dispatcher) execute(batch []pendingQuery, now time.Time) {
	run := func(pq pendingQuery) {
		if pq.fail {
			d.failed.Add(1)
			pq.finish(nil, ErrRateLimited, now)
			return
		}
		var rec *Record
		var err error
		if d.backendAt != nil {
			rec, err = d.backendAt.DomainAt(context.Background(), pq.Domain, now)
		} else {
			rec, err = d.backend.Domain(context.Background(), pq.Domain)
		}
		// ErrNotFound/ErrNotSynced are ordinary RDAP answers (the
		// too-late and too-early outcomes the pipeline classifies, and
		// the primary signal for transients); only rate limiting and
		// unavailability count toward the §4.2 failure class.
		if err != nil && !errors.Is(err, ErrNotFound) && !errors.Is(err, ErrNotSynced) {
			d.failed.Add(1)
		}
		pq.finish(rec, err, now)
	}
	workpool.Run(len(batch), d.cfg.Workers, func(j int) { run(batch[j]) })
}

// DispatchStats aggregates the engine's counters. Every field is a pure
// function of the clock's event sequence, so stats — like campaign
// reports — are identical across worker-pool widths.
type DispatchStats struct {
	Enqueued  int64 // queries admitted to a queue
	Completed int64 // queries executed (including injected failures)
	Shed      int64 // queries rejected at QueueDepth with ErrRateLimited
	// Failed counts the §4.2 collection-failure class: injected
	// failures, rate limiting and unavailability. Not-found and
	// not-yet-synced are ordinary answers, not failures.
	Failed   int64
	Pending  int // admitted but not yet completed, right now
	TLDs     int // queues in the directory
	MaxDepth int // deepest per-TLD backlog observed
	// AvgLatency is the mean enqueue→completion time over completed
	// queries (queueing delay plus drain wait).
	AvgLatency time.Duration
}

// Stats returns the engine-wide counters.
func (d *Dispatcher) Stats() DispatchStats {
	s := DispatchStats{
		Enqueued:  d.enqueued.Load(),
		Completed: d.completed.Load(),
		Shed:      d.shed.Load(),
		Failed:    d.failed.Load(),
	}
	var latencySum time.Duration
	for _, tq := range d.tlds.snapshot() {
		tq.mu.Lock()
		s.Pending += tq.pending
		if tq.maxDepth > s.MaxDepth {
			s.MaxDepth = tq.maxDepth
		}
		latencySum += tq.latencySum
		tq.mu.Unlock()
		s.TLDs++
	}
	if s.Completed > 0 {
		s.AvgLatency = latencySum / time.Duration(s.Completed)
	}
	return s
}

// TLDDispatchStats is one TLD queue's counters.
type TLDDispatchStats struct {
	TLD        string
	Pending    int
	MaxDepth   int
	Completed  int64
	Shed       int64
	AvgLatency time.Duration
}

// TLDStats returns per-queue counters, sorted by TLD.
func (d *Dispatcher) TLDStats() []TLDDispatchStats {
	dir := d.tlds.snapshot()
	out := make([]TLDDispatchStats, 0, len(dir))
	for _, tq := range dir {
		tq.mu.Lock()
		st := TLDDispatchStats{
			TLD: tq.tld, Pending: tq.pending, MaxDepth: tq.maxDepth,
			Completed: tq.completed, Shed: tq.shed,
		}
		if tq.completed > 0 {
			st.AvgLatency = tq.latencySum / time.Duration(tq.completed)
		}
		tq.mu.Unlock()
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TLD < out[j].TLD })
	return out
}
