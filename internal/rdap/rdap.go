// Package rdap implements a Registration Data Access Protocol subset
// (RFC 7480/9083): an HTTP server exposing /domain/{name} lookups backed
// by registry data, a client that never retries failures (matching the
// paper's collection policy), per-source-address token-bucket rate
// limiting (the cause of the ≈3 % collection failures in §4.2), and an
// asynchronous per-TLD dispatch engine (Dispatcher) modelling the paper's
// Azure worker fleet: bounded per-TLD queues drained by worker pools,
// with deterministic failure injection and queue-depth/latency counters.
//
// Concurrency model (DESIGN.md §6): the Mux routing table and the
// Dispatcher's queue directory are immutable maps behind atomic.Pointer,
// swapped copy-on-write; the RateLimiter's bucket table is striped over
// independent locks keyed by client hash. Nothing on the lookup path
// takes a global lock.
//
// Determinism contract: this is the repo's second engine, wired as
// analysis.RunConfig.RDAPWorkers and the -rdap-workers flags. The
// dispatcher's drain barrier executes every due query at one simulated
// instant and failure injection derives from (seed, domain), so
// campaign reports are byte-identical across serial lookups and any
// dispatch pool width (analysis.TestSerialParallelRDAPDispatchIdentical).
package rdap

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"darkdns/internal/dnsname"
)

// Record is the registration data DarkDNS extracts from an RDAP response.
type Record struct {
	Domain     string    `json:"ldhName"`
	Registrar  string    `json:"registrar"`
	Registered time.Time `json:"registered"`
	Status     []string  `json:"status,omitempty"`
}

// Canonical RDAP failure modes observed by the pipeline.
var (
	ErrNotFound    = errors.New("rdap: domain not found")
	ErrRateLimited = errors.New("rdap: rate limited")
	ErrNotSynced   = errors.New("rdap: registration not yet available")
	ErrUnavailable = errors.New("rdap: service unavailable")
)

// Querier is the pipeline's view of RDAP: one lookup, no retries.
type Querier interface {
	Domain(ctx context.Context, name string) (*Record, error)
}

// QuerierAt is the optional Querier extension for time-explicit lookups:
// the query evaluated as of an explicit instant rather than the
// backend's own clock. In-process simulated backends implement it so
// effect-tagged due-timer events — which may fire ahead of the lookahead
// drain's committed time — observe their own instant; wire backends
// (Client) cannot, and dispatchers fall back to untagged scheduling.
type QuerierAt interface {
	DomainAt(ctx context.Context, name string, now time.Time) (*Record, error)
}

// Backend supplies registration data for one TLD's RDAP service.
type Backend interface {
	// RDAPDomain returns the record, ErrNotFound, or ErrNotSynced.
	RDAPDomain(name string) (*Record, error)
}

// BackendAt is the optional Backend extension mirroring QuerierAt.
type BackendAt interface {
	RDAPDomainAt(name string, now time.Time) (*Record, error)
}

// BackendFunc adapts a function to Backend.
type BackendFunc func(name string) (*Record, error)

// RDAPDomain implements Backend.
func (f BackendFunc) RDAPDomain(name string) (*Record, error) { return f(name) }

// Mux routes domains to per-TLD backends, like the IANA bootstrap registry.
//
// Routing is on the lookup hot path — with the dispatch engine every
// worker resolves its backend through the Mux — so the routing table is a
// copy-on-write map (cowMap): lookups take no lock; registrations
// (bootstrap-table updates, rare) pay the clone.
type Mux struct {
	backends cowMap[Backend]
}

// NewMux creates an empty router.
func NewMux() *Mux {
	return &Mux{}
}

// Handle registers the backend for tld. Safe for concurrent use with
// RDAPDomain; in-flight lookups keep routing through the previous table.
func (m *Mux) Handle(tld string, b Backend) {
	m.backends.set(dnsname.Canonical(tld), b)
}

// RDAPDomain implements Backend by routing on the domain's TLD. Lock-free.
func (m *Mux) RDAPDomain(name string) (*Record, error) {
	name = dnsname.Canonical(name)
	b, ok := m.backends.get(dnsname.TLD(name))
	if !ok {
		return nil, fmt.Errorf("%w: no RDAP service for %q", ErrUnavailable, dnsname.TLD(name))
	}
	return b.RDAPDomain(name)
}

// RDAPDomainAt implements BackendAt by routing like RDAPDomain. Backends
// without the time-explicit extension answer with their own clock —
// callers that need the guarantee (tagged due-timers) only schedule
// tagged when the backend supports it.
func (m *Mux) RDAPDomainAt(name string, now time.Time) (*Record, error) {
	name = dnsname.Canonical(name)
	b, ok := m.backends.get(dnsname.TLD(name))
	if !ok {
		return nil, fmt.Errorf("%w: no RDAP service for %q", ErrUnavailable, dnsname.TLD(name))
	}
	if ba, ok := b.(BackendAt); ok {
		return ba.RDAPDomainAt(name, now)
	}
	return b.RDAPDomain(name)
}

// limiterStripes is the number of independent locks the rate limiter's
// bucket table is striped over. Client keys hash to a stripe, so a fleet
// of workers cycling source addresses does not serialize on one lock.
// Power of two for cheap masking.
const limiterStripes = 64

// limiterStripe is one stripe of the bucket table.
type limiterStripe struct {
	mu      sync.Mutex
	buckets map[string]*bucket
}

// RateLimiter is a token bucket per client key, striped over
// limiterStripes locks keyed by client hash.
type RateLimiter struct {
	rate    float64 // tokens per second
	burst   float64
	now     func() time.Time
	stripes [limiterStripes]limiterStripe
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewRateLimiter allows rate requests/second with the given burst per key.
func NewRateLimiter(rate, burst float64, now func() time.Time) *RateLimiter {
	if now == nil {
		now = time.Now
	}
	rl := &RateLimiter{rate: rate, burst: burst, now: now}
	for i := range rl.stripes {
		rl.stripes[i].buckets = make(map[string]*bucket)
	}
	return rl
}

// Allow consumes one token for key, reporting whether the request may
// proceed. Distinct keys contend only within their hash stripe.
func (rl *RateLimiter) Allow(key string) bool {
	st := &rl.stripes[dnsname.Hash64(key)&(limiterStripes-1)]
	st.mu.Lock()
	defer st.mu.Unlock()
	now := rl.now()
	b := st.buckets[key]
	if b == nil {
		b = &bucket{tokens: rl.burst, last: now}
		st.buckets[key] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * rl.rate
	if b.tokens > rl.burst {
		b.tokens = rl.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Server is an RDAP HTTP server.
type Server struct {
	backend Backend
	limiter *RateLimiter
	http    *http.Server
	ln      net.Listener
}

// NewServer wraps backend; limiter may be nil for unlimited service.
func NewServer(backend Backend, limiter *RateLimiter) *Server {
	s := &Server{backend: backend, limiter: limiter}
	mux := http.NewServeMux()
	mux.HandleFunc("/domain/", s.handleDomain)
	s.http = &http.Server{Handler: mux}
	return s
}

// Serve listens on addr and serves until Close. Returns the bound address.
func (s *Server) Serve(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	go s.http.Serve(ln)
	return ln.Addr(), nil
}

// Close shuts the server down.
func (s *Server) Close() error {
	if s.ln == nil {
		return nil
	}
	return s.http.Close()
}

// rdapError is the RFC 9083 error body.
type rdapError struct {
	ErrorCode   int    `json:"errorCode"`
	Title       string `json:"title"`
	Description string `json:"description,omitempty"`
}

func (s *Server) handleDomain(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/domain/")
	name = dnsname.Canonical(name)
	if name == "" || dnsname.Check(name) != nil {
		writeJSON(w, http.StatusBadRequest, rdapError{400, "Bad Request", "malformed domain"})
		return
	}
	key, _, _ := net.SplitHostPort(r.RemoteAddr)
	// Honor a worker-identity header so simulations can exercise the
	// paper's "cycle measurements over different IPv4 addresses" tactic.
	if h := r.Header.Get("X-Forwarded-For"); h != "" {
		key = h
	}
	if s.limiter != nil && !s.limiter.Allow(key) {
		writeJSON(w, http.StatusTooManyRequests, rdapError{429, "Rate Limit Exceeded", ""})
		return
	}
	rec, err := s.backend.RDAPDomain(name)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, domainResponse(rec))
	case errors.Is(err, ErrNotFound):
		writeJSON(w, http.StatusNotFound, rdapError{404, "Not Found", ""})
	case errors.Is(err, ErrNotSynced):
		// Registries commonly surface not-yet-synced data as 404 too;
		// keep them distinguishable via the description for debugging.
		writeJSON(w, http.StatusNotFound, rdapError{404, "Not Found", "not yet synchronized"})
	default:
		writeJSON(w, http.StatusServiceUnavailable, rdapError{503, "Unavailable", err.Error()})
	}
}

// domainResponse renders the RFC 9083 domain object subset.
func domainResponse(rec *Record) map[string]any {
	return map[string]any{
		"objectClassName": "domain",
		"ldhName":         rec.Domain,
		"status":          rec.Status,
		"events": []map[string]any{
			{"eventAction": "registration", "eventDate": rec.Registered.UTC().Format(time.RFC3339)},
		},
		"entities": []map[string]any{
			{
				"objectClassName": "entity",
				"roles":           []string{"registrar"},
				"vcardArray": []any{"vcard", []any{
					[]any{"fn", map[string]any{}, "text", rec.Registrar},
				}},
			},
		},
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/rdap+json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// Client queries an RDAP server over HTTP. Failed queries are never
// retried (paper §3 step 2: "to minimize overhead, we did not retry
// failed queries").
type Client struct {
	base   string
	http   *http.Client
	worker string // X-Forwarded-For identity for limiter cycling
}

// NewClient creates a client for the RDAP service at base
// (e.g. "http://127.0.0.1:4321"). worker identifies the measurement
// worker for rate-limit cycling; empty means the transport address.
func NewClient(base, worker string) *Client {
	return &Client{
		base:   strings.TrimRight(base, "/"),
		http:   &http.Client{Timeout: 10 * time.Second},
		worker: worker,
	}
}

// Domain implements Querier.
func (c *Client) Domain(ctx context.Context, name string) (*Record, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/domain/"+dnsname.Canonical(name), nil)
	if err != nil {
		return nil, err
	}
	if c.worker != "" {
		req.Header.Set("X-Forwarded-For", c.worker)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return parseDomainResponse(resp.Body)
	case http.StatusNotFound:
		return nil, ErrNotFound
	case http.StatusTooManyRequests:
		return nil, ErrRateLimited
	default:
		return nil, fmt.Errorf("%w: HTTP %d", ErrUnavailable, resp.StatusCode)
	}
}

// parseDomainResponse extracts the Record fields from an RFC 9083 domain
// object.
func parseDomainResponse(r io.Reader) (*Record, error) {
	var body struct {
		LDHName string   `json:"ldhName"`
		Status  []string `json:"status"`
		Events  []struct {
			EventAction string `json:"eventAction"`
			EventDate   string `json:"eventDate"`
		} `json:"events"`
		Entities []struct {
			Roles      []string `json:"roles"`
			VCardArray []any    `json:"vcardArray"`
		} `json:"entities"`
	}
	if err := json.NewDecoder(r).Decode(&body); err != nil {
		return nil, fmt.Errorf("rdap: bad response: %w", err)
	}
	rec := &Record{Domain: dnsname.Canonical(body.LDHName), Status: body.Status}
	for _, ev := range body.Events {
		if ev.EventAction == "registration" {
			t, err := time.Parse(time.RFC3339, ev.EventDate)
			if err != nil {
				return nil, fmt.Errorf("rdap: bad event date: %w", err)
			}
			rec.Registered = t
		}
	}
	for _, ent := range body.Entities {
		for _, role := range ent.Roles {
			if role == "registrar" {
				rec.Registrar = vcardFN(ent.VCardArray)
			}
		}
	}
	return rec, nil
}

// vcardFN digs the "fn" value out of a jCard array.
func vcardFN(v []any) string {
	if len(v) != 2 {
		return ""
	}
	props, ok := v[1].([]any)
	if !ok {
		return ""
	}
	for _, p := range props {
		fields, ok := p.([]any)
		if !ok || len(fields) < 4 {
			continue
		}
		if name, _ := fields[0].(string); name == "fn" {
			if s, ok := fields[3].(string); ok {
				return s
			}
		}
	}
	return ""
}
