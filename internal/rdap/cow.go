package rdap

import (
	"maps"
	"sync"
	"sync/atomic"
)

// cowMap is a copy-on-write string-keyed map: lock-free reads through an
// atomic.Pointer snapshot, mutex-serialized clone-and-swap writes. The
// Mux routing table and the Dispatcher's queue directory share it so the
// double-checked registration sequence exists once. The zero value is an
// empty map, ready to use.
type cowMap[V any] struct {
	mu sync.Mutex // serializes writers' clone-and-swap
	m  atomic.Pointer[map[string]V]
}

// snapshot returns the current immutable generation (nil when empty).
func (c *cowMap[V]) snapshot() map[string]V {
	if p := c.m.Load(); p != nil {
		return *p
	}
	return nil
}

// get looks k up in the current generation. Lock-free.
func (c *cowMap[V]) get(k string) (V, bool) {
	v, ok := c.snapshot()[k]
	return v, ok
}

// set installs k→v in a new generation. In-flight readers keep the
// previous one until their operation completes.
func (c *cowMap[V]) set(k string, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	next := maps.Clone(c.snapshot())
	if next == nil {
		next = map[string]V{}
	}
	next[k] = v
	c.m.Store(&next)
}

// getOrCreate returns k's value, building and installing mk() under the
// writer lock when k is absent — the double-checked path for concurrent
// first access.
func (c *cowMap[V]) getOrCreate(k string, mk func() V) V {
	if v, ok := c.get(k); ok {
		return v
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := c.snapshot()
	if v, ok := cur[k]; ok {
		return v
	}
	next := maps.Clone(cur)
	if next == nil {
		next = map[string]V{}
	}
	v := mk()
	next[k] = v
	c.m.Store(&next)
	return v
}
