package rdap

import (
	"context"
	"errors"
	"testing"
	"time"
)

var t0 = time.Date(2023, 11, 1, 0, 0, 0, 0, time.UTC)

func testBackend() *Mux {
	m := NewMux()
	m.Handle("com", BackendFunc(func(name string) (*Record, error) {
		switch name {
		case "example.com":
			return &Record{Domain: name, Registrar: "GoDaddy", Registered: t0, Status: []string{"active"}}, nil
		case "fresh.com":
			return nil, ErrNotSynced
		}
		return nil, ErrNotFound
	}))
	return m
}

func TestMuxRouting(t *testing.T) {
	m := testBackend()
	rec, err := m.RDAPDomain("Example.COM")
	if err != nil || rec.Registrar != "GoDaddy" {
		t.Fatalf("lookup: %+v, %v", rec, err)
	}
	if _, err := m.RDAPDomain("missing.com"); !errors.Is(err, ErrNotFound) {
		t.Errorf("want ErrNotFound, got %v", err)
	}
	if _, err := m.RDAPDomain("x.nl"); !errors.Is(err, ErrUnavailable) {
		t.Errorf("unrouted TLD: want ErrUnavailable, got %v", err)
	}
}

func TestServerClientEndToEnd(t *testing.T) {
	srv := NewServer(testBackend(), nil)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient("http://"+addr.String(), "")

	rec, err := c.Domain(context.Background(), "example.com")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Domain != "example.com" || rec.Registrar != "GoDaddy" || !rec.Registered.Equal(t0) {
		t.Errorf("record: %+v", rec)
	}
	if len(rec.Status) != 1 || rec.Status[0] != "active" {
		t.Errorf("status: %v", rec.Status)
	}

	if _, err := c.Domain(context.Background(), "missing.com"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing: %v", err)
	}
	if _, err := c.Domain(context.Background(), "fresh.com"); !errors.Is(err, ErrNotFound) {
		t.Errorf("not-synced should surface as not found: %v", err)
	}
}

func TestServerRejectsMalformedNames(t *testing.T) {
	srv := NewServer(testBackend(), nil)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient("http://"+addr.String(), "")
	if _, err := c.Domain(context.Background(), "bad..name"); !errors.Is(err, ErrUnavailable) {
		t.Errorf("malformed name: %v", err)
	}
}

func TestRateLimiting(t *testing.T) {
	now := t0
	rl := NewRateLimiter(1, 2, func() time.Time { return now })
	if !rl.Allow("w1") || !rl.Allow("w1") {
		t.Fatal("burst of 2 should be allowed")
	}
	if rl.Allow("w1") {
		t.Fatal("third immediate request should be limited")
	}
	if !rl.Allow("w2") {
		t.Fatal("independent key should have its own bucket")
	}
	now = now.Add(time.Second)
	if !rl.Allow("w1") {
		t.Fatal("token should refill after 1 s at 1 rps")
	}
	now = now.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if !rl.Allow("w1") {
			t.Fatal("bucket should cap at burst")
		}
	}
	if rl.Allow("w1") {
		t.Fatal("bucket exceeded burst cap")
	}
}

func TestServerRateLimitsPerWorker(t *testing.T) {
	rl := NewRateLimiter(0.0001, 1, time.Now) // effectively one request ever
	srv := NewServer(testBackend(), rl)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	w1 := NewClient("http://"+addr.String(), "worker-1")
	w2 := NewClient("http://"+addr.String(), "worker-2")
	if _, err := w1.Domain(context.Background(), "example.com"); err != nil {
		t.Fatalf("first request: %v", err)
	}
	if _, err := w1.Domain(context.Background(), "example.com"); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("second request should be limited: %v", err)
	}
	// Cycling to a different worker identity evades the per-IP limit —
	// exactly the paper's Azure-function tactic.
	if _, err := w2.Domain(context.Background(), "example.com"); err != nil {
		t.Fatalf("other worker should pass: %v", err)
	}
}

func TestClientUnreachableServer(t *testing.T) {
	c := NewClient("http://127.0.0.1:1", "")
	if _, err := c.Domain(context.Background(), "example.com"); !errors.Is(err, ErrUnavailable) {
		t.Errorf("want ErrUnavailable, got %v", err)
	}
}

func TestVcardFNRobustness(t *testing.T) {
	if vcardFN(nil) != "" || vcardFN([]any{"vcard"}) != "" {
		t.Error("short arrays")
	}
	if vcardFN([]any{"vcard", "notalist"}) != "" {
		t.Error("bad inner type")
	}
	good := []any{"vcard", []any{[]any{"fn", map[string]any{}, "text", "Registrar X"}}}
	if vcardFN(good) != "Registrar X" {
		t.Error("good vcard failed")
	}
}
