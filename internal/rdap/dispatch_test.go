package rdap

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"darkdns/internal/simclock"
)

// countingBackend is a Querier that tracks call concurrency.
type countingBackend struct {
	calls atomic.Int64
	cur   atomic.Int64
	max   atomic.Int64
	delay time.Duration // wall-clock work per call
}

func (b *countingBackend) Domain(_ context.Context, name string) (*Record, error) {
	c := b.cur.Add(1)
	for {
		m := b.max.Load()
		if c <= m || b.max.CompareAndSwap(m, c) {
			break
		}
	}
	if b.delay > 0 {
		time.Sleep(b.delay)
	}
	b.cur.Add(-1)
	b.calls.Add(1)
	return &Record{Domain: name, Registrar: "test", Registered: t0}, nil
}

func TestDispatcherDrainsPerTLDQueues(t *testing.T) {
	clk := simclock.NewSim(t0)
	backend := &countingBackend{}
	d := NewDispatcher(DispatcherConfig{Workers: 4}, clk, backend)

	var done atomic.Int64
	var batch DomainBatch
	for i := 0; i < 20; i++ {
		tld := "com"
		if i%2 == 1 {
			tld = "shop"
		}
		batch = append(batch, Query{
			Domain: fmt.Sprintf("d%d.%s", i, tld),
			Delay:  time.Duration(i) * time.Minute,
			Done: func(rec *Record, err error) {
				if err != nil || rec == nil {
					t.Errorf("unexpected outcome: %v, %v", rec, err)
				}
				done.Add(1)
			},
		})
	}
	if got := d.EnqueueBatch(batch); got != 20 {
		t.Fatalf("accepted %d of 20", got)
	}
	if s := d.Stats(); s.Enqueued != 20 || s.Pending != 20 || s.Completed != 0 {
		t.Fatalf("pre-drain stats: %+v", s)
	}
	clk.Run()
	if done.Load() != 20 {
		t.Fatalf("done callbacks: %d of 20", done.Load())
	}
	s := d.Stats()
	if s.Completed != 20 || s.Pending != 0 || s.Shed != 0 || s.Failed != 0 {
		t.Fatalf("post-drain stats: %+v", s)
	}
	if s.TLDs != 2 {
		t.Errorf("TLD queues: %d, want 2", s.TLDs)
	}
	// Latency under the sim clock is exactly the queueing delay: mean of
	// 0..19 minutes over both queues.
	if want := 9*time.Minute + 30*time.Second; s.AvgLatency != want {
		t.Errorf("avg latency %v, want %v", s.AvgLatency, want)
	}
	per := d.TLDStats()
	if len(per) != 2 || per[0].TLD != "com" || per[1].TLD != "shop" {
		t.Fatalf("per-TLD stats: %+v", per)
	}
	if per[0].Completed != 10 || per[1].Completed != 10 {
		t.Errorf("per-TLD completions: %+v", per)
	}
}

// TestDispatcherShedsAtQueueDepth: a saturated TLD queue must shed load
// with ErrRateLimited — synchronously and without blocking the enqueuer —
// rather than queueing without bound or stalling ingest.
func TestDispatcherShedsAtQueueDepth(t *testing.T) {
	clk := simclock.NewSim(t0)
	backend := &countingBackend{}
	d := NewDispatcher(DispatcherConfig{Workers: 2, QueueDepth: 4}, clk, backend)

	var shedErrs atomic.Int64
	accepted := 0
	doneCh := make(chan struct{}, 16)
	for i := 0; i < 10; i++ {
		ok := d.Enqueue(Query{
			Domain: fmt.Sprintf("d%d.com", i),
			Delay:  time.Second,
			Done: func(rec *Record, err error) {
				if errors.Is(err, ErrRateLimited) {
					shedErrs.Add(1)
				}
				doneCh <- struct{}{}
			},
		})
		if ok {
			accepted++
		}
	}
	if accepted != 4 {
		t.Fatalf("accepted %d, want 4 (QueueDepth)", accepted)
	}
	// The 6 shed callbacks ran synchronously inside Enqueue, before any
	// clock advance.
	if got := shedErrs.Load(); got != 6 {
		t.Fatalf("shed callbacks before drain: %d, want 6", got)
	}
	clk.Run()
	for i := 0; i < 10; i++ {
		<-doneCh
	}
	s := d.Stats()
	if s.Enqueued != 4 || s.Shed != 6 || s.Completed != 4 || s.Pending != 0 {
		t.Fatalf("stats: %+v", s)
	}
	if s.MaxDepth != 4 {
		t.Errorf("max depth %d, want 4", s.MaxDepth)
	}
	if backend.calls.Load() != 4 {
		t.Errorf("backend calls %d, want 4 (shed queries never reach it)", backend.calls.Load())
	}
	// A drained queue accepts again.
	if !d.Enqueue(Query{Domain: "later.com", Done: func(*Record, error) { doneCh <- struct{}{} }}) {
		t.Fatal("post-drain enqueue rejected")
	}
	clk.Run()
	<-doneCh
}

// TestDispatcherInflightCap: under the real clock, concurrent drains for
// one TLD must never execute more than Inflight queries at once, however
// wide the worker pool is.
func TestDispatcherInflightCap(t *testing.T) {
	backend := &countingBackend{delay: 2 * time.Millisecond}
	d := NewDispatcher(DispatcherConfig{Workers: 8, Inflight: 2}, simclock.Real{}, backend)

	const n = 32
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		d.Enqueue(Query{
			Domain: fmt.Sprintf("d%d.com", i),
			Done:   func(*Record, error) { wg.Done() },
		})
	}
	wg.Wait()
	if got := backend.max.Load(); got > 2 {
		t.Errorf("max concurrent executions %d, want ≤ 2", got)
	}
	if backend.calls.Load() != n {
		t.Errorf("backend calls %d, want %d", backend.calls.Load(), n)
	}
	if s := d.Stats(); s.Completed != n || s.Pending != 0 {
		t.Errorf("stats: %+v", s)
	}
}

// TestDispatcherFailureInjectionDeterministic: dispatcher-side injection
// must be a pure function of (seed, domain) — identical across engine
// instances and worker widths, and roughly matching the configured rate.
func TestDispatcherFailureInjectionDeterministic(t *testing.T) {
	outcomes := func(workers int) map[string]bool {
		clk := simclock.NewSim(t0)
		d := NewDispatcher(DispatcherConfig{Workers: workers, FailureRate: 0.5, Seed: 42}, clk, &countingBackend{})
		var mu sync.Mutex
		failed := make(map[string]bool)
		for i := 0; i < 400; i++ {
			dom := fmt.Sprintf("d%d.com", i)
			d.Enqueue(Query{Domain: dom, Done: func(rec *Record, err error) {
				mu.Lock()
				failed[dom] = err != nil
				mu.Unlock()
			}})
		}
		clk.Run()
		return failed
	}
	a, b := outcomes(1), outcomes(8)
	nFail := 0
	for dom, f := range a {
		if b[dom] != f {
			t.Fatalf("injection for %s differs across instances", dom)
		}
		if f {
			nFail++
		}
	}
	if nFail < 120 || nFail > 280 {
		t.Errorf("injected failures %d of 400, want ≈200", nFail)
	}
}

// TestDispatchEngineRace hammers the whole engine concurrently — Mux
// Handle/RDAPDomain, RateLimiter Allow, Dispatcher Enqueue/Stats — and
// relies on -race to flag unsynchronized access (the CI race job runs
// this; it is the regression test for the lock-free Mux and striped
// limiter rebuild).
func TestDispatchEngineRace(t *testing.T) {
	mux := NewMux()
	mux.Handle("com", BackendFunc(func(name string) (*Record, error) {
		return &Record{Domain: name, Registered: t0}, nil
	}))
	limiter := NewRateLimiter(1000, 50, nil)
	d := NewDispatcher(DispatcherConfig{Workers: 4, Inflight: 8}, simclock.Real{}, muxQuerier{mux})

	const perWorker = 200
	var wg sync.WaitGroup
	var done sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(4)
		go func(w int) { // bootstrap-table churn
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				mux.Handle(fmt.Sprintf("tld%d-%d", w, i), BackendFunc(func(name string) (*Record, error) {
					return nil, ErrNotFound
				}))
			}
		}(w)
		go func(w int) { // lookup traffic
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := mux.RDAPDomain(fmt.Sprintf("x%d.com", i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
		go func(w int) { // limiter traffic across many keys
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				limiter.Allow(fmt.Sprintf("10.0.%d.%d", w, i%32))
			}
		}(w)
		go func(w int) { // dispatch traffic plus stats readers
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				done.Add(1)
				d.Enqueue(Query{
					Domain: fmt.Sprintf("d%d-%d.com", w, i),
					Done:   func(*Record, error) { done.Done() },
				})
				if i%50 == 0 {
					d.Stats()
					d.TLDStats()
				}
			}
		}(w)
	}
	wg.Wait()
	done.Wait()
	if s := d.Stats(); s.Completed != 4*perWorker || s.Pending != 0 {
		t.Fatalf("stats after race: %+v", s)
	}
}

// muxQuerier adapts a Mux to Querier for dispatcher tests (mirroring
// core.MuxQuerier without importing core).
type muxQuerier struct{ mux *Mux }

func (q muxQuerier) Domain(_ context.Context, name string) (*Record, error) {
	return q.mux.RDAPDomain(name)
}
