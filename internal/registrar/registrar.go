// Package registrar catalogs domain registrars with the market shares the
// paper observes (Table 3 for transient domains) and models the abuse
// workflows that produce transient domains: post-registration fraud
// signals, account suspensions and chargebacks that make a registrar pull
// a domain from the zone within hours (§4.3).
package registrar

import (
	"math/rand"
	"time"
)

// Registrar is one catalog entry.
type Registrar struct {
	Name string
	// TransientShare is the registrar's share of transient domains
	// (paper Table 3).
	TransientShare float64
	// MarketShare is the registrar's share of all registrations.
	MarketShare float64
}

// Catalog lists the paper's Table 3 registrars plus an aggregated tail.
// Transient shares are the Table 3 percentages; overall market shares are
// loosely proportional to gTLD market structure.
var Catalog = []Registrar{
	{Name: "GoDaddy", TransientShare: 0.1939, MarketShare: 0.26},
	{Name: "Hostinger", TransientShare: 0.152, MarketShare: 0.05},
	{Name: "NameCheap", TransientShare: 0.099, MarketShare: 0.12},
	{Name: "Squarespace", TransientShare: 0.067, MarketShare: 0.06},
	{Name: "Public Domain Registry", TransientShare: 0.062, MarketShare: 0.05},
	{Name: "IONOS", TransientShare: 0.056, MarketShare: 0.05},
	{Name: "Metaregistrar", TransientShare: 0.044, MarketShare: 0.02},
	{Name: "NameSilo", TransientShare: 0.044, MarketShare: 0.04},
	{Name: "Network Solutions, LLC", TransientShare: 0.039, MarketShare: 0.05},
	{Name: "Tucows", TransientShare: 0.031, MarketShare: 0.08},
	{Name: "Others", TransientShare: 0.213, MarketShare: 0.22},
}

// PickTransient samples a registrar per the transient-domain distribution.
func PickTransient(rng *rand.Rand) string { return pick(rng, true) }

// Pick samples a registrar per the overall market distribution.
func Pick(rng *rand.Rand) string { return pick(rng, false) }

func pick(rng *rand.Rand, transient bool) string {
	x := rng.Float64()
	cum := 0.0
	total := 0.0
	for _, r := range Catalog {
		if transient {
			total += r.TransientShare
		} else {
			total += r.MarketShare
		}
	}
	for _, r := range Catalog {
		share := r.MarketShare
		if transient {
			share = r.TransientShare
		}
		cum += share / total
		if x <= cum {
			return r.Name
		}
	}
	return Catalog[len(Catalog)-1].Name
}

// RemovalReason is why a registrar deleted a domain early.
type RemovalReason uint8

// Early-removal reasons from the paper's registrar conversations (§4.3):
// overwhelmingly abuse-driven, with rare legitimate cases.
const (
	ReasonAbuse RemovalReason = iota
	ReasonAccountSuspension
	ReasonPaymentFraud
	ReasonDomainTasting
	ReasonCancellation
)

// String names the reason.
func (r RemovalReason) String() string {
	switch r {
	case ReasonAbuse:
		return "abuse"
	case ReasonAccountSuspension:
		return "account-suspension"
	case ReasonPaymentFraud:
		return "payment-fraud"
	case ReasonDomainTasting:
		return "domain-tasting"
	case ReasonCancellation:
		return "right-of-cancellation"
	}
	return "unknown"
}

// Malicious reports whether the removal indicates abusive registration.
func (r RemovalReason) Malicious() bool {
	return r == ReasonAbuse || r == ReasonAccountSuspension || r == ReasonPaymentFraud
}

// SampleRemovalReason draws a reason: per the registrars quoted in the
// paper, legitimate cases (tasting, cancellation) are "exceptionally
// rare".
func SampleRemovalReason(rng *rand.Rand) RemovalReason {
	x := rng.Float64()
	switch {
	case x < 0.55:
		return ReasonAbuse
	case x < 0.80:
		return ReasonAccountSuspension
	case x < 0.96:
		return ReasonPaymentFraud
	case x < 0.98:
		return ReasonDomainTasting
	default:
		return ReasonCancellation
	}
}

// SampleTransientLifetime draws a transient domain's time-to-takedown.
// Figure 2: >50 % die within 6 h, with the tail filling the 24-hour
// window. A mixture of a fast exponential (fraud caught at payment
// screening) and a slower uniform tail reproduces the CDF shape.
func SampleTransientLifetime(rng *rand.Rand) time.Duration {
	if rng.Float64() < 0.70 {
		// Fast takedowns: exponential with 3.5 h mean, capped at 24 h.
		d := time.Duration(rng.ExpFloat64() * float64(3*time.Hour+30*time.Minute))
		if d >= 24*time.Hour {
			d = 23 * time.Hour
		}
		if d < time.Minute {
			d = time.Minute
		}
		return d
	}
	// Slow takedowns: uniform over 6–24 h.
	return 6*time.Hour + time.Duration(rng.Int63n(int64(18*time.Hour)))
}

// SampleEarlyRemovedLifetime draws the lifetime of an "early-removed" NRD
// (§4.3): removed before the analysis window's end but old enough to have
// appeared in zone snapshots — days to weeks rather than hours.
func SampleEarlyRemovedLifetime(rng *rand.Rand) time.Duration {
	days := 2 + rng.Intn(40)
	return time.Duration(days)*24*time.Hour + time.Duration(rng.Int63n(int64(24*time.Hour)))
}
