package registrar

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestCatalogSharesSumToOne(t *testing.T) {
	var ts, ms float64
	for _, r := range Catalog {
		ts += r.TransientShare
		ms += r.MarketShare
	}
	if math.Abs(ts-1.0) > 0.02 {
		t.Errorf("transient shares sum to %.3f", ts)
	}
	if math.Abs(ms-1.0) > 0.02 {
		t.Errorf("market shares sum to %.3f", ms)
	}
}

func TestPickTransientConvergesToTable3(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 200_000
	counts := make(map[string]int)
	for i := 0; i < n; i++ {
		counts[PickTransient(rng)]++
	}
	for name, want := range map[string]float64{
		"GoDaddy":   0.1939, // Table 3 top registrar
		"Hostinger": 0.152,
		"NameCheap": 0.099,
	} {
		got := float64(counts[name]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("%s transient share %.4f, want ≈%.4f", name, got, want)
		}
	}
}

func TestPickOverallDiffersFromTransient(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 100_000
	tHostinger, mHostinger := 0, 0
	for i := 0; i < n; i++ {
		if PickTransient(rng) == "Hostinger" {
			tHostinger++
		}
		if Pick(rng) == "Hostinger" {
			mHostinger++
		}
	}
	// Hostinger is over-represented among transients (15.2 % vs ~5 %).
	if tHostinger <= mHostinger*2 {
		t.Errorf("Hostinger transient count %d should dwarf market count %d", tHostinger, mHostinger)
	}
}

func TestRemovalReasons(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 100_000
	malicious := 0
	counts := make(map[RemovalReason]int)
	for i := 0; i < n; i++ {
		r := SampleRemovalReason(rng)
		counts[r]++
		if r.Malicious() {
			malicious++
		}
	}
	// "With few exceptions, reasons for early removal include abuse,
	// account suspensions, or credit card fraud" (§4.3).
	if rate := float64(malicious) / n; rate < 0.90 {
		t.Errorf("malicious share %.3f, want ≥0.90", rate)
	}
	if counts[ReasonDomainTasting] == 0 || counts[ReasonCancellation] == 0 {
		t.Error("legitimate reasons should occur, rarely")
	}
	for r, want := range map[RemovalReason]string{
		ReasonAbuse: "abuse", ReasonAccountSuspension: "account-suspension",
		ReasonPaymentFraud: "payment-fraud", ReasonDomainTasting: "domain-tasting",
		ReasonCancellation: "right-of-cancellation", RemovalReason(99): "unknown",
	} {
		if r.String() != want {
			t.Errorf("reason string: %q", r.String())
		}
	}
}

func TestTransientLifetimeDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n = 100_000
	under6h, under24h := 0, 0
	for i := 0; i < n; i++ {
		d := SampleTransientLifetime(rng)
		if d <= 0 || d >= 24*time.Hour {
			t.Fatalf("lifetime %v outside (0, 24h)", d)
		}
		if d <= 6*time.Hour {
			under6h++
		}
		under24h++
	}
	// Figure 2: >50 % die within 6 h.
	share := float64(under6h) / n
	if share < 0.50 || share > 0.70 {
		t.Errorf("under-6h share %.3f, want ≈0.55", share)
	}
}

func TestEarlyRemovedLifetimeIsDaysScale(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10_000; i++ {
		d := SampleEarlyRemovedLifetime(rng)
		if d < 48*time.Hour || d > 43*24*time.Hour {
			t.Fatalf("early-removed lifetime %v out of range", d)
		}
	}
}
