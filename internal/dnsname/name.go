// Package dnsname implements DNS domain-name handling: validation,
// canonicalization, label manipulation and the RFC 1035 wire encoding with
// message compression.
//
// Names are represented in their canonical presentation form: lower-case,
// no trailing dot ("example.com"). The empty string is the root zone.
package dnsname

import (
	"errors"
	"fmt"
	"strings"
)

// Limits from RFC 1035 §2.3.4.
const (
	MaxNameLen  = 253 // presentation form, excluding trailing dot
	MaxLabelLen = 63
	MaxLabels   = 127
)

// Errors returned by validation and wire decoding.
var (
	ErrEmpty         = errors.New("dnsname: empty label")
	ErrTooLong       = errors.New("dnsname: name exceeds 253 octets")
	ErrLabelTooLong  = errors.New("dnsname: label exceeds 63 octets")
	ErrBadChar       = errors.New("dnsname: invalid character")
	ErrBadHyphen     = errors.New("dnsname: label starts or ends with hyphen")
	ErrBadCompress   = errors.New("dnsname: invalid compression pointer")
	ErrTruncated     = errors.New("dnsname: truncated name")
	ErrPointerLoop   = errors.New("dnsname: compression pointer loop")
	ErrTooManyLabels = errors.New("dnsname: too many labels")
)

// Canonical lower-cases s and strips a single trailing dot. It performs no
// validation; combine with Check for untrusted input.
func Canonical(s string) string {
	s = strings.TrimSuffix(s, ".")
	// Fast path: already lower-case.
	lower := true
	for i := 0; i < len(s); i++ {
		if c := s[i]; 'A' <= c && c <= 'Z' {
			lower = false
			break
		}
	}
	if lower {
		return s
	}
	return strings.ToLower(s)
}

// Check validates a name in presentation form. Hostname rules (LDH) are
// applied per label, with underscore additionally permitted as a leading
// character to admit service labels such as _dmarc.
func Check(s string) error {
	s = strings.TrimSuffix(s, ".")
	if s == "" {
		return nil // root
	}
	if len(s) > MaxNameLen {
		return ErrTooLong
	}
	labels := strings.Split(s, ".")
	if len(labels) > MaxLabels {
		return ErrTooManyLabels
	}
	for _, l := range labels {
		if err := checkLabel(l); err != nil {
			return fmt.Errorf("%w in %q", err, s)
		}
	}
	return nil
}

func checkLabel(l string) error {
	if l == "" {
		return ErrEmpty
	}
	if len(l) > MaxLabelLen {
		return ErrLabelTooLong
	}
	for i := 0; i < len(l); i++ {
		c := l[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9':
		case c == '-':
			if i == 0 || i == len(l)-1 {
				return ErrBadHyphen
			}
		case c == '_':
			if i != 0 {
				return ErrBadChar
			}
		case c == '*':
			// Wildcard label: must be the sole character.
			if len(l) != 1 {
				return ErrBadChar
			}
		default:
			return ErrBadChar
		}
	}
	return nil
}

// Valid reports whether s passes Check.
func Valid(s string) bool { return Check(s) == nil }

// Labels splits a canonical name into its labels, leftmost first.
// The root name yields nil.
func Labels(s string) []string {
	s = strings.TrimSuffix(s, ".")
	if s == "" {
		return nil
	}
	return strings.Split(s, ".")
}

// CountLabels returns the number of labels without allocating.
func CountLabels(s string) int {
	s = strings.TrimSuffix(s, ".")
	if s == "" {
		return 0
	}
	return strings.Count(s, ".") + 1
}

// Hash64 returns the FNV-1a hash of s. Shard-striped stores (the
// pipeline's candidate shards, the measurement fleet's watch registry)
// key their stripe selection on it; it is inlined rather than built on
// hash/fnv so the hot paths stay allocation-free. Callers hash the
// Canonical form of a name so equal domains always land in one stripe.
func Hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Mix64 is the splitmix64 finalizer: a bijective avalanche over x. Every
// seeded per-domain derivation (the pipeline's decision generators, the
// RDAP dispatcher's failure injection) mixes through this one function,
// so the cross-package determinism contract has a single definition —
// the derived decision for a (seed, domain) pair is the same everywhere.
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// TLD returns the rightmost label of s, or "" for the root.
func TLD(s string) string {
	s = strings.TrimSuffix(s, ".")
	if i := strings.LastIndexByte(s, '.'); i >= 0 {
		return s[i+1:]
	}
	return s
}

// Parent returns the name with its leftmost label removed
// ("a.b.c" → "b.c"). The parent of a single label is the root "".
func Parent(s string) string {
	s = strings.TrimSuffix(s, ".")
	if i := strings.IndexByte(s, '.'); i >= 0 {
		return s[i+1:]
	}
	return ""
}

// IsSubdomain reports whether child equals parent or falls underneath it.
// Both arguments must be canonical. Every name is a subdomain of the root.
func IsSubdomain(child, parent string) bool {
	if parent == "" {
		return true
	}
	if child == parent {
		return true
	}
	return strings.HasSuffix(child, "."+parent)
}

// Join concatenates labels into a presentation-form name, skipping empties.
func Join(labels ...string) string {
	nonEmpty := labels[:0:0]
	for _, l := range labels {
		if l != "" {
			nonEmpty = append(nonEmpty, l)
		}
	}
	return strings.Join(nonEmpty, ".")
}

// Compare orders names in DNSSEC canonical order (RFC 4034 §6.1): by label
// from the rightmost, case-insensitively (inputs are assumed canonical).
// It returns -1, 0 or +1.
func Compare(a, b string) int {
	la, lb := Labels(a), Labels(b)
	for i := 1; i <= len(la) && i <= len(lb); i++ {
		x, y := la[len(la)-i], lb[len(lb)-i]
		if x != y {
			if x < y {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(la) < len(lb):
		return -1
	case len(la) > len(lb):
		return 1
	}
	return 0
}

// Wire encoding -------------------------------------------------------------

// AppendWire appends the uncompressed RFC 1035 wire encoding of a canonical
// name to buf and returns the extended slice.
func AppendWire(buf []byte, name string) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		return append(buf, 0), nil
	}
	if len(name) > MaxNameLen {
		return buf, ErrTooLong
	}
	start := 0
	for i := 0; i <= len(name); i++ {
		if i == len(name) || name[i] == '.' {
			l := name[start:i]
			if l == "" {
				return buf, ErrEmpty
			}
			if len(l) > MaxLabelLen {
				return buf, ErrLabelTooLong
			}
			buf = append(buf, byte(len(l)))
			buf = append(buf, l...)
			start = i + 1
		}
	}
	return append(buf, 0), nil
}

// Compressor tracks name→offset mappings for DNS message compression.
// A zero Compressor is ready for use on a message built from offset 0.
type Compressor struct {
	offsets map[string]int
}

// Append writes name at the current end of msg using compression pointers
// into earlier occurrences where possible, and records new suffix offsets.
func (c *Compressor) Append(msg []byte, name string) ([]byte, error) {
	if c.offsets == nil {
		c.offsets = make(map[string]int)
	}
	name = Canonical(name)
	for {
		if name == "" {
			return append(msg, 0), nil
		}
		if off, ok := c.offsets[name]; ok && off < 0x4000 {
			return append(msg, 0xC0|byte(off>>8), byte(off)), nil
		}
		// Record the offset of this suffix if it is pointer-addressable.
		if len(msg) < 0x4000 {
			c.offsets[name] = len(msg)
		}
		var label string
		if i := strings.IndexByte(name, '.'); i >= 0 {
			label, name = name[:i], name[i+1:]
		} else {
			label, name = name, ""
		}
		if label == "" {
			return msg, ErrEmpty
		}
		if len(label) > MaxLabelLen {
			return msg, ErrLabelTooLong
		}
		msg = append(msg, byte(len(label)))
		msg = append(msg, label...)
	}
}

// ReadWire decodes a (possibly compressed) name from msg starting at off.
// It returns the canonical name and the offset just past the name's
// encoding in the original stream (compression targets do not advance it).
func ReadWire(msg []byte, off int) (name string, next int, err error) {
	var sb strings.Builder
	jumped := false
	hops := 0
	next = off
	for {
		if off >= len(msg) {
			return "", 0, ErrTruncated
		}
		b := msg[off]
		switch {
		case b == 0:
			if !jumped {
				next = off + 1
			}
			return Canonical(sb.String()), next, nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return "", 0, ErrTruncated
			}
			ptr := int(b&0x3F)<<8 | int(msg[off+1])
			if !jumped {
				next = off + 2
			}
			if ptr >= off {
				return "", 0, ErrBadCompress
			}
			off = ptr
			jumped = true
			if hops++; hops > MaxLabels {
				return "", 0, ErrPointerLoop
			}
		case b&0xC0 != 0:
			return "", 0, ErrBadCompress
		default:
			l := int(b)
			if off+1+l > len(msg) {
				return "", 0, ErrTruncated
			}
			if sb.Len() > 0 {
				sb.WriteByte('.')
			}
			sb.Write(msg[off+1 : off+1+l])
			if sb.Len() > MaxNameLen {
				return "", 0, ErrTooLong
			}
			off += 1 + l
		}
	}
}
