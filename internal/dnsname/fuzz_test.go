package dnsname

import (
	"testing"
)

// FuzzReadWire drives the compressed-name decoder with arbitrary bytes:
// it must never panic, never loop, and every successfully decoded name
// must round-trip through AppendWire to the identical canonical string.
func FuzzReadWire(f *testing.F) {
	seed, _ := AppendWire(nil, "www.example.com")
	f.Add(seed, 0)
	f.Add([]byte{0xC0, 0x00}, 0)
	f.Add([]byte{3, 'c', 'o', 'm', 0, 0xC0, 0x00}, 5)
	f.Add([]byte{}, 0)
	f.Fuzz(func(t *testing.T, data []byte, off int) {
		if off < 0 || off > len(data) {
			off = 0
		}
		name, next, err := ReadWire(data, off)
		if err != nil {
			return
		}
		if next < off || next > len(data) {
			t.Fatalf("next offset %d outside [%d, %d]", next, off, len(data))
		}
		if Canonical(name) != name {
			t.Fatalf("decoded name %q not canonical", name)
		}
		// Names short enough to be legal must re-encode and decode back.
		wire, err := AppendWire(nil, name)
		if err != nil {
			return // over-long names can be smuggled via pointers
		}
		again, _, err := ReadWire(wire, 0)
		if err != nil || again != name {
			t.Fatalf("round trip %q → %q (%v)", name, again, err)
		}
	})
}

// FuzzCompressorAgainstReader checks that whatever the Compressor emits,
// the reader recovers the original names, for arbitrary pairs of names
// derived from the fuzz input.
func FuzzCompressorAgainstReader(f *testing.F) {
	f.Add("www.example.com", "mail.example.com")
	f.Add("a.b", "b")
	f.Fuzz(func(t *testing.T, n1, n2 string) {
		n1, n2 = Canonical(n1), Canonical(n2)
		if Check(n1) != nil || Check(n2) != nil {
			return
		}
		var c Compressor
		msg, err := c.Append(nil, n1)
		if err != nil {
			return
		}
		mid := len(msg)
		msg, err = c.Append(msg, n2)
		if err != nil {
			return
		}
		got1, next, err := ReadWire(msg, 0)
		if err != nil || got1 != n1 || next != mid {
			t.Fatalf("first: %q/%d, %v (want %q/%d)", got1, next, err, n1, mid)
		}
		got2, end, err := ReadWire(msg, mid)
		if err != nil || got2 != n2 || end != len(msg) {
			t.Fatalf("second: %q/%d, %v (want %q/%d)", got2, end, err, n2, len(msg))
		}
	})
}
