package dnsname

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestCanonical(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Example.COM.", "example.com"},
		{"example.com", "example.com"},
		{"", ""},
		{".", ""},
		{"WWW.EXAMPLE.ORG", "www.example.org"},
	}
	for _, c := range cases {
		if got := Canonical(c.in); got != c.want {
			t.Errorf("Canonical(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCheckValid(t *testing.T) {
	valid := []string{
		"example.com", "a.b.c.d.e", "xn--bcher-kva.example", "1domain.net",
		"a-b.com", "_dmarc.example.com", "*.example.com", "x.co.",
		strings.Repeat("a", 63) + ".com", "",
	}
	for _, s := range valid {
		if err := Check(s); err != nil {
			t.Errorf("Check(%q) = %v, want nil", s, err)
		}
	}
}

func TestCheckInvalid(t *testing.T) {
	cases := []struct {
		in   string
		want error
	}{
		{strings.Repeat("a", 64) + ".com", ErrLabelTooLong},
		{"a..b", ErrEmpty},
		{"-bad.com", ErrBadHyphen},
		{"bad-.com", ErrBadHyphen},
		{"ba d.com", ErrBadChar},
		{"exa$mple.com", ErrBadChar},
		{"a_b.com", ErrBadChar},
		{"**.com", ErrBadChar},
		{strings.Repeat("a.", 140) + "com", ErrTooLong},
	}
	for _, c := range cases {
		if err := Check(c.in); !errors.Is(err, c.want) {
			t.Errorf("Check(%q) = %v, want %v", c.in, err, c.want)
		}
	}
}

func TestLabelOps(t *testing.T) {
	if got := Labels("a.b.c"); len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("Labels = %v", got)
	}
	if Labels("") != nil {
		t.Error("Labels(root) should be nil")
	}
	if got := CountLabels("a.b.c"); got != 3 {
		t.Errorf("CountLabels = %d", got)
	}
	if got := CountLabels(""); got != 0 {
		t.Errorf("CountLabels(root) = %d", got)
	}
	if got := TLD("foo.bar.shop"); got != "shop" {
		t.Errorf("TLD = %q", got)
	}
	if got := TLD("com"); got != "com" {
		t.Errorf("TLD(com) = %q", got)
	}
	if got := Parent("a.b.c"); got != "b.c" {
		t.Errorf("Parent = %q", got)
	}
	if got := Parent("com"); got != "" {
		t.Errorf("Parent(com) = %q", got)
	}
	if got := Join("www", "example", "com"); got != "www.example.com" {
		t.Errorf("Join = %q", got)
	}
	if got := Join("", "example", "com"); got != "example.com" {
		t.Errorf("Join with empty = %q", got)
	}
}

func TestIsSubdomain(t *testing.T) {
	cases := []struct {
		child, parent string
		want          bool
	}{
		{"a.example.com", "example.com", true},
		{"example.com", "example.com", true},
		{"example.com", "com", true},
		{"badexample.com", "example.com", false},
		{"example.com", "a.example.com", false},
		{"anything.at.all", "", true},
	}
	for _, c := range cases {
		if got := IsSubdomain(c.child, c.parent); got != c.want {
			t.Errorf("IsSubdomain(%q, %q) = %v, want %v", c.child, c.parent, got, c.want)
		}
	}
}

func TestCompareCanonicalOrder(t *testing.T) {
	// RFC 4034 §6.1 example ordering.
	sorted := []string{"example", "a.example", "yljkjljk.a.example", "z.a.example", "zabc.a.example", "z.example"}
	for i := 0; i < len(sorted)-1; i++ {
		if Compare(sorted[i], sorted[i+1]) >= 0 {
			t.Errorf("Compare(%q, %q) >= 0, want < 0", sorted[i], sorted[i+1])
		}
		if Compare(sorted[i+1], sorted[i]) <= 0 {
			t.Errorf("Compare(%q, %q) <= 0, want > 0", sorted[i+1], sorted[i])
		}
	}
	if Compare("a.example", "A.EXAMPLE") != 0 {
		// inputs assumed canonical; canonicalize first
		if Compare(Canonical("a.example"), Canonical("A.EXAMPLE")) != 0 {
			t.Error("Compare of equal canonical names != 0")
		}
	}
}

func TestWireRoundTrip(t *testing.T) {
	names := []string{"", "com", "example.com", "www.a-b.example.shop", strings.Repeat("a", 63) + ".x"}
	for _, n := range names {
		buf, err := AppendWire(nil, n)
		if err != nil {
			t.Fatalf("AppendWire(%q): %v", n, err)
		}
		got, next, err := ReadWire(buf, 0)
		if err != nil {
			t.Fatalf("ReadWire(%q): %v", n, err)
		}
		if got != n || next != len(buf) {
			t.Errorf("round trip %q → %q (next=%d len=%d)", n, got, next, len(buf))
		}
	}
}

func TestAppendWireErrors(t *testing.T) {
	if _, err := AppendWire(nil, strings.Repeat("a", 64)+".com"); !errors.Is(err, ErrLabelTooLong) {
		t.Errorf("want ErrLabelTooLong, got %v", err)
	}
	if _, err := AppendWire(nil, strings.Repeat("ab.", 100)+"com"); !errors.Is(err, ErrTooLong) {
		t.Errorf("want ErrTooLong, got %v", err)
	}
}

func TestCompression(t *testing.T) {
	var c Compressor
	msg, err := c.Append(nil, "www.example.com")
	if err != nil {
		t.Fatal(err)
	}
	full := len(msg)
	msg, err = c.Append(msg, "mail.example.com")
	if err != nil {
		t.Fatal(err)
	}
	// Second name should use a pointer: 1+4 bytes label "mail" + 2 pointer.
	if len(msg)-full != 1+4+2 {
		t.Errorf("compressed encoding used %d bytes, want 7", len(msg)-full)
	}
	n1, next1, err := ReadWire(msg, 0)
	if err != nil || n1 != "www.example.com" {
		t.Fatalf("decode first: %q %v", n1, err)
	}
	n2, next2, err := ReadWire(msg, next1)
	if err != nil || n2 != "mail.example.com" {
		t.Fatalf("decode second: %q %v", n2, err)
	}
	if next2 != len(msg) {
		t.Errorf("next2 = %d, want %d", next2, len(msg))
	}
}

func TestCompressionExactRepeat(t *testing.T) {
	var c Compressor
	msg, _ := c.Append(nil, "example.com")
	before := len(msg)
	msg, _ = c.Append(msg, "example.com")
	if len(msg)-before != 2 {
		t.Errorf("exact repeat should be a bare pointer (2 bytes), got %d", len(msg)-before)
	}
	if n, _, _ := ReadWire(msg, before); n != "example.com" {
		t.Errorf("decoded %q", n)
	}
}

func TestReadWireRejectsForwardPointer(t *testing.T) {
	// Pointer at offset 0 pointing to itself.
	if _, _, err := ReadWire([]byte{0xC0, 0x00}, 0); err == nil {
		t.Error("self-pointer should fail")
	}
	// Truncated label.
	if _, _, err := ReadWire([]byte{5, 'a', 'b'}, 0); !errors.Is(err, ErrTruncated) {
		t.Errorf("want ErrTruncated, got %v", err)
	}
	// Truncated pointer.
	if _, _, err := ReadWire([]byte{0xC0}, 0); !errors.Is(err, ErrTruncated) {
		t.Errorf("want ErrTruncated, got %v", err)
	}
	// Reserved label type 0x80.
	if _, _, err := ReadWire([]byte{0x80, 0x01}, 0); !errors.Is(err, ErrBadCompress) {
		t.Errorf("want ErrBadCompress, got %v", err)
	}
	// Missing terminator.
	if _, _, err := ReadWire([]byte{1, 'a'}, 0); !errors.Is(err, ErrTruncated) {
		t.Errorf("want ErrTruncated, got %v", err)
	}
}

func TestPropertyCanonicalIdempotent(t *testing.T) {
	f := func(s string) bool {
		c := Canonical(s)
		return Canonical(c) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyCompareIsOrdering(t *testing.T) {
	// Compare must be antisymmetric and consistent with equality on label slices.
	f := func(a, b uint8) bool {
		na := genName(int(a))
		nb := genName(int(b))
		ab, ba := Compare(na, nb), Compare(nb, na)
		if ab != -ba {
			return false
		}
		return (ab == 0) == (na == nb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyWireRoundTrip(t *testing.T) {
	f := func(seed uint16) bool {
		n := genName(int(seed))
		buf, err := AppendWire(nil, n)
		if err != nil {
			return false
		}
		got, _, err := ReadWire(buf, 0)
		return err == nil && got == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// genName builds a small deterministic valid name from a seed.
func genName(seed int) string {
	labels := []string{"a", "bb", "ccc", "d1", "e-f", "example", "com", "net", "shop"}
	n := seed%3 + 1
	parts := make([]string, 0, n)
	for i := 0; i < n; i++ {
		parts = append(parts, labels[(seed+i*7)%len(labels)])
		seed /= 3
	}
	return strings.Join(parts, ".")
}

func BenchmarkAppendWire(b *testing.B) {
	buf := make([]byte, 0, 64)
	for i := 0; i < b.N; i++ {
		buf, _ = AppendWire(buf[:0], "www.long-subdomain.example.com")
	}
}

func BenchmarkReadWire(b *testing.B) {
	buf, _ := AppendWire(nil, "www.long-subdomain.example.com")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := ReadWire(buf, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Compare("www.example.com", "mail.example.com")
	}
}
