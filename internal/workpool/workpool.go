// Package workpool provides the bounded work-stealing loop the hot
// paths share: N indexed items executed by up to W goroutines pulling
// from an atomic counter, with a completion barrier. Both the ingest
// engine's batch screening (core.HandleBatch) and the RDAP dispatch
// engine's drain rounds (rdap.Dispatcher) run on it, so the hottest
// concurrency idiom in the repo has one implementation to review.
package workpool

import (
	"sync"
	"sync/atomic"
)

// AtomicMax raises m to n if n is larger — the lock-free high-water-mark
// idiom the engines' batch-width counters share.
func AtomicMax(m *atomic.Int64, n int64) {
	for {
		cur := m.Load()
		if n <= cur || m.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Run invokes fn(i) for every i in [0, n), spreading calls over up to
// workers goroutines, and returns once all calls complete. workers ≤ 1
// (or n ≤ 1) executes serially on the caller's goroutine — the barrier
// then costs nothing, which is what keeps single-threaded simulation
// paths byte-identical to parallel ones. fn must be safe for concurrent
// invocation with distinct indices.
func Run(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
