// Package workpool provides the bounded work-stealing loop the hot
// paths share: N indexed items executed by up to W goroutines pulling
// from an atomic counter, with a completion barrier. All five engines
// run on it — the ingest engine's batch screening (core.HandleBatch,
// DESIGN.md §3), the RDAP dispatcher's drain rounds (§6), the batched
// clock's parallel event groups and the fleet's probe rounds (§7), and
// the world builder's compile and commit fan-outs (§8–§9) — so the
// hottest concurrency idiom in the repo has one implementation to
// review.
//
// Determinism contract: Run promises nothing about execution order, so
// callers must hand it commutative work (or, like the builder, buffer
// order-sensitive effects and apply them serially afterwards); in
// exchange, workers ≤ 1 degenerates to a plain loop on the caller's
// goroutine, which is what keeps every engine's serial mode a true
// zero-overhead baseline.
package workpool

import (
	"sync"
	"sync/atomic"
)

// AtomicMax raises m to n if n is larger — the lock-free high-water-mark
// idiom the engines' batch-width counters share.
func AtomicMax(m *atomic.Int64, n int64) {
	for {
		cur := m.Load()
		if n <= cur || m.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Run invokes fn(i) for every i in [0, n), spreading calls over up to
// workers goroutines, and returns once all calls complete. workers ≤ 1
// (or n ≤ 1) executes serially on the caller's goroutine — the barrier
// then costs nothing, which is what keeps single-threaded simulation
// paths byte-identical to parallel ones. fn must be safe for concurrent
// invocation with distinct indices.
func Run(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
