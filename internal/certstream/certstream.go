// Package certstream implements a Certstream-style firehose of newly
// logged certificates: an in-process fan-out hub fed by CT log
// subscriptions, a TCP server broadcasting entries as JSON lines, and a
// reconnecting client. DarkDNS step 1 consumes this feed.
package certstream

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"darkdns/internal/ct"
)

// Event is one feed message: the CT entry plus the feed-observed
// timestamp (the paper uses the Certstream-reported timestamp because CT
// logs expose no insertion time).
type Event struct {
	Seen  time.Time `json:"seen"`
	Log   string    `json:"log"`
	Entry ct.Entry  `json:"entry"`
}

// hubSub is one registered subscriber.
type hubSub struct {
	id int64
	fn func(Event)
}

// Hub fans CT log entries out to subscribers. It is the in-process feed
// used by the simulation; Server wraps it for network delivery.
//
// The subscriber list is copy-on-write: Subscribe and unsubscribe (rare)
// rebuild it under mu, while publish (the per-certificate hot path) loads
// it atomically — no lock is held during subscriber callbacks and fan-out
// allocates nothing, so one slow subscriber never serializes the others'
// registration and parallel feeders never contend.
type Hub struct {
	mu     sync.Mutex
	subs   atomic.Pointer[[]hubSub]
	nextID int64
	// PrecertOnly drops final-certificate entries, matching the paper's
	// methodology (footnote 1).
	PrecertOnly bool
}

// NewHub creates a hub that forwards precertificate entries only.
func NewHub() *Hub {
	return &Hub{PrecertOnly: true}
}

// Attach subscribes the hub to a CT log. now supplies feed-observation
// timestamps (pass the simulation clock's Now).
func (h *Hub) Attach(log *ct.Log, now func() time.Time) {
	log.Subscribe(func(e ct.Entry) {
		if h.PrecertOnly && e.Kind != ct.PreCertificate {
			return
		}
		h.publish(Event{Seen: now(), Log: log.Name(), Entry: e})
	})
}

// Poll tails a remote CT log's RFC 6962 HTTP API from index start,
// publishing each new entry into the hub — how real Certstream
// aggregators consume logs. It blocks until ctx is done and returns the
// next unread index.
func (h *Hub) Poll(ctx context.Context, logName string, client *ct.Client, start int64, pollEvery time.Duration) (int64, error) {
	return client.Tail(ctx, start, pollEvery, func(e ct.Entry) {
		if h.PrecertOnly && e.Kind != ct.PreCertificate {
			return
		}
		h.publish(Event{Seen: time.Now(), Log: logName, Entry: e})
	})
}

// publish delivers ev to all subscribers synchronously, without holding
// the hub lock during callbacks.
func (h *Hub) publish(ev Event) {
	if subs := h.subs.Load(); subs != nil {
		for _, s := range *subs {
			s.fn(ev)
		}
	}
}

// PublishBatch delivers a slice of events in order. The subscriber list
// is resolved once for the whole batch, so replay tools and batch
// feeders amortize the fan-out setup across events.
func (h *Hub) PublishBatch(evs []Event) {
	subs := h.subs.Load()
	if subs == nil {
		return
	}
	for _, ev := range evs {
		if h.PrecertOnly && ev.Entry.Kind != ct.PreCertificate {
			continue
		}
		for _, s := range *subs {
			s.fn(ev)
		}
	}
}

// Subscribe registers fn and returns an unsubscribe handle.
func (h *Hub) Subscribe(fn func(Event)) (cancel func()) {
	h.mu.Lock()
	id := h.nextID
	h.nextID++
	var cur []hubSub
	if p := h.subs.Load(); p != nil {
		cur = *p
	}
	next := make([]hubSub, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = hubSub{id: id, fn: fn}
	h.subs.Store(&next)
	h.mu.Unlock()
	return func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		p := h.subs.Load()
		if p == nil {
			return
		}
		next := make([]hubSub, 0, len(*p))
		for _, s := range *p {
			if s.id != id {
				next = append(next, s)
			}
		}
		h.subs.Store(&next)
	}
}

// Server broadcasts hub events to TCP clients as newline-delimited JSON.
type Server struct {
	hub *Hub

	mu      sync.Mutex
	ln      net.Listener
	conns   map[net.Conn]chan []byte
	closed  bool
	unsub   func()
	dropped int64
}

// NewServer creates a server over hub.
func NewServer(hub *Hub) *Server {
	return &Server{hub: hub, conns: make(map[net.Conn]chan []byte)}
}

// Serve listens on addr ("127.0.0.1:0" for tests) and serves until Close.
// It returns the bound address on the returned channel once listening.
func (s *Server) Serve(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.ln = ln
	s.unsub = s.hub.Subscribe(s.broadcast)
	s.mu.Unlock()
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		ch := make(chan []byte, 1024)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = ch
		s.mu.Unlock()
		go s.writeLoop(conn, ch)
	}
}

func (s *Server) writeLoop(conn net.Conn, ch chan []byte) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	w := bufio.NewWriter(conn)
	for line := range ch {
		if _, err := w.Write(line); err != nil {
			return
		}
		if len(ch) == 0 {
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

// broadcast fans one event out to every connected client. Slow clients
// drop events rather than blocking the feed (matching Certstream's
// best-effort delivery).
func (s *Server) broadcast(ev Event) {
	line, err := json.Marshal(ev)
	if err != nil {
		return
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ch := range s.conns {
		select {
		case ch <- line:
		default:
			s.dropped++
		}
	}
}

// Dropped returns the number of events dropped due to slow clients.
func (s *Server) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Close stops the listener and disconnects clients.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	if s.unsub != nil {
		s.unsub()
	}
	ln := s.ln
	for conn, ch := range s.conns {
		close(ch)
		_ = conn
	}
	s.conns = map[net.Conn]chan []byte{}
	s.mu.Unlock()
	if ln != nil {
		return ln.Close()
	}
	return nil
}

// Client consumes a server's feed with automatic reconnection.
type Client struct {
	addr    string
	backoff time.Duration
}

// NewClient creates a client for the feed at addr.
func NewClient(addr string) *Client {
	return &Client{addr: addr, backoff: 250 * time.Millisecond}
}

// ErrStopped is returned by Run when the context is cancelled.
var ErrStopped = errors.New("certstream: client stopped")

// Run connects and delivers events to fn until ctx is cancelled,
// reconnecting with backoff on errors.
func (c *Client) Run(ctx context.Context, fn func(Event)) error {
	for {
		if err := c.runOnce(ctx, fn); err != nil && ctx.Err() != nil {
			return ErrStopped
		}
		select {
		case <-ctx.Done():
			return ErrStopped
		case <-time.After(c.backoff):
		}
	}
}

func (c *Client) runOnce(ctx context.Context, fn func(Event)) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	go func() {
		<-ctx.Done()
		conn.Close()
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("certstream: bad event: %w", err)
		}
		fn(ev)
	}
	return sc.Err()
}
