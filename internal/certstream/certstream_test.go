package certstream

import (
	"context"
	"sync"
	"testing"
	"time"

	"darkdns/internal/ct"
)

var t0 = time.Date(2023, 11, 1, 0, 0, 0, 0, time.UTC)

func TestHubForwardsPrecertsOnly(t *testing.T) {
	hub := NewHub()
	log := ct.NewLog("argon", nil)
	hub.Attach(log, func() time.Time { return t0 })
	var got []Event
	hub.Subscribe(func(ev Event) { got = append(got, ev) })

	log.Append(t0, ct.PreCertificate, "CA", "a.com", nil, t0)
	log.Append(t0, ct.FinalCertificate, "CA", "b.com", nil, t0)
	log.Append(t0, ct.PreCertificate, "CA", "c.com", nil, t0)

	if len(got) != 2 || got[0].Entry.CN != "a.com" || got[1].Entry.CN != "c.com" {
		t.Fatalf("events: %+v", got)
	}
	if got[0].Log != "argon" {
		t.Errorf("log name: %q", got[0].Log)
	}
}

func TestHubPublishBatch(t *testing.T) {
	hub := NewHub()
	var got []Event
	hub.Subscribe(func(ev Event) { got = append(got, ev) })

	evs := []Event{
		{Seen: t0, Log: "replay", Entry: ct.Entry{Kind: ct.PreCertificate, CN: "a.com"}},
		{Seen: t0.Add(time.Second), Log: "replay", Entry: ct.Entry{Kind: ct.FinalCertificate, CN: "b.com"}},
		{Seen: t0.Add(2 * time.Second), Log: "replay", Entry: ct.Entry{Kind: ct.PreCertificate, CN: "c.com"}},
	}
	hub.PublishBatch(evs)

	// PrecertOnly filtering must match the per-event publish path.
	if len(got) != 2 || got[0].Entry.CN != "a.com" || got[1].Entry.CN != "c.com" {
		t.Fatalf("batch delivery: %+v", got)
	}

	hub.PrecertOnly = false
	got = nil
	hub.PublishBatch(evs)
	if len(got) != 3 {
		t.Fatalf("unfiltered batch delivered %d events", len(got))
	}

	// A hub with no subscribers must not panic.
	NewHub().PublishBatch(evs)
}

func TestHubUnsubscribe(t *testing.T) {
	hub := NewHub()
	log := ct.NewLog("x", nil)
	hub.Attach(log, func() time.Time { return t0 })
	n := 0
	cancel := hub.Subscribe(func(Event) { n++ })
	log.Append(t0, ct.PreCertificate, "CA", "a.com", nil, t0)
	cancel()
	log.Append(t0, ct.PreCertificate, "CA", "b.com", nil, t0)
	if n != 1 {
		t.Errorf("n = %d, want 1", n)
	}
}

func TestHubSeenTimestampUsesClock(t *testing.T) {
	hub := NewHub()
	log := ct.NewLog("x", nil)
	now := t0
	hub.Attach(log, func() time.Time { return now })
	var seen time.Time
	hub.Subscribe(func(ev Event) { seen = ev.Seen })
	now = t0.Add(42 * time.Minute)
	log.Append(now, ct.PreCertificate, "CA", "a.com", nil, now)
	if !seen.Equal(t0.Add(42 * time.Minute)) {
		t.Errorf("Seen = %v", seen)
	}
}

func TestServerClientEndToEnd(t *testing.T) {
	hub := NewHub()
	log := ct.NewLog("argon", nil)
	hub.Attach(log, time.Now)
	srv := NewServer(hub)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	var got []string
	ready := make(chan struct{}, 16)
	go NewClient(addr.String()).Run(ctx, func(ev Event) {
		mu.Lock()
		got = append(got, ev.Entry.CN)
		mu.Unlock()
		ready <- struct{}{}
	})

	// Give the client a moment to connect, then publish.
	deadline := time.After(5 * time.Second)
	for i := 0; ; i++ {
		time.Sleep(20 * time.Millisecond)
		log.Append(time.Now(), ct.PreCertificate, "CA", "stream.com", nil, time.Now())
		select {
		case <-ready:
		case <-deadline:
			t.Fatal("client never received an event")
		default:
			if i > 100 {
				t.Fatal("client never received an event")
			}
			continue
		}
		break
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) == 0 || got[0] != "stream.com" {
		t.Fatalf("got %v", got)
	}
}

func TestClientStopsOnContextCancel(t *testing.T) {
	hub := NewHub()
	srv := NewServer(hub)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- NewClient(addr.String()).Run(ctx, func(Event) {}) }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != ErrStopped {
			t.Errorf("Run returned %v, want ErrStopped", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client did not stop")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv := NewServer(NewHub())
	if _, err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestHubPollOverHTTP(t *testing.T) {
	// Full aggregator chain: CT log → RFC 6962 HTTP API → hub poller →
	// subscribers, exactly how real Certstream feeds are built.
	log := ct.NewLog("argon", nil)
	for i := 0; i < 3; i++ {
		log.Append(t0, ct.PreCertificate, "CA", "seed.com", nil, t0)
	}
	log.Append(t0, ct.FinalCertificate, "CA", "final.com", nil, t0)
	srv := ct.NewServer(log, time.Now)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	hub := NewHub()
	var mu sync.Mutex
	var got []string
	done := make(chan struct{})
	hub.Subscribe(func(ev Event) {
		mu.Lock()
		got = append(got, ev.Entry.CN)
		if len(got) == 4 {
			close(done)
		}
		mu.Unlock()
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go hub.Poll(ctx, "argon", ct.NewClient("http://"+addr.String()), 0, 10*time.Millisecond)

	time.Sleep(50 * time.Millisecond)
	log.Append(t0, ct.PreCertificate, "CA", "live.com", nil, t0)

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("poller never delivered")
	}
	mu.Lock()
	defer mu.Unlock()
	// The final certificate must be filtered (PrecertOnly); 3 seeds + 1
	// live precert remain.
	for _, cn := range got {
		if cn == "final.com" {
			t.Error("final certificate leaked through PrecertOnly hub")
		}
	}
	if got[len(got)-1] != "live.com" {
		t.Errorf("live entry missing: %v", got)
	}
}

func TestSlowClientDropsNotBlocks(t *testing.T) {
	hub := NewHub()
	log := ct.NewLog("x", nil)
	hub.Attach(log, time.Now)
	srv := NewServer(hub)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Connect but never read.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go NewClient(addr.String()).Run(ctx, func(Event) {
		time.Sleep(time.Hour) // wedge the consumer
	})
	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	for i := 0; i < 5000; i++ {
		log.Append(time.Now(), ct.PreCertificate, "CA", "flood.com", nil, time.Now())
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("publishing blocked on slow client: %v", elapsed)
	}
}
