package registry

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"darkdns/internal/simclock"
)

// TestPropertyLedgerInvariants drives a registry with a random operation
// sequence and checks structural invariants that must hold regardless of
// schedule: creation precedes deletion, zone entry precedes zone exit,
// zone membership matches ledger liveness after a rebuild, and the live
// zone only ever contains active registrations.
func TestPropertyLedgerInvariants(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			clk := simclock.NewSim(t0)
			r := New(DefaultConfig("com"), clk, rand.New(rand.NewSource(seed+100)))
			defer r.Stop()

			active := make(map[string]bool)
			var pool []string
			for step := 0; step < 400; step++ {
				switch rng.Intn(4) {
				case 0, 1: // register
					d := fmt.Sprintf("p%d-%d.com", seed, step)
					if _, err := r.Register(d, "R", []string{"ns1.x.net"}, netip.Addr{}); err == nil {
						active[d] = true
						pool = append(pool, d)
					}
				case 2: // delete a random active domain
					if len(pool) > 0 {
						d := pool[rng.Intn(len(pool))]
						if active[d] {
							if err := r.Delete(d); err != nil {
								t.Fatalf("delete active %s: %v", d, err)
							}
							active[d] = false
						}
					}
				case 3: // advance time (zone rebuilds fire)
					clk.Advance(time.Duration(rng.Intn(180)) * time.Second)
				}
			}
			clk.Advance(2 * time.Minute) // final rebuild

			for _, entry := range r.Ledger() {
				if !entry.Deleted.IsZero() && entry.Deleted.Before(entry.Created) {
					t.Fatalf("%s deleted before created", entry.Domain)
				}
				if !entry.OutOfZoneAt.IsZero() && entry.InZoneAt.IsZero() {
					t.Fatalf("%s left the zone without entering it", entry.Domain)
				}
				if !entry.OutOfZoneAt.IsZero() && entry.OutOfZoneAt.Before(entry.InZoneAt) {
					t.Fatalf("%s zone interval inverted", entry.Domain)
				}
				if !entry.InZoneAt.IsZero() && entry.InZoneAt.Before(entry.Created) {
					t.Fatalf("%s in zone before creation", entry.Domain)
				}
			}
			// After the final rebuild, zone membership equals liveness.
			for d, live := range active {
				if r.InZone(d) != live {
					t.Fatalf("%s: InZone=%v, ledger-live=%v", d, r.InZone(d), live)
				}
			}
		})
	}
}

// TestPropertySerialMonotone checks the SOA serial never decreases across
// arbitrary schedules.
func TestPropertySerialMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	clk := simclock.NewSim(t0)
	r := New(DefaultConfig("net"), clk, rand.New(rand.NewSource(6)))
	defer r.Stop()
	last := r.Serial()
	for i := 0; i < 300; i++ {
		if rng.Intn(2) == 0 {
			r.Register(fmt.Sprintf("s%d.net", i), "R", []string{"ns1.x.net"}, netip.Addr{})
		}
		clk.Advance(time.Duration(rng.Intn(120)) * time.Second)
		if s := r.Serial(); s < last {
			t.Fatalf("serial regressed: %d → %d", last, s)
		} else {
			last = s
		}
	}
}
