package registry

import (
	"errors"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"darkdns/internal/simclock"
	"darkdns/internal/zoneset"
)

var t0 = time.Date(2023, 11, 1, 0, 0, 0, 0, time.UTC)

func newTestRegistry(tld string) (*Registry, *simclock.Sim) {
	clk := simclock.NewSim(t0)
	cfg := DefaultConfig(tld)
	r := New(cfg, clk, rand.New(rand.NewSource(1)))
	return r, clk
}

func TestRegisterAppearsAfterZoneRebuild(t *testing.T) {
	r, clk := newTestRegistry("com")
	defer r.Stop()
	reg, err := r.Register("example.com", "GoDaddy", []string{"ns1.cloudflare.com"}, netip.MustParseAddr("104.16.0.5"))
	if err != nil {
		t.Fatal(err)
	}
	if reg.Created != t0 {
		t.Errorf("Created = %v", reg.Created)
	}
	if r.InZone("example.com") {
		t.Error("domain visible before zone rebuild")
	}
	clk.Advance(60 * time.Second) // com rebuilds every 60 s
	if !r.InZone("example.com") {
		t.Error("domain not visible after rebuild")
	}
	got, ok := r.Lookup("example.com")
	if !ok || got.InZoneAt != t0.Add(60*time.Second) {
		t.Errorf("InZoneAt = %v", got.InZoneAt)
	}
}

func TestZoneCadenceByTLD(t *testing.T) {
	if DefaultConfig("com").ZoneUpdateEvery != time.Minute {
		t.Error("com cadence")
	}
	if DefaultConfig("net").ZoneUpdateEvery != time.Minute {
		t.Error("net cadence")
	}
	if DefaultConfig("xyz").ZoneUpdateEvery != 20*time.Minute {
		t.Error("xyz cadence")
	}
	if DefaultConfig("org").ZoneUpdateEvery != 15*time.Minute {
		t.Error("org cadence")
	}
	if cfg := DefaultConfig("nl"); cfg.InCZDS {
		t.Error("nl should not be in CZDS")
	}
}

func TestDuplicateRegistrationFails(t *testing.T) {
	r, _ := newTestRegistry("com")
	defer r.Stop()
	if _, err := r.Register("x.com", "A", []string{"ns.a.net"}, netip.Addr{}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("x.com", "B", nil, netip.Addr{}); !errors.Is(err, ErrExists) {
		t.Errorf("want ErrExists, got %v", err)
	}
}

func TestWrongZoneRejected(t *testing.T) {
	r, _ := newTestRegistry("com")
	defer r.Stop()
	if _, err := r.Register("x.net", "A", nil, netip.Addr{}); !errors.Is(err, ErrWrongZone) {
		t.Errorf("want ErrWrongZone, got %v", err)
	}
	if _, err := r.Register("sub.x.com", "A", nil, netip.Addr{}); !errors.Is(err, ErrWrongZone) {
		t.Errorf("3-label name: want ErrWrongZone, got %v", err)
	}
}

func TestDeleteLeavesZoneOnRebuild(t *testing.T) {
	r, clk := newTestRegistry("com")
	defer r.Stop()
	r.Register("gone.com", "A", []string{"ns.a.net"}, netip.Addr{})
	clk.Advance(time.Minute)
	if !r.InZone("gone.com") {
		t.Fatal("setup: not in zone")
	}
	if err := r.Delete("gone.com"); err != nil {
		t.Fatal(err)
	}
	if !r.InZone("gone.com") {
		t.Error("delete applied before rebuild")
	}
	clk.Advance(time.Minute)
	if r.InZone("gone.com") {
		t.Error("still in zone after rebuild")
	}
	got, _ := r.Lookup("gone.com")
	if got.OutOfZoneAt.IsZero() || got.Deleted.IsZero() {
		t.Errorf("ledger: %+v", got)
	}
	if err := r.Delete("gone.com"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: %v", err)
	}
}

func TestTransientDomainNeverInZoneOfSnapshot(t *testing.T) {
	// A domain created and deleted between two snapshot publications must
	// never appear in any published snapshot — the paper's core premise.
	clk := simclock.NewSim(t0)
	cfg := DefaultConfig("com")
	r := New(cfg, clk, rand.New(rand.NewSource(1)))
	defer r.Stop()
	var snaps []*zoneset.Snapshot
	r.Subscribe(func(s *zoneset.Snapshot) { snaps = append(snaps, s) })

	clk.Advance(time.Hour) // first snapshot at +24h; register at +1h
	r.Register("transient.com", "GoDaddy", []string{"ns1.cloudflare.com"}, netip.Addr{})
	clk.Advance(3 * time.Hour) // alive 3h, in live zone
	if !r.InZone("transient.com") {
		t.Fatal("should be in live zone")
	}
	r.Delete("transient.com")
	clk.Advance(21 * time.Hour) // past the 24h snapshot point
	if len(snaps) == 0 {
		t.Fatal("no snapshot published")
	}
	for _, s := range snaps {
		if s.Contains("transient.com") {
			t.Error("transient domain leaked into a snapshot")
		}
	}
}

func TestSnapshotCapturesLongLived(t *testing.T) {
	r, clk := newTestRegistry("com")
	defer r.Stop()
	var snaps []*zoneset.Snapshot
	r.Subscribe(func(s *zoneset.Snapshot) { snaps = append(snaps, s) })
	r.Register("stable.com", "A", []string{"ns.a.net"}, netip.Addr{})
	clk.Advance(25 * time.Hour)
	if len(snaps) != 1 || !snaps[0].Contains("stable.com") {
		t.Fatalf("snapshots: %d", len(snaps))
	}
}

func TestSnapshotDelay(t *testing.T) {
	clk := simclock.NewSim(t0)
	cfg := DefaultConfig("com")
	cfg.SnapshotDelay = func(*rand.Rand) time.Duration { return 2 * time.Hour }
	r := New(cfg, clk, rand.New(rand.NewSource(1)))
	defer r.Stop()
	var got []time.Time
	r.Subscribe(func(s *zoneset.Snapshot) { got = append(got, clk.Now()) })
	clk.Advance(24 * time.Hour)
	if len(got) != 0 {
		t.Fatal("snapshot delivered without delay")
	}
	clk.Advance(2 * time.Hour)
	if len(got) != 1 || !got[0].Equal(t0.Add(26*time.Hour)) {
		t.Fatalf("delivery times: %v", got)
	}
}

func TestCCTLDSnapshotsStayPrivate(t *testing.T) {
	// A ccTLD registry still generates daily zone files for its own
	// subscribers (the registry's private view); only CZDS
	// redistribution is off.
	r, clk := newTestRegistry("nl")
	defer r.Stop()
	if r.InCZDS() {
		t.Fatal("nl should not participate in CZDS")
	}
	snaps := 0
	r.Subscribe(func(*zoneset.Snapshot) { snaps++ })
	r.Register("voorbeeld.nl", "Metaregistrar", []string{"ns1.metaregistrar.nl"}, netip.Addr{})
	clk.Advance(72 * time.Hour)
	if snaps == 0 {
		t.Error("registry-side snapshots should still be generated")
	}
	if !r.InZone("voorbeeld.nl") {
		t.Error("ccTLD live zone should still update")
	}
}

func TestSerialBumpsOnlyOnChanges(t *testing.T) {
	r, clk := newTestRegistry("com")
	defer r.Stop()
	s0 := r.Serial()
	clk.Advance(10 * time.Minute) // several rebuild ticks, no changes
	if r.Serial() != s0 {
		t.Error("serial bumped without changes")
	}
	r.Register("x.com", "A", []string{"ns.a.net"}, netip.Addr{})
	clk.Advance(time.Minute)
	if r.Serial() != s0+1 {
		t.Errorf("serial = %d, want %d", r.Serial(), s0+1)
	}
}

func TestDelegationLookup(t *testing.T) {
	r, clk := newTestRegistry("com")
	defer r.Stop()
	r.Register("example.com", "A", []string{"ns1.cloudflare.com", "ns2.cloudflare.com"}, netip.Addr{})
	clk.Advance(time.Minute)
	ns, ok := r.Delegation("example.com")
	if !ok || len(ns) != 2 {
		t.Fatalf("Delegation: %v %v", ns, ok)
	}
	// Subdomain queries hit the covering delegation.
	if _, ok := r.Delegation("www.example.com"); !ok {
		t.Error("subdomain should match delegation")
	}
	if _, ok := r.Delegation("missing.com"); ok {
		t.Error("NXDOMAIN expected")
	}
}

func TestUpdateNS(t *testing.T) {
	r, clk := newTestRegistry("com")
	defer r.Stop()
	r.Register("x.com", "A", []string{"ns1.old.net"}, netip.Addr{})
	clk.Advance(time.Minute)
	if err := r.UpdateNS("x.com", []string{"ns1.new.net"}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Minute)
	ns, _ := r.Delegation("x.com")
	if len(ns) != 1 || ns[0] != "ns1.new.net" {
		t.Errorf("NS after update: %v", ns)
	}
	if err := r.UpdateNS("nope.com", nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("UpdateNS missing: %v", err)
	}
}

func TestRDAPSyncDelay(t *testing.T) {
	r, clk := newTestRegistry("com")
	defer r.Stop()
	r.Register("fresh.com", "NameCheap", []string{"ns.a.net"}, netip.Addr{})
	if _, err := r.RDAPLookup("fresh.com"); !errors.Is(err, RDAPErrNotSynced) {
		t.Errorf("want RDAPErrNotSynced, got %v", err)
	}
	clk.Advance(2 * time.Minute)
	reg, err := r.RDAPLookup("fresh.com")
	if err != nil || reg.Registrar != "NameCheap" {
		t.Errorf("after sync: %+v, %v", reg, err)
	}
}

func TestRDAPGoneAfterDelete(t *testing.T) {
	r, clk := newTestRegistry("com")
	defer r.Stop()
	r.Register("dead.com", "A", []string{"ns.a.net"}, netip.Addr{})
	clk.Advance(5 * time.Minute)
	r.Delete("dead.com")
	clk.Advance(time.Minute)
	if _, err := r.RDAPLookup("dead.com"); !errors.Is(err, ErrNotFound) {
		t.Errorf("want ErrNotFound after delete, got %v", err)
	}
}

func TestRDAPUnknownDomain(t *testing.T) {
	r, _ := newTestRegistry("com")
	defer r.Stop()
	if _, err := r.RDAPLookup("never.com"); !errors.Is(err, ErrNotFound) {
		t.Errorf("want ErrNotFound, got %v", err)
	}
}

func TestReRegistrationAfterDeletion(t *testing.T) {
	r, clk := newTestRegistry("com")
	defer r.Stop()
	r.Register("again.com", "A", []string{"ns.a.net"}, netip.Addr{})
	clk.Advance(2 * time.Minute)
	r.Delete("again.com")
	clk.Advance(time.Minute)
	if _, err := r.Register("again.com", "B", []string{"ns.b.net"}, netip.Addr{}); err != nil {
		t.Fatalf("re-registration: %v", err)
	}
	clk.Advance(3 * time.Minute)
	reg, err := r.RDAPLookup("again.com")
	if err != nil || reg.Registrar != "B" {
		t.Errorf("re-registered RDAP: %+v, %v", reg, err)
	}
	if got := r.Ledger(); len(got) != 2 {
		t.Errorf("ledger entries = %d, want 2", len(got))
	}
}

func TestActiveAndLifetime(t *testing.T) {
	reg := Registration{Created: t0, Deleted: t0.Add(6 * time.Hour)}
	if !reg.Active(t0.Add(time.Hour)) || reg.Active(t0.Add(7*time.Hour)) {
		t.Error("Active")
	}
	if reg.Lifetime() != 6*time.Hour {
		t.Error("Lifetime")
	}
	live := Registration{Created: t0}
	if live.Lifetime() != 0 {
		t.Error("live lifetime should be 0")
	}
}

func BenchmarkRegisterAndRebuild(b *testing.B) {
	clk := simclock.NewSim(t0)
	r := New(DefaultConfig("com"), clk, rand.New(rand.NewSource(1)))
	defer r.Stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Register(domainName(i), "R", []string{"ns1.cloudflare.com"}, netip.Addr{})
		if i%1000 == 999 {
			clk.Advance(time.Minute)
		}
	}
}

func domainName(i int) string {
	const letters = "abcdefghij"
	buf := []byte("dom-xxxxxxxx.com")
	for p := 4; p < 12; p++ {
		buf[p] = letters[i%10]
		i /= 10
	}
	return string(buf)
}
