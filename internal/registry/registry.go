// Package registry simulates a TLD registry: the ground-truth registration
// ledger, the live zone rebuilt on the registry's operational cadence
// (com/net every 60 s, most gTLDs every 15–30 min — the driver behind the
// per-TLD detection-delay differences in Figure 1), daily zone-file
// snapshot publication for CZDS, and the registry-side RDAP data store.
//
// The ledger records every registration ever made, including domains
// deleted before ever entering a published snapshot — the paper's
// "transient domains". ccTLD-mode registries (InCZDS=false) keep a ledger
// and a live zone but publish no snapshots, modelling the .nl ground-truth
// vantage of §4.4.
package registry

import (
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"sync"
	"time"

	"darkdns/internal/dnsname"
	"darkdns/internal/simclock"
	"darkdns/internal/zoneset"
)

// Registration is one ledger entry (ground truth).
type Registration struct {
	Domain    string
	Registrar string
	Created   time.Time
	Deleted   time.Time // zero while active
	NS        []string
	WebAddr   netip.Addr

	// Zone visibility (ground truth, set by zone rebuilds).
	InZoneAt    time.Time // when the delegation entered the live zone
	OutOfZoneAt time.Time // when it left; zero while delegated
}

// Active reports whether the registration is not deleted at t.
func (r *Registration) Active(t time.Time) bool {
	return !r.Created.After(t) && (r.Deleted.IsZero() || r.Deleted.After(t))
}

// Lifetime returns Deleted-Created, or 0 while active.
func (r *Registration) Lifetime() time.Duration {
	if r.Deleted.IsZero() {
		return 0
	}
	return r.Deleted.Sub(r.Created)
}

// Config parameterizes a registry.
type Config struct {
	TLD             string
	ZoneUpdateEvery time.Duration // live zone rebuild cadence
	SnapshotEvery   time.Duration // zone file publication period (24 h)
	// SnapshotDelay returns the publication delay for each snapshot;
	// nil means publish immediately. The paper notes snapshots can lag
	// by days, which drives the ±3-day slack in transient detection.
	SnapshotDelay func(rng *rand.Rand) time.Duration
	// RDAPSyncDelay is how long after Create the registration becomes
	// visible over RDAP ("we were too early" failures in §4.2).
	RDAPSyncDelay time.Duration
	InCZDS        bool
}

// DefaultConfig returns the operational parameters the paper reports for
// tld: com/net rebuild every 60 s, other gTLDs every 15–30 min.
func DefaultConfig(tld string) Config {
	cfg := Config{
		TLD:           dnsname.Canonical(tld),
		SnapshotEvery: 24 * time.Hour,
		RDAPSyncDelay: 2 * time.Minute,
		InCZDS:        true,
	}
	switch cfg.TLD {
	case "com", "net":
		cfg.ZoneUpdateEvery = 60 * time.Second
	case "org", "info":
		cfg.ZoneUpdateEvery = 15 * time.Minute
	case "nl", "de", "uk":
		cfg.ZoneUpdateEvery = 30 * time.Minute
		cfg.InCZDS = false
	default:
		cfg.ZoneUpdateEvery = 20 * time.Minute
	}
	return cfg
}

// Errors returned by registry operations.
var (
	ErrExists    = errors.New("registry: domain already registered")
	ErrNotFound  = errors.New("registry: domain not registered")
	ErrWrongZone = errors.New("registry: domain not under this TLD")
)

// SnapshotFunc receives published zone snapshots (CZDS collection path).
type SnapshotFunc func(snap *zoneset.Snapshot)

// Registry is a simulated TLD registry.
type Registry struct {
	cfg Config
	clk simclock.Clock
	rng *rand.Rand

	mu      sync.Mutex
	ledger  map[string][]*Registration // all registrations, newest last
	zone    *zoneset.Snapshot          // live zone
	serial  uint32
	pending map[string]pendingOp
	subs    []SnapshotFunc

	zoneTicker *simclock.Ticker
	snapTicker *simclock.Ticker
}

type pendingOp struct {
	del bool
	ns  []string
}

// New creates a registry and starts its zone-rebuild and snapshot tickers
// on clk. The rng drives publication-delay sampling and must be dedicated
// to this registry for determinism.
func New(cfg Config, clk simclock.Clock, rng *rand.Rand) *Registry {
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 24 * time.Hour
	}
	if cfg.ZoneUpdateEvery <= 0 {
		cfg.ZoneUpdateEvery = time.Minute
	}
	r := &Registry{
		cfg:     cfg,
		clk:     clk,
		rng:     rng,
		ledger:  make(map[string][]*Registration),
		zone:    zoneset.NewSnapshot(cfg.TLD, 1, clk.Now()),
		serial:  1,
		pending: make(map[string]pendingOp),
	}
	r.zoneTicker = simclock.NewTicker(clk, cfg.ZoneUpdateEvery, func(now time.Time) { r.rebuildZone(now) })
	// Every registry generates daily zone files; InCZDS only controls
	// whether ICANN's CZDS redistributes them (ccTLDs keep theirs
	// private, which is exactly the paper's §4.4 visibility asymmetry).
	r.snapTicker = simclock.NewTicker(clk, cfg.SnapshotEvery, func(now time.Time) { r.publishSnapshot(now) })
	return r
}

// Stop halts the registry's tickers.
func (r *Registry) Stop() {
	r.zoneTicker.Stop()
	r.snapTicker.Stop()
}

// TLD returns the registry's zone apex.
func (r *Registry) TLD() string { return r.cfg.TLD }

// InCZDS reports whether the registry publishes snapshots to CZDS.
func (r *Registry) InCZDS() bool { return r.cfg.InCZDS }

// Subscribe registers fn to receive every future published snapshot.
func (r *Registry) Subscribe(fn SnapshotFunc) {
	r.mu.Lock()
	r.subs = append(r.subs, fn)
	r.mu.Unlock()
}

// Register creates a new active registration stamped at the clock's
// current instant.
func (r *Registry) Register(domain, registrar string, ns []string, web netip.Addr) (*Registration, error) {
	return r.RegisterAt(domain, registrar, ns, web, r.clk.Now())
}

// RegisterAt creates a new active registration stamped at an explicit
// instant — the time-explicit variant effect-tagged lifecycle events
// use, since under the lookahead drain the clock may still sit at an
// earlier barrier when the event fires.
func (r *Registry) RegisterAt(domain, registrar string, ns []string, web netip.Addr, at time.Time) (*Registration, error) {
	domain = dnsname.Canonical(domain)
	if dnsname.TLD(domain) != r.cfg.TLD || dnsname.CountLabels(domain) != dnsname.CountLabels(r.cfg.TLD)+1 {
		return nil, fmt.Errorf("%w: %s under %s", ErrWrongZone, domain, r.cfg.TLD)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if regs := r.ledger[domain]; len(regs) > 0 && regs[len(regs)-1].Deleted.IsZero() {
		return nil, fmt.Errorf("%w: %s", ErrExists, domain)
	}
	reg := &Registration{
		Domain:    domain,
		Registrar: registrar,
		Created:   at,
		NS:        append([]string(nil), ns...),
		WebAddr:   web,
	}
	r.ledger[domain] = append(r.ledger[domain], reg)
	r.pending[domain] = pendingOp{ns: reg.NS}
	return reg, nil
}

// Delete removes an active registration (registrar takedown, §4.3).
func (r *Registry) Delete(domain string) error {
	return r.DeleteAt(domain, r.clk.Now())
}

// DeleteAt removes an active registration stamped at an explicit
// instant (see RegisterAt).
func (r *Registry) DeleteAt(domain string, at time.Time) error {
	domain = dnsname.Canonical(domain)
	r.mu.Lock()
	defer r.mu.Unlock()
	regs := r.ledger[domain]
	if len(regs) == 0 || !regs[len(regs)-1].Deleted.IsZero() {
		return fmt.Errorf("%w: %s", ErrNotFound, domain)
	}
	regs[len(regs)-1].Deleted = at
	r.pending[domain] = pendingOp{del: true}
	return nil
}

// UpdateNS changes the delegation of an active registration (the 2.5 % of
// NRDs in §4.1 that swap NS infrastructure within 24 h).
func (r *Registry) UpdateNS(domain string, ns []string) error {
	domain = dnsname.Canonical(domain)
	r.mu.Lock()
	defer r.mu.Unlock()
	regs := r.ledger[domain]
	if len(regs) == 0 || !regs[len(regs)-1].Deleted.IsZero() {
		return fmt.Errorf("%w: %s", ErrNotFound, domain)
	}
	reg := regs[len(regs)-1]
	reg.NS = append([]string(nil), ns...)
	if op, ok := r.pending[domain]; !ok || !op.del {
		r.pending[domain] = pendingOp{ns: reg.NS}
	}
	return nil
}

// rebuildZone applies pending operations on the registry's cadence.
func (r *Registry) rebuildZone(now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.pending) == 0 {
		return
	}
	for domain, op := range r.pending {
		regs := r.ledger[domain]
		latest := regs[len(regs)-1]
		if op.del {
			r.zone.Remove(domain)
			// A registration deleted before any rebuild never entered
			// the zone at all — the deepest form of transience: even a
			// rapid-zone-update subscriber could not have seen it.
			if !latest.InZoneAt.IsZero() && latest.OutOfZoneAt.IsZero() {
				latest.OutOfZoneAt = now
			}
			continue
		}
		r.zone.Add(domain, op.ns)
		if latest.InZoneAt.IsZero() {
			latest.InZoneAt = now
		}
	}
	r.pending = make(map[string]pendingOp)
	r.serial++
	r.zone.Serial = r.serial
	r.zone.Taken = now
}

// publishSnapshot clones the live zone and delivers it to subscribers
// after the configured publication delay.
func (r *Registry) publishSnapshot(now time.Time) {
	r.mu.Lock()
	snap := r.zone.Clone()
	snap.Taken = now
	subs := append([]SnapshotFunc(nil), r.subs...)
	delay := time.Duration(0)
	if r.cfg.SnapshotDelay != nil {
		delay = r.cfg.SnapshotDelay(r.rng)
	}
	r.mu.Unlock()
	deliver := func() {
		for _, fn := range subs {
			fn(snap)
		}
	}
	if delay <= 0 {
		deliver()
		return
	}
	r.clk.After(delay, deliver)
}

// Authoritative queries --------------------------------------------------

// Serial returns the live zone's SOA serial (SOA-probe validation, §4.1).
func (r *Registry) Serial() uint32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.serial
}

// Delegation answers an NS query at the TLD authoritative servers: the NS
// set for the registered domain covering name, and ok=false for NXDOMAIN.
// Matching the paper's step 3, this is the ground truth for "still in
// zone" checks, immune to lame-delegation noise.
func (r *Registry) Delegation(name string) (ns []string, ok bool) {
	name = dnsname.Canonical(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	for cur := name; cur != "" && cur != r.cfg.TLD; cur = dnsname.Parent(cur) {
		if del := r.zone.Get(cur); del != nil {
			return del.NS, true
		}
	}
	return nil, false
}

// InZone reports whether domain is currently delegated in the live zone.
func (r *Registry) InZone(domain string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.zone.Contains(domain)
}

// ZoneLen returns the live zone delegation count.
func (r *Registry) ZoneLen() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.zone.Len()
}

// ZoneSnapshot clones the live zone as of now — the registry-side
// operation behind both daily snapshot publication and a rapid zone
// update service's per-interval diffs.
func (r *Registry) ZoneSnapshot(now time.Time) *zoneset.Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := r.zone.Clone()
	snap.Taken = now
	return snap
}

// RDAP backend -------------------------------------------------------------

// RDAPErrNotSynced marks registrations not yet propagated to RDAP.
var RDAPErrNotSynced = errors.New("registry: rdap data not yet synced")

// RDAPLookup returns the registration data RDAP would serve for domain at
// the current instant: the newest registration that has had RDAPSyncDelay
// to propagate. Deleted domains stop being served once deleted (the "we
// were too late" failure mode).
func (r *Registry) RDAPLookup(domain string) (*Registration, error) {
	return r.RDAPLookupAt(domain, r.clk.Now())
}

// RDAPLookupAt is RDAPLookup evaluated at an explicit instant — the
// time-explicit variant tagged RDAP due-timer events query through, so
// sync-delay and deleted-visibility cutoffs see the event's own instant
// rather than the lookahead drain's lagging committed time.
func (r *Registry) RDAPLookupAt(domain string, now time.Time) (*Registration, error) {
	domain = dnsname.Canonical(domain)
	r.mu.Lock()
	defer r.mu.Unlock()
	regs := r.ledger[domain]
	for i := len(regs) - 1; i >= 0; i-- {
		reg := regs[i]
		if reg.Created.Add(r.cfg.RDAPSyncDelay).After(now) {
			// Newest registration exists but has not propagated.
			if i == len(regs)-1 {
				return nil, RDAPErrNotSynced
			}
			continue
		}
		if !reg.Deleted.IsZero() && reg.Deleted.Before(now) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, domain)
		}
		cp := *reg
		return &cp, nil
	}
	return nil, fmt.Errorf("%w: %s", ErrNotFound, domain)
}

// Ground truth accessors ----------------------------------------------------

// Lookup returns the newest ledger entry for domain (ground truth; not an
// observable for the measurement pipeline).
func (r *Registry) Lookup(domain string) (*Registration, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	regs := r.ledger[dnsname.Canonical(domain)]
	if len(regs) == 0 {
		return nil, false
	}
	cp := *regs[len(regs)-1]
	return &cp, true
}

// Ledger returns copies of all registrations, sorted by domain then
// creation time. This is the registry's private view used only for
// ground-truth comparisons (.nl experiment, §4.4).
func (r *Registry) Ledger() []Registration {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Registration
	for _, regs := range r.ledger {
		for _, reg := range regs {
			out = append(out, *reg)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Domain != out[j].Domain {
			return out[i].Domain < out[j].Domain
		}
		return out[i].Created.Before(out[j].Created)
	})
	return out
}
