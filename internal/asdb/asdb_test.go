package asdb

import (
	"errors"
	"net/netip"
	"testing"
)

func TestLookupBasic(t *testing.T) {
	db := Default()
	cases := []struct {
		addr string
		asn  uint32
	}{
		{"104.16.1.1", 13335},
		{"172.67.9.9", 13335},
		{"84.32.84.10", 47583},
		{"52.20.1.2", 16509},
		{"198.49.23.144", 53831},
		{"162.255.119.250", 22612},
		{"2606:4700::1", 13335},
	}
	for _, c := range cases {
		as, err := db.Lookup(netip.MustParseAddr(c.addr))
		if err != nil {
			t.Errorf("Lookup(%s): %v", c.addr, err)
			continue
		}
		if as.Number != c.asn {
			t.Errorf("Lookup(%s) = %v, want AS%d", c.addr, as, c.asn)
		}
	}
}

func TestLookupNoRoute(t *testing.T) {
	db := Default()
	if _, err := db.Lookup(netip.MustParseAddr("203.0.113.7")); !errors.Is(err, ErrNoRoute) {
		t.Errorf("want ErrNoRoute, got %v", err)
	}
}

func TestLongestPrefixWins(t *testing.T) {
	db := New()
	db.MustAdd("10.0.0.0/8", 100, "Big")
	db.MustAdd("10.1.0.0/16", 200, "Specific")
	as, err := db.Lookup(netip.MustParseAddr("10.1.2.3"))
	if err != nil || as.Number != 200 {
		t.Errorf("LPM: %v, %v", as, err)
	}
	as, err = db.Lookup(netip.MustParseAddr("10.2.2.3"))
	if err != nil || as.Number != 100 {
		t.Errorf("fallback: %v, %v", as, err)
	}
}

func TestAddOverridesSamePrefix(t *testing.T) {
	db := New()
	db.MustAdd("10.0.0.0/8", 100, "Old")
	db.MustAdd("10.0.0.0/8", 200, "New")
	if db.Len() != 1 {
		t.Errorf("Len = %d, want 1", db.Len())
	}
	as, _ := db.Lookup(netip.MustParseAddr("10.0.0.1"))
	if as.Number != 200 || as.Name != "New" {
		t.Errorf("override: %v", as)
	}
}

func TestUnmaskedPrefixNormalized(t *testing.T) {
	db := New()
	db.Add(netip.MustParsePrefix("10.1.2.3/8"), 42, "X")
	if as, err := db.Lookup(netip.MustParseAddr("10.200.0.1")); err != nil || as.Number != 42 {
		t.Errorf("masked add: %v %v", as, err)
	}
}

func TestNameAndString(t *testing.T) {
	db := Default()
	if db.Name(13335) != "Cloudflare" {
		t.Errorf("Name = %q", db.Name(13335))
	}
	if db.Name(99999) != "" {
		t.Error("unknown ASN should have empty name")
	}
	if got := (AS{13335, "Cloudflare"}).String(); got != "AS13335 (Cloudflare)" {
		t.Errorf("String = %q", got)
	}
}

func TestInterleavedAddLookup(t *testing.T) {
	db := New()
	db.MustAdd("10.0.0.0/8", 1, "A")
	if _, err := db.Lookup(netip.MustParseAddr("10.0.0.1")); err != nil {
		t.Fatal(err)
	}
	db.MustAdd("10.1.0.0/16", 2, "B") // added after a lookup sorted the table
	as, err := db.Lookup(netip.MustParseAddr("10.1.0.1"))
	if err != nil || as.Number != 2 {
		t.Errorf("post-sort add: %v %v", as, err)
	}
}

func BenchmarkLookup(b *testing.B) {
	db := Default()
	addr := netip.MustParseAddr("104.16.1.1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := db.Lookup(addr); err != nil {
			b.Fatal(err)
		}
	}
}
