// Package asdb implements a longest-prefix-match IP-to-ASN database, the
// substrate behind the paper's Table 5 attribution of transient-domain web
// hosting to provider ASNs.
package asdb

import (
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"sync"
)

// AS identifies an autonomous system.
type AS struct {
	Number uint32
	Name   string
}

// String renders "AS13335 (Cloudflare)".
func (a AS) String() string { return fmt.Sprintf("AS%d (%s)", a.Number, a.Name) }

// DB maps address prefixes to origin ASNs via longest-prefix match.
// It is safe for concurrent lookup after construction; Add may be mixed
// with Lookup as the structure is lock-protected.
type DB struct {
	mu       sync.RWMutex
	prefixes []entry // sorted by prefix length descending for LPM scan
	names    map[uint32]string
	sorted   bool
}

type entry struct {
	prefix netip.Prefix
	asn    uint32
}

// New creates an empty database.
func New() *DB {
	return &DB{names: make(map[uint32]string)}
}

// ErrNoRoute is returned by Lookup for unrouted addresses.
var ErrNoRoute = errors.New("asdb: address not announced")

// Add announces prefix from asn. Later announcements of the same prefix
// override earlier ones.
func (db *DB) Add(prefix netip.Prefix, asn uint32, name string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	prefix = prefix.Masked()
	for i := range db.prefixes {
		if db.prefixes[i].prefix == prefix {
			db.prefixes[i].asn = asn
			db.names[asn] = name
			return
		}
	}
	db.prefixes = append(db.prefixes, entry{prefix: prefix, asn: asn})
	db.names[asn] = name
	db.sorted = false
}

// MustAdd parses the CIDR and adds it, panicking on malformed input.
// Intended for static tables.
func (db *DB) MustAdd(cidr string, asn uint32, name string) {
	db.Add(netip.MustParsePrefix(cidr), asn, name)
}

// Lookup returns the AS originating addr's longest matching prefix.
func (db *DB) Lookup(addr netip.Addr) (AS, error) {
	db.mu.RLock()
	if !db.sorted {
		db.mu.RUnlock()
		db.mu.Lock()
		sort.SliceStable(db.prefixes, func(i, j int) bool {
			return db.prefixes[i].prefix.Bits() > db.prefixes[j].prefix.Bits()
		})
		db.sorted = true
		db.mu.Unlock()
		db.mu.RLock()
	}
	defer db.mu.RUnlock()
	for _, e := range db.prefixes {
		if e.prefix.Contains(addr) {
			return AS{Number: e.asn, Name: db.names[e.asn]}, nil
		}
	}
	return AS{}, ErrNoRoute
}

// Name returns the registered name for asn ("" when unknown).
func (db *DB) Name(asn uint32) string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.names[asn]
}

// Len returns the number of announced prefixes.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.prefixes)
}

// Default returns a database pre-populated with the hosting providers the
// DarkDNS evaluation attributes transient domains to (Table 5), using each
// provider's well-known address space.
func Default() *DB {
	db := New()
	db.MustAdd("104.16.0.0/13", 13335, "Cloudflare")
	db.MustAdd("172.64.0.0/13", 13335, "Cloudflare")
	db.MustAdd("2606:4700::/32", 13335, "Cloudflare")
	db.MustAdd("84.32.84.0/24", 47583, "Hostinger")
	db.MustAdd("145.14.144.0/20", 47583, "Hostinger")
	db.MustAdd("2a02:4780::/32", 47583, "Hostinger")
	db.MustAdd("52.0.0.0/11", 16509, "Amazon")
	db.MustAdd("54.144.0.0/12", 16509, "Amazon")
	db.MustAdd("2600:1f00::/24", 16509, "Amazon")
	db.MustAdd("198.185.159.0/24", 53831, "Squarespace")
	db.MustAdd("198.49.23.0/24", 53831, "Squarespace")
	db.MustAdd("162.255.116.0/22", 22612, "Namecheap")
	db.MustAdd("2602:fd3f::/36", 22612, "Namecheap")
	db.MustAdd("166.62.0.0/16", 26496, "GoDaddy")
	db.MustAdd("192.0.78.0/23", 2635, "Automattic")
	db.MustAdd("74.125.0.0/16", 15169, "Google")
	db.MustAdd("2607:f8b0::/32", 15169, "Google")
	db.MustAdd("157.240.0.0/16", 32934, "Meta")
	db.MustAdd("13.64.0.0/11", 8075, "Microsoft")
	db.MustAdd("185.199.108.0/22", 54113, "Fastly")
	return db
}
