package ct

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"
)

// HTTP API per RFC 6962 §4 (subset): get-sth, get-entries, get-sth-
// consistency and get-proof-by-hash against a Log. Certstream-style
// aggregators poll get-entries; the client below implements that loop.

// Server exposes a Log over HTTP.
type Server struct {
	log *Log
	now func() time.Time

	http *http.Server
	ln   net.Listener
}

// NewServer wraps log; now supplies STH timestamps (pass the simulation
// clock's Now, or time.Now).
func NewServer(log *Log, now func() time.Time) *Server {
	if now == nil {
		now = time.Now
	}
	s := &Server{log: log, now: now}
	mux := http.NewServeMux()
	mux.HandleFunc("/ct/v1/get-sth", s.getSTH)
	mux.HandleFunc("/ct/v1/get-entries", s.getEntries)
	mux.HandleFunc("/ct/v1/get-sth-consistency", s.getConsistency)
	s.http = &http.Server{Handler: mux}
	return s
}

// Serve listens on addr and returns the bound address.
func (s *Server) Serve(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	go s.http.Serve(ln)
	return ln.Addr(), nil
}

// Close shuts the server down.
func (s *Server) Close() error {
	if s.ln == nil {
		return nil
	}
	return s.http.Close()
}

// sthResponse is the RFC 6962 §4.3 body.
type sthResponse struct {
	TreeSize          int64  `json:"tree_size"`
	Timestamp         int64  `json:"timestamp"` // ms since epoch
	SHA256RootHash    string `json:"sha256_root_hash"`
	TreeHeadSignature string `json:"tree_head_signature"`
}

func (s *Server) getSTH(w http.ResponseWriter, _ *http.Request) {
	sth, err := s.log.STH(s.now())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, sthResponse{
		TreeSize:          sth.TreeSize,
		Timestamp:         sth.Timestamp.UnixMilli(),
		SHA256RootHash:    base64.StdEncoding.EncodeToString(sth.Root[:]),
		TreeHeadSignature: base64.StdEncoding.EncodeToString(sth.Signature[:]),
	})
}

// entriesResponse carries decoded entries directly (the simulator's
// equivalent of leaf_input blobs).
type entriesResponse struct {
	Entries []Entry `json:"entries"`
}

func (s *Server) getEntries(w http.ResponseWriter, r *http.Request) {
	start, err1 := strconv.ParseInt(r.URL.Query().Get("start"), 10, 64)
	end, err2 := strconv.ParseInt(r.URL.Query().Get("end"), 10, 64)
	if err1 != nil || err2 != nil || start < 0 || end < start {
		http.Error(w, "bad start/end", http.StatusBadRequest)
		return
	}
	// RFC 6962 allows servers to cap ranges; cap at 256 like real logs.
	if end-start >= 256 {
		end = start + 255
	}
	size := s.log.Size()
	if start >= size {
		writeJSON(w, entriesResponse{})
		return
	}
	if end >= size {
		end = size - 1
	}
	entries, err := s.log.Range(start, end+1)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, entriesResponse{Entries: entries})
}

type consistencyResponse struct {
	Consistency []string `json:"consistency"`
}

func (s *Server) getConsistency(w http.ResponseWriter, r *http.Request) {
	first, err1 := strconv.ParseInt(r.URL.Query().Get("first"), 10, 64)
	second, err2 := strconv.ParseInt(r.URL.Query().Get("second"), 10, 64)
	if err1 != nil || err2 != nil {
		http.Error(w, "bad first/second", http.StatusBadRequest)
		return
	}
	proof, err := s.log.ConsistencyProof(first, second)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp := consistencyResponse{}
	for _, h := range proof.Path {
		resp.Consistency = append(resp.Consistency, base64.StdEncoding.EncodeToString(h[:]))
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// Client consumes a log's HTTP API.
type Client struct {
	base string
	http *http.Client
}

// NewClient creates a client for the log at base URL.
func NewClient(base string) *Client {
	return &Client{base: base, http: &http.Client{Timeout: 10 * time.Second}}
}

// ErrHTTP wraps non-200 responses.
var ErrHTTP = errors.New("ct: http error")

// GetSTH fetches the current tree head.
func (c *Client) GetSTH(ctx context.Context) (SignedTreeHead, error) {
	var body sthResponse
	if err := c.get(ctx, "/ct/v1/get-sth", &body); err != nil {
		return SignedTreeHead{}, err
	}
	sth := SignedTreeHead{
		TreeSize:  body.TreeSize,
		Timestamp: time.UnixMilli(body.Timestamp).UTC(),
	}
	root, err := base64.StdEncoding.DecodeString(body.SHA256RootHash)
	if err != nil || len(root) != len(sth.Root) {
		return SignedTreeHead{}, fmt.Errorf("%w: bad root hash", ErrHTTP)
	}
	copy(sth.Root[:], root)
	sig, err := base64.StdEncoding.DecodeString(body.TreeHeadSignature)
	if err != nil || len(sig) != len(sth.Signature) {
		return SignedTreeHead{}, fmt.Errorf("%w: bad signature", ErrHTTP)
	}
	copy(sth.Signature[:], sig)
	return sth, nil
}

// GetEntries fetches entries [start, end] (inclusive, server-capped).
func (c *Client) GetEntries(ctx context.Context, start, end int64) ([]Entry, error) {
	var body entriesResponse
	path := fmt.Sprintf("/ct/v1/get-entries?start=%d&end=%d", start, end)
	if err := c.get(ctx, path, &body); err != nil {
		return nil, err
	}
	return body.Entries, nil
}

// GetConsistency fetches and decodes a consistency proof.
func (c *Client) GetConsistency(ctx context.Context, first, second int64) (ConsistencyProof, error) {
	var body consistencyResponse
	path := fmt.Sprintf("/ct/v1/get-sth-consistency?first=%d&second=%d", first, second)
	if err := c.get(ctx, path, &body); err != nil {
		return ConsistencyProof{}, err
	}
	proof := ConsistencyProof{First: first, Second: second}
	for _, s := range body.Consistency {
		raw, err := base64.StdEncoding.DecodeString(s)
		if err != nil || len(raw) != 32 {
			return ConsistencyProof{}, fmt.Errorf("%w: bad proof node", ErrHTTP)
		}
		var h Hash
		copy(h[:], raw)
		proof.Path = append(proof.Path, h)
	}
	return proof, nil
}

// Tail polls get-entries from index start, delivering each entry to fn,
// until ctx is done. It returns the next unread index.
func (c *Client) Tail(ctx context.Context, start int64, pollEvery time.Duration, fn func(Entry)) (int64, error) {
	next := start
	for {
		entries, err := c.GetEntries(ctx, next, next+255)
		if err != nil {
			if ctx.Err() != nil {
				return next, ctx.Err()
			}
			return next, err
		}
		for _, e := range entries {
			fn(e)
			next = e.Index + 1
		}
		if len(entries) == 0 {
			select {
			case <-ctx.Done():
				return next, ctx.Err()
			case <-time.After(pollEvery):
			}
		}
	}
}

func (c *Client) get(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%w: %s on %s", ErrHTTP, resp.Status, path)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
