package ct

import (
	"context"
	"sync"
	"testing"
	"time"
)

func startHTTP(t *testing.T, l *Log) *Client {
	t.Helper()
	srv := NewServer(l, func() time.Time { return t0 })
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return NewClient("http://" + addr.String())
}

func TestHTTPGetSTH(t *testing.T) {
	l := buildLog(20)
	c := startHTTP(t, l)
	sth, err := c.GetSTH(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sth.TreeSize != 20 {
		t.Errorf("tree size = %d", sth.TreeSize)
	}
	if !l.VerifySTH(sth) {
		t.Error("STH fetched over HTTP failed signature verification")
	}
}

func TestHTTPGetEntries(t *testing.T) {
	l := buildLog(30)
	c := startHTTP(t, l)
	entries, err := c.GetEntries(context.Background(), 10, 19)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 10 || entries[0].Index != 10 || entries[9].Index != 19 {
		t.Fatalf("entries: %d, first %d", len(entries), entries[0].Index)
	}
	// Past the end: empty, not an error.
	entries, err = c.GetEntries(context.Background(), 100, 110)
	if err != nil || len(entries) != 0 {
		t.Errorf("past-end: %d entries, %v", len(entries), err)
	}
	// Clamped at the head.
	entries, err = c.GetEntries(context.Background(), 25, 99)
	if err != nil || len(entries) != 5 {
		t.Errorf("clamp: %d entries, %v", len(entries), err)
	}
}

func TestHTTPGetEntriesRangeCap(t *testing.T) {
	l := buildLog(600)
	c := startHTTP(t, l)
	entries, err := c.GetEntries(context.Background(), 0, 599)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 256 {
		t.Errorf("range cap: got %d entries, want 256", len(entries))
	}
}

func TestHTTPConsistencyVerifies(t *testing.T) {
	l := buildLog(40)
	c := startHTTP(t, l)
	proof, err := c.GetConsistency(context.Background(), 13, 40)
	if err != nil {
		t.Fatal(err)
	}
	first, _ := l.tree.root(13)
	second, _ := l.tree.root(40)
	if !VerifyConsistency(first, second, proof) {
		t.Error("HTTP-fetched consistency proof failed verification")
	}
	if _, err := c.GetConsistency(context.Background(), 50, 40); err == nil {
		t.Error("inverted range should fail")
	}
}

func TestHTTPTailFollowsGrowth(t *testing.T) {
	l := buildLog(5)
	c := startHTTP(t, l)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var mu sync.Mutex
	var got []int64
	done := make(chan struct{})
	go c.Tail(ctx, 0, 10*time.Millisecond, func(e Entry) {
		mu.Lock()
		got = append(got, e.Index)
		if len(got) == 8 {
			close(done)
		}
		mu.Unlock()
	})
	time.Sleep(50 * time.Millisecond)
	for i := 0; i < 3; i++ {
		l.Append(t0, PreCertificate, "CA", "late.com", nil, t0)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("tail never caught up")
	}
	mu.Lock()
	defer mu.Unlock()
	for i, idx := range got {
		if idx != int64(i) {
			t.Fatalf("tail order broken: %v", got)
		}
	}
}

func TestHTTPBadRequests(t *testing.T) {
	l := buildLog(5)
	c := startHTTP(t, l)
	if _, err := c.GetEntries(context.Background(), -1, 2); err == nil {
		t.Error("negative start accepted")
	}
	if _, err := c.GetEntries(context.Background(), 5, 2); err == nil {
		t.Error("inverted range accepted")
	}
}
