package ct

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"
)

// EntryKind distinguishes log entries.
type EntryKind uint8

// Log entry kinds. DarkDNS only consumes precertificates, which RFC 6962
// requires to be logged before final certificate issuance.
const (
	PreCertificate EntryKind = iota
	FinalCertificate
)

// String returns the kind name.
func (k EntryKind) String() string {
	if k == PreCertificate {
		return "precert"
	}
	return "cert"
}

// Entry is one logged (pre)certificate.
type Entry struct {
	Index     int64     `json:"index"`
	Kind      EntryKind `json:"kind"`
	Issuer    string    `json:"issuer"`
	CN        string    `json:"cn"`
	SANs      []string  `json:"sans"`
	NotBefore time.Time `json:"not_before"`
	Logged    time.Time `json:"logged"`
}

// Names returns the deduplicated union of CN and SANs.
func (e *Entry) Names() []string {
	seen := make(map[string]bool, 1+len(e.SANs))
	var out []string
	add := func(n string) {
		if n != "" && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	add(e.CN)
	for _, s := range e.SANs {
		add(s)
	}
	return out
}

// leafData serializes the entry for hashing. json is canonical enough for
// the simulator: field order is fixed by the struct.
func (e *Entry) leafData() []byte {
	b, err := json.Marshal(e)
	if err != nil {
		panic("ct: entry marshal: " + err.Error())
	}
	return b
}

// SignedTreeHead is a checkpoint over the log.
type SignedTreeHead struct {
	TreeSize  int64
	Timestamp time.Time
	Root      Hash
	Signature [sha256.Size]byte
}

// Log is an append-only CT log. Safe for concurrent use.
type Log struct {
	name string
	key  []byte // HMAC key standing in for the log's signing key

	mu      sync.Mutex
	tree    merkleTree
	entries []Entry
	subs    []func(Entry)
}

// NewLog creates a log named name (e.g. "argon2023") with a signing key.
func NewLog(name string, key []byte) *Log {
	if len(key) == 0 {
		key = []byte(name)
	}
	return &Log{name: name, key: key}
}

// Name returns the log's name.
func (l *Log) Name() string { return l.name }

// Subscribe registers fn to be called synchronously for every new entry.
// This is the hook the certstream feed uses.
func (l *Log) Subscribe(fn func(Entry)) {
	l.mu.Lock()
	l.subs = append(l.subs, fn)
	l.mu.Unlock()
}

// Append logs an entry, assigning its index and logged timestamp.
func (l *Log) Append(now time.Time, kind EntryKind, issuer, cn string, sans []string, notBefore time.Time) Entry {
	l.mu.Lock()
	e := Entry{
		Index: l.tree.size(), Kind: kind, Issuer: issuer, CN: cn,
		SANs: append([]string(nil), sans...), NotBefore: notBefore, Logged: now,
	}
	l.entries = append(l.entries, e)
	l.tree.append(LeafHash(e.leafData()))
	subs := make([]func(Entry), len(l.subs))
	copy(subs, l.subs)
	l.mu.Unlock()
	for _, fn := range subs {
		fn(e)
	}
	return e
}

// Size returns the current tree size.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tree.size()
}

// Entry returns the entry at index.
func (l *Log) Entry(index int64) (Entry, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if index < 0 || index >= int64(len(l.entries)) {
		return Entry{}, fmt.Errorf("ct: index %d out of range", index)
	}
	return l.entries[index], nil
}

// Range returns entries in [from, to).
func (l *Log) Range(from, to int64) ([]Entry, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < 0 || to > int64(len(l.entries)) || from > to {
		return nil, errors.New("ct: bad range")
	}
	return append([]Entry(nil), l.entries[from:to]...), nil
}

// STH produces a signed tree head over the current tree.
func (l *Log) STH(now time.Time) (SignedTreeHead, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	root, err := l.tree.root(l.tree.size())
	if err != nil {
		return SignedTreeHead{}, err
	}
	sth := SignedTreeHead{TreeSize: l.tree.size(), Timestamp: now, Root: root}
	sth.Signature = l.sign(sth)
	return sth, nil
}

// VerifySTH checks the head's signature against this log's key.
func (l *Log) VerifySTH(sth SignedTreeHead) bool {
	return hmac.Equal(sth.Signature[:], l.signBytes(sth))
}

func (l *Log) sign(sth SignedTreeHead) (out [sha256.Size]byte) {
	copy(out[:], l.signBytes(sth))
	return out
}

func (l *Log) signBytes(sth SignedTreeHead) []byte {
	mac := hmac.New(sha256.New, l.key)
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(sth.TreeSize))
	mac.Write(buf[:])
	binary.BigEndian.PutUint64(buf[:], uint64(sth.Timestamp.UnixNano()))
	mac.Write(buf[:])
	mac.Write(sth.Root[:])
	return mac.Sum(nil)
}

// InclusionProof builds a proof for the entry at index against treeSize.
func (l *Log) InclusionProof(index, treeSize int64) (InclusionProof, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tree.inclusionProof(index, treeSize)
}

// ConsistencyProof builds a proof between two tree sizes.
func (l *Log) ConsistencyProof(m, n int64) (ConsistencyProof, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tree.consistencyProof(m, n)
}

// LeafHashAt recomputes the leaf hash for the entry at index, for use with
// VerifyInclusion.
func (l *Log) LeafHashAt(index int64) (Hash, error) {
	e, err := l.Entry(index)
	if err != nil {
		return Hash{}, err
	}
	return LeafHash(e.leafData()), nil
}
