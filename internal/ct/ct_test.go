package ct

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2023, 11, 1, 0, 0, 0, 0, time.UTC)

func buildLog(n int) *Log {
	l := NewLog("test-log", []byte("k"))
	for i := 0; i < n; i++ {
		l.Append(t0.Add(time.Duration(i)*time.Second), PreCertificate, "TestCA",
			fmt.Sprintf("d%04d.example.com", i), nil, t0)
	}
	return l
}

func TestAppendAssignsDenseIndexes(t *testing.T) {
	l := buildLog(10)
	if l.Size() != 10 {
		t.Fatalf("size = %d", l.Size())
	}
	for i := int64(0); i < 10; i++ {
		e, err := l.Entry(i)
		if err != nil || e.Index != i {
			t.Errorf("entry %d: %+v, %v", i, e, err)
		}
	}
	if _, err := l.Entry(10); err == nil {
		t.Error("out-of-range Entry should fail")
	}
}

func TestRange(t *testing.T) {
	l := buildLog(10)
	es, err := l.Range(3, 7)
	if err != nil || len(es) != 4 || es[0].Index != 3 {
		t.Errorf("Range: %v %v", es, err)
	}
	if _, err := l.Range(7, 3); err == nil {
		t.Error("inverted range should fail")
	}
	if _, err := l.Range(0, 99); err == nil {
		t.Error("over-long range should fail")
	}
}

func TestSubscribersSeeEntries(t *testing.T) {
	l := NewLog("x", nil)
	var got []string
	l.Subscribe(func(e Entry) { got = append(got, e.CN) })
	l.Append(t0, PreCertificate, "CA", "a.com", []string{"www.a.com"}, t0)
	l.Append(t0, FinalCertificate, "CA", "b.com", nil, t0)
	if len(got) != 2 || got[0] != "a.com" {
		t.Errorf("subscriber calls: %v", got)
	}
}

func TestNamesDeduplicates(t *testing.T) {
	e := Entry{CN: "a.com", SANs: []string{"a.com", "www.a.com", "", "www.a.com"}}
	names := e.Names()
	if len(names) != 2 || names[0] != "a.com" || names[1] != "www.a.com" {
		t.Errorf("Names = %v", names)
	}
}

func TestSTHSignAndVerify(t *testing.T) {
	l := buildLog(5)
	sth, err := l.STH(t0)
	if err != nil {
		t.Fatal(err)
	}
	if sth.TreeSize != 5 {
		t.Errorf("tree size = %d", sth.TreeSize)
	}
	if !l.VerifySTH(sth) {
		t.Error("own STH failed verification")
	}
	tampered := sth
	tampered.TreeSize = 6
	if l.VerifySTH(tampered) {
		t.Error("tampered STH verified")
	}
	other := NewLog("other", []byte("different"))
	if other.VerifySTH(sth) {
		t.Error("foreign log verified our STH")
	}
}

func TestInclusionProofsAllSizes(t *testing.T) {
	const n = 33 // crosses several power-of-two boundaries
	l := buildLog(n)
	for size := int64(1); size <= n; size++ {
		root, err := l.tree.root(size)
		if err != nil {
			t.Fatal(err)
		}
		for idx := int64(0); idx < size; idx++ {
			proof, err := l.InclusionProof(idx, size)
			if err != nil {
				t.Fatalf("proof(%d,%d): %v", idx, size, err)
			}
			leaf, err := l.LeafHashAt(idx)
			if err != nil {
				t.Fatal(err)
			}
			if !VerifyInclusion(leaf, proof, root) {
				t.Fatalf("inclusion(%d,%d) failed to verify", idx, size)
			}
		}
	}
}

func TestInclusionProofRejectsWrongLeaf(t *testing.T) {
	l := buildLog(16)
	root, _ := l.tree.root(16)
	proof, _ := l.InclusionProof(3, 16)
	wrong, _ := l.LeafHashAt(4)
	if VerifyInclusion(wrong, proof, root) {
		t.Error("wrong leaf verified")
	}
	right, _ := l.LeafHashAt(3)
	badRoot := root
	badRoot[0] ^= 0xFF
	if VerifyInclusion(right, proof, badRoot) {
		t.Error("wrong root verified")
	}
}

func TestInclusionProofOutOfRange(t *testing.T) {
	l := buildLog(4)
	if _, err := l.InclusionProof(4, 4); err == nil {
		t.Error("index == size should fail")
	}
	if _, err := l.InclusionProof(0, 5); err == nil {
		t.Error("size beyond tree should fail")
	}
}

func TestConsistencyProofsAllPairs(t *testing.T) {
	const n = 33
	l := buildLog(n)
	for m := int64(0); m <= n; m++ {
		for k := m; k <= n; k++ {
			first, err := l.tree.root(m)
			if err != nil {
				t.Fatal(err)
			}
			second, err := l.tree.root(k)
			if err != nil {
				t.Fatal(err)
			}
			proof, err := l.ConsistencyProof(m, k)
			if err != nil {
				t.Fatalf("consistency(%d,%d): %v", m, k, err)
			}
			if !VerifyConsistency(first, second, proof) {
				t.Fatalf("consistency(%d,%d) failed to verify", m, k)
			}
		}
	}
}

func TestConsistencyRejectsForgery(t *testing.T) {
	l := buildLog(20)
	first, _ := l.tree.root(7)
	second, _ := l.tree.root(20)
	proof, _ := l.ConsistencyProof(7, 20)
	bad := first
	bad[5] ^= 1
	if VerifyConsistency(bad, second, proof) {
		t.Error("forged first root verified")
	}
	if VerifyConsistency(first, bad, proof) {
		t.Error("forged second root verified")
	}
}

func TestTreeRootDeterministic(t *testing.T) {
	a := buildLog(17)
	b := buildLog(17)
	ra, _ := a.tree.root(17)
	rb, _ := b.tree.root(17)
	if ra != rb {
		t.Error("identical logs disagree on root")
	}
}

func TestPropertyInclusionHolds(t *testing.T) {
	l := buildLog(64)
	f := func(idxRaw, sizeRaw uint8) bool {
		size := int64(sizeRaw)%64 + 1
		idx := int64(idxRaw) % size
		proof, err := l.InclusionProof(idx, size)
		if err != nil {
			return false
		}
		root, err := l.tree.root(size)
		if err != nil {
			return false
		}
		leaf, err := l.LeafHashAt(idx)
		if err != nil {
			return false
		}
		return VerifyInclusion(leaf, proof, root)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAppend(b *testing.B) {
	l := NewLog("bench", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Append(t0, PreCertificate, "CA", "example.com", nil, t0)
	}
}

func BenchmarkInclusionProof1e4(b *testing.B) {
	l := buildLog(10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.InclusionProof(int64(i%10_000), 10_000); err != nil {
			b.Fatal(err)
		}
	}
}
