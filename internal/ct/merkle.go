// Package ct implements a Certificate Transparency log in the style of
// RFC 6962: an append-only Merkle tree over (pre)certificate entries, with
// signed-tree-head checkpoints, inclusion proofs and consistency proofs.
//
// DarkDNS step 1 consumes precertificate entries — RFC 6962 requires
// precertificates to be logged before final issuance, which is what makes
// CT the earliest public signal of a new domain's existence.
package ct

import (
	"crypto/sha256"
	"errors"
	"fmt"
)

// Hash is a Merkle tree node hash.
type Hash [sha256.Size]byte

// Domain-separation prefixes per RFC 6962 §2.1.
const (
	leafPrefix = 0x00
	nodePrefix = 0x01
)

// LeafHash computes the RFC 6962 leaf hash of data.
func LeafHash(data []byte) Hash {
	h := sha256.New()
	h.Write([]byte{leafPrefix})
	h.Write(data)
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// nodeHash combines two child hashes.
func nodeHash(l, r Hash) Hash {
	h := sha256.New()
	h.Write([]byte{nodePrefix})
	h.Write(l[:])
	h.Write(r[:])
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// merkleTree is an append-only Merkle tree over leaf hashes.
type merkleTree struct {
	leaves []Hash
}

func (t *merkleTree) append(leaf Hash) int64 {
	t.leaves = append(t.leaves, leaf)
	return int64(len(t.leaves) - 1)
}

func (t *merkleTree) size() int64 { return int64(len(t.leaves)) }

// root computes the Merkle tree hash of the first n leaves (RFC 6962 §2.1).
func (t *merkleTree) root(n int64) (Hash, error) {
	if n < 0 || n > t.size() {
		return Hash{}, fmt.Errorf("ct: root size %d out of range [0,%d]", n, t.size())
	}
	return subtreeRoot(t.leaves[:n]), nil
}

func subtreeRoot(leaves []Hash) Hash {
	n := len(leaves)
	switch n {
	case 0:
		// MTH({}) = SHA-256() per RFC 6962 §2.1.
		return sha256.Sum256(nil)
	case 1:
		return leaves[0]
	}
	k := largestPowerOfTwoBelow(n)
	return nodeHash(subtreeRoot(leaves[:k]), subtreeRoot(leaves[k:]))
}

// largestPowerOfTwoBelow returns the largest power of two strictly less
// than n (n >= 2).
func largestPowerOfTwoBelow(n int) int {
	k := 1
	for k*2 < n {
		k *= 2
	}
	return k
}

// InclusionProof is an audit path from a leaf to a tree root.
type InclusionProof struct {
	LeafIndex int64
	TreeSize  int64
	Path      []Hash
}

// inclusionProof computes the audit path for leaf index in the tree of
// the first size leaves (RFC 6962 §2.1.1).
func (t *merkleTree) inclusionProof(index, size int64) (InclusionProof, error) {
	if size > t.size() || index >= size || index < 0 {
		return InclusionProof{}, errors.New("ct: inclusion proof out of range")
	}
	path := auditPath(t.leaves[:size], index)
	return InclusionProof{LeafIndex: index, TreeSize: size, Path: path}, nil
}

func auditPath(leaves []Hash, index int64) []Hash {
	n := int64(len(leaves))
	if n <= 1 {
		return nil
	}
	k := int64(largestPowerOfTwoBelow(int(n)))
	if index < k {
		path := auditPath(leaves[:k], index)
		return append(path, subtreeRoot(leaves[k:]))
	}
	path := auditPath(leaves[k:], index-k)
	return append(path, subtreeRoot(leaves[:k]))
}

// VerifyInclusion checks that leafHash at proof.LeafIndex is included in
// the tree with the given root, per the RFC 9162 §2.1.3.2 algorithm.
func VerifyInclusion(leafHash Hash, proof InclusionProof, root Hash) bool {
	if proof.LeafIndex < 0 || proof.LeafIndex >= proof.TreeSize {
		return false
	}
	fn, sn := proof.LeafIndex, proof.TreeSize-1
	r := leafHash
	for _, p := range proof.Path {
		if sn == 0 {
			return false
		}
		if fn&1 == 1 || fn == sn {
			r = nodeHash(p, r)
			if fn&1 == 0 {
				for fn != 0 && fn&1 == 0 {
					fn >>= 1
					sn >>= 1
				}
			}
		} else {
			r = nodeHash(r, p)
		}
		fn >>= 1
		sn >>= 1
	}
	return sn == 0 && r == root
}

// ConsistencyProof proves the tree of size First is a prefix of size Second.
type ConsistencyProof struct {
	First  int64
	Second int64
	Path   []Hash
}

// consistencyProof computes the RFC 6962 §2.1.2 proof.
func (t *merkleTree) consistencyProof(m, n int64) (ConsistencyProof, error) {
	if m < 0 || m > n || n > t.size() {
		return ConsistencyProof{}, errors.New("ct: consistency proof out of range")
	}
	if m == 0 || m == n {
		return ConsistencyProof{First: m, Second: n}, nil
	}
	path := subProof(t.leaves[:n], m, true)
	return ConsistencyProof{First: m, Second: n, Path: path}, nil
}

func subProof(leaves []Hash, m int64, isCompleteSubtree bool) []Hash {
	n := int64(len(leaves))
	if m == n {
		if isCompleteSubtree {
			return nil
		}
		return []Hash{subtreeRoot(leaves)}
	}
	k := int64(largestPowerOfTwoBelow(int(n)))
	if m <= k {
		path := subProof(leaves[:k], m, isCompleteSubtree)
		return append(path, subtreeRoot(leaves[k:]))
	}
	path := subProof(leaves[k:], m-k, false)
	return append(path, subtreeRoot(leaves[:k]))
}

// VerifyConsistency checks proof between two roots, per the RFC 9162
// §2.1.4.2 algorithm.
func VerifyConsistency(firstRoot, secondRoot Hash, proof ConsistencyProof) bool {
	m, n := proof.First, proof.Second
	if m == n {
		return firstRoot == secondRoot && len(proof.Path) == 0
	}
	if m == 0 {
		return len(proof.Path) == 0 // empty tree is a prefix of anything
	}
	path := proof.Path
	// When m is a power of two, the old root is a node of the new tree
	// and is prepended implicitly.
	if m&(m-1) == 0 {
		path = append([]Hash{firstRoot}, path...)
	}
	if len(path) == 0 {
		return false
	}
	fn, sn := m-1, n-1
	for fn&1 == 1 {
		fn >>= 1
		sn >>= 1
	}
	fr, sr := path[0], path[0]
	for _, c := range path[1:] {
		if sn == 0 {
			return false
		}
		if fn&1 == 1 || fn == sn {
			fr = nodeHash(c, fr)
			sr = nodeHash(c, sr)
			if fn&1 == 0 {
				for fn != 0 && fn&1 == 0 {
					fn >>= 1
					sn >>= 1
				}
			}
		} else {
			sr = nodeHash(sr, c)
		}
		fn >>= 1
		sn >>= 1
	}
	return fr == firstRoot && sr == secondRoot && sn == 0
}
