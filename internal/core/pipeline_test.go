package core

import (
	"context"
	"testing"
	"time"

	"darkdns/internal/certstream"
	"darkdns/internal/ct"
	"darkdns/internal/czds"
	"darkdns/internal/measure"
	"darkdns/internal/psl"
	"darkdns/internal/rdap"
	"darkdns/internal/simclock"
	"darkdns/internal/stream"
	"darkdns/internal/worldsim"
	"darkdns/internal/zoneset"
)

var t0 = time.Date(2023, 11, 1, 0, 0, 0, 0, time.UTC)

func event(seen time.Time, names ...string) certstream.Event {
	cn := names[0]
	return certstream.Event{
		Seen: seen, Log: "test-log",
		Entry: ct.Entry{Kind: ct.PreCertificate, Issuer: "TestCA", CN: cn, SANs: names[1:]},
	}
}

// nullQuerier always reports not-found.
type nullQuerier struct{}

func (nullQuerier) Domain(_ context.Context, _ string) (*rdap.Record, error) {
	return nil, rdap.ErrNotFound
}

func TestPipelineStep1Filtering(t *testing.T) {
	clk := simclock.NewSim(t0)
	zones := czds.New()
	snap := zoneset.NewSnapshot("com", 1, t0.Add(-time.Hour))
	snap.Add("known.com", []string{"ns1.x.net"})
	zones.Ingest(snap)

	p := New(DefaultConfig(t0, t0.Add(91*24*time.Hour)), clk, psl.Default(), zones,
		nullQuerier{}, nil, nil, 1)

	// A cert for a subdomain of an unknown domain → candidate for the
	// registered domain.
	p.HandleEvent(event(t0, "www.fresh.com", "fresh.com"))
	// Already in the latest snapshot → filtered.
	p.HandleEvent(event(t0, "known.com"))
	// Public suffix itself → no registered domain.
	p.HandleEvent(event(t0, "com"))
	// Duplicate candidate → ignored.
	p.HandleEvent(event(t0.Add(time.Hour), "fresh.com"))

	if p.Len() != 1 {
		t.Fatalf("candidates = %d, want 1", p.Len())
	}
	c, ok := p.Candidate("fresh.com")
	if !ok || !c.SeenAt.Equal(t0) || c.TLD != "com" {
		t.Errorf("candidate: %+v", c)
	}
}

func TestPipelinePublishesFeed(t *testing.T) {
	clk := simclock.NewSim(t0)
	zones := czds.New()
	bus := stream.NewBus()
	p := New(DefaultConfig(t0, t0.Add(time.Hour)), clk, psl.Default(), zones,
		nullQuerier{}, nil, bus, 1)
	p.HandleEvent(event(t0, "feedme.shop"))
	topic := bus.Topic("nrd-feed")
	if topic.Len() != 1 {
		t.Fatalf("feed messages = %d", topic.Len())
	}
	msgs := topic.Poll("reader", 10)
	if msgs[0].Key != "feedme.shop" {
		t.Errorf("feed key: %q", msgs[0].Key)
	}
}

func TestEndToEndAgainstWorld(t *testing.T) {
	wcfg := worldsim.DefaultConfig(11, 0.002)
	wcfg.Weeks = 3
	w := worldsim.New(wcfg)

	pcfg := DefaultConfig(w.Cfg.Start, w.Cfg.Start.Add(time.Duration(wcfg.Weeks)*7*24*time.Hour))
	fleetCfg := measure.DefaultConfig()
	fleetCfg.StopWhenDead = true
	fleet := measure.NewFleet(fleetCfg, w.Clock, w.ProbeBackend())
	p := New(pcfg, w.Clock, psl.Default(), w.CZDS, MuxQuerier{w.RDAP}, fleet, stream.NewBus(), 42)
	p.Start(w.Hub)
	w.Run()
	p.Stop()

	if p.Len() == 0 {
		t.Fatal("pipeline detected nothing")
	}

	// Every candidate's ground truth must be a real domain or a ghost.
	cands := p.Candidates()
	okRDAP, validated := 0, 0
	for _, c := range cands {
		if c.RDAPOutcome == RDAPOK {
			okRDAP++
			if c.Validated {
				validated++
			}
		}
	}
	if okRDAP == 0 {
		t.Fatal("no successful RDAP collections")
	}
	if validated == 0 {
		t.Fatal("no validated candidates")
	}
	// The overwhelming majority of successful RDAP lookups must validate
	// (CT-seen within 24 h of registration).
	if float64(validated)/float64(okRDAP) < 0.95 {
		t.Errorf("validation rate %.3f too low", float64(validated)/float64(okRDAP))
	}

	rep := p.Transients()
	if len(rep.LowerBound) == 0 {
		t.Fatal("no transients detected")
	}
	if len(rep.Confirmed) == 0 {
		t.Fatal("no confirmed transients")
	}
	if len(rep.Confirmed)+len(rep.RDAPFailed) > len(rep.LowerBound) {
		t.Error("report subsets exceed lower bound")
	}

	// Ground-truth check: every confirmed transient must be fast-deleted
	// in the world's ledger.
	for _, c := range rep.Confirmed {
		gt := w.Domains.Get(c.Domain)
		if gt == nil {
			t.Errorf("confirmed transient %s has no ground truth", c.Domain)
			continue
		}
		if !gt.FastDelete {
			t.Errorf("confirmed transient %s is not fast-deleted (lifetime %v)", c.Domain, gt.Lifetime)
		}
	}

	// RDAP failure rate among transients must exceed the overall rate
	// (§4.2: 34 % vs 3 %).
	transFail := float64(len(rep.RDAPFailed)) / float64(len(rep.LowerBound))
	overallFail := 0
	for _, c := range cands {
		if c.RDAPOutcome != RDAPOK {
			overallFail++
		}
	}
	overall := float64(overallFail) / float64(len(cands))
	if transFail <= overall {
		t.Errorf("transient RDAP failure %.3f should exceed overall %.3f", transFail, overall)
	}

	// Detection coverage of zone NRDs should be far from zero and below 1.
	det, zone := p.ZoneNRDCoverage("com")
	if zone == 0 {
		t.Fatal("no zone NRDs measured for com")
	}
	cov := float64(det) / float64(zone)
	if cov < 0.2 || cov > 0.8 {
		t.Errorf("com coverage %.3f outside plausible band", cov)
	}
}

func TestTransientsExcludeSnapshotAppearances(t *testing.T) {
	clk := simclock.NewSim(t0)
	zones := czds.New()
	end := t0.Add(30 * 24 * time.Hour)
	p := New(DefaultConfig(t0, end), clk, psl.Default(), zones, nullQuerier{}, nil, nil, 1)

	p.HandleEvent(event(t0.Add(time.Hour), "eventually.com"))
	p.HandleEvent(event(t0.Add(time.Hour), "never.com"))

	// eventually.com shows up in a later snapshot; never.com does not.
	snap := zoneset.NewSnapshot("com", 2, t0.Add(26*time.Hour))
	snap.Add("eventually.com", []string{"ns1.x.net"})
	zones.Ingest(snap)

	rep := p.Transients()
	if len(rep.LowerBound) != 1 || rep.LowerBound[0].Domain != "never.com" {
		t.Fatalf("transients: %+v", rep.LowerBound)
	}
}

func TestRDAPOutcomeString(t *testing.T) {
	for o, want := range map[RDAPOutcome]string{
		RDAPPending: "pending", RDAPOK: "ok", RDAPNotFound: "not-found",
		RDAPNotSynced: "not-synced", RDAPError: "error", RDAPOutcome(99): "unknown",
	} {
		if o.String() != want {
			t.Errorf("%d → %q", o, o.String())
		}
	}
}
