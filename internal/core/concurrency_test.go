package core

import (
	"context"
	"fmt"
	"net/netip"
	"reflect"
	"sync"
	"testing"
	"time"

	"darkdns/internal/certstream"
	"darkdns/internal/ct"
	"darkdns/internal/czds"
	"darkdns/internal/dnsname"
	"darkdns/internal/measure"
	"darkdns/internal/psl"
	"darkdns/internal/rdap"
	"darkdns/internal/simclock"
	"darkdns/internal/stream"
	"darkdns/internal/worldsim"
	"darkdns/internal/zoneset"
)

// synthEvents builds n certstream events over distinct registrable .shop
// names, a few of which collide on the same registered domain to exercise
// the duplicate path.
func synthEvents(n int, start time.Time) []certstream.Event {
	evs := make([]certstream.Event, n)
	for i := range evs {
		name := fmt.Sprintf("www.cand%06d.shop", i/2) // pairs collide
		evs[i] = certstream.Event{
			Seen: start.Add(time.Duration(i) * time.Second), Log: "race-log",
			Entry: ct.Entry{Kind: ct.PreCertificate, Issuer: "TestCA", CN: name},
		}
	}
	return evs
}

// TestConcurrentIngestRace drives HandleEvent and HandleBatch from many
// goroutines while czds collections swap zone views and the simulated
// clock fires RDAP collections and fleet probe ticks — the full ingest
// hot path under -race.
func TestConcurrentIngestRace(t *testing.T) {
	clk := simclock.NewSim(t0)
	zones := czds.New()
	fleetCfg := measure.DefaultConfig()
	fleetCfg.StopWhenDead = true
	fleet := measure.NewFleet(fleetCfg, clk, staticBackend{})
	bus := stream.NewBus()

	cfg := DefaultConfig(t0, t0.Add(91*24*time.Hour))
	cfg.IngestWorkers = 4
	cfg.RDAPWorkers = 4 // step 2 through the async dispatch engine
	p := New(cfg, clk, psl.Default(), zones, nullQuerier{}, fleet, bus, 7)

	evs := synthEvents(4000, t0)
	const feeders = 4
	var wg sync.WaitGroup
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			part := evs[f*len(evs)/feeders : (f+1)*len(evs)/feeders]
			if f%2 == 0 {
				for i := 0; i < len(part); i += 64 {
					end := i + 64
					if end > len(part) {
						end = len(part)
					}
					p.HandleBatch(part[i:end])
				}
			} else {
				for _, ev := range part {
					p.HandleEvent(ev)
				}
			}
		}(f)
	}
	// Daily zone collections race the ingest filters.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for day := 0; day < 30; day++ {
			snap := zoneset.NewSnapshot("shop", uint32(day+1), t0.Add(time.Duration(day)*24*time.Hour))
			snap.Add(fmt.Sprintf("zoned%04d.shop", day), []string{"ns1.zone.net"})
			zones.Ingest(snap)
		}
	}()
	// The clock dispatcher fires RDAP collections and probe ticks while
	// events are still being ingested.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			clk.Advance(10 * time.Minute)
		}
	}()
	wg.Wait()
	clk.Advance(49 * time.Hour) // drain the probe windows

	if p.Len() != 2000 {
		t.Fatalf("admitted %d candidates, want 2000 (one per colliding pair)", p.Len())
	}
	sum := p.Summary()
	if sum.Candidates != 2000 || sum.Watched == 0 {
		t.Fatalf("summary: %+v", sum)
	}
	if got := bus.Topic(cfg.FeedTopic).Len(); got != 2000 {
		t.Fatalf("feed published %d messages, want 2000", got)
	}
}

// hashQuerier answers deterministically by name so RDAP outcomes are a
// pure function of the domain: a rotating mix of ok / not-found /
// not-synced, the three §4.2 collection results.
type hashQuerier struct{}

func (hashQuerier) Domain(_ context.Context, name string) (*rdap.Record, error) {
	switch dnsname.Hash64(name) % 4 {
	case 0:
		return nil, rdap.ErrNotFound
	case 1:
		return nil, rdap.ErrNotSynced
	default:
		return &rdap.Record{Domain: name, Registrar: "Reg-" + name[:1], Registered: t0}, nil
	}
}

// TestDispatchMatchesSerialRDAP replays one corpus through the serial
// step-2 path and the dispatch engine at two pool widths, advancing the
// clock through every queueing delay, and requires identical candidate
// stores — RDAP outcomes, timestamps and validation bits included. This
// is the dispatch engine's determinism contract at the pipeline level.
func TestDispatchMatchesSerialRDAP(t *testing.T) {
	evs := synthEvents(1200, t0)

	run := func(rdapWorkers int) []Candidate {
		clk := simclock.NewSim(t0)
		cfg := DefaultConfig(t0, t0.Add(91*24*time.Hour))
		cfg.RDAPWorkers = rdapWorkers
		p := New(cfg, clk, psl.Default(), czds.New(), hashQuerier{}, nil, nil, 55)
		for _, ev := range evs {
			p.HandleEvent(ev)
		}
		clk.Run() // fire every queued RDAP collection
		return p.Candidates()
	}

	want := run(0)
	nOK := 0
	for _, c := range want {
		if c.RDAPOutcome == RDAPOK {
			nOK++
		}
	}
	if nOK == 0 {
		t.Fatal("degenerate corpus: no successful RDAP outcome")
	}
	for _, workers := range []int{1, 8} {
		if got := run(workers); !reflect.DeepEqual(got, want) {
			t.Errorf("rdap-workers=%d candidates diverge from serial path", workers)
		}
	}
}

// staticBackend answers every probe with a fixed delegation.
type staticBackend struct{}

func (staticBackend) AuthoritativeNS(string) ([]string, bool) {
	return []string{"ns1.static.net"}, true
}
func (staticBackend) LookupA(string) []netip.Addr    { return nil }
func (staticBackend) LookupAAAA(string) []netip.Addr { return nil }

// TestBatchMatchesSerial replays one recorded world corpus through three
// pipelines — per-event, single-worker batches, wide parallel batches —
// and requires identical candidate stores and identical feed logs.
func TestBatchMatchesSerial(t *testing.T) {
	wcfg := worldsim.DefaultConfig(23, 0.0015)
	wcfg.Weeks = 2
	evs := worldsim.RecordedEvents(wcfg)
	if len(evs) < 200 {
		t.Fatalf("thin corpus: %d events", len(evs))
	}

	build := func(workers int) (*Pipeline, *stream.Bus) {
		clk := simclock.NewSim(t0)
		cfg := DefaultConfig(t0, t0.Add(91*24*time.Hour))
		cfg.IngestWorkers = workers
		bus := stream.NewBus()
		p := New(cfg, clk, psl.Default(), czds.New(), nullQuerier{}, nil, bus, 99)
		return p, bus
	}

	serial, serialBus := build(0)
	for _, ev := range evs {
		serial.HandleEvent(ev)
	}

	batched, batchedBus := build(1)
	parallel, parallelBus := build(8)
	for i := 0; i < len(evs); i += 173 { // deliberately odd batch size
		end := i + 173
		if end > len(evs) {
			end = len(evs)
		}
		batched.HandleBatch(evs[i:end])
		parallel.HandleBatch(evs[i:end])
	}

	want := serial.Candidates()
	for name, p := range map[string]*Pipeline{"batched": batched, "parallel": parallel} {
		if got := p.Candidates(); !reflect.DeepEqual(got, want) {
			t.Errorf("%s candidates diverge from serial (%d vs %d)", name, len(got), len(want))
		}
	}
	wantFeed := serialBus.Topic("nrd-feed").Poll("cmp", 1<<20)
	for name, bus := range map[string]*stream.Bus{"batched": batchedBus, "parallel": parallelBus} {
		got := bus.Topic("nrd-feed").Poll("cmp", 1<<20)
		if !reflect.DeepEqual(got, wantFeed) {
			t.Errorf("%s feed log diverges from serial (%d vs %d messages)", name, len(got), len(wantFeed))
		}
	}
}
