package core

import (
	"testing"
	"time"

	"darkdns/internal/czds"
	"darkdns/internal/psl"
	"darkdns/internal/simclock"
	"darkdns/internal/zoneset"
)

// TestZoneSlackAbsorbsLatePublication covers the paper's ±3-day slack:
// a domain whose TLD published its snapshot days late must not be
// misclassified as transient, because the slack window extends the
// EverSeen search backwards from the CT observation and forwards past the
// window end.
func TestZoneSlackAbsorbsLatePublication(t *testing.T) {
	clk := simclock.NewSim(t0)
	zones := czds.New()
	end := t0.Add(30 * 24 * time.Hour)
	p := New(DefaultConfig(t0, end), clk, psl.Default(), zones, nullQuerier{}, nil, nil, 1)

	// Candidate detected on day 10.
	p.HandleEvent(event(t0.Add(10*24*time.Hour), "late-zone.com"))

	// The snapshot containing it lands 2 days past the window end —
	// inside the 3-day slack.
	snap := zoneset.NewSnapshot("com", 9, end.Add(2*24*time.Hour))
	snap.Add("late-zone.com", []string{"ns1.x.net"})
	zones.Ingest(snap)

	rep := p.Transients()
	if len(rep.LowerBound) != 0 {
		t.Fatalf("late-published domain misclassified as transient: %+v", rep.LowerBound)
	}

	// A snapshot beyond the slack must NOT rescue the domain. The TLD
	// still needs an in-window snapshot so it counts as collected.
	z2 := czds.New()
	p2 := New(DefaultConfig(t0, end), clk, psl.Default(), z2, nullQuerier{}, nil, nil, 1)
	p2.HandleEvent(event(t0.Add(10*24*time.Hour), "too-late.com"))
	base := zoneset.NewSnapshot("com", 1, t0.Add(24*time.Hour))
	z2.Ingest(base)
	veryLate := zoneset.NewSnapshot("com", 9, end.Add(10*24*time.Hour))
	veryLate.Add("too-late.com", []string{"ns1.x.net"})
	z2.Ingest(veryLate)
	rep2 := p2.Transients()
	if len(rep2.LowerBound) != 1 || rep2.LowerBound[0].Domain != "too-late.com" {
		t.Fatalf("domain seen only beyond slack should stay transient: %+v", rep2.LowerBound)
	}
}

func TestSummary(t *testing.T) {
	clk := simclock.NewSim(t0)
	p := New(DefaultConfig(t0, t0.Add(time.Hour)), clk, psl.Default(), czds.New(), nullQuerier{}, nil, nil, 1)
	p.HandleEvent(event(t0, "one.com"))
	p.HandleEvent(event(t0, "two.shop"))
	clk.Run()
	s := p.Summary()
	if s.Candidates != 2 {
		t.Fatalf("candidates = %d", s.Candidates)
	}
	// nullQuerier yields not-found for all (bar injected errors).
	if s.ByOutcome[RDAPNotFound]+s.ByOutcome[RDAPError] != 2 {
		t.Errorf("outcomes: %+v", s.ByOutcome)
	}
	if s.Validated != 0 {
		t.Errorf("validated = %d", s.Validated)
	}
}
