package core

import (
	"bytes"
	"testing"
	"time"

	"darkdns/internal/czds"
	"darkdns/internal/psl"
	"darkdns/internal/simclock"
)

func TestCandidateExportRoundTrip(t *testing.T) {
	clk := simclock.NewSim(t0)
	zones := czds.New()
	p := New(DefaultConfig(t0, t0.Add(time.Hour)), clk, psl.Default(), zones, nullQuerier{}, nil, nil, 1)
	for i, d := range []string{"a.com", "b.shop", "c.xyz"} {
		p.HandleEvent(event(t0.Add(time.Duration(i)*time.Minute), d))
	}
	clk.Run() // let RDAP collections fire

	var buf bytes.Buffer
	if err := p.WriteCandidates(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCandidates(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := p.Candidates()
	if len(got) != len(want) {
		t.Fatalf("round trip %d → %d candidates", len(want), len(got))
	}
	for i := range want {
		if got[i].Domain != want[i].Domain || got[i].TLD != want[i].TLD {
			t.Errorf("candidate %d: %+v vs %+v", i, got[i], want[i])
		}
		if !got[i].SeenAt.Equal(want[i].SeenAt) {
			t.Errorf("candidate %d SeenAt: %v vs %v", i, got[i].SeenAt, want[i].SeenAt)
		}
		if got[i].RDAPOutcome != want[i].RDAPOutcome {
			t.Errorf("candidate %d outcome: %v vs %v", i, got[i].RDAPOutcome, want[i].RDAPOutcome)
		}
	}
}

func TestReadCandidatesRejectsWrongSchema(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("DCOL1\n")
	// varint length + wrong schema string
	schema := "x:string"
	buf.WriteByte(byte(len(schema)))
	buf.WriteString(schema)
	buf.WriteByte(0) // EOF marker
	if _, err := ReadCandidates(&buf); err == nil {
		t.Error("wrong schema accepted")
	}
}

func TestReadCandidatesRejectsGarbage(t *testing.T) {
	if _, err := ReadCandidates(bytes.NewReader([]byte("not a columnar file"))); err == nil {
		t.Error("garbage accepted")
	}
}
