package core_test

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"darkdns/internal/certstream"
	"darkdns/internal/core"
	"darkdns/internal/ct"
	"darkdns/internal/czds"
	"darkdns/internal/psl"
	"darkdns/internal/rdap"
	"darkdns/internal/registry"
	"darkdns/internal/simclock"
)

var t0 = time.Date(2023, 11, 1, 0, 0, 0, 0, time.UTC)

// TestPipelineWithHTTPRDAP runs step 2 over a real HTTP RDAP service
// backed by a simulated registry — the same wire path a production
// deployment of the pipeline would use.
func TestPipelineWithHTTPRDAP(t *testing.T) {
	clk := simclock.NewSim(t0)
	reg := registry.New(registry.DefaultConfig("com"), clk, rand.New(rand.NewSource(1)))
	defer reg.Stop()

	// RDAP service over HTTP, with a backend adapter onto the registry.
	mux := rdap.NewMux()
	mux.Handle("com", rdap.BackendFunc(func(name string) (*rdap.Record, error) {
		r, err := reg.RDAPLookup(name)
		if err != nil {
			return nil, rdap.ErrNotFound
		}
		return &rdap.Record{Domain: r.Domain, Registrar: r.Registrar, Registered: r.Created}, nil
	}))
	srv := rdap.NewServer(mux, nil)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cfg := core.DefaultConfig(t0, t0.Add(30*24*time.Hour))
	cfg.RDAPFailureRate = 0
	cfg.RDAPDelay = nil
	p := core.New(cfg, clk, psl.Default(), czds.New(),
		rdap.NewClient("http://"+addr.String(), "worker-1"), nil, nil, 1)

	// Register a domain, let it enter the zone and sync to RDAP, then
	// deliver its certificate event.
	reg.Register("wire-rdap.com", "NameCheap", []string{"ns1.cloudflare.com"}, netip.Addr{})
	clk.Advance(3 * time.Minute)
	p.HandleEvent(certstream.Event{
		Seen: clk.Now(), Log: "argon",
		Entry: ct.Entry{Kind: ct.PreCertificate, Issuer: "LE", CN: "www.wire-rdap.com"},
	})
	clk.Advance(time.Minute) // fire the RDAP collection callback

	c, ok := p.Candidate("wire-rdap.com")
	if !ok {
		t.Fatal("candidate missing")
	}
	if c.RDAPOutcome != core.RDAPOK {
		t.Fatalf("RDAP over HTTP: %v", c.RDAPOutcome)
	}
	if c.Registrar != "NameCheap" || !c.Registered.Equal(t0) {
		t.Errorf("record: registrar=%q registered=%v", c.Registrar, c.Registered)
	}
	if !c.Validated {
		t.Error("candidate should validate (CT seen 3m after registration)")
	}
}

// TestPipelineHTTPRDAPRateLimited exercises the paper's failure mode: a
// rate-limited RDAP server yields RDAPError outcomes that are never
// retried.
func TestPipelineHTTPRDAPRateLimited(t *testing.T) {
	clk := simclock.NewSim(t0)
	mux := rdap.NewMux()
	mux.Handle("com", rdap.BackendFunc(func(name string) (*rdap.Record, error) {
		return &rdap.Record{Domain: name, Registrar: "X", Registered: t0}, nil
	}))
	// A limiter that refuses everything after the first request.
	limiter := rdap.NewRateLimiter(0.000001, 1, time.Now)
	srv := rdap.NewServer(mux, limiter)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cfg := core.DefaultConfig(t0, t0.Add(time.Hour))
	cfg.RDAPFailureRate = 0
	cfg.RDAPDelay = nil
	p := core.New(cfg, clk, psl.Default(), czds.New(),
		rdap.NewClient("http://"+addr.String(), "worker-1"), nil, nil, 1)

	for i, d := range []string{"first.com", "second.com"} {
		p.HandleEvent(certstream.Event{
			Seen:  clk.Now().Add(time.Duration(i) * time.Second),
			Log:   "argon",
			Entry: ct.Entry{Kind: ct.PreCertificate, CN: d},
		})
	}
	clk.Advance(time.Minute)

	first, _ := p.Candidate("first.com")
	second, _ := p.Candidate("second.com")
	if first.RDAPOutcome != core.RDAPOK {
		t.Errorf("first: %v", first.RDAPOutcome)
	}
	if second.RDAPOutcome != core.RDAPError {
		t.Errorf("second should be rate-limited: %v", second.RDAPOutcome)
	}
}
