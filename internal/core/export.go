package core

import (
	"fmt"
	"io"
	"time"

	"darkdns/internal/columnar"
)

// candidateSchema is the columnar layout for persisted candidates — the
// stand-in for the paper's Parquet objects ("we feed the results of each
// measurement into Kafka topics and store them in Parquet format in our
// object storage for longitudinal analysis").
var candidateSchema = columnar.Schema{
	{Name: "domain", Type: columnar.TypeString},
	{Name: "tld", Type: columnar.TypeString},
	{Name: "seen_unix", Type: columnar.TypeInt64},
	{Name: "ct_log", Type: columnar.TypeString},
	{Name: "issuer", Type: columnar.TypeString},
	{Name: "rdap_outcome", Type: columnar.TypeInt64},
	{Name: "registrar", Type: columnar.TypeString},
	{Name: "registered_unix", Type: columnar.TypeInt64},
	{Name: "validated", Type: columnar.TypeBool},
	{Name: "watched", Type: columnar.TypeBool},
}

// WriteCandidates persists the pipeline's current candidates to w in the
// columnar format, sorted by domain.
func (p *Pipeline) WriteCandidates(w io.Writer) error {
	cw := columnar.NewWriter(w, candidateSchema, 0)
	for _, c := range p.Candidates() {
		var regUnix int64
		if !c.Registered.IsZero() {
			regUnix = c.Registered.Unix()
		}
		err := cw.Append(
			columnar.String(c.Domain),
			columnar.String(c.TLD),
			columnar.Int(c.SeenAt.Unix()),
			columnar.String(c.CTLog),
			columnar.String(c.Issuer),
			columnar.Int(int64(c.RDAPOutcome)),
			columnar.String(c.Registrar),
			columnar.Int(regUnix),
			columnar.Bool(c.Validated),
			columnar.Bool(c.Watched),
		)
		if err != nil {
			return fmt.Errorf("core: exporting %s: %w", c.Domain, err)
		}
	}
	return cw.Close()
}

// ReadCandidates loads candidates previously written by WriteCandidates.
func ReadCandidates(r io.Reader) ([]Candidate, error) {
	cr, err := columnar.NewReader(r)
	if err != nil {
		return nil, err
	}
	if got, want := cr.Schema().String(), candidateSchema.String(); got != want {
		return nil, fmt.Errorf("core: schema mismatch: %s", got)
	}
	var out []Candidate
	for {
		g, err := cr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		for i := 0; i < g.Rows; i++ {
			c := Candidate{
				Domain:      g.Strs["domain"][i],
				TLD:         g.Strs["tld"][i],
				SeenAt:      time.Unix(g.Ints["seen_unix"][i], 0).UTC(),
				CTLog:       g.Strs["ct_log"][i],
				Issuer:      g.Strs["issuer"][i],
				RDAPOutcome: RDAPOutcome(g.Ints["rdap_outcome"][i]),
				Registrar:   g.Strs["registrar"][i],
				Validated:   g.Bools["validated"][i],
				Watched:     g.Bools["watched"][i],
			}
			if ru := g.Ints["registered_unix"][i]; ru != 0 {
				c.Registered = time.Unix(ru, 0).UTC()
			}
			out = append(out, c)
		}
	}
}
