// Package core implements the DarkDNS methodology (paper §3): a five-step
// pipeline that turns public observables — certificate transparency
// events, CZDS zone snapshots, RDAP lookups and reactive DNS measurements
// — into a feed of newly registered domains and a lower-bound inventory
// of transient domains.
//
// Step 1: consume Certstream precertificate events, extract registered
// domains via the Public Suffix List, and keep those absent from the
// latest CZDS snapshots.
// Step 2: collect RDAP registration data (one attempt, never retried).
// Step 3: reactively probe each candidate (A/AAAA/NS every 10 minutes for
// 48 hours; NS directly at the TLD's authoritative servers).
// Step 4: validate the CT detection time against the RDAP-reported
// registration time (within 24 hours).
// Step 5: after the window closes, label as transient every candidate
// that never appeared in any zone snapshot (±3 days slack).
package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"darkdns/internal/certstream"
	"darkdns/internal/czds"
	"darkdns/internal/dnsname"
	"darkdns/internal/measure"
	"darkdns/internal/psl"
	"darkdns/internal/rdap"
	"darkdns/internal/simclock"
	"darkdns/internal/stream"
)

// Config parameterizes the pipeline.
type Config struct {
	WindowStart time.Time
	WindowEnd   time.Time
	// ZoneSlack widens the transient test window to absorb late zone
	// publication (paper: ±3 days).
	ZoneSlack time.Duration
	// ValidationWindow is the maximum |CT seen − RDAP registered| for a
	// candidate to count as a validated NRD (paper: 24 h).
	ValidationWindow time.Duration
	// RDAPDelay samples the queueing delay between detection and the
	// RDAP query (Azure worker dispatch in the paper).
	RDAPDelay func(rng *rand.Rand) time.Duration
	// RDAPFailureRate injects collection errors (rate limiting, worker
	// failures — the paper's ≈3 %).
	RDAPFailureRate float64
	// WatchSampleRate is the fraction of candidates handed to the
	// measurement fleet. 1.0 is paper-accurate; large-scale simulation
	// runs may sample (every analysis over fleet data is a proportion).
	WatchSampleRate float64
	// FeedTopic is the stream topic name for the public NRD feed.
	FeedTopic string
}

// DefaultConfig returns the paper's parameters over [start, end).
func DefaultConfig(start, end time.Time) Config {
	return Config{
		WindowStart:      start,
		WindowEnd:        end,
		ZoneSlack:        3 * 24 * time.Hour,
		ValidationWindow: 24 * time.Hour,
		RDAPDelay: func(rng *rand.Rand) time.Duration {
			return time.Duration(rng.Int63n(int64(5 * time.Minute)))
		},
		RDAPFailureRate: 0.03,
		WatchSampleRate: 1.0,
		FeedTopic:       "nrd-feed",
	}
}

// RDAPOutcome classifies step 2's result for a candidate.
type RDAPOutcome uint8

// RDAP outcomes.
const (
	RDAPPending RDAPOutcome = iota
	RDAPOK
	RDAPNotFound  // domain gone (too late) or never existed
	RDAPNotSynced // we were too early
	RDAPError     // rate limiting / collection failure
)

// String names the outcome.
func (o RDAPOutcome) String() string {
	switch o {
	case RDAPPending:
		return "pending"
	case RDAPOK:
		return "ok"
	case RDAPNotFound:
		return "not-found"
	case RDAPNotSynced:
		return "not-synced"
	case RDAPError:
		return "error"
	}
	return "unknown"
}

// Candidate is a CT-detected newly registered domain working through the
// pipeline.
type Candidate struct {
	Domain string
	TLD    string
	SeenAt time.Time // certstream observation time (the paper's proxy)
	CTLog  string
	Issuer string

	RDAPAt      time.Time
	RDAPOutcome RDAPOutcome
	Registrar   string
	Registered  time.Time

	Validated bool // |SeenAt − Registered| ≤ ValidationWindow
	Watched   bool // handed to the measurement fleet
}

// DetectionDelay is SeenAt − Registered for validated candidates.
func (c *Candidate) DetectionDelay() time.Duration { return c.SeenAt.Sub(c.Registered) }

// Pipeline is the DarkDNS measurement pipeline.
type Pipeline struct {
	cfg   Config
	clk   simclock.Clock
	psl   *psl.List
	zones *czds.Service
	rdapQ rdap.Querier
	fleet *measure.Fleet
	rng   *rand.Rand

	feed *stream.Topic

	mu         sync.Mutex
	candidates map[string]*Candidate
	unsub      func()
}

// New assembles a pipeline. bus may be nil when no feed publication is
// wanted; fleet may be nil to skip step 3.
func New(cfg Config, clk simclock.Clock, pslList *psl.List, zones *czds.Service,
	rdapQ rdap.Querier, fleet *measure.Fleet, bus *stream.Bus, seed int64) *Pipeline {
	if cfg.ValidationWindow <= 0 {
		cfg.ValidationWindow = 24 * time.Hour
	}
	if cfg.ZoneSlack <= 0 {
		cfg.ZoneSlack = 3 * 24 * time.Hour
	}
	if cfg.WatchSampleRate <= 0 {
		cfg.WatchSampleRate = 1.0
	}
	if cfg.FeedTopic == "" {
		cfg.FeedTopic = "nrd-feed"
	}
	p := &Pipeline{
		cfg: cfg, clk: clk, psl: pslList, zones: zones, rdapQ: rdapQ,
		fleet: fleet, rng: rand.New(rand.NewSource(seed)),
		candidates: make(map[string]*Candidate),
	}
	if bus != nil {
		p.feed = bus.Topic(cfg.FeedTopic)
	}
	return p
}

// Start subscribes the pipeline to the certstream hub. Call Stop to
// detach.
func (p *Pipeline) Start(hub *certstream.Hub) {
	p.unsub = hub.Subscribe(p.HandleEvent)
}

// Stop detaches from the hub.
func (p *Pipeline) Stop() {
	if p.unsub != nil {
		p.unsub()
		p.unsub = nil
	}
}

// HandleEvent processes one certstream event (step 1). Exported so tests
// and replay tools can feed events directly.
func (p *Pipeline) HandleEvent(ev certstream.Event) {
	for _, name := range ev.Entry.Names() {
		domain, ok := p.psl.RegisteredDomain(name)
		if !ok {
			continue
		}
		if dnsname.Check(domain) != nil {
			continue
		}
		p.consider(domain, ev)
	}
}

// consider applies the not-in-latest-snapshot filter and admits a new
// candidate.
func (p *Pipeline) consider(domain string, ev certstream.Event) {
	p.mu.Lock()
	if _, dup := p.candidates[domain]; dup {
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()

	if p.zones.InLatest(domain) {
		return // already visible in zone files: not newly registered
	}
	cand := &Candidate{
		Domain: domain,
		TLD:    dnsname.TLD(domain),
		SeenAt: ev.Seen,
		CTLog:  ev.Log,
		Issuer: ev.Entry.Issuer,
	}
	p.mu.Lock()
	if _, dup := p.candidates[domain]; dup {
		p.mu.Unlock()
		return
	}
	p.candidates[domain] = cand
	p.mu.Unlock()

	if p.feed != nil {
		p.feed.Publish(ev.Seen, domain, []byte(fmt.Sprintf(`{"domain":%q,"seen":%q,"log":%q}`,
			domain, ev.Seen.UTC().Format(time.RFC3339), ev.Log)))
	}

	// Step 2: RDAP after worker-queue delay, one attempt only.
	delay := time.Duration(0)
	if p.cfg.RDAPDelay != nil {
		delay = p.cfg.RDAPDelay(p.rng)
	}
	fail := p.rng.Float64() < p.cfg.RDAPFailureRate
	p.clk.After(delay, func() { p.collectRDAP(cand, fail) })

	// Step 3: reactive measurements.
	if p.fleet != nil && p.rng.Float64() < p.cfg.WatchSampleRate {
		cand.Watched = true
		p.fleet.Watch(domain)
	}
}

// collectRDAP performs step 2 and the step 4 validation.
func (p *Pipeline) collectRDAP(cand *Candidate, injectedFailure bool) {
	now := p.clk.Now()
	p.mu.Lock()
	cand.RDAPAt = now
	p.mu.Unlock()
	if injectedFailure {
		p.setRDAP(cand, RDAPError, nil)
		return
	}
	rec, err := p.rdapQ.Domain(context.Background(), cand.Domain)
	switch {
	case err == nil:
		p.setRDAP(cand, RDAPOK, rec)
	case errors.Is(err, rdap.ErrNotFound):
		p.setRDAP(cand, RDAPNotFound, nil)
	case errors.Is(err, rdap.ErrNotSynced):
		p.setRDAP(cand, RDAPNotSynced, nil)
	default:
		p.setRDAP(cand, RDAPError, nil)
	}
}

func (p *Pipeline) setRDAP(cand *Candidate, outcome RDAPOutcome, rec *rdap.Record) {
	p.mu.Lock()
	defer p.mu.Unlock()
	cand.RDAPOutcome = outcome
	if rec != nil {
		cand.Registrar = rec.Registrar
		cand.Registered = rec.Registered
		delta := cand.SeenAt.Sub(rec.Registered)
		if delta < 0 {
			delta = -delta
		}
		cand.Validated = delta <= p.cfg.ValidationWindow
	}
}

// Candidates returns copies of all candidates, sorted by domain.
func (p *Pipeline) Candidates() []Candidate {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Candidate, 0, len(p.candidates))
	for _, c := range p.candidates {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	return out
}

// Candidate returns a copy of one candidate.
func (p *Pipeline) Candidate(domain string) (Candidate, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.candidates[dnsname.Canonical(domain)]
	if !ok {
		return Candidate{}, false
	}
	return *c, true
}

// Len returns the number of candidates admitted.
func (p *Pipeline) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.candidates)
}

// TransientReport is the step 5 output.
type TransientReport struct {
	// All candidates never seen in a snapshot within the slack window —
	// the paper's lower bound (68,042).
	LowerBound []Candidate
	// Confirmed is the RDAP-validated subset (the paper's 42,358).
	Confirmed []Candidate
	// RDAPFailed is the subset of LowerBound whose RDAP collection
	// failed (the paper's ≈34 %): too late, too early, or never existed.
	RDAPFailed []Candidate
}

// Transients computes step 5 over the configured window. Candidates in
// TLDs with no collected zone snapshots are skipped: without zone files
// the "never appeared in a snapshot" test is vacuous (this is precisely
// why ccTLD transients need the registry's own zone view, §4.4).
func (p *Pipeline) Transients() TransientReport {
	collected := make(map[string]bool)
	for _, tld := range p.zones.TLDs() {
		collected[tld] = true
	}
	var rep TransientReport
	for _, c := range p.Candidates() {
		if !collected[c.TLD] {
			continue
		}
		from := c.SeenAt.Add(-p.cfg.ZoneSlack)
		to := p.cfg.WindowEnd.Add(p.cfg.ZoneSlack)
		if p.zones.EverSeen(c.Domain, from, to) {
			continue // appeared in a snapshot eventually: not transient
		}
		rep.LowerBound = append(rep.LowerBound, c)
		switch c.RDAPOutcome {
		case RDAPOK:
			if c.Validated {
				rep.Confirmed = append(rep.Confirmed, c)
			}
		default:
			rep.RDAPFailed = append(rep.RDAPFailed, c)
		}
	}
	return rep
}

// Stats summarizes the pipeline's state for operational reporting.
type Stats struct {
	Candidates int
	ByOutcome  map[RDAPOutcome]int
	Validated  int
	Watched    int
}

// Summary computes current pipeline statistics.
func (p *Pipeline) Summary() Stats {
	s := Stats{ByOutcome: make(map[RDAPOutcome]int)}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.candidates {
		s.Candidates++
		s.ByOutcome[c.RDAPOutcome]++
		if c.Validated {
			s.Validated++
		}
		if c.Watched {
			s.Watched++
		}
	}
	return s
}

// ZoneNRDCoverage computes the Table 1 comparison: of the domains that
// appeared as additions in day-over-day zone diffs, which fraction did the
// pipeline detect first via CT? The czds first-seen index supplies the
// zone side.
func (p *Pipeline) ZoneNRDCoverage(tld string) (detectedInZone, zoneNRDs int64) {
	zoneNRDs = p.zones.Stats(tld).Added
	for _, c := range p.Candidates() {
		if c.TLD != tld {
			continue
		}
		if first, ok := p.zones.FirstSeen(c.Domain); ok && first.After(c.SeenAt) {
			detectedInZone++
		}
	}
	return detectedInZone, zoneNRDs
}
