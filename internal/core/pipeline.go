// Package core implements the DarkDNS methodology (paper §3): a five-step
// pipeline that turns public observables — certificate transparency
// events, CZDS zone snapshots, RDAP lookups and reactive DNS measurements
// — into a feed of newly registered domains and a lower-bound inventory
// of transient domains.
//
// Step 1: consume Certstream precertificate events, extract registered
// domains via the Public Suffix List, and keep those absent from the
// latest CZDS snapshots.
// Step 2: collect RDAP registration data (one attempt, never retried).
// Step 3: reactively probe each candidate (A/AAAA/NS every 10 minutes for
// 48 hours; NS directly at the TLD's authoritative servers).
// Step 4: validate the CT detection time against the RDAP-reported
// registration time (within 24 hours).
// Step 5: after the window closes, label as transient every candidate
// that never appeared in any zone snapshot (±3 days slack).
//
// Concurrency model (DESIGN.md §5–§6): the candidate store is striped
// over independent locks, zone-presence reads are lock-free (czds),
// HandleBatch screens events through the PSL and zone filter on a worker
// pool, and with Config.RDAPWorkers set, step 2 runs through the
// asynchronous per-TLD dispatch engine (rdap.Dispatcher) instead of
// blocking lookups scheduled on the clock. Every per-candidate random
// decision (RDAP queueing delay, failure
// injection, watch sampling) is drawn from a generator derived from the
// pipeline seed and the domain name alone, so outcomes are identical no
// matter how events are batched or which worker screens them — serial and
// parallel ingest produce byte-identical campaign reports.
package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"darkdns/internal/certstream"
	"darkdns/internal/czds"
	"darkdns/internal/dnsname"
	"darkdns/internal/measure"
	"darkdns/internal/psl"
	"darkdns/internal/rdap"
	"darkdns/internal/simclock"
	"darkdns/internal/stream"
	"darkdns/internal/workpool"
)

// Config parameterizes the pipeline.
type Config struct {
	WindowStart time.Time
	WindowEnd   time.Time
	// ZoneSlack widens the transient test window to absorb late zone
	// publication (paper: ±3 days).
	ZoneSlack time.Duration
	// ValidationWindow is the maximum |CT seen − RDAP registered| for a
	// candidate to count as a validated NRD (paper: 24 h).
	ValidationWindow time.Duration
	// RDAPDelay samples the queueing delay between detection and the
	// RDAP query (Azure worker dispatch in the paper). The generator
	// passed in is derived from the pipeline seed and the candidate's
	// domain, so the sampled delay is reproducible independent of event
	// order.
	RDAPDelay func(rng *rand.Rand) time.Duration
	// RDAPFailureRate injects collection errors (rate limiting, worker
	// failures — the paper's ≈3 %).
	RDAPFailureRate float64
	// WatchSampleRate is the fraction of candidates handed to the
	// measurement fleet. 1.0 is paper-accurate; large-scale simulation
	// runs may sample (every analysis over fleet data is a proportion).
	WatchSampleRate float64
	// FeedTopic is the stream topic name for the public NRD feed.
	FeedTopic string
	// IngestWorkers sets the worker-pool width HandleBatch screens
	// events with (PSL extraction + zone filter). 0 or 1 screens on the
	// calling goroutine.
	IngestWorkers int
	// IngestBatch caps the micro-batcher's buffer (StartBatched): once
	// this many events are pending the batch is handed off inline
	// without waiting for the flush timer. 0 means DefaultIngestBatch.
	IngestBatch int
	// RDAPWorkers enables the asynchronous RDAP dispatch engine:
	// admitted candidates enqueue into per-TLD queues drained by a
	// worker pool this wide instead of scheduling a blocking lookup on
	// the clock. 0 keeps the serial collection path. Campaign reports
	// are byte-identical across 0, 1 and N workers (the dispatcher's
	// determinism contract).
	RDAPWorkers int
	// RDAPQueueDepth bounds each TLD's pending-query backlog when the
	// dispatch engine is enabled; excess queries shed as collection
	// errors instead of blocking ingest. 0 means unbounded (the
	// campaign default — shedding depends on load, so bounding trades
	// the serial/parallel byte-identity for backpressure).
	RDAPQueueDepth int
}

// DefaultIngestBatch is the micro-batcher's default maximum batch size.
const DefaultIngestBatch = 256

// DefaultConfig returns the paper's parameters over [start, end).
func DefaultConfig(start, end time.Time) Config {
	return Config{
		WindowStart:      start,
		WindowEnd:        end,
		ZoneSlack:        3 * 24 * time.Hour,
		ValidationWindow: 24 * time.Hour,
		RDAPDelay: func(rng *rand.Rand) time.Duration {
			return time.Duration(rng.Int63n(int64(5 * time.Minute)))
		},
		RDAPFailureRate: 0.03,
		WatchSampleRate: 1.0,
		FeedTopic:       "nrd-feed",
	}
}

// RDAPOutcome classifies step 2's result for a candidate.
type RDAPOutcome uint8

// RDAP outcomes.
const (
	RDAPPending RDAPOutcome = iota
	RDAPOK
	RDAPNotFound  // domain gone (too late) or never existed
	RDAPNotSynced // we were too early
	RDAPError     // rate limiting / collection failure
)

// String names the outcome.
func (o RDAPOutcome) String() string {
	switch o {
	case RDAPPending:
		return "pending"
	case RDAPOK:
		return "ok"
	case RDAPNotFound:
		return "not-found"
	case RDAPNotSynced:
		return "not-synced"
	case RDAPError:
		return "error"
	}
	return "unknown"
}

// Candidate is a CT-detected newly registered domain working through the
// pipeline.
type Candidate struct {
	Domain string
	TLD    string
	SeenAt time.Time // certstream observation time (the paper's proxy)
	CTLog  string
	Issuer string

	RDAPAt      time.Time
	RDAPOutcome RDAPOutcome
	Registrar   string
	Registered  time.Time

	Validated bool // |SeenAt − Registered| ≤ ValidationWindow
	Watched   bool // handed to the measurement fleet
}

// DetectionDelay is SeenAt − Registered for validated candidates.
func (c *Candidate) DetectionDelay() time.Duration { return c.SeenAt.Sub(c.Registered) }

// candShards is the stripe count of the candidate store. Power of two
// for cheap masking; 64 stripes keep admissions, RDAP completions and
// report reads from serializing on one lock at ingest rates.
const candShards = 64

// candShard is one stripe of the candidate store.
type candShard struct {
	mu         sync.Mutex
	candidates map[string]*Candidate
}

// Pipeline is the DarkDNS measurement pipeline.
type Pipeline struct {
	cfg Config
	clk simclock.Clock
	// tagClk is clk's effect-tagged extension, resolved once; nil on
	// clocks without lookahead support (every schedule then stays
	// untagged, which is always safe).
	tagClk simclock.TagScheduler
	psl    *psl.List
	zones  *czds.Service
	rdapQ  rdap.Querier
	rdapD  *rdap.Dispatcher // non-nil when cfg.RDAPWorkers > 0
	fleet  *measure.Fleet
	seed   int64

	feed *stream.Topic

	shards [candShards]candShard
	count  atomic.Int64

	// Micro-batcher state (StartBatched).
	batchMu    sync.Mutex
	batchBuf   []certstream.Event
	flushArmed bool

	unsub func()
}

// New assembles a pipeline. bus may be nil when no feed publication is
// wanted; fleet may be nil to skip step 3.
func New(cfg Config, clk simclock.Clock, pslList *psl.List, zones *czds.Service,
	rdapQ rdap.Querier, fleet *measure.Fleet, bus *stream.Bus, seed int64) *Pipeline {
	if cfg.ValidationWindow <= 0 {
		cfg.ValidationWindow = 24 * time.Hour
	}
	if cfg.ZoneSlack <= 0 {
		cfg.ZoneSlack = 3 * 24 * time.Hour
	}
	if cfg.WatchSampleRate <= 0 {
		cfg.WatchSampleRate = 1.0
	}
	if cfg.FeedTopic == "" {
		cfg.FeedTopic = "nrd-feed"
	}
	if cfg.IngestBatch <= 0 {
		cfg.IngestBatch = DefaultIngestBatch
	}
	p := &Pipeline{
		cfg: cfg, clk: clk, psl: pslList, zones: zones, rdapQ: rdapQ,
		fleet: fleet, seed: seed,
	}
	p.tagClk, _ = clk.(simclock.TagScheduler)
	if cfg.RDAPWorkers > 0 {
		p.rdapD = rdap.NewDispatcher(rdap.DispatcherConfig{
			Workers:    cfg.RDAPWorkers,
			QueueDepth: cfg.RDAPQueueDepth,
		}, clk, rdapQ)
	}
	for i := range p.shards {
		p.shards[i].candidates = make(map[string]*Candidate)
	}
	if bus != nil {
		p.feed = bus.Topic(cfg.FeedTopic)
	}
	return p
}

// shard maps a domain to its store stripe.
func (p *Pipeline) shard(domain string) *candShard {
	return &p.shards[dnsname.Hash64(domain)&(candShards-1)]
}

// splitmix64 is a tiny rand.Source64: each call advances a Weyl sequence
// and whitens it through the shared dnsname.Mix64 finalizer. It replaces
// the stock 4.9 KB shuffled-linear source for per-candidate decision
// draws, where a fresh generator is created per admission.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	return dnsname.Mix64(uint64(*s))
}

func (s *splitmix64) Uint64() uint64  { return s.next() }
func (s *splitmix64) Int63() int64    { return int64(s.next() >> 1) }
func (s *splitmix64) Seed(seed int64) { *s = splitmix64(seed) }

// domainRand derives the candidate's decision generator from the pipeline
// seed and the domain name. Because the derivation ignores event arrival
// order, every ingest mode draws identical decisions for a given
// (seed, domain) pair — the property the serial/parallel determinism
// guarantee rests on.
func (p *Pipeline) domainRand(domain string) *rand.Rand {
	src := splitmix64(dnsname.Hash64(domain) ^ uint64(p.seed))
	return rand.New(&src)
}

// Start subscribes the pipeline to the certstream hub, handling each
// event as it is delivered. Call Stop to detach.
func (p *Pipeline) Start(hub *certstream.Hub) {
	p.unsub = hub.Subscribe(p.HandleEvent)
}

// StartBatched subscribes the pipeline to the certstream hub in
// micro-batching mode: delivered events accumulate in a buffer that is
// flushed through HandleBatch — immediately once cfg.IngestBatch events
// are pending, otherwise by a zero-delay timer on the pipeline's clock.
// Under the simulated clock the flush fires at the same instant the
// events were delivered (after the current dispatch completes), so
// batched campaigns reproduce per-event campaigns exactly; under the real
// clock arrivals during a flush coalesce into the next batch, which is
// the classic notify-and-drain amortization.
func (p *Pipeline) StartBatched(hub *certstream.Hub) {
	p.unsub = hub.Subscribe(p.enqueue)
}

// enqueue buffers one event for the next flush.
func (p *Pipeline) enqueue(ev certstream.Event) {
	p.batchMu.Lock()
	p.batchBuf = append(p.batchBuf, ev)
	if len(p.batchBuf) >= p.cfg.IngestBatch {
		buf := p.batchBuf
		p.batchBuf = nil
		p.batchMu.Unlock()
		p.HandleBatch(buf)
		return
	}
	if !p.flushArmed {
		p.flushArmed = true
		p.batchMu.Unlock()
		p.clk.After(0, p.Flush)
		return
	}
	p.batchMu.Unlock()
}

// Flush drains the micro-batcher's buffer through HandleBatch. It is
// exported for replay tools that need a hard batch boundary; Stop calls
// it automatically.
func (p *Pipeline) Flush() {
	p.batchMu.Lock()
	buf := p.batchBuf
	p.batchBuf = nil
	p.flushArmed = false
	p.batchMu.Unlock()
	if len(buf) > 0 {
		p.HandleBatch(buf)
	}
}

// Stop detaches from the hub and flushes any buffered events.
func (p *Pipeline) Stop() {
	if p.unsub != nil {
		p.unsub()
		p.unsub = nil
	}
	p.Flush()
}

// HandleEvent processes one certstream event (step 1). Exported so tests
// and replay tools can feed events directly; safe for concurrent use.
func (p *Pipeline) HandleEvent(ev certstream.Event) {
	for _, name := range ev.Entry.Names() {
		domain, ok := p.screenName(name)
		if !ok {
			continue
		}
		cand, admitted := p.admit(domain, ev)
		if !admitted {
			continue
		}
		if p.feed != nil {
			p.feed.Publish(ev.Seen, domain, feedJSON(domain, ev))
		}
		if q, ok := p.dispatch(cand); ok {
			p.rdapD.Enqueue(q)
		}
	}
}

// HandleBatch processes a slice of certstream events. Screening — PSL
// extraction, name hygiene, the not-in-latest-snapshot zone filter — runs
// on cfg.IngestWorkers goroutines; admission, feed publication, RDAP
// scheduling and fleet dispatch then run serially in input order, which
// pins every order-sensitive side effect (feed offsets, clock scheduling)
// to the event sequence regardless of worker interleaving. Safe for
// concurrent use.
func (p *Pipeline) HandleBatch(evs []certstream.Event) {
	if len(evs) == 0 {
		return
	}
	// Stage 1: parallel screen. proposals[i] holds event i's admissible
	// registered domains.
	proposals := make([][]string, len(evs))
	screen := func(i int) {
		var doms []string
		for _, name := range evs[i].Entry.Names() {
			if domain, ok := p.screenName(name); ok {
				doms = append(doms, domain)
			}
		}
		proposals[i] = doms
	}
	workpool.Run(len(evs), p.cfg.IngestWorkers, screen)

	// Stage 2: serial admission in input order. RDAP queries accumulate
	// into one DomainBatch so the dispatch engine admits them in a
	// single pass after the feed hand-off.
	var recs []stream.Record
	var rdapBatch rdap.DomainBatch
	for i, ev := range evs {
		for _, domain := range proposals[i] {
			cand, admitted := p.admit(domain, ev)
			if !admitted {
				continue
			}
			if p.feed != nil {
				recs = append(recs, stream.Record{Time: ev.Seen, Key: domain, Value: feedJSON(domain, ev)})
			}
			if q, ok := p.dispatch(cand); ok {
				rdapBatch = append(rdapBatch, q)
			}
		}
	}
	if p.feed != nil && len(recs) > 0 {
		p.feed.PublishBatch(p.clk.Now(), recs)
	}
	if len(rdapBatch) > 0 {
		p.rdapD.EnqueueBatch(rdapBatch)
	}
}

// screenName maps one certificate name to an admissible registered
// domain: PSL extraction, name hygiene, the zone filter, and an
// optimistic duplicate probe (admit re-checks authoritatively). All reads
// — the PSL is immutable, the zone view is a lock-free snapshot — so
// screening parallelizes without contention.
func (p *Pipeline) screenName(name string) (string, bool) {
	domain, ok := p.psl.RegisteredDomain(name)
	if !ok {
		return "", false
	}
	if dnsname.Check(domain) != nil {
		return "", false
	}
	sh := p.shard(domain)
	sh.mu.Lock()
	_, dup := sh.candidates[domain]
	sh.mu.Unlock()
	if dup {
		return "", false
	}
	if p.zones.InLatest(domain) {
		return "", false // already visible in zone files: not newly registered
	}
	return domain, true
}

// admit inserts domain into the candidate store unless a concurrent or
// earlier event won the race.
func (p *Pipeline) admit(domain string, ev certstream.Event) (*Candidate, bool) {
	cand := &Candidate{
		Domain: domain,
		TLD:    dnsname.TLD(domain),
		SeenAt: ev.Seen,
		CTLog:  ev.Log,
		Issuer: ev.Entry.Issuer,
	}
	sh := p.shard(domain)
	sh.mu.Lock()
	if _, dup := sh.candidates[domain]; dup {
		sh.mu.Unlock()
		return nil, false
	}
	sh.candidates[domain] = cand
	sh.mu.Unlock()
	p.count.Add(1)
	return cand, true
}

// dispatch runs steps 2 and 3 for a freshly admitted candidate: RDAP
// after a queueing delay (one attempt only) and the reactive measurement
// watch, with all random decisions drawn from the candidate's derived
// generator. When the dispatch engine is enabled the step-2 query is
// returned for the caller to enqueue (ok=true) instead of being scheduled
// on the clock — screened candidates enqueue, they never block on RDAP.
func (p *Pipeline) dispatch(cand *Candidate) (q rdap.Query, ok bool) {
	rng := p.domainRand(cand.Domain)
	delay := time.Duration(0)
	if p.cfg.RDAPDelay != nil {
		delay = p.cfg.RDAPDelay(rng)
	}
	fail := rng.Float64() < p.cfg.RDAPFailureRate
	if p.rdapD != nil {
		q = rdap.Query{
			Domain:        cand.Domain,
			Delay:         delay,
			InjectFailure: fail,
			DoneAt:        func(rec *rdap.Record, err error, at time.Time) { p.finishRDAPAt(cand, rec, err, at) },
		}
		ok = true
	} else if qa, isAt := p.rdapQ.(rdap.QuerierAt); isAt && p.tagClk != nil {
		// Serial-path RDAP with a time-explicit backend: effect-tag the
		// step-2 timer with the candidate's domain atom, so the lookahead
		// drain may fire RDAP lookups of unrelated domains from different
		// instants together. The lookup reads only this domain's registry
		// slice and writes only this candidate's shard entry.
		p.tagClk.ScheduleTagged(simclock.TaggedTimed{
			At:  p.clk.Now().Add(delay),
			Tag: simclock.DomainTag(cand.Domain),
			Fn:  func(now time.Time) { p.collectRDAPAt(cand, fail, now, qa) },
		})
	} else {
		p.clk.After(delay, func() { p.collectRDAP(cand, fail) })
	}

	if p.fleet != nil && rng.Float64() < p.cfg.WatchSampleRate {
		sh := p.shard(cand.Domain)
		sh.mu.Lock()
		cand.Watched = true
		sh.mu.Unlock()
		p.fleet.Watch(cand.Domain)
	}
	return q, ok
}

// feedJSON renders the NRD feed message for an admission.
func feedJSON(domain string, ev certstream.Event) []byte {
	return []byte(fmt.Sprintf(`{"domain":%q,"seen":%q,"log":%q}`,
		domain, ev.Seen.UTC().Format(time.RFC3339), ev.Log))
}

// collectRDAP performs step 2 on the serial path: the one blocking lookup
// (or injected failure), then the shared outcome recording.
func (p *Pipeline) collectRDAP(cand *Candidate, injectedFailure bool) {
	if injectedFailure {
		p.finishRDAP(cand, nil, rdap.ErrRateLimited)
		return
	}
	rec, err := p.rdapQ.Domain(context.Background(), cand.Domain)
	p.finishRDAP(cand, rec, err)
}

// collectRDAPAt is collectRDAP fired from an effect-tagged timer: the
// lookup and the outcome stamp both use the event's own instant.
func (p *Pipeline) collectRDAPAt(cand *Candidate, injectedFailure bool, now time.Time, qa rdap.QuerierAt) {
	if injectedFailure {
		p.finishRDAPAt(cand, nil, rdap.ErrRateLimited, now)
		return
	}
	rec, err := qa.DomainAt(context.Background(), cand.Domain, now)
	p.finishRDAPAt(cand, rec, err, now)
}

// finishRDAP records a step-2 outcome — delivered synchronously by
// collectRDAP or asynchronously by a dispatch worker — and runs the
// step 4 validation. Safe for concurrent use: outcomes for distinct
// candidates land on their own store stripes.
func (p *Pipeline) finishRDAP(cand *Candidate, rec *rdap.Record, err error) {
	p.finishRDAPAt(cand, rec, err, p.clk.Now())
}

// finishRDAPAt is finishRDAP with the completion instant passed
// explicitly (tagged events must not read the clock).
func (p *Pipeline) finishRDAPAt(cand *Candidate, rec *rdap.Record, err error, now time.Time) {
	sh := p.shard(cand.Domain)
	sh.mu.Lock()
	cand.RDAPAt = now
	sh.mu.Unlock()
	switch {
	case err == nil:
		p.setRDAP(cand, RDAPOK, rec)
	case errors.Is(err, rdap.ErrNotFound):
		p.setRDAP(cand, RDAPNotFound, nil)
	case errors.Is(err, rdap.ErrNotSynced):
		p.setRDAP(cand, RDAPNotSynced, nil)
	default:
		p.setRDAP(cand, RDAPError, nil)
	}
}

// Dispatcher exposes the RDAP dispatch engine (nil on the serial path)
// so callers can couple its counters into operational reports.
func (p *Pipeline) Dispatcher() *rdap.Dispatcher { return p.rdapD }

func (p *Pipeline) setRDAP(cand *Candidate, outcome RDAPOutcome, rec *rdap.Record) {
	sh := p.shard(cand.Domain)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cand.RDAPOutcome = outcome
	if rec != nil {
		cand.Registrar = rec.Registrar
		cand.Registered = rec.Registered
		delta := cand.SeenAt.Sub(rec.Registered)
		if delta < 0 {
			delta = -delta
		}
		cand.Validated = delta <= p.cfg.ValidationWindow
	}
}

// Candidates returns copies of all candidates, sorted by domain.
func (p *Pipeline) Candidates() []Candidate {
	out := make([]Candidate, 0, p.Len())
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for _, c := range sh.candidates {
			out = append(out, *c)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	return out
}

// Candidate returns a copy of one candidate.
func (p *Pipeline) Candidate(domain string) (Candidate, bool) {
	domain = dnsname.Canonical(domain)
	sh := p.shard(domain)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	c, ok := sh.candidates[domain]
	if !ok {
		return Candidate{}, false
	}
	return *c, true
}

// Len returns the number of candidates admitted.
func (p *Pipeline) Len() int {
	return int(p.count.Load())
}

// TransientReport is the step 5 output.
type TransientReport struct {
	// All candidates never seen in a snapshot within the slack window —
	// the paper's lower bound (68,042).
	LowerBound []Candidate
	// Confirmed is the RDAP-validated subset (the paper's 42,358).
	Confirmed []Candidate
	// RDAPFailed is the subset of LowerBound whose RDAP collection
	// failed (the paper's ≈34 %): too late, too early, or never existed.
	RDAPFailed []Candidate
}

// Transients computes step 5 over the configured window. Candidates in
// TLDs with no collected zone snapshots are skipped: without zone files
// the "never appeared in a snapshot" test is vacuous (this is precisely
// why ccTLD transients need the registry's own zone view, §4.4).
func (p *Pipeline) Transients() TransientReport {
	collected := make(map[string]bool)
	for _, tld := range p.zones.TLDs() {
		collected[tld] = true
	}
	var rep TransientReport
	for _, c := range p.Candidates() {
		if !collected[c.TLD] {
			continue
		}
		from := c.SeenAt.Add(-p.cfg.ZoneSlack)
		to := p.cfg.WindowEnd.Add(p.cfg.ZoneSlack)
		if p.zones.EverSeen(c.Domain, from, to) {
			continue // appeared in a snapshot eventually: not transient
		}
		rep.LowerBound = append(rep.LowerBound, c)
		switch c.RDAPOutcome {
		case RDAPOK:
			if c.Validated {
				rep.Confirmed = append(rep.Confirmed, c)
			}
		default:
			rep.RDAPFailed = append(rep.RDAPFailed, c)
		}
	}
	return rep
}

// Stats summarizes the pipeline's state for operational reporting.
type Stats struct {
	Candidates int
	ByOutcome  map[RDAPOutcome]int
	Validated  int
	Watched    int
}

// Summary computes current pipeline statistics.
func (p *Pipeline) Summary() Stats {
	s := Stats{ByOutcome: make(map[RDAPOutcome]int)}
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for _, c := range sh.candidates {
			s.Candidates++
			s.ByOutcome[c.RDAPOutcome]++
			if c.Validated {
				s.Validated++
			}
			if c.Watched {
				s.Watched++
			}
		}
		sh.mu.Unlock()
	}
	return s
}

// ZoneNRDCoverage computes the Table 1 comparison: of the domains that
// appeared as additions in day-over-day zone diffs, which fraction did the
// pipeline detect first via CT? The czds first-seen index supplies the
// zone side.
func (p *Pipeline) ZoneNRDCoverage(tld string) (detectedInZone, zoneNRDs int64) {
	zoneNRDs = p.zones.Stats(tld).Added
	for _, c := range p.Candidates() {
		if c.TLD != tld {
			continue
		}
		if first, ok := p.zones.FirstSeen(c.Domain); ok && first.After(c.SeenAt) {
			detectedInZone++
		}
	}
	return detectedInZone, zoneNRDs
}
