package core

import (
	"context"
	"time"

	"darkdns/internal/rdap"
)

// MuxQuerier adapts an in-process rdap.Mux (the simulated per-TLD RDAP
// services) to the pipeline's Querier interface. Network deployments use
// rdap.Client instead; both honour the no-retry policy because retrying
// happens in neither.
type MuxQuerier struct {
	Mux *rdap.Mux
}

// Domain implements rdap.Querier.
func (q MuxQuerier) Domain(_ context.Context, name string) (*rdap.Record, error) {
	return q.Mux.RDAPDomain(name)
}

// DomainAt implements rdap.QuerierAt: the lookup evaluated at an
// explicit instant, which effect-tagged RDAP events use when firing
// ahead of the lookahead drain's committed time.
func (q MuxQuerier) DomainAt(_ context.Context, name string, now time.Time) (*rdap.Record, error) {
	return q.Mux.RDAPDomainAt(name, now)
}
