package psl_test

import (
	"fmt"

	"darkdns/internal/psl"
)

func ExampleList_RegisteredDomain() {
	list := psl.Default()
	for _, name := range []string{"www.example.com", "a.b.example.co.uk", "co.uk"} {
		domain, ok := list.RegisteredDomain(name)
		fmt.Println(name, "->", domain, ok)
	}
	// Output:
	// www.example.com -> example.com true
	// a.b.example.co.uk -> example.co.uk true
	// co.uk ->  false
}
