package psl

import (
	"strings"
	"testing"
)

func TestPublicSuffixBasic(t *testing.T) {
	l := Default()
	cases := []struct{ name, want string }{
		{"example.com", "com"},
		{"www.example.com", "com"},
		{"example.co.uk", "co.uk"},
		{"www.example.co.uk", "co.uk"},
		{"example.xyz", "xyz"},
		{"com", "com"},
		{"co.uk", "co.uk"},
		{"unknown-tld-thing.zz", "zz"}, // implicit * rule
		{"myblog.blogspot.com", "blogspot.com"},
		{"deep.sub.myblog.blogspot.com", "blogspot.com"},
	}
	for _, c := range cases {
		if got := l.PublicSuffix(c.name); got != c.want {
			t.Errorf("PublicSuffix(%q) = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestWildcardAndException(t *testing.T) {
	l := Default()
	// *.ck makes foo.ck a public suffix…
	if got := l.PublicSuffix("bar.foo.ck"); got != "foo.ck" {
		t.Errorf("PublicSuffix(bar.foo.ck) = %q, want foo.ck", got)
	}
	// …but !www.ck overrides: www.ck is registrable under ck.
	if got := l.PublicSuffix("www.ck"); got != "ck" {
		t.Errorf("PublicSuffix(www.ck) = %q, want ck", got)
	}
	d, ok := l.RegisteredDomain("www.ck")
	if !ok || d != "www.ck" {
		t.Errorf("RegisteredDomain(www.ck) = %q,%v want www.ck,true", d, ok)
	}
	d, ok = l.RegisteredDomain("x.y.foo.ck")
	if !ok || d != "y.foo.ck" {
		t.Errorf("RegisteredDomain(x.y.foo.ck) = %q,%v want y.foo.ck,true", d, ok)
	}
}

func TestRegisteredDomain(t *testing.T) {
	l := Default()
	cases := []struct {
		name, want string
		ok         bool
	}{
		{"example.com", "example.com", true},
		{"www.example.com", "example.com", true},
		{"a.b.c.example.shop", "example.shop", true},
		{"example.co.uk", "example.co.uk", true},
		{"deep.example.co.uk", "example.co.uk", true},
		{"com", "", false},
		{"co.uk", "", false},
		{"", "", false},
		{"blogspot.com", "", false},
		{"myblog.blogspot.com", "myblog.blogspot.com", true},
		{"WWW.EXAMPLE.COM.", "example.com", true},
	}
	for _, c := range cases {
		got, ok := l.RegisteredDomain(c.name)
		if got != c.want || ok != c.ok {
			t.Errorf("RegisteredDomain(%q) = %q,%v want %q,%v", c.name, got, ok, c.want, c.ok)
		}
	}
}

func TestIsPublicSuffix(t *testing.T) {
	l := Default()
	for _, s := range []string{"com", "co.uk", "blogspot.com", "foo.ck"} {
		if !l.IsPublicSuffix(s) {
			t.Errorf("IsPublicSuffix(%q) = false, want true", s)
		}
	}
	for _, s := range []string{"example.com", "www.ck", ""} {
		if l.IsPublicSuffix(s) {
			t.Errorf("IsPublicSuffix(%q) = true, want false", s)
		}
	}
}

func TestParseFileFormat(t *testing.T) {
	src := `// ===BEGIN ICANN DOMAINS===
com
// comment line

net
*.ck
!www.ck
co.uk   // trailing junk should be cut at whitespace
`
	l, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 5 {
		t.Fatalf("Len = %d, want 5", l.Len())
	}
	if got := l.PublicSuffix("x.co.uk"); got != "co.uk" {
		t.Errorf("PublicSuffix(x.co.uk) = %q", got)
	}
}

func TestParseRejectsEmptyRule(t *testing.T) {
	if _, err := Parse(strings.NewReader("!\n")); err == nil {
		t.Error("want error for bare exception rule")
	}
}

func TestLongestRuleWins(t *testing.T) {
	l, err := New("com", "example.com", "deep.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if got := l.PublicSuffix("x.deep.example.com"); got != "deep.example.com" {
		t.Errorf("longest match failed: %q", got)
	}
	d, ok := l.RegisteredDomain("x.deep.example.com")
	if !ok || d != "x.deep.example.com" {
		t.Errorf("RegisteredDomain = %q,%v", d, ok)
	}
}

func TestSLDExtractionMisclassification(t *testing.T) {
	// The paper (§4.1) attributes part of Figure 1's tail to SLD
	// misclassification. Simulate: a name under a suffix absent from the
	// list yields the wrong registered domain — callers must handle it.
	l, _ := New("com") // missing co.uk rules
	d, ok := l.RegisteredDomain("shop.example.co.uk")
	if !ok || d != "co.uk" {
		// With only the implicit * rule for uk, "co.uk" is extracted —
		// which is precisely the misclassification the paper observes.
		t.Errorf("expected misclassified co.uk, got %q,%v", d, ok)
	}
}

func BenchmarkRegisteredDomain(b *testing.B) {
	l := Default()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.RegisteredDomain("www.some-host.example.co.uk")
	}
}
