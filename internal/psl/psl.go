// Package psl implements Public Suffix List rule evaluation for extracting
// registered (pay-level) domains, as used by DarkDNS step 1 to map
// certificate SAN entries onto registrable domains.
//
// The rule semantics follow publicsuffix.org: the longest matching rule
// wins, exception rules ("!") override wildcard rules ("*"), and a name
// equal to a public suffix has no registered domain.
package psl

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"darkdns/internal/dnsname"
)

// List is a compiled set of public-suffix rules. It is immutable after
// construction and safe for concurrent use.type
type List struct {
	// rules maps a canonical rule name (without "*."/"!") to its kind.
	rules map[string]ruleKind
}

type ruleKind uint8

const (
	ruleNormal ruleKind = 1 << iota
	ruleWildcard
	ruleException
)

// Parse reads rules in the publicsuffix.org file format: one rule per line,
// "//" comments and blank lines ignored.
func Parse(r io.Reader) (*List, error) {
	l := &List{rules: make(map[string]ruleKind)}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		// The PSL file stops rules at the first whitespace.
		if i := strings.IndexAny(line, " \t"); i >= 0 {
			line = line[:i]
		}
		if err := l.add(line); err != nil {
			return nil, fmt.Errorf("psl: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("psl: %w", err)
	}
	return l, nil
}

// New compiles a list from individual rule strings (e.g. "com", "*.ck",
// "!www.ck"). It is the programmatic construction path used by tests and
// the simulator.
func New(rules ...string) (*List, error) {
	l := &List{rules: make(map[string]ruleKind)}
	for _, r := range rules {
		if err := l.add(r); err != nil {
			return nil, err
		}
	}
	return l, nil
}

func (l *List) add(rule string) error {
	kind := ruleNormal
	switch {
	case strings.HasPrefix(rule, "!"):
		kind = ruleException
		rule = rule[1:]
	case strings.HasPrefix(rule, "*."):
		kind = ruleWildcard
		rule = rule[2:]
	}
	rule = dnsname.Canonical(rule)
	if rule == "" {
		return fmt.Errorf("empty rule")
	}
	l.rules[rule] |= kind
	return nil
}

// Len returns the number of distinct rule names.
func (l *List) Len() int { return len(l.rules) }

// PublicSuffix returns the public suffix of name per the list rules.
// Unknown TLDs fall back to the implicit "*" rule (the last label).
func (l *List) PublicSuffix(name string) string {
	name = dnsname.Canonical(name)
	if name == "" {
		return ""
	}
	labels := dnsname.Labels(name)
	// Walk suffixes from the TLD leftward, tracking the longest match.
	best := labels[len(labels)-1] // implicit * rule
	bestLabels := 1
	suffix := ""
	for i := len(labels) - 1; i >= 0; i-- {
		if suffix == "" {
			suffix = labels[i]
		} else {
			suffix = labels[i] + "." + suffix
		}
		n := len(labels) - i
		kind, ok := l.rules[suffix]
		if !ok {
			continue
		}
		if kind&ruleException != 0 {
			// Exception: the suffix is one label shorter than the rule.
			return dnsname.Parent(suffix)
		}
		if kind&ruleNormal != 0 && n > bestLabels {
			best, bestLabels = suffix, n
		}
		if kind&ruleWildcard != 0 && i > 0 {
			// "*.suffix": one more label is part of the suffix.
			wild := labels[i-1] + "." + suffix
			// Unless an exception rule names that exact domain.
			if k2 := l.rules[wild]; k2&ruleException == 0 {
				if n+1 > bestLabels {
					best, bestLabels = wild, n+1
				}
			}
		}
	}
	return best
}

// RegisteredDomain returns the registrable (pay-level) domain of name:
// the public suffix plus one label. ok is false when name IS a public
// suffix (or the root), i.e. nothing is registrable.
func (l *List) RegisteredDomain(name string) (domain string, ok bool) {
	name = dnsname.Canonical(name)
	ps := l.PublicSuffix(name)
	if name == ps || name == "" {
		return "", false
	}
	// name is strictly under ps; take suffix plus one label.
	rest := strings.TrimSuffix(name, "."+ps)
	if rest == name {
		return "", false
	}
	if i := strings.LastIndexByte(rest, '.'); i >= 0 {
		rest = rest[i+1:]
	}
	return rest + "." + ps, true
}

// IsPublicSuffix reports whether name exactly matches the list's notion of
// a public suffix.
func (l *List) IsPublicSuffix(name string) bool {
	name = dnsname.Canonical(name)
	return name != "" && l.PublicSuffix(name) == name
}

// Default returns the embedded snapshot list covering the TLDs exercised by
// the DarkDNS reproduction (Table 1 gTLDs, the .nl ccTLD, common two-level
// public suffixes, and tricky wildcard/exception cases for tests).
func Default() *List {
	l, err := New(defaultRules...)
	if err != nil {
		panic("psl: bad embedded rules: " + err.Error())
	}
	return l
}

// defaultRules is a compact snapshot of publicsuffix.org entries relevant
// to the reproduction. The full list is ~10k rules; the pipeline only needs
// rules for zones the simulated world can produce plus representative
// corner cases (multi-level, wildcard, exception).
var defaultRules = []string{
	// Table 1 / Table 2 gTLDs.
	"com", "net", "org", "xyz", "shop", "online", "bond", "top", "site",
	"store", "fun", "icu", "info", "biz", "club", "live", "vip", "work",
	"space", "website", "tech", "pro", "app", "dev", "io",
	// ccTLDs in play.
	"nl", "de", "uk", "co.uk", "org.uk", "ac.uk", "eu", "us", "cn",
	"com.cn", "net.cn", "jp", "co.jp", "ne.jp", "fr", "it", "be",
	// Multi-level public suffixes (hosting providers on the PSL).
	"blogspot.com", "github.io", "herokuapp.com", "azurewebsites.net",
	"cloudfront.net", "web.app", "pages.dev", "workers.dev",
	// Wildcard + exception examples (as in the real PSL for .ck, .bd).
	"*.ck", "!www.ck", "*.bd", "*.er",
}
