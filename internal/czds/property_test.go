package czds

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"darkdns/internal/zoneset"
)

// TestPropertyEverSeenMatchesBruteForce compares the interval-index
// implementation of EverSeen against a brute-force scan over retained
// snapshot contents, under random continuous-presence histories (the
// index assumes presence intervals, which registry-driven snapshots
// satisfy by construction).
func TestPropertyEverSeenMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		svc := New()

		const days = 20
		type window struct{ from, to int } // inclusive day range in zone
		truth := make(map[string]window)
		var domains []string
		for i := 0; i < 30; i++ {
			d := fmt.Sprintf("d%02d-%d.com", i, seed)
			from := rng.Intn(days)
			to := from + rng.Intn(days-from)
			truth[d] = window{from, to}
			domains = append(domains, d)
		}
		day := func(i int) time.Time { return t0.Add(time.Duration(i) * 24 * time.Hour) }
		for i := 0; i < days; i++ {
			snap := zoneset.NewSnapshot("com", uint32(i+1), day(i))
			for d, w := range truth {
				if i >= w.from && i <= w.to {
					snap.Add(d, []string{"ns1.x.net"})
				}
			}
			svc.Ingest(snap)
		}

		for _, d := range domains {
			w := truth[d]
			for trial := 0; trial < 20; trial++ {
				qf := rng.Intn(days)
				qt := qf + rng.Intn(days-qf)
				got := svc.EverSeen(d, day(qf), day(qt))
				want := w.from <= qt && w.to >= qf
				if got != want {
					t.Fatalf("seed %d: EverSeen(%s, day%d..day%d) = %v, presence day%d..day%d",
						seed, d, qf, qt, got, w.from, w.to)
				}
			}
		}
	}
}
