// Package czds simulates ICANN's Centralized Zone Data Service: it
// collects daily zone snapshots from participating gTLD registries and
// serves the latest snapshot per TLD to authorized subscribers.
//
// The paper's pipeline keeps a collector "populated with all latest zone
// snapshots available from ICANN CZDS" (step 1); the visibility gap exists
// precisely because this collection is daily while registrations and
// takedowns are continuous.
//
// Rather than retaining every daily snapshot (which at paper scale is
// hundreds of millions of delegation records), the service keeps the
// latest snapshot per TLD plus a compact presence index: for every domain
// ever seen in any snapshot, the Taken times of its first and last
// appearance. Domain presence is effectively an interval (registrations
// rarely flap in and out of a zone), so the index answers the paper's
// "did this domain EVER appear in our zone collection during the window"
// test (§4.2) in O(1).
//
// Concurrency model: the collection is read on the pipeline's ingest hot
// path (InLatest runs once per CT-extracted domain) but written only on
// daily snapshot collection. The per-TLD snapshot/stats view goes
// through an immutable generation swapped behind an atomic.Pointer, so
// InLatest stays lock-free no matter how many ingest workers are
// filtering concurrently, while writers pay a small per-TLD
// copy-on-write rebuild under a mutex (DESIGN.md §5). The presence
// index (one entry per domain ever seen — the bulk of the collection)
// is different: its readers (FirstSeen, EverSeen) run off the hot path,
// at transient labelling and analysis time, so it is striped over
// mutex-guarded mutable maps keyed by domain hash. Ingest updates
// stripes in place — no clone at all, eliminating the O(collection)
// write amplification the whole-view COW design paid per snapshot —
// and a reader contends only with updates hashing to its stripe.
package czds

import (
	"errors"
	"fmt"
	"maps"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"darkdns/internal/dnsname"
	"darkdns/internal/registry"
	"darkdns/internal/zoneset"
)

// ErrNoZone is returned when no snapshot has been collected for a TLD.
var ErrNoZone = errors.New("czds: no snapshot for zone")

// presence is a domain's appearance interval across collected snapshots.
type presence struct {
	first time.Time
	last  time.Time
}

// DiffStats accumulates day-over-day zone differences for one TLD — the
// "Zone NRD" baseline of Table 1.
type DiffStats struct {
	Added   int64
	Removed int64
	Changed int64
}

// view is one immutable generation of the per-TLD collection state.
// Readers load it atomically and never see it change; Ingest builds a
// successor and swaps.
type view struct {
	latest map[string]*zoneset.Snapshot
	stats  map[string]DiffStats
}

// emptyView is the generation before any collection.
var emptyView = &view{
	latest: map[string]*zoneset.Snapshot{},
	stats:  map[string]DiffStats{},
}

// seenStripes is the stripe count of the presence index. The index holds
// every domain ever seen in any snapshot — O(collection) — so cloning it
// whole per daily snapshot was the write amplification ROADMAP flagged.
// Striped mutable maps update in place; the stripe count only bounds
// reader/writer contention. Power of two for cheap masking.
const seenStripes = 64

// seenStripe is one mutex-guarded stripe of the presence index.
type seenStripe struct {
	mu sync.Mutex
	m  map[string]presence
}

// Service collects and serves zone snapshots.
type Service struct {
	// mu serializes writers (Ingest, Subscribe); readers never take it.
	mu   sync.Mutex
	view atomic.Pointer[view]
	seen [seenStripes]seenStripe
	subs []func(*zoneset.Snapshot)
}

// New creates an empty service.
func New() *Service {
	s := &Service{}
	s.view.Store(emptyView)
	for i := range s.seen {
		s.seen[i].m = make(map[string]presence)
	}
	return s
}

// stripe returns the presence stripe holding domain's interval.
func (s *Service) stripe(domain string) *seenStripe {
	return &s.seen[dnsname.Hash64(domain)&(seenStripes-1)]
}

// Collect attaches the service to a registry's snapshot publications.
// Non-participating (ccTLD) registries are ignored, mirroring reality.
func (s *Service) Collect(reg *registry.Registry) {
	if !reg.InCZDS() {
		return
	}
	reg.Subscribe(s.Ingest)
}

// Ingest stores a published snapshot, updates the presence index and the
// day-over-day diff statistics, and notifies subscribers. Presence
// stripes update in place under their stripe locks, batched so each
// touched stripe locks once per snapshot; the per-TLD view then becomes
// visible in one atomic swap. Stripes update before the view so "in the
// latest snapshot" never outruns "ever seen"; there is no cross-stripe
// invariant beyond that (a domain's interval lives entirely in its own
// stripe).
func (s *Service) Ingest(snap *zoneset.Snapshot) {
	s.mu.Lock()
	// Group the snapshot's domains by stripe, then take each touched
	// stripe's lock once and merge its updates in place.
	var touched [seenStripes][]string
	for _, dom := range snap.Domains() {
		i := dnsname.Hash64(dom) & (seenStripes - 1)
		touched[i] = append(touched[i], dom)
	}
	for i, doms := range touched {
		if len(doms) == 0 {
			continue
		}
		st := &s.seen[i]
		st.mu.Lock()
		for _, dom := range doms {
			p, ok := st.m[dom]
			if !ok {
				st.m[dom] = presence{first: snap.Taken, last: snap.Taken}
				continue
			}
			if snap.Taken.After(p.last) {
				p.last = snap.Taken
			}
			if snap.Taken.Before(p.first) {
				p.first = snap.Taken
			}
			st.m[dom] = p
		}
		st.mu.Unlock()
	}

	cur := s.view.Load()
	next := &view{
		latest: maps.Clone(cur.latest),
		stats:  maps.Clone(cur.stats),
	}
	prev := next.latest[snap.TLD]
	st := next.stats[snap.TLD]
	if prev != nil {
		d := zoneset.Compare(prev, snap)
		st.Added += int64(len(d.Added))
		st.Removed += int64(len(d.Removed))
		st.Changed += int64(len(d.Changed))
	} else {
		// First collected snapshot: every delegation counts as seen,
		// not as newly registered.
	}
	next.stats[snap.TLD] = st
	next.latest[snap.TLD] = snap
	s.view.Store(next)
	subs := make([]func(*zoneset.Snapshot), len(s.subs))
	copy(subs, s.subs)
	s.mu.Unlock()
	for _, fn := range subs {
		fn(snap)
	}
}

// Subscribe registers fn for every future ingested snapshot.
func (s *Service) Subscribe(fn func(*zoneset.Snapshot)) {
	s.mu.Lock()
	s.subs = append(s.subs, fn)
	s.mu.Unlock()
}

// Latest returns the most recent snapshot for tld.
func (s *Service) Latest(tld string) (*zoneset.Snapshot, error) {
	snap := s.view.Load().latest[dnsname.Canonical(tld)]
	if snap == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoZone, tld)
	}
	return snap, nil
}

// Stats returns the accumulated zone-diff statistics for tld.
func (s *Service) Stats(tld string) DiffStats {
	return s.view.Load().stats[dnsname.Canonical(tld)]
}

// TLDs returns the zones with at least one collected snapshot, sorted.
func (s *Service) TLDs() []string {
	v := s.view.Load()
	out := make([]string, 0, len(v.latest))
	for tld := range v.latest {
		out = append(out, tld)
	}
	sort.Strings(out)
	return out
}

// InLatest reports whether domain appears in the latest snapshot of its
// TLD. Domains of uncollected TLDs report false — from the pipeline's
// perspective they are always "not in the zone files" (which is why the
// paper can apply its method to ccTLDs at all). This is the ingest hot
// path; it takes no lock.
func (s *Service) InLatest(domain string) bool {
	domain = dnsname.Canonical(domain)
	snap := s.view.Load().latest[dnsname.TLD(domain)]
	return snap != nil && snap.Contains(domain)
}

// FirstSeen returns the Taken time of the first snapshot that contained
// domain, across the whole collection. Off the ingest hot path; takes
// only the domain's stripe lock.
func (s *Service) FirstSeen(domain string) (time.Time, bool) {
	domain = dnsname.Canonical(domain)
	st := s.stripe(domain)
	st.mu.Lock()
	p, ok := st.m[domain]
	st.mu.Unlock()
	return p.first, ok
}

// EverSeen reports whether domain appeared in any collected snapshot whose
// Taken time falls within [from, to]. This implements the paper's
// transient test: "domains that do not appear in our zone collection
// during the window ±3 days".
func (s *Service) EverSeen(domain string, from, to time.Time) bool {
	domain = dnsname.Canonical(domain)
	st := s.stripe(domain)
	st.mu.Lock()
	p, ok := st.m[domain]
	st.mu.Unlock()
	if !ok {
		return false
	}
	// Presence is an interval [first, last]; it intersects [from, to]
	// unless it ends before or starts after.
	return !p.last.Before(from) && !p.first.After(to)
}
