// Package czds simulates ICANN's Centralized Zone Data Service: it
// collects daily zone snapshots from participating gTLD registries and
// serves the latest snapshot per TLD to authorized subscribers.
//
// The paper's pipeline keeps a collector "populated with all latest zone
// snapshots available from ICANN CZDS" (step 1); the visibility gap exists
// precisely because this collection is daily while registrations and
// takedowns are continuous.
//
// Rather than retaining every daily snapshot (which at paper scale is
// hundreds of millions of delegation records), the service keeps the
// latest snapshot per TLD plus a compact presence index: for every domain
// ever seen in any snapshot, the Taken times of its first and last
// appearance. Domain presence is effectively an interval (registrations
// rarely flap in and out of a zone), so the index answers the paper's
// "did this domain EVER appear in our zone collection during the window"
// test (§4.2) in O(1).
package czds

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"darkdns/internal/dnsname"
	"darkdns/internal/registry"
	"darkdns/internal/zoneset"
)

// ErrNoZone is returned when no snapshot has been collected for a TLD.
var ErrNoZone = errors.New("czds: no snapshot for zone")

// presence is a domain's appearance interval across collected snapshots.
type presence struct {
	first time.Time
	last  time.Time
}

// DiffStats accumulates day-over-day zone differences for one TLD — the
// "Zone NRD" baseline of Table 1.
type DiffStats struct {
	Added   int64
	Removed int64
	Changed int64
}

// Service collects and serves zone snapshots.
type Service struct {
	mu     sync.RWMutex
	latest map[string]*zoneset.Snapshot
	seen   map[string]presence // domain → appearance interval
	stats  map[string]*DiffStats
	subs   []func(*zoneset.Snapshot)
}

// New creates an empty service.
func New() *Service {
	return &Service{
		latest: make(map[string]*zoneset.Snapshot),
		seen:   make(map[string]presence),
		stats:  make(map[string]*DiffStats),
	}
}

// Collect attaches the service to a registry's snapshot publications.
// Non-participating (ccTLD) registries are ignored, mirroring reality.
func (s *Service) Collect(reg *registry.Registry) {
	if !reg.InCZDS() {
		return
	}
	reg.Subscribe(s.Ingest)
}

// Ingest stores a published snapshot, updates the presence index and the
// day-over-day diff statistics, and notifies subscribers.
func (s *Service) Ingest(snap *zoneset.Snapshot) {
	s.mu.Lock()
	prev := s.latest[snap.TLD]
	st := s.stats[snap.TLD]
	if st == nil {
		st = &DiffStats{}
		s.stats[snap.TLD] = st
	}
	for _, dom := range snap.Domains() {
		p, ok := s.seen[dom]
		if !ok {
			s.seen[dom] = presence{first: snap.Taken, last: snap.Taken}
			continue
		}
		if snap.Taken.After(p.last) {
			p.last = snap.Taken
		}
		if snap.Taken.Before(p.first) {
			p.first = snap.Taken
		}
		s.seen[dom] = p
	}
	if prev != nil {
		d := zoneset.Compare(prev, snap)
		st.Added += int64(len(d.Added))
		st.Removed += int64(len(d.Removed))
		st.Changed += int64(len(d.Changed))
	} else {
		// First collected snapshot: every delegation counts as seen,
		// not as newly registered.
	}
	s.latest[snap.TLD] = snap
	subs := make([]func(*zoneset.Snapshot), len(s.subs))
	copy(subs, s.subs)
	s.mu.Unlock()
	for _, fn := range subs {
		fn(snap)
	}
}

// Subscribe registers fn for every future ingested snapshot.
func (s *Service) Subscribe(fn func(*zoneset.Snapshot)) {
	s.mu.Lock()
	s.subs = append(s.subs, fn)
	s.mu.Unlock()
}

// Latest returns the most recent snapshot for tld.
func (s *Service) Latest(tld string) (*zoneset.Snapshot, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap := s.latest[dnsname.Canonical(tld)]
	if snap == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoZone, tld)
	}
	return snap, nil
}

// Stats returns the accumulated zone-diff statistics for tld.
func (s *Service) Stats(tld string) DiffStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := s.stats[dnsname.Canonical(tld)]
	if st == nil {
		return DiffStats{}
	}
	return *st
}

// TLDs returns the zones with at least one collected snapshot, sorted.
func (s *Service) TLDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.latest))
	for tld := range s.latest {
		out = append(out, tld)
	}
	sort.Strings(out)
	return out
}

// InLatest reports whether domain appears in the latest snapshot of its
// TLD. Domains of uncollected TLDs report false — from the pipeline's
// perspective they are always "not in the zone files" (which is why the
// paper can apply its method to ccTLDs at all).
func (s *Service) InLatest(domain string) bool {
	domain = dnsname.Canonical(domain)
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap := s.latest[dnsname.TLD(domain)]
	return snap != nil && snap.Contains(domain)
}

// FirstSeen returns the Taken time of the first snapshot that contained
// domain, across the whole collection.
func (s *Service) FirstSeen(domain string) (time.Time, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.seen[dnsname.Canonical(domain)]
	return p.first, ok
}

// EverSeen reports whether domain appeared in any collected snapshot whose
// Taken time falls within [from, to]. This implements the paper's
// transient test: "domains that do not appear in our zone collection
// during the window ±3 days".
func (s *Service) EverSeen(domain string, from, to time.Time) bool {
	domain = dnsname.Canonical(domain)
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.seen[domain]
	if !ok {
		return false
	}
	// Presence is an interval [first, last]; it intersects [from, to]
	// unless it ends before or starts after.
	return !p.last.Before(from) && !p.first.After(to)
}
