package czds

import (
	"errors"
	"math/rand"
	"net/netip"
	"sync"
	"testing"
	"time"

	"darkdns/internal/registry"
	"darkdns/internal/simclock"
	"darkdns/internal/zoneset"
)

var t0 = time.Date(2023, 11, 1, 0, 0, 0, 0, time.UTC)

func snapAt(tld string, taken time.Time, domains ...string) *zoneset.Snapshot {
	s := zoneset.NewSnapshot(tld, 1, taken)
	for _, d := range domains {
		s.Add(d, []string{"ns1.example.net"})
	}
	return s
}

func TestIngestAndLatest(t *testing.T) {
	svc := New()
	svc.Ingest(snapAt("com", t0, "a.com"))
	svc.Ingest(snapAt("com", t0.Add(24*time.Hour), "a.com", "b.com"))

	latest, err := svc.Latest("com")
	if err != nil {
		t.Fatal(err)
	}
	if !latest.Contains("b.com") {
		t.Error("latest snapshot is stale")
	}
	if _, err := svc.Latest("net"); !errors.Is(err, ErrNoZone) {
		t.Errorf("want ErrNoZone, got %v", err)
	}
	if got := svc.TLDs(); len(got) != 1 || got[0] != "com" {
		t.Errorf("TLDs = %v", got)
	}
}

func TestDiffStatsAccumulate(t *testing.T) {
	svc := New()
	svc.Ingest(snapAt("com", t0, "a.com", "gone.com"))
	svc.Ingest(snapAt("com", t0.Add(24*time.Hour), "a.com", "b.com", "c.com"))
	st := svc.Stats("com")
	// First snapshot is a baseline, not a diff. Second adds b,c and
	// removes gone.
	if st.Added != 2 || st.Removed != 1 {
		t.Errorf("stats: %+v", st)
	}
	if got := svc.Stats("nosuch"); got.Added != 0 {
		t.Errorf("empty stats: %+v", got)
	}
}

func TestInLatest(t *testing.T) {
	svc := New()
	svc.Ingest(snapAt("com", t0, "present.com"))
	if !svc.InLatest("Present.COM") {
		t.Error("canonicalized lookup failed")
	}
	if svc.InLatest("absent.com") {
		t.Error("absent domain reported present")
	}
	if svc.InLatest("anything.nl") {
		t.Error("uncollected TLD must report false")
	}
}

func TestFirstSeen(t *testing.T) {
	svc := New()
	svc.Ingest(snapAt("com", t0, "a.com"))
	svc.Ingest(snapAt("com", t0.Add(24*time.Hour), "a.com", "b.com"))
	ft, ok := svc.FirstSeen("a.com")
	if !ok || !ft.Equal(t0) {
		t.Errorf("FirstSeen(a.com) = %v, %v", ft, ok)
	}
	ft, ok = svc.FirstSeen("b.com")
	if !ok || !ft.Equal(t0.Add(24*time.Hour)) {
		t.Errorf("FirstSeen(b.com) = %v, %v", ft, ok)
	}
	if _, ok := svc.FirstSeen("never.com"); ok {
		t.Error("never-seen domain has FirstSeen")
	}
}

func TestEverSeenWindow(t *testing.T) {
	svc := New()
	svc.Ingest(snapAt("com", t0, "early.com"))
	svc.Ingest(snapAt("com", t0.Add(48*time.Hour), "late.com"))

	if !svc.EverSeen("early.com", t0.Add(-time.Hour), t0.Add(time.Hour)) {
		t.Error("early.com should be seen in its window")
	}
	if svc.EverSeen("early.com", t0.Add(24*time.Hour), t0.Add(72*time.Hour)) {
		t.Error("early.com seen outside its snapshot window")
	}
	if !svc.EverSeen("late.com", t0, t0.Add(72*time.Hour)) {
		t.Error("late.com should be seen")
	}
	if svc.EverSeen("never.com", t0, t0.Add(72*time.Hour)) {
		t.Error("never.com should not be seen")
	}
}

func TestEverSeenIntervalSemantics(t *testing.T) {
	svc := New()
	// Present in snapshots on day 0 and day 5 → interval [0,5].
	svc.Ingest(snapAt("com", t0, "x.com"))
	for i := 1; i < 5; i++ {
		svc.Ingest(snapAt("com", t0.Add(time.Duration(i)*24*time.Hour), "x.com"))
	}
	if !svc.EverSeen("x.com", t0.Add(2*24*time.Hour), t0.Add(3*24*time.Hour)) {
		t.Error("interior of presence interval should report seen")
	}
}

func TestSubscribersNotified(t *testing.T) {
	svc := New()
	var got []string
	svc.Subscribe(func(s *zoneset.Snapshot) { got = append(got, s.TLD) })
	svc.Ingest(snapAt("com", t0))
	svc.Ingest(snapAt("xyz", t0))
	if len(got) != 2 || got[1] != "xyz" {
		t.Errorf("notifications: %v", got)
	}
}

// TestLockFreeReadsDuringIngest hammers the hot-path readers while daily
// collections swap the view underneath them; run with -race. Every
// ingested snapshot contains paired-a.com, so each reader's view of it
// is monotone: once observed present, no later generation may report it
// absent. (Two separate reads may legitimately straddle a swap, so no
// cross-domain assertion is made.)
func TestLockFreeReadsDuringIngest(t *testing.T) {
	svc := New()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			seen := false
			for {
				select {
				case <-stop:
					return
				default:
				}
				inA := svc.InLatest("paired-a.com")
				if seen && !inA {
					t.Error("presence regressed across generations")
					return
				}
				seen = seen || inA
				svc.EverSeen("paired-a.com", t0, t0.Add(90*24*time.Hour))
				svc.FirstSeen("paired-b.com")
				svc.Stats("com")
			}
		}()
	}
	for day := 0; day < 50; day++ {
		snap := snapAt("com", t0.Add(time.Duration(day)*24*time.Hour),
			"paired-a.com", "paired-b.com", "filler.com")
		svc.Ingest(snap)
	}
	close(stop)
	wg.Wait()
	if first, ok := svc.FirstSeen("paired-a.com"); !ok || !first.Equal(t0) {
		t.Errorf("FirstSeen = %v, %v", first, ok)
	}
}

func TestCollectFromRegistryRespectsCZDSMembership(t *testing.T) {
	clk := simclock.NewSim(t0)
	svc := New()

	com := registry.New(registry.DefaultConfig("com"), clk, rand.New(rand.NewSource(1)))
	defer com.Stop()
	nl := registry.New(registry.DefaultConfig("nl"), clk, rand.New(rand.NewSource(2)))
	defer nl.Stop()

	svc.Collect(com)
	svc.Collect(nl)

	com.Register("x.com", "R", []string{"ns1.a.net"}, netip.Addr{})
	clk.Advance(25 * time.Hour)

	if _, err := svc.Latest("com"); err != nil {
		t.Errorf("com snapshot missing: %v", err)
	}
	if _, err := svc.Latest("nl"); !errors.Is(err, ErrNoZone) {
		t.Errorf("nl must not be collected: %v", err)
	}
}
