// Package ca simulates certificate authorities issuing Domain-Validated
// certificates and logging precertificates to CT.
//
// The behaviour DarkDNS depends on (§3 and §4.2 of the paper):
//
//   - A CA validates domain control (here: the domain resolves in its TLD
//     zone) before issuing, then logs a precertificate.
//   - Per CA/Browser Forum BR §4.2.1, a CA may reuse cached validation
//     evidence for up to 398 days. A renewal request within that window is
//     issued WITHOUT re-validating — which is how certificates appear for
//     domains that no longer exist (cause iii of RDAP failures).
//   - Issuance lags domain activation: the domain must be resolvable
//     before validation succeeds, so cert-based detection time inherits
//     the TLD zone-update cadence (Figure 1).
package ca

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"darkdns/internal/ct"
	"darkdns/internal/dnsname"
	"darkdns/internal/simclock"
)

// DVReuseWindow is the CA/Browser Forum baseline maximum age of cached
// domain-validation evidence.
const DVReuseWindow = 398 * 24 * time.Hour

// Resolver is the CA's view of the DNS: whether a name currently resolves
// (i.e. its registered domain is delegated in the TLD zone).
type Resolver interface {
	Resolves(name string) bool
}

// ResolverFunc adapts a function to Resolver.
type ResolverFunc func(name string) bool

// Resolves implements Resolver.
func (f ResolverFunc) Resolves(name string) bool { return f(name) }

// Errors returned by Issue.
var (
	ErrValidationFailed = errors.New("ca: domain validation failed")
)

// Config parameterizes a CA.
type Config struct {
	Name string
	// ValidationDelay samples the time between an issuance request and
	// the precertificate hitting the CT log (ACME round trips, queueing).
	ValidationDelay func(rng *rand.Rand) time.Duration
}

// DefaultValidationDelay mimics observed ACME latencies: most issuances
// land within a few seconds to a couple of minutes.
func DefaultValidationDelay(rng *rand.Rand) time.Duration {
	// Log-normal-ish: 5 s base + exponential tail, capped at 10 min.
	d := 5*time.Second + time.Duration(rng.ExpFloat64()*float64(30*time.Second))
	if d > 10*time.Minute {
		d = 10 * time.Minute
	}
	return d
}

// CA is a simulated certificate authority.
type CA struct {
	cfg  Config
	clk  simclock.Clock
	rng  *rand.Rand
	res  Resolver
	logs []*ct.Log

	mu     sync.Mutex
	tokens map[string]time.Time // registered domain → validation time
	issued int64
	reused int64
}

// New creates a CA that validates against res and logs to logs.
func New(cfg Config, clk simclock.Clock, rng *rand.Rand, res Resolver, logs ...*ct.Log) *CA {
	if cfg.ValidationDelay == nil {
		cfg.ValidationDelay = DefaultValidationDelay
	}
	return &CA{cfg: cfg, clk: clk, rng: rng, res: res, logs: logs,
		tokens: make(map[string]time.Time)}
}

// Name returns the CA's display name (the CT entry issuer).
func (c *CA) Name() string { return c.cfg.Name }

// Stats returns cumulative issuance counts: total issued and how many
// were issued off a cached DV token without fresh validation.
func (c *CA) Stats() (issued, reusedToken int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.issued, c.reused
}

// Issue requests a certificate for cn (plus optional extra SANs), keyed on
// the registered domain regDomain for DV-token caching. The precertificate
// is logged after the CA's validation delay. The done callback, if
// non-nil, fires with the logged entry or a validation error.
func (c *CA) Issue(regDomain, cn string, sans []string, done func(ct.Entry, error)) {
	regDomain = dnsname.Canonical(regDomain)
	cn = dnsname.Canonical(cn)
	delay := c.cfg.ValidationDelay(c.rng)
	c.clk.After(delay, func() {
		now := c.clk.Now()
		ok, fresh := c.validate(regDomain, now)
		if !ok {
			if done != nil {
				done(ct.Entry{}, ErrValidationFailed)
			}
			return
		}
		c.mu.Lock()
		c.issued++
		if !fresh {
			c.reused++
		}
		c.mu.Unlock()
		entry := c.logPrecert(now, cn, sans)
		if done != nil {
			done(entry, nil)
		}
	})
}

// validate checks domain control, consulting the DV-token cache first.
// fresh is true when live validation was performed.
func (c *CA) validate(regDomain string, now time.Time) (ok, fresh bool) {
	c.mu.Lock()
	tok, has := c.tokens[regDomain]
	c.mu.Unlock()
	if has && now.Sub(tok) <= DVReuseWindow {
		return true, false // cached evidence, no live check
	}
	if !c.res.Resolves(regDomain) {
		return false, true
	}
	c.mu.Lock()
	c.tokens[regDomain] = now
	c.mu.Unlock()
	return true, true
}

// HasToken reports whether the CA holds unexpired validation evidence for
// regDomain at time now.
func (c *CA) HasToken(regDomain string, now time.Time) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	tok, has := c.tokens[dnsname.Canonical(regDomain)]
	return has && now.Sub(tok) <= DVReuseWindow
}

// SeedToken plants validation evidence obtained at when — used by the
// world simulator to model domains that existed (and were validated) in
// the past, before the simulation window (the ≈97 % DZDB-confirmed
// population in §4.2).
func (c *CA) SeedToken(regDomain string, when time.Time) {
	c.mu.Lock()
	c.tokens[dnsname.Canonical(regDomain)] = when
	c.mu.Unlock()
}

// logPrecert appends the precertificate to every configured CT log and
// returns the entry from the first log.
func (c *CA) logPrecert(now time.Time, cn string, sans []string) ct.Entry {
	var first ct.Entry
	for i, l := range c.logs {
		e := l.Append(now, ct.PreCertificate, c.cfg.Name, cn, sans, now)
		if i == 0 {
			first = e
		}
	}
	return first
}
