package ca

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"darkdns/internal/ct"
	"darkdns/internal/simclock"
)

var t0 = time.Date(2023, 11, 1, 0, 0, 0, 0, time.UTC)

type fakeZone map[string]bool

func (z fakeZone) Resolves(name string) bool { return z[name] }

func fixedDelay(d time.Duration) func(*rand.Rand) time.Duration {
	return func(*rand.Rand) time.Duration { return d }
}

func newCA(zone fakeZone, delay time.Duration) (*CA, *simclock.Sim, *ct.Log) {
	clk := simclock.NewSim(t0)
	log := ct.NewLog("test", nil)
	c := New(Config{Name: "TestCA", ValidationDelay: fixedDelay(delay)}, clk,
		rand.New(rand.NewSource(1)), zone, log)
	return c, clk, log
}

func TestIssueValidatesAndLogs(t *testing.T) {
	zone := fakeZone{"example.com": true}
	c, clk, log := newCA(zone, 10*time.Second)
	var got ct.Entry
	var gotErr error
	c.Issue("example.com", "example.com", []string{"www.example.com"}, func(e ct.Entry, err error) {
		got, gotErr = e, err
	})
	if log.Size() != 0 {
		t.Fatal("logged before validation delay")
	}
	clk.Advance(10 * time.Second)
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if log.Size() != 1 {
		t.Fatalf("log size = %d", log.Size())
	}
	if got.Kind != ct.PreCertificate || got.Issuer != "TestCA" || got.CN != "example.com" {
		t.Errorf("entry: %+v", got)
	}
	if !got.Logged.Equal(t0.Add(10 * time.Second)) {
		t.Errorf("Logged = %v", got.Logged)
	}
}

func TestIssueFailsForUnresolvableDomain(t *testing.T) {
	c, clk, log := newCA(fakeZone{}, time.Second)
	var gotErr error
	c.Issue("ghost.com", "ghost.com", nil, func(_ ct.Entry, err error) { gotErr = err })
	clk.Advance(time.Second)
	if !errors.Is(gotErr, ErrValidationFailed) {
		t.Errorf("want ErrValidationFailed, got %v", gotErr)
	}
	if log.Size() != 0 {
		t.Error("failed validation must not log")
	}
}

func TestDVTokenReuseIssuesForDeadDomain(t *testing.T) {
	// The §4.2 cause-iii behaviour: a domain validated in the past can
	// get a certificate after deletion, within the 398-day window.
	zone := fakeZone{"dead.com": true}
	c, clk, log := newCA(zone, time.Second)
	c.Issue("dead.com", "dead.com", nil, nil)
	clk.Advance(time.Second)
	if log.Size() != 1 {
		t.Fatal("setup issuance failed")
	}
	delete(zone, "dead.com") // domain removed from zone
	var gotErr error
	c.Issue("dead.com", "dead.com", nil, func(_ ct.Entry, err error) { gotErr = err })
	clk.Advance(time.Second)
	if gotErr != nil {
		t.Fatalf("reissue with cached token failed: %v", gotErr)
	}
	if log.Size() != 2 {
		t.Error("reissue not logged")
	}
	issued, reused := c.Stats()
	if issued != 2 || reused != 1 {
		t.Errorf("stats: issued=%d reused=%d", issued, reused)
	}
}

func TestDVTokenExpiresAfter398Days(t *testing.T) {
	zone := fakeZone{"old.com": true}
	c, clk, _ := newCA(zone, time.Second)
	c.Issue("old.com", "old.com", nil, nil)
	clk.Advance(time.Second)
	delete(zone, "old.com")
	clk.Advance(DVReuseWindow + time.Hour)
	var gotErr error
	c.Issue("old.com", "old.com", nil, func(_ ct.Entry, err error) { gotErr = err })
	clk.Advance(time.Second)
	if !errors.Is(gotErr, ErrValidationFailed) {
		t.Errorf("expired token should force re-validation: %v", gotErr)
	}
}

func TestSeedTokenModelsHistoricalValidation(t *testing.T) {
	c, clk, log := newCA(fakeZone{}, time.Second)
	c.SeedToken("historic.com", t0.Add(-100*24*time.Hour))
	if !c.HasToken("historic.com", t0) {
		t.Fatal("seeded token missing")
	}
	var gotErr error
	c.Issue("historic.com", "historic.com", nil, func(_ ct.Entry, err error) { gotErr = err })
	clk.Advance(time.Second)
	if gotErr != nil || log.Size() != 1 {
		t.Errorf("historic issuance: %v, log=%d", gotErr, log.Size())
	}
	// A token seeded beyond the window must not validate.
	c.SeedToken("ancient.com", t0.Add(-500*24*time.Hour))
	if c.HasToken("ancient.com", t0) {
		t.Error("expired seed treated as valid")
	}
}

func TestFreshValidationRefreshesToken(t *testing.T) {
	zone := fakeZone{"x.com": true}
	c, clk, _ := newCA(zone, time.Second)
	c.Issue("x.com", "x.com", nil, nil)
	clk.Advance(time.Second)
	first := clk.Now()
	// 200 days later, another issuance re-validates (token still fresh ⇒
	// actually reuses). Then at 397 days from the *first* validation the
	// token is still valid.
	clk.Advance(200 * 24 * time.Hour)
	c.Issue("x.com", "x.com", nil, nil)
	clk.Advance(time.Second)
	_, reused := c.Stats()
	if reused != 1 {
		t.Errorf("second issuance should reuse, reused=%d", reused)
	}
	if !c.HasToken("x.com", first.Add(397*24*time.Hour)) {
		t.Error("token should still be valid at +397d from validation")
	}
}

func TestMultipleLogsAllReceive(t *testing.T) {
	clk := simclock.NewSim(t0)
	l1, l2 := ct.NewLog("a", nil), ct.NewLog("b", nil)
	c := New(Config{Name: "CA", ValidationDelay: fixedDelay(0)}, clk,
		rand.New(rand.NewSource(1)), fakeZone{"x.com": true}, l1, l2)
	c.Issue("x.com", "x.com", nil, nil)
	clk.Advance(0)
	if l1.Size() != 1 || l2.Size() != 1 {
		t.Errorf("log sizes: %d, %d", l1.Size(), l2.Size())
	}
}

func TestDefaultValidationDelayBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10_000; i++ {
		d := DefaultValidationDelay(rng)
		if d < 5*time.Second || d > 10*time.Minute {
			t.Fatalf("delay %v out of bounds", d)
		}
	}
}
