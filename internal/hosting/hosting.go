// Package hosting catalogs DNS- and web-hosting providers with the market
// shares the DarkDNS evaluation observed for transient domains (Tables 4
// and 5), and provides weighted deterministic sampling for the world
// simulator.
package hosting

import (
	"math/rand"
	"net/netip"
)

// Provider is a combined DNS/web hosting operator.
type Provider struct {
	Name     string
	NSSuffix string       // SLD of authoritative nameservers, e.g. "cloudflare.com"
	ASN      uint32       // origin AS of web hosting addresses
	V4       netip.Prefix // address pool for A records
}

// Catalog of providers seen in the paper's Tables 4 and 5 plus a long tail.
// The V4 prefixes match internal/asdb.Default so measured A records resolve
// back to the right ASN.
var catalog = []Provider{
	{Name: "Cloudflare", NSSuffix: "cloudflare.com", ASN: 13335, V4: netip.MustParsePrefix("104.16.0.0/13")},
	{Name: "Hostinger", NSSuffix: "dns-parking.com", ASN: 47583, V4: netip.MustParsePrefix("145.14.144.0/20")},
	{Name: "NS1", NSSuffix: "nsone.net", ASN: 16509, V4: netip.MustParsePrefix("52.0.0.0/11")},
	{Name: "Squarespace", NSSuffix: "squarespacedns.com", ASN: 53831, V4: netip.MustParsePrefix("198.185.159.0/24")},
	{Name: "GoDaddy", NSSuffix: "domaincontrol.com", ASN: 26496, V4: netip.MustParsePrefix("166.62.0.0/16")},
	{Name: "Namecheap", NSSuffix: "registrar-servers.com", ASN: 22612, V4: netip.MustParsePrefix("162.255.116.0/22")},
	{Name: "Amazon", NSSuffix: "awsdns.org", ASN: 16509, V4: netip.MustParsePrefix("54.144.0.0/12")},
	{Name: "Google", NSSuffix: "googledomains.com", ASN: 15169, V4: netip.MustParsePrefix("74.125.0.0/16")},
	{Name: "Automattic", NSSuffix: "wordpress.com", ASN: 2635, V4: netip.MustParsePrefix("192.0.78.0/23")},
	{Name: "Fastly", NSSuffix: "fastly.net", ASN: 54113, V4: netip.MustParsePrefix("185.199.108.0/22")},
}

// ByName returns the provider with the given name, or nil.
func ByName(name string) *Provider {
	for i := range catalog {
		if catalog[i].Name == name {
			return &catalog[i]
		}
	}
	return nil
}

// All returns the full catalog (callers must not mutate).
func All() []Provider { return catalog }

// weighted is a cumulative-weight sampler over provider indices.
type weighted struct {
	cum  []float64
	idxs []int
}

func newWeighted(shares map[string]float64) weighted {
	var w weighted
	total := 0.0
	for i := range catalog {
		s, ok := shares[catalog[i].Name]
		if !ok {
			continue
		}
		total += s
		w.cum = append(w.cum, total)
		w.idxs = append(w.idxs, i)
	}
	// Normalize so the last cum is 1.0.
	for i := range w.cum {
		w.cum[i] /= total
	}
	return w
}

func (w weighted) pick(rng *rand.Rand) *Provider {
	x := rng.Float64()
	for i, c := range w.cum {
		if x <= c {
			return &catalog[w.idxs[i]]
		}
	}
	return &catalog[w.idxs[len(w.idxs)-1]]
}

// Paper Table 4 (DNS hosting of transient domains) and Table 5 (web
// hosting). "Others" probability is spread over the tail providers.
var (
	transientDNSShares = map[string]float64{
		"Cloudflare":  0.495,
		"Hostinger":   0.087,
		"NS1":         0.069,
		"Squarespace": 0.069,
		"GoDaddy":     0.055,
		// Others 22.5 %:
		"Namecheap": 0.075, "Amazon": 0.06, "Google": 0.04, "Automattic": 0.03, "Fastly": 0.02,
	}
	transientWebShares = map[string]float64{
		"Cloudflare":  0.362,
		"Hostinger":   0.140,
		"Amazon":      0.076,
		"Squarespace": 0.053,
		"Namecheap":   0.039,
		// Others 33.1 %:
		"GoDaddy": 0.11, "NS1": 0.08, "Google": 0.07, "Automattic": 0.04, "Fastly": 0.03,
	}
	// Long-lived (non-transient) registrations skew less towards
	// Cloudflare/parking; shares loosely follow overall market structure.
	normalDNSShares = map[string]float64{
		"Cloudflare": 0.30, "GoDaddy": 0.16, "Namecheap": 0.10, "Google": 0.08,
		"Amazon": 0.10, "Squarespace": 0.07, "Hostinger": 0.06, "NS1": 0.05,
		"Automattic": 0.05, "Fastly": 0.03,
	}
	normalWebShares = map[string]float64{
		"Cloudflare": 0.22, "Amazon": 0.18, "GoDaddy": 0.14, "Google": 0.10,
		"Hostinger": 0.08, "Squarespace": 0.08, "Namecheap": 0.07,
		"Automattic": 0.06, "NS1": 0.04, "Fastly": 0.03,
	}

	transientDNSPicker = newWeighted(transientDNSShares)
	transientWebPicker = newWeighted(transientWebShares)
	normalDNSPicker    = newWeighted(normalDNSShares)
	normalWebPicker    = newWeighted(normalWebShares)
)

// PickDNS samples a DNS-hosting provider. transient selects the Table 4
// distribution, otherwise the long-lived-domain distribution.
func PickDNS(rng *rand.Rand, transient bool) *Provider {
	if transient {
		return transientDNSPicker.pick(rng)
	}
	return normalDNSPicker.pick(rng)
}

// PickWeb samples a web-hosting provider per Table 5 (transient) or the
// long-lived distribution.
func PickWeb(rng *rand.Rand, transient bool) *Provider {
	if transient {
		return transientWebPicker.pick(rng)
	}
	return normalWebPicker.pick(rng)
}

// NSNames returns the pair of authoritative nameserver hostnames a
// customer of p delegates to, varied by shard to emulate provider fleets
// (e.g. alice.ns.cloudflare.com / bob.ns.cloudflare.com).
func (p *Provider) NSNames(shard int) []string {
	a := byte('a' + shard%13)
	return []string{
		"ns1-" + string(a) + "." + p.NSSuffix,
		"ns2-" + string(a) + "." + p.NSSuffix,
	}
}

// WebAddr deterministically derives a customer web address inside p's pool.
func (p *Provider) WebAddr(seed uint64) netip.Addr {
	base := p.V4.Addr().As4()
	hostBits := 32 - p.V4.Bits()
	if hostBits > 16 {
		hostBits = 16 // stay inside small pools
	}
	off := uint32(seed) % (1<<uint(hostBits) - 2)
	off++ // avoid the network address
	v := uint32(base[0])<<24 | uint32(base[1])<<16 | uint32(base[2])<<8 | uint32(base[3])
	v += off
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}
