package hosting

import (
	"math"
	"math/rand"
	"testing"

	"darkdns/internal/asdb"
)

func TestByName(t *testing.T) {
	p := ByName("Cloudflare")
	if p == nil || p.NSSuffix != "cloudflare.com" || p.ASN != 13335 {
		t.Fatalf("Cloudflare: %+v", p)
	}
	if ByName("Nonexistent") != nil {
		t.Error("unknown provider should be nil")
	}
}

func TestPickDNSTransientSharesConverge(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 200_000
	counts := make(map[string]int)
	for i := 0; i < n; i++ {
		counts[PickDNS(rng, true).Name]++
	}
	// Paper Table 4: Cloudflare 49.5 %, Hostinger 8.7 %.
	cf := float64(counts["Cloudflare"]) / n
	if math.Abs(cf-0.495) > 0.01 {
		t.Errorf("Cloudflare share = %.3f, want ≈0.495", cf)
	}
	hs := float64(counts["Hostinger"]) / n
	if math.Abs(hs-0.087) > 0.01 {
		t.Errorf("Hostinger share = %.3f, want ≈0.087", hs)
	}
}

func TestPickWebTransientSharesConverge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 200_000
	counts := make(map[string]int)
	for i := 0; i < n; i++ {
		counts[PickWeb(rng, true).Name]++
	}
	// Paper Table 5: Cloudflare 36.2 %, Hostinger 14.0 %, Amazon 7.6 %.
	for name, want := range map[string]float64{"Cloudflare": 0.362, "Hostinger": 0.140, "Amazon": 0.076} {
		got := float64(counts[name]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("%s share = %.3f, want ≈%.3f", name, got, want)
		}
	}
}

func TestNormalSharesDifferFromTransient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 100_000
	tCount, nCount := 0, 0
	for i := 0; i < n; i++ {
		if PickDNS(rng, true).Name == "Cloudflare" {
			tCount++
		}
		if PickDNS(rng, false).Name == "Cloudflare" {
			nCount++
		}
	}
	if tCount <= nCount {
		t.Errorf("transient Cloudflare share (%d) should exceed normal (%d)", tCount, nCount)
	}
}

func TestNSNamesVaryByShard(t *testing.T) {
	p := ByName("Cloudflare")
	ns0 := p.NSNames(0)
	ns1 := p.NSNames(1)
	if len(ns0) != 2 || ns0[0] == ns1[0] {
		t.Errorf("NSNames: %v vs %v", ns0, ns1)
	}
	for _, ns := range ns0 {
		if want := "cloudflare.com"; len(ns) < len(want) || ns[len(ns)-len(want):] != want {
			t.Errorf("NS %q not under provider suffix", ns)
		}
	}
}

func TestWebAddrInsidePoolAndResolvesToASN(t *testing.T) {
	db := asdb.Default()
	for _, p := range All() {
		for seed := uint64(0); seed < 50; seed++ {
			addr := p.WebAddr(seed)
			if !p.V4.Contains(addr) {
				t.Fatalf("%s WebAddr(%d) = %v outside %v", p.Name, seed, addr, p.V4)
			}
		}
		as, err := db.Lookup(p.WebAddr(7))
		if err != nil {
			t.Errorf("%s: ASN lookup failed: %v", p.Name, err)
			continue
		}
		if as.Number != p.ASN {
			// NS1 shares Amazon's pool by construction; allow that alias.
			if p.Name == "NS1" && as.Number == 16509 {
				continue
			}
			t.Errorf("%s: addr resolves to %v, catalog says AS%d", p.Name, as, p.ASN)
		}
	}
}

func TestWebAddrDeterministic(t *testing.T) {
	p := ByName("Hostinger")
	if p.WebAddr(42) != p.WebAddr(42) {
		t.Error("WebAddr not deterministic")
	}
	if p.WebAddr(1) == p.WebAddr(2) {
		t.Error("distinct seeds should usually differ")
	}
}

func BenchmarkPickDNS(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < b.N; i++ {
		PickDNS(rng, true)
	}
}
