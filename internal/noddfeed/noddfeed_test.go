package noddfeed

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

var t0 = time.Date(2024, 5, 9, 0, 0, 0, 0, time.UTC)

func TestDetectionRateConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := New(DefaultConfig())
	const n = 50_000
	hits := 0
	for i := 0; i < n; i++ {
		if _, ok := f.ObserveRegistration(rng, dom(i), t0, 0); ok {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.44 || rate > 0.50 {
		t.Errorf("long-lived detect rate %.3f outside [0.44, 0.50]", rate)
	}
	if f.Len() != hits {
		t.Errorf("Len = %d, want %d", f.Len(), hits)
	}
}

func TestTransientsDetectedLess(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := New(DefaultConfig())
	const n = 50_000
	longLived, transients := 0, 0
	for i := 0; i < n; i++ {
		if _, ok := f.ObserveRegistration(rng, dom(i), t0, 0); ok {
			longLived++
		}
		if _, ok := f.ObserveRegistration(rng, dom(i+n), t0, 3*time.Hour); ok {
			transients++
		}
	}
	if transients >= longLived {
		t.Errorf("transients (%d) should be detected less than long-lived (%d)", transients, longLived)
	}
}

func TestDeathBeforeDetectionDrops(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := DefaultConfig()
	cfg.DelayMean = 10 * time.Hour // long sensor lag
	f := New(cfg)
	const n = 20_000
	hits := 0
	for i := 0; i < n; i++ {
		if _, ok := f.ObserveRegistration(rng, dom(i), t0, 30*time.Minute); ok {
			hits++
		}
	}
	// With a 10 h mean delay, a 30-minute life should almost always
	// escape detection.
	if rate := float64(hits) / n; rate > 0.05 {
		t.Errorf("detected %.3f of instantly-dying domains", rate)
	}
}

func TestDetectedAtAndBetween(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := Config{DetectRate: 1.0, TransientDetectRate: 1.0, DelayMean: time.Minute}
	f := New(cfg)
	at, ok := f.ObserveRegistration(rng, "X.COM", t0, 0)
	if !ok {
		t.Fatal("certain detection missed")
	}
	got, ok := f.DetectedAt("x.com")
	if !ok || !got.Equal(at) {
		t.Errorf("DetectedAt: %v, %v", got, ok)
	}
	day := f.DetectedBetween(t0, t0.Add(24*time.Hour))
	if len(day) != 1 || day[0] != "x.com" {
		t.Errorf("DetectedBetween: %v", day)
	}
	if out := f.DetectedBetween(t0.Add(24*time.Hour), t0.Add(48*time.Hour)); len(out) != 0 {
		t.Errorf("next-day window should be empty: %v", out)
	}
}

func TestEarliestDetectionWins(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := New(Config{DetectRate: 1, TransientDetectRate: 1, DelayMean: time.Nanosecond})
	f.ObserveRegistration(rng, "x.com", t0.Add(time.Hour), 0)
	f.ObserveRegistration(rng, "x.com", t0, 0)
	at, _ := f.DetectedAt("x.com")
	if !at.Before(t0.Add(time.Hour)) {
		t.Errorf("later observation overwrote earlier: %v", at)
	}
}

func dom(i int) string {
	b := []byte("nnnnnn.shop")
	for p := 0; p < 6; p++ {
		b[p] = byte('a' + i%26)
		i /= 26
	}
	return string(b)
}

// TestSampleSeedMatchesObserve: Config.Sample + Feed.Seed (the world
// builder's compile/commit split) must be equivalent to ObserveWithRate
// for the same RNG stream.
func TestSampleSeedMatchesObserve(t *testing.T) {
	cfg := DefaultConfig()
	created := time.Date(2023, 11, 3, 0, 0, 0, 0, time.UTC)

	direct := New(cfg)
	rng := rand.New(rand.NewSource(5))
	var want []string
	for i := 0; i < 2000; i++ {
		name := dom(i)
		if at, ok := direct.ObserveWithRate(rng, name, created, time.Duration(i)*time.Minute, 0.4); ok {
			want = append(want, name+"|"+at.Format(time.RFC3339Nano))
		}
	}

	split := New(cfg)
	rng = rand.New(rand.NewSource(5))
	var got []string
	for i := 0; i < 2000; i++ {
		name := dom(i)
		if at, ok := cfg.Sample(rng, created, time.Duration(i)*time.Minute, 0.4); ok {
			split.Seed(name, at)
			got = append(got, name+"|"+at.Format(time.RFC3339Nano))
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("Sample+Seed diverges from ObserveWithRate")
	}
	if split.Len() != direct.Len() {
		t.Fatalf("feed sizes diverge: %d vs %d", split.Len(), direct.Len())
	}
}

// TestSeedKeepsEarliest: seeding the same domain twice keeps the
// earlier sighting, like ObserveWithRate does.
func TestSeedKeepsEarliest(t *testing.T) {
	f := New(DefaultConfig())
	t1 := time.Date(2023, 11, 3, 12, 0, 0, 0, time.UTC)
	f.Seed("dup.shop", t1)
	f.Seed("dup.shop", t1.Add(time.Hour))
	f.Seed("DUP.shop", t1.Add(-time.Hour)) // canonicalized, earlier
	at, ok := f.DetectedAt("dup.shop")
	if !ok || !at.Equal(t1.Add(-time.Hour)) {
		t.Fatalf("DetectedAt = %v, %v; want earliest seed", at, ok)
	}
}
