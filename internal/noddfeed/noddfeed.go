// Package noddfeed simulates a commercial passive-DNS Newly Observed
// Domain feed in the style of DomainTools' SIE NOD (§4.4). Its vantage is
// query traffic rather than certificate issuance, so its coverage of newly
// registered domains overlaps with — but is distinct from — the CT-based
// DarkDNS feed: the paper measures ≈60 % overlap on NRDs and only ≈33 % on
// transient domains.
package noddfeed

import (
	"math/rand"
	"sort"
	"sync"
	"time"

	"darkdns/internal/dnsname"
)

// Detection is one feed entry.
type Detection struct {
	Domain string
	At     time.Time
}

// Config models the feed's coverage.
type Config struct {
	// DetectRate is the probability a newly registered domain is ever
	// queried through the feed's sensors (and thus detected).
	DetectRate float64
	// TransientDetectRate applies to short-lived domains, which generate
	// less traffic before deletion.
	TransientDetectRate float64
	// DelayMean is the exponential mean of detection lag after
	// registration.
	DelayMean time.Duration
}

// DefaultConfig calibrates the feed so it sees ≈5 % more NRDs than the
// CT-based method with ≈60 % overlap (§4.4).
func DefaultConfig() Config {
	return Config{DetectRate: 0.47, TransientDetectRate: 0.40, DelayMean: 90 * time.Minute}
}

// Sample rolls the detection model for a registration at created that
// will live for lifetime (0 = long-lived), without recording anything:
// it returns the instant the feed would first see the domain. Pure given
// rng — the world builder's compile phase draws detections through it
// before any shared feed state is touched; Feed.Seed is the commit half.
func (cfg Config) Sample(rng *rand.Rand, created time.Time, lifetime time.Duration, rate float64) (time.Time, bool) {
	if rng.Float64() >= rate {
		return time.Time{}, false
	}
	delay := time.Duration(rng.ExpFloat64() * float64(cfg.DelayMean))
	if lifetime > 0 && delay >= lifetime {
		// The domain died before its traffic reached a sensor.
		return time.Time{}, false
	}
	return created.Add(delay), true
}

// Feed is a passive-DNS NOD feed simulator.
type Feed struct {
	cfg Config

	mu       sync.Mutex
	detected map[string]time.Time
}

// New creates a feed.
func New(cfg Config) *Feed {
	return &Feed{cfg: cfg, detected: make(map[string]time.Time)}
}

// Config returns the feed's coverage model.
func (f *Feed) Config() Config { return f.cfg }

// Seed records a detection directly, keeping the earliest sighting when a
// domain is observed more than once — the commit half of Config.Sample.
func (f *Feed) Seed(domain string, at time.Time) {
	domain = dnsname.Canonical(domain)
	f.mu.Lock()
	if prev, ok := f.detected[domain]; !ok || at.Before(prev) {
		f.detected[domain] = at
	}
	f.mu.Unlock()
}

// ObserveRegistration rolls the detection model for a registration at
// created that will live for lifetime (0 = long-lived). Detected domains
// enter the feed after the sampled delay — but only if the domain is
// still alive when the first query would have been seen.
func (f *Feed) ObserveRegistration(rng *rand.Rand, domain string, created time.Time, lifetime time.Duration) (time.Time, bool) {
	rate := f.cfg.DetectRate
	if lifetime > 0 && lifetime < 24*time.Hour {
		rate = f.cfg.TransientDetectRate
	}
	return f.ObserveWithRate(rng, domain, created, lifetime, rate)
}

// ObserveWithRate is ObserveRegistration with a caller-supplied detection
// probability. The world simulator uses it to correlate passive-DNS
// visibility with certificate issuance: domains that obtain certificates
// are more likely to attract query traffic, which is what produces the
// ≈60 % (rather than independent ≈27 %) feed overlap of §4.4.
func (f *Feed) ObserveWithRate(rng *rand.Rand, domain string, created time.Time, lifetime time.Duration, rate float64) (time.Time, bool) {
	at, ok := f.cfg.Sample(rng, created, lifetime, rate)
	if !ok {
		return time.Time{}, false
	}
	f.Seed(domain, at)
	return at, true
}

// DetectedAt returns when domain entered the feed.
func (f *Feed) DetectedAt(domain string) (time.Time, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	t, ok := f.detected[dnsname.Canonical(domain)]
	return t, ok
}

// DetectedBetween returns domains first observed in [from, to), sorted.
func (f *Feed) DetectedBetween(from, to time.Time) []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []string
	for d, at := range f.detected {
		if !at.Before(from) && at.Before(to) {
			out = append(out, d)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the total number of detections.
func (f *Feed) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.detected)
}
