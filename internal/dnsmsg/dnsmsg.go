// Package dnsmsg implements the DNS wire protocol (RFC 1035) subset needed
// by the DarkDNS measurement infrastructure: message header, questions, and
// resource records of type A, AAAA, NS, SOA, CNAME, TXT and MX, plus the
// EDNS0 OPT pseudo-record (RFC 6891). Encoding applies name compression;
// decoding accepts compressed names anywhere a name may appear.
package dnsmsg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"strings"

	"darkdns/internal/dnsname"
)

// Type is a DNS RR type code.
type Type uint16

// Record types used by the reproduction.
const (
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	TypeOPT   Type = 41
	TypeANY   Type = 255
)

// String returns the conventional mnemonic.
func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypeSOA:
		return "SOA"
	case TypeMX:
		return "MX"
	case TypeTXT:
		return "TXT"
	case TypeAAAA:
		return "AAAA"
	case TypeOPT:
		return "OPT"
	case TypeANY:
		return "ANY"
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// ParseType maps a mnemonic to its code.
func ParseType(s string) (Type, error) {
	switch strings.ToUpper(s) {
	case "A":
		return TypeA, nil
	case "NS":
		return TypeNS, nil
	case "CNAME":
		return TypeCNAME, nil
	case "SOA":
		return TypeSOA, nil
	case "MX":
		return TypeMX, nil
	case "TXT":
		return TypeTXT, nil
	case "AAAA":
		return TypeAAAA, nil
	case "OPT":
		return TypeOPT, nil
	case "ANY":
		return TypeANY, nil
	}
	return 0, fmt.Errorf("dnsmsg: unknown type %q", s)
}

// Class is a DNS class; only IN is used.
type Class uint16

// ClassIN is the Internet class.
const ClassIN Class = 1

// RCode is a response code.
type RCode uint8

// Response codes (RFC 1035 §4.1.1).
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5
)

// String returns the mnemonic.
func (r RCode) String() string {
	switch r {
	case RCodeNoError:
		return "NOERROR"
	case RCodeFormErr:
		return "FORMERR"
	case RCodeServFail:
		return "SERVFAIL"
	case RCodeNXDomain:
		return "NXDOMAIN"
	case RCodeNotImp:
		return "NOTIMP"
	case RCodeRefused:
		return "REFUSED"
	}
	return fmt.Sprintf("RCODE%d", uint8(r))
}

// Errors returned by the codec.
var (
	ErrTruncatedMsg = errors.New("dnsmsg: truncated message")
	ErrBadRDLen     = errors.New("dnsmsg: rdata length mismatch")
	ErrTooBig       = errors.New("dnsmsg: message exceeds 64 KiB")
)

// Header is the fixed 12-byte message header.
type Header struct {
	ID                 uint16
	Response           bool
	OpCode             uint8
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	RCode              RCode
}

// Question is a query tuple.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// SOAData is the RDATA of an SOA record.
type SOAData struct {
	MName   string // primary nameserver
	RName   string // responsible mailbox
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

// MXData is the RDATA of an MX record.
type MXData struct {
	Preference uint16
	Exchange   string
}

// Record is a resource record with decoded RDATA. Exactly one of the typed
// fields is meaningful, selected by Type; Raw preserves unknown RDATA.
type Record struct {
	Name  string
	Type  Type
	Class Class
	TTL   uint32

	A     netip.Addr // TypeA
	AAAA  netip.Addr // TypeAAAA
	NS    string     // TypeNS: nameserver target
	CNAME string     // TypeCNAME
	SOA   SOAData    // TypeSOA
	MX    MXData     // TypeMX
	TXT   []string   // TypeTXT: character strings
	Raw   []byte     // any other type
}

// Target returns the RDATA domain name of name-valued records ("" otherwise).
func (r *Record) Target() string {
	switch r.Type {
	case TypeNS:
		return r.NS
	case TypeCNAME:
		return r.CNAME
	case TypeSOA:
		return r.SOA.MName
	case TypeMX:
		return r.MX.Exchange
	}
	return ""
}

// String renders the record in zone-file presentation form.
func (r *Record) String() string {
	rd := ""
	switch r.Type {
	case TypeA:
		rd = r.A.String()
	case TypeAAAA:
		rd = r.AAAA.String()
	case TypeNS:
		rd = r.NS + "."
	case TypeCNAME:
		rd = r.CNAME + "."
	case TypeSOA:
		rd = fmt.Sprintf("%s. %s. %d %d %d %d %d", r.SOA.MName, r.SOA.RName,
			r.SOA.Serial, r.SOA.Refresh, r.SOA.Retry, r.SOA.Expire, r.SOA.Minimum)
	case TypeMX:
		rd = fmt.Sprintf("%d %s.", r.MX.Preference, r.MX.Exchange)
	case TypeTXT:
		parts := make([]string, len(r.TXT))
		for i, s := range r.TXT {
			parts[i] = fmt.Sprintf("%q", s)
		}
		rd = strings.Join(parts, " ")
	default:
		rd = fmt.Sprintf("\\# %d %x", len(r.Raw), r.Raw)
	}
	return fmt.Sprintf("%s.\t%d\tIN\t%s\t%s", r.Name, r.TTL, r.Type, rd)
}

// Message is a complete DNS message.
type Message struct {
	Header     Header
	Questions  []Question
	Answers    []Record
	Authority  []Record
	Additional []Record
}

// NewQuery builds a standard recursion-desired query for (name, t).
func NewQuery(id uint16, name string, t Type) *Message {
	return &Message{
		Header:    Header{ID: id, RecursionDesired: true},
		Questions: []Question{{Name: dnsname.Canonical(name), Type: t, Class: ClassIN}},
	}
}

// Reply builds a response skeleton mirroring the query's ID and question.
func (m *Message) Reply() *Message {
	r := &Message{Header: Header{
		ID:               m.Header.ID,
		Response:         true,
		OpCode:           m.Header.OpCode,
		RecursionDesired: m.Header.RecursionDesired,
	}}
	r.Questions = append(r.Questions, m.Questions...)
	return r
}

// Pack encodes the message with name compression.
func (m *Message) Pack() ([]byte, error) {
	buf := make([]byte, 12, 512)
	binary.BigEndian.PutUint16(buf[0:], m.Header.ID)
	var flags uint16
	if m.Header.Response {
		flags |= 1 << 15
	}
	flags |= uint16(m.Header.OpCode&0xF) << 11
	if m.Header.Authoritative {
		flags |= 1 << 10
	}
	if m.Header.Truncated {
		flags |= 1 << 9
	}
	if m.Header.RecursionDesired {
		flags |= 1 << 8
	}
	if m.Header.RecursionAvailable {
		flags |= 1 << 7
	}
	flags |= uint16(m.Header.RCode & 0xF)
	binary.BigEndian.PutUint16(buf[2:], flags)
	binary.BigEndian.PutUint16(buf[4:], uint16(len(m.Questions)))
	binary.BigEndian.PutUint16(buf[6:], uint16(len(m.Answers)))
	binary.BigEndian.PutUint16(buf[8:], uint16(len(m.Authority)))
	binary.BigEndian.PutUint16(buf[10:], uint16(len(m.Additional)))

	var c dnsname.Compressor
	var err error
	for _, q := range m.Questions {
		if buf, err = c.Append(buf, q.Name); err != nil {
			return nil, err
		}
		buf = be16(buf, uint16(q.Type))
		buf = be16(buf, uint16(q.Class))
	}
	for _, sec := range [][]Record{m.Answers, m.Authority, m.Additional} {
		for i := range sec {
			if buf, err = appendRecord(buf, &c, &sec[i]); err != nil {
				return nil, err
			}
		}
	}
	if len(buf) > 0xFFFF {
		return nil, ErrTooBig
	}
	return buf, nil
}

func be16(b []byte, v uint16) []byte { return append(b, byte(v>>8), byte(v)) }
func be32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendRecord(buf []byte, c *dnsname.Compressor, r *Record) ([]byte, error) {
	var err error
	if buf, err = c.Append(buf, r.Name); err != nil {
		return nil, err
	}
	buf = be16(buf, uint16(r.Type))
	buf = be16(buf, uint16(r.Class))
	buf = be32(buf, r.TTL)
	// Reserve rdlength; fill after writing rdata.
	lenAt := len(buf)
	buf = append(buf, 0, 0)
	start := len(buf)
	switch r.Type {
	case TypeA:
		if !r.A.Is4() {
			return nil, fmt.Errorf("dnsmsg: A record %q has non-IPv4 addr %v", r.Name, r.A)
		}
		a4 := r.A.As4()
		buf = append(buf, a4[:]...)
	case TypeAAAA:
		if !r.AAAA.Is6() || r.AAAA.Is4() {
			return nil, fmt.Errorf("dnsmsg: AAAA record %q has non-IPv6 addr %v", r.Name, r.AAAA)
		}
		a16 := r.AAAA.As16()
		buf = append(buf, a16[:]...)
	case TypeNS:
		if buf, err = c.Append(buf, r.NS); err != nil {
			return nil, err
		}
	case TypeCNAME:
		if buf, err = c.Append(buf, r.CNAME); err != nil {
			return nil, err
		}
	case TypeSOA:
		if buf, err = c.Append(buf, r.SOA.MName); err != nil {
			return nil, err
		}
		if buf, err = c.Append(buf, r.SOA.RName); err != nil {
			return nil, err
		}
		buf = be32(buf, r.SOA.Serial)
		buf = be32(buf, r.SOA.Refresh)
		buf = be32(buf, r.SOA.Retry)
		buf = be32(buf, r.SOA.Expire)
		buf = be32(buf, r.SOA.Minimum)
	case TypeMX:
		buf = be16(buf, r.MX.Preference)
		if buf, err = c.Append(buf, r.MX.Exchange); err != nil {
			return nil, err
		}
	case TypeTXT:
		for _, s := range r.TXT {
			if len(s) > 255 {
				return nil, fmt.Errorf("dnsmsg: TXT string exceeds 255 bytes")
			}
			buf = append(buf, byte(len(s)))
			buf = append(buf, s...)
		}
	default:
		buf = append(buf, r.Raw...)
	}
	rdlen := len(buf) - start
	if rdlen > 0xFFFF {
		return nil, ErrTooBig
	}
	binary.BigEndian.PutUint16(buf[lenAt:], uint16(rdlen))
	return buf, nil
}

// Unpack decodes a complete message.
func Unpack(b []byte) (*Message, error) {
	if len(b) < 12 {
		return nil, ErrTruncatedMsg
	}
	m := &Message{}
	m.Header.ID = binary.BigEndian.Uint16(b[0:])
	flags := binary.BigEndian.Uint16(b[2:])
	m.Header.Response = flags&(1<<15) != 0
	m.Header.OpCode = uint8(flags >> 11 & 0xF)
	m.Header.Authoritative = flags&(1<<10) != 0
	m.Header.Truncated = flags&(1<<9) != 0
	m.Header.RecursionDesired = flags&(1<<8) != 0
	m.Header.RecursionAvailable = flags&(1<<7) != 0
	m.Header.RCode = RCode(flags & 0xF)
	qd := int(binary.BigEndian.Uint16(b[4:]))
	an := int(binary.BigEndian.Uint16(b[6:]))
	ns := int(binary.BigEndian.Uint16(b[8:]))
	ar := int(binary.BigEndian.Uint16(b[10:]))

	off := 12
	var err error
	for i := 0; i < qd; i++ {
		var q Question
		if q.Name, off, err = dnsname.ReadWire(b, off); err != nil {
			return nil, err
		}
		if off+4 > len(b) {
			return nil, ErrTruncatedMsg
		}
		q.Type = Type(binary.BigEndian.Uint16(b[off:]))
		q.Class = Class(binary.BigEndian.Uint16(b[off+2:]))
		off += 4
		m.Questions = append(m.Questions, q)
	}
	for _, sec := range []*[]Record{&m.Answers, &m.Authority, &m.Additional} {
		n := an
		switch sec {
		case &m.Authority:
			n = ns
		case &m.Additional:
			n = ar
		}
		for i := 0; i < n; i++ {
			var r Record
			if r, off, err = readRecord(b, off); err != nil {
				return nil, err
			}
			*sec = append(*sec, r)
		}
	}
	return m, nil
}

func readRecord(b []byte, off int) (Record, int, error) {
	var r Record
	var err error
	if r.Name, off, err = dnsname.ReadWire(b, off); err != nil {
		return r, 0, err
	}
	if off+10 > len(b) {
		return r, 0, ErrTruncatedMsg
	}
	r.Type = Type(binary.BigEndian.Uint16(b[off:]))
	r.Class = Class(binary.BigEndian.Uint16(b[off+2:]))
	r.TTL = binary.BigEndian.Uint32(b[off+4:])
	rdlen := int(binary.BigEndian.Uint16(b[off+8:]))
	off += 10
	if off+rdlen > len(b) {
		return r, 0, ErrTruncatedMsg
	}
	end := off + rdlen
	switch r.Type {
	case TypeA:
		if rdlen != 4 {
			return r, 0, ErrBadRDLen
		}
		r.A = netip.AddrFrom4([4]byte(b[off:end]))
	case TypeAAAA:
		if rdlen != 16 {
			return r, 0, ErrBadRDLen
		}
		r.AAAA = netip.AddrFrom16([16]byte(b[off:end]))
	case TypeNS:
		if r.NS, _, err = dnsname.ReadWire(b, off); err != nil {
			return r, 0, err
		}
	case TypeCNAME:
		if r.CNAME, _, err = dnsname.ReadWire(b, off); err != nil {
			return r, 0, err
		}
	case TypeSOA:
		p := off
		if r.SOA.MName, p, err = dnsname.ReadWire(b, p); err != nil {
			return r, 0, err
		}
		if r.SOA.RName, p, err = dnsname.ReadWire(b, p); err != nil {
			return r, 0, err
		}
		if p+20 > len(b) || p+20 > end {
			return r, 0, ErrBadRDLen
		}
		r.SOA.Serial = binary.BigEndian.Uint32(b[p:])
		r.SOA.Refresh = binary.BigEndian.Uint32(b[p+4:])
		r.SOA.Retry = binary.BigEndian.Uint32(b[p+8:])
		r.SOA.Expire = binary.BigEndian.Uint32(b[p+12:])
		r.SOA.Minimum = binary.BigEndian.Uint32(b[p+16:])
	case TypeMX:
		if rdlen < 3 {
			return r, 0, ErrBadRDLen
		}
		r.MX.Preference = binary.BigEndian.Uint16(b[off:])
		if r.MX.Exchange, _, err = dnsname.ReadWire(b, off+2); err != nil {
			return r, 0, err
		}
	case TypeTXT:
		p := off
		for p < end {
			l := int(b[p])
			p++
			if p+l > end {
				return r, 0, ErrBadRDLen
			}
			r.TXT = append(r.TXT, string(b[p:p+l]))
			p += l
		}
	default:
		r.Raw = append([]byte(nil), b[off:end]...)
	}
	return r, end, nil
}
