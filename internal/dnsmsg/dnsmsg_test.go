package dnsmsg

import (
	"errors"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }

func sampleMessage() *Message {
	q := NewQuery(0x1234, "WWW.Example.COM", TypeA)
	r := q.Reply()
	r.Header.Authoritative = true
	r.Answers = []Record{
		{Name: "www.example.com", Type: TypeA, Class: ClassIN, TTL: 300, A: mustAddr("192.0.2.1")},
		{Name: "www.example.com", Type: TypeA, Class: ClassIN, TTL: 300, A: mustAddr("192.0.2.2")},
	}
	r.Authority = []Record{
		{Name: "example.com", Type: TypeNS, Class: ClassIN, TTL: 86400, NS: "ns1.cloudflare.com"},
		{Name: "example.com", Type: TypeNS, Class: ClassIN, TTL: 86400, NS: "ns2.cloudflare.com"},
	}
	r.Additional = []Record{
		{Name: "ns1.cloudflare.com", Type: TypeAAAA, Class: ClassIN, TTL: 60, AAAA: mustAddr("2001:db8::1")},
	}
	return r
}

func TestPackUnpackRoundTrip(t *testing.T) {
	m := sampleMessage()
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Header, m.Header) {
		t.Errorf("header: got %+v want %+v", got.Header, m.Header)
	}
	if len(got.Questions) != 1 || got.Questions[0].Name != "www.example.com" {
		t.Errorf("questions: %+v", got.Questions)
	}
	if !reflect.DeepEqual(got.Answers, m.Answers) {
		t.Errorf("answers: got %+v want %+v", got.Answers, m.Answers)
	}
	if !reflect.DeepEqual(got.Authority, m.Authority) {
		t.Errorf("authority: got %+v want %+v", got.Authority, m.Authority)
	}
	if !reflect.DeepEqual(got.Additional, m.Additional) {
		t.Errorf("additional: got %+v want %+v", got.Additional, m.Additional)
	}
}

func TestCompressionShrinksMessage(t *testing.T) {
	m := sampleMessage()
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	// Rough bound: repeated example.com/cloudflare.com suffixes must share
	// bytes. An uncompressed encoding would exceed 190 bytes.
	if len(wire) >= 190 {
		t.Errorf("message is %d bytes; compression appears ineffective", len(wire))
	}
}

func TestSOARoundTrip(t *testing.T) {
	m := &Message{
		Header: Header{ID: 9, Response: true},
		Answers: []Record{{
			Name: "com", Type: TypeSOA, Class: ClassIN, TTL: 900,
			SOA: SOAData{
				MName: "a.gtld-servers.net", RName: "nstld.verisign-grs.com",
				Serial: 1700000001, Refresh: 1800, Retry: 900, Expire: 604800, Minimum: 86400,
			},
		}},
	}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Answers[0].SOA, m.Answers[0].SOA) {
		t.Errorf("SOA: got %+v want %+v", got.Answers[0].SOA, m.Answers[0].SOA)
	}
}

func TestTXTAndMXRoundTrip(t *testing.T) {
	m := &Message{
		Answers: []Record{
			{Name: "example.com", Type: TypeTXT, Class: ClassIN, TTL: 60, TXT: []string{"v=spf1 -all", "second string"}},
			{Name: "example.com", Type: TypeMX, Class: ClassIN, TTL: 60, MX: MXData{Preference: 10, Exchange: "mail.example.com"}},
		},
	}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Answers, m.Answers) {
		t.Errorf("got %+v want %+v", got.Answers, m.Answers)
	}
}

func TestCNAMERoundTrip(t *testing.T) {
	m := &Message{Answers: []Record{{Name: "www.example.com", Type: TypeCNAME, Class: ClassIN, TTL: 60, CNAME: "example.com"}}}
	wire, _ := m.Pack()
	got, err := Unpack(wire)
	if err != nil || got.Answers[0].CNAME != "example.com" {
		t.Fatalf("CNAME round trip: %+v, %v", got, err)
	}
}

func TestUnknownTypePreservedAsRaw(t *testing.T) {
	m := &Message{Answers: []Record{{Name: "example.com", Type: Type(99), Class: ClassIN, TTL: 1, Raw: []byte{1, 2, 3}}}}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Answers[0].Raw, []byte{1, 2, 3}) {
		t.Errorf("raw: %v", got.Answers[0].Raw)
	}
}

func TestPackRejectsBadAddressFamilies(t *testing.T) {
	m := &Message{Answers: []Record{{Name: "x.com", Type: TypeA, Class: ClassIN, A: mustAddr("2001:db8::1")}}}
	if _, err := m.Pack(); err == nil {
		t.Error("A record with IPv6 address should fail")
	}
	m = &Message{Answers: []Record{{Name: "x.com", Type: TypeAAAA, Class: ClassIN, AAAA: mustAddr("192.0.2.1")}}}
	if _, err := m.Pack(); err == nil {
		t.Error("AAAA record with IPv4 address should fail")
	}
}

func TestUnpackTruncated(t *testing.T) {
	m := sampleMessage()
	wire, _ := m.Pack()
	for _, cut := range []int{0, 5, 11, 13, len(wire) / 2, len(wire) - 1} {
		if _, err := Unpack(wire[:cut]); err == nil {
			t.Errorf("Unpack of %d-byte prefix succeeded, want error", cut)
		}
	}
}

func TestUnpackErrorsAreTyped(t *testing.T) {
	if _, err := Unpack(nil); !errors.Is(err, ErrTruncatedMsg) {
		t.Errorf("want ErrTruncatedMsg, got %v", err)
	}
}

func TestRCodeAndTypeStrings(t *testing.T) {
	if RCodeNXDomain.String() != "NXDOMAIN" || RCodeNoError.String() != "NOERROR" {
		t.Error("rcode strings")
	}
	if TypeAAAA.String() != "AAAA" || Type(12345).String() != "TYPE12345" {
		t.Error("type strings")
	}
	for _, s := range []string{"A", "NS", "CNAME", "SOA", "MX", "TXT", "AAAA", "OPT", "ANY"} {
		tp, err := ParseType(s)
		if err != nil || tp.String() != s {
			t.Errorf("ParseType(%q) = %v, %v", s, tp, err)
		}
	}
	if _, err := ParseType("NOPE"); err == nil {
		t.Error("ParseType(NOPE) should fail")
	}
}

func TestTargetHelper(t *testing.T) {
	r := Record{Type: TypeNS, NS: "ns1.example.com"}
	if r.Target() != "ns1.example.com" {
		t.Error("NS target")
	}
	r = Record{Type: TypeA}
	if r.Target() != "" {
		t.Error("A target should be empty")
	}
}

func TestRecordString(t *testing.T) {
	r := Record{Name: "example.com", Type: TypeA, TTL: 300, A: mustAddr("192.0.2.1")}
	if got := r.String(); got != "example.com.\t300\tIN\tA\t192.0.2.1" {
		t.Errorf("String() = %q", got)
	}
}

func TestReplyMirrorsQuestion(t *testing.T) {
	q := NewQuery(7, "example.shop", TypeNS)
	r := q.Reply()
	if !r.Header.Response || r.Header.ID != 7 || len(r.Questions) != 1 || r.Questions[0].Name != "example.shop" {
		t.Errorf("Reply: %+v", r)
	}
}

func TestPropertyHeaderFlagsRoundTrip(t *testing.T) {
	f := func(id uint16, resp, aa, tc, rd, ra bool, op, rc uint8) bool {
		m := &Message{Header: Header{
			ID: id, Response: resp, Authoritative: aa, Truncated: tc,
			RecursionDesired: rd, RecursionAvailable: ra,
			OpCode: op & 0xF, RCode: RCode(rc & 0xF),
		}}
		wire, err := m.Pack()
		if err != nil {
			return false
		}
		got, err := Unpack(wire)
		if err != nil {
			return false
		}
		return got.Header == m.Header
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyUnpackNeverPanics(t *testing.T) {
	// Fuzz-ish: arbitrary bytes must never panic, only error.
	f := func(b []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		Unpack(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPack(b *testing.B) {
	m := sampleMessage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Pack(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnpack(b *testing.B) {
	wire, _ := sampleMessage().Pack()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unpack(wire); err != nil {
			b.Fatal(err)
		}
	}
}
