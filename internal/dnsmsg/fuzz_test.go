package dnsmsg

import (
	"bytes"
	"testing"
)

// FuzzUnpack feeds arbitrary bytes through the message decoder; any input
// must produce either a message or an error, never a panic, and any
// successfully decoded message must re-encode without error.
func FuzzUnpack(f *testing.F) {
	seed, _ := sampleMessage().Pack()
	f.Add(seed)
	q, _ := NewQuery(1, "example.com", TypeA).Pack()
	f.Add(q)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xC0}, 64)) // pointer storms
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unpack(data)
		if err != nil {
			return
		}
		// Decoded messages must re-encode; names from the wire are
		// canonical by construction. Repacking may legitimately fail for
		// semantic reasons (e.g. an A record whose rdlen was 4 but whose
		// address slot is unspecified is impossible here, since decode
		// validates lengths), so treat re-pack errors as findings.
		if _, err := m.Pack(); err != nil {
			// One legitimate case: names longer than 253 octets can be
			// smuggled via compression pointers. Accept name-length
			// errors, fail on anything else.
			if !bytes.Contains([]byte(err.Error()), []byte("dnsname")) {
				t.Fatalf("repack of decoded message failed: %v", err)
			}
		}
	})
}
