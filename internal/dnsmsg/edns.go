package dnsmsg

// EDNS0 (RFC 6891) support: the OPT pseudo-record advertises the
// requester's UDP payload capacity. The measurement fleet sends OPT so
// TLD servers can return full NS sets without TCP fallback; dnsserver
// honours the advertised size when truncating.

// DefaultEDNSSize is the payload size the measurement clients advertise.
const DefaultEDNSSize = 4096

// SetEDNS0 appends an OPT pseudo-record to the additional section (or
// updates an existing one) advertising the given UDP payload size.
func (m *Message) SetEDNS0(udpSize uint16) {
	for i := range m.Additional {
		if m.Additional[i].Type == TypeOPT {
			m.Additional[i].Class = Class(udpSize)
			return
		}
	}
	m.Additional = append(m.Additional, Record{
		Name:  "", // root
		Type:  TypeOPT,
		Class: Class(udpSize), // RFC 6891: CLASS field carries the size
		TTL:   0,              // extended RCODE and flags, all zero here
	})
}

// EDNSSize returns the advertised UDP payload size from an OPT record,
// with ok=false when the message carries none. Sizes below 512 are
// clamped up per RFC 6891 §6.2.5.
func (m *Message) EDNSSize() (size uint16, ok bool) {
	for i := range m.Additional {
		if m.Additional[i].Type == TypeOPT {
			size = uint16(m.Additional[i].Class)
			if size < 512 {
				size = 512
			}
			return size, true
		}
	}
	return 0, false
}
