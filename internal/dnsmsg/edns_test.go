package dnsmsg

import "testing"

func TestSetEDNS0RoundTrip(t *testing.T) {
	m := NewQuery(1, "example.com", TypeNS)
	if _, ok := m.EDNSSize(); ok {
		t.Fatal("fresh query should carry no OPT")
	}
	m.SetEDNS0(DefaultEDNSSize)
	size, ok := m.EDNSSize()
	if !ok || size != DefaultEDNSSize {
		t.Fatalf("EDNSSize = %d, %v", size, ok)
	}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	size, ok = got.EDNSSize()
	if !ok || size != DefaultEDNSSize {
		t.Fatalf("after wire round trip: %d, %v", size, ok)
	}
}

func TestSetEDNS0UpdatesInPlace(t *testing.T) {
	m := NewQuery(1, "example.com", TypeA)
	m.SetEDNS0(1232)
	m.SetEDNS0(4096)
	if len(m.Additional) != 1 {
		t.Fatalf("OPT duplicated: %d additional records", len(m.Additional))
	}
	if size, _ := m.EDNSSize(); size != 4096 {
		t.Errorf("size = %d", size)
	}
}

func TestEDNSSizeClampsTinyAdvertisements(t *testing.T) {
	m := NewQuery(1, "example.com", TypeA)
	m.SetEDNS0(100)
	if size, _ := m.EDNSSize(); size != 512 {
		t.Errorf("clamp: %d, want 512", size)
	}
}
