// Package dnsserver is an authoritative DNS server framework serving the
// simulated registries' zones over real UDP and TCP transports. The
// measurement integration tests exercise the full wire path: resolver →
// UDP socket → server → registry zone data.
package dnsserver

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"darkdns/internal/dnsmsg"
)

// Handler produces a response for one question. Implementations must be
// safe for concurrent use.
type Handler interface {
	Handle(q dnsmsg.Question) *dnsmsg.Message
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(q dnsmsg.Question) *dnsmsg.Message

// Handle implements Handler.
func (f HandlerFunc) Handle(q dnsmsg.Question) *dnsmsg.Message { return f(q) }

// Server serves DNS over UDP and TCP.
type Server struct {
	handler Handler

	mu     sync.Mutex
	pc     net.PacketConn
	ln     net.Listener
	closed bool
	wg     sync.WaitGroup
}

// New creates a server dispatching to handler.
func New(handler Handler) *Server {
	return &Server{handler: handler}
}

// ListenAndServe binds UDP and TCP on addr (e.g. "127.0.0.1:0") and serves
// until Close. It returns the bound UDP address (UDP and TCP share the
// port when addr requests port 0 only if the OS assigns the same; for
// tests use the returned address's port for both).
func (s *Server) ListenAndServe(addr string) (net.Addr, error) {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, err
	}
	// Bind TCP on the same port UDP got.
	ln, err := net.Listen("tcp", pc.LocalAddr().String())
	if err != nil {
		pc.Close()
		return nil, err
	}
	s.mu.Lock()
	s.pc, s.ln = pc, ln
	s.mu.Unlock()
	s.wg.Add(2)
	go s.serveUDP(pc)
	go s.serveTCP(ln)
	return pc.LocalAddr(), nil
}

// Close stops both listeners and waits for the serve loops to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	pc, ln := s.pc, s.ln
	s.mu.Unlock()
	var err error
	if pc != nil {
		err = errors.Join(err, pc.Close())
	}
	if ln != nil {
		err = errors.Join(err, ln.Close())
	}
	s.wg.Wait()
	return err
}

func (s *Server) serveUDP(pc net.PacketConn) {
	defer s.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		n, raddr, err := pc.ReadFrom(buf)
		if err != nil {
			return
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		go func(pkt []byte, raddr net.Addr) {
			resp := s.respond(pkt, 512)
			if resp != nil {
				pc.WriteTo(resp, raddr)
			}
		}(pkt, raddr)
	}
}

func (s *Server) serveTCP(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go s.serveTCPConn(conn)
	}
}

func (s *Server) serveTCPConn(conn net.Conn) {
	defer conn.Close()
	for {
		conn.SetReadDeadline(time.Now().Add(30 * time.Second))
		var lenBuf [2]byte
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		msgLen := binary.BigEndian.Uint16(lenBuf[:])
		pkt := make([]byte, msgLen)
		if _, err := io.ReadFull(conn, pkt); err != nil {
			return
		}
		// Zone transfers stream multiple messages and own the connection.
		if query, err := dnsmsg.Unpack(pkt); err == nil &&
			len(query.Questions) == 1 && query.Questions[0].Type == TypeAXFR {
			if s.handleAXFR(conn, query) {
				return
			}
			refused := query.Reply()
			refused.Header.RCode = dnsmsg.RCodeRefused
			if wire, err := refused.Pack(); err == nil {
				out := make([]byte, 2+len(wire))
				binary.BigEndian.PutUint16(out, uint16(len(wire)))
				copy(out[2:], wire)
				conn.Write(out)
			}
			return
		}
		resp := s.respond(pkt, 0xFFFF)
		if resp == nil {
			return
		}
		out := make([]byte, 2+len(resp))
		binary.BigEndian.PutUint16(out, uint16(len(resp)))
		copy(out[2:], resp)
		if _, err := conn.Write(out); err != nil {
			return
		}
	}
}

// respond decodes a query, dispatches it and encodes the reply, truncating
// responses larger than maxSize per RFC 1035 §4.2.1. An EDNS0 OPT record
// in the query raises the UDP limit to the advertised payload size
// (RFC 6891).
func (s *Server) respond(pkt []byte, maxSize int) []byte {
	query, err := dnsmsg.Unpack(pkt)
	if err != nil || query.Header.Response || len(query.Questions) == 0 {
		return nil // drop garbage silently like real servers do
	}
	if maxSize == 512 {
		if size, ok := query.EDNSSize(); ok && int(size) > maxSize {
			maxSize = int(size)
		}
	}
	var resp *dnsmsg.Message
	if query.Header.OpCode != 0 {
		resp = query.Reply()
		resp.Header.RCode = dnsmsg.RCodeNotImp
	} else {
		resp = s.handler.Handle(query.Questions[0])
		if resp == nil {
			resp = query.Reply()
			resp.Header.RCode = dnsmsg.RCodeServFail
		} else {
			// Mirror query identity even if the handler built a fresh
			// message.
			resp.Header.ID = query.Header.ID
			resp.Header.Response = true
			if len(resp.Questions) == 0 {
				resp.Questions = query.Questions
			}
		}
	}
	wire, err := resp.Pack()
	if err != nil {
		fail := query.Reply()
		fail.Header.RCode = dnsmsg.RCodeServFail
		wire, err = fail.Pack()
		if err != nil {
			return nil
		}
	}
	if len(wire) > maxSize {
		trunc := query.Reply()
		trunc.Header.Truncated = true
		wire, err = trunc.Pack()
		if err != nil {
			return nil
		}
	}
	return wire
}
