package dnsserver

import (
	"net/netip"
	"sync"

	"darkdns/internal/dnsmsg"
	"darkdns/internal/dnsname"
	"darkdns/internal/registry"
)

// TLDHandler answers as a TLD's authoritative nameserver, backed by the
// live registry zone: NS queries for delegated domains get referral-style
// answers; everything else under the TLD gets NXDOMAIN with the SOA in the
// authority section. This is the server the paper's measurement workers
// query directly for NS (step 3).
type TLDHandler struct {
	Registry *registry.Registry
}

// Handle implements Handler.
func (h *TLDHandler) Handle(q dnsmsg.Question) *dnsmsg.Message {
	tld := h.Registry.TLD()
	resp := &dnsmsg.Message{Header: dnsmsg.Header{Response: true, Authoritative: true}}
	resp.Questions = []dnsmsg.Question{q}
	name := dnsname.Canonical(q.Name)
	if !dnsname.IsSubdomain(name, tld) {
		resp.Header.RCode = dnsmsg.RCodeRefused
		return resp
	}
	if name == tld {
		switch q.Type {
		case dnsmsg.TypeSOA, dnsmsg.TypeANY:
			resp.Answers = append(resp.Answers, h.soa())
		case dnsmsg.TypeNS:
			resp.Answers = append(resp.Answers, dnsmsg.Record{
				Name: tld, Type: dnsmsg.TypeNS, Class: dnsmsg.ClassIN, TTL: 86400, NS: "a.nic." + tld,
			})
		}
		return resp
	}
	ns, ok := h.Registry.Delegation(name)
	if !ok {
		resp.Header.RCode = dnsmsg.RCodeNXDomain
		resp.Authority = append(resp.Authority, h.soa())
		return resp
	}
	if q.Type == dnsmsg.TypeNS || q.Type == dnsmsg.TypeANY {
		for _, target := range ns {
			resp.Answers = append(resp.Answers, dnsmsg.Record{
				Name: name, Type: dnsmsg.TypeNS, Class: dnsmsg.ClassIN, TTL: 3600, NS: target,
			})
		}
		return resp
	}
	// Non-NS query at the TLD server: referral (empty answer, NS in
	// authority) — the registry is not authoritative for host data.
	resp.Header.Authoritative = false
	for _, target := range ns {
		resp.Authority = append(resp.Authority, dnsmsg.Record{
			Name: name, Type: dnsmsg.TypeNS, Class: dnsmsg.ClassIN, TTL: 3600, NS: target,
		})
	}
	return resp
}

func (h *TLDHandler) soa() dnsmsg.Record {
	tld := h.Registry.TLD()
	return dnsmsg.Record{
		Name: tld, Type: dnsmsg.TypeSOA, Class: dnsmsg.ClassIN, TTL: 900,
		SOA: dnsmsg.SOAData{
			MName: "a.nic." + tld, RName: "hostmaster.nic." + tld,
			Serial: h.Registry.Serial(), Refresh: 1800, Retry: 900, Expire: 604800, Minimum: 60,
		},
	}
}

// HostingHandler answers A/AAAA queries as the hosting provider's
// nameserver fleet would, from a table of web addresses. The world
// simulator keeps it in sync with registrations.
type HostingHandler struct {
	mu    sync.RWMutex
	addrs map[string][]netip.Addr
	ttl   uint32
}

// NewHostingHandler creates an empty hosting answer table with the given
// answer TTL (the paper's reactive measurements cap cache TTLs at 60 s,
// so short TTLs here exercise that clamping).
func NewHostingHandler(ttl uint32) *HostingHandler {
	return &HostingHandler{addrs: make(map[string][]netip.Addr), ttl: ttl}
}

// Set installs the answer addresses for name.
func (h *HostingHandler) Set(name string, addrs ...netip.Addr) {
	h.mu.Lock()
	h.addrs[dnsname.Canonical(name)] = addrs
	h.mu.Unlock()
}

// Remove deletes name's answers.
func (h *HostingHandler) Remove(name string) {
	h.mu.Lock()
	delete(h.addrs, dnsname.Canonical(name))
	h.mu.Unlock()
}

// Handle implements Handler.
func (h *HostingHandler) Handle(q dnsmsg.Question) *dnsmsg.Message {
	resp := &dnsmsg.Message{Header: dnsmsg.Header{Response: true, Authoritative: true}}
	resp.Questions = []dnsmsg.Question{q}
	h.mu.RLock()
	addrs, ok := h.addrs[dnsname.Canonical(q.Name)]
	h.mu.RUnlock()
	if !ok {
		resp.Header.RCode = dnsmsg.RCodeNXDomain
		return resp
	}
	for _, a := range addrs {
		switch {
		case a.Is4() && (q.Type == dnsmsg.TypeA || q.Type == dnsmsg.TypeANY):
			resp.Answers = append(resp.Answers, dnsmsg.Record{
				Name: dnsname.Canonical(q.Name), Type: dnsmsg.TypeA, Class: dnsmsg.ClassIN, TTL: h.ttl, A: a,
			})
		case a.Is6() && !a.Is4() && (q.Type == dnsmsg.TypeAAAA || q.Type == dnsmsg.TypeANY):
			resp.Answers = append(resp.Answers, dnsmsg.Record{
				Name: dnsname.Canonical(q.Name), Type: dnsmsg.TypeAAAA, Class: dnsmsg.ClassIN, TTL: h.ttl, AAAA: a,
			})
		}
	}
	return resp
}
