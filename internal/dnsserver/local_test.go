package dnsserver

import (
	"context"
	"errors"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"darkdns/internal/dnsmsg"
	"darkdns/internal/registry"
	"darkdns/internal/resolver"
	"darkdns/internal/simclock"
)

// TestLocalExchangerBatchOverHandlers: the socketless probe path — the
// resolver's batch API over LocalExchanger-adapted authoritative
// handlers — must answer exactly like the wire path: NS referrals from
// the TLD zone, A/AAAA from hosting, NXDOMAIN negatively cached, all in
// one pipelined batch.
func TestLocalExchangerBatchOverHandlers(t *testing.T) {
	clk := simclock.NewSim(t0)
	reg := registry.New(registry.DefaultConfig("com"), clk, rand.New(rand.NewSource(1)))
	defer reg.Stop()
	reg.Register("example.com", "R", []string{"ns1.cloudflare.com", "ns2.cloudflare.com"}, netip.Addr{})
	clk.Advance(time.Minute)

	hosting := NewHostingHandler(300)
	hosting.Set("example.com", netip.MustParseAddr("104.16.1.1"), netip.MustParseAddr("2606:4700::1"))

	tldRes := resolver.New(resolver.Config{}, clk, &resolver.LocalExchanger{H: &TLDHandler{Registry: reg}, Workers: 4}, nil)
	hostRes := resolver.New(resolver.Config{}, clk, &resolver.LocalExchanger{H: hosting, Workers: 4}, nil)

	res := tldRes.LookupBatch(context.Background(), []resolver.Query{
		{Name: "example.com", Type: dnsmsg.TypeNS},
		{Name: "missing.com", Type: dnsmsg.TypeNS},
	})
	if res[0].Err != nil || len(res[0].Records) != 2 {
		t.Fatalf("NS batch slot: %v %v", res[0].Records, res[0].Err)
	}
	if !errors.Is(res[1].Err, resolver.ErrNXDomain) {
		t.Fatalf("missing delegation: %v", res[1].Err)
	}

	v4, v6, err := hostRes.LookupAddrs(context.Background(), "example.com")
	if err != nil || len(v4) != 1 || len(v6) != 1 {
		t.Fatalf("LookupAddrs over local handler: %v %v %v", v4, v6, err)
	}
	if v4[0].A.String() != "104.16.1.1" || v6[0].AAAA.String() != "2606:4700::1" {
		t.Errorf("addresses: %v %v", v4[0].A, v6[0].AAAA)
	}

	// Takedown propagates after the cached answer's clamp expires —
	// exactly the wire path's behaviour in TestResolverCachingAgainstLiveServer.
	hosting.Remove("example.com")
	if v4, _, _ = hostRes.LookupAddrs(context.Background(), "example.com"); len(v4) != 1 {
		t.Error("cached answer must survive the takedown until expiry")
	}
	clk.Advance(61 * time.Second)
	if _, _, err = hostRes.LookupAddrs(context.Background(), "example.com"); !errors.Is(err, resolver.ErrNXDomain) {
		t.Errorf("post-expiry probe: %v", err)
	}
}

// TestLocalExchangerLanesOverHandlers: the full exchange stack — rate
// lanes over the in-process adapter — carries a batch with per-TLD
// admission, shedding the overflow with ErrRateLimited.
func TestLocalExchangerLanesOverHandlers(t *testing.T) {
	clk := simclock.NewSim(t0)
	reg := registry.New(registry.DefaultConfig("com"), clk, rand.New(rand.NewSource(1)))
	defer reg.Stop()
	reg.Register("example.com", "R", []string{"ns1.cloudflare.com"}, netip.Addr{})
	clk.Advance(time.Minute)

	lanes := resolver.NewLanes(resolver.LaneConfig{MaxInflight: 2},
		&resolver.LocalExchanger{H: &TLDHandler{Registry: reg}}, nil)
	r := resolver.New(resolver.Config{}, clk, lanes, nil)

	qs := make([]resolver.Query, 5)
	for i := range qs {
		qs[i] = resolver.Query{Name: "d" + string(rune('a'+i)) + ".com", Type: dnsmsg.TypeNS}
	}
	var answered, shed int
	for _, res := range r.LookupBatch(context.Background(), qs) {
		switch {
		case errors.Is(res.Err, resolver.ErrRateLimited):
			shed++
		case errors.Is(res.Err, resolver.ErrNXDomain): // undelegated names
			answered++
		case res.Err == nil:
			answered++
		default:
			t.Errorf("unexpected error: %v", res.Err)
		}
	}
	if answered != 2 || shed != 3 {
		t.Errorf("answered %d / shed %d over a 2-slot lane, want 2 / 3", answered, shed)
	}
}
