package dnsserver

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"darkdns/internal/dnsmsg"
	"darkdns/internal/dnsname"
	"darkdns/internal/zoneset"
)

// AXFR support (RFC 5936 subset): a zone transfer is a TCP query of type
// 252 answered by a stream of DNS messages that starts and ends with the
// zone's SOA record. CZDS-style collection can use this instead of
// fetching serialized zone files — the integration tests exercise both
// paths.

// TypeAXFR is the zone-transfer QTYPE.
const TypeAXFR = dnsmsg.Type(252)

// ZoneTransferrer is implemented by handlers that can enumerate a zone.
type ZoneTransferrer interface {
	// TransferZone returns the SOA record and every delegation record of
	// zone, or ok=false when the handler is not authoritative for it.
	TransferZone(zone string) (soa dnsmsg.Record, records []dnsmsg.Record, ok bool)
}

// TransferZone implements ZoneTransferrer for TLD registries.
func (h *TLDHandler) TransferZone(zone string) (dnsmsg.Record, []dnsmsg.Record, bool) {
	tld := h.Registry.TLD()
	if dnsname.Canonical(zone) != tld {
		return dnsmsg.Record{}, nil, false
	}
	snap := h.Registry.ZoneSnapshot(time.Time{})
	var records []dnsmsg.Record
	for _, dom := range snap.Domains() {
		for _, ns := range snap.Get(dom).NS {
			records = append(records, dnsmsg.Record{
				Name: dom, Type: dnsmsg.TypeNS, Class: dnsmsg.ClassIN, TTL: 3600, NS: ns,
			})
		}
	}
	return h.soa(), records, true
}

// axfrBatch is the number of records packed per response message.
const axfrBatch = 100

// handleAXFR streams the transfer over conn. Returns false when the
// handler cannot serve transfers (caller falls back to REFUSED).
func (s *Server) handleAXFR(conn net.Conn, query *dnsmsg.Message) bool {
	zt, ok := s.handler.(ZoneTransferrer)
	if !ok {
		return false
	}
	zone := query.Questions[0].Name
	soa, records, ok := zt.TransferZone(zone)
	if !ok {
		return false
	}
	write := func(m *dnsmsg.Message) error {
		wire, err := m.Pack()
		if err != nil {
			return err
		}
		out := make([]byte, 2+len(wire))
		binary.BigEndian.PutUint16(out, uint16(len(wire)))
		copy(out[2:], wire)
		conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
		_, err = conn.Write(out)
		return err
	}
	// Opening message: SOA (plus the first batch).
	first := query.Reply()
	first.Header.Authoritative = true
	first.Answers = append(first.Answers, soa)
	if err := write(first); err != nil {
		return true
	}
	for i := 0; i < len(records); i += axfrBatch {
		end := i + axfrBatch
		if end > len(records) {
			end = len(records)
		}
		m := query.Reply()
		m.Header.Authoritative = true
		m.Answers = records[i:end]
		if err := write(m); err != nil {
			return true
		}
	}
	// Closing message: SOA again.
	last := query.Reply()
	last.Header.Authoritative = true
	last.Answers = append(last.Answers, soa)
	write(last)
	return true
}

// AXFRClient fetches zones over TCP.
type AXFRClient struct {
	Addr    string
	Timeout time.Duration
}

// errTransfer wraps AXFR protocol violations.
var errTransfer = errors.New("dnsserver: bad zone transfer")

// Transfer performs an AXFR for zone and materializes the result as a
// snapshot.
func (c *AXFRClient) Transfer(ctx context.Context, zone string) (*zoneset.Snapshot, error) {
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", c.Addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	q := dnsmsg.NewQuery(4242, zone, TypeAXFR)
	wire, err := q.Pack()
	if err != nil {
		return nil, err
	}
	framed := make([]byte, 2+len(wire))
	binary.BigEndian.PutUint16(framed, uint16(len(wire)))
	copy(framed[2:], wire)
	conn.SetDeadline(time.Now().Add(timeout))
	if _, err := conn.Write(framed); err != nil {
		return nil, err
	}

	zone = dnsname.Canonical(zone)
	snap := zoneset.NewSnapshot(zone, 0, time.Time{})
	pending := make(map[string][]string)
	soaSeen := 0
	for soaSeen < 2 {
		var lenBuf [2]byte
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return nil, fmt.Errorf("%w: %v", errTransfer, err)
		}
		body := make([]byte, binary.BigEndian.Uint16(lenBuf[:]))
		if _, err := io.ReadFull(conn, body); err != nil {
			return nil, fmt.Errorf("%w: %v", errTransfer, err)
		}
		m, err := dnsmsg.Unpack(body)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", errTransfer, err)
		}
		if m.Header.RCode != dnsmsg.RCodeNoError {
			return nil, fmt.Errorf("%w: %s", errTransfer, m.Header.RCode)
		}
		if len(m.Answers) == 0 {
			return nil, fmt.Errorf("%w: empty message", errTransfer)
		}
		for _, r := range m.Answers {
			switch r.Type {
			case dnsmsg.TypeSOA:
				soaSeen++
				snap.Serial = r.SOA.Serial
			case dnsmsg.TypeNS:
				if r.Name != zone {
					pending[r.Name] = append(pending[r.Name], r.NS)
				}
			}
			if soaSeen == 2 {
				break
			}
		}
	}
	for dom, ns := range pending {
		snap.Add(dom, ns)
	}
	return snap, nil
}

// Compile-time check: TLDHandler must keep satisfying ZoneTransferrer as
// the registry API evolves.
var _ ZoneTransferrer = (*TLDHandler)(nil)
