package dnsserver

import (
	"context"
	"fmt"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"darkdns/internal/registry"
	"darkdns/internal/simclock"
	"darkdns/internal/zoneset"
)

func TestAXFREndToEnd(t *testing.T) {
	clk := simclock.NewSim(t0)
	reg := registry.New(registry.DefaultConfig("shop"), clk, rand.New(rand.NewSource(1)))
	defer reg.Stop()
	for i := 0; i < 250; i++ {
		reg.Register(fmt.Sprintf("d%04d.shop", i), "R",
			[]string{fmt.Sprintf("ns%d.cloudflare.com", i%3), "ns9.cloudflare.com"}, netip.Addr{})
	}
	clk.Advance(20 * time.Minute) // zone rebuild

	addr, stop := startServer(t, &TLDHandler{Registry: reg})
	defer stop()

	client := &AXFRClient{Addr: addr, Timeout: 5 * time.Second}
	snap, err := client.Transfer(context.Background(), "shop")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Len() != 250 {
		t.Fatalf("transferred %d delegations, want 250", snap.Len())
	}
	if snap.Serial != reg.Serial() {
		t.Errorf("serial = %d, want %d", snap.Serial, reg.Serial())
	}
	// Spot-check a delegation against the live zone.
	truth := reg.ZoneSnapshot(clk.Now())
	d := zoneset.Compare(truth, snap)
	if len(d.Added)+len(d.Removed)+len(d.Changed) != 0 {
		t.Errorf("transfer differs from live zone: %+v", d)
	}
}

func TestAXFRRefusedForForeignZone(t *testing.T) {
	clk := simclock.NewSim(t0)
	reg := registry.New(registry.DefaultConfig("shop"), clk, rand.New(rand.NewSource(1)))
	defer reg.Stop()
	addr, stop := startServer(t, &TLDHandler{Registry: reg})
	defer stop()

	client := &AXFRClient{Addr: addr, Timeout: 2 * time.Second}
	if _, err := client.Transfer(context.Background(), "com"); err == nil {
		t.Fatal("foreign-zone transfer should fail")
	}
}

func TestAXFRRefusedByNonTransferrer(t *testing.T) {
	h := NewHostingHandler(60)
	addr, stop := startServer(t, h)
	defer stop()
	client := &AXFRClient{Addr: addr, Timeout: 2 * time.Second}
	if _, err := client.Transfer(context.Background(), "anything.com"); err == nil {
		t.Fatal("transfer from non-transferrer should fail")
	}
}

func TestAXFREmptyZone(t *testing.T) {
	clk := simclock.NewSim(t0)
	reg := registry.New(registry.DefaultConfig("top"), clk, rand.New(rand.NewSource(1)))
	defer reg.Stop()
	addr, stop := startServer(t, &TLDHandler{Registry: reg})
	defer stop()
	client := &AXFRClient{Addr: addr, Timeout: 2 * time.Second}
	snap, err := client.Transfer(context.Background(), "top")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Len() != 0 {
		t.Errorf("empty zone transferred %d delegations", snap.Len())
	}
}
